package level

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(0, 100); err == nil {
		t.Error("zero lines accepted")
	}
	if _, err := NewStartGap(10, 0); err == nil {
		t.Error("zero period accepted")
	}
	s, err := NewStartGap(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lines() != 10 || s.Slots() != 11 {
		t.Errorf("geometry wrong: %d lines, %d slots", s.Lines(), s.Slots())
	}
	if s.WriteOverhead() != 0.01 {
		t.Errorf("overhead = %v", s.WriteOverhead())
	}
}

func TestPhysicalIsBijectionInitially(t *testing.T) {
	s, _ := NewStartGap(16, 10)
	seen := map[int]bool{}
	for la := 0; la < s.Lines(); la++ {
		pa := s.Physical(la)
		if pa < 0 || pa >= s.Slots() {
			t.Fatalf("PA %d out of range", pa)
		}
		if pa == s.Gap() {
			t.Fatalf("logical %d mapped onto the gap", la)
		}
		if seen[pa] {
			t.Fatalf("slot %d mapped twice", pa)
		}
		seen[pa] = true
	}
}

func TestPhysicalPanicsOutOfRange(t *testing.T) {
	s, _ := NewStartGap(4, 10)
	for _, la := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Physical(%d) did not panic", la)
				}
			}()
			s.Physical(la)
		}()
	}
}

// TestMovesAgainstShadowArray is the gold test: replay every gap movement
// against an explicit slot→logical shadow array and require the algebraic
// mapping to agree with the simulated data movement at every step.
func TestMovesAgainstShadowArray(t *testing.T) {
	const lines = 13 // odd size exercises wrap-arounds quickly
	s, err := NewStartGap(lines, 1)
	if err != nil {
		t.Fatal(err)
	}
	const empty = -1
	shadow := make([]int, s.Slots())
	for slot := range shadow {
		shadow[slot] = empty
	}
	for la := 0; la < lines; la++ {
		shadow[s.Physical(la)] = la
	}
	var moves []Move
	// Enough writes to rotate the gap through the array several times.
	for step := 0; step < lines*(lines+1)*3; step++ {
		moves = s.RecordWrites(1, moves)
		for _, mv := range moves {
			if shadow[mv.To] != empty {
				t.Fatalf("step %d: move target %d not the gap", step, mv.To)
			}
			if shadow[mv.From] == empty {
				t.Fatalf("step %d: move source %d is empty", step, mv.From)
			}
			shadow[mv.To] = shadow[mv.From]
			shadow[mv.From] = empty
		}
		// Full agreement between shadow and algebraic mapping.
		if shadow[s.Gap()] != empty {
			t.Fatalf("step %d: gap slot %d holds line %d", step, s.Gap(), shadow[s.Gap()])
		}
		for la := 0; la < lines; la++ {
			pa := s.Physical(la)
			if shadow[pa] != la {
				t.Fatalf("step %d: logical %d maps to slot %d which holds %d",
					step, la, pa, shadow[pa])
			}
		}
	}
}

func TestEveryLineVisitsEverySlot(t *testing.T) {
	const lines = 7
	s, _ := NewStartGap(lines, 1)
	visited := make([]map[int]bool, lines)
	for i := range visited {
		visited[i] = map[int]bool{}
	}
	var moves []Move
	// One full start rotation requires M gap revolutions of M moves each.
	total := (lines + 1) * (lines + 1) * 2
	for step := 0; step < total; step++ {
		for la := 0; la < lines; la++ {
			visited[la][s.Physical(la)] = true
		}
		moves = s.RecordWrites(1, moves)
	}
	for la := 0; la < lines; la++ {
		if len(visited[la]) != s.Slots() {
			t.Errorf("line %d visited only %d of %d slots", la, len(visited[la]), s.Slots())
		}
	}
}

func TestRecordWritesBatches(t *testing.T) {
	s, _ := NewStartGap(100, 10)
	moves := s.RecordWrites(35, nil)
	if len(moves) != 3 {
		t.Errorf("35 writes at period 10 should trigger 3 moves, got %d", len(moves))
	}
	moves = s.RecordWrites(5, moves)
	if len(moves) != 1 {
		t.Errorf("5 more writes (40 total) should trigger 1 move, got %d", len(moves))
	}
	if s.Moves() != 4 {
		t.Errorf("total moves = %d, want 4", s.Moves())
	}
}

func TestBijectionPropertyUnderRandomWrites(t *testing.T) {
	prop := func(seed uint64, linesRaw uint8, burstRaw uint8) bool {
		lines := int(linesRaw%60) + 2
		s, err := NewStartGap(lines, 3)
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed)
		var moves []Move
		for step := 0; step < 50; step++ {
			moves = s.RecordWrites(uint64(r.Intn(int(burstRaw)+1)+1), moves)
			seen := make([]bool, s.Slots())
			for la := 0; la < lines; la++ {
				pa := s.Physical(la)
				if pa == s.Gap() || seen[pa] {
					return false
				}
				seen[pa] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWearSpreading(t *testing.T) {
	// The point of the leveler: a single hot logical line's writes spread
	// over many physical slots.
	const lines = 32
	s, _ := NewStartGap(lines, 4)
	writesPerSlot := make([]int, s.Slots())
	var moves []Move
	for i := 0; i < 20000; i++ {
		writesPerSlot[s.Physical(0)]++ // always hammer logical line 0
		moves = s.RecordWrites(1, moves)
		for _, mv := range moves {
			writesPerSlot[mv.To]++ // the copy is a write too
		}
	}
	max := 0
	for _, w := range writesPerSlot {
		if w > max {
			max = w
		}
	}
	// Without leveling one slot would take all 20000 writes. With the gap
	// rotating every 4 writes, the hot line changes slot frequently; no
	// slot should see more than a modest share.
	if max > 6000 {
		t.Errorf("hot-line wear not spread: max slot writes %d of 20000", max)
	}
}

func BenchmarkPhysical(b *testing.B) {
	s, _ := NewStartGap(1<<16, 100)
	s.RecordWrites(12345, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Physical(i & (1<<16 - 1))
	}
}
