// Package level implements Start-Gap wear leveling (Qureshi et al.,
// MICRO 2009), the algebraic line-remapping scheme PCM systems pair with
// scrub: N logical lines rotate through N+1 physical slots so that write
// hot-spots — including the scrub engine's own write-backs — spread over
// the array instead of wearing out one row. The scrub study uses it to
// quantify how much a policy's write traffic actually costs in worst-case
// cell wear (experiment F13).
//
// The mapping needs only two registers. Physical slots form a circle of
// size M = N+1; one slot is the gap. Logical lines occupy the non-gap
// slots in circular order starting at the start register S:
//
//	d = (G - S) mod M          // circular distance from start to gap
//	P(i) = (S + i) mod M       // lines before the gap
//	P(i) = (S + i + 1) mod M   // lines at or after the gap (skip it)
//
// Every period writes, the gap moves one slot backward: the line in slot
// (G-1) is copied into slot G (one extra array write), and when the gap
// crosses the start register a full rotation has completed and S
// advances. Over N+1 gap revolutions every line has occupied every slot.
package level

import "fmt"

// Move records one gap movement: the content of physical slot From was
// rewritten into physical slot To (the old gap). From becomes the new gap.
type Move struct {
	From, To int
}

// StartGap is the remapping engine. Not safe for concurrent use.
type StartGap struct {
	m         int // physical slots = logical lines + 1
	start     int // start register S
	gap       int // gap position G
	period    uint64
	sinceMove uint64
	moves     uint64
}

// NewStartGap builds a leveler for the given number of logical lines that
// moves the gap after every period demand writes. The classic paper uses
// period = 100 (1 % write overhead).
func NewStartGap(lines int, period uint64) (*StartGap, error) {
	if lines < 1 {
		return nil, fmt.Errorf("level: need at least one line")
	}
	if period < 1 {
		return nil, fmt.Errorf("level: period must be >= 1")
	}
	return &StartGap{
		m:      lines + 1,
		gap:    lines, // gap starts in the spare slot at the end
		period: period,
	}, nil
}

// Lines returns the number of logical lines.
func (s *StartGap) Lines() int { return s.m - 1 }

// Slots returns the number of physical slots (lines + 1).
func (s *StartGap) Slots() int { return s.m }

// Gap returns the current gap slot.
func (s *StartGap) Gap() int { return s.gap }

// Moves returns the number of gap movements performed so far.
func (s *StartGap) Moves() uint64 { return s.moves }

// Physical maps a logical line to its current physical slot.
func (s *StartGap) Physical(logical int) int {
	if logical < 0 || logical >= s.m-1 {
		panic("level: logical line out of range")
	}
	d := s.gap - s.start
	if d < 0 {
		d += s.m
	}
	p := logical + s.start
	if logical >= d {
		p++
	}
	if p >= s.m {
		p -= s.m
	}
	if p >= s.m {
		p -= s.m
	}
	return p
}

// RecordWrites accounts n demand/scrub writes and performs any gap
// movements they trigger, appending them to moves (reused if it has
// capacity). Each Move means "the simulator must rewrite slot To with the
// content of slot From now".
func (s *StartGap) RecordWrites(n uint64, moves []Move) []Move {
	moves = moves[:0]
	s.sinceMove += n
	for s.sinceMove >= s.period {
		s.sinceMove -= s.period
		moves = append(moves, s.moveGap())
	}
	return moves
}

// moveGap advances the gap one slot backward and returns the implied copy.
func (s *StartGap) moveGap() Move {
	src := s.gap - 1
	if src < 0 {
		src += s.m
	}
	mv := Move{From: src, To: s.gap}
	if s.gap == s.start {
		// The gap is about to cross the start register: one full rotation
		// of line positions has completed.
		s.start++
		if s.start == s.m {
			s.start = 0
		}
	}
	s.gap = src
	s.moves++
	return mv
}

// WriteOverhead returns the fraction of extra writes the leveler adds
// (one copy per period writes).
func (s *StartGap) WriteOverhead() float64 {
	return 1 / float64(s.period)
}
