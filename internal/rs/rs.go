// Package rs implements Reed–Solomon codes over GF(2^8): systematic
// encoding, syndrome computation, Berlekamp–Massey, Chien search and
// Forney's algorithm for error magnitudes.
//
// RS is the natural alternative to binary BCH for MLC memories: a 2-bit
// cell misread can corrupt *two* data bits, which costs a binary code two
// units of its correction budget but — with byte symbols aligned to
// four-cell groups — only one RS symbol. The trade is storage: an RS-t
// code spends 8 check bits per correctable symbol versus BCH's ~10 bits
// per correctable bit. Experiment F14 quantifies the crossover.
//
// Codeword layout: symbols (bytes) in coefficient order, parity first:
//
//	byte 0 .. 2t-1          parity symbols (coefficients x^0 ..)
//	byte 2t .. 2t+k-1       message symbols
//
// Shortened codes fix the high-order message symbols at zero.
package rs

import (
	"errors"
	"fmt"

	"repro/internal/gf2"
)

// ErrUncorrectable reports more symbol errors than the code can correct.
var ErrUncorrectable = errors.New("rs: uncorrectable error pattern")

// Code is an RS code over GF(2^8) correcting up to T symbol errors.
// Immutable after construction; safe for concurrent use.
type Code struct {
	field *gf2.Field
	n     int // full length: 255 symbols
	k     int // max message symbols: n - 2t
	t     int

	gen gf2.Poly // generator, degree 2t, monic
}

// New constructs a t-symbol-error-correcting RS(255, 255-2t) code.
func New(t int) (*Code, error) {
	if t < 1 {
		return nil, fmt.Errorf("rs: t must be >= 1, got %d", t)
	}
	field, err := gf2.NewField(8)
	if err != nil {
		return nil, err
	}
	n := int(field.N()) // 255
	if 2*t >= n {
		return nil, fmt.Errorf("rs: t=%d leaves no room for data (n=%d)", t, n)
	}
	// Narrow-sense generator: g(x) = Π_{i=1..2t} (x + α^i).
	gen := gf2.Poly{1}
	for i := 1; i <= 2*t; i++ {
		gen = gf2.PolyMul(field, gen, gf2.Poly{field.Exp(int64(i)), 1})
	}
	return &Code{field: field, n: n, k: n - 2*t, t: t, gen: gen}, nil
}

// MustNew is New that panics on error.
func MustNew(t int) *Code {
	c, err := New(t)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the full code length in symbols (255).
func (c *Code) N() int { return c.n }

// K returns the maximum message length in symbols.
func (c *Code) K() int { return c.k }

// T returns the symbol correction capability.
func (c *Code) T() int { return c.t }

// ParitySymbols returns the number of check symbols (2t).
func (c *Code) ParitySymbols() int { return 2 * c.t }

// Encode systematically encodes msg (one byte per symbol, up to K long)
// and returns parity-first codeword of len(msg)+2t bytes.
func (c *Code) Encode(msg []byte) ([]byte, error) {
	if len(msg) == 0 || len(msg) > c.k {
		return nil, fmt.Errorf("rs: message length %d out of range [1,%d]", len(msg), c.k)
	}
	p := c.ParitySymbols()
	// parity = (m(x)·x^p) mod g(x), computed with an LFSR over GF(2^8).
	rem := make([]byte, p)
	for i := len(msg) - 1; i >= 0; i-- {
		feedback := uint32(msg[i]) ^ uint32(rem[p-1])
		copy(rem[1:], rem[:p-1])
		rem[0] = 0
		if feedback != 0 {
			for j := 0; j < p; j++ {
				rem[j] ^= byte(c.field.Mul(feedback, c.gen.Coeff(j)))
			}
		}
	}
	cw := make([]byte, p+len(msg))
	copy(cw, rem)
	copy(cw[p:], msg)
	return cw, nil
}

// syndromes returns S_1..S_2t of the received word; clean is true when all
// are zero.
func (c *Code) syndromes(cw []byte) (synd []uint32, clean bool) {
	synd = make([]uint32, 2*c.t)
	clean = true
	for pos, sym := range cw {
		if sym == 0 {
			continue
		}
		for j := range synd {
			synd[j] ^= c.field.Mul(uint32(sym), c.field.Exp(int64(pos)*int64(j+1)))
		}
	}
	for _, s := range synd {
		if s != 0 {
			clean = false
			break
		}
	}
	return synd, clean
}

// Detect reports whether the codeword contains a detectable error.
func (c *Code) Detect(cw []byte) bool {
	_, clean := c.syndromes(cw)
	return !clean
}

// Decode corrects up to T symbol errors in cw in place, returning the
// number of corrected symbols or ErrUncorrectable.
func (c *Code) Decode(cw []byte) (int, error) {
	if len(cw) <= c.ParitySymbols() || len(cw) > c.n {
		return 0, fmt.Errorf("rs: codeword length %d out of range (%d,%d]", len(cw), c.ParitySymbols(), c.n)
	}
	synd, clean := c.syndromes(cw)
	if clean {
		return 0, nil
	}
	lambda := c.berlekampMassey(synd)
	degree := len(lambda) - 1
	if degree > c.t {
		return 0, ErrUncorrectable
	}
	positions, ok := c.chien(lambda, len(cw))
	if !ok || len(positions) != degree {
		return 0, ErrUncorrectable
	}
	// Forney: Ω(x) = S(x)·Λ(x) mod x^2t, with S(x) = Σ S_{i+1} x^i.
	sPoly := make(gf2.Poly, len(synd))
	copy(sPoly, synd)
	omega := gf2.PolyMul(c.field, sPoly, gf2.Poly(lambda))
	if len(omega) > 2*c.t {
		omega = omega[:2*c.t]
	}
	lambdaDeriv := gf2.PolyDeriv(gf2.Poly(lambda))
	for _, pos := range positions {
		xInv := c.field.Exp(-int64(pos))
		den := gf2.PolyEval(c.field, lambdaDeriv, xInv)
		if den == 0 {
			return 0, ErrUncorrectable
		}
		mag := c.field.Div(gf2.PolyEval(c.field, omega, xInv), den)
		cw[pos] ^= byte(mag)
	}
	if _, cleanNow := c.syndromes(cw); !cleanNow {
		return 0, ErrUncorrectable
	}
	return len(positions), nil
}

// DecodeWithErasures corrects cw in place given the positions of known-
// unreliable symbols (erasures) — in PCM, the stuck cells recorded in a
// fault map. An RS code corrects e unknown errors plus f erasures as long
// as 2e + f <= 2t, so flagging hard errors doubles the budget they
// consume versus treating them as unknown errors.
//
// Implementation: the classical seeded Berlekamp–Massey. The locator is
// initialised to the erasure polynomial Γ(x) = Π (1 + X_i x) with the
// registered length L = f, and the BM iteration runs over the plain
// syndromes starting at index f. The final locator Ψ carries both
// erasure and error roots; Forney magnitudes come from Ω = S·Ψ mod x^2t.
func (c *Code) DecodeWithErasures(cw []byte, erasures []int) (int, error) {
	if len(cw) <= c.ParitySymbols() || len(cw) > c.n {
		return 0, fmt.Errorf("rs: codeword length %d out of range (%d,%d]", len(cw), c.ParitySymbols(), c.n)
	}
	if len(erasures) == 0 {
		return c.Decode(cw)
	}
	if len(erasures) > 2*c.t {
		return 0, ErrUncorrectable
	}
	seen := make(map[int]bool, len(erasures))
	for _, pos := range erasures {
		if pos < 0 || pos >= len(cw) {
			return 0, fmt.Errorf("rs: erasure position %d out of range [0,%d)", pos, len(cw))
		}
		if seen[pos] {
			return 0, fmt.Errorf("rs: duplicate erasure position %d", pos)
		}
		seen[pos] = true
	}
	synd, clean := c.syndromes(cw)
	if clean {
		return 0, nil // erased symbols happen to hold correct values
	}
	f := c.field
	nEras := len(erasures)
	// Erasure locator Γ(x) = Π (1 + X_i x) with X_i = α^pos.
	gamma := gf2.Poly{1}
	for _, pos := range erasures {
		gamma = gf2.PolyMul(f, gamma, gf2.Poly{1, f.Exp(int64(pos))})
	}
	psi := c.bmSeeded(synd, gamma, nEras)
	degree := gf2.Poly(psi).Degree()
	// Correctability: 2e + f <= 2t with e = degree - f.
	if 2*degree-nEras > 2*c.t {
		return 0, ErrUncorrectable
	}
	positions, ok := c.chien(psi, len(cw))
	if !ok || len(positions) != degree {
		return 0, ErrUncorrectable
	}
	// Forney over the combined locator.
	sPoly := make(gf2.Poly, len(synd))
	copy(sPoly, synd)
	omega := gf2.PolyMul(f, sPoly, gf2.Poly(psi))
	if len(omega) > 2*c.t {
		omega = omega[:2*c.t]
	}
	psiDeriv := gf2.PolyDeriv(gf2.Poly(psi))
	corrected := 0
	for _, pos := range positions {
		xInv := f.Exp(-int64(pos))
		den := gf2.PolyEval(f, psiDeriv, xInv)
		if den == 0 {
			return 0, ErrUncorrectable
		}
		mag := f.Div(gf2.PolyEval(f, omega, xInv), den)
		if mag != 0 {
			cw[pos] ^= byte(mag)
			corrected++
		}
	}
	if _, cleanNow := c.syndromes(cw); !cleanNow {
		return 0, ErrUncorrectable
	}
	return corrected, nil
}

// bmSeeded is Berlekamp–Massey initialised with the erasure locator gamma
// (registered length f), iterating over syndromes s[f:].
func (c *Code) bmSeeded(s []uint32, gamma gf2.Poly, f int) []uint32 {
	fld := c.field
	n := len(s)
	cPoly := make([]uint32, n+1)
	bPoly := make([]uint32, n+1)
	for i := 0; i <= gamma.Degree(); i++ {
		cPoly[i] = gamma.Coeff(i)
		bPoly[i] = gamma.Coeff(i)
	}
	L := f
	m := 1
	b := uint32(1)
	for i := f; i < n; i++ {
		d := uint32(0)
		for j := 0; j <= i && j <= n; j++ {
			if cPoly[j] != 0 {
				d ^= fld.Mul(cPoly[j], s[i-j])
			}
		}
		if d == 0 {
			m++
			continue
		}
		coef := fld.Div(d, b)
		if 2*L <= i+f {
			tPoly := append([]uint32(nil), cPoly...)
			for j := 0; j+m <= n; j++ {
				cPoly[j+m] ^= fld.Mul(coef, bPoly[j])
			}
			L = i + 1 - L + f
			bPoly = tPoly
			b = d
			m = 1
		} else {
			for j := 0; j+m <= n; j++ {
				cPoly[j+m] ^= fld.Mul(coef, bPoly[j])
			}
			m++
		}
	}
	deg := gf2.Poly(cPoly).Degree()
	if deg < 0 {
		deg = 0
	}
	return cPoly[:deg+1]
}

// berlekampMassey returns the error-locator Λ(x) for the syndromes.
func (c *Code) berlekampMassey(s []uint32) []uint32 {
	f := c.field
	n := len(s)
	cPoly := make([]uint32, n+1)
	bPoly := make([]uint32, n+1)
	cPoly[0], bPoly[0] = 1, 1
	L := 0
	m := 1
	b := uint32(1)
	for i := 0; i < n; i++ {
		d := s[i]
		for j := 1; j <= L; j++ {
			d ^= f.Mul(cPoly[j], s[i-j])
		}
		if d == 0 {
			m++
			continue
		}
		coef := f.Div(d, b)
		if 2*L <= i {
			tPoly := append([]uint32(nil), cPoly...)
			for j := 0; j+m <= n; j++ {
				cPoly[j+m] ^= f.Mul(coef, bPoly[j])
			}
			L = i + 1 - L
			bPoly = tPoly
			b = d
			m = 1
		} else {
			for j := 0; j+m <= n; j++ {
				cPoly[j+m] ^= f.Mul(coef, bPoly[j])
			}
			m++
		}
	}
	return cPoly[:L+1]
}

// chien finds error positions within the (possibly shortened) support.
func (c *Code) chien(lambda []uint32, support int) ([]int, bool) {
	f := c.field
	degree := len(lambda) - 1
	var positions []int
	for i := 0; i < c.n && len(positions) <= degree; i++ {
		x := f.Exp(-int64(i))
		if gf2.PolyEval(f, gf2.Poly(lambda), x) == 0 {
			if i >= support {
				return nil, false
			}
			positions = append(positions, i)
		}
	}
	return positions, true
}
