package rs

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestCodeParameters(t *testing.T) {
	for _, tt := range []int{1, 2, 4, 8, 16} {
		c := MustNew(tt)
		if c.N() != 255 {
			t.Errorf("t=%d: N=%d", tt, c.N())
		}
		if c.K() != 255-2*tt {
			t.Errorf("t=%d: K=%d", tt, c.K())
		}
		if c.ParitySymbols() != 2*tt {
			t.Errorf("t=%d: parity=%d", tt, c.ParitySymbols())
		}
	}
}

func TestNewRejectsBadT(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(128); err == nil {
		t.Error("t=128 accepted (no data room)")
	}
}

func randMsg(r *stats.RNG, n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(r.Uint64())
	}
	return msg
}

func TestEncodeCleanDecodes(t *testing.T) {
	c := MustNew(4)
	r := stats.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(r, 1+r.Intn(c.K()))
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if c.Detect(cw) {
			t.Fatal("clean codeword flagged")
		}
		n, err := c.Decode(cw)
		if n != 0 || err != nil {
			t.Fatalf("clean decode: n=%d err=%v", n, err)
		}
		for i, b := range msg {
			if cw[c.ParitySymbols()+i] != b {
				t.Fatal("message corrupted by decode")
			}
		}
	}
}

func TestEncodeArgValidation(t *testing.T) {
	c := MustNew(2)
	if _, err := c.Encode(nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := c.Encode(make([]byte, c.K()+1)); err == nil {
		t.Error("oversized message accepted")
	}
	if _, err := c.Decode(make([]byte, c.ParitySymbols())); err == nil {
		t.Error("parity-only codeword accepted")
	}
	if _, err := c.Decode(make([]byte, 256)); err == nil {
		t.Error("overlong codeword accepted")
	}
}

func TestCorrectsUpToTSymbolErrors(t *testing.T) {
	r := stats.NewRNG(2)
	for _, tt := range []int{1, 2, 4, 8} {
		c := MustNew(tt)
		for nerr := 1; nerr <= tt; nerr++ {
			for trial := 0; trial < 15; trial++ {
				msg := randMsg(r, 64)
				cw, err := c.Encode(msg)
				if err != nil {
					t.Fatal(err)
				}
				orig := append([]byte(nil), cw...)
				corruptSymbols(r, cw, nerr)
				if !c.Detect(cw) {
					t.Fatalf("t=%d nerr=%d: not detected", tt, nerr)
				}
				got, err := c.Decode(cw)
				if err != nil {
					t.Fatalf("t=%d nerr=%d: %v", tt, nerr, err)
				}
				if got != nerr {
					t.Fatalf("t=%d: corrected %d symbols, want %d", tt, got, nerr)
				}
				for i := range orig {
					if cw[i] != orig[i] {
						t.Fatalf("t=%d nerr=%d: codeword not restored at %d", tt, nerr, i)
					}
				}
			}
		}
	}
}

// corruptSymbols flips nerr distinct symbols to random *different* values,
// possibly corrupting multiple bits per symbol — the MLC cell-error shape.
func corruptSymbols(r *stats.RNG, cw []byte, nerr int) {
	seen := map[int]bool{}
	for len(seen) < nerr {
		pos := r.Intn(len(cw))
		if seen[pos] {
			continue
		}
		seen[pos] = true
		old := cw[pos]
		for cw[pos] == old {
			cw[pos] = byte(r.Uint64())
		}
	}
}

func TestBeyondTFailsOrMiscorrectsToValid(t *testing.T) {
	c := MustNew(2)
	r := stats.NewRNG(3)
	uncorrectable := 0
	for trial := 0; trial < 200; trial++ {
		msg := randMsg(r, 40)
		cw, _ := c.Encode(msg)
		corruptSymbols(r, cw, c.T()+1+r.Intn(2))
		n, err := c.Decode(cw)
		if err != nil {
			uncorrectable++
			continue
		}
		if n > c.T() {
			t.Fatalf("claimed %d > t corrections", n)
		}
		if c.Detect(cw) {
			t.Fatal("Decode success left invalid codeword")
		}
	}
	if uncorrectable == 0 {
		t.Error("no beyond-t pattern flagged in 200 trials")
	}
}

func TestShortenedPhantomPositionsRejected(t *testing.T) {
	c := MustNew(1)
	r := stats.NewRNG(4)
	sawFailure := false
	for trial := 0; trial < 300; trial++ {
		msg := randMsg(r, 4) // heavily shortened
		cw, _ := c.Encode(msg)
		corruptSymbols(r, cw, 2) // beyond t=1
		if _, err := c.Decode(cw); err != nil {
			sawFailure = true
			break
		}
	}
	if !sawFailure {
		t.Error("expected uncorrectable verdicts on 2-symbol errors at t=1")
	}
}

func TestMultiBitSymbolErrorCostsOneUnit(t *testing.T) {
	// The reason RS matters for MLC: all 8 bits of one symbol flipped is
	// still ONE symbol error.
	c := MustNew(1)
	r := stats.NewRNG(5)
	msg := randMsg(r, 64)
	cw, _ := c.Encode(msg)
	orig := append([]byte(nil), cw...)
	cw[10] ^= 0xFF
	n, err := c.Decode(cw)
	if err != nil || n != 1 {
		t.Fatalf("8-bit symbol error: corrected=%d err=%v", n, err)
	}
	for i := range orig {
		if cw[i] != orig[i] {
			t.Fatal("codeword not restored")
		}
	}
}

func TestDecodeIsInverseProperty(t *testing.T) {
	c := MustNew(4)
	prop := func(seed uint64, nerrRaw uint8) bool {
		r := stats.NewRNG(seed)
		nerr := int(nerrRaw%5) + 0 // 0..4, within t
		msg := randMsg(r, 64)
		cw, err := c.Encode(msg)
		if err != nil {
			return false
		}
		orig := append([]byte(nil), cw...)
		corruptSymbols(r, cw, nerr)
		n, err := c.Decode(cw)
		if err != nil || n != nerr {
			return false
		}
		for i := range orig {
			if cw[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode64(b *testing.B) {
	c := MustNew(4)
	r := stats.NewRNG(6)
	msg := randMsg(r, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode64With2Errors(b *testing.B) {
	c := MustNew(4)
	r := stats.NewRNG(7)
	msg := randMsg(r, 64)
	clean, _ := c.Encode(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := append([]byte(nil), clean...)
		corruptSymbols(r, cw, 2)
		if _, err := c.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
