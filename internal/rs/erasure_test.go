package rs

import (
	"testing"

	"repro/internal/stats"
)

func TestErasureOnlyDecodingDoublesBudget(t *testing.T) {
	// 2t erasures with zero unknown errors are correctable — double the
	// plain error budget.
	c := MustNew(4)
	r := stats.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		msg := randMsg(r, 64)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		orig := append([]byte(nil), cw...)
		erasures := distinctPositions(r, len(cw), 2*c.T())
		for _, pos := range erasures {
			cw[pos] ^= byte(1 + r.Intn(255))
		}
		n, err := c.DecodeWithErasures(cw, erasures)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(erasures) {
			t.Fatalf("corrected %d, want %d", n, len(erasures))
		}
		for i := range orig {
			if cw[i] != orig[i] {
				t.Fatal("codeword not restored")
			}
		}
	}
}

func TestErasuresPlusErrors(t *testing.T) {
	// 2e + f <= 2t: with f = 4 erasures on a t=4 code, e = 2 unknown
	// errors must still decode.
	c := MustNew(4)
	r := stats.NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		msg := randMsg(r, 64)
		cw, _ := c.Encode(msg)
		orig := append([]byte(nil), cw...)
		positions := distinctPositions(r, len(cw), 6)
		erasures := positions[:4]
		for _, pos := range positions {
			cw[pos] ^= byte(1 + r.Intn(255))
		}
		n, err := c.DecodeWithErasures(cw, erasures)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != 6 {
			t.Fatalf("corrected %d, want 6", n)
		}
		for i := range orig {
			if cw[i] != orig[i] {
				t.Fatal("codeword not restored")
			}
		}
	}
}

func TestErasureBudgetBoundary(t *testing.T) {
	// With f erasures, e unknown errors decode iff 2e <= 2t - f. For t=2,
	// f=2: one unknown error OK; two must fail (or miscorrect to a valid
	// word — verify syndromes clean on success).
	c := MustNew(2)
	r := stats.NewRNG(3)
	okAtOne, failAtTwo := 0, 0
	for trial := 0; trial < 100; trial++ {
		msg := randMsg(r, 40)
		cw, _ := c.Encode(msg)
		positions := distinctPositions(r, len(cw), 4)
		erasures := positions[:2]
		// one unknown error
		cwOne := append([]byte(nil), cw...)
		for _, pos := range positions[:3] {
			cwOne[pos] ^= byte(1 + r.Intn(255))
		}
		if _, err := c.DecodeWithErasures(cwOne, erasures); err == nil {
			okAtOne++
		}
		// two unknown errors: beyond capacity. Acceptable outcomes are
		// ErrUncorrectable or a miscorrection onto a *valid* codeword
		// (bounded-distance decoding cannot promise more).
		cwTwo := append([]byte(nil), cw...)
		for _, pos := range positions {
			cwTwo[pos] ^= byte(1 + r.Intn(255))
		}
		if _, err := c.DecodeWithErasures(cwTwo, erasures); err != nil {
			failAtTwo++
		} else if c.Detect(cwTwo) {
			t.Fatal("beyond-capacity decode claimed success on invalid codeword")
		}
	}
	if okAtOne != 100 {
		t.Errorf("f=2,e=1 decoded only %d/100", okAtOne)
	}
	if failAtTwo < 80 {
		t.Errorf("f=2,e=2 flagged uncorrectable only %d/100", failAtTwo)
	}
}

func TestErasureArgValidation(t *testing.T) {
	c := MustNew(2)
	r := stats.NewRNG(4)
	msg := randMsg(r, 40)
	cw, _ := c.Encode(msg)
	if _, err := c.DecodeWithErasures(cw, []int{-1}); err == nil {
		t.Error("negative erasure accepted")
	}
	if _, err := c.DecodeWithErasures(cw, []int{len(cw)}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
	if _, err := c.DecodeWithErasures(cw, []int{3, 3}); err == nil {
		t.Error("duplicate erasure accepted")
	}
	if _, err := c.DecodeWithErasures(cw, []int{0, 1, 2, 3, 4}); err != ErrUncorrectable {
		t.Error("more than 2t erasures should be uncorrectable")
	}
	// Clean word with erasures that hold correct data: zero corrections.
	if n, err := c.DecodeWithErasures(cw, []int{5, 9}); err != nil || n != 0 {
		t.Errorf("clean word with benign erasures: n=%d err=%v", n, err)
	}
	// Empty erasure list falls back to plain decode.
	if n, err := c.DecodeWithErasures(cw, nil); err != nil || n != 0 {
		t.Errorf("empty erasures on clean word: n=%d err=%v", n, err)
	}
}

func TestErasureVsPlainDecodeOnStuckPattern(t *testing.T) {
	// The PCM story: t+1 stuck symbols defeat plain decoding but are
	// trivial with a fault map.
	c := MustNew(2)
	r := stats.NewRNG(5)
	defeated, recovered := 0, 0
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(r, 40)
		cw, _ := c.Encode(msg)
		stuck := distinctPositions(r, len(cw), c.T()+1)
		for _, pos := range stuck {
			cw[pos] ^= byte(1 + r.Intn(255))
		}
		plain := append([]byte(nil), cw...)
		if _, err := c.Decode(plain); err != nil {
			defeated++
		}
		if _, err := c.DecodeWithErasures(cw, stuck); err == nil {
			recovered++
		}
	}
	if defeated < 45 {
		t.Errorf("plain decode survived t+1 errors too often (%d/50 defeats)", defeated)
	}
	if recovered != 50 {
		t.Errorf("erasure decode recovered only %d/50", recovered)
	}
}

func distinctPositions(r *stats.RNG, n, k int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, k)
	for len(out) < k {
		pos := r.Intn(n)
		if seen[pos] {
			continue
		}
		seen[pos] = true
		out = append(out, pos)
	}
	return out
}
