package pcm

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// samplerGridPoints controls the resolution of the per-level inverse-CDF
// tables. 4096 points over 10 decades gives ~0.0024 decades (<0.6 % in
// time) of interpolation granularity, far below the decade-scale spacing
// of scrub intervals.
const samplerGridPoints = 4096

// levelSampler inverts one level's crossing-time CDF via precomputed
// monotone grids over drift decades: pGrid holds the CDF, tGrid the
// corresponding times in seconds, so a sample is a binary search plus a
// linear interpolation — no transcendental calls on the hot path.
type levelSampler struct {
	pGrid []float64 // pGrid[i] = P(crossed by x_i), non-decreasing
	tGrid []float64 // tGrid[i] = t0·10^(x_i), seconds
	dx    float64
	pmax  float64
}

func newLevelSampler(m *Model, level int) *levelSampler {
	ls := &levelSampler{
		pGrid: make([]float64, samplerGridPoints+1),
		tGrid: make([]float64, samplerGridPoints+1),
		dx:    m.p.MaxLog10Time / samplerGridPoints,
	}
	prev := 0.0
	for i := 0; i <= samplerGridPoints; i++ {
		x := float64(i) * ls.dx
		p := m.ErrProbAtX(level, x)
		// The analytic curve is monotone; enforce it against float jitter.
		if p < prev {
			p = prev
		}
		ls.pGrid[i] = p
		ls.tGrid[i] = m.TimeOf(x)
		prev = p
	}
	ls.pmax = ls.pGrid[samplerGridPoints]
	return ls
}

// invertT maps a CDF value u in [0, pmax] to a crossing time in seconds by
// search + linear interpolation, and returns the grid index it landed on.
// Callers sampling ascending u values pass the previous index as hint so
// the search gallops forward from there instead of bisecting the whole
// grid. Within one grid cell (0.0024 decades) the time curve is within
// 0.6 % of linear.
func (ls *levelSampler) invertT(u float64, hint int) (float64, int) {
	if u <= ls.pGrid[0] {
		return ls.tGrid[0], 0
	}
	n := len(ls.pGrid) - 1
	lo := hint
	if lo < 0 {
		lo = 0
	}
	if lo > n || ls.pGrid[lo] >= u {
		lo = 0
	}
	// Gallop forward to bracket u, then bisect inside the bracket.
	step := 1
	hi := lo + step
	for hi < n && ls.pGrid[hi] < u {
		lo = hi
		step *= 2
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if ls.pGrid[mid] < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	pl, ph := ls.pGrid[lo], ls.pGrid[hi]
	frac := 0.0
	if ph > pl {
		frac = (u - pl) / (ph - pl)
	}
	return ls.tGrid[lo] + frac*(ls.tGrid[hi]-ls.tGrid[lo]), lo
}

// LineSampler draws, for a freshly written line, the earliest error
// crossing times among its cells — the simulator's entire per-line state.
//
// Method: for each level, the crossing times of that level's n cells are
// n i.i.d. draws from the level's (defective) crossing-time distribution.
// We generate the ascending order statistics of n uniforms with the Rényi
// exponential-spacings construction and push each through the inverse CDF,
// stopping at the modelled horizon or after K draws. Cost is O(K) per
// level per line write, independent of how many cells would eventually
// drift across.
type LineSampler struct {
	model  *Model
	mix    LevelMix
	ncells int
	k      int
	levels [Levels]*levelSampler
	// active lists levels with a non-zero crossing probability.
	active []int
	// pool holds presampled multinomial level-count vectors ("data
	// patterns"). Each line write draws one uniformly, so the per-write
	// marginal distribution of counts is the exact multinomial while the
	// hot path avoids per-write binomial sampling.
	pool [][Levels]int
}

// countPoolSize is the number of presampled data patterns. Large enough
// that pattern reuse across a simulation adds no visible correlation.
const countPoolSize = 4096

// NewLineSampler builds a sampler for lines of ncells cells with the given
// level mix, tracking the k earliest crossings per line.
func NewLineSampler(m *Model, mix LevelMix, ncells, k int) (*LineSampler, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if ncells < 1 {
		return nil, fmt.Errorf("pcm: ncells must be >= 1, got %d", ncells)
	}
	if k < 1 {
		return nil, fmt.Errorf("pcm: k must be >= 1, got %d", k)
	}
	s := &LineSampler{model: m, mix: mix, ncells: ncells, k: k}
	for level := 0; level < Levels; level++ {
		ls := newLevelSampler(m, level)
		s.levels[level] = ls
		if ls.pmax > 0 && mix[level] > 0 {
			s.active = append(s.active, level)
		}
	}
	// Presample the data-pattern pool with a seed derived from the model
	// parameters only, so two samplers over the same physics agree.
	poolRNG := stats.NewRNG(0x9c0ffee5)
	s.pool = make([][Levels]int, countPoolSize)
	for i := range s.pool {
		s.pool[i] = s.sampleCounts(poolRNG)
	}
	return s, nil
}

// K returns the number of earliest crossings tracked per line.
func (s *LineSampler) K() int { return s.k }

// Cells returns the number of cells per line.
func (s *LineSampler) Cells() int { return s.ncells }

// Model returns the underlying drift model.
func (s *LineSampler) Model() *Model { return s.model }

// sampleCounts draws a multinomial split of the line's cells across levels
// (the data pattern written this time).
func (s *LineSampler) sampleCounts(r *stats.RNG) [Levels]int {
	var counts [Levels]int
	remaining := int64(s.ncells)
	massLeft := 1.0
	for level := 0; level < Levels-1; level++ {
		if remaining == 0 || massLeft <= 0 {
			break
		}
		p := s.mix[level] / massLeft
		if p > 1 {
			p = 1
		}
		c := r.Binomial(remaining, p)
		counts[level] = int(c)
		remaining -= c
		massLeft -= s.mix[level]
	}
	counts[Levels-1] = int(remaining)
	return counts
}

// SampleCrossings simulates one line write and returns the sorted earliest
// crossing times (seconds since the write), at most K entries. If exactly
// K entries are returned, the line may have further crossings beyond the
// last entry: callers must treat an error count that reaches K as
// "at least K" (saturation).
//
// The out slice is reused if it has capacity.
func (s *LineSampler) SampleCrossings(r *stats.RNG, out []float64) []float64 {
	out = out[:0]
	counts := &s.pool[r.Intn(countPoolSize)]
	for _, level := range s.active {
		n := counts[level]
		if n == 0 {
			continue
		}
		ls := s.levels[level]
		// Rényi: ascending uniform order statistics via exponential spacings.
		sum := 0.0
		taken := 0
		hint := 0
		for j := 0; j < n && taken < s.k; j++ {
			sum += r.Exponential(1) / float64(n-j)
			u := -math.Expm1(-sum) // 1 - exp(-sum), stable for small sum
			if u >= ls.pmax {
				break
			}
			var ct float64
			ct, hint = ls.invertT(u, hint)
			out = append(out, ct)
			taken++
		}
	}
	// Insertion sort: out holds at most a few × k ≤ 48 entries and each
	// level's contribution is already ascending, so this beats the
	// general-purpose sort on the hot path.
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	if len(out) > s.k {
		out = out[:s.k]
	}
	return out
}
