package pcm

import (
	"math"
	"testing"
)

func TestNewMultiLevelValidation(t *testing.T) {
	if _, err := NewMultiLevel(1); err == nil {
		t.Error("1 level accepted")
	}
	m, err := NewMultiLevel(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.BitsPerCell() != 2 {
		t.Errorf("4 levels = %v bits", m.BitsPerCell())
	}
	bad := *m
	bad.WindowDecades = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero window accepted")
	}
	bad = *m
	bad.NuCeil = bad.NuFloor / 2
	if err := bad.Validate(); err == nil {
		t.Error("inverted nu range accepted")
	}
}

func TestMultiLevelMatchesFourLevelModel(t *testing.T) {
	// The n=4 multilevel model must agree with the full Model on the
	// intermediate levels (same means, thresholds at midpoints, same nu).
	gen, err := NewMultiLevel(4)
	if err != nil {
		t.Fatal(err)
	}
	full := MustModel(DefaultParams())
	for _, level := range []int{1, 2} {
		for _, secs := range []float64{1e3, 1e5, 1e7} {
			a := gen.ErrProb(level, secs)
			b := full.ErrProb(level, secs)
			// The 4-level defaults have per-level nu {0.001,0.02,0.06,0.1};
			// the linear interpolation gives {0.001,0.034,0.067,0.1}, so
			// exact agreement holds only at the ends. Require order-of-
			// magnitude consistency at level 2 (nu 0.06 vs 0.067).
			if level == 2 && (a < b/20 || a > b*20) {
				t.Errorf("level %d t=%g: multilevel %.3g vs full %.3g", level, secs, a, b)
			}
			_ = a
		}
	}
	// Top level never errs in either model.
	if gen.ErrProb(3, 1e8) != 0 || full.ErrProb(3, 1e8) != 0 {
		t.Error("top level should never err")
	}
}

func TestMultiLevelDensityOrdering(t *testing.T) {
	// Packing more levels into the same window shrinks margins: at any
	// fixed time the expected errors must grow with level count, and the
	// safe interval must shrink.
	var prevErr float64
	prevInterval := math.Inf(1)
	for _, levels := range []int{2, 4, 8, 16} {
		m, err := NewMultiLevel(levels)
		if err != nil {
			t.Fatal(err)
		}
		e := m.ExpectedLineErrors(256, 1e5)
		if e < prevErr {
			t.Errorf("%d levels: expected errors %.4g below %d-level value %.4g",
				levels, e, levels/2, prevErr)
		}
		prevErr = e
		iv := m.SafeInterval(256, 1.0)
		if iv > prevInterval {
			t.Errorf("%d levels: safe interval %.3g above sparser cell's %.3g",
				levels, iv, prevInterval)
		}
		prevInterval = iv
	}
}

func TestMultiLevelSLCIsImmune(t *testing.T) {
	// 2 levels with the full window between them: margin 1.5 decades
	// against max drift 0.1·10 = 1 decade → essentially no errors ever.
	m, err := NewMultiLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if e := m.ExpectedLineErrors(256, 1e9); e > 1e-6 {
		t.Errorf("SLC expected errors %.3g, want ~0", e)
	}
	if iv := m.SafeInterval(256, 0.01); iv < 1e9 {
		t.Errorf("SLC safe interval %.3g, want horizon", iv)
	}
}

func TestMultiLevelSafeIntervalEdges(t *testing.T) {
	m, err := NewMultiLevel(8)
	if err != nil {
		t.Fatal(err)
	}
	// Budget zero is immediately exceeded (instant programming errors).
	if iv := m.SafeInterval(256, 0); iv != 0 {
		t.Errorf("zero budget interval = %g", iv)
	}
	// The returned interval satisfies its budget.
	iv := m.SafeInterval(256, 2.0)
	if iv <= 0 {
		t.Fatal("no interval for budget 2")
	}
	if e := m.ExpectedLineErrors(256, iv); e > 2.0*1.01 {
		t.Errorf("interval %g violates budget: %g errors", iv, e)
	}
}

func TestMultiLevelErrProbPanicsOutOfRange(t *testing.T) {
	m, _ := NewMultiLevel(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range level did not panic")
		}
	}()
	m.ErrProb(4, 100)
}
