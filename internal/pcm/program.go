package pcm

import (
	"fmt"
	"math"
)

// ProgramParams models MLC PCM's iterative program-and-verify write: each
// pulse nudges the cell toward its target band and a verify read checks
// it, with the achieved resistance spread narrowing geometrically per
// iteration. Tighter programming costs write energy and latency but buys
// drift margin — every 0.01 decades shaved off σ_prog delays the first
// threshold crossing, which lengthens the safe scrub interval. Experiment
// F16 walks this trade-off.
type ProgramParams struct {
	// InitialSigma is the resistance spread (decades) after a single
	// open-loop pulse.
	InitialSigma float64
	// Convergence is the per-iteration spread multiplier (< 1).
	Convergence float64
	// MinSigma is the floor set by sense-amplifier precision.
	MinSigma float64
	// PulseEnergyPJPerCell and VerifyEnergyPJPerCell cost one iteration.
	PulseEnergyPJPerCell  float64
	VerifyEnergyPJPerCell float64
	// PulseLatencyNs and VerifyLatencyNs time one iteration.
	PulseLatencyNs  float64
	VerifyLatencyNs float64
}

// DefaultProgramParams follows the published MLC PCM write behaviour:
// ~0.16 decades after one pulse, narrowing ~35 % per verify iteration,
// floored at 0.03 decades; each pulse ~90 pJ/cell plus a ~10 pJ verify.
func DefaultProgramParams() ProgramParams {
	return ProgramParams{
		InitialSigma:          0.16,
		Convergence:           0.65,
		MinSigma:              0.03,
		PulseEnergyPJPerCell:  90,
		VerifyEnergyPJPerCell: 10,
		PulseLatencyNs:        150,
		VerifyLatencyNs:       60,
	}
}

// Validate checks the parameters.
func (p *ProgramParams) Validate() error {
	if p.InitialSigma <= 0 {
		return fmt.Errorf("pcm: InitialSigma must be positive")
	}
	if p.Convergence <= 0 || p.Convergence >= 1 {
		return fmt.Errorf("pcm: Convergence must be in (0,1)")
	}
	if p.MinSigma <= 0 || p.MinSigma > p.InitialSigma {
		return fmt.Errorf("pcm: MinSigma must be in (0, InitialSigma]")
	}
	if p.PulseEnergyPJPerCell < 0 || p.VerifyEnergyPJPerCell < 0 ||
		p.PulseLatencyNs <= 0 || p.VerifyLatencyNs < 0 {
		return fmt.Errorf("pcm: programming costs must be non-negative (pulse latency positive)")
	}
	return nil
}

// SigmaAfter returns the programming spread achieved by n iterations
// (n >= 1), clamped at the precision floor.
func (p *ProgramParams) SigmaAfter(n int) float64 {
	if n < 1 {
		n = 1
	}
	sigma := p.InitialSigma * math.Pow(p.Convergence, float64(n-1))
	if sigma < p.MinSigma {
		return p.MinSigma
	}
	return sigma
}

// IterationsFor returns the smallest iteration count achieving the target
// spread, and the spread actually achieved. Targets below the precision
// floor saturate at the floor.
func (p *ProgramParams) IterationsFor(targetSigma float64) (n int, achieved float64) {
	if targetSigma >= p.InitialSigma {
		return 1, p.InitialSigma
	}
	floor := p.MinSigma
	if targetSigma < floor {
		targetSigma = floor
	}
	// n - 1 >= log(target/initial)/log(c)
	raw := math.Log(targetSigma/p.InitialSigma) / math.Log(p.Convergence)
	n = 1 + int(math.Ceil(raw-1e-12))
	if n < 1 {
		n = 1
	}
	return n, p.SigmaAfter(n)
}

// WriteEnergyPJPerCell returns the per-cell write energy of an
// n-iteration write.
func (p *ProgramParams) WriteEnergyPJPerCell(n int) float64 {
	if n < 1 {
		n = 1
	}
	return float64(n) * (p.PulseEnergyPJPerCell + p.VerifyEnergyPJPerCell)
}

// WriteLatencyNs returns the latency of an n-iteration write.
func (p *ProgramParams) WriteLatencyNs(n int) float64 {
	if n < 1 {
		n = 1
	}
	return float64(n) * (p.PulseLatencyNs + p.VerifyLatencyNs)
}

// WriteEnergyPJPerBit converts the per-cell cost to the per-bit figure the
// energy model consumes (BitsPerCell data bits per cell).
func (p *ProgramParams) WriteEnergyPJPerBit(n int) float64 {
	return p.WriteEnergyPJPerCell(n) / BitsPerCell
}
