package pcm

import (
	"testing"

	"repro/internal/stats"
)

// TestCrossingTimeDistributionKS compares the full distribution of
// crossing times produced by the fast order-statistics sampler against
// brute-force per-cell simulation with a Kolmogorov–Smirnov test — a
// stronger check than the moment comparisons elsewhere.
func TestCrossingTimeDistributionKS(t *testing.T) {
	m := MustModel(DefaultParams())
	const ncells = 8 // small lines so saturation (k) never truncates
	const k = 8

	s, err := NewLineSampler(m, LevelMix{0, 0, 1, 0}, ncells, k)
	if err != nil {
		t.Fatal(err)
	}
	rFast := stats.NewRNG(11)
	var fast []float64
	var buf []float64
	for trial := 0; trial < 4000; trial++ {
		buf = s.SampleCrossings(rFast, buf)
		fast = append(fast, buf...)
	}

	rBrute := stats.NewRNG(12)
	var brute []float64
	for trial := 0; trial < 4000; trial++ {
		for c := 0; c < ncells; c++ {
			cell := m.WriteCell(rBrute, 2)
			if ct := m.CrossingTime(cell); ct < 1e30 && ct >= 0 {
				brute = append(brute, ct)
			}
		}
	}

	if len(fast) < 1000 || len(brute) < 1000 {
		t.Fatalf("too few crossings to compare: %d fast, %d brute", len(fast), len(brute))
	}
	d := stats.KSStatistic(fast, brute)
	crit := stats.KSCritical(len(fast), len(brute), 0.001)
	// Allow slack for the sampler's grid interpolation (~0.6 % in time).
	if d > crit+0.01 {
		t.Errorf("crossing-time KS %.4f exceeds critical %.4f (n=%d, m=%d)",
			d, crit, len(fast), len(brute))
	}
}
