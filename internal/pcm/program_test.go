package pcm

import (
	"math"
	"testing"
)

func TestDefaultProgramParamsValid(t *testing.T) {
	p := DefaultProgramParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramParamsValidateRejects(t *testing.T) {
	cases := []func(*ProgramParams){
		func(p *ProgramParams) { p.InitialSigma = 0 },
		func(p *ProgramParams) { p.Convergence = 0 },
		func(p *ProgramParams) { p.Convergence = 1 },
		func(p *ProgramParams) { p.MinSigma = 0 },
		func(p *ProgramParams) { p.MinSigma = p.InitialSigma * 2 },
		func(p *ProgramParams) { p.PulseEnergyPJPerCell = -1 },
		func(p *ProgramParams) { p.PulseLatencyNs = 0 },
	}
	for i, mut := range cases {
		p := DefaultProgramParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSigmaAfterGeometricAndFloored(t *testing.T) {
	p := DefaultProgramParams()
	if got := p.SigmaAfter(1); got != p.InitialSigma {
		t.Errorf("SigmaAfter(1) = %v", got)
	}
	want := p.InitialSigma * p.Convergence
	if got := p.SigmaAfter(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("SigmaAfter(2) = %v, want %v", got, want)
	}
	if got := p.SigmaAfter(100); got != p.MinSigma {
		t.Errorf("SigmaAfter(100) = %v, want floor %v", got, p.MinSigma)
	}
	if p.SigmaAfter(0) != p.SigmaAfter(1) {
		t.Error("n<1 should clamp to 1")
	}
	// Monotone non-increasing.
	prev := math.Inf(1)
	for n := 1; n <= 20; n++ {
		s := p.SigmaAfter(n)
		if s > prev {
			t.Fatalf("sigma not monotone at n=%d", n)
		}
		prev = s
	}
}

func TestIterationsForAchievesTarget(t *testing.T) {
	p := DefaultProgramParams()
	for _, target := range []float64{0.16, 0.12, 0.08, 0.05, 0.03} {
		n, achieved := p.IterationsFor(target)
		if achieved > target+1e-12 {
			t.Errorf("target %.3f: achieved %.4f with n=%d", target, achieved, n)
		}
		// Minimality: one fewer iteration must miss the target (unless n==1
		// or we are at the floor).
		if n > 1 && achieved > p.MinSigma {
			if p.SigmaAfter(n-1) <= target+1e-12 {
				t.Errorf("target %.3f: n=%d not minimal", target, n)
			}
		}
	}
	// Below-floor targets saturate.
	n, achieved := p.IterationsFor(0.001)
	if achieved != p.MinSigma {
		t.Errorf("sub-floor target achieved %v, want floor", achieved)
	}
	if n < 1 {
		t.Error("iterations must be >= 1")
	}
	// Loose target: one iteration.
	if n, _ := p.IterationsFor(0.5); n != 1 {
		t.Errorf("loose target should need 1 iteration, got %d", n)
	}
}

func TestWriteCostsScaleLinearly(t *testing.T) {
	p := DefaultProgramParams()
	e1 := p.WriteEnergyPJPerCell(1)
	e3 := p.WriteEnergyPJPerCell(3)
	if math.Abs(e3-3*e1) > 1e-9 {
		t.Errorf("energy not linear: %v vs 3×%v", e3, e1)
	}
	l1 := p.WriteLatencyNs(1)
	l4 := p.WriteLatencyNs(4)
	if math.Abs(l4-4*l1) > 1e-9 {
		t.Errorf("latency not linear: %v vs 4×%v", l4, l1)
	}
	if p.WriteEnergyPJPerCell(0) != e1 {
		t.Error("n<1 should clamp to 1")
	}
	if got := p.WriteEnergyPJPerBit(2); math.Abs(got-e1*2/BitsPerCell) > 1e-9 {
		t.Errorf("per-bit conversion wrong: %v", got)
	}
}

func TestTighterProgrammingExtendsScrubInterval(t *testing.T) {
	// The cross-model consequence: lower σ_prog → longer safe interval.
	pp := DefaultProgramParams()
	base := DefaultParams()
	prev := 0.0
	for _, n := range []int{1, 3, 5} {
		params := base
		params.SigmaProg = pp.SigmaAfter(n)
		m := MustModel(params)
		iv := m.ScrubIntervalFor(UniformMix(), CellsPerLine, 6, 1e-4)
		if iv <= prev {
			t.Fatalf("interval should grow with programming precision: n=%d iv=%g prev=%g", n, iv, prev)
		}
		prev = iv
	}
}
