package pcm

import "testing"

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"non-increasing means", func(p *Params) { p.LevelMeans[2] = p.LevelMeans[1] }},
		{"threshold below mean", func(p *Params) { p.Thresholds[0] = p.LevelMeans[0] - 0.1 }},
		{"threshold above next mean", func(p *Params) { p.Thresholds[1] = p.LevelMeans[2] + 0.1 }},
		{"zero sigma", func(p *Params) { p.SigmaProg = 0 }},
		{"negative nu mean", func(p *Params) { p.NuMean[1] = -0.01 }},
		{"negative nu sigma", func(p *Params) { p.NuSigma[1] = -0.01 }},
		{"zero t0", func(p *Params) { p.T0 = 0 }},
		{"zero horizon", func(p *Params) { p.MaxLog10Time = 0 }},
	}
	for _, m := range mutations {
		p := DefaultParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestGrayCodeRoundTrip(t *testing.T) {
	seen := map[uint8]bool{}
	for level := 0; level < Levels; level++ {
		bits := LevelToBits(level)
		if seen[bits] {
			t.Fatalf("duplicate Gray code %02b", bits)
		}
		seen[bits] = true
		if BitsToLevel(bits) != level {
			t.Fatalf("round trip failed for level %d", level)
		}
	}
}

func TestGrayAdjacentLevelsDifferByOneBit(t *testing.T) {
	for level := 0; level < Levels-1; level++ {
		if BitErrors(level, level+1) != 1 {
			t.Errorf("levels %d and %d should differ by exactly one bit", level, level+1)
		}
	}
	// The classic 2-bit Gray code has 0↔3 also at distance 1 and the two
	// diagonals at distance 2.
	if BitErrors(0, 2) != 2 || BitErrors(1, 3) != 2 {
		t.Error("diagonal levels should differ by two bits")
	}
	if BitErrors(2, 2) != 0 {
		t.Error("same level should have zero bit errors")
	}
}

func TestLevelMixValidate(t *testing.T) {
	if err := UniformMix().Validate(); err != nil {
		t.Errorf("uniform mix invalid: %v", err)
	}
	bad := LevelMix{0.5, 0.5, 0.5, 0}
	if err := bad.Validate(); err == nil {
		t.Error("mix summing to 1.5 accepted")
	}
	neg := LevelMix{-0.1, 0.4, 0.4, 0.3}
	if err := neg.Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
}
