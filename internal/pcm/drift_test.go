package pcm

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestErrProbMonotoneInTime(t *testing.T) {
	m := MustModel(DefaultParams())
	for level := 0; level < Levels-1; level++ {
		prev := -1.0
		for x := 0.0; x <= 10; x += 0.25 {
			p := m.ErrProbAtX(level, x)
			if p < prev {
				t.Fatalf("level %d: ErrProb not monotone at x=%.2f (%g < %g)", level, x, p, prev)
			}
			if p < 0 || p > 1 {
				t.Fatalf("level %d: ErrProb out of [0,1]: %g", level, p)
			}
			prev = p
		}
	}
}

func TestErrProbTopLevelIsZero(t *testing.T) {
	m := MustModel(DefaultParams())
	for _, tt := range []float64{1, 1e3, 1e8} {
		if p := m.ErrProb(Levels-1, tt); p != 0 {
			t.Fatalf("top level ErrProb(%g) = %g, want 0", tt, p)
		}
	}
}

func TestErrProbOrderingAcrossLevels(t *testing.T) {
	// With equal margins, higher drift exponents err sooner: at any fixed
	// x > 0 the intermediate level 2 must be strictly worse than level 1,
	// which is worse than level 0.
	m := MustModel(DefaultParams())
	for _, x := range []float64{2.0, 4.0, 6.0} {
		p0, p1, p2 := m.ErrProbAtX(0, x), m.ErrProbAtX(1, x), m.ErrProbAtX(2, x)
		if !(p2 > p1 && p1 > p0) {
			t.Fatalf("at x=%.1f: p0=%g p1=%g p2=%g, want p2>p1>p0", x, p0, p1, p2)
		}
	}
}

func TestErrProbMatchesBruteForceCells(t *testing.T) {
	m := MustModel(DefaultParams())
	r := stats.NewRNG(71)
	const cellsPerPoint = 200000
	for _, level := range []int{1, 2} {
		for _, x := range []float64{3.0, 4.5, 6.0} {
			tSec := m.TimeOf(x)
			analytic := m.ErrProbAtX(level, x)
			crossed := 0
			for i := 0; i < cellsPerPoint; i++ {
				c := m.WriteCell(r, level)
				if m.ReadLevel(c, tSec) > c.Level {
					crossed++
				}
			}
			mc := float64(crossed) / cellsPerPoint
			sd := math.Sqrt(analytic * (1 - analytic) / cellsPerPoint)
			if math.Abs(mc-analytic) > 5*sd+1e-5 {
				t.Errorf("level %d x=%.1f: MC %.5f vs analytic %.5f", level, x, mc, analytic)
			}
		}
	}
}

func TestCrossingTimeConsistentWithErrProb(t *testing.T) {
	// P(CrossingTime <= t) must equal ErrProb(t) since both describe the
	// same event under the same parameterisation.
	m := MustModel(DefaultParams())
	r := stats.NewRNG(73)
	const n = 100000
	level := 2
	checkAt := []float64{1e3, 1e5, 1e7}
	counts := make([]int, len(checkAt))
	for i := 0; i < n; i++ {
		c := m.WriteCell(r, level)
		ct := m.CrossingTime(c)
		for j, tt := range checkAt {
			if ct <= tt {
				counts[j]++
			}
		}
	}
	for j, tt := range checkAt {
		mc := float64(counts[j]) / n
		analytic := m.ErrProb(level, tt)
		sd := math.Sqrt(analytic*(1-analytic)/n) + 1e-6
		if math.Abs(mc-analytic) > 5*sd {
			t.Errorf("t=%g: P(cross) MC %.5f vs analytic %.5f", tt, mc, analytic)
		}
	}
}

func TestCrossingTimeEdgeCases(t *testing.T) {
	m := MustModel(DefaultParams())
	// Top level never crosses.
	if !math.IsInf(m.CrossingTime(Cell{Level: 3, Nu: 1}), 1) {
		t.Error("top level should never cross")
	}
	// Programming noise already across the threshold: immediate error.
	if ct := m.CrossingTime(Cell{Level: 1, EpsProg: 0.6, Nu: 0.02}); ct != 0 {
		t.Errorf("instant error should cross at 0, got %g", ct)
	}
	// Non-positive nu never crosses.
	if !math.IsInf(m.CrossingTime(Cell{Level: 1, EpsProg: 0, Nu: 0}), 1) {
		t.Error("nu=0 should never cross")
	}
	if !math.IsInf(m.CrossingTime(Cell{Level: 1, EpsProg: 0, Nu: -0.01}), 1) {
		t.Error("negative nu should never cross")
	}
	// Crossing beyond the horizon is treated as never.
	if !math.IsInf(m.CrossingTime(Cell{Level: 1, EpsProg: 0, Nu: 0.01}), 1) {
		t.Error("crossing needing 50 decades should be treated as never")
	}
}

func TestReadLevelThresholds(t *testing.T) {
	m := MustModel(DefaultParams())
	// A noiseless cell reads back its own level at t0.
	for level := 0; level < Levels; level++ {
		c := Cell{Level: level}
		if got := m.ReadLevel(c, 1); got != level {
			t.Errorf("noiseless level %d reads as %d", level, got)
		}
	}
	// A strongly drifted level-1 cell reads as level 2 (or higher).
	c := Cell{Level: 1, Nu: 0.2}
	if got := m.ReadLevel(c, 1e6); got <= 1 {
		t.Errorf("drifted cell still reads %d", got)
	}
}

func TestXClampsAndInverts(t *testing.T) {
	m := MustModel(DefaultParams())
	if m.X(0.5) != 0 {
		t.Error("times before t0 should clamp to x=0")
	}
	if m.X(1e30) != 10 {
		t.Error("x should clamp to MaxLog10Time")
	}
	if math.Abs(m.X(1000)-3) > 1e-12 {
		t.Errorf("X(1000) = %g, want 3", m.X(1000))
	}
	if math.Abs(m.TimeOf(3)-1000) > 1e-9 {
		t.Errorf("TimeOf(3) = %g, want 1000", m.TimeOf(3))
	}
}

func TestExpectedLineErrorsScalesWithCells(t *testing.T) {
	m := MustModel(DefaultParams())
	mix := UniformMix()
	e1 := m.ExpectedLineErrors(mix, 256, 1e5)
	e2 := m.ExpectedLineErrors(mix, 512, 1e5)
	if math.Abs(e2-2*e1) > 1e-9 {
		t.Errorf("expected errors should scale linearly: %g vs %g", e1, e2)
	}
	if e1 <= 0 {
		t.Error("expected errors should be positive at 1e5 s")
	}
}

func TestLineErrorTailGEMatchesMonteCarlo(t *testing.T) {
	m := MustModel(DefaultParams())
	mix := UniformMix()
	r := stats.NewRNG(79)
	const ncells = 64
	const tSec = 1e6
	const trials = 20000
	// Monte Carlo with multinomial level counts matching the analytic
	// convolution's rounding assumption: fixed counts of 16 per level.
	countsGE := make([]int, 6)
	for trial := 0; trial < trials; trial++ {
		errs := 0
		for level := 0; level < Levels; level++ {
			p := m.ErrProb(level, tSec)
			errs += int(r.Binomial(16, p))
		}
		for k := 0; k < len(countsGE); k++ {
			if errs >= k {
				countsGE[k]++
			}
		}
	}
	for k := 1; k < len(countsGE); k++ {
		analytic := m.LineErrorTailGE(mix, ncells, k, tSec)
		mc := float64(countsGE[k]) / trials
		sd := math.Sqrt(analytic*(1-analytic)/trials) + 1e-4
		if math.Abs(mc-analytic) > 5*sd {
			t.Errorf("k=%d: MC %.5f vs analytic %.5f", k, mc, analytic)
		}
	}
}

func TestLineErrorTailGEBoundaries(t *testing.T) {
	m := MustModel(DefaultParams())
	mix := UniformMix()
	if got := m.LineErrorTailGE(mix, 256, 0, 1e4); got != 1 {
		t.Errorf("P(>=0 errors) = %g, want 1", got)
	}
	p1 := m.LineErrorTailGE(mix, 256, 1, 1e4)
	p2 := m.LineErrorTailGE(mix, 256, 2, 1e4)
	if p2 > p1 {
		t.Error("tail must be non-increasing in k")
	}
}

func TestScrubIntervalForMonotoneInTolerance(t *testing.T) {
	m := MustModel(DefaultParams())
	mix := UniformMix()
	const target = 1e-6
	prev := 0.0
	for _, tol := range []int{1, 2, 4, 8} {
		interval := m.ScrubIntervalFor(mix, 256, tol, target)
		if interval <= prev {
			t.Fatalf("tolerating %d errors should allow a longer interval than %g, got %g",
				tol, prev, interval)
		}
		// The returned interval must actually satisfy the target.
		if tail := m.LineErrorTailGE(mix, 256, tol+1, interval); tail > target*1.01 {
			t.Errorf("tol=%d: returned interval %g violates target (tail %g)", tol, interval, tail)
		}
		prev = interval
	}
}

func TestScrubIntervalForUnreachableTarget(t *testing.T) {
	m := MustModel(DefaultParams())
	mix := UniformMix()
	// Demanding essentially zero UE probability with zero tolerance is
	// unreachable because programming errors exist at t=t0.
	if got := m.ScrubIntervalFor(mix, 4096, 0, 1e-15); got != 0 {
		t.Errorf("unreachable target should return 0, got %g", got)
	}
}

func TestNewModelRejectsInvalidParams(t *testing.T) {
	p := DefaultParams()
	p.SigmaProg = -1
	if _, err := NewModel(p); err == nil {
		t.Error("invalid params accepted")
	}
}
