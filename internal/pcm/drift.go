package pcm

import (
	"math"

	"repro/internal/stats"
)

// Model evaluates the analytic drift statistics implied by a Params.
// Immutable after construction and safe for concurrent use.
type Model struct {
	p Params
}

// NewModel validates params and wraps them in a Model.
func NewModel(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// MustModel is NewModel that panics on error.
func MustModel(p Params) *Model {
	m, err := NewModel(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns a copy of the model's parameters.
func (m *Model) Params() Params { return m.p }

// X converts an absolute time-since-write (seconds) into drift decades
// x = log10(t/t0), clamped to [0, MaxLog10Time].
func (m *Model) X(t float64) float64 {
	if t <= m.p.T0 {
		return 0
	}
	x := math.Log10(t / m.p.T0)
	if x > m.p.MaxLog10Time {
		return m.p.MaxLog10Time
	}
	return x
}

// TimeOf converts drift decades back to seconds since write.
func (m *Model) TimeOf(x float64) float64 {
	return m.p.T0 * math.Pow(10, x)
}

// ErrProbAtX returns the probability that a cell programmed to level has
// crossed its upper read threshold after x decades of drift. Level 3 (the
// top band) has no upper threshold and never errs by upward drift.
//
// The log-resistance at drift x is Gaussian with mean M + μν·x and
// variance σp² + σν²·x² (sum of the independent programming and drift
// terms), so the crossing probability is a Q-function.
func (m *Model) ErrProbAtX(level int, x float64) float64 {
	if level < 0 || level >= Levels {
		panic("pcm: level out of range")
	}
	if level == Levels-1 {
		return 0
	}
	margin := m.p.Thresholds[level] - m.p.LevelMeans[level]
	mean := m.p.NuMean[level] * x
	sd := math.Sqrt(m.p.SigmaProg*m.p.SigmaProg + m.p.NuSigma[level]*m.p.NuSigma[level]*x*x)
	return stats.QFunc((margin - mean) / sd)
}

// ErrProb returns the crossing probability after t seconds since write.
func (m *Model) ErrProb(level int, t float64) float64 {
	return m.ErrProbAtX(level, m.X(t))
}

// ExpectedLineErrors returns the expected number of erroneous cells in a
// line of ncells cells with the given level mix, t seconds after a write.
func (m *Model) ExpectedLineErrors(mix LevelMix, ncells int, t float64) float64 {
	x := m.X(t)
	sum := 0.0
	for level := 0; level < Levels; level++ {
		sum += mix[level] * float64(ncells) * m.ErrProbAtX(level, x)
	}
	return sum
}

// LineErrorTailGE returns the probability that a freshly analysed line of
// ncells cells carries at least k erroneous cells t seconds after a write,
// treating cells as independent. The per-level populations are taken as
// the expected (rounded) counts of the mix.
func (m *Model) LineErrorTailGE(mix LevelMix, ncells, k int, t float64) float64 {
	// The exact distribution is a sum of independent binomials (one per
	// level). Convolve the per-level PMFs up to k, then take 1 - P(<k).
	x := m.X(t)
	// probBelow[j] = P(total errors == j), built incrementally, j < k.
	probBelow := make([]float64, k)
	if k > 0 {
		probBelow[0] = 1
	} else {
		return 1
	}
	for level := 0; level < Levels; level++ {
		n := int(math.Round(mix[level] * float64(ncells)))
		if n == 0 {
			continue
		}
		p := m.ErrProbAtX(level, x)
		if p == 0 {
			continue
		}
		next := make([]float64, k)
		for have := 0; have < k; have++ {
			if probBelow[have] == 0 {
				continue
			}
			// Add j errors from this level, keeping total < k.
			for j := 0; have+j < k && j <= n; j++ {
				next[have+j] += probBelow[have] * stats.BinomialPMF(n, j, p)
			}
		}
		probBelow = next
	}
	total := 0.0
	for _, pr := range probBelow {
		total += pr
	}
	tail := 1 - total
	if tail < 0 {
		tail = 0
	}
	return tail
}

// ScrubIntervalFor returns the largest time t (seconds) such that the
// probability of a line accumulating more than tolerable errors stays at
// or below targetProb. This is the designer's question: "how often must I
// scrub to keep per-line UE risk below X?" Found by bisection on the
// monotone tail function; returns MaxLog10Time's horizon if even that is
// safe, and 0 if the target is unreachable at any interval.
func (m *Model) ScrubIntervalFor(mix LevelMix, ncells, tolerable int, targetProb float64) float64 {
	tail := func(t float64) float64 {
		return m.LineErrorTailGE(mix, ncells, tolerable+1, t)
	}
	lo, hi := m.p.T0, m.TimeOf(m.p.MaxLog10Time)
	if tail(hi) <= targetProb {
		return hi
	}
	if tail(lo) > targetProb {
		return 0
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection (log-space)
		if tail(mid) <= targetProb {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
