package pcm

import (
	"math"

	"repro/internal/stats"
)

// Cell is the brute-force reference representation of one programmed MLC
// cell: the frozen programming noise and drift exponent drawn at write
// time. It exists to validate the fast crossing-time machinery and for
// small-scale explorations; the simulator proper never materialises cells.
type Cell struct {
	Level   int     // programmed level, 0..3
	EpsProg float64 // programming noise in log10 decades
	Nu      float64 // drift exponent
}

// WriteCell programs a cell to level, sampling its noise and exponent.
func (m *Model) WriteCell(r *stats.RNG, level int) Cell {
	if level < 0 || level >= Levels {
		panic("pcm: level out of range")
	}
	return Cell{
		Level:   level,
		EpsProg: r.Normal(0, m.p.SigmaProg),
		Nu:      r.Normal(m.p.NuMean[level], m.p.NuSigma[level]),
	}
}

// Resistance returns the cell's log10 resistance t seconds after the write.
func (m *Model) Resistance(c Cell, t float64) float64 {
	return m.p.LevelMeans[c.Level] + c.EpsProg + c.Nu*m.X(t)
}

// ReadLevel returns the level the sense circuit reports t seconds after
// the write, by comparing the drifted resistance against the thresholds.
func (m *Model) ReadLevel(c Cell, t float64) int {
	res := m.Resistance(c, t)
	for level := 0; level < Levels-1; level++ {
		if res < m.p.Thresholds[level] {
			return level
		}
	}
	return Levels - 1
}

// CellErred reports whether the cell reads back at the wrong level after
// t seconds.
func (m *Model) CellErred(c Cell, t float64) bool {
	return m.ReadLevel(c, t) != c.Level
}

// CrossingTime returns the time (seconds since write) at which the cell's
// resistance crosses the threshold directly above its level, or +Inf if it
// never does (within the modelled horizon). A cell already above its
// threshold at programming time returns 0.
//
// Note this tracks only upward crossings of the adjacent threshold — the
// drift mechanism. Downward programming errors (ε below the lower
// threshold) are possible but are second-order for drift-dominated soft
// errors; ReadLevel captures them in the reference model.
func (m *Model) CrossingTime(c Cell) float64 {
	if c.Level == Levels-1 {
		return math.Inf(1)
	}
	margin := m.p.Thresholds[c.Level] - m.p.LevelMeans[c.Level] - c.EpsProg
	if margin <= 0 {
		return 0
	}
	if c.Nu <= 0 {
		return math.Inf(1)
	}
	x := margin / c.Nu
	if x > m.p.MaxLog10Time {
		return math.Inf(1)
	}
	return m.TimeOf(x)
}
