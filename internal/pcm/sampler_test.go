package pcm

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

func TestNewLineSamplerValidation(t *testing.T) {
	m := MustModel(DefaultParams())
	if _, err := NewLineSampler(m, LevelMix{2, 0, 0, 0}, 256, 12); err == nil {
		t.Error("invalid mix accepted")
	}
	if _, err := NewLineSampler(m, UniformMix(), 0, 12); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := NewLineSampler(m, UniformMix(), 256, 0); err == nil {
		t.Error("zero k accepted")
	}
}

func TestSampleCrossingsSortedAndBounded(t *testing.T) {
	m := MustModel(DefaultParams())
	s, err := NewLineSampler(m, UniformMix(), 256, 12)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(81)
	var buf []float64
	for trial := 0; trial < 500; trial++ {
		buf = s.SampleCrossings(r, buf)
		if len(buf) > 12 {
			t.Fatalf("returned %d crossings, k=12", len(buf))
		}
		if !sort.Float64sAreSorted(buf) {
			t.Fatalf("crossings not sorted: %v", buf)
		}
		for _, ct := range buf {
			if ct < 0 || math.IsInf(ct, 0) || math.IsNaN(ct) {
				t.Fatalf("bad crossing time %g", ct)
			}
		}
	}
}

func TestSampleCrossingsCountMatchesAnalytic(t *testing.T) {
	// The number of crossings before time t must follow the analytic
	// expectation E = Σ_level n_level · P_level(t), well below saturation.
	m := MustModel(DefaultParams())
	const ncells = 256
	s, err := NewLineSampler(m, UniformMix(), ncells, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(83)
	const trials = 30000
	checkAt := []float64{1e4, 1e5, 1e6}
	sums := make([]float64, len(checkAt))
	var buf []float64
	for trial := 0; trial < trials; trial++ {
		buf = s.SampleCrossings(r, buf)
		for j, tt := range checkAt {
			c := 0
			for _, ct := range buf {
				if ct <= tt {
					c++
				}
			}
			sums[j] += float64(c)
		}
	}
	for j, tt := range checkAt {
		want := m.ExpectedLineErrors(UniformMix(), ncells, tt)
		got := sums[j] / trials
		if want > 10 {
			continue // too close to the k=16 saturation cap for a fair check
		}
		tol := 5*math.Sqrt(want/trials) + 0.01 + 0.03*want
		if math.Abs(got-want) > tol {
			t.Errorf("t=%g: mean crossings %.4f vs analytic %.4f", tt, got, want)
		}
	}
}

func TestSampleCrossingsMatchesBruteForceDistribution(t *testing.T) {
	// Full distribution check against a brute-force per-cell simulation on
	// a small line: P(#errors >= 1) and P(#errors >= 2) at a fixed time.
	p := DefaultParams()
	m := MustModel(p)
	const ncells = 32
	const tSec = 2e5
	const trials = 20000

	// Brute force: materialise every cell.
	r1 := stats.NewRNG(85)
	bruteGE1, bruteGE2 := 0, 0
	for trial := 0; trial < trials; trial++ {
		errs := 0
		for i := 0; i < ncells; i++ {
			level := r1.Intn(Levels)
			c := m.WriteCell(r1, level)
			if m.CrossingTime(c) <= tSec {
				errs++
			}
		}
		if errs >= 1 {
			bruteGE1++
		}
		if errs >= 2 {
			bruteGE2++
		}
	}

	// Fast sampler.
	s, err := NewLineSampler(m, UniformMix(), ncells, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2 := stats.NewRNG(86)
	fastGE1, fastGE2 := 0, 0
	var buf []float64
	for trial := 0; trial < trials; trial++ {
		buf = s.SampleCrossings(r2, buf)
		errs := 0
		for _, ct := range buf {
			if ct <= tSec {
				errs++
			}
		}
		if errs >= 1 {
			fastGE1++
		}
		if errs >= 2 {
			fastGE2++
		}
	}

	for _, cmp := range []struct {
		name        string
		brute, fast int
	}{
		{"P(>=1)", bruteGE1, fastGE1},
		{"P(>=2)", bruteGE2, fastGE2},
	} {
		pb := float64(cmp.brute) / trials
		pf := float64(cmp.fast) / trials
		sd := math.Sqrt(pb*(1-pb)/trials)*5 + 0.005
		if math.Abs(pb-pf) > sd {
			t.Errorf("%s: brute %.4f vs fast %.4f", cmp.name, pb, pf)
		}
	}
}

func TestSampleCrossingsSingleLevelMix(t *testing.T) {
	// All cells at the top level: no upward crossings ever.
	m := MustModel(DefaultParams())
	s, err := NewLineSampler(m, LevelMix{0, 0, 0, 1}, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(87)
	for trial := 0; trial < 100; trial++ {
		if buf := s.SampleCrossings(r, nil); len(buf) != 0 {
			t.Fatalf("top-level-only line produced crossings: %v", buf)
		}
	}
}

func TestSampleCrossingsSaturation(t *testing.T) {
	// At an extreme horizon nearly all level-2 cells cross; the sampler
	// must cap at K and the K-th entry must be an early crossing.
	m := MustModel(DefaultParams())
	const k = 6
	s, err := NewLineSampler(m, LevelMix{0, 0, 1, 0}, 256, k)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(89)
	sawFull := 0
	for trial := 0; trial < 200; trial++ {
		buf := s.SampleCrossings(r, nil)
		if len(buf) == k {
			sawFull++
		}
	}
	if sawFull < 190 {
		t.Errorf("level-2-only lines should nearly always saturate k=%d; got %d/200", k, sawFull)
	}
}

func TestSamplerReusesBuffer(t *testing.T) {
	m := MustModel(DefaultParams())
	s, _ := NewLineSampler(m, UniformMix(), 256, 12)
	r := stats.NewRNG(91)
	buf := make([]float64, 0, 12)
	got := s.SampleCrossings(r, buf)
	if cap(got) != cap(buf) && len(got) <= 12 && cap(buf) >= len(got) {
		t.Error("sampler did not reuse provided buffer")
	}
}

func BenchmarkSampleCrossings(b *testing.B) {
	m := MustModel(DefaultParams())
	s, _ := NewLineSampler(m, UniformMix(), 256, 12)
	r := stats.NewRNG(93)
	var buf []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.SampleCrossings(r, buf)
	}
}

func BenchmarkErrProb(b *testing.B) {
	m := MustModel(DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ErrProbAtX(2, 5.0)
	}
}
