package pcm

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// MultiLevel is the analytic drift model generalised to any number of
// resistance levels packed into a fixed resistance window — the question
// "what does going from 2-bit MLC to 3-bit TLC do to the scrub problem?"
// (the simulator proper stays at the paper's 2-bit cells; this model is
// for the density study, experiment F19).
//
// Levels are spaced uniformly across the window; the drift exponent
// rises linearly from NuFloor at the crystalline end to NuCeil at the
// amorphous end, matching the 4-level defaults.
type MultiLevel struct {
	// Levels is the number of resistance states (2^bits).
	Levels int
	// WindowDecades is the total log10-resistance span between the lowest
	// and highest level means.
	WindowDecades float64
	// BaseLog10 is the lowest level's mean log10 resistance.
	BaseLog10 float64
	// SigmaProg is the programming spread in decades.
	SigmaProg float64
	// NuFloor and NuCeil bound the per-level mean drift exponents.
	NuFloor, NuCeil float64
	// NuSpread is the cell-to-cell σν as a fraction of the level's μν.
	NuSpread float64
	// MaxLog10Time bounds the modelled horizon in decades of seconds.
	MaxLog10Time float64
}

// NewMultiLevel builds an n-level model sharing the 4-level defaults'
// window and drift range, so DefaultParams() is the n=4 special case.
func NewMultiLevel(levels int) (*MultiLevel, error) {
	def := DefaultParams()
	m := &MultiLevel{
		Levels:        levels,
		WindowDecades: def.LevelMeans[Levels-1] - def.LevelMeans[0],
		BaseLog10:     def.LevelMeans[0],
		SigmaProg:     def.SigmaProg,
		NuFloor:       def.NuMean[0],
		NuCeil:        def.NuMean[Levels-1],
		NuSpread:      def.NuSigma[0] / def.NuMean[0],
		MaxLog10Time:  def.MaxLog10Time,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the model.
func (m *MultiLevel) Validate() error {
	if m.Levels < 2 {
		return fmt.Errorf("pcm: need at least 2 levels, got %d", m.Levels)
	}
	if m.WindowDecades <= 0 || m.SigmaProg <= 0 {
		return fmt.Errorf("pcm: window and sigma must be positive")
	}
	if m.NuFloor < 0 || m.NuCeil < m.NuFloor {
		return fmt.Errorf("pcm: drift exponent range invalid [%g, %g]", m.NuFloor, m.NuCeil)
	}
	if m.NuSpread < 0 {
		return fmt.Errorf("pcm: NuSpread must be non-negative")
	}
	if m.MaxLog10Time <= 0 {
		return fmt.Errorf("pcm: MaxLog10Time must be positive")
	}
	return nil
}

// BitsPerCell returns log2(Levels); fractional for non-power-of-two.
func (m *MultiLevel) BitsPerCell() float64 { return math.Log2(float64(m.Levels)) }

// levelMean returns level l's mean log10 resistance.
func (m *MultiLevel) levelMean(l int) float64 {
	return m.BaseLog10 + m.WindowDecades*float64(l)/float64(m.Levels-1)
}

// levelNu returns level l's mean drift exponent.
func (m *MultiLevel) levelNu(l int) float64 {
	return m.NuFloor + (m.NuCeil-m.NuFloor)*float64(l)/float64(m.Levels-1)
}

// ErrProb returns the probability that a cell programmed to level l has
// drifted across its upper read threshold (the midpoint to the next
// level) after t seconds. The top level never errs upward.
func (m *MultiLevel) ErrProb(l int, t float64) float64 {
	if l < 0 || l >= m.Levels {
		panic("pcm: level out of range")
	}
	if l == m.Levels-1 {
		return 0
	}
	x := 0.0
	if t > 1 {
		x = math.Log10(t)
		if x > m.MaxLog10Time {
			x = m.MaxLog10Time
		}
	}
	margin := (m.levelMean(l+1) - m.levelMean(l)) / 2
	nu := m.levelNu(l)
	sd := math.Sqrt(m.SigmaProg*m.SigmaProg + (m.NuSpread*nu*x)*(m.NuSpread*nu*x))
	return stats.QFunc((margin - nu*x) / sd)
}

// ExpectedLineErrors returns the expected erroneous cells among ncells
// cells with uniformly distributed levels after t seconds.
func (m *MultiLevel) ExpectedLineErrors(ncells int, t float64) float64 {
	sum := 0.0
	for l := 0; l < m.Levels; l++ {
		sum += m.ErrProb(l, t)
	}
	return sum * float64(ncells) / float64(m.Levels)
}

// SafeInterval returns the largest t with the expected line errors at or
// below budget — the density study's scrub-interval proxy (geometric
// bisection, like Model.ScrubIntervalFor). Returns the horizon if even
// that is safe and 0 if the budget is exceeded immediately.
func (m *MultiLevel) SafeInterval(ncells int, budget float64) float64 {
	f := func(t float64) float64 { return m.ExpectedLineErrors(ncells, t) }
	lo, hi := 1.0, math.Pow(10, m.MaxLog10Time)
	if f(hi) <= budget {
		return hi
	}
	if f(lo) > budget {
		return 0
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi)
		if f(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
