// Package pcm models multi-level-cell (MLC) phase-change memory at the
// level the scrub study needs: per-level programming distributions,
// resistance drift, read thresholds, and — critically — the statistics of
// *when* each cell's drifting resistance crosses into the neighbouring
// level's band and becomes a soft error.
//
// The resistance model is the standard power-law drift from the PCM
// literature: in log10 space,
//
//	log10 R(t) = M[level] + ε + ν · log10(t/t0)
//
// where ε ~ N(0, σp) is programming noise (frozen at write time) and
// ν ~ N(μν[level], σν[level]) is the cell's drift exponent (also frozen at
// write time). Amorphous (high-resistance) states drift hard; the
// crystalline SET state barely drifts. A cell reads incorrectly once its
// resistance crosses the threshold above its level, so the intermediate
// levels — with a threshold overhead AND a meaningful drift exponent —
// dominate the soft-error rate, exactly the phenomenon the paper targets.
package pcm

import (
	"errors"
	"fmt"
)

// Levels is the number of resistance levels in a 2-bit MLC cell.
const Levels = 4

// BitsPerCell is the storage density of one MLC cell.
const BitsPerCell = 2

// CellsPerLine is the number of MLC cells backing one 64-byte data line
// (512 bits / 2 bits per cell). Check bits occupy additional cells tracked
// by the ECC geometry.
const CellsPerLine = 512 / BitsPerCell

// Params holds the device physics of an MLC PCM array.
type Params struct {
	// LevelMeans is the mean programmed log10-resistance of each level,
	// in increasing order.
	LevelMeans [Levels]float64
	// Thresholds are the read boundaries between adjacent levels:
	// Thresholds[i] separates level i from level i+1.
	Thresholds [Levels - 1]float64
	// SigmaProg is the programming noise stddev in log10-resistance decades.
	SigmaProg float64
	// NuMean is the mean drift exponent per level (dimensionless).
	NuMean [Levels]float64
	// NuSigma is the cell-to-cell stddev of the drift exponent per level.
	NuSigma [Levels]float64
	// T0 is the drift normalisation time in seconds (resistance is defined
	// as programmed at t = T0 after the write).
	T0 float64
	// MaxLog10Time bounds the modelled horizon: crossings later than
	// t0·10^MaxLog10Time are treated as "never" (default 10 → 10^10 s,
	// ~317 years, far beyond any experiment).
	MaxLog10Time float64
}

// DefaultParams returns the baseline 2-bit MLC PCM device used throughout
// the study. Numbers follow the public drift literature: one decade of
// separation between levels, ~0.08 decades of programming noise, and drift
// exponents rising from ~10^-3 (SET) to ~0.10 (full RESET) with ~40 %
// cell-to-cell variation.
func DefaultParams() Params {
	return Params{
		LevelMeans:   [Levels]float64{3.0, 4.0, 5.0, 6.0},
		Thresholds:   [Levels - 1]float64{3.5, 4.5, 5.5},
		SigmaProg:    0.08,
		NuMean:       [Levels]float64{0.001, 0.02, 0.06, 0.10},
		NuSigma:      [Levels]float64{0.0004, 0.008, 0.024, 0.040},
		T0:           1.0,
		MaxLog10Time: 10,
	}
}

// Validate checks internal consistency of the parameters.
func (p *Params) Validate() error {
	for i := 1; i < Levels; i++ {
		if p.LevelMeans[i] <= p.LevelMeans[i-1] {
			return fmt.Errorf("pcm: level means must be strictly increasing (level %d)", i)
		}
	}
	for i := 0; i < Levels-1; i++ {
		if p.Thresholds[i] <= p.LevelMeans[i] || p.Thresholds[i] >= p.LevelMeans[i+1] {
			return fmt.Errorf("pcm: threshold %d (%.3f) must lie between level means %.3f and %.3f",
				i, p.Thresholds[i], p.LevelMeans[i], p.LevelMeans[i+1])
		}
	}
	if p.SigmaProg <= 0 {
		return errors.New("pcm: SigmaProg must be positive")
	}
	for i := 0; i < Levels; i++ {
		if p.NuMean[i] < 0 {
			return fmt.Errorf("pcm: NuMean[%d] must be non-negative", i)
		}
		if p.NuSigma[i] < 0 {
			return fmt.Errorf("pcm: NuSigma[%d] must be non-negative", i)
		}
	}
	if p.T0 <= 0 {
		return errors.New("pcm: T0 must be positive")
	}
	if p.MaxLog10Time <= 0 {
		return errors.New("pcm: MaxLog10Time must be positive")
	}
	return nil
}

// grayEncode maps a level (0..3) to its 2-bit Gray codeword, so that
// adjacent-level misreads corrupt exactly one bit.
var grayEncode = [Levels]uint8{0b00, 0b01, 0b11, 0b10}

// grayDecode maps a 2-bit Gray codeword back to its level.
var grayDecode = [Levels]uint8{0, 1, 3, 2}

// LevelToBits returns the 2-bit Gray code stored for a level.
func LevelToBits(level int) uint8 {
	return grayEncode[level]
}

// BitsToLevel returns the level a 2-bit Gray code represents.
func BitsToLevel(bits uint8) int {
	return int(grayDecode[bits&0b11])
}

// BitErrors returns the number of data bits corrupted when a cell written
// as wrote is read back as read.
func BitErrors(wrote, read int) int {
	diff := grayEncode[wrote] ^ grayEncode[read]
	n := 0
	for diff != 0 {
		n += int(diff & 1)
		diff >>= 1
	}
	return n
}

// LevelMix is the fraction of a line's cells programmed to each level.
// Uniform data produces the uniform mix; real data skews toward 00/11.
type LevelMix [Levels]float64

// UniformMix is the level distribution of uniformly random data.
func UniformMix() LevelMix {
	return LevelMix{0.25, 0.25, 0.25, 0.25}
}

// Validate checks that the mix is a probability distribution.
func (m LevelMix) Validate() error {
	sum := 0.0
	for i, f := range m {
		if f < 0 {
			return fmt.Errorf("pcm: mix fraction %d is negative", i)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("pcm: mix fractions sum to %.4f, want 1", sum)
	}
	return nil
}
