package pcm_test

import (
	"fmt"

	"repro/internal/pcm"
)

// Demonstrates the analytic drift model: per-cell error probabilities and
// the safe scrub interval they imply for a given ECC budget.
func ExampleModel() {
	model := pcm.MustModel(pcm.DefaultParams())

	// Intermediate levels dominate the soft-error rate.
	fmt.Printf("P(err | level 2, 1 hour)  = %.4f\n", model.ErrProb(2, 3600))
	fmt.Printf("P(err | level 2, 1 day)   = %.4f\n", model.ErrProb(2, 86400))
	fmt.Printf("P(err | level 3, forever) = %.4f\n", model.ErrProb(3, 1e9))

	// Expected errors for a 256-cell line of uniform data after a day.
	e := model.ExpectedLineErrors(pcm.UniformMix(), pcm.CellsPerLine, 86400)
	fmt.Printf("E[line errors, 1 day]     = %.2f\n", e)

	// How often must we scrub to keep P(> 6 errors) under 1e-4 per sweep?
	interval := model.ScrubIntervalFor(pcm.UniformMix(), pcm.CellsPerLine, 6, 1e-4)
	fmt.Printf("safe interval (tol 6)     = %.1f hours\n", interval/3600)
	// Output:
	// P(err | level 2, 1 hour)  = 0.0071
	// P(err | level 2, 1 day)   = 0.0770
	// P(err | level 3, forever) = 0.0000
	// E[line errors, 1 day]     = 4.93
	// safe interval (tol 6)     = 2.4 hours
}
