package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of xs and ys.
// Used by the model-validation tests to compare Monte Carlo output
// against reference distributions without binning choices.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		// Advance both ECDFs past the next value, consuming ties on both
		// sides, then measure — evaluating mid-tie would report spurious
		// differences for identical samples.
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSCritical returns the approximate critical value of the two-sample KS
// statistic at significance alpha (two-sided, large-sample formula):
// c(α)·sqrt((n+m)/(n·m)) with c from the asymptotic Kolmogorov
// distribution. Supported alphas: 0.10, 0.05, 0.01, 0.001; other values
// fall back to the direct formula c(α) = sqrt(-ln(α/2)/2).
func KSCritical(n, m int, alpha float64) float64 {
	if n < 1 || m < 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}

// KSAgainstCDF returns the one-sample KS statistic of xs against the
// continuous reference CDF.
func KSAgainstCDF(xs []float64, cdf func(float64) float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	sort.Float64s(a)
	n := float64(len(a))
	var d float64
	for i, x := range a {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}
