// Package stats provides the deterministic random-number generation,
// probability distributions, and summary statistics used throughout the
// scrub simulator.
//
// Every stochastic component in the repository draws from a stats.RNG so
// that experiments are reproducible from a single seed: the same seed
// always yields the same error events, the same workload stream, and the
// same endurance draws, on every platform.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// xoshiro256**, seeded via SplitMix64. It is NOT safe for concurrent use;
// give each goroutine its own RNG (see Split).
type RNG struct {
	s [4]uint64

	// cached spare normal variate for the Box-Muller polar method
	haveSpare bool
	spare     float64
}

// NewRNG returns a generator seeded from seed. Any seed, including zero,
// produces a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using SplitMix64, guaranteeing
// a non-degenerate xoshiro state for any input.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro requires a not-all-zero state; SplitMix64 cannot produce four
	// consecutive zeros, but guard anyway for safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.haveSpare = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new RNG whose stream is statistically independent of r's
// future output. It is the supported way to fan a seed out to subsystems.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// SplitInto is Split writing into an existing generator instead of
// allocating one: it consumes the same single draw from r and leaves dst
// in exactly the state Split's result would have. Allocation-free, for
// callers that recycle their RNGs.
func (r *RNG) SplitInto(dst *RNG) {
	dst.Seed(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fill writes len(dst) uniform float64s in [0, 1) into dst, consuming
// exactly len(dst) draws — dst[i] equals what the i-th Float64 call would
// have returned. The generator state is kept in registers across the
// batch, which is measurably faster than per-call pointer updates on hot
// fixed-count paths (e.g. per-line endurance initialisation).
func (r *RNG) Fill(dst []float64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		result := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		dst[i] = float64(result>>11) / (1 << 53)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's method with a
// rejection step to remove modulo bias. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Normal returns a normally distributed variate with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.StdNormal()
}

// StdNormal returns a standard normal variate (mean 0, stddev 1).
func (r *RNG) StdNormal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// LogNormal returns exp(N(mu, sigma)): a lognormal variate parameterized by
// the mean and stddev of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponential variate with the given rate (λ > 0).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so Log never sees zero.
	return -math.Log(1-u) / rate
}

// Poisson returns a Poisson variate with mean lambda. For small lambda it
// uses Knuth's product method; for large lambda the PTRS transformed
// rejection method keeps it O(1).
func (r *RNG) Poisson(lambda float64) int64 {
	switch {
	case lambda < 0:
		panic("stats: Poisson with negative lambda")
	case lambda == 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := int64(0)
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for lambda >= 10.
func (r *RNG) poissonPTRS(lambda float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		rhs := k*logLambda - lambda - logGamma(k+1)
		if lhs <= rhs {
			return int64(k)
		}
	}
}

// logGamma is a thin wrapper over math.Lgamma discarding the sign (the
// argument is always positive here).
func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Binomial returns a binomial(n, p) variate: the number of successes in n
// independent trials with success probability p. It is exact and uses an
// inversion method for small n·p and a normal-approximation-free BTPE-lite
// (waiting-time) method otherwise, so it remains correct for extreme p.
func (r *RNG) Binomial(n int64, p float64) int64 {
	switch {
	case n < 0:
		panic("stats: Binomial with negative n")
	case p < 0 || p > 1:
		panic("stats: Binomial with p outside [0,1]")
	case n == 0 || p == 0:
		return 0
	case p == 1:
		return n
	}
	// Exploit symmetry so p <= 1/2.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	np := float64(n) * p
	if np < 30 {
		// Geometric waiting-time method: expected iterations ≈ np + 1.
		q := math.Log(1 - p)
		var count int64
		pos := int64(0)
		for {
			g := int64(math.Floor(math.Log(1-r.Float64()) / q))
			pos += g + 1
			if pos > n {
				return count
			}
			count++
		}
	}
	// Inversion via Poisson-like stepping is too slow for big np; use the
	// sum of a normal-free recursive split: Binomial(n,p) =
	// Binomial(k,p) + Binomial(n-k,p). Split until np < 30.
	half := n / 2
	return r.Binomial(half, p) + r.Binomial(n-half, p)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Shuffle permutes the first n elements using the provided swap function
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
