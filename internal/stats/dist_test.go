package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		got := StdNormalCDF(c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Φ(%g) = %.15f, want %.15f", c.x, got, c.want)
		}
	}
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if got := NormalCDF(1, 2, 0); got != 0 {
		t.Errorf("CDF below point mass = %v, want 0", got)
	}
	if got := NormalCDF(3, 2, 0); got != 1 {
		t.Errorf("CDF above point mass = %v, want 1", got)
	}
}

func TestQFuncComplementsCDF(t *testing.T) {
	f := func(raw int16) bool {
		x := float64(raw) / 4096 // range ±8
		return math.Abs(QFunc(x)+StdNormalCDF(x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQFuncDeepTail(t *testing.T) {
	// Q(8) ≈ 6.22e-16; a naive 1-Φ(x) would underflow to 0.
	q := QFunc(8)
	if q <= 0 || q > 1e-14 {
		t.Errorf("Q(8) = %g, want ~6e-16", q)
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-6, 0.001, 0.025, 0.5, 0.8, 0.975, 0.999, 1 - 1e-9} {
		x := StdNormalQuantile(p)
		back := StdNormalCDF(x)
		if math.Abs(back-p) > 1e-9*math.Max(1, 1/p) && math.Abs(back-p) > 1e-12 {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, back)
		}
	}
	if math.Abs(StdNormalQuantile(0.5)) > 1e-12 {
		t.Errorf("median quantile not 0: %g", StdNormalQuantile(0.5))
	}
}

func TestStdNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StdNormalQuantile(%g) did not panic", p)
				}
			}()
			StdNormalQuantile(p)
		}()
	}
}

func TestBinomialTailGEBasics(t *testing.T) {
	if got := BinomialTailGE(10, 0, 0.3); got != 1 {
		t.Errorf("P(X>=0) = %v, want 1", got)
	}
	if got := BinomialTailGE(10, 11, 0.3); got != 0 {
		t.Errorf("P(X>=11) = %v, want 0", got)
	}
	// P(X>=1) = 1-(1-p)^n.
	n, p := 20, 0.05
	want := 1 - math.Pow(1-p, float64(n))
	if got := BinomialTailGE(n, 1, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(X>=1) = %v, want %v", got, want)
	}
	// P(X>=n) = p^n.
	if got := BinomialTailGE(4, 4, 0.5); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("P(X>=4) = %v, want 0.0625", got)
	}
}

func TestBinomialTailMatchesPMFSum(t *testing.T) {
	n, p := 32, 0.07
	for k := 0; k <= n; k++ {
		sum := 0.0
		for i := k; i <= n; i++ {
			sum += BinomialPMF(n, i, p)
		}
		got := BinomialTailGE(n, k, p)
		if math.Abs(got-sum) > 1e-10 {
			t.Errorf("tail(%d) = %g, pmf-sum = %g", k, got, sum)
		}
	}
}

func TestBinomialPMFNormalizes(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw%100) + 1
		p := float64(pRaw) / 65536
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += BinomialPMF(n, k, p)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(5, -1, 0.5) != 0 || BinomialPMF(5, 6, 0.5) != 0 {
		t.Error("out-of-range k should have zero mass")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 5, 1) != 1 {
		t.Error("degenerate p mass misplaced")
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	z := NewZipf(8, 0)
	for i := 0; i < 8; i++ {
		if math.Abs(z.Prob(i)-0.125) > 1e-12 {
			t.Errorf("P(%d) = %v, want 0.125", i, z.Prob(i))
		}
	}
}

func TestZipfSkewOrdersProbabilities(t *testing.T) {
	z := NewZipf(100, 1.0)
	for i := 1; i < 100; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-15 {
			t.Fatalf("P(%d)=%g > P(%d)=%g", i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
	// Element 0 should carry ~1/H(100) of the mass.
	h := 0.0
	for i := 1; i <= 100; i++ {
		h += 1 / float64(i)
	}
	if math.Abs(z.Prob(0)-1/h) > 1e-12 {
		t.Errorf("P(0) = %v, want %v", z.Prob(0), 1/h)
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	r := NewRNG(101)
	z := NewZipf(16, 0.8)
	counts := make([]int, 16)
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		want := z.Prob(i) * trials
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want)+5 {
			t.Errorf("element %d: count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%200) + 1
		s := float64(sRaw) / 64 // 0..4
		z := NewZipf(n, s)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += z.Prob(i)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%g) did not panic", c.n, c.s)
				}
			}()
			NewZipf(c.n, c.s)
		}()
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z := NewZipf(4, 1)
	if z.Prob(-1) != 0 || z.Prob(4) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}
