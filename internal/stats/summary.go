package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming moments of a sequence of observations using
// Welford's numerically stable online algorithm.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 if fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Merge folds another summary into s, as if all of o's observations had
// been Added to s.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// summaryWire is the JSON form of a Summary: the exact Welford state, so
// a summary can cross a process boundary (the cluster shard protocol)
// and keep producing bit-identical Mean/Variance/Min/Max on the far side.
// encoding/json round-trips float64 exactly, so marshal→unmarshal loses
// nothing.
type summaryWire struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON encodes the summary's full accumulator state.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryWire{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores a summary from its wire state.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.N < 0 {
		return fmt.Errorf("stats: summary with negative n %d", w.N)
	}
	s.n, s.mean, s.m2, s.min, s.max = w.N, w.Mean, w.M2, w.Min, w.Max
	return nil
}

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts xs, so it is
// suitable for post-hoc analysis rather than hot loops.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile requires q in [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi); observations outside
// the range are counted in under/overflow bins.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int64
	Underflow int64
	Overflow  int64
	width     float64
}

// NewHistogram creates a histogram with nbins equal-width bins spanning
// [lo, hi). It panics on a degenerate range or non-positive bin count.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if !(hi > lo) {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Bins:  make([]int64, nbins),
		width: (hi - lo) / float64(nbins),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / h.width)
		if i >= len(h.Bins) { // rounding guard at the upper edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the count of all observations, including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.Underflow + h.Overflow
	for _, c := range h.Bins {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// Mode returns the center of the most populated bin (the first such bin on
// ties). It returns NaN for an empty histogram.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, int64(0)
	for i, c := range h.Bins {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return math.NaN()
	}
	return h.BinCenter(best)
}

// Counter is a labeled monotonic counter set, used for event accounting
// throughout the simulator.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: map[string]int64{}} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.counts[name] += delta }

// Get returns the named counter (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for k := range c.counts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
