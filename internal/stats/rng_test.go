package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed degenerate: only %d distinct values in 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.005 {
		t.Fatalf("uniform mean %.4f, want ~0.5", s.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(5)
	const n = 10
	counts := make([]int, n)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := trials / n
	for v, c := range counts {
		if math.Abs(float64(c-want)) > 4*math.Sqrt(float64(want)) {
			t.Errorf("bucket %d count %d deviates from %d", v, c, want)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	const mean, sd = 3.5, 2.0
	for i := 0; i < 200000; i++ {
		s.Add(r.Normal(mean, sd))
	}
	if math.Abs(s.Mean()-mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ~%.1f", s.Mean(), mean)
	}
	if math.Abs(s.StdDev()-sd) > 0.02 {
		t.Errorf("normal sd %.4f, want ~%.1f", s.StdDev(), sd)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(17)
	xs := make([]float64, 100001)
	for i := range xs {
		xs[i] = r.LogNormal(2, 0.5)
	}
	med := Quantile(xs, 0.5)
	want := math.Exp(2.0)
	if math.Abs(med-want)/want > 0.02 {
		t.Errorf("lognormal median %.3f, want ~%.3f", med, want)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(19)
	var s Summary
	const rate = 4.0
	for i := 0; i < 200000; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		s.Add(x)
	}
	if math.Abs(s.Mean()-1/rate) > 0.005 {
		t.Errorf("exponential mean %.4f, want ~%.4f", s.Mean(), 1/rate)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(23)
	for _, lambda := range []float64{0.5, 3, 12, 80, 400} {
		var s Summary
		for i := 0; i < 50000; i++ {
			s.Add(float64(r.Poisson(lambda)))
		}
		tol := 5 * math.Sqrt(lambda/50000) * 3
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(s.Mean()-lambda) > lambda*0.05+tol {
			t.Errorf("Poisson(%g) mean %.3f", lambda, s.Mean())
		}
		if math.Abs(s.Variance()-lambda) > lambda*0.10+tol {
			t.Errorf("Poisson(%g) variance %.3f", lambda, s.Variance())
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := NewRNG(1)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := NewRNG(29)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Errorf("Binomial(0,.5)=%d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Errorf("Binomial(10,0)=%d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Errorf("Binomial(10,1)=%d", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(31)
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.3}, {100, 0.01}, {1000, 0.5}, {256, 0.002}, {50000, 0.001}, {64, 0.9},
	}
	for _, c := range cases {
		var s Summary
		trials := 20000
		for i := 0; i < trials; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%g)=%d out of range", c.n, c.p, v)
			}
			s.Add(float64(v))
		}
		mean := float64(c.n) * c.p
		variance := mean * (1 - c.p)
		tolM := 5 * math.Sqrt(variance/float64(trials))
		if math.Abs(s.Mean()-mean) > tolM+0.01 {
			t.Errorf("Binomial(%d,%g) mean %.4f want %.4f", c.n, c.p, s.Mean(), mean)
		}
		if variance > 0.01 && math.Abs(s.Variance()-variance)/variance > 0.15 {
			t.Errorf("Binomial(%d,%g) var %.4f want %.4f", c.n, c.p, s.Variance(), variance)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(37)
	const p = 0.125
	hit := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hit++
		}
	}
	f := float64(hit) / trials
	if math.Abs(f-p) > 0.005 {
		t.Errorf("Bernoulli frequency %.4f, want ~%.3f", f, p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(41)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(43)
	child := r.Split()
	// The child stream should not be identical to the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split child mirrors parent (%d/64 collisions)", same)
	}
}
