package stats

import (
	"math"
	"testing"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	if d := KSStatistic(xs, ys); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSStatisticEmptyNaN(t *testing.T) {
	if !math.IsNaN(KSStatistic(nil, []float64{1})) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSSameDistributionPassesCritical(t *testing.T) {
	r := NewRNG(1)
	const n = 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Normal(3, 2)
		ys[i] = r.Normal(3, 2)
	}
	d := KSStatistic(xs, ys)
	crit := KSCritical(n, n, 0.001)
	if d > crit {
		t.Errorf("same-distribution KS %.4f exceeds critical %.4f", d, crit)
	}
}

func TestKSDifferentDistributionsFailCritical(t *testing.T) {
	r := NewRNG(2)
	const n = 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Normal(0, 1)
		ys[i] = r.Normal(0.3, 1) // shifted mean
	}
	d := KSStatistic(xs, ys)
	crit := KSCritical(n, n, 0.001)
	if d <= crit {
		t.Errorf("shifted distributions KS %.4f below critical %.4f", d, crit)
	}
}

func TestKSCriticalShapes(t *testing.T) {
	if !math.IsNaN(KSCritical(0, 5, 0.05)) {
		t.Error("n=0 should give NaN")
	}
	// Critical value shrinks with sample size.
	if KSCritical(100, 100, 0.05) <= KSCritical(10000, 10000, 0.05) {
		t.Error("critical value should shrink with n")
	}
	// And grows as alpha tightens.
	if KSCritical(100, 100, 0.001) <= KSCritical(100, 100, 0.05) {
		t.Error("critical value should grow as alpha shrinks")
	}
}

func TestKSAgainstCDFUniform(t *testing.T) {
	r := NewRNG(3)
	const n = 10000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	d := KSAgainstCDF(xs, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	})
	// One-sample critical value at alpha=0.001 ≈ 1.95/sqrt(n).
	if d > 1.95/math.Sqrt(n) {
		t.Errorf("uniform sample KS %.4f too large", d)
	}
	if !math.IsNaN(KSAgainstCDF(nil, func(float64) float64 { return 0 })) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSAgainstCDFDetectsMismatch(t *testing.T) {
	r := NewRNG(4)
	const n = 10000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(0.2, 1)
	}
	d := KSAgainstCDF(xs, StdNormalCDF) // wrong mean
	if d < 0.05 {
		t.Errorf("mismatched CDF KS %.4f suspiciously small", d)
	}
}
