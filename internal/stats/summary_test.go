package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

// TestSummaryJSONRoundTrip pins the property the cluster shard protocol
// depends on: a Summary survives JSON marshal/unmarshal with its exact
// accumulator state, so derived statistics are bit-identical after the
// round trip.
func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{3.25, -1.5, 0.3333333333333333, 1e-300, 7.1e12} {
		s.Add(x)
	}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed state: %+v != %+v", back, s)
	}
	if back.Mean() != s.Mean() || back.Variance() != s.Variance() ||
		back.Min() != s.Min() || back.Max() != s.Max() || back.N() != s.N() {
		t.Error("derived statistics differ after round trip")
	}
	// Value receivers marshal too (Summary is embedded by value in
	// sim.Result).
	byValue, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(byValue) != string(data) {
		t.Errorf("value and pointer marshal differ: %s vs %s", byValue, data)
	}
	var empty Summary
	if err := json.Unmarshal([]byte(`{"n":-1}`), &empty); err == nil {
		t.Error("negative n accepted")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Variance() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Errorf("single-element summary wrong: %v", s.String())
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	clamp := func(x float64) (float64, bool) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return 0, false
		}
		return x, true
	}
	f := func(as, bs []float64) bool {
		var all, left, right Summary
		for _, raw := range as {
			x, ok := clamp(raw)
			if !ok {
				continue
			}
			all.Add(x)
			left.Add(x)
		}
		for _, raw := range bs {
			x, ok := clamp(raw)
			if !ok {
				continue
			}
			all.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if left.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		if math.Abs(left.Mean()-all.Mean()) > 1e-6*scale {
			return false
		}
		vscale := math.Max(1, all.Variance())
		return math.Abs(left.Variance()-all.Variance()) < 1e-5*vscale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // merging empty is a no-op
	if a.N() != before.N() || a.Mean() != before.Mean() {
		t.Error("merge with empty changed the summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Errorf("merge into empty: %v", b.String())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileEmptyNaN(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(11)
	for i, c := range h.Bins {
		if c != 1 {
			t.Errorf("bin %d count %d, want 1", i, c)
		}
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 13 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramBinCenterAndMode(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if math.Abs(h.BinCenter(0)-0.125) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	h.Add(0.6)
	h.Add(0.65)
	h.Add(0.1)
	if math.Abs(h.Mode()-0.625) > 1e-12 {
		t.Errorf("mode = %v", h.Mode())
	}
}

func TestHistogramEmptyModeNaN(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Mode()) {
		t.Error("empty histogram mode should be NaN")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("reads", 3)
	c.Inc("writes", 1)
	c.Inc("reads", 2)
	if c.Get("reads") != 5 || c.Get("writes") != 1 || c.Get("absent") != 0 {
		t.Errorf("counter values wrong: reads=%d writes=%d", c.Get("reads"), c.Get("writes"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Errorf("names = %v", names)
	}
}
