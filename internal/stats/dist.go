package stats

import "math"

// NormalCDF returns P(X <= x) for X ~ N(mean, stddev).
func NormalCDF(x, mean, stddev float64) float64 {
	if stddev <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mean)/(stddev*math.Sqrt2))
}

// StdNormalCDF returns Φ(x), the standard normal CDF.
func StdNormalCDF(x float64) float64 { return NormalCDF(x, 0, 1) }

// QFunc returns Q(x) = 1 - Φ(x), the standard normal tail probability.
// It is numerically accurate deep into the tail (uses erfc directly).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// StdNormalQuantile returns Φ⁻¹(p) using the Acklam/Wichura-style rational
// approximation refined with one Halley step; absolute error < 1e-9 across
// (0, 1). It panics for p outside (0, 1).
func StdNormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: StdNormalQuantile requires p in (0,1)")
	}
	// Coefficients from Peter Acklam's inverse-normal approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// BinomialTailGE returns P(X >= k) for X ~ Binomial(n, p), computed by
// direct summation in log space. Exact (to float precision) and safe for
// the small n (≤ a few thousand) used by line-level error analysis.
func BinomialTailGE(n int, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	sum := 0.0
	for i := k; i <= n; i++ {
		lg := logChoose(n, i) + float64(i)*logP + float64(n-i)*logQ
		sum += math.Exp(lg)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomialPMF returns P(X == k) for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lg)
}

// logChoose returns log(n choose k).
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// Zipf samples from a Zipf(s) distribution over {0, 1, ..., n-1}: element i
// has probability proportional to 1/(i+1)^s. Sampling is O(log n) via a
// precomputed cumulative table (built once, O(n)).
type Zipf struct {
	cum []float64 // cum[i] = P(X <= i), strictly increasing to 1
}

// NewZipf builds a Zipf sampler over n elements with skew s >= 0 (s == 0 is
// uniform). It panics if n <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("stats: NewZipf with negative skew")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	inv := 1 / total
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// N returns the number of elements in the sampler's support.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one element.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first index with cum[i] >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of element i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
