package codekit

// RemainderTable computes m(x)·x^p mod g(x) over GF(2) one message byte
// at a time — the byte-parallel form of the bit-serial LFSR a systematic
// BCH encoder runs. p is the parity width (the degree of g) and the
// remainder is carried as a little-endian word vector of p bits.
//
// One table step folds eight message bits: with U the top byte of the
// current remainder (coefficients x^(p-8)..x^(p-1)) and M the next
// message byte (LSB-first, the natural packing of the message buffer),
//
//	rem' = (rem · x^8 mod x^p)  XOR  T[U ^ M]
//
// where T[b] = b(x)·x^p mod g(x) is precomputed for all 256 byte values.
// Requires p >= 8; narrower codes stay on the bit-serial path.
//
// Memory: 256 · ceil(p/64) · 8 bytes (4 KiB at p <= 128).
type RemainderTable struct {
	p    int      // remainder width in bits (degree of g)
	w    int      // words per remainder vector
	mask uint64   // valid-bit mask of the top word
	gen  []uint64 // g mod x^p as a bit vector (for the bit-serial step)
	tab  []uint64 // [256][w], flattened
}

// NewRemainderTable builds the table for generator polynomial gen, given
// as 0/1 coefficients with gen[len(gen)-1] == 1 (monic). Returns nil when
// the parity width is below 8 bits (callers fall back to the bit-serial
// encoder).
func NewRemainderTable(gen []byte) *RemainderTable {
	p := len(gen) - 1
	if p < 8 {
		return nil
	}
	w := (p + 63) / 64
	t := &RemainderTable{p: p, w: w, mask: maskFor(p), gen: make([]uint64, w)}
	for i := 0; i < p; i++ {
		if gen[i] != 0 {
			t.gen[i>>6] |= 1 << uint(i&63)
		}
	}
	// Single-bit entries r_k = x^(p+k) mod g, built by shift-and-reduce:
	// r_0 = x^p mod g = g + x^p (the low p bits of g), and each further
	// power shifts up one degree, folding g back in when the x^p
	// coefficient appears.
	single := make([][]uint64, 8)
	r := append([]uint64(nil), t.gen...)
	single[0] = append([]uint64(nil), r...)
	for k := 1; k < 8; k++ {
		topBit := r[(p-1)>>6] >> uint((p-1)&63) & 1
		shiftLeft1(r)
		r[w-1] &= t.mask
		if topBit != 0 {
			xorWords(r, t.gen)
		}
		single[k] = append([]uint64(nil), r...)
	}
	// Subset-combine: T[v] = T[v with lowest bit cleared] ^ r_lowestBit.
	// T[0] stays all-zero, so each entry's predecessor is already built.
	t.tab = make([]uint64, 256*w)
	for v := 1; v < 256; v++ {
		low := lowestBit(v)
		prev := (v & (v - 1)) * w
		cur := v * w
		for i := 0; i < w; i++ {
			t.tab[cur+i] = t.tab[prev+i] ^ single[low][i]
		}
	}
	return t
}

// P returns the parity width in bits.
func (t *RemainderTable) P() int { return t.p }

// Words returns the remainder vector length in 64-bit words.
func (t *RemainderTable) Words() int { return t.w }

// Update folds one message byte (eight coefficients, LSB = lowest degree
// of the eight) into the remainder vector rem.
func (t *RemainderTable) Update(rem []uint64, msgByte byte) {
	top := t.topByte(rem)
	// rem · x^8 mod x^p
	for i := t.w - 1; i > 0; i-- {
		rem[i] = rem[i]<<8 | rem[i-1]>>56
	}
	rem[0] <<= 8
	rem[t.w-1] &= t.mask
	off := int(top^msgByte) * t.w
	for i := 0; i < t.w; i++ {
		rem[i] ^= t.tab[off+i]
	}
}

// UpdateBit folds a single message coefficient, replicating one step of
// the bit-serial LFSR; used for the partial leading byte of a message.
func (t *RemainderTable) UpdateBit(rem []uint64, bit byte) {
	feedback := bit ^ byte(rem[(t.p-1)>>6]>>uint((t.p-1)&63)&1)
	shiftLeft1(rem)
	rem[t.w-1] &= t.mask
	if feedback != 0 {
		xorWords(rem, t.gen)
	}
}

// topByte extracts remainder coefficients x^(p-8)..x^(p-1).
func (t *RemainderTable) topByte(rem []uint64) byte {
	lo := t.p - 8
	word, shift := lo>>6, uint(lo&63)
	v := rem[word] >> shift
	if shift > 56 && word+1 < t.w {
		v |= rem[word+1] << (64 - shift)
	}
	return byte(v)
}

func maskFor(p int) uint64 {
	if r := p & 63; r != 0 {
		return 1<<uint(r) - 1
	}
	return ^uint64(0)
}

func shiftLeft1(w []uint64) {
	for i := len(w) - 1; i > 0; i-- {
		w[i] = w[i]<<1 | w[i-1]>>63
	}
	w[0] <<= 1
}

func xorWords(dst, src []uint64) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func lowestBit(v int) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}
