// Package codekit hosts the 64-bit word-parallel primitives behind the
// repository's codec stack: bit-sliced XOR and popcount parity reduction,
// per-byte precomputed BCH syndrome lookup tables, byte-wise polynomial
// remainder tables for systematic encoding, a branch-free incremental
// Chien search, and a slicing-by-8 CRC-16 kernel.
//
// The design contract is strict output equivalence: every kernel in this
// package computes exactly the value its scalar counterpart computes, bit
// for bit, so the fast codecs in internal/bch, internal/ecc and
// internal/ondie stay byte-identical to their *Ref reference
// implementations (enforced by differential fuzz targets in those
// packages, and by the unit tests here against naive reimplementations).
//
// Kernels trade table memory for time. The tables are immutable after
// construction, safe for unsynchronised concurrent readers, and built
// once per code through the caches the consuming packages keep; see
// DESIGN.md ("Codec kernels") for the per-code footprints.
package codekit

import "math/bits"

// GetBit returns bit i of buf (LSB-first packing within each byte).
func GetBit(buf []byte, i int) byte { return (buf[i>>3] >> uint(i&7)) & 1 }

// SetBit sets bit i of buf.
func SetBit(buf []byte, i int) { buf[i>>3] |= 1 << uint(i&7) }

// FlipBit inverts bit i of buf.
func FlipBit(buf []byte, i int) { buf[i>>3] ^= 1 << uint(i&7) }

// Parity returns the XOR-fold (0 or 1) of the first n bits of buf,
// reduced 64 bits at a time with a popcount tail.
func Parity(buf []byte, n int) byte {
	var acc uint64
	full := n >> 3 // whole bytes
	i := 0
	for ; i+8 <= full; i += 8 {
		acc ^= le64(buf[i : i+8])
	}
	for ; i < full; i++ {
		acc ^= uint64(buf[i])
	}
	if r := n & 7; r != 0 {
		acc ^= uint64(buf[full] & (1<<uint(r) - 1))
	}
	return byte(bits.OnesCount64(acc) & 1)
}

// OnesCount returns the population count of the first n bits of buf.
func OnesCount(buf []byte, n int) int {
	c := 0
	full := n >> 3
	i := 0
	for ; i+8 <= full; i += 8 {
		c += bits.OnesCount64(le64(buf[i : i+8]))
	}
	for ; i < full; i++ {
		c += bits.OnesCount8(buf[i])
	}
	if r := n & 7; r != 0 {
		c += bits.OnesCount8(buf[full] & (1<<uint(r) - 1))
	}
	return c
}

// XORBytes XORs src into dst element-wise over min(len(dst), len(src))
// bytes, eight at a time.
func XORBytes(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		put64(dst[i:i+8], le64(dst[i:i+8])^le64(src[i:i+8]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// OrShiftBits ORs the first n bits of src into dst starting at bit offset
// off. Bits of dst outside [off, off+n) are untouched; the caller
// guarantees dst holds at least off+n bits.
func OrShiftBits(dst []byte, off int, src []byte, n int) {
	byteOff, bitOff := off>>3, uint(off&7)
	nb := (n + 7) >> 3
	var carry byte
	for i := 0; i < nb; i++ {
		v := src[i]
		if i == nb-1 {
			if r := n & 7; r != 0 {
				v &= 1<<uint(r) - 1
			}
		}
		dst[byteOff+i] |= v<<bitOff | carry
		if bitOff != 0 {
			carry = v >> (8 - bitOff)
		}
	}
	if carry != 0 {
		dst[byteOff+nb] |= carry
	}
}

// ExtractBits copies n bits of src starting at bit offset off into dst
// from bit 0. dst must be zeroed over its first ceil(n/8) bytes.
func ExtractBits(dst, src []byte, off, n int) {
	byteOff, bitOff := off>>3, uint(off&7)
	nb := (n + 7) >> 3
	for i := 0; i < nb; i++ {
		v := src[byteOff+i] >> bitOff
		if bitOff != 0 && byteOff+i+1 < len(src) {
			v |= src[byteOff+i+1] << (8 - bitOff)
		}
		dst[i] |= v
	}
	if r := n & 7; r != 0 {
		dst[nb-1] &= 1<<uint(r) - 1
	}
}

// OrWordsBits ORs the low n bits of the little-endian word vector w into
// dst starting at bit 0.
func OrWordsBits(dst []byte, w []uint64, n int) {
	nb := (n + 7) >> 3
	for i := 0; i < nb; i++ {
		v := byte(w[i>>3] >> uint((i&7)*8))
		if i == nb-1 {
			if r := n & 7; r != 0 {
				v &= 1<<uint(r) - 1
			}
		}
		dst[i] |= v
	}
}

// LoadWords unpacks buf into the little-endian word vector w (padded with
// zero bits past len(buf)).
func LoadWords(w []uint64, buf []byte) {
	for i := range w {
		lo := i * 8
		if lo >= len(buf) {
			w[i] = 0
			continue
		}
		hi := lo + 8
		if hi <= len(buf) {
			w[i] = le64(buf[lo:hi])
			continue
		}
		var v uint64
		for j := lo; j < len(buf); j++ {
			v |= uint64(buf[j]) << uint((j-lo)*8)
		}
		w[i] = v
	}
}

// StoreWords packs the word vector w back into buf (truncating the final
// word to the buffer length).
func StoreWords(buf []byte, w []uint64) {
	for i := range w {
		lo := i * 8
		if lo >= len(buf) {
			return
		}
		hi := lo + 8
		if hi <= len(buf) {
			put64(buf[lo:hi], w[i])
			continue
		}
		for j := lo; j < len(buf); j++ {
			buf[j] = byte(w[i] >> uint((j-lo)*8))
		}
	}
}

// le64 loads 8 bytes little-endian. Manual shifts compile to a single
// MOVQ on little-endian targets; the bounds hint keeps it branch-lean.
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
