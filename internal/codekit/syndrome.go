package codekit

import (
	"math/bits"

	"repro/internal/gf2"
)

// SyndromeTable evaluates BCH power-sum syndromes
//
//	S_j = Σ_{i : bit i of cw set} α^{i·j}
//
// for a fixed list of powers j, one codeword *byte* at a time instead of
// one bit at a time: for every byte position B and byte value v the XOR
// contribution of those eight bits to all tracked syndromes is
// precomputed, so accumulation is len(powers) table XORs per non-zero
// byte. Tables are immutable after construction and safe for concurrent
// readers.
//
// Memory: ceil(nbits/8) · 256 · len(powers) · 4 bytes (e.g. ~1 MiB for
// the whole-line BCH-8 code over GF(2^10) tracking the 8 odd powers,
// ~32 KiB for the on-die BCH-2 word code over GF(2^7)); see DESIGN.md
// "Codec kernels".
type SyndromeTable struct {
	nsyn  int
	nbits int      // positions covered (the code's full length n)
	tab   []uint32 // [bytePos][256][nsyn], flattened
}

// NewSyndromeTable builds the per-byte tables for the consecutive
// syndromes S_1..S_nsyn over codeword bit positions [0, nbits).
func NewSyndromeTable(f *gf2.Field, nsyn, nbits int) *SyndromeTable {
	powers := make([]int64, nsyn)
	for j := range powers {
		powers[j] = int64(j + 1)
	}
	return NewSyndromeTablePowers(f, powers, nbits)
}

// NewOddSyndromeTable builds the per-byte tables for the t odd syndromes
// S_1, S_3, ..., S_2t-1 only. In characteristic 2 the even power sums
// are squares of earlier ones (S_2j = S_j²), so a binary BCH decoder
// needs only the odd half accumulated; the caller derives the rest with
// t-1 squarings. This halves both the accumulation work per byte and
// the table footprint relative to NewSyndromeTable(f, 2t, nbits).
func NewOddSyndromeTable(f *gf2.Field, t, nbits int) *SyndromeTable {
	powers := make([]int64, t)
	for j := range powers {
		powers[j] = int64(2*j + 1)
	}
	return NewSyndromeTablePowers(f, powers, nbits)
}

// NewSyndromeTablePowers builds the per-byte tables for S_j over the
// given list of powers j, in that order.
func NewSyndromeTablePowers(f *gf2.Field, powers []int64, nbits int) *SyndromeTable {
	nsyn := len(powers)
	nbytes := (nbits + 7) / 8
	t := &SyndromeTable{
		nsyn:  nsyn,
		nbits: nbits,
		tab:   make([]uint32, nbytes*256*nsyn),
	}
	bitc := make([]uint32, 8*nsyn) // single-bit contributions for this byte
	for B := 0; B < nbytes; B++ {
		for k := 0; k < 8; k++ {
			i := 8*B + k
			for j := 0; j < nsyn; j++ {
				if i < nbits {
					bitc[k*nsyn+j] = f.Exp(int64(i) * powers[j])
				} else {
					bitc[k*nsyn+j] = 0
				}
			}
		}
		base := B * 256 * nsyn
		// tab[B][0] stays all-zero; every other value combines the entry
		// with its lowest set bit cleared and that bit's contribution.
		for v := 1; v < 256; v++ {
			low := bits.TrailingZeros8(uint8(v))
			prev := base + (v&(v-1))*nsyn
			cur := base + v*nsyn
			for j := 0; j < nsyn; j++ {
				t.tab[cur+j] = t.tab[prev+j] ^ bitc[low*nsyn+j]
			}
		}
	}
	return t
}

// Accumulate XORs the syndrome contributions of the first usedBits bits
// of cw into synd (len(synd) must be the table's nsyn). Bits of cw at or
// beyond usedBits — shortened-code padding in the final byte — are
// ignored, exactly as a bit-serial accumulator skips them.
func (t *SyndromeTable) Accumulate(synd []uint32, cw []byte, usedBits int) {
	nsyn := t.nsyn
	full := usedBits >> 3
	if full > len(cw) {
		full = len(cw)
	}
	for B := 0; B < full; B++ {
		v := cw[B]
		if v == 0 {
			continue
		}
		off := (B*256 + int(v)) * nsyn
		for j := 0; j < nsyn; j++ {
			synd[j] ^= t.tab[off+j]
		}
	}
	if r := usedBits & 7; r != 0 && full < len(cw) {
		if v := cw[full] & (1<<uint(r) - 1); v != 0 {
			off := (full*256 + int(v)) * nsyn
			for j := 0; j < nsyn; j++ {
				synd[j] ^= t.tab[off+j]
			}
		}
	}
}
