package codekit

import "repro/internal/gf2"

// ChienSearch locates the roots of the error-locator polynomial σ(x)
// among {α^-i : 0 <= i < n}, appending each root's position i (ascending)
// to out and returning the extended slice. The second result is false
// when a root lies outside the shortened support [0, support) — an error
// "located" in the always-zero region, meaning the pattern is invalid.
//
// Unlike a per-position Horner evaluation (degree+1 table multiplies with
// zero-checks per candidate), the search is incremental: the non-zero
// terms σ_k·α^(-ik) are carried across positions and advanced with one
// unchecked log-domain multiply each, so the inner loop is a branch-free
// XOR/multiply chain. Terms with σ_k = 0 are dropped up front and zero
// never re-enters (units multiply units), which is what makes the
// unchecked multiply sound.
//
// The search stops as soon as deg σ roots are found: a non-zero
// polynomial over a field has no further roots, so the remaining
// positions can neither add roots nor trip the support check. The output
// is exactly that of the full scalar scan.
func ChienSearch(f *gf2.Field, sigma []uint32, support, n int, out []int) ([]int, bool) {
	rawDegree := len(sigma) - 1
	deg := rawDegree
	for deg > 0 && sigma[deg] == 0 {
		deg--
	}
	// Pack the non-zero terms with their per-position step exponents:
	// advancing from position i to i+1 multiplies term k by α^(-k).
	fn := f.N()
	terms := make([]uint32, 0, deg+1)
	steps := make([]uint32, 0, deg+1)
	for k := 0; k <= deg; k++ {
		if sigma[k] == 0 {
			continue
		}
		terms = append(terms, sigma[k])
		steps = append(steps, (fn-uint32(k)%fn)%fn)
	}
	if len(terms) == 0 {
		// σ ≡ 0: every candidate evaluates to zero. Mirror the scalar
		// scan's bound of rawDegree+1 collected roots. (A Berlekamp–Massey
		// locator always has σ_0 = 1, so this is defensive only.)
		for i := 0; i < n && len(out) <= rawDegree; i++ {
			if i >= support {
				return out, false
			}
			out = append(out, i)
		}
		return out, true
	}
	if deg == 0 {
		return out, true // non-zero constant: no roots anywhere
	}
	// The scan itself, specialised by term count: locators up to degree 8
	// (full load for the BCH-2/4/8 codes the study uses) keep every term
	// in a local; the general loop handles the rest. All paths address
	// the log/antilog tables directly rather than through the Field per
	// multiply.
	log, exp := f.LogExpTables()
	switch len(terms) {
	case 2:
		t0, t1 := terms[0], terms[1]
		s0, s1 := steps[0], steps[1]
		for i := 0; i < n; i++ {
			if t0 == t1 { // σ(α^-i) = t0 ^ t1 = 0
				if i >= support {
					return out, false
				}
				out = append(out, i)
				if len(out) == deg {
					return out, true
				}
			}
			t0 = exp[log[t0]+s0]
			t1 = exp[log[t1]+s1]
		}
	case 3:
		t0, t1, t2 := terms[0], terms[1], terms[2]
		s0, s1, s2 := steps[0], steps[1], steps[2]
		for i := 0; i < n; i++ {
			if t0^t1 == t2 { // σ(α^-i) = t0 ^ t1 ^ t2 = 0
				if i >= support {
					return out, false
				}
				out = append(out, i)
				if len(out) == deg {
					return out, true
				}
			}
			t0 = exp[log[t0]+s0]
			t1 = exp[log[t1]+s1]
			t2 = exp[log[t2]+s2]
		}
	case 4:
		t0, t1, t2, t3 := terms[0], terms[1], terms[2], terms[3]
		s0, s1, s2, s3 := steps[0], steps[1], steps[2], steps[3]
		for i := 0; i < n; i++ {
			if t0^t1 == t2^t3 { // σ(α^-i) = t0 ^ t1 ^ t2 ^ t3 = 0
				if i >= support {
					return out, false
				}
				out = append(out, i)
				if len(out) == deg {
					return out, true
				}
			}
			t0 = exp[log[t0]+s0]
			t1 = exp[log[t1]+s1]
			t2 = exp[log[t2]+s2]
			t3 = exp[log[t3]+s3]
		}
	case 5:
		t0, t1, t2, t3, t4 := terms[0], terms[1], terms[2], terms[3], terms[4]
		s0, s1, s2, s3, s4 := steps[0], steps[1], steps[2], steps[3], steps[4]
		for i := 0; i < n; i++ {
			if t0^t1^t2 == t3^t4 {
				if i >= support {
					return out, false
				}
				out = append(out, i)
				if len(out) == deg {
					return out, true
				}
			}
			t0 = exp[log[t0]+s0]
			t1 = exp[log[t1]+s1]
			t2 = exp[log[t2]+s2]
			t3 = exp[log[t3]+s3]
			t4 = exp[log[t4]+s4]
		}
	case 6, 7, 8, 9:
		// Split into a register-resident head of 5 and a short tail
		// slice, so the dominant cost stays in locals while one compact
		// path covers every remaining strength the study uses.
		t0, t1, t2, t3, t4 := terms[0], terms[1], terms[2], terms[3], terms[4]
		s0, s1, s2, s3, s4 := steps[0], steps[1], steps[2], steps[3], steps[4]
		tailT := terms[5:]
		tailS := steps[5:]
		for i := 0; i < n; i++ {
			acc := t0 ^ t1 ^ t2 ^ t3 ^ t4
			for k, v := range tailT {
				acc ^= v
				tailT[k] = exp[log[v]+tailS[k]]
			}
			if acc == 0 {
				if i >= support {
					return out, false
				}
				out = append(out, i)
				if len(out) == deg {
					return out, true
				}
			}
			t0 = exp[log[t0]+s0]
			t1 = exp[log[t1]+s1]
			t2 = exp[log[t2]+s2]
			t3 = exp[log[t3]+s3]
			t4 = exp[log[t4]+s4]
		}
	default:
		for i := 0; i < n; i++ {
			var acc uint32
			for k := range terms {
				v := terms[k]
				acc ^= v
				terms[k] = exp[log[v]+steps[k]]
			}
			if acc == 0 {
				if i >= support {
					return out, false
				}
				out = append(out, i)
				if len(out) == deg {
					return out, true
				}
			}
		}
	}
	return out, true
}
