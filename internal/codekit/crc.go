package codekit

// CRC16Slicing is a slicing-by-8 kernel for MSB-first (non-reflected)
// 16-bit CRCs. Where the classic table loop folds one byte per step with
// a serial dependency on the running register, slicing processes eight
// input bytes per iteration: table k absorbs a byte followed by k zero
// bytes, so the eight lookups are independent and XOR together into the
// next register value. The 16-bit register only overlaps the first two
// bytes of each block; the rest fold in cleanly.
//
// CRC over GF(2) is linear in the message, so the block step
//
//	crc' = T7[d0^hi(crc)] ^ T6[d1^lo(crc)] ^ T5[d2] ^ ... ^ T0[d7]
//
// computes exactly the same register as eight serial table steps — the
// unit tests and the ecc differential fuzz target pin this bit-for-bit.
//
// Memory: 8 · 256 · 2 bytes = 4 KiB per polynomial.
type CRC16Slicing struct {
	tab [8][256]uint16
}

// NewCRC16Slicing builds the slicing tables for the given polynomial
// (MSB-first convention, e.g. 0x1021 for CCITT).
func NewCRC16Slicing(poly uint16) *CRC16Slicing {
	t := &CRC16Slicing{}
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		t.tab[0][i] = crc
	}
	// Tk[b] advances T(k-1)[b] through one more zero byte.
	for k := 1; k < 8; k++ {
		for i := 0; i < 256; i++ {
			c := t.tab[k-1][i]
			t.tab[k][i] = c<<8 ^ t.tab[0][c>>8]
		}
	}
	return t
}

// Update folds data into the running register crc and returns the new
// register value (callers supply the init value, e.g. 0xFFFF).
func (t *CRC16Slicing) Update(crc uint16, data []byte) uint16 {
	i := 0
	for ; i+8 <= len(data); i += 8 {
		crc = t.tab[7][data[i]^byte(crc>>8)] ^
			t.tab[6][data[i+1]^byte(crc)] ^
			t.tab[5][data[i+2]] ^
			t.tab[4][data[i+3]] ^
			t.tab[3][data[i+4]] ^
			t.tab[2][data[i+5]] ^
			t.tab[1][data[i+6]] ^
			t.tab[0][data[i+7]]
	}
	for ; i < len(data); i++ {
		crc = crc<<8 ^ t.tab[0][byte(crc>>8)^data[i]]
	}
	return crc
}
