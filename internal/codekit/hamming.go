package codekit

// ScatterTable is a per-byte lookup encoder for any linear binary code:
// because encoding is GF(2)-linear, the codeword of a payload is the XOR
// of the codewords of its unit vectors, and the 256 combinations of each
// payload byte can be precomputed as whole codeword images. Encoding is
// then one table XOR per non-zero payload byte — data placement, parity
// computation and overall-parity all collapse into the same lookup.
//
// The table is built from the unit codewords the *caller's* scalar
// encoder produces, so equivalence with the reference path is by
// construction, not by reimplementation.
//
// Memory: ceil(dataBits/8) · 256 · ceil(cwBits/64) · 8 bytes
// (32 KiB for SECDED(64)'s 72-bit codeword).
type ScatterTable struct {
	dataBits int
	cwBytes  int
	cwWords  int
	tab      []uint64 // [dataByte][256][cwWords], flattened
}

// NewScatterTable builds the encoder table from units, where units[i] is
// the codeword (as produced by the scalar encoder) of the payload with
// only bit i set. cwBits is the codeword width in bits.
func NewScatterTable(units [][]byte, cwBits int) *ScatterTable {
	dataBits := len(units)
	dataBytes := (dataBits + 7) / 8
	cwWords := (cwBits + 63) / 64
	t := &ScatterTable{
		dataBits: dataBits,
		cwBytes:  (cwBits + 7) / 8,
		cwWords:  cwWords,
		tab:      make([]uint64, dataBytes*256*cwWords),
	}
	single := make([]uint64, 8*cwWords)
	for B := 0; B < dataBytes; B++ {
		for k := 0; k < 8; k++ {
			row := single[k*cwWords : (k+1)*cwWords]
			if i := 8*B + k; i < dataBits {
				LoadWords(row, units[i])
			} else {
				for j := range row {
					row[j] = 0
				}
			}
		}
		base := B * 256 * cwWords
		// Subset-combine: entry v = entry with lowest bit cleared XOR that
		// bit's unit codeword; entry 0 stays all-zero.
		for v := 1; v < 256; v++ {
			low := lowestBit(v)
			prev := base + (v&(v-1))*cwWords
			cur := base + v*cwWords
			for j := 0; j < cwWords; j++ {
				t.tab[cur+j] = t.tab[prev+j] ^ single[low*cwWords+j]
			}
		}
	}
	return t
}

// CodewordBytes returns the codeword buffer size the encoder fills.
func (t *ScatterTable) CodewordBytes() int { return t.cwBytes }

// Encode writes the codeword of the first dataBits bits of data into cw
// (which must hold CodewordBytes bytes; it is fully overwritten). acc is
// optional scratch of at least cwWords words to avoid an allocation.
func (t *ScatterTable) Encode(cw []byte, data []byte, acc []uint64) {
	if len(acc) < t.cwWords {
		acc = make([]uint64, t.cwWords)
	} else {
		acc = acc[:t.cwWords]
		for j := range acc {
			acc[j] = 0
		}
	}
	dataBytes := (t.dataBits + 7) / 8
	for B := 0; B < dataBytes; B++ {
		v := data[B]
		if B == dataBytes-1 {
			if r := t.dataBits & 7; r != 0 {
				v &= 1<<uint(r) - 1
			}
		}
		if v == 0 {
			continue
		}
		off := (B*256 + int(v)) * t.cwWords
		for j := 0; j < t.cwWords; j++ {
			acc[j] ^= t.tab[off+j]
		}
	}
	for i := 0; i < t.cwBytes; i++ {
		cw[i] = byte(acc[i>>3] >> uint((i&7)*8))
	}
}

// HammingTable computes an extended-Hamming syndrome — XOR of the
// 1-indexed positions of set bits — together with the overall parity, one
// codeword byte per lookup. Bit i of the codeword (i < totalBits-1) is
// Hamming position i+1 and feeds both accumulators; the final bit
// (i == totalBits-1) is the overall-parity bit and feeds parity only;
// padding bits past totalBits contribute nothing, matching the scalar
// bit scan exactly.
//
// Entries pack the position XOR in the low 16 bits and the parity in bit
// 16, so one XOR advances both. Memory: ceil(totalBits/8) · 1 KiB.
type HammingTable struct {
	totalBits int
	tab       []uint32 // [cwByte][256], flattened
}

// NewHammingTable builds the syndrome table for a totalBits-wide extended
// Hamming codeword (totalBits-1 Hamming positions plus the overall bit).
func NewHammingTable(totalBits int) *HammingTable {
	cwBytes := (totalBits + 7) / 8
	t := &HammingTable{totalBits: totalBits, tab: make([]uint32, cwBytes*256)}
	var single [8]uint32
	for B := 0; B < cwBytes; B++ {
		for k := 0; k < 8; k++ {
			switch i := 8*B + k; {
			case i < totalBits-1:
				single[k] = uint32(i+1) | 1<<16
			case i == totalBits-1:
				single[k] = 1 << 16
			default:
				single[k] = 0
			}
		}
		base := B * 256
		for v := 1; v < 256; v++ {
			t.tab[base+v] = t.tab[base+(v&(v-1))] ^ single[lowestBit(v)]
		}
	}
	return t
}

// Syndrome returns the Hamming syndrome (XOR of set positions 1..n) and
// the overall parity of cw.
func (t *HammingTable) Syndrome(cw []byte) (synd int, overall byte) {
	cwBytes := (t.totalBits + 7) / 8
	if cwBytes > len(cw) {
		cwBytes = len(cw)
	}
	var acc uint32
	for B := 0; B < cwBytes; B++ {
		if v := cw[B]; v != 0 {
			acc ^= t.tab[B*256+int(v)]
		}
	}
	return int(acc & 0xFFFF), byte(acc >> 16 & 1)
}
