package codekit

import (
	"bytes"
	"testing"

	"repro/internal/gf2"
)

// xorshift-style deterministic generator so tests need no seed plumbing.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) fill(b []byte) {
	for i := range b {
		b[i] = byte(r.next())
	}
}

func TestParityAndOnesCount(t *testing.T) {
	r := &rng{s: 1}
	for trial := 0; trial < 200; trial++ {
		n := r.intn(300) + 1
		buf := make([]byte, (n+7)/8+r.intn(3))
		r.fill(buf)
		wantCount := 0
		for i := 0; i < n; i++ {
			wantCount += int(GetBit(buf, i))
		}
		if got := OnesCount(buf, n); got != wantCount {
			t.Fatalf("OnesCount(n=%d) = %d, want %d", n, got, wantCount)
		}
		if got := Parity(buf, n); got != byte(wantCount&1) {
			t.Fatalf("Parity(n=%d) = %d, want %d", n, got, wantCount&1)
		}
	}
}

func TestXORBytes(t *testing.T) {
	r := &rng{s: 2}
	for trial := 0; trial < 100; trial++ {
		n := r.intn(40)
		dst := make([]byte, n)
		src := make([]byte, n+r.intn(3))
		r.fill(dst)
		r.fill(src)
		want := make([]byte, n)
		for i := range dst {
			want[i] = dst[i] ^ src[i]
		}
		XORBytes(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XORBytes mismatch at n=%d", n)
		}
	}
}

func TestOrShiftAndExtractBits(t *testing.T) {
	r := &rng{s: 3}
	for trial := 0; trial < 300; trial++ {
		n := r.intn(130) + 1
		off := r.intn(70)
		src := make([]byte, (n+7)/8)
		r.fill(src)
		dst := make([]byte, (off+n+7)/8+1)
		OrShiftBits(dst, off, src, n)
		for i := 0; i < n; i++ {
			if GetBit(dst, off+i) != GetBit(src, i) {
				t.Fatalf("OrShiftBits: bit %d (off=%d n=%d) mismatch", i, off, n)
			}
		}
		for i := 0; i < off; i++ {
			if GetBit(dst, i) != 0 {
				t.Fatalf("OrShiftBits: dirtied bit %d below offset", i)
			}
		}
		for i := off + n; i < len(dst)*8; i++ {
			if GetBit(dst, i) != 0 {
				t.Fatalf("OrShiftBits: dirtied bit %d above range", i)
			}
		}
		back := make([]byte, (n+7)/8)
		ExtractBits(back, dst, off, n)
		for i := 0; i < n; i++ {
			if GetBit(back, i) != GetBit(src, i) {
				t.Fatalf("ExtractBits: bit %d (off=%d n=%d) mismatch", i, off, n)
			}
		}
		if r := n & 7; r != 0 && back[len(back)-1]>>uint(r) != 0 {
			t.Fatalf("ExtractBits: garbage above bit %d in final byte", n)
		}
	}
}

func TestLoadStoreWords(t *testing.T) {
	r := &rng{s: 4}
	for trial := 0; trial < 100; trial++ {
		n := r.intn(40) + 1
		buf := make([]byte, n)
		r.fill(buf)
		w := make([]uint64, (n+7)/8)
		LoadWords(w, buf)
		out := make([]byte, n)
		StoreWords(out, w)
		if !bytes.Equal(out, buf) {
			t.Fatalf("Load/StoreWords round trip failed at n=%d", n)
		}
		orOut := make([]byte, (n*8+7)/8)
		OrWordsBits(orOut, w, n*8)
		if !bytes.Equal(orOut, buf) {
			t.Fatalf("OrWordsBits mismatch at n=%d", n)
		}
	}
}

func TestSyndromeTableMatchesBitSerial(t *testing.T) {
	f := gf2.MustField(8)
	nsyn, nbits := 6, 200 // shortened relative to n=255
	st := NewSyndromeTable(f, nsyn, 255)
	r := &rng{s: 5}
	for trial := 0; trial < 100; trial++ {
		used := r.intn(nbits) + 1
		cw := make([]byte, (used+7)/8)
		r.fill(cw)
		want := make([]uint32, nsyn)
		for i := 0; i < used; i++ {
			if GetBit(cw, i) == 1 {
				for j := 0; j < nsyn; j++ {
					want[j] ^= f.Exp(int64(i) * int64(j+1))
				}
			}
		}
		got := make([]uint32, nsyn)
		st.Accumulate(got, cw, used)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("syndrome %d mismatch (used=%d): got %#x want %#x", j, used, got[j], want[j])
			}
		}
	}
}

// TestOddSyndromeTableSquaringIdentity pins the binary-BCH shortcut the
// bch package relies on: the odd table's sums match the full table's odd
// rows, and every even power sum is the square of the sum at half its
// index (S_2j = S_j² in characteristic 2).
func TestOddSyndromeTableSquaringIdentity(t *testing.T) {
	f := gf2.MustField(8)
	const tcap, nbits = 4, 255
	full := NewSyndromeTable(f, 2*tcap, nbits)
	odd := NewOddSyndromeTable(f, tcap, nbits)
	r := &rng{s: 11}
	for trial := 0; trial < 100; trial++ {
		used := r.intn(nbits-1) + 1
		cw := make([]byte, (used+7)/8)
		r.fill(cw)
		all := make([]uint32, 2*tcap)
		full.Accumulate(all, cw, used)
		got := make([]uint32, tcap)
		odd.Accumulate(got, cw, used)
		for i := 0; i < tcap; i++ {
			if got[i] != all[2*i] {
				t.Fatalf("odd table S_%d = %#x, full table says %#x", 2*i+1, got[i], all[2*i])
			}
		}
		for j := 2; j <= 2*tcap; j += 2 {
			if want := f.Sqr(all[j/2-1]); all[j-1] != want {
				t.Fatalf("S_%d = %#x, want S_%d² = %#x", j, all[j-1], j/2, want)
			}
		}
	}
}

func TestSyndromeTableIgnoresPadding(t *testing.T) {
	f := gf2.MustField(8)
	st := NewSyndromeTable(f, 4, 255)
	cw := []byte{0x00, 0xFF} // used=12 → bits 12..15 are padding
	got := make([]uint32, 4)
	st.Accumulate(got, cw, 12)
	want := make([]uint32, 4)
	for i := 8; i < 12; i++ {
		for j := 0; j < 4; j++ {
			want[j] ^= f.Exp(int64(i) * int64(j+1))
		}
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("padding bits leaked into syndrome %d", j)
		}
	}
}

// bitSerialRemainder runs the classic systematic-encoder LFSR over the
// message bits from high index down to 0, as internal/bch does.
func bitSerialRemainder(gen []byte, msg []byte, msgBits int) []byte {
	p := len(gen) - 1
	rem := make([]byte, p)
	for i := msgBits - 1; i >= 0; i-- {
		feedback := GetBit(msg, i) ^ rem[p-1]
		for j := p - 1; j > 0; j-- {
			rem[j] = rem[j-1]
			if feedback == 1 && gen[j] == 1 {
				rem[j] ^= 1
			}
		}
		rem[0] = 0
		if feedback == 1 && gen[0] == 1 {
			rem[0] = 1
		}
	}
	return rem
}

func TestRemainderTableMatchesBitSerial(t *testing.T) {
	r := &rng{s: 6}
	for _, p := range []int{8, 13, 21, 64, 65, 127, 128} {
		gen := make([]byte, p+1)
		gen[0], gen[p] = 1, 1 // ensure a valid-looking monic generator
		for i := 1; i < p; i++ {
			gen[i] = byte(r.next() & 1)
		}
		rt := NewRemainderTable(gen)
		if rt == nil {
			t.Fatalf("NewRemainderTable(p=%d) returned nil", p)
		}
		for trial := 0; trial < 30; trial++ {
			msgBits := r.intn(300) + 1
			msg := make([]byte, (msgBits+7)/8)
			r.fill(msg)
			want := bitSerialRemainder(gen, msg, msgBits)

			rem := make([]uint64, rt.Words())
			// Feed high coefficients first: a leading partial byte
			// bit-serially, then whole message bytes top-down. Each byte
			// is passed as packed (LSB-first = lowest relative degree in
			// bit 0), matching the table's polynomial indexing.
			i := msgBits
			for i%8 != 0 {
				i--
				rt.UpdateBit(rem, GetBit(msg, i))
			}
			for i >= 8 {
				i -= 8
				rt.Update(rem, msg[i/8])
			}
			got := make([]byte, p)
			for j := 0; j < p; j++ {
				got[j] = byte(rem[j>>6] >> uint(j&63) & 1)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("remainder mismatch p=%d msgBits=%d", p, msgBits)
			}
		}
	}
}

func scalarChien(f *gf2.Field, sigma []uint32, support, n int) ([]int, bool) {
	var positions []int
	degree := len(sigma) - 1
	for i := 0; i < n && len(positions) <= degree; i++ {
		x := f.Exp(-int64(i))
		if gf2.PolyEval(f, gf2.Poly(sigma), x) == 0 {
			if i >= support {
				return nil, false
			}
			positions = append(positions, i)
		}
	}
	return positions, true
}

func TestChienSearchMatchesScalar(t *testing.T) {
	f := gf2.MustField(8)
	n := int(f.N())
	r := &rng{s: 7}
	for trial := 0; trial < 300; trial++ {
		deg := r.intn(5) + 1
		sigma := make([]uint32, deg+1)
		sigma[0] = 1
		for k := 1; k <= deg; k++ {
			sigma[k] = uint32(r.intn(256)) // may be zero (degenerate trailing)
		}
		support := r.intn(n) + 1
		want, wantOK := scalarChien(f, sigma, support, n)
		got, gotOK := ChienSearch(f, sigma, support, n, nil)
		if gotOK != wantOK {
			t.Fatalf("ok mismatch: got %v want %v (sigma=%v support=%d)", gotOK, wantOK, sigma, support)
		}
		if wantOK {
			if len(got) != len(want) {
				t.Fatalf("root count mismatch: got %v want %v (sigma=%v)", got, want, sigma)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("root %d mismatch: got %v want %v", i, got, want)
				}
			}
		}
	}
}

func TestChienSearchRootProducts(t *testing.T) {
	// σ(x) = Π (1 - α^i x) for known positions must locate exactly those.
	f := gf2.MustField(10)
	n := int(f.N())
	positions := []int{0, 5, 97, 511, 700}
	sigma := []uint32{1}
	for _, p := range positions {
		next := make([]uint32, len(sigma)+1)
		for k, c := range sigma {
			next[k] ^= c
			next[k+1] ^= f.Mul(c, f.Exp(int64(p)))
		}
		sigma = next
	}
	got, ok := ChienSearch(f, sigma, n, n, nil)
	if !ok || len(got) != len(positions) {
		t.Fatalf("got %v ok=%v, want %v", got, ok, positions)
	}
	for i, p := range positions {
		if got[i] != p {
			t.Fatalf("root %d: got %d want %d", i, got[i], p)
		}
	}
	// Shrink the support below the largest root: must be rejected.
	if _, ok := ChienSearch(f, sigma, 700, n, nil); ok {
		t.Fatalf("out-of-support root not rejected")
	}
}

func TestScatterTableMatchesUnitXOR(t *testing.T) {
	r := &rng{s: 8}
	dataBits, cwBits := 52, 91
	units := make([][]byte, dataBits)
	for i := range units {
		units[i] = make([]byte, (cwBits+7)/8)
		r.fill(units[i])
		if rr := cwBits & 7; rr != 0 {
			units[i][len(units[i])-1] &= 1<<uint(rr) - 1
		}
	}
	st := NewScatterTable(units, cwBits)
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, (dataBits+7)/8)
		r.fill(data)
		want := make([]byte, (cwBits+7)/8)
		for i := 0; i < dataBits; i++ {
			if GetBit(data, i) == 1 {
				XORBytes(want, units[i])
			}
		}
		got := make([]byte, st.CodewordBytes())
		st.Encode(got, data, nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("scatter encode mismatch")
		}
	}
}

func TestHammingTableMatchesBitScan(t *testing.T) {
	r := &rng{s: 9}
	for _, totalBits := range []int{13, 40, 72, 128, 137} {
		ht := NewHammingTable(totalBits)
		for trial := 0; trial < 100; trial++ {
			cw := make([]byte, (totalBits+7)/8)
			r.fill(cw)
			wantSynd, wantOverall := 0, byte(0)
			for i := 0; i < totalBits-1; i++ {
				if GetBit(cw, i) == 1 {
					wantSynd ^= i + 1
					wantOverall ^= 1
				}
			}
			wantOverall ^= GetBit(cw, totalBits-1)
			synd, overall := ht.Syndrome(cw)
			if synd != wantSynd || overall != wantOverall {
				t.Fatalf("totalBits=%d: got (%d,%d) want (%d,%d)", totalBits, synd, overall, wantSynd, wantOverall)
			}
		}
	}
}

func TestCRC16SlicingMatchesSerial(t *testing.T) {
	const poly = 0x1021
	var serial [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		serial[i] = crc
	}
	sum := func(init uint16, data []byte) uint16 {
		crc := init
		for _, b := range data {
			crc = crc<<8 ^ serial[byte(crc>>8)^b]
		}
		return crc
	}
	k := NewCRC16Slicing(poly)
	r := &rng{s: 10}
	for trial := 0; trial < 200; trial++ {
		n := r.intn(130)
		data := make([]byte, n)
		r.fill(data)
		init := uint16(r.next())
		if got, want := k.Update(init, data), sum(init, data); got != want {
			t.Fatalf("crc mismatch n=%d init=%#x: got %#x want %#x", n, init, got, want)
		}
	}
	// CCITT-FALSE check value: "123456789" → 0x29B1.
	if got := k.Update(0xFFFF, []byte("123456789")); got != 0x29B1 {
		t.Fatalf("check value: got %#x want 0x29b1", got)
	}
}
