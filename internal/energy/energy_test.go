package energy

import (
	"math"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ArrayWritePJPerBit <= p.ArrayReadPJPerBit {
		t.Error("PCM writes must cost more than reads")
	}
}

func TestValidateRejectsNegativeAndZeroWrite(t *testing.T) {
	p := DefaultParams()
	p.CRCCheckPJ = -1
	if err := p.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
	p = DefaultParams()
	p.ArrayWritePJPerBit = 0
	if err := p.Validate(); err == nil {
		t.Error("zero write cost accepted")
	}
}

func TestAccountantCharges(t *testing.T) {
	p := DefaultParams()
	a := MustAccountant(p)
	var l Ledger
	a.LineRead(&l, 576)
	wantRead := 576 * (p.ArrayReadPJPerBit + p.BufferPJPerBit)
	if math.Abs(l.ReadPJ-wantRead) > 1e-9 {
		t.Errorf("read charge %g, want %g", l.ReadPJ, wantRead)
	}
	a.LineWrite(&l, 576)
	wantWrite := 576 * (p.ArrayWritePJPerBit + p.BufferPJPerBit)
	if math.Abs(l.WritePJ-wantWrite) > 1e-9 {
		t.Errorf("write charge %g, want %g", l.WritePJ, wantWrite)
	}
	a.SECDEDDecode(&l, 8)
	if math.Abs(l.DecodePJ-8*p.SECDEDDecodePJ) > 1e-9 {
		t.Errorf("secded charge %g", l.DecodePJ)
	}
	a.BCHDecode(&l, 4)
	if math.Abs(l.DecodePJ-(8*p.SECDEDDecodePJ+4*p.BCHDecodePJPerT)) > 1e-9 {
		t.Errorf("bch charge %g", l.DecodePJ)
	}
	a.CRCCheck(&l)
	if math.Abs(l.DetectPJ-p.CRCCheckPJ) > 1e-9 {
		t.Errorf("crc charge %g", l.DetectPJ)
	}
	total := l.ReadPJ + l.DecodePJ + l.DetectPJ + l.WritePJ
	if math.Abs(l.Total()-total) > 1e-9 {
		t.Errorf("total %g != sum %g", l.Total(), total)
	}
}

func TestLedgerAddAndScale(t *testing.T) {
	a := MustAccountant(DefaultParams())
	var l1, l2 Ledger
	a.LineRead(&l1, 100)
	a.LineWrite(&l2, 100)
	l1.Add(l2)
	if l1.WritePJ != l2.WritePJ {
		t.Error("Add did not fold write energy")
	}
	before := l1.Total()
	l1.Scale(2)
	if math.Abs(l1.Total()-2*before) > 1e-9 {
		t.Errorf("scale: %g, want %g", l1.Total(), 2*before)
	}
}

func TestWriteDominatesScrubWriteback(t *testing.T) {
	// Sanity: with default constants, one line write-back costs more than
	// the read + full BCH-8 decode that preceded it — the physical fact
	// that makes "avoid needless write-backs" the paper's big lever.
	a := MustAccountant(DefaultParams())
	var read, write Ledger
	a.LineRead(&read, 592)
	a.BCHDecode(&read, 8)
	a.LineWrite(&write, 592)
	if write.Total() <= read.Total() {
		t.Errorf("write-back (%g pJ) should dominate read+decode (%g pJ)", write.Total(), read.Total())
	}
}

func TestNewAccountantRejectsInvalid(t *testing.T) {
	p := DefaultParams()
	p.ArrayReadPJPerBit = -5
	if _, err := NewAccountant(p); err == nil {
		t.Error("invalid params accepted")
	}
}
