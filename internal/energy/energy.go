// Package energy is the analytic energy model for scrub accounting. The
// paper's figure of merit is *scrub energy*: array reads, error
// detection/decode work, and — dominant in PCM — array write-backs.
// Constants are configurable inputs; results are always reported relative
// to the same constant set, so scheme comparisons are constant-independent
// to first order.
package energy

import "fmt"

// Params holds per-operation energy costs in picojoules. Defaults follow
// the published PCM prototype numbers: reads are cheap, writes are two
// orders of magnitude more expensive (RESET/SET pulses), BCH decode grows
// with correction capability, and a CRC check is near-free combinational
// logic.
type Params struct {
	// ArrayReadPJPerBit is the cost of sensing one bit from the array.
	ArrayReadPJPerBit float64
	// ArrayWritePJPerBit is the cost of programming one bit (averaged over
	// SET/RESET and iterative program-and-verify).
	ArrayWritePJPerBit float64
	// SECDEDDecodePJ is the cost of one SECDED syndrome+correct on a word.
	SECDEDDecodePJ float64
	// BCHDecodePJPerT is the BCH decode cost per unit of correction
	// capability (syndromes + Berlekamp-Massey + Chien scale with t).
	BCHDecodePJPerT float64
	// CRCCheckPJ is the cost of a lightweight CRC-16 recompute-and-compare.
	CRCCheckPJ float64
	// BufferPJPerBit covers peripheral/IO cost per transferred bit.
	BufferPJPerBit float64
}

// DefaultParams returns the baseline energy constants (pJ).
func DefaultParams() Params {
	return Params{
		ArrayReadPJPerBit:  2.0,
		ArrayWritePJPerBit: 180.0,
		SECDEDDecodePJ:     6.0,
		BCHDecodePJPerT:    25.0,
		CRCCheckPJ:         4.0,
		BufferPJPerBit:     0.5,
	}
}

// Validate checks that all costs are non-negative and that write cost is
// positive (the model divides by it when reporting write-normalised
// metrics).
func (p *Params) Validate() error {
	costs := []struct {
		name string
		v    float64
	}{
		{"ArrayReadPJPerBit", p.ArrayReadPJPerBit},
		{"ArrayWritePJPerBit", p.ArrayWritePJPerBit},
		{"SECDEDDecodePJ", p.SECDEDDecodePJ},
		{"BCHDecodePJPerT", p.BCHDecodePJPerT},
		{"CRCCheckPJ", p.CRCCheckPJ},
		{"BufferPJPerBit", p.BufferPJPerBit},
	}
	for _, c := range costs {
		if c.v < 0 {
			return fmt.Errorf("energy: %s must be non-negative", c.name)
		}
	}
	if p.ArrayWritePJPerBit == 0 {
		return fmt.Errorf("energy: ArrayWritePJPerBit must be positive")
	}
	return nil
}

// Ledger accumulates energy by category. The zero value is ready to use.
type Ledger struct {
	ReadPJ   float64
	DecodePJ float64
	DetectPJ float64
	WritePJ  float64
}

// Accountant charges operations against a ledger using a Params table.
type Accountant struct {
	p Params
}

// NewAccountant builds an accountant; params must validate.
func NewAccountant(p Params) (*Accountant, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Accountant{p: p}, nil
}

// MustAccountant is NewAccountant that panics on error.
func MustAccountant(p Params) *Accountant {
	a, err := NewAccountant(p)
	if err != nil {
		panic(err)
	}
	return a
}

// Params returns a copy of the accountant's cost table.
func (a *Accountant) Params() Params { return a.p }

// LineRead charges an array read of codewordBits into l.
func (a *Accountant) LineRead(l *Ledger, codewordBits int) {
	bits := float64(codewordBits)
	l.ReadPJ += bits * (a.p.ArrayReadPJPerBit + a.p.BufferPJPerBit)
}

// LineWrite charges an array write of codewordBits into l.
func (a *Accountant) LineWrite(l *Ledger, codewordBits int) {
	bits := float64(codewordBits)
	l.WritePJ += bits * (a.p.ArrayWritePJPerBit + a.p.BufferPJPerBit)
}

// SECDEDDecode charges per-word SECDED decode for the given word count.
func (a *Accountant) SECDEDDecode(l *Ledger, words int) {
	l.DecodePJ += float64(words) * a.p.SECDEDDecodePJ
}

// BCHDecode charges a full BCH decode of capability t.
func (a *Accountant) BCHDecode(l *Ledger, t int) {
	l.DecodePJ += float64(t) * a.p.BCHDecodePJPerT
}

// CRCCheck charges a lightweight detection pass.
func (a *Accountant) CRCCheck(l *Ledger) {
	l.DetectPJ += a.p.CRCCheckPJ
}

// Total returns the ledger's total energy in pJ.
func (l *Ledger) Total() float64 {
	return l.ReadPJ + l.DecodePJ + l.DetectPJ + l.WritePJ
}

// Add folds another ledger into l.
func (l *Ledger) Add(o Ledger) {
	l.ReadPJ += o.ReadPJ
	l.DecodePJ += o.DecodePJ
	l.DetectPJ += o.DetectPJ
	l.WritePJ += o.WritePJ
}

// Scale multiplies every category by f (for extrapolating a sampled region
// to full capacity).
func (l *Ledger) Scale(f float64) {
	l.ReadPJ *= f
	l.DecodePJ *= f
	l.DetectPJ *= f
	l.WritePJ *= f
}
