// Package scrub defines the scrub policies the study compares: what a
// patrol visit does to a line (how errors are checked, when the line is
// rewritten) and how the sweep interval adapts. Policies are pure decision
// logic — the reliability simulator (internal/sim) owns state and physics
// and consults a Policy at every visit.
//
// The design space has three orthogonal axes, mirroring the paper:
//
//  1. Detection: full ECC decode on every visit (the DRAM way), or a
//     lightweight checksum probe that skips the expensive decode — and,
//     with it, the read of the ECC check bits — on the clean common case.
//  2. Write-back rule: always, on any error, or only at/above an error
//     threshold. Write-backs reset drift but burn endurance; the
//     threshold is the soft-vs-hard-error dial.
//  3. Interval control: fixed, or adapted sweep-by-sweep from observed
//     error pressure.
package scrub

import (
	"fmt"
	"math"
)

// Detection selects how a scrub visit checks a line for errors.
type Detection int

const (
	// FullDecode runs the ECC machinery on every visited line.
	FullDecode Detection = iota
	// LightDetect runs a cheap checksum compare first and decodes only
	// when the checksum fires.
	LightDetect
)

// String implements fmt.Stringer.
func (d Detection) String() string {
	switch d {
	case FullDecode:
		return "full-decode"
	case LightDetect:
		return "light-detect"
	default:
		return fmt.Sprintf("Detection(%d)", int(d))
	}
}

// VisitInfo is what a policy learns about a line during a scrub visit.
type VisitInfo struct {
	// ErrBits is the number of erroneous bits the check observed.
	ErrBits int
	// Capability is the ECC correction strength (bits per line).
	Capability int
	// DeadCells is the line's known stuck-cell count (hard errors).
	DeadCells int
}

// RoundStats summarises one complete sweep for interval adaptation.
type RoundStats struct {
	// Lines is the number of lines visited in the sweep.
	Lines int64
	// MaxErrBits is the worst per-line error count observed.
	MaxErrBits int
	// Capability is the ECC correction strength in force during the sweep
	// (0 when unknown).
	Capability int
	// LinesNearMargin counts lines whose errors reached Capability-1 or
	// worse — the lines one more drift crossing away from a UE.
	LinesNearMargin int64
	// WriteBacks and UEs are the sweep's action counts.
	WriteBacks int64
	UEs        int64
}

// Policy is consulted by the simulator at each scrub visit and after each
// sweep. Implementations must be stateless with respect to individual
// lines (per-line state lives in the simulator); interval adaptation state
// is allowed.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Detection returns the visit's error-check mechanism.
	Detection() Detection
	// ShouldWriteBack decides whether a correctable line is rewritten.
	// It is consulted for every line the visit actually decoded (with a
	// light probe, clean lines are skipped before this point);
	// uncorrectable lines are always repaired without consultation.
	ShouldWriteBack(v VisitInfo) bool
	// NextInterval returns the sweep interval to use after a sweep that
	// ran at cur seconds and observed rs.
	NextInterval(cur float64, rs RoundStats) float64
}

// AdaptiveConfig tunes sweep-interval feedback.
type AdaptiveConfig struct {
	// MinInterval and MaxInterval bound the interval in seconds.
	MinInterval, MaxInterval float64
	// Shrink (<1) is applied when error pressure is high; Grow (>1) when
	// low.
	Shrink, Grow float64
	// HighWater and LowWater are thresholds on the fraction of lines near
	// the ECC margin.
	HighWater, LowWater float64
}

// DefaultAdaptive returns the controller used by the combined mechanism:
// intervals between 4 minutes and 1 day, halving under pressure and
// growing 25 % when quiet.
func DefaultAdaptive() AdaptiveConfig {
	return AdaptiveConfig{
		MinInterval: 240,
		MaxInterval: 86400,
		Shrink:      0.5,
		Grow:        1.25,
		HighWater:   1e-3,
		LowWater:    1e-5,
	}
}

// Validate checks controller consistency.
func (a *AdaptiveConfig) Validate() error {
	if a.MinInterval <= 0 || a.MaxInterval < a.MinInterval {
		return fmt.Errorf("scrub: adaptive interval bounds invalid [%g, %g]", a.MinInterval, a.MaxInterval)
	}
	if a.Shrink <= 0 || a.Shrink >= 1 {
		return fmt.Errorf("scrub: Shrink must be in (0,1), got %g", a.Shrink)
	}
	if a.Grow <= 1 {
		return fmt.Errorf("scrub: Grow must be > 1, got %g", a.Grow)
	}
	if a.HighWater <= a.LowWater || a.LowWater < 0 {
		return fmt.Errorf("scrub: water marks invalid (%g, %g)", a.LowWater, a.HighWater)
	}
	return nil
}

// Config describes a policy point in the design space.
type Config struct {
	// Label overrides the derived name when non-empty.
	Label string
	// Detect selects the visit check.
	Detect Detection
	// WriteThreshold is the minimum observed ErrBits that triggers a
	// write-back; 0 means "always write back every visited line" (the
	// naive patrol used for ablation), 1 means "write on any error" (the
	// DRAM baseline).
	WriteThreshold int
	// WearAware lowers the effective threshold by the line's dead-cell
	// count, spending writes where hard errors have eroded the margin.
	WearAware bool
	// Adaptive, when non-nil, enables sweep-interval feedback.
	Adaptive *AdaptiveConfig
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.WriteThreshold < 0 {
		return fmt.Errorf("scrub: WriteThreshold must be >= 0")
	}
	if c.Detect != FullDecode && c.Detect != LightDetect {
		return fmt.Errorf("scrub: unknown detection %d", int(c.Detect))
	}
	if c.Adaptive != nil {
		if err := c.Adaptive.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// policy is the concrete Policy for a Config.
type policy struct {
	cfg  Config
	name string
}

// New builds a Policy from a Config.
func New(cfg Config) (Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := cfg.Label
	if name == "" {
		name = deriveName(cfg)
	}
	return &policy{cfg: cfg, name: name}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) Policy {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func deriveName(cfg Config) string {
	name := fmt.Sprintf("thr%d", cfg.WriteThreshold)
	if cfg.WriteThreshold == 0 {
		name = "always"
	} else if cfg.WriteThreshold == 1 {
		name = "on-error"
	}
	if cfg.WearAware {
		name += "+wear"
	}
	if cfg.Detect == LightDetect {
		name += "+light"
	}
	if cfg.Adaptive != nil {
		name += "+adaptive"
	}
	return name
}

// Name implements Policy.
func (p *policy) Name() string { return p.name }

// Detection implements Policy.
func (p *policy) Detection() Detection { return p.cfg.Detect }

// ShouldWriteBack implements Policy.
func (p *policy) ShouldWriteBack(v VisitInfo) bool {
	thr := p.cfg.WriteThreshold
	if thr == 0 {
		return true
	}
	if p.cfg.WearAware {
		thr -= v.DeadCells
		if thr < 1 {
			thr = 1
		}
	}
	return v.ErrBits >= thr
}

// NextInterval implements Policy.
func (p *policy) NextInterval(cur float64, rs RoundStats) float64 {
	a := p.cfg.Adaptive
	if a == nil {
		return cur
	}
	next := cur
	if rs.Lines > 0 {
		risky := float64(rs.LinesNearMargin) / float64(rs.Lines)
		// A UE, a line that actually reached the ECC capacity (one more
		// crossing would have been a UE), or broad margin pressure all
		// force a shrink. Growth additionally requires the worst line to
		// sit comfortably inside the margin, so a quiet phase cannot
		// stretch the interval into overshoot territory.
		atCapacity := rs.Capability > 0 && rs.MaxErrBits >= rs.Capability
		deepMargin := rs.Capability == 0 || rs.MaxErrBits < rs.Capability-1
		switch {
		case rs.UEs > 0 || atCapacity || risky > a.HighWater:
			next = cur * a.Shrink
		case risky < a.LowWater && deepMargin:
			next = cur * a.Grow
		}
	}
	return math.Min(math.Max(next, a.MinInterval), a.MaxInterval)
}

// ByName builds a policy from a compact spec string, the vocabulary the
// CLIs and the scrubd job API share:
//
//	basic | always | light | threshold-<k> | combined-<k> | profiled | profiled-<k>
func ByName(spec string) (Policy, error) {
	switch spec {
	case "basic":
		return Basic(), nil
	case "always":
		return AlwaysWrite(), nil
	case "light":
		return LightBasic(), nil
	case "profiled":
		return ProfiledThreshold(1), nil
	}
	var k int
	if n, err := fmt.Sscanf(spec, "threshold-%d", &k); err == nil && n == 1 {
		return Threshold(k), nil
	}
	if n, err := fmt.Sscanf(spec, "combined-%d", &k); err == nil && n == 1 {
		return Combined(k), nil
	}
	if n, err := fmt.Sscanf(spec, "profiled-%d", &k); err == nil && n == 1 && k >= 1 {
		return ProfiledThreshold(k), nil
	}
	return nil, fmt.Errorf("scrub: unknown policy %q", spec)
}

// Basic returns the DRAM-style baseline: full decode each visit, write
// back on any corrected error, fixed interval.
func Basic() Policy {
	return MustNew(Config{Label: "basic", Detect: FullDecode, WriteThreshold: 1})
}

// AlwaysWrite returns the naive patrol that rewrites every line it visits
// (ablation lower bound on write avoidance).
func AlwaysWrite() Policy {
	return MustNew(Config{Label: "always-write", Detect: FullDecode, WriteThreshold: 0})
}

// LightBasic is Basic with the lightweight detection probe.
func LightBasic() Policy {
	return MustNew(Config{Label: "basic+light", Detect: LightDetect, WriteThreshold: 1})
}

// Threshold returns a fixed-interval policy that writes back only at or
// above k observed error bits.
func Threshold(k int) Policy {
	return MustNew(Config{Label: fmt.Sprintf("threshold-%d", k), Detect: FullDecode, WriteThreshold: k})
}

// Combined returns the paper's full proposal: lightweight detection,
// wear-aware threshold write-back, adaptive interval.
func Combined(threshold int) Policy {
	a := DefaultAdaptive()
	return MustNew(Config{
		Label:          "combined",
		Detect:         LightDetect,
		WriteThreshold: threshold,
		WearAware:      true,
		Adaptive:       &a,
	})
}
