package scrub

import "testing"

func TestProfileConfigValidate(t *testing.T) {
	good := DefaultProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("DefaultProfile invalid: %v", err)
	}
	bad := []ProfileConfig{
		{Every: 0, Passes: 1, RiskThreshold: 1, BiasFraction: 0.5, MaxAtRiskFraction: 0.5},
		{Every: 1, Passes: 0, RiskThreshold: 1, BiasFraction: 0.5, MaxAtRiskFraction: 0.5},
		{Every: 1, Passes: 1, RiskThreshold: 0, BiasFraction: 0.5, MaxAtRiskFraction: 0.5},
		{Every: 1, Passes: 1, RiskThreshold: 1, BiasFraction: 0, MaxAtRiskFraction: 0.5},
		{Every: 1, Passes: 1, RiskThreshold: 1, BiasFraction: 1.5, MaxAtRiskFraction: 0.5},
		{Every: 1, Passes: 1, RiskThreshold: 1, BiasFraction: 0.5, MaxAtRiskFraction: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestProfiledByName(t *testing.T) {
	p, err := ByName("profiled")
	if err != nil {
		t.Fatalf("ByName(profiled): %v", err)
	}
	prof, ok := p.(Profiler)
	if !ok {
		t.Fatal("profiled policy does not implement Profiler")
	}
	if prof.Profile() != DefaultProfile() {
		t.Fatal("profiled policy carries a non-default schedule")
	}
	if p.Detection() != FullDecode {
		t.Fatal("profiled policy should use full decode")
	}
	// Visible errors at/above the threshold trigger write-back.
	if !p.ShouldWriteBack(VisitInfo{ErrBits: 1, Capability: 4}) {
		t.Fatal("profiled-1 should write back on any visible error")
	}

	p3, err := ByName("profiled-3")
	if err != nil {
		t.Fatalf("ByName(profiled-3): %v", err)
	}
	if p3.Name() != "profiled-3" {
		t.Fatalf("Name = %q, want profiled-3", p3.Name())
	}
	if p3.ShouldWriteBack(VisitInfo{ErrBits: 2, Capability: 4}) {
		t.Fatal("profiled-3 wrote back below threshold")
	}

	// Non-profiled policies must not accidentally satisfy Profiler.
	if _, ok := Basic().(Profiler); ok {
		t.Fatal("basic policy claims to be a Profiler")
	}

	if _, err := ByName("profiled-0"); err == nil {
		t.Fatal("profiled-0 should be rejected")
	}
	if len(Names()) == 0 {
		t.Fatal("Names() empty")
	}
}
