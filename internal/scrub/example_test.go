package scrub_test

import (
	"fmt"

	"repro/internal/scrub"
)

// Demonstrates composing a custom policy from the three design axes and
// the interval controller's reaction to sweep outcomes.
func ExampleConfig() {
	adaptive := scrub.DefaultAdaptive()
	policy := scrub.MustNew(scrub.Config{
		Detect:         scrub.LightDetect,
		WriteThreshold: 4,
		WearAware:      true,
		Adaptive:       &adaptive,
	})
	fmt.Println("name:", policy.Name())
	fmt.Println("detection:", policy.Detection())

	// Write-back decisions: threshold 4, lowered by dead cells.
	healthy := scrub.VisitInfo{ErrBits: 3, Capability: 8, DeadCells: 0}
	worn := scrub.VisitInfo{ErrBits: 3, Capability: 8, DeadCells: 2}
	fmt.Println("write healthy line at 3 errors:", policy.ShouldWriteBack(healthy))
	fmt.Println("write worn line at 3 errors:   ", policy.ShouldWriteBack(worn))

	// Interval control: a sweep that saw a UE forces a shrink.
	badSweep := scrub.RoundStats{Lines: 1000, UEs: 1, Capability: 8}
	fmt.Println("interval after a UE sweep:", policy.NextInterval(3600, badSweep))
	// Output:
	// name: thr4+wear+light+adaptive
	// detection: light-detect
	// write healthy line at 3 errors: false
	// write worn line at 3 errors:    true
	// interval after a UE sweep: 1800
}
