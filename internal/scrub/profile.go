package scrub

import "fmt"

// ProfileConfig tunes HARP-style active error profiling. Profiling is a
// scheduling overlay, not a detection mechanism: the engine runs
// periodic read-only profiling rounds to build a per-device at-risk
// line set, then redirects a fraction of ordinary patrol visits toward
// those lines — spending the same scrub bandwidth where the margin is
// thinnest instead of uniformly.
//
// The hidden-error regime motivates the split between direct and
// indirect discovery (HARP, Patel et al. 2021): when a line's raw error
// count exceeds its on-die ECC strength, the on-die decoder fails and
// every erroneous position is immediately visible (direct). While the
// on-die code still corrects, errors are invisible from outside; each
// additional profiling pass can expose at most one more hidden position
// (indirect), so coverage grows with Passes.
type ProfileConfig struct {
	// Every is the profiling cadence in sweeps (or patrol wraps on a
	// fleet device): a profiling round runs after every Every-th sweep.
	Every int
	// Passes is the number of profiling reads per line and round. Pass 1
	// catches direct errors; each further pass exposes at most one
	// on-die-hidden position per line.
	Passes int
	// RiskThreshold is the minimum number of known error positions that
	// puts a line in the at-risk set.
	RiskThreshold int
	// BiasFraction is the fraction of patrol visits redirected to
	// at-risk lines (0,1]. Total visits per sweep are unchanged — biased
	// visits replace uniform ones, keeping scrub bandwidth equal.
	BiasFraction float64
	// MaxAtRiskFraction caps the at-risk set as a fraction of all lines;
	// the worst lines (most known error positions) are kept.
	MaxAtRiskFraction float64
}

// DefaultProfile is the profiling setup the profiled policies use:
// profile every 4 sweeps with 3 passes, track lines with any known
// error position (up to a quarter of the device), and redirect a
// quarter of patrol visits toward them.
func DefaultProfile() ProfileConfig {
	return ProfileConfig{
		Every:             4,
		Passes:            3,
		RiskThreshold:     1,
		BiasFraction:      0.25,
		MaxAtRiskFraction: 0.25,
	}
}

// Validate checks the profiling configuration.
func (p *ProfileConfig) Validate() error {
	if p.Every < 1 {
		return fmt.Errorf("scrub: profile Every must be >= 1, got %d", p.Every)
	}
	if p.Passes < 1 {
		return fmt.Errorf("scrub: profile Passes must be >= 1, got %d", p.Passes)
	}
	if p.RiskThreshold < 1 {
		return fmt.Errorf("scrub: profile RiskThreshold must be >= 1, got %d", p.RiskThreshold)
	}
	if p.BiasFraction <= 0 || p.BiasFraction > 1 {
		return fmt.Errorf("scrub: profile BiasFraction must be in (0,1], got %g", p.BiasFraction)
	}
	if p.MaxAtRiskFraction <= 0 || p.MaxAtRiskFraction > 1 {
		return fmt.Errorf("scrub: profile MaxAtRiskFraction must be in (0,1], got %g", p.MaxAtRiskFraction)
	}
	return nil
}

// Profiler is the optional Policy extension that turns on active
// profiling. The engine type-asserts for it when a policy is installed;
// the profiling state itself (at-risk set, round counters) lives in the
// engine per device, keeping policies stateless per the Policy contract.
type Profiler interface {
	Policy
	// Profile returns the profiling schedule this policy wants.
	Profile() ProfileConfig
}

// profiled decorates a base policy with a profiling schedule.
type profiled struct {
	Policy
	prof ProfileConfig
}

// Profile implements Profiler.
func (p *profiled) Profile() ProfileConfig { return p.prof }

// Profiled wraps base with HARP-style active profiling under cfg. The
// wrapped policy keeps base's visit behaviour; the engine adds the
// profiling rounds and visit redirection.
func Profiled(base Policy, cfg ProfileConfig) (Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &profiled{Policy: base, prof: cfg}, nil
}

// ProfiledThreshold is the standard profiled policy: full decode, write
// back at or above k visible error bits, fixed interval, default
// profiling schedule. Under on-die ECC the k=1 variant is the natural
// choice: visible error counts jump from zero straight past the on-die
// strength, so any visible error is already an emergency.
func ProfiledThreshold(k int) Profiler {
	base := MustNew(Config{
		Label:          fmt.Sprintf("profiled-%d", k),
		Detect:         FullDecode,
		WriteThreshold: k,
	})
	p, err := Profiled(base, DefaultProfile())
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the policy spec vocabulary ByName accepts, for
// validation error messages and help text.
func Names() []string {
	return []string{
		"basic", "always", "light",
		"threshold-<k>", "combined-<k>",
		"profiled", "profiled-<k>",
	}
}
