package scrub

import "testing"

func TestByName(t *testing.T) {
	cases := []struct {
		spec   string
		name   string
		detect Detection
	}{
		{"basic", "basic", FullDecode},
		{"always", "always-write", FullDecode},
		{"light", "basic+light", LightDetect},
		{"threshold-3", "threshold-3", FullDecode},
		{"combined-5", "combined", LightDetect},
	}
	for _, c := range cases {
		p, err := ByName(c.spec)
		if err != nil {
			t.Fatalf("ByName(%q): %v", c.spec, err)
		}
		if p.Name() != c.name {
			t.Errorf("ByName(%q).Name() = %q, want %q", c.spec, p.Name(), c.name)
		}
		if p.Detection() != c.detect {
			t.Errorf("ByName(%q) detection = %v, want %v", c.spec, p.Detection(), c.detect)
		}
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	for _, spec := range []string{"", "bogus", "threshold-", "threshold-x", "combined"} {
		if _, err := ByName(spec); err == nil {
			t.Errorf("ByName(%q) accepted", spec)
		}
	}
}
