package scrub

import (
	"math"
	"testing"
)

// adaptive builds an adaptive policy with the default controller for the
// edge-case tests below.
func adaptive(t *testing.T) (Policy, AdaptiveConfig) {
	t.Helper()
	a := DefaultAdaptive()
	p, err := New(Config{Detect: FullDecode, WriteThreshold: 1, Adaptive: &a})
	if err != nil {
		t.Fatal(err)
	}
	return p, a
}

// TestNextIntervalEmptySweep: a sweep that visited no lines carries no
// pressure signal, so the interval must not drift in either direction —
// only the bound clamp may act.
func TestNextIntervalEmptySweep(t *testing.T) {
	p, a := adaptive(t)
	cur := 3600.0
	if got := p.NextInterval(cur, RoundStats{Lines: 0}); got != cur {
		t.Errorf("empty sweep moved interval: %g -> %g", cur, got)
	}
	// Even counters that would normally force a shrink are meaningless
	// over zero lines (a division by Lines would be NaN); they must be
	// ignored rather than acted on.
	rs := RoundStats{Lines: 0, UEs: 5, MaxErrBits: 99, Capability: 4, LinesNearMargin: 7}
	if got := p.NextInterval(cur, rs); got != cur {
		t.Errorf("empty sweep with stale counters moved interval: %g -> %g", cur, got)
	}
	// An out-of-bounds current interval is still clamped on an empty sweep.
	if got := p.NextInterval(a.MaxInterval*10, RoundStats{Lines: 0}); got != a.MaxInterval {
		t.Errorf("empty sweep skipped the max clamp: got %g, want %g", got, a.MaxInterval)
	}
	if got := p.NextInterval(a.MinInterval/10, RoundStats{Lines: 0}); got != a.MinInterval {
		t.Errorf("empty sweep skipped the min clamp: got %g, want %g", got, a.MinInterval)
	}
}

// TestNextIntervalZeroCapability: with the ECC capability unknown
// (Capability == 0) the at-capacity trigger cannot fire — MaxErrBits has
// nothing to be compared against — but margin-fraction pressure and the
// quiet-growth path still work.
func TestNextIntervalZeroCapability(t *testing.T) {
	p, a := adaptive(t)
	cur := 3600.0
	// Quiet sweep, capability unknown: growth is allowed.
	quiet := RoundStats{Lines: 1_000_000, MaxErrBits: 3}
	if got, want := p.NextInterval(cur, quiet), cur*a.Grow; got != want {
		t.Errorf("quiet sweep with unknown capability: got %g, want %g", got, want)
	}
	// High error counts alone must not trigger the at-capacity shrink when
	// capability is unknown and the margin fraction stays below HighWater.
	busy := RoundStats{Lines: 1_000_000, MaxErrBits: 99, LinesNearMargin: 100}
	if got := p.NextInterval(cur, busy); got != cur {
		t.Errorf("unknown capability acted on MaxErrBits: %g -> %g", cur, got)
	}
	// Margin pressure still shrinks regardless of capability.
	pressured := RoundStats{Lines: 1000, LinesNearMargin: 10}
	if got, want := p.NextInterval(cur, pressured), cur*a.Shrink; got != want {
		t.Errorf("margin pressure ignored at zero capability: got %g, want %g", got, want)
	}
}

// TestNextIntervalMinClamp: repeated shrink pressure saturates at
// MinInterval instead of collapsing toward zero.
func TestNextIntervalMinClamp(t *testing.T) {
	p, a := adaptive(t)
	rs := RoundStats{Lines: 100, UEs: 1} // forces shrink every sweep
	cur := a.MaxInterval
	for i := 0; i < 64; i++ {
		next := p.NextInterval(cur, rs)
		if next < a.MinInterval {
			t.Fatalf("interval %g fell below MinInterval %g", next, a.MinInterval)
		}
		if next > cur {
			t.Fatalf("shrink pressure grew the interval: %g -> %g", cur, next)
		}
		cur = next
	}
	if cur != a.MinInterval {
		t.Errorf("sustained pressure ended at %g, want MinInterval %g", cur, a.MinInterval)
	}
	// And from exactly the floor, another shrink stays put.
	if got := p.NextInterval(a.MinInterval, rs); got != a.MinInterval {
		t.Errorf("shrink from the floor moved to %g", got)
	}
}

// TestNextIntervalMaxClamp: the mirror of the min clamp — a long quiet
// phase saturates at MaxInterval.
func TestNextIntervalMaxClamp(t *testing.T) {
	p, a := adaptive(t)
	rs := RoundStats{Lines: 1_000_000, MaxErrBits: 0, Capability: 4} // deep margin, quiet
	cur := a.MinInterval
	for i := 0; i < 256; i++ {
		next := p.NextInterval(cur, rs)
		if next > a.MaxInterval {
			t.Fatalf("interval %g exceeded MaxInterval %g", next, a.MaxInterval)
		}
		if next < cur {
			t.Fatalf("quiet sweep shrank the interval: %g -> %g", cur, next)
		}
		cur = next
	}
	if cur != a.MaxInterval {
		t.Errorf("sustained quiet ended at %g, want MaxInterval %g", cur, a.MaxInterval)
	}
	if got := p.NextInterval(a.MaxInterval, rs); got != a.MaxInterval {
		t.Errorf("growth from the ceiling moved to %g", got)
	}
}

// TestNextIntervalNonAdaptivePassthrough: fixed-interval policies return
// cur verbatim for any stats — including values an adaptive controller
// would clamp — because there are no bounds configured to clamp against.
func TestNextIntervalNonAdaptivePassthrough(t *testing.T) {
	p := Basic()
	for _, cur := range []float64{1e-9, 240, 3600, 1e12} {
		for _, rs := range []RoundStats{
			{},
			{Lines: 100, UEs: 10},
			{Lines: 100, MaxErrBits: 50, Capability: 4, LinesNearMargin: 100},
		} {
			if got := p.NextInterval(cur, rs); got != cur {
				t.Errorf("fixed policy moved interval %g -> %g for %+v", cur, got, rs)
			}
		}
	}
}

// TestNextIntervalAtCapacitySweep: a sweep whose worst line consumed the
// whole ECC budget shrinks even when the margin fraction is tiny — one
// more crossing on that line would have been a UE.
func TestNextIntervalAtCapacitySweep(t *testing.T) {
	p, a := adaptive(t)
	cur := 3600.0
	rs := RoundStats{Lines: 100_000_000, MaxErrBits: 4, Capability: 4, LinesNearMargin: 1}
	if got, want := p.NextInterval(cur, rs), cur*a.Shrink; got != want {
		t.Errorf("at-capacity sweep did not shrink: got %g, want %g", got, want)
	}
	// One bit of headroom on the worst line blocks both shrink (below
	// HighWater) and growth (not deep margin): the interval holds.
	rs.MaxErrBits = 3
	if got := p.NextInterval(cur, rs); got != cur {
		t.Errorf("near-capacity sweep moved interval: %g -> %g", cur, got)
	}
}

// TestNextIntervalFiniteInputs: clamping keeps the returned interval
// finite and in-bounds even for degenerate current values.
func TestNextIntervalFiniteInputs(t *testing.T) {
	p, a := adaptive(t)
	for _, cur := range []float64{0, -100, math.Inf(1)} {
		got := p.NextInterval(cur, RoundStats{Lines: 100})
		if got < a.MinInterval || got > a.MaxInterval {
			t.Errorf("cur=%g escaped the bounds: got %g", cur, got)
		}
	}
}
