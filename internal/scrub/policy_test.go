package scrub

import (
	"math"
	"testing"
)

func TestDetectionString(t *testing.T) {
	if FullDecode.String() != "full-decode" || LightDetect.String() != "light-detect" {
		t.Error("Detection strings wrong")
	}
	if Detection(9).String() == "" {
		t.Error("unknown detection should still render")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (&Config{WriteThreshold: -1}).Validate(); err == nil {
		t.Error("negative threshold accepted")
	}
	if err := (&Config{Detect: Detection(7)}).Validate(); err == nil {
		t.Error("bogus detection accepted")
	}
	bad := DefaultAdaptive()
	bad.Shrink = 1.5
	if err := (&Config{Adaptive: &bad}).Validate(); err == nil {
		t.Error("bad adaptive config accepted")
	}
}

func TestAdaptiveConfigValidate(t *testing.T) {
	cases := []func(*AdaptiveConfig){
		func(a *AdaptiveConfig) { a.MinInterval = 0 },
		func(a *AdaptiveConfig) { a.MaxInterval = a.MinInterval / 2 },
		func(a *AdaptiveConfig) { a.Shrink = 0 },
		func(a *AdaptiveConfig) { a.Shrink = 1 },
		func(a *AdaptiveConfig) { a.Grow = 1 },
		func(a *AdaptiveConfig) { a.HighWater, a.LowWater = 1e-6, 1e-3 },
		func(a *AdaptiveConfig) { a.LowWater = -1 },
	}
	for i, mut := range cases {
		a := DefaultAdaptive()
		mut(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid adaptive config accepted", i)
		}
	}
	good := DefaultAdaptive()
	if err := good.Validate(); err != nil {
		t.Errorf("default adaptive config invalid: %v", err)
	}
}

func TestCannedPolicyNames(t *testing.T) {
	cases := []struct {
		p    Policy
		name string
		det  Detection
	}{
		{Basic(), "basic", FullDecode},
		{AlwaysWrite(), "always-write", FullDecode},
		{LightBasic(), "basic+light", LightDetect},
		{Threshold(3), "threshold-3", FullDecode},
		{Combined(4), "combined", LightDetect},
	}
	for _, c := range cases {
		if c.p.Name() != c.name {
			t.Errorf("name = %q, want %q", c.p.Name(), c.name)
		}
		if c.p.Detection() != c.det {
			t.Errorf("%s: detection = %v", c.name, c.p.Detection())
		}
	}
}

func TestDerivedNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{WriteThreshold: 0}, "always"},
		{Config{WriteThreshold: 1}, "on-error"},
		{Config{WriteThreshold: 3}, "thr3"},
		{Config{WriteThreshold: 3, WearAware: true}, "thr3+wear"},
		{Config{WriteThreshold: 2, Detect: LightDetect}, "thr2+light"},
	}
	for _, c := range cases {
		p := MustNew(c.cfg)
		if p.Name() != c.want {
			t.Errorf("derived name = %q, want %q", p.Name(), c.want)
		}
	}
	a := DefaultAdaptive()
	p := MustNew(Config{WriteThreshold: 2, Adaptive: &a})
	if p.Name() != "thr2+adaptive" {
		t.Errorf("adaptive derived name = %q", p.Name())
	}
}

func TestShouldWriteBackThresholds(t *testing.T) {
	always := AlwaysWrite()
	if !always.ShouldWriteBack(VisitInfo{ErrBits: 0}) {
		t.Error("always-write must write with zero errors")
	}
	basic := Basic()
	if !basic.ShouldWriteBack(VisitInfo{ErrBits: 1}) {
		t.Error("basic must write on one error")
	}
	thr := Threshold(3)
	if thr.ShouldWriteBack(VisitInfo{ErrBits: 2}) {
		t.Error("threshold-3 must not write at 2 errors")
	}
	if !thr.ShouldWriteBack(VisitInfo{ErrBits: 3}) {
		t.Error("threshold-3 must write at 3 errors")
	}
}

func TestWearAwareLowersThreshold(t *testing.T) {
	p := MustNew(Config{WriteThreshold: 4, WearAware: true})
	// Healthy line: threshold 4.
	if p.ShouldWriteBack(VisitInfo{ErrBits: 3, DeadCells: 0}) {
		t.Error("healthy line at 3 errors should not be written (thr 4)")
	}
	// Two dead cells: effective threshold 2.
	if !p.ShouldWriteBack(VisitInfo{ErrBits: 2, DeadCells: 2}) {
		t.Error("worn line at 2 errors should be written (thr 4-2)")
	}
	// Threshold never drops below 1: zero errors never triggers.
	if p.ShouldWriteBack(VisitInfo{ErrBits: 0, DeadCells: 10}) {
		t.Error("clean line must never be written by wear-aware threshold")
	}
	if !p.ShouldWriteBack(VisitInfo{ErrBits: 1, DeadCells: 10}) {
		t.Error("heavily worn line with an error should be written")
	}
}

func TestFixedPolicyKeepsInterval(t *testing.T) {
	p := Basic()
	rs := RoundStats{Lines: 1000, LinesNearMargin: 500, UEs: 3}
	if got := p.NextInterval(3600, rs); got != 3600 {
		t.Errorf("fixed policy changed interval to %g", got)
	}
}

func TestAdaptiveShrinksUnderPressure(t *testing.T) {
	a := DefaultAdaptive()
	p := MustNew(Config{WriteThreshold: 2, Adaptive: &a})
	rs := RoundStats{Lines: 1000, LinesNearMargin: 10} // 1% > HighWater
	got := p.NextInterval(3600, rs)
	if math.Abs(got-1800) > 1e-9 {
		t.Errorf("interval = %g, want 1800", got)
	}
	// A UE also forces a shrink, even with low margin pressure.
	rs = RoundStats{Lines: 1000, LinesNearMargin: 0, UEs: 1}
	if got := p.NextInterval(3600, rs); math.Abs(got-1800) > 1e-9 {
		t.Errorf("UE should shrink interval, got %g", got)
	}
}

func TestAdaptiveGrowsWhenQuiet(t *testing.T) {
	a := DefaultAdaptive()
	p := MustNew(Config{WriteThreshold: 2, Adaptive: &a})
	rs := RoundStats{Lines: 1000000, LinesNearMargin: 0}
	got := p.NextInterval(3600, rs)
	if math.Abs(got-4500) > 1e-9 {
		t.Errorf("interval = %g, want 4500", got)
	}
}

func TestAdaptiveHoldsInDeadBand(t *testing.T) {
	a := DefaultAdaptive()
	p := MustNew(Config{WriteThreshold: 2, Adaptive: &a})
	// risky fraction between low and high water: hold.
	rs := RoundStats{Lines: 1000000, LinesNearMargin: 100} // 1e-4
	if got := p.NextInterval(3600, rs); got != 3600 {
		t.Errorf("dead band should hold interval, got %g", got)
	}
}

func TestAdaptiveClampsToBounds(t *testing.T) {
	a := DefaultAdaptive()
	p := MustNew(Config{WriteThreshold: 2, Adaptive: &a})
	pressure := RoundStats{Lines: 100, LinesNearMargin: 100}
	quiet := RoundStats{Lines: 1000000, LinesNearMargin: 0}
	if got := p.NextInterval(a.MinInterval, pressure); got != a.MinInterval {
		t.Errorf("shrink below min: %g", got)
	}
	if got := p.NextInterval(a.MaxInterval, quiet); got != a.MaxInterval {
		t.Errorf("grow above max: %g", got)
	}
}

func TestAdaptiveEmptyRoundHolds(t *testing.T) {
	a := DefaultAdaptive()
	p := MustNew(Config{WriteThreshold: 2, Adaptive: &a})
	if got := p.NextInterval(3600, RoundStats{}); got != 3600 {
		t.Errorf("empty round should hold interval, got %g", got)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{WriteThreshold: -2}); err == nil {
		t.Error("invalid config accepted")
	}
}
