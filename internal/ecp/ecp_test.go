package ecp

import (
	"testing"

	"repro/internal/pcm"
	"repro/internal/stats"
)

func TestParamsValidateAndOverhead(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// ECP-6 over 256 cells: 6×(8 addr + 2 value + 1 used) + 1 full = 67.
	if got := p.OverheadBits(); got != 67 {
		t.Errorf("overhead = %d bits, want 67", got)
	}
	zero := Params{Entries: 0, CellsPerLine: 256, BitsPerCell: 2}
	if zero.OverheadBits() != 0 {
		t.Error("ECP-0 should cost nothing")
	}
	bad := p
	bad.Entries = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative entries accepted")
	}
	bad = p
	bad.CellsPerLine = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cells accepted")
	}
}

func TestAssignAndApply(t *testing.T) {
	l := MustLine(Params{Entries: 2, CellsPerLine: 8, BitsPerCell: 2})
	cells := []uint8{0, 1, 2, 3, 0, 1, 2, 3}
	// Cell 3 stuck reading 3, should hold 1; cell 5 stuck reading 1, should hold 2.
	if ok, err := l.Assign(3, 1); !ok || err != nil {
		t.Fatalf("assign failed: %v %v", ok, err)
	}
	if ok, err := l.Assign(5, 2); !ok || err != nil {
		t.Fatalf("assign failed: %v %v", ok, err)
	}
	patched, err := l.Apply(cells)
	if err != nil {
		t.Fatal(err)
	}
	if patched != 2 || cells[3] != 1 || cells[5] != 2 {
		t.Errorf("apply wrong: patched=%d cells=%v", patched, cells)
	}
	if !l.Covered(3) || l.Covered(4) {
		t.Error("coverage bookkeeping wrong")
	}
	if !l.Full() || l.Used() != 2 {
		t.Error("fullness bookkeeping wrong")
	}
	// Table full: a third cell cannot be covered.
	if ok, err := l.Assign(6, 0); ok || err != nil {
		t.Errorf("assign on full table: ok=%v err=%v", ok, err)
	}
	// Re-assigning a covered cell updates in place.
	if ok, _ := l.Assign(3, 2); !ok {
		t.Error("re-assign rejected")
	}
	if l.Used() != 2 {
		t.Error("re-assign allocated a new entry")
	}
}

func TestAssignValidation(t *testing.T) {
	l := MustLine(Params{Entries: 1, CellsPerLine: 4, BitsPerCell: 2})
	if _, err := l.Assign(-1, 0); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := l.Assign(4, 0); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if _, err := l.Assign(0, 4); err == nil {
		t.Error("oversized value accepted")
	}
	if _, err := l.Apply(make([]uint8, 3)); err == nil {
		t.Error("wrong cell count accepted")
	}
}

func TestRewriteUpdatesReplacements(t *testing.T) {
	l := MustLine(Params{Entries: 2, CellsPerLine: 8, BitsPerCell: 2})
	l.Assign(2, 1)
	l.Assign(7, 3)
	newData := []uint8{3, 3, 0, 3, 3, 3, 3, 2}
	l.Rewrite(func(cell int) uint8 { return newData[cell] })
	cells := make([]uint8, 8)
	for i := range cells {
		cells[i] = 9 & 3 // wrong values everywhere
	}
	l.Apply(cells)
	if cells[2] != 0 || cells[7] != 2 {
		t.Errorf("rewrite not applied: %v", cells)
	}
}

func TestAbsorb(t *testing.T) {
	cases := []struct {
		entries, dead, covered, residual int
	}{
		{6, 0, 0, 0},
		{6, 3, 3, 0},
		{6, 6, 6, 0},
		{6, 9, 6, 3},
		{0, 4, 0, 4},
		{6, -1, 0, 0},
	}
	for _, c := range cases {
		cov, res := Absorb(c.entries, c.dead)
		if cov != c.covered || res != c.residual {
			t.Errorf("Absorb(%d,%d) = (%d,%d), want (%d,%d)",
				c.entries, c.dead, cov, res, c.covered, c.residual)
		}
	}
}

// TestECPShieldsECCFromStuckCells is the integration story: stuck cells
// patched by ECP never reach the ECC, so the full drift budget survives
// on an aged line.
func TestECPShieldsECCFromStuckCells(t *testing.T) {
	r := stats.NewRNG(1)
	l := MustLine(Params{Entries: 6, CellsPerLine: pcm.CellsPerLine, BitsPerCell: 2})
	// Six stuck cells with random stuck values; the intended data differs.
	intended := make([]uint8, pcm.CellsPerLine)
	for i := range intended {
		intended[i] = uint8(r.Intn(4))
	}
	stuck := map[int]uint8{}
	for len(stuck) < 6 {
		cell := r.Intn(pcm.CellsPerLine)
		if _, dup := stuck[cell]; dup {
			continue
		}
		stuck[cell] = uint8(r.Intn(4))
		if ok, err := l.Assign(cell, intended[cell]); !ok || err != nil {
			t.Fatalf("assign: %v %v", ok, err)
		}
	}
	// Read-back view: stuck cells return their stuck value.
	cells := append([]uint8(nil), intended...)
	wrongBefore := 0
	for cell, sv := range stuck {
		cells[cell] = sv
		if sv != intended[cell] {
			wrongBefore++
		}
	}
	if _, err := l.Apply(cells); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != intended[i] {
			t.Fatalf("cell %d still wrong after ECP", i)
		}
	}
	if wrongBefore == 0 {
		t.Log("all stuck values happened to match; rerun with another seed if this repeats")
	}
}
