// Package ecp implements Error-Correcting Pointers (Schechter et al.,
// ISCA 2010), the hard-error companion to ECC that the scrub study's
// wear model feeds into: each line carries n pointer entries, each
// naming a stuck cell and storing its intended value in a spare cell.
// Reads substitute the replacement values before ECC ever sees the data,
// so up to n *known* stuck cells cost zero ECC budget — leaving the
// (soft, position-unknown) drift errors the full correction capability.
package ecp

import (
	"fmt"
	"math"
)

// Entry is one pointer: a stuck cell's index and its replacement value.
type Entry struct {
	// Cell is the index of the stuck cell within the line.
	Cell int
	// Value is the data the cell should hold (BitsPerCell bits).
	Value uint8
}

// Params sizes the ECP structure.
type Params struct {
	// Entries is the number of pointers per line (ECP-n).
	Entries int
	// CellsPerLine is the number of cells each pointer can address.
	CellsPerLine int
	// BitsPerCell is the width of one replacement value.
	BitsPerCell int
}

// DefaultParams returns ECP-6 over 256 2-bit cells — the classic
// configuration scaled to this study's line.
func DefaultParams() Params {
	return Params{Entries: 6, CellsPerLine: 256, BitsPerCell: 2}
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	if p.Entries < 0 {
		return fmt.Errorf("ecp: Entries must be non-negative")
	}
	if p.CellsPerLine < 1 {
		return fmt.Errorf("ecp: CellsPerLine must be >= 1")
	}
	if p.BitsPerCell < 1 {
		return fmt.Errorf("ecp: BitsPerCell must be >= 1")
	}
	return nil
}

// OverheadBits returns the storage cost per line: per entry, an address
// of ceil(log2(cells)) bits plus a replacement cell, plus one "entry
// used" bit, plus a line-level full flag.
func (p *Params) OverheadBits() int {
	if p.Entries == 0 {
		return 0
	}
	addr := int(math.Ceil(math.Log2(float64(p.CellsPerLine))))
	return p.Entries*(addr+p.BitsPerCell+1) + 1
}

// Line is the mutable per-line pointer table.
type Line struct {
	p       Params
	entries []Entry
}

// NewLine returns an empty pointer table for the given parameters.
func NewLine(p Params) (*Line, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Line{p: p}, nil
}

// MustLine is NewLine that panics on error.
func MustLine(p Params) *Line {
	l, err := NewLine(p)
	if err != nil {
		panic(err)
	}
	return l
}

// Used returns the number of allocated pointers.
func (l *Line) Used() int { return len(l.entries) }

// Full reports whether every pointer is allocated.
func (l *Line) Full() bool { return len(l.entries) >= l.p.Entries }

// Assign allocates a pointer for a newly detected stuck cell. It returns
// false when the table is full (the line must then be decommissioned or
// the error left to ECC). Assigning an already-covered cell updates its
// replacement value in place.
func (l *Line) Assign(cell int, value uint8) (bool, error) {
	if cell < 0 || cell >= l.p.CellsPerLine {
		return false, fmt.Errorf("ecp: cell %d out of range [0,%d)", cell, l.p.CellsPerLine)
	}
	if value >= 1<<uint(l.p.BitsPerCell) {
		return false, fmt.Errorf("ecp: value %d exceeds %d bits", value, l.p.BitsPerCell)
	}
	for i := range l.entries {
		if l.entries[i].Cell == cell {
			l.entries[i].Value = value
			return true, nil
		}
	}
	if l.Full() {
		return false, nil
	}
	l.entries = append(l.entries, Entry{Cell: cell, Value: value})
	return true, nil
}

// Rewrite updates every allocated pointer's replacement value for a new
// line write (the stuck cells stay stuck; their intended data changes).
func (l *Line) Rewrite(valueOf func(cell int) uint8) {
	for i := range l.entries {
		l.entries[i].Value = valueOf(l.entries[i].Cell) & (1<<uint(l.p.BitsPerCell) - 1)
	}
}

// Apply substitutes the replacement values into a cell-array view of the
// line: cells[i] holds cell i's read-back value. Returns how many cells
// were patched.
func (l *Line) Apply(cells []uint8) (int, error) {
	if len(cells) != l.p.CellsPerLine {
		return 0, fmt.Errorf("ecp: need %d cells, got %d", l.p.CellsPerLine, len(cells))
	}
	patched := 0
	for _, e := range l.entries {
		if cells[e.Cell] != e.Value {
			cells[e.Cell] = e.Value
			patched++
		}
	}
	return patched, nil
}

// Covered reports whether the given cell has a pointer.
func (l *Line) Covered(cell int) bool {
	for _, e := range l.entries {
		if e.Cell == cell {
			return true
		}
	}
	return false
}

// Absorb is the reliability-model view: of dead stuck cells in a line,
// how many are neutralised by an ECP-n table and how many remain for the
// ECC to handle. Pointers are allocated to stuck cells in detection
// order, so the first n dead cells are covered.
func Absorb(entries, deadCells int) (covered, residual int) {
	if deadCells <= 0 {
		return 0, 0
	}
	if deadCells <= entries {
		return deadCells, 0
	}
	return entries, deadCells - entries
}
