// Package gf2 implements arithmetic in the binary Galois fields GF(2^m)
// and polynomials over them. It is the algebraic substrate for the BCH
// error-correcting codes in internal/bch.
//
// Field elements are represented as uint32 bit vectors of the coefficients
// of the polynomial basis: element a(x) = a0 + a1·x + ... + a(m-1)·x^(m-1)
// is the integer a0 | a1<<1 | ... . Multiplication and inversion use
// log/antilog tables built once per field, so they are O(1).
package gf2

import "fmt"

// defaultPrimitive maps m to a primitive polynomial of degree m over GF(2),
// written as a bit vector including the x^m term. These are the standard
// minimum-weight primitive polynomials used in coding-theory texts.
var defaultPrimitive = map[int]uint32{
	2:  0x7,     // x^2 + x + 1
	3:  0xB,     // x^3 + x + 1
	4:  0x13,    // x^4 + x + 1
	5:  0x25,    // x^5 + x^2 + 1
	6:  0x43,    // x^6 + x + 1
	7:  0x89,    // x^7 + x^3 + 1
	8:  0x11D,   // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,   // x^9 + x^4 + 1
	10: 0x409,   // x^10 + x^3 + 1
	11: 0x805,   // x^11 + x^2 + 1
	12: 0x1053,  // x^12 + x^6 + x^4 + x + 1
	13: 0x201B,  // x^13 + x^4 + x^3 + x + 1
	14: 0x4443,  // x^14 + x^10 + x^6 + x + 1
	15: 0x8003,  // x^15 + x + 1
	16: 0x1100B, // x^16 + x^12 + x^3 + x + 1
}

// Field is a finite field GF(2^m). The zero value is not usable; construct
// with NewField.
type Field struct {
	m      int    // extension degree
	n      uint32 // field size minus one: 2^m - 1
	prim   uint32 // primitive polynomial bit vector
	logTbl []uint32
	expTbl []uint32 // doubled length to avoid a modulo in Mul
}

// NewField constructs GF(2^m) for 2 <= m <= 16 using the package's default
// primitive polynomial for that degree.
func NewField(m int) (*Field, error) {
	prim, ok := defaultPrimitive[m]
	if !ok {
		return nil, fmt.Errorf("gf2: no default primitive polynomial for m=%d (supported: 2..16)", m)
	}
	return NewFieldWithPoly(m, prim)
}

// MustField is NewField that panics on error; for tests and constants.
func MustField(m int) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// NewFieldWithPoly constructs GF(2^m) with an explicit primitive polynomial
// (bit vector including the x^m term). The polynomial is verified to be
// primitive by checking that x generates the full multiplicative group.
func NewFieldWithPoly(m int, prim uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gf2: m=%d out of supported range [2,16]", m)
	}
	if prim>>uint(m) != 1 {
		return nil, fmt.Errorf("gf2: primitive polynomial %#x does not have degree %d", prim, m)
	}
	n := uint32(1)<<uint(m) - 1
	f := &Field{
		m:      m,
		n:      n,
		prim:   prim,
		logTbl: make([]uint32, n+1),
		expTbl: make([]uint32, 2*n),
	}
	// Generate powers of alpha (= x) by shifting and reducing.
	x := uint32(1)
	for i := uint32(0); i < n; i++ {
		f.expTbl[i] = x
		f.expTbl[i+n] = x
		if f.logTbl[x] != 0 && x != 1 {
			return nil, fmt.Errorf("gf2: polynomial %#x is not primitive for m=%d (α^%d repeats)", prim, m, i)
		}
		f.logTbl[x] = i
		x <<= 1
		if x>>uint(m) != 0 {
			x ^= prim
		}
	}
	if f.expTbl[0] != 1 {
		return nil, fmt.Errorf("gf2: internal table construction error")
	}
	// If alpha's order were a proper divisor of n we would revisit 1 early;
	// verify full period: after n steps x must return to 1.
	if x != 1 {
		return nil, fmt.Errorf("gf2: polynomial %#x is not primitive for m=%d", prim, m)
	}
	return f, nil
}

// M returns the extension degree m.
func (f *Field) M() int { return f.m }

// Size returns the number of field elements, 2^m.
func (f *Field) Size() uint32 { return f.n + 1 }

// N returns the multiplicative group order, 2^m - 1.
func (f *Field) N() uint32 { return f.n }

// Add returns a + b (= a XOR b in characteristic 2).
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns the product a·b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.expTbl[f.logTbl[a]+f.logTbl[b]]
}

// MulAlphaLog returns a·α^lg for non-zero a and lg in [0, N). It skips
// the zero checks of Mul — the doubled antilog table absorbs the index
// wrap — and exists for kernel inner loops (internal/codekit) whose
// operands are provably non-zero.
func (f *Field) MulAlphaLog(a uint32, lg uint32) uint32 {
	return f.expTbl[f.logTbl[a]+lg]
}

// LogExpTables exposes the field's log table and doubled antilog table
// for kernel inner loops (internal/codekit) that keep both slices in
// registers instead of chasing the Field pointer per multiply. Both
// slices are read-only; for non-zero a and lg in [0, N),
// expTbl[logTbl[a]+lg] = a·α^lg (the MulAlphaLog identity).
func (f *Field) LogExpTables() (logTbl, expTbl []uint32) {
	return f.logTbl, f.expTbl
}

// Div returns a/b. It panics if b == 0.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf2: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.expTbl[f.logTbl[a]+f.n-f.logTbl[b]]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	return f.expTbl[f.n-f.logTbl[a]]
}

// Exp returns α^i for any integer exponent i (negative allowed).
func (f *Field) Exp(i int64) uint32 {
	n := int64(f.n)
	i %= n
	if i < 0 {
		i += n
	}
	return f.expTbl[i]
}

// Log returns the discrete log of a (the i with α^i = a). Panics if a == 0.
func (f *Field) Log(a uint32) uint32 {
	if a == 0 {
		panic("gf2: log of zero")
	}
	return f.logTbl[a]
}

// Pow returns a^e for e >= 0.
func (f *Field) Pow(a uint32, e int64) uint32 {
	if e < 0 {
		panic("gf2: negative exponent in Pow; use Exp for alpha powers")
	}
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	le := (int64(f.logTbl[a]) * e) % int64(f.n)
	return f.expTbl[le]
}

// Sqr returns a².
func (f *Field) Sqr(a uint32) uint32 { return f.Mul(a, a) }

// IsValid reports whether v is a representable element of the field.
func (f *Field) IsValid(v uint32) bool { return v <= f.n }
