package gf2

import (
	"testing"
	"testing/quick"
)

func randPoly(f *Field, raw []uint32, maxLen int) Poly {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	p := make(Poly, len(raw))
	for i, c := range raw {
		p[i] = c % f.Size()
	}
	return p.trim()
}

func TestPolyDegreeAndZero(t *testing.T) {
	if (Poly{}).Degree() != -1 || !(Poly{}).IsZero() {
		t.Error("zero polynomial misclassified")
	}
	if (Poly{0, 0, 0}).Degree() != -1 {
		t.Error("all-zero coefficients should trim to zero poly")
	}
	if (Poly{1}).Degree() != 0 {
		t.Error("constant has degree 0")
	}
	if (Poly{0, 0, 5}).Degree() != 2 {
		t.Error("degree computed wrong")
	}
}

func TestPolyCoeffOutOfRange(t *testing.T) {
	p := Poly{1, 2}
	if p.Coeff(-1) != 0 || p.Coeff(2) != 0 || p.Coeff(1) != 2 {
		t.Error("Coeff boundary handling wrong")
	}
}

func TestPolyAddSelfIsZero(t *testing.T) {
	f := MustField(8)
	prop := func(raw []uint32) bool {
		p := randPoly(f, raw, 20)
		return PolyAdd(p, p).IsZero()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyMulCommutesAndDistributes(t *testing.T) {
	f := MustField(8)
	prop := func(ra, rb, rc []uint32) bool {
		a := randPoly(f, ra, 8)
		b := randPoly(f, rb, 8)
		c := randPoly(f, rc, 8)
		if !PolyEqual(PolyMul(f, a, b), PolyMul(f, b, a)) {
			return false
		}
		lhs := PolyMul(f, a, PolyAdd(b, c))
		rhs := PolyAdd(PolyMul(f, a, b), PolyMul(f, a, c))
		return PolyEqual(lhs, rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyMulDegrees(t *testing.T) {
	f := MustField(4)
	a := Poly{1, 1}    // 1 + x
	b := Poly{1, 0, 1} // 1 + x²
	prod := PolyMul(f, a, b)
	if prod.Degree() != 3 {
		t.Fatalf("degree of product = %d, want 3", prod.Degree())
	}
	// (1+x)(1+x²) = 1 + x + x² + x³ over GF(2) subfield.
	want := Poly{1, 1, 1, 1}
	if !PolyEqual(prod, want) {
		t.Fatalf("product = %v, want %v", prod, want)
	}
}

func TestPolyMulByZero(t *testing.T) {
	f := MustField(4)
	if !PolyMul(f, Poly{1, 2, 3}, nil).IsZero() {
		t.Error("multiplying by zero poly should give zero")
	}
	if !PolyMulScalar(f, Poly{1, 2}, 0).IsZero() {
		t.Error("scalar 0 should zero the polynomial")
	}
}

func TestPolyDivModIdentity(t *testing.T) {
	f := MustField(8)
	prop := func(ra, rb []uint32) bool {
		a := randPoly(f, ra, 16)
		b := randPoly(f, rb, 8)
		if b.IsZero() {
			return true
		}
		q, r := PolyDivMod(f, a, b)
		if r.Degree() >= b.Degree() {
			return false
		}
		// a == q·b + r
		recon := PolyAdd(PolyMul(f, q, b), r)
		return PolyEqual(recon, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyDivByZeroPanics(t *testing.T) {
	f := MustField(4)
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero poly did not panic")
		}
	}()
	PolyDivMod(f, Poly{1}, Poly{0})
}

func TestPolyEvalHorner(t *testing.T) {
	f := MustField(8)
	// p(x) = 3 + 5x + x³ at a handful of points, cross-checked against
	// explicit power evaluation.
	p := Poly{3, 5, 0, 1}
	for _, x := range []uint32{0, 1, 2, 7, 200} {
		want := f.Add(f.Add(3, f.Mul(5, x)), f.Pow(x, 3))
		if got := PolyEval(f, p, x); got != want {
			t.Errorf("p(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestPolyEvalZeroPoly(t *testing.T) {
	f := MustField(4)
	if PolyEval(f, nil, 7) != 0 {
		t.Error("zero poly should evaluate to 0")
	}
}

func TestPolyDeriv(t *testing.T) {
	// d/dx (c0 + c1 x + c2 x² + c3 x³) = c1 + c3 x² in char 2.
	p := Poly{9, 7, 5, 3}
	d := PolyDeriv(p)
	want := Poly{7, 0, 3}
	if !PolyEqual(d, want) {
		t.Fatalf("deriv = %v, want %v", d, want)
	}
	if !PolyDeriv(Poly{5}).IsZero() {
		t.Error("derivative of constant should be zero")
	}
}

func TestPolyShift(t *testing.T) {
	p := Poly{1, 2}
	s := PolyShift(p, 3)
	want := Poly{0, 0, 0, 1, 2}
	if !PolyEqual(s, want) {
		t.Fatalf("shift = %v, want %v", s, want)
	}
	if !PolyShift(nil, 4).IsZero() {
		t.Error("shifting zero poly should stay zero")
	}
}

func TestMinimalPolyGF16(t *testing.T) {
	// Classic table for GF(16) with x^4+x+1:
	// m1(x) = x^4+x+1 (coset {1,2,4,8})
	// m3(x) = x^4+x^3+x^2+x+1 (coset {3,6,12,9})
	// m5(x) = x^2+x+1 (coset {5,10})
	// m7(x) = x^4+x^3+1 (coset {7,14,13,11})
	f := MustField(4)
	cases := []struct {
		i    int64
		want Poly
	}{
		{1, Poly{1, 1, 0, 0, 1}},
		{3, Poly{1, 1, 1, 1, 1}},
		{5, Poly{1, 1, 1}},
		{7, Poly{1, 0, 0, 1, 1}},
	}
	for _, c := range cases {
		got := MinimalPoly(f, c.i)
		if !PolyEqual(got, c.want) {
			t.Errorf("minpoly(α^%d) = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestMinimalPolyHasBinaryCoefficients(t *testing.T) {
	f := MustField(8)
	for i := int64(1); i < 30; i++ {
		p := MinimalPoly(f, i)
		for d, c := range p {
			if c > 1 {
				t.Fatalf("minpoly(α^%d) coefficient of x^%d = %d, want 0/1", i, d, c)
			}
		}
		// α^i must be a root.
		if PolyEval(f, p, f.Exp(i)) != 0 {
			t.Fatalf("α^%d is not a root of its own minimal polynomial", i)
		}
	}
}

func TestMinimalPolyConjugatesShareMinPoly(t *testing.T) {
	f := MustField(6)
	for i := int64(1); i < 20; i++ {
		a := MinimalPoly(f, i)
		b := MinimalPoly(f, 2*i) // conjugate
		if !PolyEqual(a, b) {
			t.Fatalf("minpoly(α^%d) != minpoly(α^%d)", i, 2*i)
		}
	}
}

func TestGCDAndLCM(t *testing.T) {
	f := MustField(4)
	a := Poly{1, 1}    // 1 + x
	b := Poly{1, 0, 1} // (1+x)² over GF(2)
	g := GCD(f, a, b)
	if !PolyEqual(g, a) {
		t.Fatalf("gcd = %v, want %v", g, a)
	}
	l := LCM(f, a, b)
	if !PolyEqual(l, b) {
		t.Fatalf("lcm = %v, want %v", l, b)
	}
}

func TestLCMDividesProductProperty(t *testing.T) {
	f := MustField(8)
	prop := func(ra, rb []uint32) bool {
		a := randPoly(f, ra, 6)
		b := randPoly(f, rb, 6)
		if a.IsZero() || b.IsZero() {
			return LCM(f, a, b).IsZero()
		}
		l := LCM(f, a, b)
		// Both a and b must divide the lcm.
		_, r1 := PolyDivMod(f, l, a)
		_, r2 := PolyDivMod(f, l, b)
		return r1.IsZero() && r2.IsZero()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGCDIsMonic(t *testing.T) {
	f := MustField(8)
	a := PolyMulScalar(f, Poly{1, 1}, 7)
	b := PolyMulScalar(f, Poly{1, 1, 1}, 9)
	ab := PolyMul(f, a, b)
	ac := PolyMul(f, a, Poly{3, 0, 0, 1})
	g := GCD(f, ab, ac)
	if g.IsZero() || g[len(g)-1] != 1 {
		t.Fatalf("gcd not monic: %v", g)
	}
}
