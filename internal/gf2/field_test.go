package gf2

import (
	"testing"
	"testing/quick"
)

func TestNewFieldSupportedDegrees(t *testing.T) {
	for m := 2; m <= 16; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.M() != m || f.Size() != 1<<uint(m) || f.N() != 1<<uint(m)-1 {
			t.Errorf("m=%d: wrong size bookkeeping", m)
		}
	}
}

func TestNewFieldUnsupportedDegree(t *testing.T) {
	for _, m := range []int{0, 1, 17, 32} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d) should fail", m)
		}
	}
}

func TestNewFieldRejectsNonPrimitive(t *testing.T) {
	// x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive over GF(2)
	// (its root has order 5, not 15).
	if _, err := NewFieldWithPoly(4, 0x1F); err == nil {
		t.Error("non-primitive polynomial accepted")
	}
	// x^4 + x^2 + 1 = (x^2+x+1)^2 is reducible.
	if _, err := NewFieldWithPoly(4, 0x15); err == nil {
		t.Error("reducible polynomial accepted")
	}
	// Wrong degree.
	if _, err := NewFieldWithPoly(4, 0x7); err == nil {
		t.Error("degree-2 polynomial accepted for m=4")
	}
}

func TestFieldAxiomsGF16(t *testing.T) {
	f := MustField(4)
	n := f.Size()
	// Exhaustive check of commutativity, associativity, distributivity.
	for a := uint32(0); a < n; a++ {
		for b := uint32(0); b < n; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			for c := uint32(0); c < n; c++ {
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("mul not associative at %d,%d,%d", a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestInversesGF256(t *testing.T) {
	f := MustField(8)
	for a := uint32(1); a < f.Size(); a++ {
		inv := f.Inv(a)
		if f.Mul(a, inv) != 1 {
			t.Fatalf("a·a⁻¹ != 1 for a=%d (inv=%d)", a, inv)
		}
		if f.Div(1, a) != inv {
			t.Fatalf("Div(1,a) != Inv(a) for a=%d", a)
		}
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	f := MustField(10)
	cfg := &quick.Config{MaxCount: 500}
	prop := func(aRaw, bRaw uint32) bool {
		a := aRaw % f.Size()
		b := bRaw%f.N() + 1 // non-zero
		return f.Mul(f.Div(a, b), b) == a
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	f := MustField(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	f.Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	f := MustField(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	f := MustField(12)
	for i := int64(0); i < int64(f.N()); i += 7 {
		a := f.Exp(i)
		if int64(f.Log(a)) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, f.Log(a))
		}
	}
	// Negative and wrapped exponents.
	if f.Exp(-1) != f.Inv(f.Exp(1)) {
		t.Error("Exp(-1) != α⁻¹")
	}
	if f.Exp(int64(f.N())) != 1 {
		t.Error("Exp(N) != 1")
	}
	if f.Exp(int64(f.N())+3) != f.Exp(3) {
		t.Error("Exp does not wrap")
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	f := MustField(6)
	for a := uint32(0); a < f.Size(); a += 5 {
		acc := uint32(1)
		for e := int64(0); e < 20; e++ {
			if got := f.Pow(a, e); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, acc)
			}
			acc = f.Mul(acc, a)
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 should be 1 by convention")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 should be 0")
	}
}

func TestFrobeniusIsFieldAutomorphism(t *testing.T) {
	// (a+b)² = a² + b² in characteristic 2.
	f := MustField(8)
	prop := func(aRaw, bRaw uint32) bool {
		a, b := aRaw%f.Size(), bRaw%f.Size()
		return f.Sqr(f.Add(a, b)) == f.Add(f.Sqr(a), f.Sqr(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaGeneratesGroup(t *testing.T) {
	for _, m := range []int{3, 5, 8, 11} {
		f := MustField(m)
		seen := map[uint32]bool{}
		x := uint32(1)
		for i := uint32(0); i < f.N(); i++ {
			if seen[x] {
				t.Fatalf("m=%d: α has order < N", m)
			}
			seen[x] = true
			x = f.Mul(x, 2) // α = the element "x" = 0b10
		}
		if x != 1 {
			t.Fatalf("m=%d: α^N != 1", m)
		}
	}
}

func TestIsValid(t *testing.T) {
	f := MustField(4)
	if !f.IsValid(15) || f.IsValid(16) {
		t.Error("IsValid boundary wrong")
	}
}
