package gf2

// Poly is a polynomial over GF(2^m), stored as coefficients in increasing
// degree order: p[i] is the coefficient of x^i. The canonical form has no
// trailing zero coefficients; the zero polynomial is the empty slice.
type Poly []uint32

// trim removes trailing zero coefficients, returning the canonical form.
func (p Poly) trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.trim()) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.trim()) == 0 }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly { return append(Poly(nil), p...) }

// Coeff returns the coefficient of x^i (0 beyond the stored length).
func (p Poly) Coeff(i int) uint32 {
	if i < 0 || i >= len(p) {
		return 0
	}
	return p[i]
}

// PolyAdd returns a + b (coefficient-wise XOR).
func PolyAdd(a, b Poly) Poly {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := a.Clone()
	for i, c := range b {
		out[i] ^= c
	}
	return out.trim()
}

// PolyMul returns the product a·b over field f.
func PolyMul(f *Field, a, b Poly) Poly {
	a, b = a.trim(), b.trim()
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(Poly, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			out[i+j] ^= f.Mul(ai, bj)
		}
	}
	return out.trim()
}

// PolyMulScalar returns s·a.
func PolyMulScalar(f *Field, a Poly, s uint32) Poly {
	if s == 0 {
		return nil
	}
	out := make(Poly, len(a))
	for i, c := range a {
		out[i] = f.Mul(c, s)
	}
	return out.trim()
}

// PolyShift returns a·x^k (k >= 0).
func PolyShift(a Poly, k int) Poly {
	a = a.trim()
	if len(a) == 0 {
		return nil
	}
	out := make(Poly, len(a)+k)
	copy(out[k:], a)
	return out
}

// PolyDivMod returns the quotient and remainder of a / b over field f.
// It panics if b is zero.
func PolyDivMod(f *Field, a, b Poly) (q, r Poly) {
	b = b.trim()
	if len(b) == 0 {
		panic("gf2: polynomial division by zero")
	}
	r = a.Clone().trim()
	db := len(b) - 1
	lead := b[db]
	leadInv := f.Inv(lead)
	if len(r)-1 >= db {
		q = make(Poly, len(r)-db)
	}
	for len(r)-1 >= db && len(r) > 0 {
		dr := len(r) - 1
		factor := f.Mul(r[dr], leadInv)
		q[dr-db] = factor
		for i, bc := range b {
			r[dr-db+i] ^= f.Mul(factor, bc)
		}
		r = r.trim()
	}
	return q.trim(), r
}

// PolyEval evaluates p at point x using Horner's rule.
func PolyEval(f *Field, p Poly, x uint32) uint32 {
	var acc uint32
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ p[i]
	}
	return acc
}

// PolyDeriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd powers keep their coefficient:
// d/dx Σ c_i x^i = Σ_{i odd} c_i x^(i-1).
func PolyDeriv(p Poly) Poly {
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out.trim()
}

// PolyEqual reports whether a and b are the same polynomial.
func PolyEqual(a, b Poly) bool {
	a, b = a.trim(), b.trim()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MinimalPoly returns the minimal polynomial over GF(2) of α^i in field f:
// the product of (x - α^(i·2^j)) over the conjugacy class of α^i. The
// result has coefficients in {0,1} (it is a polynomial over the prime
// subfield) but is returned as a Poly for composability.
func MinimalPoly(f *Field, i int64) Poly {
	n := int64(f.N())
	// Collect the cyclotomic coset of i mod n: {i, 2i, 4i, ...}.
	seen := map[int64]bool{}
	coset := []int64{}
	e := ((i % n) + n) % n
	for !seen[e] {
		seen[e] = true
		coset = append(coset, e)
		e = (e * 2) % n
	}
	// Multiply out Π (x + α^e).
	p := Poly{1}
	for _, e := range coset {
		p = PolyMul(f, p, Poly{f.Exp(e), 1})
	}
	return p
}

// LCM returns the least common multiple of polynomials a and b over f,
// computed as a·b / gcd(a,b).
func LCM(f *Field, a, b Poly) Poly {
	a, b = a.trim(), b.trim()
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	g := GCD(f, a, b)
	q, _ := PolyDivMod(f, PolyMul(f, a, b), g)
	return makeMonic(f, q)
}

// GCD returns the monic greatest common divisor of a and b over f.
func GCD(f *Field, a, b Poly) Poly {
	a, b = a.Clone().trim(), b.Clone().trim()
	for !b.IsZero() {
		_, r := PolyDivMod(f, a, b)
		a, b = b, r
	}
	return makeMonic(f, a)
}

// makeMonic scales p so its leading coefficient is 1.
func makeMonic(f *Field, p Poly) Poly {
	p = p.trim()
	if len(p) == 0 {
		return p
	}
	lead := p[len(p)-1]
	if lead == 1 {
		return p
	}
	return PolyMulScalar(f, p, f.Inv(lead))
}
