package ecc

import (
	"fmt"
	"testing"
)

// The per-codec microbenchmarks below measure the decode hot path of each
// line codec at full correction load (weight-t error patterns), with the
// word-parallel kernel and the scalar reference as sibling sub-benchmarks
// (".../ref"). `make bench` folds them into BENCH_engine.json, where
// cmd/benchjson pairs each kernel/ref couple into a speedup ratio that CI
// gates (>= 5x for BCH decode, >= 3x for the SECDED line).
//
// Each iteration re-corrupts the codeword by copying from a pre-flipped
// template; the copy cost is identical on both paths, so the ratio is
// conservative (it slightly understates the kernel win).

// benchPayload is a deterministic 64-byte line payload.
func benchPayload() []byte {
	data := make([]byte, LineBytes)
	for i := range data {
		data[i] = byte(2*i + 1)
	}
	return data
}

// benchCorrupt returns a copy of cw with nflips bit flips spread evenly
// over the first bits positions (stride placement: flip j lands at
// j*stride + stride/2). For the 8x(72,64) SECDED line, 8 flips over 576
// bits puts exactly one flip in each 72-bit word — the codec's full load.
func benchCorrupt(cw []byte, nflips, bits int) []byte {
	out := append([]byte(nil), cw...)
	if nflips <= 0 {
		return out
	}
	stride := bits / nflips
	for j := 0; j < nflips; j++ {
		p := j*stride + stride/2
		out[p>>3] ^= 1 << (p & 7)
	}
	return out
}

// BenchmarkBCHDecode measures a full-load line decode (syndromes,
// Berlekamp–Massey, Chien search, t corrections) at the paper's line
// strengths, kernel vs scalar reference.
func BenchmarkBCHDecode(b *testing.B) {
	for _, t := range []int{2, 4, 8} {
		line := MustBCHLine(t)
		enc, err := line.EncodeLine(benchPayload())
		if err != nil {
			b.Fatal(err)
		}
		support := line.DataBits() + line.CheckBits()
		dirty := benchCorrupt(enc, t, support)
		buf := make([]byte, len(dirty))

		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			b.SetBytes(LineBytes)
			for i := 0; i < b.N; i++ {
				copy(buf, dirty)
				if _, err := line.DecodeLine(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("t=%d/ref", t), func(b *testing.B) {
			b.SetBytes(LineBytes)
			for i := 0; i < b.N; i++ {
				copy(buf, dirty)
				if _, err := line.DecodeLineRef(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSECDEDLineDecode measures the 8x(72,64) line decode with one
// correctable flip in every word, kernel (packed syndrome lookup) vs the
// scalar bit-scan reference.
func BenchmarkSECDEDLineDecode(b *testing.B) {
	line := NewSECDEDLine()
	enc, err := line.EncodeLine(benchPayload())
	if err != nil {
		b.Fatal(err)
	}
	dirty := benchCorrupt(enc, line.Words(), len(enc)*8)
	buf := make([]byte, len(dirty))

	b.Run("line", func(b *testing.B) {
		b.SetBytes(LineBytes)
		for i := 0; i < b.N; i++ {
			copy(buf, dirty)
			if _, err := line.DecodeLine(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("line/ref", func(b *testing.B) {
		b.SetBytes(LineBytes)
		for i := 0; i < b.N; i++ {
			copy(buf, dirty)
			if _, err := line.DecodeLineRef(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
