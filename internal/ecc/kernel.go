package ecc

import (
	"sync"

	"repro/internal/codekit"
)

// secdedKernels bundles the word-parallel lookup tables for one SECDED
// layout: a scatter-table encoder built from the scalar encoder's unit
// codewords (so fast-path equivalence is by construction) and a per-byte
// packed syndrome/overall-parity table for decode. Shapes are keyed by
// the payload width — the extended-Hamming layout is a pure function of
// it — and shared by every SECDED of that width.
type secdedKernels struct {
	scatter *codekit.ScatterTable
	ham     *codekit.HammingTable
}

var secdedKernelCache sync.Map // dataBits (int) -> *secdedKernels

// kernels returns the codec's lookup tables, building them on first use.
func (c *SECDED) kernels() *secdedKernels {
	c.kernOnce.Do(func() {
		if v, ok := secdedKernelCache.Load(c.dataBits); ok {
			c.kern = v.(*secdedKernels)
			return
		}
		units := make([][]byte, c.dataBits)
		data := make([]byte, (c.dataBits+7)/8)
		for i := range units {
			setBit(data, i)
			cw := make([]byte, c.CodewordBytes())
			c.encodeScalar(cw, data)
			units[i] = cw
			data[i>>3] = 0
		}
		k := &secdedKernels{
			scatter: codekit.NewScatterTable(units, c.totalBits),
			ham:     codekit.NewHammingTable(c.totalBits),
		}
		v, _ := secdedKernelCache.LoadOrStore(c.dataBits, k)
		c.kern = v.(*secdedKernels)
	})
	return c.kern
}
