package ecc

import (
	"fmt"

	"repro/internal/bch"
	"repro/internal/stats"
)

// LineBytes is the memory line (cache block) size the study uses.
const LineBytes = 64

// LineBits is the payload width of one line in bits.
const LineBits = LineBytes * 8

// LineCodec is a Scheme that can also actually encode/decode whole lines,
// so the ECC behaviour the reliability model assumes is backed by a real
// codec exercised in tests.
type LineCodec interface {
	Scheme
	// EncodeLine encodes a LineBytes payload into a fresh codeword buffer.
	EncodeLine(data []byte) ([]byte, error)
	// DecodeLine corrects the codeword in place, returning corrected bits,
	// or ErrUncorrectable.
	DecodeLine(cw []byte) (int, error)
	// DetectLine reports whether the codeword contains a detectable error.
	DetectLine(cw []byte) bool
	// LineCodewordBytes is the encoded size of one line.
	LineCodewordBytes() int
}

// SECDEDLine protects a 64-byte line with an independent SECDED(72,64)
// code on each of its eight 64-bit words — the DRAM baseline organisation.
type SECDEDLine struct {
	*WordSECDEDScheme
	word *SECDED
}

// NewSECDEDLine builds the 8×(72,64) line codec.
func NewSECDEDLine() *SECDEDLine {
	return &SECDEDLine{
		WordSECDEDScheme: NewWordSECDEDScheme(LineBytes/8, 64),
		word:             MustSECDED(64),
	}
}

// LineCodewordBytes implements LineCodec.
func (l *SECDEDLine) LineCodewordBytes() int {
	return l.Words() * l.word.CodewordBytes()
}

// EncodeLine implements LineCodec.
func (l *SECDEDLine) EncodeLine(data []byte) ([]byte, error) {
	if len(data) != LineBytes {
		return nil, fmt.Errorf("ecc: line payload must be %d bytes, got %d", LineBytes, len(data))
	}
	wb := l.word.CodewordBytes()
	out := make([]byte, 0, l.Words()*wb)
	for w := 0; w < l.Words(); w++ {
		cw, err := l.word.Encode(data[w*8 : w*8+8])
		if err != nil {
			return nil, err
		}
		out = append(out, cw...)
	}
	return out, nil
}

// DecodeLine implements LineCodec: each word is decoded independently; the
// line is uncorrectable if any word is.
func (l *SECDEDLine) DecodeLine(cw []byte) (int, error) {
	wb := l.word.CodewordBytes()
	if len(cw) != l.Words()*wb {
		return 0, fmt.Errorf("ecc: line codeword must be %d bytes, got %d", l.Words()*wb, len(cw))
	}
	total := 0
	for w := 0; w < l.Words(); w++ {
		n, err := l.word.Decode(cw[w*wb : (w+1)*wb])
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// DetectLine implements LineCodec.
func (l *SECDEDLine) DetectLine(cw []byte) bool {
	wb := l.word.CodewordBytes()
	for w := 0; w < l.Words(); w++ {
		if l.word.Detect(cw[w*wb : (w+1)*wb]) {
			return true
		}
	}
	return false
}

// ExtractLine copies the 64-byte payload back out of a line codeword.
func (l *SECDEDLine) ExtractLine(cw []byte) []byte {
	wb := l.word.CodewordBytes()
	out := make([]byte, 0, LineBytes)
	for w := 0; w < l.Words(); w++ {
		out = append(out, l.word.Extract(cw[w*wb:(w+1)*wb])...)
	}
	return out
}

// DecodeLineRef is DecodeLine on the scalar reference codec — the
// baseline for the kernel speedup benchmarks and the differential fuzz
// contract.
func (l *SECDEDLine) DecodeLineRef(cw []byte) (int, error) {
	wb := l.word.CodewordBytes()
	if len(cw) != l.Words()*wb {
		return 0, fmt.Errorf("ecc: line codeword must be %d bytes, got %d", l.Words()*wb, len(cw))
	}
	ref := l.word.Ref()
	total := 0
	for w := 0; w < l.Words(); w++ {
		n, err := ref.Decode(cw[w*wb : (w+1)*wb])
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// BCHLine protects a whole 64-byte line with one BCH-t code over GF(2^10).
type BCHLine struct {
	code *bch.Code
	name string
}

// NewBCHLine builds a line codec correcting up to t errors anywhere in the
// line (the paper's "strong ECC" options are t = 2, 4, 8).
func NewBCHLine(t int) (*BCHLine, error) {
	code, err := bch.ForPayload(LineBits, t)
	if err != nil {
		return nil, err
	}
	return &BCHLine{code: code, name: fmt.Sprintf("BCH-%d", t)}, nil
}

// MustBCHLine is NewBCHLine that panics on error.
func MustBCHLine(t int) *BCHLine {
	l, err := NewBCHLine(t)
	if err != nil {
		panic(err)
	}
	return l
}

// Name implements Scheme.
func (l *BCHLine) Name() string { return l.name }

// DataBits implements Scheme.
func (l *BCHLine) DataBits() int { return LineBits }

// CheckBits implements Scheme.
func (l *BCHLine) CheckBits() int { return l.code.ParityBits() }

// T implements Scheme.
func (l *BCHLine) T() int { return l.code.T() }

// Correctable implements Scheme (placement-independent).
func (l *BCHLine) Correctable(_ *stats.RNG, nerr int) bool {
	return nerr <= l.code.T()
}

// LineCodewordBytes implements LineCodec.
func (l *BCHLine) LineCodewordBytes() int { return l.code.CodewordBytes(LineBits) }

// EncodeLine implements LineCodec.
func (l *BCHLine) EncodeLine(data []byte) ([]byte, error) {
	if len(data) != LineBytes {
		return nil, fmt.Errorf("ecc: line payload must be %d bytes, got %d", LineBytes, len(data))
	}
	return l.code.Encode(data, LineBits)
}

// DecodeLine implements LineCodec.
func (l *BCHLine) DecodeLine(cw []byte) (int, error) {
	n, err := l.code.Decode(cw, LineBits)
	if err != nil {
		return n, ErrUncorrectable
	}
	return n, nil
}

// DetectLine implements LineCodec.
func (l *BCHLine) DetectLine(cw []byte) bool { return l.code.Detect(cw, LineBits) }

// DecodeLineRef is DecodeLine on the scalar reference codec — the
// baseline for the kernel speedup benchmarks and the differential fuzz
// contract.
func (l *BCHLine) DecodeLineRef(cw []byte) (int, error) {
	n, err := l.code.Ref().Decode(cw, LineBits)
	if err != nil {
		return n, ErrUncorrectable
	}
	return n, nil
}

// Code exposes the underlying BCH code (for benchmarks and fuzz
// harnesses that exercise fast and reference paths directly).
func (l *BCHLine) Code() *bch.Code { return l.code }

// ExtractLine copies the 64-byte payload back out of a line codeword.
func (l *BCHLine) ExtractLine(cw []byte) []byte {
	return l.code.ExtractMessage(cw, LineBits)
}

// ByName constructs the named scheme: "SECDED", "BCH-<t>" or "RS-<t>".
func ByName(name string) (Scheme, error) {
	switch name {
	case "SECDED":
		return NewSECDEDLine(), nil
	}
	var t int
	if n, err := fmt.Sscanf(name, "BCH-%d", &t); err == nil && n == 1 {
		return NewBCHLine(t)
	}
	if n, err := fmt.Sscanf(name, "RS-%d", &t); err == nil && n == 1 {
		return NewRSLine(t)
	}
	return nil, fmt.Errorf("ecc: unknown scheme %q", name)
}
