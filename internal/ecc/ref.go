package ecc

import "fmt"

// SECDEDRef is the scalar reference implementation of a SECDED codec:
// bit-at-a-time encode and bit-scan syndrome, preserved as the
// behavioural contract for the lookup-table kernels. Fast and reference
// paths must produce byte-identical outputs on every input — enforced by
// FuzzSECDEDDecodeDifferential — and the `/ref` benchmark variants
// measure this path. Obtain one with SECDED.Ref; it shares the codec's
// immutable layout and is safe for concurrent use.
type SECDEDRef struct{ c *SECDED }

// Ref returns the scalar reference view of the codec.
func (c *SECDED) Ref() *SECDEDRef { return &SECDEDRef{c: c} }

// DataBits returns the payload width in bits.
func (r *SECDEDRef) DataBits() int { return r.c.dataBits }

// CheckBits returns the number of check bits (Hamming parity + overall).
func (r *SECDEDRef) CheckBits() int { return r.c.CheckBits() }

// CodewordBytes returns the codeword buffer size in bytes.
func (r *SECDEDRef) CodewordBytes() int { return r.c.CodewordBytes() }

// Encode returns a fresh codeword for the first DataBits bits of data,
// computed bit by bit.
func (r *SECDEDRef) Encode(data []byte) ([]byte, error) {
	c := r.c
	if len(data)*8 < c.dataBits {
		return nil, fmt.Errorf("ecc: data buffer too short: %d bytes for %d bits", len(data), c.dataBits)
	}
	cw := make([]byte, c.CodewordBytes())
	c.encodeScalar(cw, data)
	return cw, nil
}

// Detect reports whether cw contains a detectable error, via the bit-scan
// syndrome.
func (r *SECDEDRef) Detect(cw []byte) bool {
	synd, overall := r.c.syndromeRef(cw)
	return synd != 0 || overall != 0
}

// Decode corrects a single-bit error in place and returns the number of
// corrected bits (0 or 1), mirroring SECDED.Decode on the scalar path.
func (r *SECDEDRef) Decode(cw []byte) (int, error) {
	c := r.c
	synd, overall := c.syndromeRef(cw)
	switch {
	case synd == 0 && overall == 0:
		return 0, nil
	case overall == 1:
		// Single-bit error. If synd == 0 the overall parity bit itself
		// flipped; otherwise synd names the position.
		if synd == 0 {
			flipBit(cw, c.totalBits-1)
		} else {
			if synd > c.totalBits-1 {
				return 0, ErrUncorrectable // syndrome outside the word
			}
			flipBit(cw, synd-1)
		}
		return 1, nil
	default:
		// synd != 0 with even overall parity: double error.
		return 0, ErrUncorrectable
	}
}

// Extract copies the payload bits out of a codeword into a fresh buffer.
func (r *SECDEDRef) Extract(cw []byte) []byte { return r.c.Extract(cw) }
