package ecc

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSECDEDDecodeDifferential pins the SECDED lookup kernels to the
// scalar reference bit for bit, at both the word and line level:
//
//   - word codec (72,64): Encode, Detect and Decode must agree between
//     SECDED and SECDEDRef on error weights 0..3 (t=1, so the sweep
//     crosses single-correct, double-detect and the triple-flip aliasing
//     regime) and on arbitrary corrupted buffers — same corrected-bit
//     count, same verdict, byte-identical buffers;
//   - line codec (8×(72,64)): DecodeLine vs DecodeLineRef on the same
//     corruption;
//   - the CRC-16 probe: slicing-by-8 Sum vs the serial SumRef.
func FuzzSECDEDDecodeDifferential(f *testing.F) {
	word := MustSECDED(64)
	line := NewSECDEDLine()
	crc := NewCRC16()

	f.Add([]byte{0x00}, byte(0), uint64(1))
	f.Add([]byte{0xff}, byte(1), uint64(2))          // single: corrects
	f.Add([]byte("double-bit"), byte(2), uint64(3))  // double: refuses
	f.Add([]byte("triple-bit"), byte(3), uint64(4))  // t+2: aliasing regime
	f.Add([]byte("edge-low"), byte(1), uint64(0))    // placement edges via seed
	f.Add([]byte{0xa5, 0x5a}, byte(3), uint64(0xbeef))
	f.Fuzz(func(t *testing.T, data []byte, nraw byte, posSeed uint64) {
		payload := fillLine(data)

		// Word-level differential.
		wordData := payload[:8]
		encFast, errF := word.Encode(wordData)
		encRef, errR := word.Ref().Encode(wordData)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("word encode verdicts differ: %v vs %v", errF, errR)
		}
		if !bytes.Equal(encFast, encRef) {
			t.Fatalf("word encode buffers differ\n fast %x\n ref  %x", encFast, encRef)
		}

		nflips := int(nraw) % 4 // 0..3 crosses t=1 and t+2
		rng := fuzzRNG(posSeed)
		cw := append([]byte(nil), encFast...)
		for _, p := range fuzzDistinct(&rng, nflips, word.CodewordBits()) {
			fuzzFlip(cw, p)
		}
		diffSECDEDWord(t, word, cw)

		// Arbitrary buffers (not near any codeword) must agree too — this
		// reaches the out-of-range-syndrome refusal paths.
		raw := make([]byte, word.CodewordBytes())
		for i := range raw {
			raw[i] = byte(rng.next())
		}
		diffSECDEDWord(t, word, raw)

		// Line-level differential on the same flip budget per line.
		lcw, err := line.EncodeLine(payload)
		if err != nil {
			t.Fatalf("EncodeLine: %v", err)
		}
		for _, p := range fuzzDistinct(&rng, nflips, len(lcw)*8) {
			fuzzFlip(lcw, p)
		}
		lFast := append([]byte(nil), lcw...)
		lRef := append([]byte(nil), lcw...)
		nF, decF := line.DecodeLine(lFast)
		nR, decR := line.DecodeLineRef(lRef)
		if (decF == nil) != (decR == nil) || nF != nR {
			t.Fatalf("line decode differs: (%d, %v) vs (%d, %v)", nF, decF, nR, decR)
		}
		if decF == nil && !bytes.Equal(lFast, lRef) {
			t.Fatalf("line corrected buffers differ\n fast %x\n ref  %x", lFast, lRef)
		}

		// CRC probe differential over the corrupted line codeword.
		if sF, sR := crc.Sum(lcw), crc.SumRef(lcw); sF != sR {
			t.Fatalf("CRC sums differ: %#x vs %#x", sF, sR)
		}
		if sF, sR := crc.Sum(payload[:len(payload)-int(nraw%7)]), crc.SumRef(payload[:len(payload)-int(nraw%7)]); sF != sR {
			t.Fatalf("CRC sums differ on odd tail: %#x vs %#x", sF, sR)
		}
	})
}

// diffSECDEDWord checks one buffer through both word-codec paths.
func diffSECDEDWord(t *testing.T, word *SECDED, cw []byte) {
	t.Helper()
	if dF, dR := word.Detect(cw), word.Ref().Detect(cw); dF != dR {
		t.Fatalf("word detect verdicts differ: %v vs %v (cw %x)", dF, dR, cw)
	}
	cwFast := append([]byte(nil), cw...)
	cwRef := append([]byte(nil), cw...)
	nF, decF := word.Decode(cwFast)
	nR, decR := word.Ref().Decode(cwRef)
	if (decF == nil) != (decR == nil) {
		t.Fatalf("word decode verdicts differ: %v vs %v (cw %x)", decF, decR, cw)
	}
	if decF != nil {
		if !errors.Is(decF, ErrUncorrectable) || !errors.Is(decR, ErrUncorrectable) {
			t.Fatalf("unexpected word decode errors: %v vs %v", decF, decR)
		}
		return
	}
	if nF != nR {
		t.Fatalf("word corrected-bit counts differ: %d vs %d", nF, nR)
	}
	if !bytes.Equal(cwFast, cwRef) {
		t.Fatalf("word corrected buffers differ\n fast %x\n ref  %x", cwFast, cwRef)
	}
}
