package ecc

import (
	"bytes"
	"testing"
)

// fuzzRNG is a tiny splitmix64 so flip positions derive deterministically
// from the fuzz input.
type fuzzRNG uint64

func (r *fuzzRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func fuzzFlip(buf []byte, bit int) { buf[bit>>3] ^= 1 << uint(bit&7) }

func fuzzDistinct(r *fuzzRNG, n, total int) []int {
	seen := make(map[int]bool, n)
	pos := make([]int, 0, n)
	for len(pos) < n {
		p := int(r.next() % uint64(total))
		if !seen[p] {
			seen[p] = true
			pos = append(pos, p)
		}
	}
	return pos
}

// fillLine expands arbitrary fuzz bytes into a full 64-byte payload.
func fillLine(data []byte) []byte {
	line := make([]byte, LineBytes)
	copy(line, data)
	if len(data) > 0 {
		// Tile the tail so short inputs still produce varied payloads.
		for i := len(data); i < LineBytes; i++ {
			line[i] = data[i%len(data)] ^ byte(i)
		}
	}
	return line
}

// FuzzBCHLineRoundTrip exercises the whole-line BCH-4 codec the study's
// "strong ECC" configurations rely on: any ≤ t corruption of an encoded
// 64-byte line must decode back to the exact payload with an accurate
// corrected-bit count, and a > t pattern must never be passed off as a
// clean correction of the original line.
func FuzzBCHLineRoundTrip(f *testing.F) {
	codec := MustBCHLine(4)
	totalBits := codec.LineCodewordBytes() * 8
	// The last byte of the codeword may be partially used; flipping a pad
	// bit there would not be a code-visible error, so keep flips inside
	// the exact codeword span.
	usedBits := codec.DataBits() + codec.CheckBits()
	if usedBits < totalBits {
		totalBits = usedBits
	}

	f.Add([]byte{}, byte(0), uint64(3))
	f.Add([]byte{0x01}, byte(1), uint64(9))
	f.Add([]byte("line-fuzz-corpus"), byte(4), uint64(1234)) // at capability
	f.Add([]byte{0xee, 0x11}, byte(5), uint64(99))           // t+1
	f.Add([]byte{0x42}, byte(8), uint64(0xbeef))             // 2t
	f.Fuzz(func(t *testing.T, data []byte, nraw byte, posSeed uint64) {
		line := fillLine(data)
		cw, err := codec.EncodeLine(line)
		if err != nil {
			t.Fatalf("EncodeLine: %v", err)
		}
		orig := append([]byte(nil), cw...)
		if codec.DetectLine(cw) {
			t.Fatal("fresh line codeword reported dirty")
		}

		nflips := int(nraw) % (2*codec.T() + 1) // 0 .. 2t
		rng := fuzzRNG(posSeed)
		for _, p := range fuzzDistinct(&rng, nflips, totalBits) {
			fuzzFlip(cw, p)
		}

		if nflips >= 1 && !codec.DetectLine(cw) {
			t.Fatalf("%d flips (≤ 2t) escaped DetectLine", nflips)
		}

		corrected, err := codec.DecodeLine(cw)
		if nflips <= codec.T() {
			if err != nil {
				t.Fatalf("%d ≤ t flips uncorrectable: %v", nflips, err)
			}
			if corrected != nflips {
				t.Fatalf("corrected %d bits, injected %d", corrected, nflips)
			}
			if !bytes.Equal(cw, orig) {
				t.Fatal("decode did not restore the original codeword")
			}
			if !bytes.Equal(codec.ExtractLine(cw), line) {
				t.Fatal("decoded payload differs from original line")
			}
			return
		}
		if err == nil {
			if corrected > codec.T() {
				t.Fatalf("claimed to correct %d > t bits", corrected)
			}
			if bytes.Equal(cw, orig) {
				t.Fatalf("%d > t flips reported as clean correction of the original", nflips)
			}
		}
	})
}

// FuzzSECDEDLineRoundTrip covers the DRAM-baseline organisation: eight
// independent (72,64) words per line. Any single flip per word corrects
// cleanly; a double flip within one word must be detected and refused,
// never silently "fixed".
func FuzzSECDEDLineRoundTrip(f *testing.F) {
	codec := NewSECDEDLine()
	f.Add([]byte{}, uint64(17), false)
	f.Add([]byte("secded-corpus"), uint64(5), false)
	f.Add([]byte{0x80, 0x01}, uint64(33), true)
	f.Fuzz(func(t *testing.T, data []byte, posSeed uint64, double bool) {
		line := fillLine(data)
		cw, err := codec.EncodeLine(line)
		if err != nil {
			t.Fatalf("EncodeLine: %v", err)
		}
		orig := append([]byte(nil), cw...)

		wordBytes := len(cw) / codec.Words()
		rng := fuzzRNG(posSeed)
		word := int(rng.next() % uint64(codec.Words()))
		wordBits := wordBytes * 8
		nflips := 1
		if double {
			nflips = 2
		}
		for _, p := range fuzzDistinct(&rng, nflips, wordBits) {
			fuzzFlip(cw[word*wordBytes:(word+1)*wordBytes], p)
		}

		if !codec.DetectLine(cw) {
			t.Fatalf("%d-bit corruption escaped DetectLine", nflips)
		}
		corrected, err := codec.DecodeLine(cw)
		if double {
			if err == nil {
				t.Fatal("double-bit word error decoded without complaint")
			}
			return
		}
		if err != nil {
			t.Fatalf("single-bit error uncorrectable: %v", err)
		}
		if corrected != 1 {
			t.Fatalf("corrected %d bits, injected 1", corrected)
		}
		if !bytes.Equal(cw, orig) {
			t.Fatal("decode did not restore the original codeword")
		}
		if !bytes.Equal(codec.ExtractLine(cw), line) {
			t.Fatal("decoded payload differs from original line")
		}
	})
}
