package ecc

import (
	"fmt"

	"repro/internal/rs"
	"repro/internal/stats"
)

// RSLine protects a 64-byte line with a Reed–Solomon code over byte
// symbols, each symbol covering four MLC cells. Its differentiator versus
// BCH: a multi-bit corruption confined to one cell (or one byte) costs a
// single unit of correction budget.
type RSLine struct {
	code *rs.Code
	name string
}

// NewRSLine builds a line codec correcting up to t symbol errors.
func NewRSLine(t int) (*RSLine, error) {
	code, err := rs.New(t)
	if err != nil {
		return nil, err
	}
	if code.K() < LineBytes {
		return nil, fmt.Errorf("ecc: RS-%d cannot hold a %d-byte line", t, LineBytes)
	}
	return &RSLine{code: code, name: fmt.Sprintf("RS-%d", t)}, nil
}

// MustRSLine is NewRSLine that panics on error.
func MustRSLine(t int) *RSLine {
	l, err := NewRSLine(t)
	if err != nil {
		panic(err)
	}
	return l
}

// Name implements Scheme.
func (l *RSLine) Name() string { return l.name }

// DataBits implements Scheme.
func (l *RSLine) DataBits() int { return LineBits }

// CheckBits implements Scheme.
func (l *RSLine) CheckBits() int { return l.code.ParitySymbols() * 8 }

// T implements Scheme: the per-line budget in *symbols*.
func (l *RSLine) T() int { return l.code.T() }

// Symbols returns the total codeword length in symbols.
func (l *RSLine) Symbols() int { return LineBytes + l.code.ParitySymbols() }

// Correctable implements Scheme for uniformly placed *bit* errors: the
// pattern is correctable when the errors touch at most T distinct symbols.
func (l *RSLine) Correctable(r *stats.RNG, nerr int) bool {
	if nerr <= l.code.T() {
		return true // ≤ t bits can touch at most t symbols
	}
	return l.distinctUnits(r, nerr, l.Symbols()*8, 8) <= l.code.T()
}

// CorrectableCellErrors reports whether ncells uniformly placed erroneous
// MLC cells (4 cells per symbol) are correctable.
func (l *RSLine) CorrectableCellErrors(r *stats.RNG, ncells int) bool {
	if ncells <= l.code.T() {
		return true
	}
	return l.distinctUnits(r, ncells, l.Symbols()*4, 4) <= l.code.T()
}

// distinctUnits samples nerr distinct positions among total and counts how
// many distinct size-`per` groups they land in.
func (l *RSLine) distinctUnits(r *stats.RNG, nerr, total, per int) int {
	if nerr >= total {
		return total / per
	}
	hit := make(map[int]bool, nerr)
	groups := make(map[int]bool, nerr)
	for len(hit) < nerr {
		pos := r.Intn(total)
		if hit[pos] {
			continue
		}
		hit[pos] = true
		groups[pos/per] = true
	}
	return len(groups)
}

// LineCodewordBytes implements LineCodec.
func (l *RSLine) LineCodewordBytes() int { return l.Symbols() }

// EncodeLine implements LineCodec.
func (l *RSLine) EncodeLine(data []byte) ([]byte, error) {
	if len(data) != LineBytes {
		return nil, fmt.Errorf("ecc: line payload must be %d bytes, got %d", LineBytes, len(data))
	}
	return l.code.Encode(data)
}

// DecodeLine implements LineCodec.
func (l *RSLine) DecodeLine(cw []byte) (int, error) {
	n, err := l.code.Decode(cw)
	if err != nil {
		return n, ErrUncorrectable
	}
	return n, nil
}

// DetectLine implements LineCodec.
func (l *RSLine) DetectLine(cw []byte) bool { return l.code.Detect(cw) }

// DecodeLineWithFaultMap corrects the codeword using a fault map: the
// symbol positions known to contain stuck cells are treated as erasures,
// which cost half the correction budget of unknown errors (2e + f <= 2t).
// This is how a scrub controller with per-line fault tracking stretches
// an RS code's life as hard errors accumulate.
func (l *RSLine) DecodeLineWithFaultMap(cw []byte, stuckSymbols []int) (int, error) {
	n, err := l.code.DecodeWithErasures(cw, stuckSymbols)
	if err != nil {
		return n, ErrUncorrectable
	}
	return n, nil
}

// ExtractLine copies the 64-byte payload back out of a line codeword.
func (l *RSLine) ExtractLine(cw []byte) []byte {
	out := make([]byte, LineBytes)
	copy(out, cw[l.code.ParitySymbols():])
	return out
}
