package ecc

import (
	"fmt"
	"sync"
)

// SECDED is an extended Hamming code over an arbitrary payload: it corrects
// any single bit error and detects any double bit error in one word. This
// is the codec behind the DRAM-style baseline scrub.
//
// Codeword layout (LSB-first bit packing in the returned byte slice):
// the classical 1-indexed Hamming arrangement, with parity bits at
// power-of-two positions, data bits filling the rest, plus an overall
// parity bit appended at the end.
//
// Encode and Decode run on per-byte lookup kernels (internal/codekit);
// the original bit-at-a-time implementation is preserved behind Ref as
// the byte-identical reference codec.
type SECDED struct {
	dataBits  int
	hamBits   int // Hamming parity bits (excluding overall parity)
	totalBits int // dataBits + hamBits + 1
	// dataPos[i] is the 1-indexed Hamming position of data bit i.
	dataPos []int
	// posKind[p] for p in 1..dataBits+hamBits: -1 parity, else data index.
	posKind []int

	kernOnce sync.Once
	kern     *secdedKernels
}

// NewSECDED builds a SECDED codec for the given payload width in bits.
func NewSECDED(dataBits int) (*SECDED, error) {
	if dataBits < 1 {
		return nil, fmt.Errorf("ecc: SECDED payload must be >= 1 bit, got %d", dataBits)
	}
	r := hammingCheckBits(dataBits)
	n := dataBits + r // 1-indexed positions 1..n
	c := &SECDED{
		dataBits:  dataBits,
		hamBits:   r,
		totalBits: n + 1,
		dataPos:   make([]int, dataBits),
		posKind:   make([]int, n+1),
	}
	di := 0
	for p := 1; p <= n; p++ {
		if p&(p-1) == 0 { // power of two: parity position
			c.posKind[p] = -1
			continue
		}
		c.posKind[p] = di
		c.dataPos[di] = p
		di++
	}
	if di != dataBits {
		return nil, fmt.Errorf("ecc: internal SECDED layout error")
	}
	return c, nil
}

// MustSECDED is NewSECDED that panics on error.
func MustSECDED(dataBits int) *SECDED {
	c, err := NewSECDED(dataBits)
	if err != nil {
		panic(err)
	}
	return c
}

// DataBits returns the payload width in bits.
func (c *SECDED) DataBits() int { return c.dataBits }

// CheckBits returns the number of check bits (Hamming parity + overall).
func (c *SECDED) CheckBits() int { return c.hamBits + 1 }

// CodewordBits returns the total codeword width in bits.
func (c *SECDED) CodewordBits() int { return c.totalBits }

// CodewordBytes returns the codeword buffer size in bytes.
func (c *SECDED) CodewordBytes() int { return (c.totalBits + 7) / 8 }

// Encode returns a fresh codeword for the first DataBits bits of data,
// built with one scatter-table XOR per payload byte (data placement,
// Hamming parity and overall parity in the same lookup).
func (c *SECDED) Encode(data []byte) ([]byte, error) {
	if len(data)*8 < c.dataBits {
		return nil, fmt.Errorf("ecc: data buffer too short: %d bytes for %d bits", len(data), c.dataBits)
	}
	cw := make([]byte, c.CodewordBytes())
	var acc [4]uint64
	c.kernels().scatter.Encode(cw, data, acc[:])
	return cw, nil
}

// encodeScalar writes the codeword of data into cw bit by bit — the
// original reference encoder, kept as the behavioural contract and as
// the generator of the scatter table's unit codewords. cw must be zeroed.
func (c *SECDED) encodeScalar(cw []byte, data []byte) {
	n := c.totalBits - 1
	// Place data bits. Codeword bit index = Hamming position - 1.
	for i := 0; i < c.dataBits; i++ {
		if getBit(data, i) == 1 {
			setBit(cw, c.dataPos[i]-1)
		}
	}
	// Hamming parity bits: parity bit at position 2^j covers all positions
	// with bit j set.
	for j := 0; (1 << uint(j)) <= n; j++ {
		pp := 1 << uint(j)
		parity := byte(0)
		for p := 1; p <= n; p++ {
			if p != pp && p&pp != 0 && getBit(cw, p-1) == 1 {
				parity ^= 1
			}
		}
		if parity == 1 {
			setBit(cw, pp-1)
		}
	}
	// Overall parity over everything so far, stored at bit index n.
	overall := byte(0)
	for p := 1; p <= n; p++ {
		overall ^= getBit(cw, p-1)
	}
	if overall == 1 {
		setBit(cw, n)
	}
}

// syndrome computes the Hamming syndrome and the overall parity of cw,
// one codeword byte per table lookup.
func (c *SECDED) syndrome(cw []byte) (synd int, overall byte) {
	return c.kernels().ham.Syndrome(cw)
}

// syndromeRef is the original bit-scan syndrome, preserved for the
// reference codec.
func (c *SECDED) syndromeRef(cw []byte) (synd int, overall byte) {
	n := c.totalBits - 1
	for p := 1; p <= n; p++ {
		if getBit(cw, p-1) == 1 {
			synd ^= p
			overall ^= 1
		}
	}
	overall ^= getBit(cw, n)
	return synd, overall
}

// Detect reports whether cw contains a detectable error (1 or 2 bit flips;
// larger even patterns may alias, as in real hardware).
func (c *SECDED) Detect(cw []byte) bool {
	synd, overall := c.syndrome(cw)
	return synd != 0 || overall != 0
}

// Decode corrects a single-bit error in place and returns the number of
// corrected bits (0 or 1). A detected double error returns
// ErrUncorrectable.
func (c *SECDED) Decode(cw []byte) (int, error) {
	synd, overall := c.syndrome(cw)
	switch {
	case synd == 0 && overall == 0:
		return 0, nil
	case overall == 1:
		// Single-bit error. If synd == 0 the overall parity bit itself
		// flipped; otherwise synd names the position.
		if synd == 0 {
			flipBit(cw, c.totalBits-1)
		} else {
			if synd > c.totalBits-1 {
				return 0, ErrUncorrectable // syndrome outside the word
			}
			flipBit(cw, synd-1)
		}
		return 1, nil
	default:
		// synd != 0 with even overall parity: double error.
		return 0, ErrUncorrectable
	}
}

// Extract copies the payload bits out of a codeword into a fresh buffer.
func (c *SECDED) Extract(cw []byte) []byte {
	out := make([]byte, (c.dataBits+7)/8)
	for i := 0; i < c.dataBits; i++ {
		if getBit(cw, c.dataPos[i]-1) == 1 {
			setBit(out, i)
		}
	}
	return out
}

func getBit(buf []byte, i int) byte { return (buf[i>>3] >> uint(i&7)) & 1 }
func setBit(buf []byte, i int)      { buf[i>>3] |= 1 << uint(i&7) }
func flipBit(buf []byte, i int)     { buf[i>>3] ^= 1 << uint(i&7) }
