package ecc

import "repro/internal/codekit"

// CRC16 is the lightweight error detector used for cheap scrub reads: a
// CRC-16/CCITT-FALSE checksum stored alongside each line. Detection is a
// checksum recompute-and-compare — far cheaper than a BCH syndrome/decode
// pipeline — at the cost of providing no correction and a 2^-16 aliasing
// probability for dense error patterns.
//
// Sum runs on the slicing-by-8 kernel (eight input bytes per iteration);
// SumRef is the original one-byte-per-step table loop, preserved as the
// bit-identical reference.
type CRC16 struct {
	table [256]uint16
	slice *codekit.CRC16Slicing
}

// CRCPoly is the CCITT polynomial x^16 + x^12 + x^5 + 1.
const CRCPoly = 0x1021

// NewCRC16 builds the detector (table-driven, MSB-first).
func NewCRC16() *CRC16 {
	c := &CRC16{slice: codekit.NewCRC16Slicing(CRCPoly)}
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ CRCPoly
			} else {
				crc <<= 1
			}
		}
		c.table[i] = crc
	}
	return c
}

// Sum returns the CRC-16/CCITT-FALSE checksum of data (init 0xFFFF).
func (c *CRC16) Sum(data []byte) uint16 {
	return c.slice.Update(0xFFFF, data)
}

// SumRef returns the same checksum via the serial one-byte-per-step
// table loop — the reference for the slicing kernel.
func (c *CRC16) SumRef(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ c.table[byte(crc>>8)^b]
	}
	return crc
}

// CheckBits returns the detector's storage overhead in bits.
func (c *CRC16) CheckBits() int { return 16 }

// Detect reports whether data fails to match the stored checksum.
func (c *CRC16) Detect(data []byte, stored uint16) bool {
	return c.Sum(data) != stored
}
