package ecc_test

import (
	"fmt"

	"repro/internal/ecc"
)

// Demonstrates the basic line-codec round trip: encode a 64-byte line,
// corrupt a few bits, decode, and recover the payload.
func ExampleBCHLine() {
	codec := ecc.MustBCHLine(4)
	data := make([]byte, ecc.LineBytes)
	copy(data, "the line payload")

	cw, err := codec.EncodeLine(data)
	if err != nil {
		panic(err)
	}
	// Three bit errors anywhere in the codeword.
	cw[3] ^= 0x01
	cw[40] ^= 0x10
	cw[66] ^= 0x02

	n, err := codec.DecodeLine(cw)
	if err != nil {
		panic(err)
	}
	fmt.Println("corrected bits:", n)
	fmt.Printf("payload intact: %t\n", string(codec.ExtractLine(cw)[:16]) == "the line payload")
	// Output:
	// corrected bits: 3
	// payload intact: true
}

// Demonstrates fault-map-assisted decoding: stuck symbols at known
// positions are erasures and cost half the correction budget.
func ExampleRSLine_DecodeLineWithFaultMap() {
	codec := ecc.MustRSLine(4) // corrects 4 unknown symbol errors
	data := make([]byte, ecc.LineBytes)
	copy(data, "fault mapped")

	cw, _ := codec.EncodeLine(data)
	// Eight stuck symbols — double the plain budget.
	faultMap := []int{2, 9, 17, 23, 31, 44, 58, 63}
	for _, sym := range faultMap {
		cw[sym] ^= 0xFF
	}

	if _, err := codec.DecodeLine(append([]byte(nil), cw...)); err != nil {
		fmt.Println("plain decode:", err)
	}
	n, err := codec.DecodeLineWithFaultMap(cw, faultMap)
	if err != nil {
		panic(err)
	}
	fmt.Println("fault-map decode corrected symbols:", n)
	// Output:
	// plain decode: ecc: uncorrectable error pattern
	// fault-map decode corrected symbols: 8
}
