package ecc

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func randomLine(r *stats.RNG) []byte {
	data := make([]byte, LineBytes)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	return data
}

func flipDistinctBits(r *stats.RNG, buf []byte, n int) {
	seen := map[int]bool{}
	for len(seen) < n {
		pos := r.Intn(len(buf) * 8)
		if seen[pos] {
			continue
		}
		seen[pos] = true
		flipBit(buf, pos)
	}
}

func TestSECDEDLineGeometry(t *testing.T) {
	l := NewSECDEDLine()
	if l.DataBits() != 512 {
		t.Errorf("data bits = %d", l.DataBits())
	}
	if l.CheckBits() != 64 { // 8 words × 8 check bits
		t.Errorf("check bits = %d, want 64", l.CheckBits())
	}
	if l.LineCodewordBytes() != 72 { // 8 × 9 bytes
		t.Errorf("codeword bytes = %d, want 72", l.LineCodewordBytes())
	}
	if l.Name() != "SECDED" {
		t.Errorf("name = %q", l.Name())
	}
}

func TestSECDEDLineRoundTripAndSingleErrorPerWord(t *testing.T) {
	l := NewSECDEDLine()
	r := stats.NewRNG(11)
	data := randomLine(r)
	cw, err := l.EncodeLine(data)
	if err != nil {
		t.Fatal(err)
	}
	if l.DetectLine(cw) {
		t.Fatal("clean line flagged")
	}
	// One error in each word: all 8 must be corrected.
	for w := 0; w < 8; w++ {
		flipBit(cw, w*72+int(r.Uint64n(72)))
	}
	if !l.DetectLine(cw) {
		t.Fatal("errors not detected")
	}
	n, err := l.DecodeLine(cw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != 8 {
		t.Fatalf("corrected %d, want 8", n)
	}
	back := l.ExtractLine(cw)
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("payload mismatch at byte %d", i)
		}
	}
}

func TestSECDEDLineTwoErrorsSameWordUncorrectable(t *testing.T) {
	l := NewSECDEDLine()
	r := stats.NewRNG(12)
	data := randomLine(r)
	cw, _ := l.EncodeLine(data)
	flipBit(cw, 3*72+5)
	flipBit(cw, 3*72+40)
	if _, err := l.DecodeLine(cw); err != ErrUncorrectable {
		t.Fatalf("expected uncorrectable, got %v", err)
	}
}

func TestSECDEDLineWrongSizeRejected(t *testing.T) {
	l := NewSECDEDLine()
	if _, err := l.EncodeLine(make([]byte, 32)); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := l.DecodeLine(make([]byte, 10)); err == nil {
		t.Error("short codeword accepted")
	}
}

func TestBCHLineGeometryAndCorrection(t *testing.T) {
	for _, tt := range []int{1, 2, 4, 8} {
		l := MustBCHLine(tt)
		if l.DataBits() != 512 || l.T() != tt {
			t.Fatalf("BCH-%d geometry wrong", tt)
		}
		if l.CheckBits() != 10*tt {
			t.Errorf("BCH-%d check bits = %d, want %d", tt, l.CheckBits(), 10*tt)
		}
		r := stats.NewRNG(uint64(tt))
		data := randomLine(r)
		cw, err := l.EncodeLine(data)
		if err != nil {
			t.Fatal(err)
		}
		flipDistinctBits(r, cw, tt)
		n, err := l.DecodeLine(cw)
		if err != nil {
			t.Fatalf("BCH-%d failed on %d errors: %v", tt, tt, err)
		}
		if n != tt {
			t.Fatalf("BCH-%d corrected %d", tt, n)
		}
		back := l.ExtractLine(cw)
		for i := range data {
			if back[i] != data[i] {
				t.Fatalf("BCH-%d payload mismatch", tt)
			}
		}
	}
}

func TestBCHLineBeyondT(t *testing.T) {
	l := MustBCHLine(2)
	r := stats.NewRNG(21)
	fails := 0
	for trial := 0; trial < 50; trial++ {
		data := randomLine(r)
		cw, _ := l.EncodeLine(data)
		flipDistinctBits(r, cw, 5)
		if _, err := l.DecodeLine(cw); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Error("5 errors never flagged uncorrectable on BCH-2")
	}
}

func TestSchemeCorrectableContracts(t *testing.T) {
	r := stats.NewRNG(31)
	bchS := NewBCHScheme("BCH-4", 512, 40, 4)
	for n := 0; n <= 4; n++ {
		if !bchS.Correctable(r, n) {
			t.Errorf("BCH-4 should correct %d", n)
		}
	}
	if bchS.Correctable(r, 5) {
		t.Error("BCH-4 should not correct 5")
	}

	sec := NewWordSECDEDScheme(8, 64)
	if !sec.Correctable(r, 0) || !sec.Correctable(r, 1) {
		t.Error("SECDED must always correct 0 or 1 errors")
	}
	if sec.Correctable(r, 9) {
		t.Error("9 errors in 8 words cannot be correctable (pigeonhole)")
	}
}

func TestWordSECDEDCorrectableProbabilityMatchesAnalytic(t *testing.T) {
	// For 2 errors over w words of b bits each (total N = w·b), the
	// probability both land in the same word is (b-1)/(N-1).
	sec := NewWordSECDEDScheme(8, 64)
	r := stats.NewRNG(41)
	const trials = 200000
	fail := 0
	for i := 0; i < trials; i++ {
		if !sec.Correctable(r, 2) {
			fail++
		}
	}
	got := float64(fail) / trials
	want := 71.0 / 575.0 // b=72, N=576
	if diff := got - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("P(2 errors same word) = %.4f, want ~%.4f", got, want)
	}
}

func TestUncorrectableProbHelper(t *testing.T) {
	r := stats.NewRNG(51)
	bchS := NewBCHScheme("BCH-2", 512, 20, 2)
	if p := UncorrectableProb(bchS, r, 2, 1); p != 0 {
		t.Errorf("P(uncorrectable|2 errs, t=2) = %v, want 0", p)
	}
	if p := UncorrectableProb(bchS, r, 3, 1); p != 1 {
		t.Errorf("P(uncorrectable|3 errs, t=2) = %v, want 1", p)
	}
	if p := UncorrectableProb(bchS, r, 3, 0); p != 1 {
		t.Errorf("trials<1 should clamp to 1 trial")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"SECDED", "BCH-1", "BCH-2", "BCH-4", "BCH-8"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("LDPC-4"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestBCHLineDecodeIsInverseOfErrorInjection(t *testing.T) {
	l := MustBCHLine(4)
	prop := func(seed uint64, nerrRaw uint8) bool {
		r := stats.NewRNG(seed)
		nerr := int(nerrRaw % 5) // 0..4, all within t
		data := randomLine(r)
		cw, err := l.EncodeLine(data)
		if err != nil {
			return false
		}
		flipDistinctBits(r, cw, nerr)
		n, err := l.DecodeLine(cw)
		if err != nil || n != nerr {
			return false
		}
		back := l.ExtractLine(cw)
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
