// Package ecc defines the error-correction abstractions used by the scrub
// simulator, plus concrete codecs: an extended-Hamming SECDED code (the
// DRAM baseline), line-level BCH schemes (the paper's strong ECC), and a
// CRC-based lightweight error *detector* (the paper's cheap scrub-read
// check that avoids a full decode).
package ecc

import (
	"errors"

	"repro/internal/stats"
)

// ErrUncorrectable reports an error pattern beyond a codec's correction
// capability.
var ErrUncorrectable = errors.New("ecc: uncorrectable error pattern")

// Scheme describes the protection applied to one memory line, at the level
// of detail the reliability simulator needs: geometry, correction strength,
// and whether a given number of randomly placed bit errors is correctable.
//
// Correctable may consult the RNG because some schemes are
// placement-dependent: per-word SECDED corrects 8 errors that land in 8
// different words but not 2 errors in the same word.
type Scheme interface {
	// Name identifies the scheme in reports, e.g. "SECDED" or "BCH-4".
	Name() string
	// DataBits is the protected payload size in bits.
	DataBits() int
	// CheckBits is the total ECC storage overhead in bits.
	CheckBits() int
	// T is the per-line correction capability in the best case.
	T() int
	// Correctable reports whether nerr uniformly-placed distinct bit errors
	// in the line are correctable.
	Correctable(r *stats.RNG, nerr int) bool
}

// UncorrectableProb estimates, by Monte Carlo over placements, the
// probability that nerr random bit errors defeat the scheme. For
// placement-independent schemes this is exactly 0 or 1 and a single trial
// suffices; callers can pass trials=1 in that case.
func UncorrectableProb(s Scheme, r *stats.RNG, nerr, trials int) float64 {
	if trials < 1 {
		trials = 1
	}
	fail := 0
	for i := 0; i < trials; i++ {
		if !s.Correctable(r, nerr) {
			fail++
		}
	}
	return float64(fail) / float64(trials)
}

// BCHScheme is a placement-independent line scheme that corrects up to t
// errors anywhere in the line, with geometry taken from a real BCH code.
type BCHScheme struct {
	name      string
	dataBits  int
	checkBits int
	t         int
}

// NewBCHScheme describes a BCH-t code protecting dataBits with checkBits
// of storage. Geometry is supplied by the caller (see NewBCHLine for a
// scheme backed by a real codec).
func NewBCHScheme(name string, dataBits, checkBits, t int) *BCHScheme {
	return &BCHScheme{name: name, dataBits: dataBits, checkBits: checkBits, t: t}
}

// Name implements Scheme.
func (s *BCHScheme) Name() string { return s.name }

// DataBits implements Scheme.
func (s *BCHScheme) DataBits() int { return s.dataBits }

// CheckBits implements Scheme.
func (s *BCHScheme) CheckBits() int { return s.checkBits }

// T implements Scheme.
func (s *BCHScheme) T() int { return s.t }

// Correctable implements Scheme: a t-error-correcting code over the whole
// line corrects any pattern of up to t errors, independent of placement.
func (s *BCHScheme) Correctable(_ *stats.RNG, nerr int) bool {
	return nerr <= s.t
}

// WordSECDEDScheme models the DRAM baseline: an independent SECDED code on
// each machine word of the line (e.g. 8 × (72,64) for a 64-byte line).
// It corrects one error per word, so correctability depends on where the
// errors land.
type WordSECDEDScheme struct {
	words       int
	bitsPerWord int // data + check bits per word
	dataPerWord int
}

// NewWordSECDEDScheme builds a per-word SECDED scheme with the given number
// of words and data bits per word; check bits per word follow the extended
// Hamming construction.
func NewWordSECDEDScheme(words, dataPerWord int) *WordSECDEDScheme {
	check := hammingCheckBits(dataPerWord) + 1 // +1 overall parity
	return &WordSECDEDScheme{
		words:       words,
		bitsPerWord: dataPerWord + check,
		dataPerWord: dataPerWord,
	}
}

// Name implements Scheme.
func (s *WordSECDEDScheme) Name() string { return "SECDED" }

// DataBits implements Scheme.
func (s *WordSECDEDScheme) DataBits() int { return s.words * s.dataPerWord }

// CheckBits implements Scheme.
func (s *WordSECDEDScheme) CheckBits() int {
	return s.words * (s.bitsPerWord - s.dataPerWord)
}

// T implements Scheme: at best one error per word is correctable.
func (s *WordSECDEDScheme) T() int { return s.words }

// Words returns the number of independently protected words.
func (s *WordSECDEDScheme) Words() int { return s.words }

// Correctable implements Scheme by sampling a placement of nerr distinct
// bit errors over the line and checking that no word receives two.
//
// This runs in the simulator's inner loop, so the common geometry
// (words <= 64) is allocation-free: sampled positions live in a fixed
// stack array (at most one distinct position per word before the word
// occupancy check fails) and per-word hits in a 64-bit mask. The draw
// sequence is identical to the original map-based sampler — duplicates
// redraw, a second hit in one word fails immediately — so simulation
// results are bit-for-bit unchanged.
func (s *WordSECDEDScheme) Correctable(r *stats.RNG, nerr int) bool {
	if nerr <= 1 {
		return true
	}
	if nerr > s.words {
		return false // pigeonhole: some word must take two
	}
	total := s.words * s.bitsPerWord
	if s.words <= 64 {
		var seen [64]int32
		nseen := 0
		var wordMask uint64
		for placed := 0; placed < nerr; {
			pos := r.Intn(total)
			dup := false
			for i := 0; i < nseen; i++ {
				if seen[i] == int32(pos) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[nseen] = int32(pos)
			nseen++
			w := uint(pos / s.bitsPerWord)
			if wordMask>>w&1 != 0 {
				return false
			}
			wordMask |= 1 << w
			placed++
		}
		return true
	}
	return s.correctableMap(r, nerr)
}

// correctableMap is the original map-based sampler, kept for wide
// geometries (words > 64) and as the draw-sequence reference the
// allocation-free path is tested against.
func (s *WordSECDEDScheme) correctableMap(r *stats.RNG, nerr int) bool {
	if nerr <= 1 {
		return true
	}
	if nerr > s.words {
		return false
	}
	total := s.words * s.bitsPerWord
	hits := make(map[int]bool, nerr)
	perWord := make([]int, s.words)
	for placed := 0; placed < nerr; {
		pos := r.Intn(total)
		if hits[pos] {
			continue
		}
		hits[pos] = true
		w := pos / s.bitsPerWord
		perWord[w]++
		if perWord[w] > 1 {
			return false
		}
		placed++
	}
	return true
}

// hammingCheckBits returns the number of Hamming parity bits r needed to
// cover dataBits: the smallest r with 2^r >= dataBits + r + 1.
func hammingCheckBits(dataBits int) int {
	r := 1
	for (1 << uint(r)) < dataBits+r+1 {
		r++
	}
	return r
}
