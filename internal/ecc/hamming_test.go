package ecc

import (
	"testing"

	"repro/internal/stats"
)

func TestSECDEDGeometry(t *testing.T) {
	cases := []struct {
		data, check int
	}{
		{4, 4},   // Hamming(7,4) + parity = (8,4)
		{8, 5},   // (13,8)
		{11, 5},  // (16,11)
		{26, 6},  // (32,26)
		{57, 7},  // (64,57)
		{64, 8},  // (72,64) — the DRAM code
		{120, 8}, // (128,120)
	}
	for _, c := range cases {
		s := MustSECDED(c.data)
		if s.CheckBits() != c.check {
			t.Errorf("SECDED(%d): check bits = %d, want %d", c.data, s.CheckBits(), c.check)
		}
		if s.CodewordBits() != c.data+c.check {
			t.Errorf("SECDED(%d): codeword bits = %d", c.data, s.CodewordBits())
		}
	}
}

func TestSECDEDRejectsBadPayload(t *testing.T) {
	if _, err := NewSECDED(0); err == nil {
		t.Error("zero payload accepted")
	}
	s := MustSECDED(64)
	if _, err := s.Encode([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestSECDEDCleanRoundTrip(t *testing.T) {
	s := MustSECDED(64)
	r := stats.NewRNG(1)
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, 8)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		cw, err := s.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if s.Detect(cw) {
			t.Fatal("clean codeword flagged dirty")
		}
		n, err := s.Decode(cw)
		if n != 0 || err != nil {
			t.Fatalf("clean decode: n=%d err=%v", n, err)
		}
		back := s.Extract(cw)
		for i := range data {
			if back[i] != data[i] {
				t.Fatalf("extract mismatch at byte %d", i)
			}
		}
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	s := MustSECDED(64)
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67}
	clean, err := s.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < s.CodewordBits(); pos++ {
		cw := append([]byte(nil), clean...)
		flipBit(cw, pos)
		if !s.Detect(cw) {
			t.Fatalf("single error at %d not detected", pos)
		}
		n, err := s.Decode(cw)
		if err != nil {
			t.Fatalf("single error at %d not corrected: %v", pos, err)
		}
		if n != 1 {
			t.Fatalf("corrected %d bits at pos %d, want 1", n, pos)
		}
		back := s.Extract(cw)
		for i := range data {
			if back[i] != data[i] {
				t.Fatalf("payload corrupted after correcting pos %d", pos)
			}
		}
	}
}

func TestSECDEDDetectsEveryDoubleBit(t *testing.T) {
	s := MustSECDED(16) // small enough for exhaustive pairs
	data := []byte{0xA5, 0x3C}
	clean, err := s.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	nb := s.CodewordBits()
	for i := 0; i < nb; i++ {
		for j := i + 1; j < nb; j++ {
			cw := append([]byte(nil), clean...)
			flipBit(cw, i)
			flipBit(cw, j)
			if !s.Detect(cw) {
				t.Fatalf("double error (%d,%d) not detected", i, j)
			}
			if _, err := s.Decode(cw); err != ErrUncorrectable {
				t.Fatalf("double error (%d,%d) not flagged uncorrectable: %v", i, j, err)
			}
		}
	}
}

func TestSECDEDAllZeroAndAllOnePayloads(t *testing.T) {
	s := MustSECDED(64)
	for _, fill := range []byte{0x00, 0xFF} {
		data := make([]byte, 8)
		for i := range data {
			data[i] = fill
		}
		cw, err := s.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if s.Detect(cw) {
			t.Errorf("fill %02x: clean word flagged", fill)
		}
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	c := NewCRC16()
	if got := c.Sum([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC = %#04x, want 0x29B1", got)
	}
	if c.CheckBits() != 16 {
		t.Error("CRC16 should report 16 check bits")
	}
}

func TestCRC16DetectsSingleAndDoubleFlips(t *testing.T) {
	c := NewCRC16()
	r := stats.NewRNG(2)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	stored := c.Sum(data)
	if c.Detect(data, stored) {
		t.Fatal("clean data flagged")
	}
	for trial := 0; trial < 500; trial++ {
		cp := append([]byte(nil), data...)
		nflips := 1 + r.Intn(4)
		for f := 0; f < nflips; f++ {
			flipBit(cp, r.Intn(len(cp)*8))
		}
		// CRC-16 detects all burst errors <= 16 bits and essentially all
		// sparse low-weight patterns; random <=4-bit flips never alias.
		if !c.Detect(cp, stored) {
			same := true
			for i := range cp {
				if cp[i] != data[i] {
					same = false
					break
				}
			}
			if !same {
				t.Fatalf("trial %d: %d-bit error not detected", trial, nflips)
			}
		}
	}
}
