//go:build !race

// The race runtime instruments allocations, so the guard only runs in
// normal test builds.

package ecc

import (
	"testing"

	"repro/internal/stats"
)

// TestCorrectableAllocGuard pins WordSECDEDScheme.Correctable at zero
// allocations for the standard 8×(72,64) line geometry. The sampler runs
// in the simulator's inner loop; it used to build a map[int]bool and a
// []int per call, and this fence keeps that from coming back.
func TestCorrectableAllocGuard(t *testing.T) {
	s := NewWordSECDEDScheme(LineBytes/8, 64)
	r := stats.NewRNG(1)
	for nerr := 2; nerr <= s.Words(); nerr++ {
		nerr := nerr
		avg := testing.AllocsPerRun(100, func() {
			s.Correctable(r, nerr)
		})
		if avg != 0 {
			t.Errorf("Correctable(nerr=%d) allocates %.1f objects/call, want 0", nerr, avg)
		}
	}
}

// TestCorrectableDrawSequence pins the sampler's RNG consumption: the
// allocation-free path must draw exactly the same stream as the original
// map-based sampler (preserved for wide geometries), so simulation
// results are bit-for-bit reproducible across the refactor.
func TestCorrectableDrawSequence(t *testing.T) {
	fast := NewWordSECDEDScheme(8, 64)
	for seed := uint64(1); seed <= 50; seed++ {
		r1 := stats.NewRNG(seed)
		r2 := stats.NewRNG(seed)
		for nerr := 0; nerr <= 10; nerr++ {
			got := fast.Correctable(r1, nerr)
			want := fast.correctableMap(r2, nerr)
			if got != want {
				t.Fatalf("seed %d nerr %d: verdict %v, map path %v", seed, nerr, got, want)
			}
			if a, b := r1.Intn(1<<30), r2.Intn(1<<30); a != b {
				t.Fatalf("seed %d nerr %d: RNG streams diverged (%d vs %d)", seed, nerr, a, b)
			}
		}
	}
}
