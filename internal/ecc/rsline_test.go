package ecc

import (
	"testing"

	"repro/internal/stats"
)

func TestRSLineGeometry(t *testing.T) {
	l := MustRSLine(4)
	if l.DataBits() != 512 {
		t.Errorf("data bits = %d", l.DataBits())
	}
	if l.CheckBits() != 64 { // 8 parity symbols × 8 bits
		t.Errorf("check bits = %d, want 64", l.CheckBits())
	}
	if l.Symbols() != 72 || l.LineCodewordBytes() != 72 {
		t.Errorf("symbols = %d", l.Symbols())
	}
	if l.Name() != "RS-4" || l.T() != 4 {
		t.Errorf("identity wrong: %s t=%d", l.Name(), l.T())
	}
}

func TestRSLineRejectsBadParams(t *testing.T) {
	if _, err := NewRSLine(0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NewRSLine(96); err == nil {
		t.Error("t leaving <64 data symbols accepted")
	}
	l := MustRSLine(2)
	if _, err := l.EncodeLine(make([]byte, 32)); err == nil {
		t.Error("short payload accepted")
	}
}

func TestRSLineRoundTripWithCellShapedErrors(t *testing.T) {
	// The MLC killer pattern: a cell misread corrupting TWO adjacent bits
	// in the same symbol. RS-t corrects t such cells; BCH-t would need 2t
	// of its budget.
	l := MustRSLine(4)
	r := stats.NewRNG(1)
	for trial := 0; trial < 30; trial++ {
		data := randomLine(r)
		cw, err := l.EncodeLine(data)
		if err != nil {
			t.Fatal(err)
		}
		// Four cell errors, each flipping 2 bits within one symbol.
		seen := map[int]bool{}
		for len(seen) < 4 {
			sym := r.Intn(l.Symbols())
			if seen[sym] {
				continue
			}
			seen[sym] = true
			cell := r.Intn(4)
			cw[sym] ^= 0b11 << uint(2*cell)
		}
		n, err := l.DecodeLine(cw)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != 4 {
			t.Fatalf("corrected %d symbols, want 4", n)
		}
		back := l.ExtractLine(cw)
		for i := range data {
			if back[i] != data[i] {
				t.Fatal("payload mismatch")
			}
		}
	}
}

func TestRSLineCorrectableBitsVsSymbols(t *testing.T) {
	l := MustRSLine(4)
	r := stats.NewRNG(2)
	// Up to t bit errors: always correctable (≤ t symbols touched).
	for n := 0; n <= 4; n++ {
		if !l.Correctable(r, n) {
			t.Errorf("%d bit errors should always be correctable", n)
		}
	}
	// Far more bit errors than symbols of budget: essentially never.
	fails := 0
	for i := 0; i < 200; i++ {
		if !l.Correctable(r, 20) {
			fails++
		}
	}
	if fails < 190 {
		t.Errorf("20 random bit errors correctable too often: %d/200 failures", fails)
	}
	// 5..8 bit errors sometimes collide into ≤4 symbols: expect some successes.
	wins := 0
	for i := 0; i < 2000; i++ {
		if l.Correctable(r, 5) {
			wins++
		}
	}
	if wins == 0 {
		t.Error("5 bit errors never collided into 4 symbols in 2000 trials")
	}
}

func TestRSLineCorrectableCellErrors(t *testing.T) {
	l := MustRSLine(4)
	r := stats.NewRNG(3)
	for n := 0; n <= 4; n++ {
		if !l.CorrectableCellErrors(r, n) {
			t.Errorf("%d cell errors should always be correctable", n)
		}
	}
	// 5 cell errors over 288 cells: correctable only when two cells share
	// a symbol — P ≈ C(5,2)·(3/287) ≈ 10%.
	wins := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if l.CorrectableCellErrors(r, 5) {
			wins++
		}
	}
	frac := float64(wins) / trials
	if frac < 0.05 || frac > 0.18 {
		t.Errorf("P(5 cells correctable) = %.3f, want ~0.10", frac)
	}
}

func TestRSLineByName(t *testing.T) {
	s, err := ByName("RS-8")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "RS-8" || s.T() != 8 {
		t.Errorf("ByName RS-8 wrong: %s", s.Name())
	}
}

func TestRSLineFaultMapDoublesStuckBudget(t *testing.T) {
	// RS-4 corrects 4 unknown symbol errors — but 8 stuck symbols when
	// their positions are in the fault map.
	l := MustRSLine(4)
	r := stats.NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		data := randomLine(r)
		cw, err := l.EncodeLine(data)
		if err != nil {
			t.Fatal(err)
		}
		stuck := map[int]bool{}
		var faultMap []int
		for len(faultMap) < 8 {
			sym := r.Intn(l.Symbols())
			if stuck[sym] {
				continue
			}
			stuck[sym] = true
			faultMap = append(faultMap, sym)
			cw[sym] ^= byte(1 + r.Intn(255))
		}
		// Plain decode must fail on 8 > t errors…
		plain := append([]byte(nil), cw...)
		if _, err := l.DecodeLine(plain); err == nil {
			t.Fatal("plain decode survived 8 symbol errors on RS-4")
		}
		// …while the fault map recovers everything.
		n, err := l.DecodeLineWithFaultMap(cw, faultMap)
		if err != nil {
			t.Fatalf("fault-map decode failed: %v", err)
		}
		if n != 8 {
			t.Fatalf("corrected %d symbols, want 8", n)
		}
		back := l.ExtractLine(cw)
		for i := range data {
			if back[i] != data[i] {
				t.Fatal("payload mismatch")
			}
		}
	}
}

func TestRSLineFaultMapRejectsOverload(t *testing.T) {
	l := MustRSLine(2)
	r := stats.NewRNG(10)
	data := randomLine(r)
	cw, _ := l.EncodeLine(data)
	tooMany := []int{0, 1, 2, 3, 4} // 5 > 2t = 4 erasures
	for _, sym := range tooMany {
		cw[sym] ^= 0x55
	}
	if _, err := l.DecodeLineWithFaultMap(cw, tooMany); err != ErrUncorrectable {
		t.Errorf("expected ErrUncorrectable, got %v", err)
	}
}

func TestRSvsBCHOnCellErrors(t *testing.T) {
	// Equal storage comparison: RS-4 (64 check bits) vs BCH-6 (60 bits) —
	// closest BCH at or below RS-4's overhead. Inject k two-bit cell
	// errors through the real codecs and compare survival.
	rsL := MustRSLine(4)
	bchL := MustBCHLine(6)
	r := stats.NewRNG(4)
	const trials = 200
	survive := func(codec LineCodec, cells int) int {
		ok := 0
		for i := 0; i < trials; i++ {
			data := randomLine(r)
			cw, err := codec.EncodeLine(data)
			if err != nil {
				t.Fatal(err)
			}
			// cell errors: 2 adjacent bits in distinct 4-bit-pair slots of
			// the valid bit range.
			validCells := (codec.DataBits() + codec.CheckBits()) / 2
			seen := map[int]bool{}
			for len(seen) < cells {
				c := r.Intn(validCells)
				if seen[c] {
					continue
				}
				seen[c] = true
				flipBit(cw, 2*c)
				flipBit(cw, 2*c+1)
			}
			if _, err := codec.DecodeLine(cw); err == nil {
				ok++
			}
		}
		return ok
	}
	// 4 double-bit cell errors = 8 bit errors: BCH-6 must fail, RS-4 must
	// succeed every time.
	if got := survive(bchL, 4); got != 0 {
		t.Errorf("BCH-6 survived %d/%d quadruple cell errors (8 bits > t=6)", got, trials)
	}
	if got := survive(rsL, 4); got != trials {
		t.Errorf("RS-4 survived only %d/%d quadruple cell errors", got, trials)
	}
}
