// Package mem describes the physical organisation of the PCM main memory:
// channels, ranks, banks, rows and lines, with address mapping between a
// flat line index and its physical coordinates. The scrub scheduler walks
// lines in physical order (row-major within a bank, banks interleaved) the
// way a real memory controller's scrub engine does.
package mem

import "fmt"

// Geometry is the shape of the memory system.
type Geometry struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	RowsPerBank  int
	LinesPerRow  int
	LineBytes    int
}

// DefaultGeometry returns a deliberately small (simulation-sized) memory:
// 1 channel × 1 rank × 8 banks × 512 rows × 32 lines = 128 Ki lines
// (8 MiB of data), which is sampled and scaled to full-system capacities
// by the reporting layer.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:     1,
		RanksPerChan: 1,
		BanksPerRank: 8,
		RowsPerBank:  512,
		LinesPerRow:  32,
		LineBytes:    64,
	}
}

// Validate checks that every dimension is positive.
func (g *Geometry) Validate() error {
	if g.Channels < 1 || g.RanksPerChan < 1 || g.BanksPerRank < 1 ||
		g.RowsPerBank < 1 || g.LinesPerRow < 1 || g.LineBytes < 1 {
		return fmt.Errorf("mem: all geometry dimensions must be >= 1: %+v", *g)
	}
	return nil
}

// TotalBanks returns the number of banks across the system.
func (g *Geometry) TotalBanks() int {
	return g.Channels * g.RanksPerChan * g.BanksPerRank
}

// TotalLines returns the number of lines across the system.
func (g *Geometry) TotalLines() int {
	return g.TotalBanks() * g.RowsPerBank * g.LinesPerRow
}

// TotalBytes returns the data capacity in bytes.
func (g *Geometry) TotalBytes() int64 {
	return int64(g.TotalLines()) * int64(g.LineBytes)
}

// Coord is the physical location of one line.
type Coord struct {
	Channel, Rank, Bank, Row, Col int
}

// Decompose maps a flat line index to physical coordinates. The layout is
// line-index = ((((chan·R + rank)·B + bank)·rows + row)·cols + col), i.e.
// consecutive indices walk the columns of a row, then rows of a bank.
func (g *Geometry) Decompose(line int) (Coord, error) {
	if line < 0 || line >= g.TotalLines() {
		return Coord{}, fmt.Errorf("mem: line %d out of range [0,%d)", line, g.TotalLines())
	}
	c := Coord{}
	c.Col = line % g.LinesPerRow
	line /= g.LinesPerRow
	c.Row = line % g.RowsPerBank
	line /= g.RowsPerBank
	c.Bank = line % g.BanksPerRank
	line /= g.BanksPerRank
	c.Rank = line % g.RanksPerChan
	line /= g.RanksPerChan
	c.Channel = line
	return c, nil
}

// Compose maps physical coordinates back to a flat line index.
func (g *Geometry) Compose(c Coord) (int, error) {
	if c.Channel < 0 || c.Channel >= g.Channels ||
		c.Rank < 0 || c.Rank >= g.RanksPerChan ||
		c.Bank < 0 || c.Bank >= g.BanksPerRank ||
		c.Row < 0 || c.Row >= g.RowsPerBank ||
		c.Col < 0 || c.Col >= g.LinesPerRow {
		return 0, fmt.Errorf("mem: coordinate out of range: %+v", c)
	}
	idx := c.Channel
	idx = idx*g.RanksPerChan + c.Rank
	idx = idx*g.BanksPerRank + c.Bank
	idx = idx*g.RowsPerBank + c.Row
	idx = idx*g.LinesPerRow + c.Col
	return idx, nil
}

// BankOf returns the global bank number (0..TotalBanks-1) a line maps to.
func (g *Geometry) BankOf(line int) int {
	linesPerBank := g.RowsPerBank * g.LinesPerRow
	return line / linesPerBank
}

// ScrubWalker yields line indices in scrub order: a round-robin over banks
// so the scrub engine spreads its reads rather than hammering one bank,
// advancing one line per bank per step — the standard "patrol scrub" walk.
type ScrubWalker struct {
	g            Geometry
	linesPerBank int
	pos          int // position within the per-bank sequence
	bank         int // next bank to visit
}

// NewScrubWalker starts a walker at the beginning of memory.
func NewScrubWalker(g Geometry) *ScrubWalker {
	return &ScrubWalker{g: g, linesPerBank: g.RowsPerBank * g.LinesPerRow}
}

// Next returns the next line index in patrol order, wrapping at the end of
// memory. It also reports whether this call completed a full sweep.
func (w *ScrubWalker) Next() (line int, wrapped bool) {
	line = w.bank*w.linesPerBank + w.pos
	w.bank++
	if w.bank == w.g.TotalBanks() {
		w.bank = 0
		w.pos++
		if w.pos == w.linesPerBank {
			w.pos = 0
			wrapped = true
		}
	}
	return line, wrapped
}

// Reset rewinds the walker to the start of memory.
func (w *ScrubWalker) Reset() { w.pos, w.bank = 0, 0 }
