package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryValid(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalLines() != 8*512*32 {
		t.Errorf("total lines = %d", g.TotalLines())
	}
	if g.TotalBytes() != int64(g.TotalLines())*64 {
		t.Errorf("total bytes = %d", g.TotalBytes())
	}
	if g.TotalBanks() != 8 {
		t.Errorf("total banks = %d", g.TotalBanks())
	}
}

func TestValidateRejectsZeroDims(t *testing.T) {
	g := DefaultGeometry()
	g.RowsPerBank = 0
	if err := g.Validate(); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	g := Geometry{Channels: 2, RanksPerChan: 2, BanksPerRank: 4, RowsPerBank: 8, LinesPerRow: 4, LineBytes: 64}
	prop := func(raw uint32) bool {
		line := int(raw) % g.TotalLines()
		c, err := g.Decompose(line)
		if err != nil {
			return false
		}
		back, err := g.Compose(c)
		return err == nil && back == line
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeExhaustiveSmall(t *testing.T) {
	g := Geometry{Channels: 2, RanksPerChan: 1, BanksPerRank: 2, RowsPerBank: 3, LinesPerRow: 2, LineBytes: 64}
	seen := map[Coord]bool{}
	for line := 0; line < g.TotalLines(); line++ {
		c, err := g.Decompose(line)
		if err != nil {
			t.Fatal(err)
		}
		if seen[c] {
			t.Fatalf("coordinate %+v repeated", c)
		}
		seen[c] = true
	}
	if len(seen) != g.TotalLines() {
		t.Fatalf("coordinates not unique: %d of %d", len(seen), g.TotalLines())
	}
}

func TestDecomposeOutOfRange(t *testing.T) {
	g := DefaultGeometry()
	if _, err := g.Decompose(-1); err == nil {
		t.Error("negative line accepted")
	}
	if _, err := g.Decompose(g.TotalLines()); err == nil {
		t.Error("line beyond end accepted")
	}
}

func TestComposeOutOfRange(t *testing.T) {
	g := DefaultGeometry()
	if _, err := g.Compose(Coord{Bank: g.BanksPerRank}); err == nil {
		t.Error("bank out of range accepted")
	}
	if _, err := g.Compose(Coord{Row: -1}); err == nil {
		t.Error("negative row accepted")
	}
}

func TestBankOfConsistentWithDecompose(t *testing.T) {
	g := DefaultGeometry()
	for _, line := range []int{0, 1, 31, 32, 16383, 16384, g.TotalLines() - 1} {
		c, err := g.Decompose(line)
		if err != nil {
			t.Fatal(err)
		}
		globalBank := (c.Channel*g.RanksPerChan+c.Rank)*g.BanksPerRank + c.Bank
		if got := g.BankOf(line); got != globalBank {
			t.Errorf("BankOf(%d) = %d, want %d", line, got, globalBank)
		}
	}
}

func TestScrubWalkerCoversAllLinesOnce(t *testing.T) {
	g := Geometry{Channels: 1, RanksPerChan: 1, BanksPerRank: 4, RowsPerBank: 4, LinesPerRow: 2, LineBytes: 64}
	w := NewScrubWalker(g)
	seen := make([]bool, g.TotalLines())
	for i := 0; i < g.TotalLines(); i++ {
		line, wrapped := w.Next()
		if seen[line] {
			t.Fatalf("line %d visited twice in one sweep", line)
		}
		seen[line] = true
		wantWrap := i == g.TotalLines()-1
		if wrapped != wantWrap {
			t.Fatalf("wrap flag wrong at step %d", i)
		}
	}
	for line, ok := range seen {
		if !ok {
			t.Fatalf("line %d never visited", line)
		}
	}
}

func TestScrubWalkerInterleavesBanks(t *testing.T) {
	g := Geometry{Channels: 1, RanksPerChan: 1, BanksPerRank: 4, RowsPerBank: 4, LinesPerRow: 2, LineBytes: 64}
	w := NewScrubWalker(g)
	for step := 0; step < 8; step++ {
		line, _ := w.Next()
		if got := g.BankOf(line); got != step%4 {
			t.Fatalf("step %d hit bank %d, want %d", step, got, step%4)
		}
	}
}

func TestScrubWalkerReset(t *testing.T) {
	g := DefaultGeometry()
	w := NewScrubWalker(g)
	first, _ := w.Next()
	w.Next()
	w.Reset()
	again, _ := w.Next()
	if first != again {
		t.Errorf("reset did not rewind: %d vs %d", first, again)
	}
}
