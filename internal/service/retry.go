package service

import (
	"net/http"
	"strconv"
)

// Retry-After bounds: an almost-empty resource suggests an immediate
// retry; a saturated one pushes clients back harder so the herd spreads.
const (
	minRetryAfterSec = 1
	maxRetryAfterSec = 5
)

// RetryAfterSeconds derives a Retry-After hint from the occupancy of a
// bounded resource (a job queue, a shard-admission semaphore): the hint
// scales linearly from 1s when the resource has room up to 5s at or past
// capacity. A non-positive capacity (unknown bound) falls back to the
// minimum — the old fixed "1".
func RetryAfterSeconds(occupied, capacity int) int {
	if capacity <= 0 {
		return minRetryAfterSec
	}
	if occupied < 0 {
		occupied = 0
	}
	sec := minRetryAfterSec + occupied*(maxRetryAfterSec-minRetryAfterSec)/capacity
	if sec > maxRetryAfterSec {
		sec = maxRetryAfterSec
	}
	return sec
}

// SetRetryAfter stamps the occupancy-derived Retry-After hint on a
// response. Every 429/503 back-pressure response in the daemon goes
// through here so the backoff policy lives in one place.
func SetRetryAfter(h http.Header, occupied, capacity int) {
	h.Set("Retry-After", strconv.Itoa(RetryAfterSeconds(occupied, capacity)))
}

// SetRetryAfterClass stamps the occupancy hint scaled by scheduling
// class: interactive clients get the base backoff, batch clients are
// pushed back twice as hard — under contention the early retries should
// come from the traffic the scheduler wants to run first.
func SetRetryAfterClass(h http.Header, occupied, capacity int, c Class) {
	sec := RetryAfterSeconds(occupied, capacity)
	if c == ClassBatch {
		sec *= 2
	}
	h.Set("Retry-After", strconv.Itoa(sec))
}
