package service

import (
	"container/heap"
	"time"
)

// priorityQueue replaces the old FIFO channel: one earliest-deadline-
// first heap per scheduling class, served under strict class precedence
// (interactive before normal before batch) with an optional aging escape
// hatch for starvation avoidance. Not safe for concurrent use; the
// Service serialises access under its mutex and parks idle workers on a
// condition variable.
//
// Order is a pure function of (class, deadline, arrival index): within a
// class, jobs with deadlines run earliest-deadline-first ahead of jobs
// without one, and ties break on arrival order. Wall-clock enters only
// through the aging knob, which is off by default.
type priorityQueue struct {
	heaps [numClasses]jobHeap
}

// push inserts a queued job into its class heap.
func (q *priorityQueue) push(j *job) {
	heap.Push(&q.heaps[j.class], j)
}

// remove unlinks a job still sitting in the queue (cancellation, class
// escalation). Reports whether the job was present.
func (q *priorityQueue) remove(j *job) bool {
	if j.heapIdx < 0 {
		return false
	}
	heap.Remove(&q.heaps[j.class], j.heapIdx)
	return true
}

// len is the total number of queued jobs — the occupancy that admission
// watermarks and queue-full checks run on.
func (q *priorityQueue) len() int {
	n := 0
	for c := range q.heaps {
		n += len(q.heaps[c])
	}
	return n
}

// classDepth reports one class's backlog.
func (q *priorityQueue) classDepth(c Class) int {
	return len(q.heaps[c])
}

// pick pops the next job to run, or nil when the queue is empty.
//
// Policy: strict class precedence, except that when aging > 0 and the
// scheduling head of a lower class has waited at least that long, the
// longest-waiting such head is served instead — so a trickle of
// interactive traffic cannot starve the batch tier forever. aged
// reports whether the anti-starvation path fired (it is a metric).
func (q *priorityQueue) pick(now time.Time, aging time.Duration) (j *job, aged bool) {
	if aging > 0 {
		var oldest *job
		for c := Class(0); c < numClasses; c++ {
			h := q.heaps[c]
			if len(h) == 0 {
				continue
			}
			head := h[0]
			if now.Sub(head.submitted) >= aging && (oldest == nil || head.submitted.Before(oldest.submitted)) {
				oldest = head
			}
		}
		if oldest != nil {
			heap.Remove(&q.heaps[oldest.class], oldest.heapIdx)
			// Only count it as an aging rescue when precedence alone
			// would have picked a different job.
			for c := numClasses - 1; c > oldest.class; c-- {
				if len(q.heaps[c]) > 0 {
					return oldest, true
				}
			}
			return oldest, false
		}
	}
	for c := numClasses - 1; c >= 0; c-- {
		if len(q.heaps[c]) > 0 {
			return heap.Pop(&q.heaps[c]).(*job), false
		}
	}
	return nil, false
}

// jobHeap orders one class's jobs: deadline-bearing jobs first (earliest
// deadline wins), then deadline-free jobs in arrival order.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(a, b int) bool {
	ja, jb := h[a], h[b]
	da, db := !ja.deadline.IsZero(), !jb.deadline.IsZero()
	switch {
	case da && db:
		if !ja.deadline.Equal(jb.deadline) {
			return ja.deadline.Before(jb.deadline)
		}
	case da != db:
		return da // a deadline outranks no deadline
	}
	return ja.arrival < jb.arrival
}

func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIdx = a
	h[b].heapIdx = b
}

func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
