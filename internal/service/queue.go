package service

import (
	"container/heap"
	"time"
)

// priorityQueue replaces the old FIFO channel: one earliest-deadline-
// first heap per scheduling class, served under strict class precedence
// (interactive before normal before batch) with an optional aging escape
// hatch for starvation avoidance. Not safe for concurrent use; the
// Service serialises access under its mutex and parks idle workers on a
// condition variable.
//
// Order is a pure function of (class, deadline, arrival index): within a
// class, jobs with deadlines run earliest-deadline-first ahead of jobs
// without one, and ties break on arrival order. Wall-clock enters only
// through the aging knob, which is off by default.
//
// Alongside each heap the queue chains the class's jobs in insertion
// order (fifoHead/fifoTail plus the job's fifoPrev/fifoNext links). The
// aging rescue examines these list heads, not the heap heads: a
// deadline-free job sorts behind every deadline-bearing job in its heap
// and might never become the heap head under a steady deadline-bearing
// stream, but it is always the FIFO head once it is the class's
// longest-queued job, so the anti-starvation knob protects it too.
type priorityQueue struct {
	heaps              [numClasses]jobHeap
	fifoHead, fifoTail [numClasses]*job
}

// push inserts a queued job into its class heap and FIFO chain.
func (q *priorityQueue) push(j *job) {
	heap.Push(&q.heaps[j.class], j)
	j.fifoPrev, j.fifoNext = q.fifoTail[j.class], nil
	if j.fifoPrev != nil {
		j.fifoPrev.fifoNext = j
	} else {
		q.fifoHead[j.class] = j
	}
	q.fifoTail[j.class] = j
}

// unlink removes a job from its class's FIFO chain. Must run before the
// job's class changes (escalation re-pushes under the new class).
func (q *priorityQueue) unlink(j *job) {
	if j.fifoPrev != nil {
		j.fifoPrev.fifoNext = j.fifoNext
	} else {
		q.fifoHead[j.class] = j.fifoNext
	}
	if j.fifoNext != nil {
		j.fifoNext.fifoPrev = j.fifoPrev
	} else {
		q.fifoTail[j.class] = j.fifoPrev
	}
	j.fifoPrev, j.fifoNext = nil, nil
}

// remove unlinks a job still sitting in the queue (cancellation, class
// escalation). Reports whether the job was present.
func (q *priorityQueue) remove(j *job) bool {
	if j.heapIdx < 0 {
		return false
	}
	heap.Remove(&q.heaps[j.class], j.heapIdx)
	q.unlink(j)
	return true
}

// len is the total number of queued jobs — the occupancy that admission
// watermarks and queue-full checks run on.
func (q *priorityQueue) len() int {
	n := 0
	for c := range q.heaps {
		n += len(q.heaps[c])
	}
	return n
}

// classDepth reports one class's backlog.
func (q *priorityQueue) classDepth(c Class) int {
	return len(q.heaps[c])
}

// pick pops the next job to run, or nil when the queue is empty.
//
// Policy: strict class precedence, except that when aging > 0 and the
// longest-queued job of some class (its FIFO head, regardless of where
// its deadline ranks it in the heap) has waited at least that long, the
// longest-waiting such head is served instead — so neither a trickle of
// interactive traffic nor a steady stream of deadline-bearing siblings
// can starve a job forever. aged reports whether the anti-starvation
// path changed the outcome (it is a metric).
func (q *priorityQueue) pick(now time.Time, aging time.Duration) (j *job, aged bool) {
	if aging > 0 {
		var oldest *job
		for c := Class(0); c < numClasses; c++ {
			head := q.fifoHead[c]
			if head == nil {
				continue
			}
			if now.Sub(head.submitted) >= aging && (oldest == nil || head.submitted.Before(oldest.submitted)) {
				oldest = head
			}
		}
		if oldest != nil {
			// Only count it as an aging rescue when precedence alone would
			// have picked a different job.
			var wouldPick *job
			for c := numClasses - 1; c >= 0; c-- {
				if len(q.heaps[c]) > 0 {
					wouldPick = q.heaps[c][0]
					break
				}
			}
			heap.Remove(&q.heaps[oldest.class], oldest.heapIdx)
			q.unlink(oldest)
			return oldest, oldest != wouldPick
		}
	}
	for c := numClasses - 1; c >= 0; c-- {
		if len(q.heaps[c]) > 0 {
			j := heap.Pop(&q.heaps[c]).(*job)
			q.unlink(j)
			return j, false
		}
	}
	return nil, false
}

// jobHeap orders one class's jobs: deadline-bearing jobs first (earliest
// deadline wins), then deadline-free jobs in arrival order.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(a, b int) bool {
	ja, jb := h[a], h[b]
	da, db := !ja.deadline.IsZero(), !jb.deadline.IsZero()
	switch {
	case da && db:
		if !ja.deadline.Equal(jb.deadline) {
			return ja.deadline.Before(jb.deadline)
		}
	case da != db:
		return da // a deadline outranks no deadline
	}
	return ja.arrival < jb.arrival
}

func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIdx = a
	h[b].heapIdx = b
}

func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
