package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled
//
// Cache hits are born done.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Submission is what a submit returns: where the job landed and whether
// existing work was reused.
type Submission struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	// CacheHit marks a job answered from the result cache (born done).
	CacheHit bool `json:"cache_hit"`
	// Deduped marks a submission attached to an identical queued or
	// running job; the returned ID is that job's.
	Deduped bool `json:"deduped"`
}

// JobView is the externally visible state of a job.
type JobView struct {
	ID          string     `json:"id"`
	Fingerprint string     `json:"fingerprint"`
	State       State      `json:"state"`
	CacheHit    bool       `json:"cache_hit,omitempty"`
	Attached    int        `json:"attached,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	WallSeconds float64    `json:"wall_seconds,omitempty"`
	// ShardsDone/ShardsTotal expose a running job's cluster shard
	// progress (both zero for unsharded execution).
	ShardsDone  int    `json:"shards_done,omitempty"`
	ShardsTotal int    `json:"shards_total,omitempty"`
	Error       string `json:"error,omitempty"`
	Spec        *Spec  `json:"spec,omitempty"`
	// Result is the encoded Result, present once the job is done.
	Result json.RawMessage `json:"result,omitempty"`
}

// job is the internal record; all fields are guarded by Service.mu.
type job struct {
	id          string
	fingerprint string
	spec        Spec
	state       State
	err         string
	cacheHit    bool
	attached    int // extra submissions deduped onto this job
	submitted   time.Time
	started     time.Time
	finished    time.Time
	result      []byte
	cancel      context.CancelFunc
	ctx         context.Context
	// shardsDone/shardsTotal track cluster shard progress, reported by
	// the runner through ReportShardProgress.
	shardsDone, shardsTotal int
}

// Runner executes one normalised spec. It is injectable so tests can
// substitute deterministic or blocking executions.
type Runner func(ctx context.Context, spec Spec) (*Result, error)

// DefaultRunner executes the spec via the resilient replication runner.
func DefaultRunner(ctx context.Context, spec Spec) (*Result, error) {
	sys, mech, w, err := spec.Build()
	if err != nil {
		return nil, err
	}
	rep, err := core.RunReplicatedContext(ctx, sys, mech, w, spec.Replicas)
	if err != nil {
		return nil, err
	}
	return NewResult(spec, rep), nil
}

// Config sizes a Service.
type Config struct {
	// QueueCapacity bounds the FIFO backlog (0 = 64). Submissions beyond
	// it are rejected with ErrQueueFull rather than queued unboundedly.
	QueueCapacity int
	// Workers sizes the pool (0 = GOMAXPROCS).
	Workers int
	// CacheCapacity bounds the LRU result cache (0 = 256 entries;
	// negative disables caching).
	CacheCapacity int
	// Runner overrides job execution (nil = DefaultRunner).
	Runner Runner
}

// Errors the submission and control paths return; the HTTP layer maps
// them to status codes.
var (
	ErrQueueFull  = errors.New("service: queue full")
	ErrClosed     = errors.New("service: shutting down")
	ErrNotFound   = errors.New("service: no such job")
	ErrNotRunning = errors.New("service: job already finished")
)

// Service is the long-running scrub-simulation daemon core: a bounded
// FIFO queue feeding a worker pool, fronted by a content-addressed
// result cache with single-flight deduplication.
type Service struct {
	queueCap int
	workers  int
	runner   Runner

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // fingerprint → queued/running job
	cache    *resultCache
	queue    chan *job
	nextID   int
	closed   bool

	counters counters
	wg       sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc

	// started anchors the /healthz uptime report.
	started time.Time

	// now is the clock, a hook for deterministic tests.
	now func() time.Time
}

// New starts a Service and its worker pool.
func New(cfg Config) *Service {
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 256
	}
	if cfg.Runner == nil {
		cfg.Runner = DefaultRunner
	}
	s := &Service{
		queueCap: cfg.QueueCapacity,
		workers:  cfg.Workers,
		runner:   cfg.Runner,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    newResultCache(cfg.CacheCapacity),
		queue:    make(chan *job, cfg.QueueCapacity),
		now:      time.Now,
	}
	s.started = s.now()
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit normalises and fingerprints the spec, then answers from the
// cache, attaches to an identical in-flight job, or enqueues a fresh one
// — in that order. A full queue rejects with ErrQueueFull.
func (s *Service) Submit(spec Spec) (Submission, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return Submission{}, err
	}
	fp := norm.Fingerprint()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Submission{}, ErrClosed
	}
	if data, ok := s.cache.get(fp); ok {
		j := &job{
			id: s.newID(), fingerprint: fp, spec: norm,
			state: StateDone, cacheHit: true,
			submitted: s.now(), finished: s.now(), result: data,
		}
		s.jobs[j.id] = j
		s.counters.accepted.Add(1)
		s.counters.cacheHits.Add(1)
		return Submission{ID: j.id, Fingerprint: fp, State: StateDone, CacheHit: true}, nil
	}
	if cur, ok := s.inflight[fp]; ok {
		cur.attached++
		s.counters.accepted.Add(1)
		s.counters.deduped.Add(1)
		return Submission{ID: cur.id, Fingerprint: fp, State: cur.state, Deduped: true}, nil
	}
	j := &job{
		id: s.newID(), fingerprint: fp, spec: norm,
		state: StateQueued, submitted: s.now(),
	}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	select {
	case s.queue <- j:
	default:
		j.cancel()
		s.counters.rejected.Add(1)
		return Submission{}, fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.queueCap)
	}
	s.jobs[j.id] = j
	s.inflight[fp] = j
	s.counters.accepted.Add(1)
	s.counters.cacheMisses.Add(1)
	return Submission{ID: j.id, Fingerprint: fp, State: StateQueued}, nil
}

// newID mints a monotonically increasing job ID. Caller holds s.mu.
func (s *Service) newID() string {
	s.nextID++
	return fmt.Sprintf("job-%06d", s.nextID)
}

// worker drains the queue until it is closed.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		if j.state != StateQueued { // cancelled while waiting
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = s.now()
		spec := j.spec
		// A sharding runner (the cluster coordinator) reports shard
		// progress through the context; it lands in the job view.
		ctx := WithShardProgress(j.ctx, func(done, total int) {
			s.mu.Lock()
			j.shardsDone, j.shardsTotal = done, total
			s.mu.Unlock()
		})
		s.mu.Unlock()

		s.counters.busyWorkers.Add(1)
		res, err := s.runContained(ctx, spec)
		s.counters.busyWorkers.Add(-1)
		s.finish(j, res, err)
	}
}

// runContained invokes the runner with panic containment: a defective
// job fails; it does not take the daemon down.
func (s *Service) runContained(ctx context.Context, spec Spec) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("service: job panicked: %v", p)
		}
	}()
	return s.runner(ctx, spec)
}

// finish records a run's outcome and publishes it to the cache.
func (s *Service) finish(j *job, res *Result, err error) {
	var data []byte
	if err == nil {
		if res == nil {
			err = errors.New("service: runner returned no result")
		} else if data, err = json.Marshal(res); err != nil {
			err = fmt.Errorf("service: encode result: %w", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = s.now()
	if !j.started.IsZero() {
		s.counters.wallNanosDone.Add(int64(j.finished.Sub(j.started)))
	}
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	if j.state == StateCancelled {
		// Cancelled via Cancel while running; the outcome, even a
		// success that raced the cancellation, is discarded.
		return
	}
	switch {
	case err == nil:
		j.state = StateDone
		j.result = data
		s.cache.add(j.fingerprint, data)
		s.counters.completed.Add(1)
	case j.ctx.Err() != nil:
		j.state = StateCancelled
		j.err = err.Error()
		s.counters.cancelled.Add(1)
	default:
		j.state = StateFailed
		j.err = err.Error()
		s.counters.failed.Add(1)
	}
}

// Cancel moves a queued or running job to cancelled. A queued job never
// runs; a running job's context is cancelled and the simulator returns
// within a substep. Cancelling a terminal job returns ErrNotRunning with
// the job's current view.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	if j.state.Terminal() {
		return s.viewLocked(j, false), ErrNotRunning
	}
	if j.state == StateQueued {
		j.finished = s.now()
	}
	j.state = StateCancelled
	j.err = "cancelled by request"
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	if j.cancel != nil {
		j.cancel()
	}
	s.counters.cancelled.Add(1)
	return s.viewLocked(j, false), nil
}

// Get returns a job's view, including its result when done.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return s.viewLocked(j, true), nil
}

// List returns all jobs in submission order, without result payloads.
func (s *Service) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, s.viewLocked(j, false))
	}
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	return views
}

// viewLocked renders a job. Caller holds s.mu.
func (s *Service) viewLocked(j *job, includeResult bool) JobView {
	v := JobView{
		ID:          j.id,
		Fingerprint: j.fingerprint,
		State:       j.state,
		CacheHit:    j.cacheHit,
		Attached:    j.attached,
		SubmittedAt: j.submitted,
		ShardsDone:  j.shardsDone,
		ShardsTotal: j.shardsTotal,
		Error:       j.err,
	}
	spec := j.spec
	v.Spec = &spec
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		if !j.started.IsZero() {
			v.WallSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	if includeResult && j.state == StateDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration {
	return s.now().Sub(s.started)
}

// shardProgressKey carries a ShardProgressFunc through a job's context.
type shardProgressKey struct{}

// ShardProgressFunc receives shard completion updates for a running job.
type ShardProgressFunc func(done, total int)

// WithShardProgress attaches a shard progress sink to ctx. The service
// installs one on every job context; a sharding runner reports through
// ReportShardProgress.
func WithShardProgress(ctx context.Context, fn ShardProgressFunc) context.Context {
	return context.WithValue(ctx, shardProgressKey{}, fn)
}

// ReportShardProgress publishes a job's shard progress to whatever sink
// the context carries. A no-op when the runner executes outside the
// service (tests, CLI).
func ReportShardProgress(ctx context.Context, done, total int) {
	if fn, ok := ctx.Value(shardProgressKey{}).(ShardProgressFunc); ok {
		fn(done, total)
	}
}

// Snapshot returns the operational counters plus queue/cache gauges.
func (s *Service) Snapshot() Snapshot {
	s.mu.Lock()
	cacheSize := s.cache.len()
	queueDepth := len(s.queue)
	s.mu.Unlock()
	busy := int(s.counters.busyWorkers.Load())
	snap := Snapshot{
		JobsAccepted:   s.counters.accepted.Load(),
		JobsCompleted:  s.counters.completed.Load(),
		JobsFailed:     s.counters.failed.Load(),
		JobsCancelled:  s.counters.cancelled.Load(),
		JobsRejected:   s.counters.rejected.Load(),
		CacheHits:      s.counters.cacheHits.Load(),
		CacheMisses:    s.counters.cacheMisses.Load(),
		Deduped:        s.counters.deduped.Load(),
		CacheSize:      cacheSize,
		QueueDepth:     queueDepth,
		QueueCapacity:  s.queueCap,
		Workers:        s.workers,
		BusyWorkers:    busy,
		JobWallSeconds: time.Duration(s.counters.wallNanosDone.Load()).Seconds(),
	}
	if s.workers > 0 {
		snap.WorkerUtilization = float64(busy) / float64(s.workers)
	}
	return snap
}

// Shutdown drains the service: no new submissions are accepted, queued
// and running jobs are given until ctx expires to finish, then remaining
// work is force-cancelled. It returns ctx's error when the drain was cut
// short, nil on a clean drain. Shutdown is idempotent only in its
// refusal of new work; call it once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("service: already shut down")
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseStop() // force-cancel every remaining job context
		<-done
		err = ctx.Err()
	}
	s.baseStop()
	return err
}
