package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/journal"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled
//
// Cache hits are born done.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Submission is what a submit returns: where the job landed and whether
// existing work was reused.
type Submission struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	// CacheHit marks a job answered from the result cache (born done).
	CacheHit bool `json:"cache_hit"`
	// Deduped marks a submission attached to an identical queued or
	// running job; the returned ID is that job's.
	Deduped bool `json:"deduped"`
}

// JobView is the externally visible state of a job.
type JobView struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	CacheHit    bool   `json:"cache_hit,omitempty"`
	// Recovered marks a job replayed from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Tenant is the submitting tenant (X-Scrubd-Tenant), for attribution.
	Tenant      string     `json:"tenant,omitempty"`
	Attached    int        `json:"attached,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	WallSeconds float64    `json:"wall_seconds,omitempty"`
	// ShardsDone/ShardsTotal expose a running job's cluster shard
	// progress (both zero for unsharded execution).
	ShardsDone  int    `json:"shards_done,omitempty"`
	ShardsTotal int    `json:"shards_total,omitempty"`
	Error       string `json:"error,omitempty"`
	Spec        *Spec  `json:"spec,omitempty"`
	// Result is the encoded Result, present once the job is done.
	Result json.RawMessage `json:"result,omitempty"`
}

// job is the internal record; all fields are guarded by Service.mu.
type job struct {
	id          string
	fingerprint string
	spec        Spec
	state       State
	err         string
	cacheHit    bool
	recovered   bool
	attached    int // extra submissions deduped onto this job
	submitted   time.Time
	started     time.Time
	finished    time.Time
	result      []byte
	cancel      context.CancelFunc
	ctx         context.Context
	// Scheduling position: class and deadline order the priority queue,
	// arrival breaks ties, heapIdx is the job's live index in its class
	// heap (-1 once dequeued or removed). tenant is the submitting
	// tenant, for observability only.
	class    Class
	deadline time.Time
	arrival  uint64
	heapIdx  int
	tenant   string
	// fifoPrev/fifoNext chain the job into its class's insertion-order
	// list while queued; the list head is the class's longest-waiting
	// job, the aging rescue's candidate (see priorityQueue).
	fifoPrev, fifoNext *job
	// shardsDone/shardsTotal track cluster shard progress, reported by
	// the runner through ReportShardProgress.
	shardsDone, shardsTotal int
	// resume carries a recovered job's journaled shard plan and
	// checkpoints into its next execution.
	resume *shardResume
}

// shardResume is the durable shard state a recovered job resumes from.
type shardResume struct {
	plan        []journal.ShardRange
	checkpoints map[journal.ShardRange]json.RawMessage
}

// Runner executes one normalised spec. It is injectable so tests can
// substitute deterministic or blocking executions.
type Runner func(ctx context.Context, spec Spec) (*Result, error)

// DefaultRunner executes the spec via the resilient replication runner.
func DefaultRunner(ctx context.Context, spec Spec) (*Result, error) {
	sys, mech, w, err := spec.Build()
	if err != nil {
		return nil, err
	}
	rep, err := core.RunReplicatedContext(ctx, sys, mech, w, spec.Replicas)
	if err != nil {
		return nil, err
	}
	return NewResult(spec, rep), nil
}

// Config sizes a Service.
type Config struct {
	// QueueCapacity bounds the FIFO backlog (0 = 64). Submissions beyond
	// it are rejected with ErrQueueFull rather than queued unboundedly.
	QueueCapacity int
	// Workers sizes the pool (0 = GOMAXPROCS).
	Workers int
	// CacheCapacity bounds the LRU result cache (0 = 256 entries;
	// negative disables caching).
	CacheCapacity int
	// Runner overrides job execution (nil = DefaultRunner).
	Runner Runner
	// Journal, when non-nil, makes every accepted job durable: the
	// lifecycle is written ahead to it, and Recover replays a previous
	// incarnation's journal back into the queue.
	Journal *journal.Journal

	// Shed, when non-nil, enables watermark-driven load shedding (see
	// ShedConfig). nil keeps the legacy behaviour: admit every class
	// until the queue is full.
	Shed *ShedConfig
	// TenantRate/TenantBurst enable per-tenant token-bucket admission
	// (TenantRate tokens/sec refill, TenantBurst bucket size). Either
	// being zero disables rate limiting.
	TenantRate  float64
	TenantBurst int
	// Aging is the starvation-avoidance knob: a queued job whose class
	// head has waited at least this long is served ahead of higher
	// classes (0 = strict precedence, fully deterministic order).
	Aging time.Duration
}

// Errors the submission and control paths return; the HTTP layer maps
// them to status codes.
var (
	ErrQueueFull  = errors.New("service: queue full")
	ErrClosed     = errors.New("service: shutting down")
	ErrNotFound   = errors.New("service: no such job")
	ErrNotRunning = errors.New("service: job already finished")
)

// Service is the long-running scrub-simulation daemon core: a bounded
// priority queue (strict class precedence, earliest-deadline-first
// within a class) feeding a worker pool, guarded by admission control
// (per-tenant token buckets, watermark-driven load shedding) and fronted
// by a content-addressed result cache with single-flight deduplication.
type Service struct {
	queueCap int
	workers  int
	runner   Runner
	journal  *journal.Journal
	shed     *ShedConfig
	aging    time.Duration

	mu        sync.Mutex
	queueCond *sync.Cond // signalled on push; workers park here
	jobs      map[string]*job
	inflight  map[string]*job // fingerprint → queued/running job
	cache     *resultCache
	pq        priorityQueue
	tenants   *tokenBuckets
	arrival   uint64
	nextID    int
	closed    bool

	counters counters
	wg       sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc

	// started anchors the /healthz uptime report.
	started time.Time

	// now is the clock, a hook for deterministic tests.
	now func() time.Time
}

// New starts a Service and its worker pool.
func New(cfg Config) *Service {
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 256
	}
	if cfg.Runner == nil {
		cfg.Runner = DefaultRunner
	}
	if cfg.Shed != nil {
		if err := cfg.Shed.Validate(); err != nil {
			panic(err) // misconfiguration; scrubd validates at flag parse
		}
		shed := *cfg.Shed
		cfg.Shed = &shed
	}
	s := &Service{
		queueCap: cfg.QueueCapacity,
		workers:  cfg.Workers,
		runner:   cfg.Runner,
		journal:  cfg.Journal,
		shed:     cfg.Shed,
		aging:    cfg.Aging,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    newResultCache(cfg.CacheCapacity),
		tenants:  newTokenBuckets(cfg.TenantRate, cfg.TenantBurst),
		now:      time.Now,
	}
	s.queueCond = sync.NewCond(&s.mu)
	s.started = s.now()
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SubmitOptions carries per-request admission context that is not part
// of the spec's identity: the submitting tenant (the X-Scrubd-Tenant
// header on the HTTP surface; "" is the anonymous tenant).
type SubmitOptions struct {
	Tenant string
}

// Submit is SubmitWith under the anonymous tenant.
func (s *Service) Submit(spec Spec) (Submission, error) {
	return s.SubmitWith(spec, SubmitOptions{})
}

// SubmitWith runs the full admission pipeline for one spec: normalise
// and fingerprint, reject already-dead deadlines, then answer from the
// cache, attach to an identical in-flight job, or — shed state and
// queue capacity permitting — enqueue a fresh one, in that order. The
// tenant's token bucket is charged only once the request is otherwise
// admissible, so a submitter retrying against a full or shedding queue
// does not burn its rate budget on refusals. Rejections map to typed
// errors (ErrRateLimited, ErrDeadlineExpired, ErrShedding,
// ErrQueueFull, ErrClosed) that the HTTP layer turns into statuses.
func (s *Service) SubmitWith(spec Spec, opts SubmitOptions) (Submission, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return Submission{}, err
	}
	fp := norm.Fingerprint()

	s.mu.Lock()
	defer s.mu.Unlock()
	sub, j, err := s.admitLocked(norm, fp, opts, 0)
	if err != nil || j == nil {
		return sub, err
	}
	// Write-ahead: the submission record must be durable before the job
	// is acknowledged, or a crash after the 202 would silently drop it.
	if err := s.journalSubmitted(j); err != nil {
		return Submission{}, err
	}
	s.enqueueLocked(j)
	return Submission{ID: j.id, Fingerprint: fp, State: StateQueued}, nil
}

// admitLocked decides one spec's fate. It returns either a terminal
// Submission (cache hit or dedup attach; job == nil), or a freshly
// minted job the caller must journal and enqueue, or an admission error.
// pending is how many sibling jobs the caller has admitted but not yet
// enqueued (the batch path), counted against watermarks and capacity.
// Caller holds s.mu.
func (s *Service) admitLocked(norm Spec, fp string, opts SubmitOptions, pending int) (Submission, *job, error) {
	if s.closed {
		return Submission{}, nil, ErrClosed
	}
	class := norm.Class()
	deadline, hasDeadline, err := norm.DeadlineTime()
	if err != nil {
		return Submission{}, nil, err
	}
	if hasDeadline && !deadline.After(s.now()) {
		s.counters.deadlineRejected.Add(1)
		return Submission{}, nil, fmt.Errorf("%w (deadline_at %s)", ErrDeadlineExpired, norm.DeadlineAt)
	}
	state := s.shedStateFor(pending)
	if !state.AdmitsCheap(class) {
		s.countShed(class)
		return Submission{}, nil, &ShedError{State: state, Class: class}
	}
	// takeToken charges the tenant's bucket; it runs at the mouth of each
	// admitted path, after every other refusal check, so a request the
	// service would refuse anyway (shed, queue full, dead deadline) never
	// burns rate budget — a tenant retrying against a saturated queue can
	// still get work in the moment capacity returns.
	takeToken := func() error {
		if s.tenants == nil {
			return nil
		}
		if ok, wait := s.tenants.take(opts.Tenant, s.now()); !ok {
			s.counters.rateLimited.Add(1)
			return &RateLimitError{Tenant: opts.Tenant, Wait: wait}
		}
		return nil
	}
	if data, ok := s.cache.get(fp); ok {
		if err := takeToken(); err != nil {
			return Submission{}, nil, err
		}
		j := &job{
			id: s.newID(), fingerprint: fp, spec: norm,
			state: StateDone, cacheHit: true, heapIdx: -1,
			class: class, tenant: opts.Tenant,
			submitted: s.now(), finished: s.now(), result: data,
		}
		s.jobs[j.id] = j
		s.counters.accepted.Add(1)
		s.counters.cacheHits.Add(1)
		return Submission{ID: j.id, Fingerprint: fp, State: StateDone, CacheHit: true}, nil, nil
	}
	if cur, ok := s.inflight[fp]; ok {
		if err := takeToken(); err != nil {
			return Submission{}, nil, err
		}
		s.attachLocked(cur, class, deadline, hasDeadline)
		return Submission{ID: cur.id, Fingerprint: fp, State: cur.state, Deduped: true}, nil, nil
	}
	if !state.AdmitsFresh(class) {
		s.countShed(class)
		return Submission{}, nil, &ShedError{State: state, Class: class}
	}
	// Submit, SubmitBatch, and Recover all enqueue under s.mu, so this
	// occupancy check cannot race another producer.
	if s.pq.len()+pending >= s.queueCap {
		s.counters.rejected.Add(1)
		return Submission{}, nil, fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.queueCap)
	}
	if err := takeToken(); err != nil {
		return Submission{}, nil, err
	}
	s.arrival++
	j := &job{
		id: s.newID(), fingerprint: fp, spec: norm,
		state: StateQueued, submitted: s.now(), heapIdx: -1,
		class: class, tenant: opts.Tenant, arrival: s.arrival,
	}
	if hasDeadline {
		j.deadline = deadline
	}
	return Submission{}, j, nil
}

// attachLocked dedups a submission onto an identical queued or running
// job, escalating the queued job's scheduling position when the new
// submission outranks it: the class rises to the higher of the two and
// the deadline tightens to the earlier — whoever is waiting hardest sets
// the pace for the shared run. Caller holds s.mu.
func (s *Service) attachLocked(cur *job, class Class, deadline time.Time, hasDeadline bool) {
	cur.attached++
	s.counters.accepted.Add(1)
	s.counters.deduped.Add(1)
	if cur.state != StateQueued {
		return
	}
	escalate := class > cur.class
	tighten := hasDeadline && (cur.deadline.IsZero() || deadline.Before(cur.deadline))
	if !escalate && !tighten {
		return
	}
	inHeap := s.pq.remove(cur)
	if escalate {
		cur.class = class
		s.counters.escalated.Add(1)
	}
	if tighten {
		cur.deadline = deadline
	}
	if inHeap {
		s.pq.push(cur)
	}
}

// shedStateFor computes the shed state as if pending extra jobs were
// already enqueued. Caller holds s.mu.
func (s *Service) shedStateFor(pending int) ShedState {
	if s.shed == nil {
		return ShedHealthy
	}
	return s.shed.state(s.pq.len()+pending, s.queueCap)
}

// countShed attributes a shed rejection to its class.
func (s *Service) countShed(class Class) {
	switch class {
	case ClassInteractive:
		s.counters.shedInteractive.Add(1)
	case ClassNormal:
		s.counters.shedNormal.Add(1)
	default:
		s.counters.shedBatch.Add(1)
	}
}

// enqueueLocked publishes an admitted, journaled job to the queue and
// wakes a worker. Caller holds s.mu.
func (s *Service) enqueueLocked(j *job) {
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	s.jobs[j.id] = j
	s.inflight[j.fingerprint] = j
	s.pq.push(j)
	s.counters.accepted.Add(1)
	s.counters.cacheMisses.Add(1)
	s.queueCond.Signal()
}

// BatchResult is one spec's outcome within a batch submission: either a
// Submission or the admission error that refused it.
type BatchResult struct {
	Submission Submission
	Err        error
}

// SubmitBatch admits many specs in one pass under one lock hold and —
// the point — one journal group commit: every spec that needs fresh work
// is written ahead in a single AppendBatch (one fsync for the whole
// batch, not one per job) before any of them is enqueued. Specs are
// otherwise admitted exactly as SubmitWith would, in order, including
// dedup against earlier specs of the same batch. A journal failure
// refuses every job riding on that commit — the fresh jobs and every
// sibling deduped onto one — while cache hits and dedups against
// already-journaled in-flight jobs stand.
func (s *Service) SubmitBatch(specs []Spec, opts SubmitOptions) []BatchResult {
	results := make([]BatchResult, len(specs))
	norms := make([]Spec, len(specs))
	fps := make([]string, len(specs))
	for i, sp := range specs {
		n, err := sp.Normalized()
		if err != nil {
			results[i] = BatchResult{Err: err}
			continue
		}
		norms[i], fps[i] = n, n.Fingerprint()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.batchRequests.Add(1)
	s.counters.batchSpecs.Add(int64(len(specs)))
	var fresh []*job
	var freshIdx []int
	pending := make(map[string]*job)
	// Sibling dedups share their pending job's fate: they are recorded
	// here (result indices per fingerprint) and counted only after the
	// group commit succeeds, so a journal failure can take them back.
	sibIdx := make(map[string][]int)
	var sibDeduped, sibEscalated int64
	for i := range specs {
		if results[i].Err != nil {
			continue
		}
		if cur, ok := pending[fps[i]]; ok {
			// Dedup against a sibling admitted earlier in this batch: the
			// job exists but is not yet in the heap, so escalation just
			// updates its fields.
			cur.attached++
			sibDeduped++
			class := norms[i].Class()
			if class > cur.class {
				cur.class = class
				sibEscalated++
			}
			if dl, ok, _ := norms[i].DeadlineTime(); ok && (cur.deadline.IsZero() || dl.Before(cur.deadline)) {
				cur.deadline = dl
			}
			sibIdx[fps[i]] = append(sibIdx[fps[i]], i)
			results[i] = BatchResult{Submission: Submission{
				ID: cur.id, Fingerprint: cur.fingerprint, State: StateQueued, Deduped: true,
			}}
			continue
		}
		sub, j, err := s.admitLocked(norms[i], fps[i], opts, len(fresh))
		if err != nil {
			results[i] = BatchResult{Err: err}
			continue
		}
		if j == nil {
			results[i] = BatchResult{Submission: sub}
			continue
		}
		pending[fps[i]] = j
		fresh = append(fresh, j)
		freshIdx = append(freshIdx, i)
		results[i] = BatchResult{Submission: Submission{ID: j.id, Fingerprint: j.fingerprint, State: StateQueued}}
	}
	if len(fresh) == 0 {
		return results
	}
	if err := s.journalSubmittedBatch(fresh); err != nil {
		// The write-ahead barrier failed for the whole group: none of
		// these jobs may be acknowledged — including the siblings deduped
		// onto them, whose shared job is never journaled or enqueued.
		for _, i := range freshIdx {
			results[i] = BatchResult{Err: err}
		}
		for _, j := range fresh {
			for _, i := range sibIdx[j.fingerprint] {
				results[i] = BatchResult{Err: err}
			}
		}
		return results
	}
	s.counters.accepted.Add(sibDeduped)
	s.counters.deduped.Add(sibDeduped)
	s.counters.escalated.Add(sibEscalated)
	for _, j := range fresh {
		s.enqueueLocked(j)
	}
	return results
}

// journalSubmitted write-aheads a fresh job's acceptance. A nil journal
// is a no-op; an append failure rejects the submission (the daemon must
// not acknowledge work it cannot make durable).
func (s *Service) journalSubmitted(j *job) error {
	if s.journal == nil {
		return nil
	}
	specJSON, err := json.Marshal(j.spec)
	if err != nil {
		return fmt.Errorf("service: encode spec for journal: %w", err)
	}
	return s.journal.Append(journal.Record{
		Type: journal.TypeSubmitted, Job: j.id,
		Fingerprint: j.fingerprint, Spec: specJSON,
	})
}

// journalSubmittedBatch write-aheads a whole batch's acceptance as one
// group commit: N records, one fsync.
func (s *Service) journalSubmittedBatch(jobs []*job) error {
	if s.journal == nil {
		return nil
	}
	recs := make([]journal.Record, 0, len(jobs))
	for _, j := range jobs {
		specJSON, err := json.Marshal(j.spec)
		if err != nil {
			return fmt.Errorf("service: encode spec for journal: %w", err)
		}
		recs = append(recs, journal.Record{
			Type: journal.TypeSubmitted, Job: j.id,
			Fingerprint: j.fingerprint, Spec: specJSON,
		})
	}
	return s.journal.AppendBatch(recs)
}

// journalEvent appends a lifecycle record best-effort: past the
// submission barrier, a failed append must not fail the job — replay is
// idempotent, so the worst case is re-executing a deterministic job.
func (s *Service) journalEvent(rec journal.Record) {
	if s.journal == nil {
		return
	}
	_ = s.journal.Append(rec)
}

// newID mints a monotonically increasing job ID. Caller holds s.mu.
func (s *Service) newID() string {
	s.nextID++
	return fmt.Sprintf("job-%06d", s.nextID)
}

// dequeue blocks until the priority queue yields a runnable job or the
// service shuts down (then it drains the backlog before reporting done).
// Jobs whose deadline passed while they waited are reaped here — failed
// without ever running, with a terminal journal record — rather than
// executed uselessly past their useful-by time.
func (s *Service) dequeue() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		j, aged := s.pq.pick(s.now(), s.aging)
		if j == nil {
			if s.closed {
				return nil, false
			}
			s.queueCond.Wait()
			continue
		}
		if j.state != StateQueued { // belt: cancellation removes eagerly
			continue
		}
		if !j.deadline.IsZero() && !j.deadline.After(s.now()) {
			j.state = StateFailed
			j.finished = s.now()
			j.err = fmt.Sprintf("%v (reaped from queue)", ErrDeadlineExpired)
			if j.cancel != nil {
				// Release the job context's registration under baseCtx; a
				// reaped job never runs, so nothing else will.
				j.cancel()
			}
			if s.inflight[j.fingerprint] == j {
				delete(s.inflight, j.fingerprint)
			}
			s.counters.deadlineReaped.Add(1)
			s.counters.failed.Add(1)
			s.journalEvent(journal.Record{Type: journal.TypeFailed, Job: j.id, Error: j.err})
			continue
		}
		if aged {
			s.counters.agedServed.Add(1)
		}
		return j, true
	}
}

// worker drains the queue until it is closed.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.dequeue()
		if !ok {
			return
		}
		s.mu.Lock()
		if j.state != StateQueued { // cancelled between dequeue and here
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = s.now()
		spec := j.spec
		// A sharding runner (the cluster coordinator) reports shard
		// progress through the context; it lands in the job view.
		ctx := WithShardProgress(j.ctx, func(done, total int) {
			s.mu.Lock()
			j.shardsDone, j.shardsTotal = done, total
			s.mu.Unlock()
		})
		if s.journal != nil {
			ctx = WithShardLog(ctx, s.shardLogFor(j))
		}
		s.mu.Unlock()
		s.journalEvent(journal.Record{Type: journal.TypeStarted, Job: j.id})

		// Deadline propagation starts here: the spec's budget bounds the
		// whole execution, and (via the context) every shard RPC a
		// sharding runner issues downstream.
		cancelBudget := func() {}
		if spec.TimeoutSec > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutSec*float64(time.Second)))
			cancelBudget = cancel
		}

		s.counters.busyWorkers.Add(1)
		res, err := s.runContained(ctx, spec)
		s.counters.busyWorkers.Add(-1)
		cancelBudget()
		s.finish(j, res, err)
	}
}

// shardLogFor builds a job's durability hooks: plan and shard-done
// records append to the journal under the job's ID, and a recovered
// job's resume state rides along. Caller holds s.mu.
func (s *Service) shardLogFor(j *job) *ShardLog {
	id := j.id
	sl := &ShardLog{
		RecordPlan: func(plan []journal.ShardRange) {
			s.journalEvent(journal.Record{Type: journal.TypePlan, Job: id, Plan: plan})
		},
		RecordShard: func(rg journal.ShardRange, payload []byte) {
			s.journalEvent(journal.Record{Type: journal.TypeShardDone, Job: id, Shard: &rg, Payload: payload})
		},
	}
	if j.resume != nil {
		sl.Plan = j.resume.plan
		sl.Checkpoints = j.resume.checkpoints
	}
	return sl
}

// runContained invokes the runner with panic containment: a defective
// job fails; it does not take the daemon down.
func (s *Service) runContained(ctx context.Context, spec Spec) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("service: job panicked: %v", p)
		}
	}()
	return s.runner(ctx, spec)
}

// finish records a run's outcome and publishes it to the cache.
func (s *Service) finish(j *job, res *Result, err error) {
	var data []byte
	if err == nil {
		if res == nil {
			err = errors.New("service: runner returned no result")
		} else if data, err = json.Marshal(res); err != nil {
			err = fmt.Errorf("service: encode result: %w", err)
		}
	}

	s.mu.Lock()
	j.finished = s.now()
	if !j.started.IsZero() {
		s.counters.wallNanosDone.Add(int64(j.finished.Sub(j.started)))
	}
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	if j.state == StateCancelled {
		// Cancelled via Cancel while running; the outcome, even a
		// success that raced the cancellation, is discarded. Cancel
		// already journaled the terminal record.
		s.mu.Unlock()
		return
	}
	var rec journal.Record
	switch {
	case err == nil:
		j.state = StateDone
		j.result = data
		s.cache.add(j.fingerprint, data)
		s.counters.completed.Add(1)
		rec = journal.Record{Type: journal.TypeDone, Job: j.id, Payload: data}
	case j.ctx.Err() != nil:
		j.state = StateCancelled
		j.err = err.Error()
		s.counters.cancelled.Add(1)
		rec = journal.Record{Type: journal.TypeCancelled, Job: j.id, Error: j.err}
	default:
		j.state = StateFailed
		j.err = err.Error()
		s.counters.failed.Add(1)
		rec = journal.Record{Type: journal.TypeFailed, Job: j.id, Error: j.err}
	}
	s.mu.Unlock()
	// The terminal record is appended outside the lock: an fsync must
	// not stall Get/List/Submit. Replay tolerates its absence (the job
	// would simply re-run), so best-effort is sound here.
	s.journalEvent(rec)
}

// Cancel moves a queued or running job to cancelled. A queued job never
// runs; a running job's context is cancelled and the simulator returns
// within a substep. Cancelling a terminal job returns ErrNotRunning with
// the job's current view.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	if j.state.Terminal() {
		return s.viewLocked(j, false), ErrNotRunning
	}
	if j.state == StateQueued {
		j.finished = s.now()
		s.pq.remove(j)
	}
	j.state = StateCancelled
	j.err = "cancelled by request"
	if s.inflight[j.fingerprint] == j {
		delete(s.inflight, j.fingerprint)
	}
	if j.cancel != nil {
		j.cancel()
	}
	s.counters.cancelled.Add(1)
	// Journaled under s.mu deliberately: the cancelled record must beat
	// any later lifecycle append for this job, so a recovery that saw
	// this DELETE can never re-execute the job.
	s.journalEvent(journal.Record{Type: journal.TypeCancelled, Job: j.id, Error: j.err})
	return s.viewLocked(j, false), nil
}

// Recover replays a previous incarnation's journal into the service:
// terminal jobs are restored verbatim (done results re-seed the cache),
// incomplete jobs are re-enqueued under their original IDs with their
// shard plan and completed-shard checkpoints attached, and the ID
// counter resumes past every recovered ID. Because replica seeds derive
// from absolute indices, a recovered campaign's final result is
// byte-identical to an uninterrupted run.
//
// Call Recover after New and before serving traffic; it returns the
// number of jobs re-enqueued for execution.
func (s *Service) Recover(rec *journal.Recovery) (int, error) {
	if rec == nil {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	requeued := 0
	for _, js := range rec.Jobs {
		if n, ok := jobNum(js.ID); ok && n > s.nextID {
			s.nextID = n
		}
		if _, exists := s.jobs[js.ID]; exists {
			continue
		}
		j := &job{
			id:          js.ID,
			fingerprint: js.Fingerprint,
			recovered:   true,
			submitted:   s.now(),
			heapIdx:     -1,
		}
		if len(js.Spec) > 0 {
			// Best-effort: a terminal job's view survives without a spec.
			_ = json.Unmarshal(js.Spec, &j.spec)
		}
		switch js.State {
		case journal.TypeDone:
			j.state = StateDone
			j.finished = s.now()
			j.result = js.Result
			s.cache.add(j.fingerprint, j.result)
			s.counters.restored.Add(1)
		case journal.TypeFailed:
			j.state = StateFailed
			j.finished = s.now()
			j.err = js.Error
			s.counters.restored.Add(1)
		case journal.TypeCancelled:
			// A job cancelled before the crash recovers directly into
			// cancelled; it must never re-execute.
			j.state = StateCancelled
			j.finished = s.now()
			j.err = js.Error
			s.counters.restored.Add(1)
		default: // submitted or started: accepted work, owed a result
			var spec Spec
			if err := json.Unmarshal(js.Spec, &spec); err != nil {
				j.state = StateFailed
				j.finished = s.now()
				j.err = fmt.Sprintf("service: recovered spec unreadable: %v", err)
				break
			}
			norm, err := spec.Normalized()
			if err != nil {
				j.state = StateFailed
				j.finished = s.now()
				j.err = fmt.Sprintf("service: recovered spec no longer valid: %v", err)
				break
			}
			if s.pq.len() >= s.queueCap {
				j.state = StateFailed
				j.finished = s.now()
				j.err = "service: recovered job overflowed the queue"
				break
			}
			j.spec = norm
			j.state = StateQueued
			j.class = norm.Class()
			if dl, ok, _ := norm.DeadlineTime(); ok {
				j.deadline = dl
			}
			s.arrival++
			j.arrival = s.arrival
			j.heapIdx = -1
			if len(js.Plan) > 0 || len(js.Shards) > 0 {
				j.resume = &shardResume{plan: js.Plan, checkpoints: js.Shards}
			}
			j.ctx, j.cancel = context.WithCancel(s.baseCtx)
			s.pq.push(j)
			s.queueCond.Signal()
			if _, dup := s.inflight[j.fingerprint]; !dup {
				s.inflight[j.fingerprint] = j
			}
			s.counters.recovered.Add(1)
			requeued++
		}
		s.jobs[j.id] = j
	}
	return requeued, nil
}

// jobNum extracts the numeric suffix of a service-minted job ID.
func jobNum(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Get returns a job's view, including its result when done.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return s.viewLocked(j, true), nil
}

// List returns all jobs in submission order, without result payloads.
func (s *Service) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, s.viewLocked(j, false))
	}
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	return views
}

// viewLocked renders a job. Caller holds s.mu.
func (s *Service) viewLocked(j *job, includeResult bool) JobView {
	v := JobView{
		ID:          j.id,
		Fingerprint: j.fingerprint,
		State:       j.state,
		CacheHit:    j.cacheHit,
		Recovered:   j.recovered,
		Tenant:      j.tenant,
		Attached:    j.attached,
		SubmittedAt: j.submitted,
		ShardsDone:  j.shardsDone,
		ShardsTotal: j.shardsTotal,
		Error:       j.err,
	}
	spec := j.spec
	v.Spec = &spec
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		if !j.started.IsZero() {
			v.WallSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	if includeResult && j.state == StateDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

// QueueOccupancy reports the job queue's current depth and capacity —
// the inputs of the Retry-After back-pressure hint.
func (s *Service) QueueOccupancy() (occupied, capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pq.len(), s.queueCap
}

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration {
	return s.now().Sub(s.started)
}

// CacheIndex returns the fingerprints currently in the result cache,
// sorted. It is the node's contribution to cluster cache gossip: cheap
// to serve, and enough for a coordinator to know where a result lives.
func (s *Service) CacheIndex() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := s.cache.keys()
	sort.Strings(keys)
	return keys
}

// CachedResult returns the encoded result bytes for a fingerprint, if
// cached. The lookup promotes the entry, exactly like a local hit —
// a result other nodes keep asking for is a result worth keeping.
func (s *Service) CachedResult(fingerprint string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.get(fingerprint)
}

// shardProgressKey carries a ShardProgressFunc through a job's context.
type shardProgressKey struct{}

// ShardProgressFunc receives shard completion updates for a running job.
type ShardProgressFunc func(done, total int)

// WithShardProgress attaches a shard progress sink to ctx. The service
// installs one on every job context; a sharding runner reports through
// ReportShardProgress.
func WithShardProgress(ctx context.Context, fn ShardProgressFunc) context.Context {
	return context.WithValue(ctx, shardProgressKey{}, fn)
}

// ReportShardProgress publishes a job's shard progress to whatever sink
// the context carries. A no-op when the runner executes outside the
// service (tests, CLI).
func ReportShardProgress(ctx context.Context, done, total int) {
	if fn, ok := ctx.Value(shardProgressKey{}).(ShardProgressFunc); ok {
		fn(done, total)
	}
}

// Snapshot returns the operational counters plus queue/cache gauges.
func (s *Service) Snapshot() Snapshot {
	s.mu.Lock()
	cacheSize := s.cache.len()
	queueDepth := s.pq.len()
	queueInteractive := s.pq.classDepth(ClassInteractive)
	queueNormal := s.pq.classDepth(ClassNormal)
	queueBatch := s.pq.classDepth(ClassBatch)
	shedState := s.shedStateLocked()
	s.mu.Unlock()
	busy := int(s.counters.busyWorkers.Load())
	snap := Snapshot{
		JobsAccepted:     s.counters.accepted.Load(),
		JobsCompleted:    s.counters.completed.Load(),
		JobsFailed:       s.counters.failed.Load(),
		JobsCancelled:    s.counters.cancelled.Load(),
		JobsRejected:     s.counters.rejected.Load(),
		JobsRecovered:    s.counters.recovered.Load(),
		JobsRestored:     s.counters.restored.Load(),
		CacheHits:        s.counters.cacheHits.Load(),
		CacheMisses:      s.counters.cacheMisses.Load(),
		Deduped:          s.counters.deduped.Load(),
		CacheSize:        cacheSize,
		QueueDepth:       queueDepth,
		QueueCapacity:    s.queueCap,
		QueueInteractive: queueInteractive,
		QueueNormal:      queueNormal,
		QueueBatch:       queueBatch,
		AdmissionState:   shedState.String(),
		RateLimited:      s.counters.rateLimited.Load(),
		ShedBatch:        s.counters.shedBatch.Load(),
		ShedNormal:       s.counters.shedNormal.Load(),
		ShedInteractive:  s.counters.shedInteractive.Load(),
		DeadlineRejected: s.counters.deadlineRejected.Load(),
		DeadlineReaped:   s.counters.deadlineReaped.Load(),
		AgedServed:       s.counters.agedServed.Load(),
		Escalated:        s.counters.escalated.Load(),
		BatchRequests:    s.counters.batchRequests.Load(),
		BatchSpecs:       s.counters.batchSpecs.Load(),
		Workers:          s.workers,
		BusyWorkers:      busy,
		JobWallSeconds:   time.Duration(s.counters.wallNanosDone.Load()).Seconds(),
		Engine:           engine.Stats(),
	}
	if s.workers > 0 {
		snap.WorkerUtilization = float64(busy) / float64(s.workers)
	}
	return snap
}

// Shutdown drains the service: no new submissions are accepted, queued
// and running jobs are given until ctx expires to finish, then remaining
// work is force-cancelled. It returns ctx's error when the drain was cut
// short, nil on a clean drain. Shutdown is idempotent only in its
// refusal of new work; call it once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("service: already shut down")
	}
	s.closed = true
	// Wake every parked worker: they drain the remaining backlog and then
	// observe closed and exit.
	s.queueCond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseStop() // force-cancel every remaining job context
		<-done
		err = ctx.Err()
	}
	s.baseStop()
	return err
}
