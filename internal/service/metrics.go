package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/engine"
)

// counters is the service's hot-path instrumentation: plain atomics so
// submission and worker paths never contend on the service mutex just to
// count.
type counters struct {
	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	rejected  atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	deduped     atomic.Int64

	// recovered counts journaled jobs re-enqueued at boot; restored
	// counts terminal jobs brought back verbatim.
	recovered atomic.Int64
	restored  atomic.Int64

	busyWorkers   atomic.Int64
	wallNanosDone atomic.Int64

	// Admission-control counters: token-bucket refusals, shed refusals by
	// class, deadline rejections (at admission) and reaps (from the
	// queue), aging rescues, dedup escalations, and batch-endpoint usage.
	rateLimited      atomic.Int64
	shedBatch        atomic.Int64
	shedNormal       atomic.Int64
	shedInteractive  atomic.Int64
	deadlineRejected atomic.Int64
	deadlineReaped   atomic.Int64
	agedServed       atomic.Int64
	escalated        atomic.Int64
	batchRequests    atomic.Int64
	batchSpecs       atomic.Int64
}

// Snapshot is a point-in-time view of the service's operational state,
// JSON-encodable and renderable as Prometheus text.
type Snapshot struct {
	// Jobs accepted into the system (including cache hits and dedups).
	JobsAccepted int64 `json:"jobs_accepted"`
	// Jobs whose simulation completed successfully.
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	// Jobs refused because the queue was full.
	JobsRejected int64 `json:"jobs_rejected"`

	// CacheHits counts submissions answered from the result cache;
	// CacheMisses counts submissions that enqueued a fresh run; Deduped
	// counts submissions attached to an identical in-flight job.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Deduped     int64 `json:"deduped"`
	CacheSize   int   `json:"cache_size"`

	// JobsRecovered counts incomplete journaled jobs re-enqueued at
	// boot; JobsRestored counts terminal jobs restored verbatim.
	JobsRecovered int64 `json:"jobs_recovered"`
	JobsRestored  int64 `json:"jobs_restored"`

	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	BusyWorkers   int `json:"busy_workers"`

	// Per-class queue backlogs and the admission-control state.
	QueueInteractive int `json:"queue_interactive"`
	QueueNormal      int `json:"queue_normal"`
	QueueBatch       int `json:"queue_batch"`
	// AdmissionState is the shed ladder position ("healthy", "shed-batch",
	// "shed-normal", "interactive-only").
	AdmissionState string `json:"admission_state"`

	// Admission-control counters.
	RateLimited      int64 `json:"rate_limited"`
	ShedBatch        int64 `json:"shed_batch"`
	ShedNormal       int64 `json:"shed_normal"`
	ShedInteractive  int64 `json:"shed_interactive"`
	DeadlineRejected int64 `json:"deadline_rejected"`
	DeadlineReaped   int64 `json:"deadline_reaped"`
	AgedServed       int64 `json:"aged_served"`
	Escalated        int64 `json:"escalated"`
	BatchRequests    int64 `json:"batch_requests"`
	BatchSpecs       int64 `json:"batch_specs"`

	// JobWallSeconds accumulates wall time across finished executions.
	JobWallSeconds float64 `json:"job_wall_seconds"`
	// WorkerUtilization is BusyWorkers / Workers.
	WorkerUtilization float64 `json:"worker_utilization"`

	// Engine is the process-wide execution-engine totals: simulation work
	// (visits, sweeps, probes, decodes, write-backs, repairs) aggregated
	// across every run this daemon executed, including cluster shards.
	Engine engine.Totals `json:"engine"`
}

// admissionStateNum maps a shed-state wire name onto its ladder position
// for the scrubd_admission_state gauge.
func admissionStateNum(state string) int {
	for n := ShedHealthy; n <= ShedInteractiveOnly; n++ {
		if n.String() == state {
			return int(n)
		}
	}
	return 0
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format under the scrubd_ namespace.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type metric struct {
		name, help, typ string
		value           float64
	}
	metrics := []metric{
		{"scrubd_jobs_accepted_total", "Jobs accepted (including cache hits and dedups).", "counter", float64(s.JobsAccepted)},
		{"scrubd_jobs_completed_total", "Jobs whose simulation completed successfully.", "counter", float64(s.JobsCompleted)},
		{"scrubd_jobs_failed_total", "Jobs that failed.", "counter", float64(s.JobsFailed)},
		{"scrubd_jobs_cancelled_total", "Jobs cancelled before completion.", "counter", float64(s.JobsCancelled)},
		{"scrubd_jobs_rejected_total", "Submissions refused because the queue was full.", "counter", float64(s.JobsRejected)},
		{"scrubd_cache_hits_total", "Submissions answered from the result cache.", "counter", float64(s.CacheHits)},
		{"scrubd_cache_misses_total", "Submissions that enqueued a fresh run.", "counter", float64(s.CacheMisses)},
		{"scrubd_jobs_deduped_total", "Submissions attached to an identical in-flight job.", "counter", float64(s.Deduped)},
		{"scrubd_recovered_jobs_total", "Incomplete journaled jobs re-enqueued at boot.", "counter", float64(s.JobsRecovered)},
		{"scrubd_restored_jobs_total", "Terminal journaled jobs restored verbatim at boot.", "counter", float64(s.JobsRestored)},
		{"scrubd_cache_entries", "Results currently cached.", "gauge", float64(s.CacheSize)},
		{"scrubd_queue_depth", "Jobs waiting in the queue.", "gauge", float64(s.QueueDepth)},
		{"scrubd_queue_capacity", "Queue capacity.", "gauge", float64(s.QueueCapacity)},
		{"scrubd_queue_depth_interactive", "Interactive-class jobs waiting in the queue.", "gauge", float64(s.QueueInteractive)},
		{"scrubd_queue_depth_normal", "Normal-class jobs waiting in the queue.", "gauge", float64(s.QueueNormal)},
		{"scrubd_queue_depth_batch", "Batch-class jobs waiting in the queue.", "gauge", float64(s.QueueBatch)},
		{"scrubd_admission_state", "Shed ladder position (0 healthy, 1 shed-batch, 2 shed-normal, 3 interactive-only).", "gauge", float64(admissionStateNum(s.AdmissionState))},
		{"scrubd_rate_limited_total", "Submissions refused by per-tenant token buckets.", "counter", float64(s.RateLimited)},
		{"scrubd_shed_batch_total", "Batch-class submissions refused by load shedding.", "counter", float64(s.ShedBatch)},
		{"scrubd_shed_normal_total", "Normal-class submissions refused by load shedding.", "counter", float64(s.ShedNormal)},
		{"scrubd_shed_interactive_total", "Interactive-class submissions refused by load shedding.", "counter", float64(s.ShedInteractive)},
		{"scrubd_deadline_rejected_total", "Submissions refused because their deadline had already expired.", "counter", float64(s.DeadlineRejected)},
		{"scrubd_deadline_reaped_total", "Queued jobs failed because their deadline expired while waiting.", "counter", float64(s.DeadlineReaped)},
		{"scrubd_aged_served_total", "Jobs served by the starvation-avoidance aging path.", "counter", float64(s.AgedServed)},
		{"scrubd_dedup_escalations_total", "Queued jobs rescheduled upward by a higher-priority duplicate.", "counter", float64(s.Escalated)},
		{"scrubd_batch_requests_total", "Batch submission requests handled.", "counter", float64(s.BatchRequests)},
		{"scrubd_batch_specs_total", "Specs received across batch submission requests.", "counter", float64(s.BatchSpecs)},
		{"scrubd_workers", "Worker pool size.", "gauge", float64(s.Workers)},
		{"scrubd_workers_busy", "Workers currently executing a job.", "gauge", float64(s.BusyWorkers)},
		{"scrubd_job_wall_seconds_total", "Wall time accumulated across finished executions.", "counter", s.JobWallSeconds},
		{"scrubd_engine_runs_total", "Simulation runs completed by the execution engine.", "counter", float64(s.Engine.Runs)},
		{"scrubd_engine_canceled_runs_total", "Engine runs ended by context cancellation.", "counter", float64(s.Engine.CanceledRuns)},
		{"scrubd_engine_visits_total", "Scrub visits performed across completed runs.", "counter", float64(s.Engine.Visits)},
		{"scrubd_engine_sweeps_total", "Scrub sweeps performed across completed runs.", "counter", float64(s.Engine.Sweeps)},
		{"scrubd_engine_probes_total", "Lightweight CRC probes across completed runs.", "counter", float64(s.Engine.Probes)},
		{"scrubd_engine_decodes_total", "Full ECC decodes across completed runs.", "counter", float64(s.Engine.Decodes)},
		{"scrubd_engine_write_backs_total", "Policy write-backs across completed runs.", "counter", float64(s.Engine.WriteBacks)},
		{"scrubd_engine_repairs_total", "UE repair writes across completed runs.", "counter", float64(s.Engine.Repairs)},
		{"scrubd_engine_demand_writes_total", "Demand writes across completed runs.", "counter", float64(s.Engine.DemandWrites)},
		{"scrubd_engine_ues_total", "Uncorrectable errors across completed runs.", "counter", float64(s.Engine.UEs)},
		{"scrubd_engine_sim_seconds_total", "Simulated seconds across completed runs.", "counter", s.Engine.SimSeconds},
		{"scrubd_engine_ondie_corrected_bits_total", "Raw error bits silently corrected by on-die ECC across completed runs.", "counter", float64(s.Engine.OnDieCorrectedBits)},
		{"scrubd_engine_profile_rounds_total", "Active error-profiling rounds across completed runs.", "counter", float64(s.Engine.ProfileRounds)},
		{"scrubd_engine_profile_reads_total", "Line reads charged to active profiling across completed runs.", "counter", float64(s.Engine.ProfileReads)},
		{"scrubd_engine_at_risk_lines", "At-risk lines held by profiled policies at end of their runs.", "gauge", float64(s.Engine.AtRiskLines)},
		{"scrubd_engine_at_risk_visits_total", "Patrol visits redirected toward at-risk lines across completed runs.", "counter", float64(s.Engine.AtRiskVisits)},
	}
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}
