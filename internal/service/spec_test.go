package service

import (
	"strings"
	"testing"
)

// tinyGeometry keeps test simulations fast (128 lines).
func tinyGeometry() *GeometrySpec {
	return &GeometrySpec{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
		RowsPerBank: 8, LinesPerRow: 8, LineBytes: 64,
	}
}

// tinySpec is a valid, fast spec; seed distinguishes instances.
func tinySpec(seed uint64) Spec {
	return Spec{
		Mechanism:  "basic",
		Workload:   "db-oltp",
		HorizonSec: 20000,
		Seed:       seed,
		Geometry:   tinyGeometry(),
	}
}

func mustNormalize(t *testing.T, s Spec) Spec {
	t.Helper()
	n, err := s.Normalized()
	if err != nil {
		t.Fatalf("Normalized(%+v): %v", s, err)
	}
	return n
}

func TestNormalizedFillsDefaults(t *testing.T) {
	n := mustNormalize(t, Spec{Workload: "db-oltp"})
	if n.Mechanism != "combined" || n.Seed != 1 || n.Replicas != 1 {
		t.Errorf("defaults not materialised: %+v", n)
	}
	if n.HorizonSec == 0 || n.RiskTarget == 0 || n.Geometry == nil {
		t.Errorf("system defaults not materialised: %+v", n)
	}
}

func TestFingerprintExplicitDefaultsEqualOmitted(t *testing.T) {
	minimal := mustNormalize(t, Spec{Workload: "db-oltp"})
	explicit := mustNormalize(t, Spec{
		Mechanism: "combined", Workload: "db-oltp",
		Seed: 1, Replicas: 1, HorizonSec: 259200, RiskTarget: 1e-4,
	})
	if minimal.Fingerprint() != explicit.Fingerprint() {
		t.Error("spelling out defaults changed the fingerprint")
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	a := mustNormalize(t, tinySpec(7))
	b := mustNormalize(t, tinySpec(7))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical specs fingerprint differently")
	}
}

func TestFingerprintSensitiveToEveryField(t *testing.T) {
	base := mustNormalize(t, tinySpec(1)).Fingerprint()
	mutations := map[string]func(*Spec){
		"mechanism":   func(s *Spec) { s.Mechanism = "strong-ecc" },
		"scheme":      func(s *Spec) { s.Scheme = "BCH-4" },
		"policy":      func(s *Spec) { s.Policy = "threshold-3" },
		"interval":    func(s *Spec) { s.IntervalSec = 1234 },
		"workload":    func(s *Spec) { s.Workload = "kv-store" },
		"horizon":     func(s *Spec) { s.HorizonSec = 30000 },
		"seed":        func(s *Spec) { s.Seed = 2 },
		"replicas":    func(s *Spec) { s.Replicas = 2 },
		"aged":        func(s *Spec) { s.AgedWrites = 1000 },
		"substeps":    func(s *Spec) { s.Substeps = 4 },
		"risk_target": func(s *Spec) { s.RiskTarget = 1e-3 },
		"geometry":    func(s *Spec) { s.Geometry.RowsPerBank = 16 },
		"fault":       func(s *Spec) { s.Fault = &FaultSpec{SweepSkipRate: 0.1} },
	}
	for name, mutate := range mutations {
		s := tinySpec(1)
		s.Geometry = tinyGeometry() // fresh pointer per mutation
		mutate(&s)
		n, err := s.Normalized()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n.Fingerprint() == base {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

func TestNormalizedDropsAllZeroFault(t *testing.T) {
	s := tinySpec(1)
	s.Fault = &FaultSpec{}
	n := mustNormalize(t, s)
	if n.Fault != nil {
		t.Error("all-zero fault plan survived normalisation")
	}
	if n.Fingerprint() != mustNormalize(t, tinySpec(1)).Fingerprint() {
		t.Error("all-zero fault plan changed the fingerprint")
	}
}

func TestNormalizedRejects(t *testing.T) {
	cases := map[string]Spec{
		"no workload":      {Mechanism: "basic"},
		"unknown workload": {Workload: "nope"},
		"unknown mech":     {Workload: "db-oltp", Mechanism: "nope"},
		"unknown scheme":   {Workload: "db-oltp", Scheme: "XYZ-1"},
		"unknown policy":   {Workload: "db-oltp", Policy: "nope"},
		"neg interval":     {Workload: "db-oltp", IntervalSec: -1},
		"replicas too big": {Workload: "db-oltp", Replicas: MaxReplicas + 1},
		"neg replicas":     {Workload: "db-oltp", Replicas: -1},
		"neg fault rate":   {Workload: "db-oltp", Fault: &FaultSpec{SweepSkipRate: -0.5}},
		"bad geometry":     {Workload: "db-oltp", Geometry: &GeometrySpec{Channels: 1}},
	}
	for name, s := range cases {
		if _, err := s.Normalized(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildAppliesOverrides(t *testing.T) {
	s := mustNormalize(t, Spec{
		Workload: "kv-store", Mechanism: "basic",
		Scheme: "BCH-4", Policy: "threshold-3", IntervalSec: 500,
		HorizonSec: 20000, Geometry: tinyGeometry(),
	})
	sys, mech, w, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "kv-store" {
		t.Errorf("workload = %q", w.Name)
	}
	if mech.Scheme.Name() != "BCH-4" || mech.Policy.Name() != "threshold-3" {
		t.Errorf("overrides not applied: scheme %q policy %q", mech.Scheme.Name(), mech.Policy.Name())
	}
	if mech.Interval != 500 {
		t.Errorf("interval = %v", mech.Interval)
	}
	if sys.Geometry.TotalLines() != 128 {
		t.Errorf("lines = %d", sys.Geometry.TotalLines())
	}
	if !strings.Contains(mech.Name, "BCH-4") {
		t.Errorf("mechanism name %q", mech.Name)
	}
}
