package service

import (
	"net/http"
	"testing"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		occupied, capacity, want int
	}{
		{0, 10, 1},           // empty queue → minimum backoff
		{5, 10, 3},           // half full → midpoint
		{10, 10, 5},          // full → maximum backoff
		{15, 10, 5},          // over-occupied clamps to max
		{-3, 10, 1},          // negative occupancy clamps to min
		{4, 0, 1},            // unknown capacity → minimum
		{4, -1, 1},           // nonsense capacity → minimum
		{1, 1000000, 1},      // nearly empty large queue
		{999999, 1000000, 4}, // nearly full but not at capacity
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.occupied, c.capacity); got != c.want {
			t.Errorf("RetryAfterSeconds(%d, %d) = %d, want %d",
				c.occupied, c.capacity, got, c.want)
		}
	}
}

func TestSetRetryAfter(t *testing.T) {
	h := make(http.Header)
	SetRetryAfter(h, 10, 10)
	if got := h.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want \"5\"", got)
	}
}
