package service

import (
	"context"
	"encoding/json"

	"repro/internal/journal"
)

// ShardLog carries a job's durability hooks and recovered resume state
// through its context to a sharding runner (the cluster coordinator).
// The service installs one on every journaled job; runners that do not
// shard simply never touch it.
type ShardLog struct {
	// RecordPlan persists the shard plan the runner chose for this job,
	// so a restart can resume under the identical split. May be nil.
	RecordPlan func(plan []journal.ShardRange)
	// RecordShard persists one completed shard's wire payload — the
	// checkpoint a restart resumes from. May be nil.
	RecordShard func(rg journal.ShardRange, payload []byte)

	// Plan is the previous incarnation's journaled shard plan (nil for a
	// fresh job). A resuming runner must reuse it: re-planning under a
	// different fleet size would mismatch the checkpoints below.
	Plan []journal.ShardRange
	// Checkpoints maps completed shard ranges to their journaled wire
	// payloads. The runner merges these instead of re-executing.
	Checkpoints map[journal.ShardRange]json.RawMessage
}

// shardLogKey carries a *ShardLog through a job's context.
type shardLogKey struct{}

// WithShardLog attaches a shard durability log to ctx.
func WithShardLog(ctx context.Context, sl *ShardLog) context.Context {
	return context.WithValue(ctx, shardLogKey{}, sl)
}

// ShardLogFrom returns the context's shard log, or nil when the job is
// not journaled (tests, CLI, journal-less daemons).
func ShardLogFrom(ctx context.Context) *ShardLog {
	sl, _ := ctx.Value(shardLogKey{}).(*ShardLog)
	return sl
}
