package service

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
)

// EnergyMetrics is the wire form of an energy ledger, in picojoules.
type EnergyMetrics struct {
	ReadPJ   float64 `json:"read_pj"`
	DecodePJ float64 `json:"decode_pj"`
	DetectPJ float64 `json:"detect_pj"`
	WritePJ  float64 `json:"write_pj"`
	TotalPJ  float64 `json:"total_pj"`
}

// FaultMetrics is the wire form of the injected-fault counters.
type FaultMetrics struct {
	ReadFaultVisits   int64   `json:"read_fault_visits"`
	PhantomBits       int64   `json:"phantom_bits"`
	SweepsInterrupted int64   `json:"sweeps_interrupted"`
	LinesSkipped      int64   `json:"lines_skipped"`
	ProbeFalseCleans  int64   `json:"probe_false_cleans"`
	StuckCheckLines   int64   `json:"stuck_check_lines"`
	StuckDecodes      int64   `json:"stuck_decodes"`
	Stalls            int64   `json:"stalls"`
	StallSeconds      float64 `json:"stall_seconds"`
	InducedUEs        int64   `json:"induced_ues"`
}

func newFaultMetrics(c *fault.Counts) *FaultMetrics {
	if !c.Any() {
		return nil
	}
	return &FaultMetrics{
		ReadFaultVisits:   c.ReadFaultVisits,
		PhantomBits:       c.PhantomBits,
		SweepsInterrupted: c.SweepsInterrupted,
		LinesSkipped:      c.LinesSkipped,
		ProbeFalseCleans:  c.ProbeFalseCleans,
		StuckCheckLines:   c.StuckCheckLines,
		StuckDecodes:      c.StuckDecodes,
		Stalls:            c.Stalls,
		StallSeconds:      c.StallSeconds,
		InducedUEs:        c.InducedUEs,
	}
}

// OnDieMetrics is the wire form of the on-die ECC and active-profiling
// counters (present only when the run had the subsystem engaged).
type OnDieMetrics struct {
	CorrectedBits  int64 `json:"corrected_bits"`
	Overflows      int64 `json:"overflows"`
	WeakLines      int   `json:"weak_lines,omitempty"`
	CheckBitsSaved int64 `json:"check_bits_saved,omitempty"`

	ProfileRounds       int64 `json:"profile_rounds,omitempty"`
	ProfileReads        int64 `json:"profile_reads,omitempty"`
	ProfileDirectBits   int64 `json:"profile_direct_bits,omitempty"`
	ProfileIndirectBits int64 `json:"profile_indirect_bits,omitempty"`
	AtRiskLines         int   `json:"at_risk_lines,omitempty"`
	AtRiskVisits        int64 `json:"at_risk_visits,omitempty"`
}

func newOnDieMetrics(res *sim.Result) *OnDieMetrics {
	if res.OnDieCorrectedBits == 0 && res.OnDieOverflows == 0 &&
		res.OnDieWeakLines == 0 && res.OnDieCheckBitsSaved == 0 &&
		res.ProfileRounds == 0 && res.ProfileReads == 0 &&
		res.AtRiskLines == 0 && res.AtRiskVisits == 0 {
		return nil
	}
	return &OnDieMetrics{
		CorrectedBits:       res.OnDieCorrectedBits,
		Overflows:           res.OnDieOverflows,
		WeakLines:           res.OnDieWeakLines,
		CheckBitsSaved:      res.OnDieCheckBitsSaved,
		ProfileRounds:       res.ProfileRounds,
		ProfileReads:        res.ProfileReads,
		ProfileDirectBits:   res.ProfileDirectBits,
		ProfileIndirectBits: res.ProfileIndirectBits,
		AtRiskLines:         res.AtRiskLines,
		AtRiskVisits:        res.AtRiskVisits,
	}
}

// RunMetrics is the JSON encoding of one simulation run's headline
// metrics and counters — the result vocabulary shared by the scrubd API
// and `scrubsim -json`.
type RunMetrics struct {
	// ReplicaIndex is the run's position in a replicated job (0 for a
	// single run).
	ReplicaIndex int    `json:"replica_index"`
	Scheme       string `json:"scheme"`
	Policy       string `json:"policy"`
	Workload     string `json:"workload"`

	Lines      int     `json:"lines"`
	SimSeconds float64 `json:"sim_seconds"`
	Sweeps     int     `json:"sweeps"`

	UEs            int64   `json:"ues"`
	UERatePerGBDay float64 `json:"ue_rate_per_gb_day"`
	CorrectedBits  int64   `json:"corrected_bits"`
	MaxErrBits     int     `json:"max_err_bits"`

	ScrubVisits     int64 `json:"scrub_visits"`
	ScrubProbes     int64 `json:"scrub_probes"`
	ScrubDecodes    int64 `json:"scrub_decodes"`
	ScrubWriteBacks int64 `json:"scrub_write_backs"`
	RepairWrites    int64 `json:"repair_writes"`
	ScrubWrites     int64 `json:"scrub_writes"`

	DemandWrites     int64   `json:"demand_writes"`
	FinalIntervalSec float64 `json:"final_interval_sec"`

	// Wear at end of run.
	TotalLineWrites int64  `json:"total_line_writes"`
	MaxLineWrites   uint32 `json:"max_line_writes"`
	LinesWithDead   int    `json:"lines_with_dead"`
	DeadCells       int64  `json:"dead_cells"`
	LevelerMoves    int64  `json:"leveler_moves,omitempty"`

	// UE detection attribution: how many UEs software reads would have
	// surfaced first, and the latency spread between a line becoming
	// uncorrectable and the detecting sweep.
	UEsReadFirst  int64         `json:"ues_read_first"`
	UEDetectDelay stats.Summary `json:"ue_detect_delay"`

	ScrubEnergy EnergyMetrics `json:"scrub_energy"`

	Faults *FaultMetrics `json:"faults,omitempty"`
	OnDie  *OnDieMetrics `json:"ondie,omitempty"`
}

// NewRunMetrics encodes one simulation result.
func NewRunMetrics(res *sim.Result) RunMetrics {
	return RunMetrics{
		Scheme:           res.SchemeName,
		Policy:           res.PolicyName,
		Workload:         res.WorkloadName,
		Lines:            res.Lines,
		SimSeconds:       res.SimSeconds,
		Sweeps:           res.Sweeps,
		UEs:              res.UEs,
		UERatePerGBDay:   res.UERatePerGBDay(64),
		CorrectedBits:    res.CorrectedBits,
		MaxErrBits:       res.MaxErrBits,
		ScrubVisits:      res.ScrubVisits,
		ScrubProbes:      res.ScrubProbes,
		ScrubDecodes:     res.ScrubDecodes,
		ScrubWriteBacks:  res.ScrubWriteBacks,
		RepairWrites:     res.RepairWrites,
		ScrubWrites:      res.ScrubWrites(),
		DemandWrites:     res.DemandWrites,
		FinalIntervalSec: res.FinalInterval,
		TotalLineWrites:  res.TotalLineWrites,
		MaxLineWrites:    res.MaxLineWrites,
		LinesWithDead:    res.LinesWithDead,
		DeadCells:        res.DeadCells,
		LevelerMoves:     res.LevelerMoves,
		UEsReadFirst:     res.UEsReadFirst,
		UEDetectDelay:    res.UEDetectDelay,
		ScrubEnergy: EnergyMetrics{
			ReadPJ:   res.ScrubEnergy.ReadPJ,
			DecodePJ: res.ScrubEnergy.DecodePJ,
			DetectPJ: res.ScrubEnergy.DetectPJ,
			WritePJ:  res.ScrubEnergy.WritePJ,
			TotalPJ:  res.ScrubEnergy.Total(),
		},
		Faults: newFaultMetrics(&res.Faults),
		OnDie:  newOnDieMetrics(res),
	}
}

// ToSimResult reconstructs the simulation result a RunMetrics was
// encoded from, as far as the wire form carries it (everything the CLI
// report renders). It lets a client print the same report for a remote
// result that a local run would produce.
func (m RunMetrics) ToSimResult() *sim.Result {
	res := &sim.Result{
		SchemeName:      m.Scheme,
		PolicyName:      m.Policy,
		WorkloadName:    m.Workload,
		Lines:           m.Lines,
		SimSeconds:      m.SimSeconds,
		Sweeps:          m.Sweeps,
		UEs:             m.UEs,
		CorrectedBits:   m.CorrectedBits,
		MaxErrBits:      m.MaxErrBits,
		ScrubVisits:     m.ScrubVisits,
		ScrubProbes:     m.ScrubProbes,
		ScrubDecodes:    m.ScrubDecodes,
		ScrubWriteBacks: m.ScrubWriteBacks,
		RepairWrites:    m.RepairWrites,
		DemandWrites:    m.DemandWrites,
		FinalInterval:   m.FinalIntervalSec,
		TotalLineWrites: m.TotalLineWrites,
		MaxLineWrites:   m.MaxLineWrites,
		LinesWithDead:   m.LinesWithDead,
		DeadCells:       m.DeadCells,
		LevelerMoves:    m.LevelerMoves,
		UEsReadFirst:    m.UEsReadFirst,
		UEDetectDelay:   m.UEDetectDelay,
	}
	res.ScrubEnergy.ReadPJ = m.ScrubEnergy.ReadPJ
	res.ScrubEnergy.DecodePJ = m.ScrubEnergy.DecodePJ
	res.ScrubEnergy.DetectPJ = m.ScrubEnergy.DetectPJ
	res.ScrubEnergy.WritePJ = m.ScrubEnergy.WritePJ
	if f := m.Faults; f != nil {
		res.Faults = fault.Counts{
			ReadFaultVisits:   f.ReadFaultVisits,
			PhantomBits:       f.PhantomBits,
			SweepsInterrupted: f.SweepsInterrupted,
			LinesSkipped:      f.LinesSkipped,
			ProbeFalseCleans:  f.ProbeFalseCleans,
			StuckCheckLines:   f.StuckCheckLines,
			StuckDecodes:      f.StuckDecodes,
			Stalls:            f.Stalls,
			StallSeconds:      f.StallSeconds,
			InducedUEs:        f.InducedUEs,
		}
	}
	if o := m.OnDie; o != nil {
		res.OnDieCorrectedBits = o.CorrectedBits
		res.OnDieOverflows = o.Overflows
		res.OnDieWeakLines = o.WeakLines
		res.OnDieCheckBitsSaved = o.CheckBitsSaved
		res.ProfileRounds = o.ProfileRounds
		res.ProfileReads = o.ProfileReads
		res.ProfileDirectBits = o.ProfileDirectBits
		res.ProfileIndirectBits = o.ProfileIndirectBits
		res.AtRiskLines = o.AtRiskLines
		res.AtRiskVisits = o.AtRiskVisits
	}
	return res
}

// MetricSummary is the wire form of a replicated metric's spread.
type MetricSummary struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"std_err"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	N      int64   `json:"n"`
}

func newMetricSummary(rep *core.Replicated, s *stats.Summary) MetricSummary {
	return MetricSummary{
		Mean:   s.Mean(),
		StdErr: rep.AdjustedStdErr(s),
		Min:    s.Min(),
		Max:    s.Max(),
		N:      s.N(),
	}
}

// ReplicaSummary audits a job's Monte Carlo campaign.
type ReplicaSummary struct {
	Requested int `json:"requested"`
	Completed int `json:"completed"`
	Retried   int `json:"retried"`
	Failed    int `json:"failed"`
	// StdErrInflation is the widening factor partial campaigns apply to
	// standard errors (1 when nothing failed).
	StdErrInflation float64 `json:"std_err_inflation"`
}

// Result is a job's deterministic outcome: the normalised spec it was
// computed from, the campaign audit, the headline-metric spreads, and the
// surviving per-replica runs. Its canonical JSON encoding is what the
// result cache stores, so identical specs return identical bytes.
type Result struct {
	Fingerprint string         `json:"fingerprint"`
	Spec        Spec           `json:"spec"`
	Replicas    ReplicaSummary `json:"replicas"`

	UEs           MetricSummary `json:"ues"`
	ScrubWrites   MetricSummary `json:"scrub_writes"`
	ScrubEnergyPJ MetricSummary `json:"scrub_energy_pj"`

	// Runs holds the surviving replicas in replica order (failed replicas
	// are absent; ReplicaIndex preserves alignment).
	Runs []RunMetrics `json:"runs"`
}

// NewResult encodes a replicated campaign for a normalised spec.
func NewResult(spec Spec, rep *core.Replicated) *Result {
	out := &Result{
		Fingerprint: spec.Fingerprint(),
		// The embedded spec is the scheduling-free form: result bytes are
		// a pure function of the fingerprint, whatever class or deadline
		// the first submitter happened to use.
		Spec: spec.withoutScheduling(),
		Replicas: ReplicaSummary{
			Requested:       rep.Requested,
			Completed:       rep.Completed,
			Retried:         rep.Retried,
			Failed:          rep.Failed(),
			StdErrInflation: rep.StdErrInflation,
		},
		UEs:           newMetricSummary(rep, &rep.UEs),
		ScrubWrites:   newMetricSummary(rep, &rep.ScrubWrites),
		ScrubEnergyPJ: newMetricSummary(rep, &rep.ScrubEnergy),
	}
	for i, res := range rep.Results {
		if res == nil {
			continue
		}
		rm := NewRunMetrics(res)
		rm.ReplicaIndex = i
		out.Runs = append(out.Runs, rm)
	}
	return out
}
