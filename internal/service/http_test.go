package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer starts a Service (real DefaultRunner unless overridden)
// behind httptest.
func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		shutdown(t, s)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec Spec) (int, Submission) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub Submission
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submission: %v", err)
	}
	return resp.StatusCode, sub
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, JobView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return resp.StatusCode, v
}

// pollDone polls GET until the job is done, failing on any other
// terminal state.
func pollDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, v := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", id, code)
		}
		if v.State == StateDone {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s ended %q: %s", id, v.State, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never completed", id)
	return JobView{}
}

// TestHTTPSubmitPollResultRoundTrip drives the real simulator end to end
// through the HTTP API, then verifies the acceptance property: a second
// identical POST is a cache hit with byte-identical result.
func TestHTTPSubmitPollResultRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCapacity: 8})

	spec := tinySpec(1)
	spec.Replicas = 2
	code, sub := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", code)
	}
	if sub.ID == "" || sub.Fingerprint == "" || sub.CacheHit || sub.Deduped {
		t.Fatalf("unexpected submission: %+v", sub)
	}

	v := pollDone(t, ts, sub.ID)
	if len(v.Result) == 0 {
		t.Fatal("done job carries no result")
	}
	var res Result
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Fingerprint != sub.Fingerprint {
		t.Errorf("result fingerprint %q != submission %q", res.Fingerprint, sub.Fingerprint)
	}
	if res.Replicas.Completed != 2 || len(res.Runs) != 2 {
		t.Fatalf("replicas completed %d, runs %d, want 2/2", res.Replicas.Completed, len(res.Runs))
	}
	if res.Runs[0].Sweeps == 0 || res.Runs[0].ScrubVisits == 0 {
		t.Errorf("run metrics look empty: %+v", res.Runs[0])
	}
	if res.Runs[0].Workload != "db-oltp" {
		t.Errorf("workload = %q", res.Runs[0].Workload)
	}

	// Second identical POST: one simulator execution total; the cache
	// answers with identical result bytes.
	code2, sub2 := postJob(t, ts, spec)
	if code2 != http.StatusOK || !sub2.CacheHit {
		t.Fatalf("resubmit: status %d, %+v, want 200 cache hit", code2, sub2)
	}
	_, v2 := getJob(t, ts, sub2.ID)
	if !bytes.Equal(v.Result, v2.Result) {
		t.Error("cache hit returned different result bytes")
	}
}

// TestHTTPCancelRunningJob covers the acceptance property: DELETE on a
// running job returns it in state cancelled, and the daemon stays up.
func TestHTTPCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8})

	// A practically unbounded horizon: only cancellation ends this job.
	spec := tinySpec(1)
	spec.HorizonSec = 1e9
	code, sub := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, v := getJob(t, ts, sub.ID)
		if v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %q)", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || v.State != StateCancelled {
		t.Fatalf("DELETE: status %d state %q, want 200 cancelled", resp.StatusCode, v.State)
	}

	// The daemon survived: health is green and a fresh tiny job completes.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after cancel: %v %v", err, hr)
	}
	hr.Body.Close()
	code3, sub3 := postJob(t, ts, tinySpec(2))
	if code3 != http.StatusAccepted {
		t.Fatalf("post after cancel: %d", code3)
	}
	pollDone(t, ts, sub3.ID)
}

func TestHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	for name, body := range map[string]string{
		"malformed":     `{"workload":`,
		"unknown field": `{"workload":"db-oltp","bogus":1}`,
		"bad workload":  `{"workload":"nope"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	if code, _ := getJob(t, ts, "job-424242"); code != http.StatusNotFound {
		t.Errorf("GET unknown job: %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-424242", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPQueueFullReturns429(t *testing.T) {
	r := newBlockingRunner()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 1, Runner: r.run})
	defer close(r.release)

	postJob(t, ts, tinySpec(1))
	<-r.started
	postJob(t, ts, tinySpec(2)) // fills the queue
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"db-oltp","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestHTTPHealthz pins the extended health report: status, role, uptime,
// and — when configured as a coordinator — the live-worker count.
func TestHTTPHealthz(t *testing.T) {
	s := New(Config{Workers: 1, Runner: (&countingRunner{}).run})
	t.Cleanup(func() { shutdown(t, s) })
	ts := httptest.NewServer(NewHandlerWith(s, HandlerConfig{
		Role:        "coordinator",
		LiveWorkers: func() int { return 3 },
	}))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != "coordinator" {
		t.Errorf("health = %+v, want ok/coordinator", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %g", h.UptimeSeconds)
	}
	if h.LiveWorkers == nil || *h.LiveWorkers != 3 {
		t.Errorf("live workers = %v, want 3", h.LiveWorkers)
	}

	// A standalone handler reports its role and omits live_workers.
	ts2 := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts2.Close)
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var h2 Health
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if h2.Role != "standalone" || h2.LiveWorkers != nil {
		t.Errorf("standalone health = %+v", h2)
	}
}

func TestHTTPDeleteFinishedJobConflicts(t *testing.T) {
	r := &countingRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: r.run})
	sub := mustSubmit(t, s, tinySpec(1))
	waitState(t, s, sub.ID, StateDone)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE done job: %d, want 409", resp.StatusCode)
	}
}

func TestHTTPListAndMetrics(t *testing.T) {
	r := &countingRunner{}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: r.run})
	sub := mustSubmit(t, s, tinySpec(1))
	waitState(t, s, sub.ID, StateDone)
	mustSubmit(t, s, tinySpec(1)) // cache hit

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list.Jobs))
	}
	if len(list.Jobs[0].Result) != 0 {
		t.Error("list leaked result payloads")
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"scrubd_jobs_accepted_total 2",
		"scrubd_cache_hits_total 1",
		"scrubd_jobs_completed_total 1",
		"# TYPE scrubd_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	if !strings.HasPrefix(mr.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics content type %q", mr.Header.Get("Content-Type"))
	}
}

// TestDefaultRunnerReplicated exercises the real runner directly,
// checking replica fan-out and fault propagation into the result.
func TestDefaultRunnerReplicated(t *testing.T) {
	spec := tinySpec(3)
	spec.Replicas = 3
	spec.Fault = &FaultSpec{SweepSkipRate: 0.5, Seed: 7}
	norm := mustNormalize(t, spec)
	res, err := DefaultRunner(context.Background(), norm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas.Completed != 3 || len(res.Runs) != 3 {
		t.Fatalf("completed %d runs %d, want 3/3", res.Replicas.Completed, len(res.Runs))
	}
	anyFaults := false
	for i, run := range res.Runs {
		if run.ReplicaIndex != i {
			t.Errorf("run %d has replica index %d", i, run.ReplicaIndex)
		}
		if run.Faults != nil && run.Faults.SweepsInterrupted > 0 {
			anyFaults = true
		}
	}
	if !anyFaults {
		t.Error("sweep-skip faults never fired across 3 replicas")
	}
	if res.UEs.N != 3 {
		t.Errorf("UEs summary over %d samples, want 3", res.UEs.N)
	}
	want := fmt.Sprintf("%q", norm.Fingerprint())
	data, _ := json.Marshal(res)
	if !strings.Contains(string(data), want) {
		t.Error("encoded result does not embed the fingerprint")
	}
}
