package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubResult fabricates a deterministic Result for a normalised spec.
func stubResult(spec Spec) *Result {
	return &Result{
		Fingerprint: spec.Fingerprint(),
		Spec:        spec,
		Replicas:    ReplicaSummary{Requested: spec.Replicas, Completed: spec.Replicas, StdErrInflation: 1},
	}
}

// countingRunner records execution order and count without simulating.
type countingRunner struct {
	mu    sync.Mutex
	seeds []uint64
	runs  atomic.Int64
}

func (c *countingRunner) run(ctx context.Context, spec Spec) (*Result, error) {
	c.runs.Add(1)
	c.mu.Lock()
	c.seeds = append(c.seeds, spec.Seed)
	c.mu.Unlock()
	return stubResult(spec), nil
}

// blockingRunner parks every execution until released (or its context
// ends), signalling starts on started.
type blockingRunner struct {
	started chan uint64
	release chan struct{}
	runs    atomic.Int64
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan uint64, 16), release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, spec Spec) (*Result, error) {
	b.runs.Add(1)
	b.started <- spec.Seed
	select {
	case <-b.release:
		return stubResult(spec), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Service, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s terminal in %q (error %q), want %q", id, v.State, v.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return JobView{}
}

func mustSubmit(t *testing.T, s *Service, spec Spec) Submission {
	t.Helper()
	sub, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return sub
}

func shutdown(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}

func TestQueueOrderingFIFO(t *testing.T) {
	r := &countingRunner{}
	s := New(Config{Workers: 1, QueueCapacity: 16, Runner: r.run})
	defer shutdown(t, s)
	var ids []string
	for seed := uint64(1); seed <= 5; seed++ {
		ids = append(ids, mustSubmit(t, s, tinySpec(seed)).ID)
	}
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, seed := range r.seeds {
		if seed != uint64(i+1) {
			t.Fatalf("execution order %v, want submission order", r.seeds)
		}
	}
}

func TestQueueBoundedRejection(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 2, Runner: r.run})
	defer shutdown(t, s)
	defer close(r.release)

	first := mustSubmit(t, s, tinySpec(1))
	<-r.started // worker holds job 1; queue is empty again
	mustSubmit(t, s, tinySpec(2))
	mustSubmit(t, s, tinySpec(3))
	if _, err := s.Submit(tinySpec(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: err = %v, want ErrQueueFull", err)
	}
	if got := s.Snapshot().JobsRejected; got != 1 {
		t.Errorf("JobsRejected = %d, want 1", got)
	}
	_ = first
}

func TestCacheHitOnIdenticalSpec(t *testing.T) {
	r := &countingRunner{}
	s := New(Config{Workers: 1, Runner: r.run})
	defer shutdown(t, s)

	sub1 := mustSubmit(t, s, tinySpec(1))
	v1 := waitState(t, s, sub1.ID, StateDone)

	sub2 := mustSubmit(t, s, tinySpec(1))
	if !sub2.CacheHit || sub2.State != StateDone {
		t.Fatalf("second submit not a cache hit: %+v", sub2)
	}
	if sub2.ID == sub1.ID {
		t.Error("cache hit reused the original job ID")
	}
	v2, err := s.Get(sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(v1.Result) != string(v2.Result) {
		t.Error("cache hit returned different result bytes")
	}
	if len(v2.Result) == 0 {
		t.Error("cache hit carried no result")
	}
	if got := r.runs.Load(); got != 1 {
		t.Errorf("runner executed %d times, want 1", got)
	}
	snap := s.Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("cache counters = hits %d misses %d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

func TestCacheMissOnAnyFieldChange(t *testing.T) {
	r := &countingRunner{}
	s := New(Config{Workers: 1, Runner: r.run})
	defer shutdown(t, s)

	a := mustSubmit(t, s, tinySpec(1))
	waitState(t, s, a.ID, StateDone)
	changed := tinySpec(1)
	changed.Replicas = 2
	b := mustSubmit(t, s, changed)
	if b.CacheHit {
		t.Fatal("changed spec hit the cache")
	}
	waitState(t, s, b.ID, StateDone)
	if got := r.runs.Load(); got != 2 {
		t.Errorf("runner executed %d times, want 2", got)
	}
}

func TestSingleFlightDedupUnderConcurrentSubmits(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 2, QueueCapacity: 8, Runner: r.run})
	defer shutdown(t, s)

	first := mustSubmit(t, s, tinySpec(1))
	<-r.started

	const extra = 8
	subs := make(chan Submission, extra)
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			subs <- mustSubmit(t, s, tinySpec(1))
		}()
	}
	wg.Wait()
	close(subs)
	for sub := range subs {
		if !sub.Deduped || sub.ID != first.ID {
			t.Errorf("concurrent submit not deduped onto %s: %+v", first.ID, sub)
		}
	}
	close(r.release)
	waitState(t, s, first.ID, StateDone)
	if got := r.runs.Load(); got != 1 {
		t.Errorf("runner executed %d times, want 1", got)
	}
	v, _ := s.Get(first.ID)
	if v.Attached != extra {
		t.Errorf("Attached = %d, want %d", v.Attached, extra)
	}
	if got := s.Snapshot().Deduped; got != extra {
		t.Errorf("Deduped counter = %d, want %d", got, extra)
	}
}

func TestDedupEndsWhenJobFinishes(t *testing.T) {
	r := &countingRunner{}
	s := New(Config{Workers: 1, Runner: r.run})
	defer shutdown(t, s)
	a := mustSubmit(t, s, tinySpec(1))
	waitState(t, s, a.ID, StateDone)
	b := mustSubmit(t, s, tinySpec(1))
	if b.Deduped {
		t.Error("submit after completion deduped instead of hitting the cache")
	}
}

func TestCancelRunningJob(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, Runner: r.run})
	defer shutdown(t, s)
	defer close(r.release)

	sub := mustSubmit(t, s, tinySpec(1))
	<-r.started
	v, err := s.Cancel(sub.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if v.State != StateCancelled {
		t.Fatalf("state after cancel = %q, want cancelled", v.State)
	}
	// The daemon survives: a fresh (different) job still completes, and
	// the cancelled spec was not cached.
	r2 := mustSubmit(t, s, tinySpec(2))
	<-r.started
	if got, _ := s.Get(sub.ID); got.State != StateCancelled {
		t.Errorf("cancelled job drifted to %q", got.State)
	}
	v2, err := s.Cancel(r2.ID)
	if err != nil || v2.State != StateCancelled {
		t.Fatalf("second cancel: %v (state %q)", err, v2.State)
	}
	if got := s.Snapshot().JobsCancelled; got != 2 {
		t.Errorf("JobsCancelled = %d, want 2", got)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 4, Runner: r.run})
	defer shutdown(t, s)

	a := mustSubmit(t, s, tinySpec(1))
	<-r.started
	b := mustSubmit(t, s, tinySpec(2))
	v, err := s.Cancel(b.ID)
	if err != nil || v.State != StateCancelled {
		t.Fatalf("cancel queued: %v (state %q)", err, v.State)
	}
	close(r.release)
	waitState(t, s, a.ID, StateDone)
	// Give the worker a chance to (incorrectly) pick up the cancelled job.
	time.Sleep(10 * time.Millisecond)
	if got := r.runs.Load(); got != 1 {
		t.Errorf("runner executed %d times, want 1 (cancelled job ran)", got)
	}
}

func TestCancelResubmitAfterCancelReruns(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, Runner: r.run})
	defer shutdown(t, s)

	a := mustSubmit(t, s, tinySpec(1))
	<-r.started
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	// Same spec again: must not dedup onto the cancelled job and must
	// execute afresh.
	b := mustSubmit(t, s, tinySpec(1))
	if b.Deduped || b.CacheHit {
		t.Fatalf("resubmit after cancel reused dead work: %+v", b)
	}
	<-r.started
	close(r.release)
	waitState(t, s, b.ID, StateDone)
	if got := r.runs.Load(); got != 2 {
		t.Errorf("runner executed %d times, want 2", got)
	}
}

func TestCancelErrors(t *testing.T) {
	r := &countingRunner{}
	s := New(Config{Workers: 1, Runner: r.run})
	defer shutdown(t, s)
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: %v", err)
	}
	a := mustSubmit(t, s, tinySpec(1))
	waitState(t, s, a.ID, StateDone)
	if _, err := s.Cancel(a.ID); !errors.Is(err, ErrNotRunning) {
		t.Errorf("cancel done job: %v", err)
	}
}

func TestFailedJobIsNotCached(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	r := &countingRunner{}
	runner := func(ctx context.Context, spec Spec) (*Result, error) {
		if fail.Load() {
			return nil, errors.New("synthetic failure")
		}
		return r.run(ctx, spec)
	}
	s := New(Config{Workers: 1, Runner: runner})
	defer shutdown(t, s)

	a := mustSubmit(t, s, tinySpec(1))
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, _ := s.Get(a.ID)
		if v.State == StateFailed {
			if v.Error == "" {
				t.Error("failed job lost its error")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", v.State)
		}
		time.Sleep(time.Millisecond)
	}
	fail.Store(false)
	b := mustSubmit(t, s, tinySpec(1))
	if b.CacheHit {
		t.Fatal("failure was cached")
	}
	waitState(t, s, b.ID, StateDone)
}

func TestPanickingJobIsContained(t *testing.T) {
	runner := func(ctx context.Context, spec Spec) (*Result, error) {
		if spec.Seed == 13 {
			panic("synthetic defect")
		}
		return stubResult(spec), nil
	}
	s := New(Config{Workers: 1, Runner: runner})
	defer shutdown(t, s)
	bad := mustSubmit(t, s, tinySpec(13))
	good := mustSubmit(t, s, tinySpec(1))
	waitState(t, s, good.ID, StateDone)
	v, _ := s.Get(bad.ID)
	if v.State != StateFailed {
		t.Errorf("panicked job state = %q, want failed", v.State)
	}
	if got := s.Snapshot().JobsFailed; got != 1 {
		t.Errorf("JobsFailed = %d, want 1", got)
	}
}

func TestShutdownDrainsThenRefuses(t *testing.T) {
	r := &countingRunner{}
	s := New(Config{Workers: 2, QueueCapacity: 16, Runner: r.run})
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		ids = append(ids, mustSubmit(t, s, tinySpec(seed)).ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	for _, id := range ids {
		if v, _ := s.Get(id); v.State != StateDone {
			t.Errorf("job %s = %q after drain, want done", id, v.State)
		}
	}
	if _, err := s.Submit(tinySpec(99)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown: %v, want ErrClosed", err)
	}
}

func TestShutdownForceCancelsAtDeadline(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, Runner: r.run})
	sub := mustSubmit(t, s, tinySpec(1))
	<-r.started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v", err)
	}
	if v, _ := s.Get(sub.ID); v.State != StateCancelled {
		t.Errorf("job after forced drain = %q, want cancelled", v.State)
	}
}

func TestSnapshotGauges(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 8, Runner: r.run})
	defer shutdown(t, s)
	defer close(r.release)
	mustSubmit(t, s, tinySpec(1))
	<-r.started
	mustSubmit(t, s, tinySpec(2))
	snap := s.Snapshot()
	if snap.BusyWorkers != 1 || snap.Workers != 1 {
		t.Errorf("busy/workers = %d/%d, want 1/1", snap.BusyWorkers, snap.Workers)
	}
	if snap.WorkerUtilization != 1 {
		t.Errorf("utilization = %v, want 1", snap.WorkerUtilization)
	}
	if snap.QueueDepth != 1 {
		t.Errorf("queue depth = %d, want 1", snap.QueueDepth)
	}
	if snap.QueueCapacity != 8 {
		t.Errorf("queue capacity = %d", snap.QueueCapacity)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.add("a", []byte("1"))
	c.add("b", []byte("2"))
	if _, ok := c.get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.add("c", []byte("3")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite promotion")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
}
