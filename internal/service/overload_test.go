package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

// prioSpec is tinySpec with a scheduling class attached.
func prioSpec(seed uint64, priority string) Spec {
	s := tinySpec(seed)
	s.Priority = priority
	return s
}

// TestFingerprintIgnoresScheduling pins that priority and deadline steer
// WHEN a job runs, never WHAT it computes: the fingerprint — and with it
// dedup and the result cache — is identical across scheduling hints.
func TestFingerprintIgnoresScheduling(t *testing.T) {
	base := mustNormalize(t, tinySpec(42)).Fingerprint()
	hinted := tinySpec(42)
	hinted.Priority = PriorityInteractive
	hinted.DeadlineAt = time.Now().Add(time.Hour).Format(time.RFC3339Nano)
	norm := mustNormalize(t, hinted)
	if got := norm.Fingerprint(); got != base {
		t.Fatalf("fingerprint changed with scheduling hints: %s vs %s", got, base)
	}
	batch := tinySpec(42)
	batch.Priority = PriorityBatch
	if got := mustNormalize(t, batch).Fingerprint(); got != base {
		t.Fatalf("fingerprint changed with batch priority: %s vs %s", got, base)
	}
}

// TestSpecPriorityValidation pins the accepted priority vocabulary and
// deadline canonicalisation.
func TestSpecPriorityValidation(t *testing.T) {
	bad := tinySpec(1)
	bad.Priority = "urgent"
	if _, err := bad.Normalized(); err == nil {
		t.Fatal("unknown priority accepted")
	}
	badDl := tinySpec(1)
	badDl.DeadlineAt = "next tuesday"
	if _, err := badDl.Normalized(); err == nil {
		t.Fatal("unparsable deadline accepted")
	}
	// RFC 3339 deadlines canonicalise to RFC3339Nano UTC-preserving form.
	dl := tinySpec(1)
	dl.DeadlineAt = "2030-01-02T03:04:05Z"
	norm := mustNormalize(t, dl)
	parsed, err := time.Parse(time.RFC3339Nano, norm.DeadlineAt)
	if err != nil {
		t.Fatalf("canonical deadline %q unparsable: %v", norm.DeadlineAt, err)
	}
	if !parsed.Equal(time.Date(2030, 1, 2, 3, 4, 5, 0, time.UTC)) {
		t.Fatalf("deadline mangled: %v", parsed)
	}
	// Class mapping.
	for prio, want := range map[string]Class{
		"":                  ClassNormal,
		PriorityNormal:      ClassNormal,
		PriorityInteractive: ClassInteractive,
		PriorityBatch:       ClassBatch,
	} {
		s := tinySpec(1)
		s.Priority = prio
		if got := mustNormalize(t, s).Class(); got != want {
			t.Errorf("priority %q → class %v, want %v", prio, got, want)
		}
	}
}

// TestPriorityInversion is the pinned scheduling test: with the queue
// saturated by batch work, a late-arriving interactive job runs before
// every still-queued batch job.
func TestPriorityInversion(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 8, Runner: r.run})
	t.Cleanup(func() { shutdown(t, s) })

	mustSubmit(t, s, prioSpec(1, PriorityBatch))
	if got := <-r.started; got != 1 {
		t.Fatalf("first job seed %d, want 1", got)
	}
	// Saturate the queue with batch, then drop in one interactive job.
	for seed := uint64(2); seed <= 4; seed++ {
		mustSubmit(t, s, prioSpec(seed, PriorityBatch))
	}
	sub := mustSubmit(t, s, prioSpec(10, PriorityInteractive))

	close(r.release)
	if got := <-r.started; got != 10 {
		t.Fatalf("after release the worker ran seed %d first, want the interactive 10", got)
	}
	waitState(t, s, sub.ID, StateDone)
	for want := uint64(2); want <= 4; want++ {
		if got := <-r.started; got != want {
			t.Fatalf("batch backlog ran seed %d, want %d (arrival order)", got, want)
		}
	}
}

// TestEDFWithinClass pins earliest-deadline-first order inside one
// class, with deadline-free jobs after deadline-bearing ones.
func TestEDFWithinClass(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 8, Runner: r.run})
	t.Cleanup(func() { shutdown(t, s) })

	mustSubmit(t, s, tinySpec(1))
	<-r.started

	far := tinySpec(2)
	far.DeadlineAt = time.Now().Add(time.Hour).Format(time.RFC3339Nano)
	near := tinySpec(3)
	near.DeadlineAt = time.Now().Add(30 * time.Minute).Format(time.RFC3339Nano)
	none := tinySpec(4)
	mustSubmit(t, s, far)
	mustSubmit(t, s, near)
	mustSubmit(t, s, none)

	close(r.release)
	for i, want := range []uint64{3, 2, 4} {
		if got := <-r.started; got != want {
			t.Fatalf("EDF position %d ran seed %d, want %d", i, got, want)
		}
	}
}

// TestAgingRescuesStarvedClass exercises the starvation escape hatch as
// a unit on the queue: an old batch job outranks fresh interactive
// arrivals once it has waited past the aging threshold.
func TestAgingRescuesStarvedClass(t *testing.T) {
	now := time.Now()
	var pq priorityQueue
	old := &job{class: ClassBatch, arrival: 1, heapIdx: -1, submitted: now.Add(-10 * time.Second)}
	fresh := &job{class: ClassInteractive, arrival: 2, heapIdx: -1, submitted: now}
	pq.push(old)
	pq.push(fresh)

	j, aged := pq.pick(now, 5*time.Second)
	if j != old || !aged {
		t.Fatalf("pick(aging=5s) = seed-class %v aged %v, want the starved batch job aged", j.class, aged)
	}
	if j, _ := pq.pick(now, 5*time.Second); j != fresh {
		t.Fatalf("second pick = class %v, want the interactive job", j.class)
	}

	// Aging off: strict precedence, no rescue.
	pq.push(old)
	pq.push(fresh)
	if j, aged := pq.pick(now, 0); j != fresh || aged {
		t.Fatalf("pick(aging off) = class %v aged %v, want interactive un-aged", j.class, aged)
	}
}

// TestDeadlineExpiredAtAdmission pins that a spec whose deadline has
// already passed is refused at the door, not queued to die later.
func TestDeadlineExpiredAtAdmission(t *testing.T) {
	s := New(Config{Workers: 1, Runner: (&countingRunner{}).run})
	t.Cleanup(func() { shutdown(t, s) })
	late := tinySpec(1)
	late.DeadlineAt = time.Now().Add(-time.Second).Format(time.RFC3339Nano)
	_, err := s.Submit(late)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("expired deadline admitted (err %v)", err)
	}
	if got := s.Snapshot().DeadlineRejected; got != 1 {
		t.Fatalf("deadline_rejected = %d, want 1", got)
	}
}

// TestDeadlineReapedFromQueue pins lazy reaping: a queued job whose
// deadline lapses before a worker reaches it fails without running.
func TestDeadlineReapedFromQueue(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 4, Runner: r.run})
	t.Cleanup(func() { shutdown(t, s) })

	mustSubmit(t, s, tinySpec(1))
	<-r.started
	doomed := tinySpec(2)
	doomed.DeadlineAt = time.Now().Add(30 * time.Millisecond).Format(time.RFC3339Nano)
	sub := mustSubmit(t, s, doomed)
	time.Sleep(60 * time.Millisecond)
	close(r.release)

	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := s.Get(sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateFailed {
			if !strings.Contains(v.Error, "reaped") {
				t.Fatalf("reaped job error %q, want a reaped marker", v.Error)
			}
			break
		}
		if v.State == StateDone {
			t.Fatal("expired job ran to completion instead of being reaped")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", v.State)
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Snapshot().DeadlineReaped; got != 1 {
		t.Fatalf("deadline_reaped = %d, want 1", got)
	}
}

// TestDedupEscalation pins that a duplicate submission at a higher
// priority drags the queued original up with it.
func TestDedupEscalation(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 8, Runner: r.run})
	t.Cleanup(func() { shutdown(t, s) })

	mustSubmit(t, s, prioSpec(1, PriorityBatch))
	<-r.started
	mustSubmit(t, s, prioSpec(2, PriorityBatch))
	first := mustSubmit(t, s, prioSpec(3, PriorityBatch))
	// Same work, now wanted interactively.
	again := mustSubmit(t, s, prioSpec(3, PriorityInteractive))
	if !again.Deduped || again.ID != first.ID {
		t.Fatalf("duplicate not attached: %+v vs %+v", again, first)
	}

	close(r.release)
	if got := <-r.started; got != 3 {
		t.Fatalf("escalated job ran %d first, want seed 3", got)
	}
	if got := s.Snapshot().Escalated; got != 1 {
		t.Fatalf("escalated = %d, want 1", got)
	}
}

// TestShedBatchStillServesInteractive is the pinned load-shedding test:
// past the batch watermark, batch submissions bounce with Retry-After
// while interactive traffic is still admitted and still completes.
func TestShedBatchStillServesInteractive(t *testing.T) {
	r := newBlockingRunner()
	shed := DefaultShedConfig()
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueCapacity: 10, Shed: &shed, Runner: r.run,
	})
	defer close(r.release)

	postJob(t, ts, prioSpec(1, PriorityInteractive))
	<-r.started
	// Occupy half the queue: 5/10 hits the 0.50 batch watermark.
	for seed := uint64(2); seed <= 6; seed++ {
		if code, _ := postJob(t, ts, prioSpec(seed, PriorityInteractive)); code != http.StatusAccepted {
			t.Fatalf("fill POST seed %d: %d", seed, code)
		}
	}

	body, _ := json.Marshal(prioSpec(100, PriorityBatch))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch POST under shed-batch: %d, want 503 (or 429)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response without Retry-After")
	}

	code, sub := postJob(t, ts, prioSpec(101, PriorityInteractive))
	if code != http.StatusAccepted {
		t.Fatalf("interactive POST under shed-batch: %d, want 202", code)
	}
	if sub.ID == "" {
		t.Fatal("interactive submission without an ID")
	}
}

// TestQueueFullHammer floods a small daemon from many goroutines (run
// under -race): every response must be exactly 202 or a 429 carrying
// Retry-After — never a 500 — and after drain the journal must hold one
// submitted record per accepted job.
func TestQueueFullHammer(t *testing.T) {
	dir := t.TempDir()
	jn, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A runner slow enough to keep the tiny queue contended.
	counting := &countingRunner{}
	runner := func(ctx context.Context, spec Spec) (*Result, error) {
		time.Sleep(2 * time.Millisecond)
		return counting.run(ctx, spec)
	}
	s := New(Config{Workers: 2, QueueCapacity: 4, Journal: jn, Runner: runner})
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	ts := srv.URL

	const clients, perClient = 16, 25
	var mu sync.Mutex
	counts := map[int]int{}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				spec := tinySpec(uint64(c*1000 + i + 1))
				body, _ := json.Marshal(spec)
				resp, err := http.Post(ts+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("POST: %v", err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
					t.Errorf("429 without Retry-After")
				}
				resp.Body.Close()
				mu.Lock()
				counts[resp.StatusCode]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// One expired-deadline spec rejected at admission even under load.
	late := tinySpec(999999)
	late.DeadlineAt = time.Now().Add(-time.Minute).Format(time.RFC3339Nano)
	body, _ := json.Marshal(late)
	resp, err := http.Post(ts+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("expired-deadline POST: %d, want 422", resp.StatusCode)
	}

	for code := range counts {
		if code != http.StatusAccepted && code != http.StatusTooManyRequests {
			t.Fatalf("hammer produced status %d (%d times); only 202/429 allowed", code, counts[code])
		}
	}
	if counts[http.StatusAccepted] == 0 || counts[http.StatusTooManyRequests] == 0 {
		t.Fatalf("hammer not contended enough: %v", counts)
	}

	// Drain (Shutdown finishes the backlog), then audit the journal: no
	// accepted job may be missing its write-ahead record.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	jn.Close()
	raw, err := os.ReadFile(jn.Path())
	if err != nil {
		t.Fatal(err)
	}
	submitted := bytes.Count(raw, []byte(`"type":"submitted"`))
	if submitted != counts[http.StatusAccepted] {
		t.Fatalf("journal holds %d submitted records for %d accepted jobs", submitted, counts[http.StatusAccepted])
	}
}

// TestBatchSubmitGroupCommit pins the group-commit contract: a batch of
// N fresh jobs costs ONE fsync and appends N submitted records.
func TestBatchSubmitGroupCommit(t *testing.T) {
	dir := t.TempDir()
	jn, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 16, Journal: jn, Runner: r.run})
	t.Cleanup(func() {
		close(r.release)
		shutdown(t, s)
		jn.Close()
	})

	mustSubmit(t, s, tinySpec(1))
	<-r.started // worker parked: no lifecycle records interleave below

	f0, a0, g0 := jn.Fsyncs(), jn.Appended(), jn.GroupCommits()
	specs := []Spec{tinySpec(2), tinySpec(3), tinySpec(4), tinySpec(5), tinySpec(6)}
	results := s.SubmitBatch(specs, SubmitOptions{Tenant: "t1"})
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("batch item %d: %v", i, br.Err)
		}
	}
	if got := jn.Appended() - a0; got != int64(len(specs)) {
		t.Fatalf("batch appended %d records, want %d", got, len(specs))
	}
	if got := jn.Fsyncs() - f0; got != 1 {
		t.Fatalf("batch cost %d fsyncs, want 1", got)
	}
	if got := jn.GroupCommits() - g0; got != 1 {
		t.Fatalf("group_commits grew by %d, want 1", got)
	}
}

// TestHTTPBatchSubmit pins the batch endpoint: per-spec verdicts in
// order, in-request duplicates deduped, empty batches refused.
func TestHTTPBatchSubmit(t *testing.T) {
	r := &countingRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 16, Runner: r.run})

	payload, _ := json.Marshal(BatchSubmitRequest{
		Specs: []Spec{tinySpec(1), tinySpec(2), tinySpec(1)},
	})
	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch POST: %d, want 200", resp.StatusCode)
	}
	var br BatchSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 || br.Accepted != 3 {
		t.Fatalf("batch response: %d results, %d accepted, want 3/3", len(br.Results), br.Accepted)
	}
	if br.Results[0].Status != http.StatusAccepted || br.Results[1].Status != http.StatusAccepted {
		t.Fatalf("fresh specs got statuses %d/%d, want 202", br.Results[0].Status, br.Results[1].Status)
	}
	if !br.Results[2].Deduped && !br.Results[2].CacheHit {
		t.Fatalf("in-batch duplicate not deduped: %+v", br.Results[2])
	}
	if br.Results[2].ID != br.Results[0].ID {
		t.Fatalf("duplicate attached to %s, want %s", br.Results[2].ID, br.Results[0].ID)
	}

	// Empty batch → 400.
	resp2, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", strings.NewReader(`{"specs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp2.StatusCode)
	}
}

// TestTenantRateLimit pins per-tenant token buckets: a tenant burning
// its burst gets 429 + Retry-After while another tenant sails through.
func TestTenantRateLimit(t *testing.T) {
	r := &countingRunner{}
	s := New(Config{Workers: 1, QueueCapacity: 64, Runner: r.run,
		TenantRate: 0.001, TenantBurst: 2})
	t.Cleanup(func() { shutdown(t, s) })

	for i := 0; i < 2; i++ {
		if _, err := s.SubmitWith(tinySpec(uint64(i+1)), SubmitOptions{Tenant: "greedy"}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := s.SubmitWith(tinySpec(3), SubmitOptions{Tenant: "greedy"})
	var rl *RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("third submit err %v, want RateLimitError", err)
	}
	if rl.Wait <= 0 {
		t.Fatalf("RateLimitError without a wait hint: %+v", rl)
	}
	if _, err := s.SubmitWith(tinySpec(4), SubmitOptions{Tenant: "polite"}); err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	if got := s.Snapshot().RateLimited; got != 1 {
		t.Fatalf("rate_limited = %d, want 1", got)
	}
}

// TestHTTPBodyLimit pins the 1 MiB default request-body cap: an
// oversized spec earns 413, not an OOM or a 500.
func TestHTTPBodyLimit(t *testing.T) {
	r := &countingRunner{}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: r.run})

	huge := fmt.Sprintf(`{"workload":"db-oltp","notes":%q}`, strings.Repeat("x", 2<<20))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("2 MiB POST: %d, want 413", resp.StatusCode)
	}
}

// TestBatchJournalFailureRefusesSiblings pins the write-ahead barrier
// for in-batch dedups: when the group commit fails, the specs that
// deduped onto a not-yet-journaled sibling are refused along with the
// fresh jobs — no client may hold an acknowledgement for a job that was
// never made durable, never stored, and never enqueued.
func TestBatchJournalFailureRefusesSiblings(t *testing.T) {
	dir := t.TempDir()
	jn, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, QueueCapacity: 16, Journal: jn, Runner: (&countingRunner{}).run})
	t.Cleanup(func() { shutdown(t, s) })

	// Down the journal: every append now fails the barrier.
	jn.Close()

	results := s.SubmitBatch([]Spec{tinySpec(1), tinySpec(1), tinySpec(2)}, SubmitOptions{})
	for i, br := range results {
		if br.Err == nil {
			t.Fatalf("batch item %d acknowledged (%+v) despite journal failure", i, br.Submission)
		}
	}
	if jobs := s.List(); len(jobs) != 0 {
		t.Fatalf("%d jobs exist after a failed group commit, want 0", len(jobs))
	}
	snap := s.Snapshot()
	if snap.JobsAccepted != 0 || snap.Deduped != 0 || snap.QueueDepth != 0 {
		t.Fatalf("counters leaked past the failed barrier: accepted=%d deduped=%d depth=%d, want all 0",
			snap.JobsAccepted, snap.Deduped, snap.QueueDepth)
	}
}

// TestAgingRescuesDeadlineFreeJob pins within-class starvation
// avoidance: a deadline-free job never becomes its class's EDF heap head
// under a steady stream of deadline-bearing siblings, but the aging
// rescue tracks the class FIFO head, so it is still served once it has
// waited past the threshold.
func TestAgingRescuesDeadlineFreeJob(t *testing.T) {
	now := time.Now()
	var pq priorityQueue
	starved := &job{class: ClassNormal, arrival: 1, heapIdx: -1, submitted: now.Add(-time.Minute)}
	pq.push(starved)
	urgent := make([]*job, 3)
	for i := range urgent {
		urgent[i] = &job{
			class: ClassNormal, arrival: uint64(i + 2), heapIdx: -1,
			submitted: now, deadline: now.Add(time.Duration(i+1) * time.Second),
		}
		pq.push(urgent[i])
	}

	j, aged := pq.pick(now, 30*time.Second)
	if j != starved || !aged {
		t.Fatalf("pick(aging=30s) = %+v aged=%v, want the starved deadline-free job aged", j, aged)
	}
	// The rest drain in plain EDF order.
	for i, want := range urgent {
		if j, _ := pq.pick(now, 30*time.Second); j != want {
			t.Fatalf("drain position %d got arrival %d, want %d", i, j.arrival, want.arrival)
		}
	}
}

// TestHTTPBatchSpecCap pins the specs-per-batch bound: the body-byte cap
// alone would admit tens of thousands of tiny specs into one lock-held
// admission pass, so an over-count batch is refused with 413 before any
// spec is admitted.
func TestHTTPBatchSpecCap(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 16, Runner: (&countingRunner{}).run})
	t.Cleanup(func() { shutdown(t, s) })
	ts := httptest.NewServer(NewHandlerWith(s, HandlerConfig{MaxBatchSpecs: 2}))
	t.Cleanup(ts.Close)

	over, _ := json.Marshal(BatchSubmitRequest{Specs: []Spec{tinySpec(1), tinySpec(2), tinySpec(3)}})
	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("3-spec batch against cap 2: %d, want 413", resp.StatusCode)
	}
	if got := s.Snapshot().BatchSpecs; got != 0 {
		t.Fatalf("refused batch still admitted %d specs", got)
	}

	within, _ := json.Marshal(BatchSubmitRequest{Specs: []Spec{tinySpec(1), tinySpec(2)}})
	resp2, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader(within))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("2-spec batch against cap 2: %d, want 200", resp2.StatusCode)
	}
}

// TestRefusalsDoNotBurnTokens pins token-charge ordering: a submission
// the service refuses anyway (queue full) must not spend the tenant's
// rate budget, so the tenant still has tokens the moment capacity
// returns.
func TestRefusalsDoNotBurnTokens(t *testing.T) {
	r := newBlockingRunner()
	s := New(Config{Workers: 1, QueueCapacity: 2, Runner: r.run,
		TenantRate: 0.001, TenantBurst: 4})
	t.Cleanup(func() {
		close(r.release)
		shutdown(t, s)
	})
	opts := SubmitOptions{Tenant: "retry-happy"}

	// Token 1 runs (parking the worker), tokens 2-3 fill the queue.
	if _, err := s.SubmitWith(tinySpec(1), opts); err != nil {
		t.Fatal(err)
	}
	<-r.started
	queued := make([]Submission, 2)
	for i := range queued {
		sub, err := s.SubmitWith(tinySpec(uint64(i+2)), opts)
		if err != nil {
			t.Fatal(err)
		}
		queued[i] = sub
	}

	// Hammer the full queue: every refusal must be queue-full, never
	// rate-limited, and none may spend the remaining token.
	for i := 0; i < 5; i++ {
		_, err := s.SubmitWith(tinySpec(uint64(i+10)), opts)
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("refusal %d: %v, want ErrQueueFull", i, err)
		}
	}
	if got := s.Snapshot().RateLimited; got != 0 {
		t.Fatalf("rate_limited = %d after queue-full refusals, want 0", got)
	}

	// Capacity returns; the last token must still be there.
	if _, err := s.Cancel(queued[1].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitWith(tinySpec(20), opts); err != nil {
		t.Fatalf("submit after capacity returned: %v, want the saved token to admit it", err)
	}
}
