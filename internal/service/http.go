package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"repro/internal/httpx"
)

// CacheIndexPath and CacheResultsPrefix are the cache-gossip surface
// every node serves: the index lists cached fingerprints, and a result
// is fetched by appending its fingerprint to the prefix.
const (
	CacheIndexPath     = "/v1/cache/index"
	CacheResultsPrefix = "/v1/cache/results/"
)

// TenantHeader names the submitting tenant for per-tenant admission
// rate limiting; absent means the anonymous tenant.
const TenantHeader = "X-Scrubd-Tenant"

// HandlerConfig customises the HTTP surface for the node's cluster role.
// The zero value is a standalone node.
type HandlerConfig struct {
	// Role names the node's cluster role: standalone (default),
	// coordinator, or worker. Reported by /healthz.
	Role string
	// LiveWorkers, when non-nil, reports the number of currently healthy
	// cluster workers (coordinators set this). Reported by /healthz.
	LiveWorkers func() int
	// ClusterInfo, when non-nil, supplies the coordinator's elastic-
	// cluster state (ring version, steal/speculation counters, gossip
	// freshness) reported under /healthz's "cluster" key.
	ClusterInfo func() any
	// ExtraMetrics, when non-nil, is appended to the /metrics exposition
	// after the service's own metrics (cluster counters plug in here).
	ExtraMetrics func(io.Writer) error
	// Build, when non-nil, is the binary's build identity, reported under
	// /healthz's "build" key so operators can tell which build answered.
	Build any
	// MaxBodyBytes caps every JSON request body (0 = 1 MiB). Bodies over
	// the cap are refused with 413.
	MaxBodyBytes int64
	// MaxBatchSpecs caps the spec count of one POST /v1/jobs/batch
	// (0 = DefaultMaxBatchSpecs; negative = unlimited). The body-byte cap
	// alone admits tens of thousands of tiny specs whose single-lock-hold
	// admission and group fsync would stall every worker and submitter;
	// oversized batches are refused with 413.
	MaxBatchSpecs int
}

// DefaultMaxBatchSpecs bounds a batch submission's spec count unless the
// handler is configured otherwise.
const DefaultMaxBatchSpecs = 256

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"`
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// LiveWorkers is present only on coordinators.
	LiveWorkers *int `json:"live_workers,omitempty"`
	// Cluster carries the coordinator's elastic-cluster state.
	Cluster any `json:"cluster,omitempty"`
	// Build is the binary's build identity (version, revision).
	Build any `json:"build,omitempty"`
	// Admission is the admission-control block: shed state, queue
	// occupancy per class, watermarks.
	Admission *AdmissionView `json:"admission,omitempty"`
}

// NewHandler exposes a standalone Service over HTTP/JSON. See
// NewHandlerWith for the endpoint list.
func NewHandler(s *Service) http.Handler {
	return NewHandlerWith(s, HandlerConfig{})
}

// NewHandlerWith exposes a Service over HTTP/JSON:
//
//	POST   /v1/jobs        submit a Spec → Submission (202; 200 on cache
//	                       hit; 429 + Retry-After on queue-full or tenant
//	                       rate limit; 503 + Retry-After while shedding;
//	                       422 for an already-expired deadline; 413 for an
//	                       oversized body)
//	POST   /v1/jobs/batch  submit many Specs in one group commit → 200
//	                       with a per-spec status array (413 past the
//	                       spec-count or body-byte cap)
//	GET    /v1/jobs        list jobs (no result payloads)
//	GET    /v1/jobs/{id}   job status, with result once done
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /healthz        liveness, role, uptime, admission state
//	GET    /metrics        Prometheus text exposition
//
// The submitting tenant rides in the X-Scrubd-Tenant header.
func NewHandlerWith(s *Service, cfg HandlerConfig) http.Handler {
	if cfg.Role == "" {
		cfg.Role = "standalone"
	}
	maxBody := cfg.MaxBodyBytes
	maxSpecs := cfg.MaxBatchSpecs
	if maxSpecs == 0 {
		maxSpecs = DefaultMaxBatchSpecs
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := httpx.DecodeJSON(w, r, maxBody, true, &spec); err != nil {
			writeDecodeError(w, err)
			return
		}
		sub, err := s.SubmitWith(spec, SubmitOptions{Tenant: r.Header.Get(TenantHeader)})
		if err != nil {
			writeSubmitError(w, s, err)
			return
		}
		status := http.StatusAccepted
		if sub.CacheHit {
			status = http.StatusOK
		}
		writeJSON(w, status, sub)
	})
	mux.HandleFunc("POST /v1/jobs/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchSubmitRequest
		if err := httpx.DecodeJSON(w, r, maxBody, true, &req); err != nil {
			writeDecodeError(w, err)
			return
		}
		if len(req.Specs) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("service: batch has no specs"))
			return
		}
		if maxSpecs > 0 && len(req.Specs) > maxSpecs {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("service: batch has %d specs, limit %d", len(req.Specs), maxSpecs))
			return
		}
		results := s.SubmitBatch(req.Specs, SubmitOptions{Tenant: r.Header.Get(TenantHeader)})
		resp := BatchSubmitResponse{Results: make([]BatchSubmitItem, len(results))}
		for i, res := range results {
			item := &resp.Results[i]
			if res.Err != nil {
				item.Status = submitErrorStatus(res.Err)
				item.Error = res.Err.Error()
				continue
			}
			item.Submission = res.Submission
			item.Status = http.StatusAccepted
			if res.Submission.CacheHit {
				item.Status = http.StatusOK
			}
			resp.Accepted++
		}
		// The batch itself always answers 200: each spec carries its own
		// verdict, and partial acceptance is the normal case under load.
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobView `json:"jobs"`
		}{s.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrNotRunning):
			writeJSON(w, http.StatusConflict, v)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET "+CacheIndexPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Fingerprints []string `json:"fingerprints"`
		}{s.CacheIndex()})
	})
	mux.HandleFunc("GET "+CacheResultsPrefix+"{fp}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := s.CachedResult(r.PathValue("fp"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		// The cached bytes are served verbatim: byte identity across the
		// fleet is the whole point of content-addressed results.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{
			Status:        "ok",
			Role:          cfg.Role,
			UptimeSeconds: s.Uptime().Seconds(),
		}
		if cfg.LiveWorkers != nil {
			n := cfg.LiveWorkers()
			h.LiveWorkers = &n
		}
		if cfg.ClusterInfo != nil {
			h.Cluster = cfg.ClusterInfo()
		}
		h.Build = cfg.Build
		adm := s.Admission()
		h.Admission = &adm
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.Snapshot().WritePrometheus(w); err != nil {
			return
		}
		if cfg.ExtraMetrics != nil {
			_ = cfg.ExtraMetrics(w)
		}
	})
	return mux
}

// BatchSubmitRequest is the POST /v1/jobs/batch body: up to
// MaxBatchSpecs specs, admitted in order and group-committed to the
// journal with a single fsync.
type BatchSubmitRequest struct {
	Specs []Spec `json:"specs"`
}

// BatchSubmitItem is one spec's verdict inside a batch response: the
// HTTP status it would have received alone, plus the Submission on
// acceptance or the error text on refusal.
type BatchSubmitItem struct {
	Submission
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
}

// BatchSubmitResponse is the POST /v1/jobs/batch body: per-spec verdicts
// in request order, plus how many were accepted (including cache hits
// and dedups).
type BatchSubmitResponse struct {
	Results  []BatchSubmitItem `json:"results"`
	Accepted int               `json:"accepted"`
}

// submitErrorStatus maps an admission error to the status it earns.
func submitErrorStatus(err error) int {
	switch {
	case errors.Is(err, ErrRateLimited), errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShedding), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadlineExpired):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// writeSubmitError answers a refused single-spec submission, attaching
// the appropriate Retry-After hint: the token-bucket wait for a
// rate-limited tenant, the occupancy-scaled backoff for queue-full and
// shedding refusals.
func writeSubmitError(w http.ResponseWriter, s *Service, err error) {
	status := submitErrorStatus(err)
	var rl *RateLimitError
	switch {
	case errors.As(err, &rl):
		secs := int(math.Ceil(rl.Wait.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		// Back-pressure, not an outage: the client should retry the same
		// node after a backoff scaled to how full the queue is.
		occ, cap := s.QueueOccupancy()
		SetRetryAfter(w.Header(), occ, cap)
	}
	writeError(w, status, err)
}

// writeDecodeError answers an unreadable request body: 413 when it blew
// the size cap, 400 otherwise.
func writeDecodeError(w http.ResponseWriter, err error) {
	if httpx.TooLarge(err) {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
