package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// NewHandler exposes a Service over HTTP/JSON:
//
//	POST   /v1/jobs       submit a Spec → Submission (202; 200 on cache hit)
//	GET    /v1/jobs       list jobs (no result payloads)
//	GET    /v1/jobs/{id}  job status, with result once done
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /healthz       liveness
//	GET    /metrics       Prometheus text exposition
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sub, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		status := http.StatusAccepted
		if sub.CacheHit {
			status = http.StatusOK
		}
		writeJSON(w, status, sub)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobView `json:"jobs"`
		}{s.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrNotRunning):
			writeJSON(w, http.StatusConflict, v)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Snapshot().WritePrometheus(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
