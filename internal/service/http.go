package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// CacheIndexPath and CacheResultsPrefix are the cache-gossip surface
// every node serves: the index lists cached fingerprints, and a result
// is fetched by appending its fingerprint to the prefix.
const (
	CacheIndexPath     = "/v1/cache/index"
	CacheResultsPrefix = "/v1/cache/results/"
)

// HandlerConfig customises the HTTP surface for the node's cluster role.
// The zero value is a standalone node.
type HandlerConfig struct {
	// Role names the node's cluster role: standalone (default),
	// coordinator, or worker. Reported by /healthz.
	Role string
	// LiveWorkers, when non-nil, reports the number of currently healthy
	// cluster workers (coordinators set this). Reported by /healthz.
	LiveWorkers func() int
	// ClusterInfo, when non-nil, supplies the coordinator's elastic-
	// cluster state (ring version, steal/speculation counters, gossip
	// freshness) reported under /healthz's "cluster" key.
	ClusterInfo func() any
	// ExtraMetrics, when non-nil, is appended to the /metrics exposition
	// after the service's own metrics (cluster counters plug in here).
	ExtraMetrics func(io.Writer) error
	// Build, when non-nil, is the binary's build identity, reported under
	// /healthz's "build" key so operators can tell which build answered.
	Build any
}

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"`
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// LiveWorkers is present only on coordinators.
	LiveWorkers *int `json:"live_workers,omitempty"`
	// Cluster carries the coordinator's elastic-cluster state.
	Cluster any `json:"cluster,omitempty"`
	// Build is the binary's build identity (version, revision).
	Build any `json:"build,omitempty"`
}

// NewHandler exposes a standalone Service over HTTP/JSON. See
// NewHandlerWith for the endpoint list.
func NewHandler(s *Service) http.Handler {
	return NewHandlerWith(s, HandlerConfig{})
}

// NewHandlerWith exposes a Service over HTTP/JSON:
//
//	POST   /v1/jobs       submit a Spec → Submission (202; 200 on cache hit;
//	                      429 + Retry-After when the queue is full)
//	GET    /v1/jobs       list jobs (no result payloads)
//	GET    /v1/jobs/{id}  job status, with result once done
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /healthz       liveness, role, uptime, live workers
//	GET    /metrics       Prometheus text exposition
func NewHandlerWith(s *Service, cfg HandlerConfig) http.Handler {
	if cfg.Role == "" {
		cfg.Role = "standalone"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sub, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Back-pressure, not an outage: the client should retry the
			// same node after a backoff scaled to how full the queue is.
			occ, cap := s.QueueOccupancy()
			SetRetryAfter(w.Header(), occ, cap)
			writeError(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, ErrClosed):
			occ, cap := s.QueueOccupancy()
			SetRetryAfter(w.Header(), occ, cap)
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		status := http.StatusAccepted
		if sub.CacheHit {
			status = http.StatusOK
		}
		writeJSON(w, status, sub)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobView `json:"jobs"`
		}{s.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrNotRunning):
			writeJSON(w, http.StatusConflict, v)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET "+CacheIndexPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Fingerprints []string `json:"fingerprints"`
		}{s.CacheIndex()})
	})
	mux.HandleFunc("GET "+CacheResultsPrefix+"{fp}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := s.CachedResult(r.PathValue("fp"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		// The cached bytes are served verbatim: byte identity across the
		// fleet is the whole point of content-addressed results.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{
			Status:        "ok",
			Role:          cfg.Role,
			UptimeSeconds: s.Uptime().Seconds(),
		}
		if cfg.LiveWorkers != nil {
			n := cfg.LiveWorkers()
			h.LiveWorkers = &n
		}
		if cfg.ClusterInfo != nil {
			h.Cluster = cfg.ClusterInfo()
		}
		h.Build = cfg.Build
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.Snapshot().WritePrometheus(w); err != nil {
			return
		}
		if cfg.ExtraMetrics != nil {
			_ = cfg.ExtraMetrics(w)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
