package service

import "container/list"

// resultCache is a fixed-capacity LRU over encoded result bytes, keyed
// by spec fingerprint. Results are deterministic functions of their
// fingerprint, so eviction only ever costs recomputation, never
// correctness. Not safe for concurrent use; the Service serialises
// access under its mutex.
type resultCache struct {
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key, promoting the entry.
func (c *resultCache) get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// add inserts or refreshes key, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) add(key string, data []byte) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int { return c.order.Len() }

// keys returns every cached fingerprint, unordered.
func (c *resultCache) keys() []string {
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}
