// Package service turns the batch simulator into a long-running serving
// subsystem: a canonical, content-addressed job spec; a bounded FIFO job
// queue with per-job lifecycle states; a worker pool that executes jobs
// via the resilient replication runner with per-job cancellation and
// panic containment; an LRU result cache keyed by the spec fingerprint
// with single-flight deduplication; and an operational counters snapshot.
// cmd/scrubd exposes it over HTTP/JSON.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/ondie"
	"repro/internal/scrub"
	"repro/internal/trace"
)

// specVersion is folded into every fingerprint so a change to spec
// semantics (defaults, field meanings) invalidates old cache keys rather
// than silently serving results computed under different rules.
const specVersion = "scrubd/v1"

// MaxReplicas bounds the Monte Carlo fan-out of one job so a single
// submission cannot monopolise the daemon.
const MaxReplicas = 256

// GeometrySpec shapes the simulated region; zero-valued fields (or a nil
// GeometrySpec) select the study's default geometry.
type GeometrySpec struct {
	Channels     int `json:"channels"`
	RanksPerChan int `json:"ranks_per_chan"`
	BanksPerRank int `json:"banks_per_rank"`
	RowsPerBank  int `json:"rows_per_bank"`
	LinesPerRow  int `json:"lines_per_row"`
	LineBytes    int `json:"line_bytes"`
}

// geometry converts the wire form to the simulator's geometry.
func (g *GeometrySpec) geometry() mem.Geometry {
	return mem.Geometry{
		Channels: g.Channels, RanksPerChan: g.RanksPerChan, BanksPerRank: g.BanksPerRank,
		RowsPerBank: g.RowsPerBank, LinesPerRow: g.LinesPerRow, LineBytes: g.LineBytes,
	}
}

// geometrySpec converts the simulator's geometry to wire form.
func geometrySpec(g mem.Geometry) *GeometrySpec {
	return &GeometrySpec{
		Channels: g.Channels, RanksPerChan: g.RanksPerChan, BanksPerRank: g.BanksPerRank,
		RowsPerBank: g.RowsPerBank, LinesPerRow: g.LinesPerRow, LineBytes: g.LineBytes,
	}
}

// FaultSpec mirrors fault.Plan in wire form: per-site rates of the
// imperfect scrub controller. An all-zero (or absent) FaultSpec is the
// perfect-controller baseline.
type FaultSpec struct {
	ReadFlipRate    float64 `json:"read_flip_rate,omitempty"`
	ReadFlipMaxBits int     `json:"read_flip_max_bits,omitempty"`
	SweepSkipRate   float64 `json:"sweep_skip_rate,omitempty"`
	ProbeMissRate   float64 `json:"probe_miss_rate,omitempty"`
	StuckCheckRate  float64 `json:"stuck_check_rate,omitempty"`
	StuckCheckBits  int     `json:"stuck_check_bits,omitempty"`
	StallRate       float64 `json:"stall_rate,omitempty"`
	StallFactor     float64 `json:"stall_factor,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
}

// plan converts the wire form to the simulator's fault plan.
func (f *FaultSpec) plan() *fault.Plan {
	if f == nil {
		return nil
	}
	return &fault.Plan{
		ReadFlipRate:    f.ReadFlipRate,
		ReadFlipMaxBits: f.ReadFlipMaxBits,
		SweepSkipRate:   f.SweepSkipRate,
		ProbeMissRate:   f.ProbeMissRate,
		StuckCheckRate:  f.StuckCheckRate,
		StuckCheckBits:  f.StuckCheckBits,
		StallRate:       f.StallRate,
		StallFactor:     f.StallFactor,
		Seed:            f.Seed,
	}
}

// OnDieSpec mirrors ondie.Config in wire form: the chip-internal ECC
// layered under the controller. An all-zero (or absent) OnDieSpec is
// the no-on-die-ECC baseline.
type OnDieSpec struct {
	T            int     `json:"t,omitempty"`
	WeakT        int     `json:"weak_t,omitempty"`
	WeakFraction float64 `json:"weak_fraction,omitempty"`
}

// config converts the wire form to the simulator's on-die config.
func (o *OnDieSpec) config() *ondie.Config {
	if o == nil {
		return nil
	}
	return &ondie.Config{T: o.T, WeakT: o.WeakT, WeakFraction: o.WeakFraction}
}

// Spec is the canonical description of one simulation job: the system,
// the mechanism, the workload, and the replica count. Two specs that
// normalise identically denote the same deterministic computation and
// share one fingerprint — the key of the result cache and of
// single-flight deduplication.
type Spec struct {
	// Mechanism names a suite mechanism:
	// basic|strong-ecc|light-detect|threshold|combined ("" = combined).
	Mechanism string `json:"mechanism,omitempty"`
	// Scheme optionally overrides the ECC scheme: SECDED, BCH-<t>, RS-<t>.
	Scheme string `json:"scheme,omitempty"`
	// Policy optionally overrides the scrub policy:
	// basic|always|light|threshold-<k>|combined-<k>.
	Policy string `json:"policy,omitempty"`
	// IntervalSec optionally overrides the initial sweep interval
	// (0 = derived from the drift model).
	IntervalSec float64 `json:"interval_sec,omitempty"`
	// Workload names a built-in workload (required).
	Workload string `json:"workload"`
	// HorizonSec is the simulated duration (0 = system default).
	HorizonSec float64 `json:"horizon_sec,omitempty"`
	// Seed is the base simulation seed (0 = default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Replicas is the Monte Carlo replica count (0 = 1; max MaxReplicas).
	Replicas int `json:"replicas,omitempty"`
	// AgedWrites pre-ages every line by this many writes.
	AgedWrites uint32 `json:"aged_writes,omitempty"`
	// Substeps per sweep (0 = simulator default).
	Substeps int `json:"substeps,omitempty"`
	// RiskTarget for derived intervals (0 = system default).
	RiskTarget float64 `json:"risk_target,omitempty"`
	// Geometry optionally shrinks or grows the simulated region.
	Geometry *GeometrySpec `json:"geometry,omitempty"`
	// Fault optionally injects scrub-path faults.
	Fault *FaultSpec `json:"fault,omitempty"`
	// OnDie optionally layers chip-internal ECC under the controller.
	OnDie *OnDieSpec `json:"ondie,omitempty"`
	// TimeoutSec is the job's execution deadline in wall seconds
	// (0 = none). The budget bounds the whole run and propagates through
	// every shard RPC a cluster coordinator issues for the job.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Priority names the job's scheduling class: interactive, normal, or
	// batch ("" = normal). It steers admission control and queue order
	// only — the computation is identical across classes, so priority is
	// excluded from the fingerprint and two submissions that differ only
	// in priority dedup onto one run.
	Priority string `json:"priority,omitempty"`
	// DeadlineAt is an absolute completion deadline (RFC 3339, optionally
	// with sub-second precision; "" = none). Jobs whose deadline has
	// already passed are rejected at admission; jobs whose deadline
	// expires while queued are reaped without running. Within a class the
	// queue serves earliest deadline first. Like Priority, the deadline
	// is a scheduling hint, not part of the computation's identity, so it
	// is excluded from the fingerprint.
	DeadlineAt string `json:"deadline_at,omitempty"`
}

// Priority class names accepted in Spec.Priority.
const (
	PriorityInteractive = "interactive"
	PriorityNormal      = "normal"
	PriorityBatch       = "batch"
)

// Class is a spec's scheduling class, ordered so a higher value is
// served first (strict precedence, subject to the aging knob).
type Class int

const (
	ClassBatch Class = iota
	ClassNormal
	ClassInteractive
	numClasses
)

// String returns the class's wire name.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return PriorityInteractive
	case ClassBatch:
		return PriorityBatch
	default:
		return PriorityNormal
	}
}

// ClassOf maps a Spec.Priority value to its scheduling class.
func ClassOf(priority string) (Class, error) {
	switch priority {
	case "", PriorityNormal:
		return ClassNormal, nil
	case PriorityInteractive:
		return ClassInteractive, nil
	case PriorityBatch:
		return ClassBatch, nil
	}
	return ClassNormal, fmt.Errorf("service: unknown priority %q (want %s, %s, or %s)",
		priority, PriorityInteractive, PriorityNormal, PriorityBatch)
}

// Class returns the spec's scheduling class; only meaningful on a
// normalised spec (whose priority is known valid).
func (s Spec) Class() Class {
	c, _ := ClassOf(s.Priority)
	return c
}

// DeadlineTime parses the spec's completion deadline. ok is false when
// the spec carries none.
func (s Spec) DeadlineTime() (t time.Time, ok bool, err error) {
	if s.DeadlineAt == "" {
		return time.Time{}, false, nil
	}
	t, err = time.Parse(time.RFC3339Nano, s.DeadlineAt)
	if err != nil {
		return time.Time{}, false, fmt.Errorf("service: bad deadline_at %q (want RFC 3339): %v", s.DeadlineAt, err)
	}
	return t, true, nil
}

// withoutScheduling returns the spec with its scheduling-only fields
// cleared. Priority and deadline steer *when* a job runs, never *what*
// it computes, so the content address and the spec embedded in results
// are taken over this form — a batch and an interactive submission of
// the same work share one fingerprint, one cache entry, and one set of
// result bytes.
func (s Spec) withoutScheduling() Spec {
	s.Priority = ""
	s.DeadlineAt = ""
	return s
}

// Normalized returns the spec with every defaultable field materialised,
// so a spec that spells out a default fingerprints identically to one
// that omits it. It validates as it goes; the returned spec is the one
// the runner executes and the one embedded in results.
func (s Spec) Normalized() (Spec, error) {
	n := s
	if n.Mechanism == "" {
		n.Mechanism = "combined"
	}
	if n.Seed == 0 {
		n.Seed = core.DefaultSystem().Seed
	}
	if n.Replicas == 0 {
		n.Replicas = 1
	}
	if n.Replicas < 1 || n.Replicas > MaxReplicas {
		return Spec{}, fmt.Errorf("service: replicas must be in [1,%d], got %d", MaxReplicas, n.Replicas)
	}
	if n.TimeoutSec < 0 {
		return Spec{}, fmt.Errorf("service: timeout_sec must be non-negative, got %g", n.TimeoutSec)
	}
	if _, err := ClassOf(n.Priority); err != nil {
		return Spec{}, err
	}
	if dl, ok, err := n.DeadlineTime(); err != nil {
		return Spec{}, err
	} else if ok {
		// Canonical RFC 3339 nanoseconds, so equal instants spelled
		// differently render (and sort) identically.
		n.DeadlineAt = dl.Format(time.RFC3339Nano)
	}
	def := core.DefaultSystem()
	if n.HorizonSec == 0 {
		n.HorizonSec = def.Horizon
	}
	if n.RiskTarget == 0 {
		n.RiskTarget = def.RiskTarget
	}
	if n.Geometry == nil || *n.Geometry == (GeometrySpec{}) {
		n.Geometry = geometrySpec(def.Geometry)
	} else {
		// A partially specified geometry is ambiguous, not defaultable.
		geo := *n.Geometry
		n.Geometry = &geo // don't alias the caller's struct
	}
	if n.Fault != nil {
		if !n.Fault.plan().Enabled() {
			// Validate before discarding: a negative rate is an error, not
			// the baseline.
			if err := n.Fault.plan().Validate(); err != nil {
				return Spec{}, err
			}
			n.Fault = nil // all-zero plan is byte-identical to no plan
		} else {
			f := *n.Fault
			n.Fault = &f
		}
	}
	if n.OnDie != nil {
		if !n.OnDie.config().Enabled() {
			// Validate before discarding: a negative strength is an error,
			// not the baseline.
			if err := n.OnDie.config().Validate(); err != nil {
				return Spec{}, err
			}
			n.OnDie = nil // a disabled layer is byte-identical to none
		} else {
			o := *n.OnDie
			n.OnDie = &o
		}
	}
	// Building the system/mechanism/workload exercises every remaining
	// validation path (unknown names, invalid rates, unreachable risk
	// targets) before the job is accepted.
	if _, _, _, err := n.Build(); err != nil {
		return Spec{}, err
	}
	return n, nil
}

// Fingerprint is the stable content address of a normalised spec: the
// hex SHA-256 of its canonical JSON encoding under the spec version,
// with scheduling-only fields (priority, deadline) excluded — they
// change when a job runs, not what it computes. Only meaningful on the
// output of Normalized.
func (s Spec) Fingerprint() string {
	s = s.withoutScheduling()
	data, err := json.Marshal(s)
	if err != nil {
		// A Spec is a closed tree of marshalable types; this is unreachable.
		panic(fmt.Sprintf("service: spec marshal: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(specVersion))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// Build assembles the runnable triple the core runners take. It applies
// the spec onto the study's default system, mirroring the scrubsim CLI's
// override order: suite mechanism first, then scheme/policy/interval.
func (s Spec) Build() (core.System, core.Mechanism, trace.Workload, error) {
	sys := core.DefaultSystem()
	if g := s.Geometry; g != nil && *g != (GeometrySpec{}) {
		sys.Geometry = g.geometry()
	}
	if s.HorizonSec > 0 {
		sys.Horizon = s.HorizonSec
	}
	if s.RiskTarget > 0 {
		sys.RiskTarget = s.RiskTarget
	}
	if s.Seed != 0 {
		sys.Seed = s.Seed
	}
	sys.InitialLineWrites = s.AgedWrites
	sys.Substeps = s.Substeps
	if plan := s.Fault.plan(); plan.Enabled() {
		sys.Fault = plan
	} else if plan != nil {
		if err := plan.Validate(); err != nil {
			return core.System{}, core.Mechanism{}, trace.Workload{}, err
		}
	}
	if cfg := s.OnDie.config(); cfg.Enabled() {
		if err := cfg.Validate(); err != nil {
			return core.System{}, core.Mechanism{}, trace.Workload{}, err
		}
		sys.OnDie = cfg
	} else if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return core.System{}, core.Mechanism{}, trace.Workload{}, err
		}
	}
	if s.Workload == "" {
		return core.System{}, core.Mechanism{}, trace.Workload{}, fmt.Errorf("service: spec needs a workload")
	}
	w, err := trace.ByName(s.Workload)
	if err != nil {
		return core.System{}, core.Mechanism{}, trace.Workload{}, err
	}
	mechName := s.Mechanism
	if mechName == "" {
		mechName = "combined"
	}
	mech, err := core.SuiteMechanism(sys, mechName)
	if err != nil {
		return core.System{}, core.Mechanism{}, trace.Workload{}, err
	}
	if s.Scheme != "" {
		sch, err := ecc.ByName(s.Scheme)
		if err != nil {
			return core.System{}, core.Mechanism{}, trace.Workload{}, err
		}
		mech.Scheme = sch
		mech.Name = s.Scheme + "+" + mech.Policy.Name()
	}
	if s.Policy != "" {
		p, err := scrub.ByName(s.Policy)
		if err != nil {
			return core.System{}, core.Mechanism{}, trace.Workload{}, err
		}
		mech.Policy = p
		mech.Name = mech.Scheme.Name() + "+" + p.Name()
	}
	if s.IntervalSec < 0 {
		return core.System{}, core.Mechanism{}, trace.Workload{}, fmt.Errorf("service: interval must be non-negative")
	}
	if s.IntervalSec > 0 {
		mech.Interval = s.IntervalSec
	}
	return sys, mech, w, nil
}
