package service

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/journal"
)

// openJournal opens (or reopens) a journal in dir and fails the test on
// error.
func openJournal(t *testing.T, dir string) (*journal.Journal, *journal.Recovery) {
	t.Helper()
	jn, rec, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open(%s): %v", dir, err)
	}
	return jn, rec
}

// TestJournalRecoveryReExecutesIncomplete is the core durability loop: a
// journaled submission that never finished (the daemon "crashed") is
// re-enqueued on recovery under its original ID and runs to completion.
func TestJournalRecoveryReExecutesIncomplete(t *testing.T) {
	dir := t.TempDir()
	spec := mustNormalize(t, tinySpec(3))

	// Incarnation one accepts the job and "crashes" before running it:
	// write the submission record exactly as Submit does, then stop.
	jn, _ := openJournal(t, dir)
	specJSON, _ := json.Marshal(spec)
	if err := jn.Append(journal.Record{
		Type: journal.TypeSubmitted, Job: "job-000007",
		Fingerprint: spec.Fingerprint(), Spec: specJSON,
	}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := jn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Incarnation two replays the journal before serving.
	jn2, rec := openJournal(t, dir)
	defer jn2.Close()
	cr := &countingRunner{}
	s := New(Config{Workers: 1, Runner: cr.run, Journal: jn2})
	defer shutdown(t, s)
	n, err := s.Recover(rec)
	if err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v; want 1 requeued", n, err)
	}
	v := waitState(t, s, "job-000007", StateDone)
	if !v.Recovered {
		t.Error("recovered job not flagged Recovered")
	}
	if cr.runs.Load() != 1 {
		t.Errorf("runner ran %d times, want 1", cr.runs.Load())
	}
	// The ID counter resumed past the recovered ID.
	sub := mustSubmit(t, s, mustNormalize(t, tinySpec(99)))
	if sub.ID <= "job-000007" {
		t.Errorf("post-recovery ID %s did not resume past recovered IDs", sub.ID)
	}
	if s.Snapshot().JobsRecovered != 1 {
		t.Errorf("JobsRecovered = %d, want 1", s.Snapshot().JobsRecovered)
	}
}

// TestJournalRecoveryRestoresTerminal replays a completed job: its result
// re-seeds the cache (a resubmission is a cache hit, no re-execution) and
// its view is served verbatim.
func TestJournalRecoveryRestoresTerminal(t *testing.T) {
	dir := t.TempDir()
	spec := mustNormalize(t, tinySpec(5))

	jn, _ := openJournal(t, dir)
	cr := &countingRunner{}
	s1 := New(Config{Workers: 1, Runner: cr.run, Journal: jn})
	sub := mustSubmit(t, s1, spec)
	want := waitState(t, s1, sub.ID, StateDone)
	shutdown(t, s1)
	jn.Close()

	jn2, rec := openJournal(t, dir)
	defer jn2.Close()
	s2 := New(Config{Workers: 1, Runner: cr.run, Journal: jn2})
	defer shutdown(t, s2)
	n, err := s2.Recover(rec)
	if err != nil || n != 0 {
		t.Fatalf("Recover = %d, %v; want 0 requeued (job was done)", n, err)
	}
	got, err := s2.Get(sub.ID)
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if got.State != StateDone {
		t.Fatalf("restored job state %q, want done", got.State)
	}
	if string(got.Result) != string(want.Result) {
		t.Errorf("restored result differs from original:\n got %s\nwant %s", got.Result, want.Result)
	}
	// Cache was re-seeded: the same spec answers without running.
	runsBefore := cr.runs.Load()
	re := mustSubmit(t, s2, spec)
	if !re.CacheHit {
		t.Error("resubmission after recovery missed the re-seeded cache")
	}
	if cr.runs.Load() != runsBefore {
		t.Error("cache-hit resubmission re-executed the job")
	}
	if s2.Snapshot().JobsRestored != 1 {
		t.Errorf("JobsRestored = %d, want 1", s2.Snapshot().JobsRestored)
	}
}

// TestRecoverCancelledWhileDown pins the replay rule the ISSUE calls out:
// a job cancelled before the crash recovers directly into cancelled and
// is never re-executed, even though started/submitted records precede the
// cancellation in the journal.
func TestRecoverCancelledWhileDown(t *testing.T) {
	dir := t.TempDir()
	spec := mustNormalize(t, tinySpec(11))

	jn, _ := openJournal(t, dir)
	specJSON, _ := json.Marshal(spec)
	for _, rec := range []journal.Record{
		{Type: journal.TypeSubmitted, Job: "job-000001", Fingerprint: spec.Fingerprint(), Spec: specJSON},
		{Type: journal.TypeStarted, Job: "job-000001"},
		{Type: journal.TypeCancelled, Job: "job-000001", Error: "cancelled by request"},
	} {
		if err := jn.Append(rec); err != nil {
			t.Fatalf("append %s: %v", rec.Type, err)
		}
	}
	jn.Close()

	jn2, rec := openJournal(t, dir)
	defer jn2.Close()
	cr := &countingRunner{}
	s := New(Config{Workers: 1, Runner: cr.run, Journal: jn2})
	defer shutdown(t, s)
	n, err := s.Recover(rec)
	if err != nil || n != 0 {
		t.Fatalf("Recover = %d, %v; want 0 requeued", n, err)
	}
	v, err := s.Get("job-000001")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v.State != StateCancelled {
		t.Fatalf("state %q, want cancelled", v.State)
	}
	// Give any wrongly enqueued execution a moment to surface.
	time.Sleep(20 * time.Millisecond)
	if cr.runs.Load() != 0 {
		t.Fatalf("cancelled-while-down job re-executed %d times", cr.runs.Load())
	}
}

// TestCancelDuringRecoveryWins races a DELETE against a recovered job's
// re-execution: the cancel lands while the recovered job is running and
// the job must end cancelled, its raced outcome discarded.
func TestCancelDuringRecoveryWins(t *testing.T) {
	dir := t.TempDir()
	spec := mustNormalize(t, tinySpec(13))

	jn, _ := openJournal(t, dir)
	specJSON, _ := json.Marshal(spec)
	if err := jn.Append(journal.Record{
		Type: journal.TypeSubmitted, Job: "job-000001",
		Fingerprint: spec.Fingerprint(), Spec: specJSON,
	}); err != nil {
		t.Fatalf("append: %v", err)
	}
	jn.Close()

	jn2, rec := openJournal(t, dir)
	defer jn2.Close()
	br := newBlockingRunner()
	s := New(Config{Workers: 1, Runner: br.run, Journal: jn2})
	defer shutdown(t, s)
	if n, err := s.Recover(rec); err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v; want 1", n, err)
	}
	<-br.started // the recovered job is now mid-execution
	if _, err := s.Cancel("job-000001"); err != nil {
		t.Fatalf("Cancel during recovery: %v", err)
	}
	v := waitState(t, s, "job-000001", StateCancelled)
	if v.Result != nil {
		t.Error("cancelled recovered job served a result")
	}

	// The DELETE is durable: a third incarnation recovers the job as
	// cancelled and does not run it.
	close(br.release)
	shutdown(t, s)
	jn2.Close()
	jn3, rec3 := openJournal(t, dir)
	defer jn3.Close()
	cr := &countingRunner{}
	s3 := New(Config{Workers: 1, Runner: cr.run, Journal: jn3})
	defer shutdown(t, s3)
	if n, err := s3.Recover(rec3); err != nil || n != 0 {
		t.Fatalf("third-incarnation Recover = %d, %v; want 0", n, err)
	}
	v3, err := s3.Get("job-000001")
	if err != nil || v3.State != StateCancelled {
		t.Fatalf("third incarnation sees %q (%v), want cancelled", v3.State, err)
	}
	time.Sleep(20 * time.Millisecond)
	if cr.runs.Load() != 0 {
		t.Fatalf("cancelled job re-executed after second recovery")
	}
}

// TestJournalWriteAheadOrdering checks the submission barrier: the
// journal holds the submitted record even if the daemon dies immediately
// after Submit returns — i.e. the record is on disk before the 202.
func TestJournalWriteAheadOrdering(t *testing.T) {
	dir := t.TempDir()
	spec := mustNormalize(t, tinySpec(17))

	jn, _ := openJournal(t, dir)
	br := newBlockingRunner()
	s := New(Config{Workers: 1, Runner: br.run, Journal: jn})
	sub := mustSubmit(t, s, spec)
	// No shutdown, no drain: read the journal from a second handle as a
	// crash-consistent observer would.
	_, rec := openJournalReadOnly(t, dir)
	js := rec.Job(sub.ID)
	if js == nil {
		t.Fatalf("submitted record for %s not durable at Submit return", sub.ID)
	}
	if !js.Incomplete() {
		t.Fatalf("fresh submission replayed as terminal %q", js.State)
	}
	close(br.release)
	shutdown(t, s)
	jn.Close()
}

// openJournalReadOnly replays dir's journal without keeping the handle
// (the file stays owned by the live daemon in the test above).
func openJournalReadOnly(t *testing.T, dir string) (*journal.Journal, *journal.Recovery) {
	t.Helper()
	jn, rec, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open(%s): %v", dir, err)
	}
	jn.Close()
	return jn, rec
}

// TestRecoveredJobCarriesShardResume checks that a recovered job's
// journaled plan and shard checkpoints reach the runner through the
// context ShardLog.
func TestRecoveredJobCarriesShardResume(t *testing.T) {
	dir := t.TempDir()
	spec := mustNormalize(t, tinySpec(19))

	plan := []journal.ShardRange{{First: 0, Count: 2}, {First: 2, Count: 1}}
	payload := json.RawMessage(`{"first":0,"count":2}`)
	jn, _ := openJournal(t, dir)
	specJSON, _ := json.Marshal(spec)
	for _, rec := range []journal.Record{
		{Type: journal.TypeSubmitted, Job: "job-000001", Fingerprint: spec.Fingerprint(), Spec: specJSON},
		{Type: journal.TypeStarted, Job: "job-000001"},
		{Type: journal.TypePlan, Job: "job-000001", Plan: plan},
		{Type: journal.TypeShardDone, Job: "job-000001", Shard: &plan[0], Payload: payload},
	} {
		if err := jn.Append(rec); err != nil {
			t.Fatalf("append %s: %v", rec.Type, err)
		}
	}
	jn.Close()

	jn2, rec := openJournal(t, dir)
	defer jn2.Close()
	got := make(chan *ShardLog, 1)
	runner := func(ctx context.Context, spec Spec) (*Result, error) {
		got <- ShardLogFrom(ctx)
		return stubResult(spec), nil
	}
	s := New(Config{Workers: 1, Runner: runner, Journal: jn2})
	defer shutdown(t, s)
	if n, err := s.Recover(rec); err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v; want 1", n, err)
	}
	select {
	case sl := <-got:
		if sl == nil {
			t.Fatal("recovered job ran without a ShardLog")
		}
		if len(sl.Plan) != 2 || sl.Plan[0] != plan[0] || sl.Plan[1] != plan[1] {
			t.Errorf("resume plan %v, want %v", sl.Plan, plan)
		}
		if string(sl.Checkpoints[plan[0]]) != string(payload) {
			t.Errorf("checkpoint payload %s, want %s", sl.Checkpoints[plan[0]], payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recovered job never ran")
	}
	waitState(t, s, "job-000001", StateDone)
}
