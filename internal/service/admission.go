package service

import (
	"errors"
	"fmt"
	"time"
)

// ShedState is the service's load-shedding position, a pure function of
// queue occupancy against the configured watermarks. The service walks
// the ladder healthy → shed-batch → shed-normal → interactive-only as
// the queue fills and back down as it drains — no latched state, so
// recovery is automatic.
type ShedState int

const (
	// ShedHealthy admits every class.
	ShedHealthy ShedState = iota
	// ShedBatch refuses fresh batch work; batch cache hits and dedups
	// still ride the cheap path.
	ShedBatch
	// ShedNormal refuses fresh batch and normal work.
	ShedNormal
	// ShedInteractiveOnly serves interactive traffic exclusively: even
	// the cache-hit and dedup fast paths of lower classes are refused,
	// shedding their request-processing cost, not just their queue slots.
	ShedInteractiveOnly
)

// String returns the state's wire name, reported by /healthz and the
// scrubd_admission_state metric.
func (s ShedState) String() string {
	switch s {
	case ShedBatch:
		return "shed-batch"
	case ShedNormal:
		return "shed-normal"
	case ShedInteractiveOnly:
		return "interactive-only"
	default:
		return "healthy"
	}
}

// AdmitsFresh reports whether the state still enqueues fresh work of a
// class.
func (s ShedState) AdmitsFresh(c Class) bool {
	switch s {
	case ShedHealthy:
		return true
	case ShedBatch:
		return c >= ClassNormal
	default: // ShedNormal, ShedInteractiveOnly
		return c == ClassInteractive
	}
}

// AdmitsCheap reports whether the state still serves a class's cache-hit
// and dedup fast paths.
func (s ShedState) AdmitsCheap(c Class) bool {
	return s != ShedInteractiveOnly || c == ClassInteractive
}

// ShedConfig sets the occupancy watermarks (fractions of queue capacity)
// at which each shedding stage engages. Watermarks must be monotone:
// 0 < BatchPct <= NormalPct <= InteractivePct <= 1.
type ShedConfig struct {
	// BatchPct is the occupancy at or above which fresh batch work is
	// refused.
	BatchPct float64 `json:"batch_pct"`
	// NormalPct is the occupancy at or above which fresh normal work is
	// also refused.
	NormalPct float64 `json:"normal_pct"`
	// InteractivePct is the occupancy at or above which only interactive
	// traffic is processed at all.
	InteractivePct float64 `json:"interactive_pct"`
}

// DefaultShedConfig is the watermark ladder scrubd runs with unless
// reconfigured: shed batch at half full, normal at three quarters,
// everything but interactive at ninety percent.
func DefaultShedConfig() ShedConfig {
	return ShedConfig{BatchPct: 0.50, NormalPct: 0.75, InteractivePct: 0.90}
}

// Validate rejects non-monotone or out-of-range watermarks.
func (c ShedConfig) Validate() error {
	if c.BatchPct <= 0 || c.InteractivePct > 1 ||
		c.BatchPct > c.NormalPct || c.NormalPct > c.InteractivePct {
		return fmt.Errorf("service: shed watermarks must satisfy 0 < batch (%g) <= normal (%g) <= interactive (%g) <= 1",
			c.BatchPct, c.NormalPct, c.InteractivePct)
	}
	return nil
}

// state maps a queue occupancy onto the shedding ladder.
func (c ShedConfig) state(occupied, capacity int) ShedState {
	if capacity <= 0 {
		return ShedHealthy
	}
	frac := float64(occupied) / float64(capacity)
	switch {
	case frac >= c.InteractivePct:
		return ShedInteractiveOnly
	case frac >= c.NormalPct:
		return ShedNormal
	case frac >= c.BatchPct:
		return ShedBatch
	default:
		return ShedHealthy
	}
}

// Admission-path sentinel errors; the HTTP layer maps them to statuses
// (429 for rate limiting and queue-full, 503 for shedding, 422 for an
// already-dead deadline).
var (
	ErrRateLimited     = errors.New("service: tenant rate limit exceeded")
	ErrShedding        = errors.New("service: shedding load")
	ErrDeadlineExpired = errors.New("service: deadline already expired")
)

// RateLimitError reports a tenant bucket refusal and how long until the
// next token, the Retry-After the HTTP layer returns.
type RateLimitError struct {
	Tenant string
	Wait   time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("service: tenant %q over its submission rate (retry in %s)", e.Tenant, e.Wait.Round(time.Millisecond))
}

func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// ShedError reports a class refused by the current shed state.
type ShedError struct {
	State ShedState
	Class Class
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("service: %s work shed (state %s)", e.Class, e.State)
}

func (e *ShedError) Is(target error) bool { return target == ErrShedding }

// maxTenantBuckets bounds the bucket map: past this, full (idle) buckets
// are swept so a fleet of one-shot tenants cannot grow memory unboundedly.
const maxTenantBuckets = 16384

// tokenBuckets is the per-tenant admission rate limiter: a classic token
// bucket per tenant key, refilled lazily on access from the service
// clock, so there is no background goroutine and tests can drive it with
// a fake clock.
type tokenBuckets struct {
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newTokenBuckets returns nil when rate limiting is disabled.
func newTokenBuckets(rate float64, burst int) *tokenBuckets {
	if rate <= 0 || burst <= 0 {
		return nil
	}
	return &tokenBuckets{rate: rate, burst: float64(burst), buckets: make(map[string]*tokenBucket)}
}

// take spends one token from tenant's bucket, refilling it first. When
// the bucket is dry it reports the wait until the next token. Caller
// holds the service mutex.
func (tb *tokenBuckets) take(tenant string, now time.Time) (ok bool, wait time.Duration) {
	b := tb.buckets[tenant]
	if b == nil {
		if len(tb.buckets) >= maxTenantBuckets {
			tb.sweep(now)
		}
		b = &tokenBucket{tokens: tb.burst, last: now}
		tb.buckets[tenant] = b
	} else {
		b.refill(tb, now)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / tb.rate * float64(time.Second))
}

// refill credits tokens for the time since the last access.
func (b *tokenBucket) refill(tb *tokenBuckets, now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * tb.rate
		if b.tokens > tb.burst {
			b.tokens = tb.burst
		}
	}
	b.last = now
}

// sweep drops buckets that have refilled to full — idle tenants whose
// state carries no information beyond the default.
func (tb *tokenBuckets) sweep(now time.Time) {
	for k, b := range tb.buckets {
		b.refill(tb, now)
		if b.tokens >= tb.burst {
			delete(tb.buckets, k)
		}
	}
}

// AdmissionView is the admission-control block /healthz reports: the
// current shed state, queue occupancy overall and per class, and the
// watermark ladder in force.
type AdmissionView struct {
	State         string `json:"state"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Interactive   int    `json:"queue_interactive"`
	Normal        int    `json:"queue_normal"`
	Batch         int    `json:"queue_batch"`
	// Watermarks is nil when shedding is disabled.
	Watermarks *ShedConfig `json:"watermarks,omitempty"`
	// RateLimited reports whether per-tenant token buckets are engaged.
	RateLimited bool `json:"rate_limited,omitempty"`
}

// Admission returns the current admission-control view.
func (s *Service) Admission() AdmissionView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := AdmissionView{
		State:         s.shedStateLocked().String(),
		QueueDepth:    s.pq.len(),
		QueueCapacity: s.queueCap,
		Interactive:   s.pq.classDepth(ClassInteractive),
		Normal:        s.pq.classDepth(ClassNormal),
		Batch:         s.pq.classDepth(ClassBatch),
		RateLimited:   s.tenants != nil,
	}
	if s.shed != nil {
		wm := *s.shed
		v.Watermarks = &wm
	}
	return v
}

// shedStateLocked computes the shedding position from the live queue
// occupancy. Caller holds s.mu.
func (s *Service) shedStateLocked() ShedState {
	return s.shedStateFor(0)
}
