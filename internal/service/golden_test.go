package service

import (
	"encoding/json"
	"testing"
)

// Golden fingerprints pin the content-address scheme. A cluster relies
// on every node — and every future build — agreeing on these bytes: the
// coordinator caches whole jobs under them, and a drift would silently
// invalidate caches or, worse, collide distinct specs. If a change here
// is intentional, bump specVersion so old cache keys retire explicitly,
// and regenerate these constants.
var goldenFingerprints = []struct {
	name string
	spec Spec
	want string
}{
	{
		name: "default-combined",
		spec: Spec{Workload: "db-oltp"},
		want: "c725d371f22fbb1d450fcda204b0004c1f1aeee38808af185189d3e662be4df1",
	},
	{
		name: "tiny-basic-8",
		spec: Spec{
			Mechanism:  "basic",
			Workload:   "db-oltp",
			HorizonSec: 20000,
			Seed:       7,
			Replicas:   8,
			Geometry: &GeometrySpec{
				Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
				RowsPerBank: 8, LinesPerRow: 8, LineBytes: 64,
			},
		},
		want: "4f09a2c51be4fa86e52a3723b67394c6fd0c714ce7c1c86d3328d54357e12631",
	},
	{
		name: "kv-faulty",
		spec: Spec{
			Mechanism: "combined", Workload: "kv-store", Seed: 42,
			Fault: &FaultSpec{ReadFlipRate: 0.001, SweepSkipRate: 0.01},
		},
		want: "2fbdbc8d5d6bb8d9df573a0277a2c87e131b6f7030c0cb4f8f10bf96a2e56612",
	},
}

func TestGoldenFingerprints(t *testing.T) {
	for _, tc := range goldenFingerprints {
		norm := mustNormalize(t, tc.spec)
		if got := norm.Fingerprint(); got != tc.want {
			t.Errorf("%s: fingerprint = %s, want %s (content-address scheme changed; bump specVersion)",
				tc.name, got, tc.want)
		}
	}
}

// TestGoldenFingerprintFieldOrder re-derives a golden spec from JSON with
// the fields spelled in a scrambled order and checks the fingerprint is
// unchanged — the canonical encoding, not the wire order, is hashed.
func TestGoldenFingerprintFieldOrder(t *testing.T) {
	scrambled := `{
		"geometry": {"line_bytes": 64, "lines_per_row": 8, "rows_per_bank": 8,
			"banks_per_rank": 2, "ranks_per_chan": 1, "channels": 1},
		"replicas": 8,
		"seed": 7,
		"horizon_sec": 20000,
		"workload": "db-oltp",
		"mechanism": "basic"
	}`
	var spec Spec
	if err := json.Unmarshal([]byte(scrambled), &spec); err != nil {
		t.Fatalf("unmarshal scrambled spec: %v", err)
	}
	norm := mustNormalize(t, spec)
	if got, want := norm.Fingerprint(), goldenFingerprints[1].want; got != want {
		t.Errorf("scrambled field order changed the fingerprint: %s, want %s", got, want)
	}
}

// TestGoldenFingerprintExplicitDefaults pins that spelling out a default
// hits the same golden value as omitting it.
func TestGoldenFingerprintExplicitDefaults(t *testing.T) {
	explicit := mustNormalize(t, Spec{Workload: "db-oltp", Mechanism: "combined", Seed: 1, Replicas: 1})
	if got, want := explicit.Fingerprint(), goldenFingerprints[0].want; got != want {
		t.Errorf("explicit defaults changed the fingerprint: %s, want %s", got, want)
	}
}
