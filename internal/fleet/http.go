package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/httpx"
)

// RegisterRoutes mounts the fleet control surface on mux, mirroring the
// EDAC scrub-control ABI over HTTP/JSON:
//
//	POST   /v1/fleet/devices                register a device (201)
//	GET    /v1/fleet/devices                list devices
//	GET    /v1/fleet/devices/{id}           one device's state
//	DELETE /v1/fleet/devices/{id}           remove a device
//	GET    /v1/fleet/devices/{id}/patrol    patrol configuration
//	PATCH  /v1/fleet/devices/{id}/patrol    live-reconfigure the session
//	POST   /v1/fleet/devices/{id}/scrubs    submit an on-demand region scrub (202)
//	GET    /v1/fleet/devices/{id}/scrubs    list the device's scrubs
//	GET    /v1/fleet/devices/{id}/scrubs/{sid}  one scrub's report
//	GET    /v1/fleet/devices/{id}/telemetry error statistics (?limit=N)
//	GET    /v1/fleet/devices/{id}/repairs   repair-event audit log
func (m *Manager) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fleet/devices", func(w http.ResponseWriter, r *http.Request) {
		var spec DeviceSpec
		if err := httpx.DecodeJSON(w, r, m.MaxBodyBytes, true, &spec); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		v, err := m.Register(spec)
		if err != nil {
			httpError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		httpJSON(w, http.StatusCreated, v)
	})
	mux.HandleFunc("GET /v1/fleet/devices", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, struct {
			Devices []DeviceView `json:"devices"`
		}{m.List()})
	})
	mux.HandleFunc("GET /v1/fleet/devices/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		httpJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/fleet/devices/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Remove(r.PathValue("id")); err != nil {
			httpError(w, statusFor(err, http.StatusInternalServerError), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/fleet/devices/{id}/patrol", func(w http.ResponseWriter, r *http.Request) {
		d, err := m.device(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		httpJSON(w, http.StatusOK, d.Patrol())
	})
	mux.HandleFunc("PATCH /v1/fleet/devices/{id}/patrol", func(w http.ResponseWriter, r *http.Request) {
		var p PatrolPatch
		if err := httpx.DecodeJSON(w, r, m.MaxBodyBytes, true, &p); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		cfg, err := m.Patch(r.PathValue("id"), p)
		if err != nil {
			httpError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		httpJSON(w, http.StatusOK, cfg)
	})
	mux.HandleFunc("POST /v1/fleet/devices/{id}/scrubs", func(w http.ResponseWriter, r *http.Request) {
		var req ScrubRequest
		if err := httpx.DecodeJSON(w, r, m.MaxBodyBytes, true, &req); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		v, err := m.EnqueueScrub(r.PathValue("id"), req)
		if err != nil {
			httpError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		httpJSON(w, http.StatusAccepted, v)
	})
	mux.HandleFunc("GET /v1/fleet/devices/{id}/scrubs", func(w http.ResponseWriter, r *http.Request) {
		vs, err := m.Scrubs(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		httpJSON(w, http.StatusOK, struct {
			Scrubs []ScrubView `json:"scrubs"`
		}{vs})
	})
	mux.HandleFunc("GET /v1/fleet/devices/{id}/scrubs/{sid}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Scrub(r.PathValue("id"), r.PathValue("sid"))
		if err != nil {
			httpError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		httpJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /v1/fleet/devices/{id}/telemetry", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				httpError(w, http.StatusBadRequest, errors.New("fleet: limit must be a non-negative integer"))
				return
			}
			limit = n
		}
		lt, err := m.Telemetry(r.PathValue("id"), limit)
		if err != nil {
			httpError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		httpJSON(w, http.StatusOK, struct {
			Lines []LineTelemetry `json:"lines"`
		}{lt})
	})
	mux.HandleFunc("GET /v1/fleet/devices/{id}/repairs", func(w http.ResponseWriter, r *http.Request) {
		evs, err := m.Repairs(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		httpJSON(w, http.StatusOK, struct {
			Repairs []RepairEvent `json:"repairs"`
		}{evs})
	})
}

// decodeStatus maps a body-decode failure onto its status: 413 when the
// body blew the size cap, 400 otherwise.
func decodeStatus(err error) int {
	if httpx.TooLarge(err) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusFor maps fleet sentinel errors onto HTTP statuses.
func statusFor(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	}
	return fallback
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	httpJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
