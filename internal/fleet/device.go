package fleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// ScrubState is an on-demand scrub job's lifecycle position.
type ScrubState string

const (
	ScrubQueued  ScrubState = "queued"
	ScrubRunning ScrubState = "running"
	ScrubDone    ScrubState = "done"
)

// RegionReport accumulates an on-demand scrub's per-range findings.
type RegionReport struct {
	First int `json:"first"`
	Count int `json:"count"`
	// LinesScrubbed counts visits performed so far (== Count when done).
	LinesScrubbed int `json:"lines_scrubbed"`
	// Chunks is the number of increments the range took — each one a
	// patrol-preemption opportunity seized.
	Chunks int64 `json:"chunks"`
	// CELines counts visits that observed correctable errors; UEs counts
	// uncorrectable findings — the per-range CE/UE report.
	CELines       int64   `json:"ce_lines"`
	UEs           int64   `json:"ues"`
	CorrectedBits int64   `json:"corrected_bits"`
	WriteBacks    int64   `json:"write_backs"`
	SimSeconds    float64 `json:"sim_seconds"`
	// RepairsTriggered counts PPR events fired by this job's telemetry.
	RepairsTriggered int64 `json:"repairs_triggered,omitempty"`
}

// scrubJob is one on-demand region scrub owned by a device session.
type scrubJob struct {
	id     string
	state  ScrubState
	report RegionReport
}

// ScrubView is an on-demand scrub job's externally visible state.
type ScrubView struct {
	ID     string       `json:"id"`
	Device string       `json:"device"`
	State  ScrubState   `json:"state"`
	Report RegionReport `json:"report"`
}

// RepairEvent is one auditable Post-Package-Repair/sparing decision.
type RepairEvent struct {
	// Seq orders events within the device (1-based).
	Seq int `json:"seq"`
	// Line is the logical line spared.
	Line int `json:"line"`
	// DeviceSeconds is the device's simulated clock at the decision.
	DeviceSeconds float64 `json:"device_seconds"`
	// WindowCEs is the sliding-window CE count that crossed the
	// threshold.
	WindowCEs int `json:"window_ces"`
	// Threshold is the configured trigger at the time of the repair.
	Threshold int `json:"threshold"`
	// Trigger names the scrub work that surfaced the decision:
	// "patrol" or "scrub:<job-id>".
	Trigger string `json:"trigger"`
}

// Device is one managed fleet member: a persistent engine device plus its
// patrol session state, on-demand scrub queue, error-statistics store,
// and repair engine. All mutable state is guarded by mu; the session
// goroutine and the HTTP handlers both go through the exported methods.
type Device struct {
	ID   string
	Name string

	mu     sync.Mutex
	dev    *engine.Device
	patrol PatrolConfig
	repair RepairConfig
	stats  *statsStore

	queue  []*scrubJob // pending + active on-demand scrubs, FIFO
	scrubs map[string]*scrubJob
	order  []string // scrub IDs in submission order

	repairs    []RepairEvent
	sparesUsed int
	policyName string
	registered time.Time
	removed    bool

	// Counters surfaced as scrubd_fleet_* metrics.
	chunks, patrolChunks, scrubChunks int64
	preemptions                       int64

	// kick wakes the session loop early (new scrub job, config patch).
	kick chan struct{}

	obsBuf []engine.LineObservation
}

// TickOutcome reports what one session increment did.
type TickOutcome struct {
	// Worked is false when the device was paused with no pending scrubs
	// (the session sleeps until kicked).
	Worked bool
	// Preempted marks an increment spent on an on-demand scrub while
	// background patrol had work it deferred.
	Preempted bool
	// ScrubID is the on-demand job the increment served, if any.
	ScrubID string
	// Repairs is the number of PPR events fired by this increment.
	Repairs int
}

// newManagedDevice builds the device and its session state.
func newManagedDevice(id string, spec DeviceSpec) (*Device, error) {
	eng, patrol, repair, err := spec.build()
	if err != nil {
		return nil, err
	}
	ed, err := engine.NewDevice(eng)
	if err != nil {
		return nil, err
	}
	return &Device{
		ID:         id,
		Name:       spec.Name,
		dev:        ed,
		patrol:     patrol,
		repair:     repair,
		stats:      newStatsStore(repair.CEWindowSec),
		scrubs:     map[string]*scrubJob{},
		policyName: eng.Policy.Name(),
		registered: time.Now(),
		kick:       make(chan struct{}, 1),
	}, nil
}

// wake nudges the session loop without blocking.
func (d *Device) wake() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// Patrol returns the current patrol configuration.
func (d *Device) Patrol() PatrolConfig {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.patrol
}

// ApplyPatch merges a patrol patch; the merged configuration governs the
// session from its next chunk boundary (ticks read config at chunk
// start). The session itself is never restarted: clock, cursor, wear,
// and error statistics all survive reconfiguration.
func (d *Device) ApplyPatch(p PatrolPatch) (PatrolConfig, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	next := d.patrol
	if p.RateLinesPerSec != nil {
		next.RateLinesPerSec = *p.RateLinesPerSec
	}
	if p.ChunkLines != nil {
		next.ChunkLines = *p.ChunkLines
	}
	if p.TickMillis != nil {
		next.TickMillis = *p.TickMillis
	}
	if p.Paused != nil {
		next.Paused = *p.Paused
	}
	if next.ChunkLines > d.dev.Lines() {
		next.ChunkLines = d.dev.Lines()
	}
	if err := next.Validate(); err != nil {
		return d.patrol, err
	}
	if p.Policy != nil {
		pol, err := policyByName(*p.Policy)
		if err != nil {
			return d.patrol, err
		}
		if err := d.dev.SetPolicy(pol); err != nil {
			return d.patrol, err
		}
		d.policyName = pol.Name()
	}
	d.patrol = next
	d.wake()
	return next, nil
}

// EnqueueScrub queues an on-demand region scrub; the session serves it at
// its next chunk boundary, ahead of background patrol.
func (d *Device) EnqueueScrub(id string, req ScrubRequest) (ScrubView, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if req.First < 0 || req.Count <= 0 || req.First+req.Count > d.dev.Lines() {
		return ScrubView{}, fmt.Errorf("fleet: scrub range [%d,%d) outside device [0,%d)",
			req.First, req.First+req.Count, d.dev.Lines())
	}
	j := &scrubJob{
		id:     id,
		state:  ScrubQueued,
		report: RegionReport{First: req.First, Count: req.Count},
	}
	d.queue = append(d.queue, j)
	d.scrubs[id] = j
	d.order = append(d.order, id)
	d.wake()
	return d.scrubViewLocked(j), nil
}

// Scrub returns one on-demand job's view.
func (d *Device) Scrub(id string) (ScrubView, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.scrubs[id]
	if !ok {
		return ScrubView{}, false
	}
	return d.scrubViewLocked(j), true
}

// Scrubs lists the device's on-demand jobs in submission order.
func (d *Device) Scrubs() []ScrubView {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ScrubView, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.scrubViewLocked(d.scrubs[id]))
	}
	return out
}

func (d *Device) scrubViewLocked(j *scrubJob) ScrubView {
	return ScrubView{ID: j.id, Device: d.ID, State: j.state, Report: j.report}
}

// Repairs returns the device's repair-event log.
func (d *Device) Repairs() []RepairEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]RepairEvent(nil), d.repairs...)
}

// Telemetry snapshots the error-statistics store (limit > 0 keeps the
// worst offenders only).
func (d *Device) Telemetry(limit int) []LineTelemetry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.snapshot(limit)
}

// Tick performs one session increment at the current configuration: the
// head of the on-demand queue if any (preempting patrol at exactly this
// chunk granularity), else one background patrol chunk. It is the single
// place simulated time advances, for both the live session goroutine and
// deterministic test drivers.
func (d *Device) Tick() TickOutcome {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return TickOutcome{}
	}
	cfg := d.patrol
	dt := float64(cfg.ChunkLines) / cfg.RateLinesPerSec
	var out TickOutcome
	if len(d.queue) > 0 {
		j := d.queue[0]
		j.state = ScrubRunning
		remaining := j.report.Count - j.report.LinesScrubbed
		n := cfg.ChunkLines
		if n > remaining {
			n = remaining
			dt = float64(n) / cfg.RateLinesPerSec
		}
		rep, err := d.dev.ScrubRange(j.report.First+j.report.LinesScrubbed, n, dt, d.obsBuf)
		if err != nil {
			// Ranges are validated at submission; an error here means the
			// job can never run. Close it out rather than spinning.
			j.state = ScrubDone
			d.queue = d.queue[1:]
			return TickOutcome{Worked: true, ScrubID: j.id}
		}
		d.obsBuf = rep.Observations
		fired := d.foldLocked(rep, "scrub:"+j.id)
		j.report.LinesScrubbed += n
		j.report.Chunks++
		j.report.CELines += rep.CELines
		j.report.UEs += rep.UEs
		j.report.CorrectedBits += rep.CorrectedBits
		j.report.WriteBacks += rep.WriteBacks
		j.report.SimSeconds += rep.SimSeconds
		j.report.RepairsTriggered += int64(fired)
		d.scrubChunks++
		d.chunks++
		if !cfg.Paused {
			d.preemptions++
			out.Preempted = true
		}
		if j.report.LinesScrubbed >= j.report.Count {
			j.state = ScrubDone
			d.queue = d.queue[1:]
		}
		out.Worked = true
		out.ScrubID = j.id
		out.Repairs = fired
		return out
	}
	if cfg.Paused {
		return TickOutcome{}
	}
	rep, err := d.dev.PatrolChunk(cfg.ChunkLines, dt, d.obsBuf)
	if err != nil {
		return TickOutcome{}
	}
	d.obsBuf = rep.Observations
	fired := d.foldLocked(rep, "patrol")
	d.patrolChunks++
	d.chunks++
	out.Worked = true
	out.Repairs = fired
	return out
}

// foldLocked folds one increment's observations into the statistics
// store and fires the repair engine: a line whose sliding-window CE
// count reaches the threshold is spared (fresh endurance, clean
// history), bounded by the spare budget. Returns repairs fired.
// Caller holds d.mu.
func (d *Device) foldLocked(rep engine.ChunkReport, trigger string) int {
	now := d.dev.Now()
	fired := 0
	for _, ob := range rep.Observations {
		if ob.UE {
			d.stats.observeUE(ob.Line, now)
			continue
		}
		windowed := d.stats.observeCE(ob.Line, now)
		if d.repair.Disabled || windowed < d.repair.CEThreshold {
			continue
		}
		if d.repair.SpareBudget >= 0 && d.sparesUsed >= d.repair.SpareBudget {
			continue // spares exhausted; telemetry keeps accumulating
		}
		if err := d.dev.RepairLine(ob.Line); err != nil {
			continue
		}
		d.stats.noteRepaired(ob.Line)
		d.sparesUsed++
		fired++
		d.repairs = append(d.repairs, RepairEvent{
			Seq:           len(d.repairs) + 1,
			Line:          ob.Line,
			DeviceSeconds: now,
			WindowCEs:     windowed,
			Threshold:     d.repair.CEThreshold,
			Trigger:       trigger,
		})
	}
	return fired
}

// DeviceView is a device's externally visible state.
type DeviceView struct {
	ID     string       `json:"id"`
	Name   string       `json:"name,omitempty"`
	Lines  int          `json:"lines"`
	Policy string       `json:"policy"`
	Patrol PatrolConfig `json:"patrol"`
	Repair RepairConfig `json:"repair"`

	// DeviceSeconds is the simulated clock; PatrolRounds counts
	// completed passes; Cursor is the patrol position.
	DeviceSeconds float64 `json:"device_seconds"`
	PatrolRounds  int64   `json:"patrol_rounds"`
	Cursor        int     `json:"cursor"`

	// Work and findings since registration.
	Chunks        int64 `json:"chunks"`
	PatrolChunks  int64 `json:"patrol_chunks"`
	ScrubChunks   int64 `json:"scrub_chunks"`
	Preemptions   int64 `json:"preemptions"`
	ScrubVisits   int64 `json:"scrub_visits"`
	DemandWrites  int64 `json:"demand_writes"`
	CorrectedBits int64 `json:"corrected_bits"`
	CEObserved    int64 `json:"ce_observed"`
	UEObserved    int64 `json:"ue_observed"`
	Repairs       int   `json:"repairs"`
	SparesUsed    int   `json:"spares_used"`
	SpareBudget   int   `json:"spare_budget"`
	PendingScrubs int   `json:"pending_scrubs"`
}

// View renders the device.
func (d *Device) View() DeviceView {
	d.mu.Lock()
	defer d.mu.Unlock()
	tot := d.dev.Totals()
	return DeviceView{
		ID:            d.ID,
		Name:          d.Name,
		Lines:         d.dev.Lines(),
		Policy:        d.policyName,
		Patrol:        d.patrol,
		Repair:        d.repair,
		DeviceSeconds: d.dev.Now(),
		PatrolRounds:  d.dev.Rounds(),
		Cursor:        d.dev.PatrolCursor(),
		Chunks:        d.chunks,
		PatrolChunks:  d.patrolChunks,
		ScrubChunks:   d.scrubChunks,
		Preemptions:   d.preemptions,
		ScrubVisits:   tot.ScrubVisits,
		DemandWrites:  tot.DemandWrites,
		CorrectedBits: tot.CorrectedBits,
		CEObserved:    d.stats.totalCE,
		UEObserved:    d.stats.totalUE,
		Repairs:       len(d.repairs),
		SparesUsed:    d.sparesUsed,
		SpareBudget:   d.repair.SpareBudget,
		PendingScrubs: len(d.queue),
	}
}

// tickInterval returns the current wall pacing between increments.
func (d *Device) tickInterval() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.patrol.TickMillis) * time.Millisecond
}

// isRemoved reports whether the device has been dropped from the fleet.
func (d *Device) isRemoved() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.removed
}

// hasWork reports whether an increment would do anything right now.
func (d *Device) hasWork() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.removed && (len(d.queue) > 0 || !d.patrol.Paused)
}

// markRemoved stops future ticks from mutating the device.
func (d *Device) markRemoved() {
	d.mu.Lock()
	d.removed = true
	d.mu.Unlock()
	d.wake()
}
