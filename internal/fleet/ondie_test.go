package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// ondieDeviceSpec is testDeviceSpec with an on-die ECC layer and enough
// pre-aging that profiling rounds find a real at-risk population.
func ondieDeviceSpec(seed uint64) DeviceSpec {
	ds := testDeviceSpec(seed)
	ds.OnDie = &service.OnDieSpec{T: 1}
	ds.AgedWrites = 20_000_000
	return ds
}

// TestPatchUnknownPolicyListsValid pins the PATCH validation contract:
// an unknown policy name is a 400 whose error body names the offender
// and enumerates the valid vocabulary, so a caller can self-correct
// from the response alone.
func TestPatchUnknownPolicyListsValid(t *testing.T) {
	m := NewManager(nil)
	defer m.Shutdown()
	mux := http.NewServeMux()
	m.RegisterRoutes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var dev DeviceView
	if code := doJSON(t, srv, "POST", "/v1/fleet/devices", testDeviceSpec(7), &dev); code != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", code)
	}

	var body struct {
		Error string `json:"error"`
	}
	patch := map[string]any{"policy": "no-such-policy"}
	code := doJSON(t, srv, "PATCH", "/v1/fleet/devices/"+dev.ID+"/patrol", patch, &body)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown policy status = %d, want 400", code)
	}
	if !strings.Contains(body.Error, `unknown policy "no-such-policy"`) {
		t.Errorf("error body does not name the offending policy: %q", body.Error)
	}
	for _, want := range []string{"basic", "always", "light", "threshold-<k>", "combined-<k>", "profiled", "profiled-<k>"} {
		if !strings.Contains(body.Error, want) {
			t.Errorf("error body does not list valid policy %q: %q", want, body.Error)
		}
	}

	// A rejected policy leaves the device's current policy untouched.
	var after DeviceView
	if c := doJSON(t, srv, "GET", "/v1/fleet/devices/"+dev.ID, nil, &after); c != http.StatusOK {
		t.Fatalf("readback status = %d", c)
	}
	if after.Policy != dev.Policy {
		t.Errorf("failed patch changed policy: %q -> %q", dev.Policy, after.Policy)
	}

	// And the valid spellings it advertises do resolve.
	var cfg PatrolConfig
	if c := doJSON(t, srv, "PATCH", "/v1/fleet/devices/"+dev.ID+"/patrol",
		map[string]any{"policy": "profiled-2"}, &cfg); c != http.StatusOK {
		t.Errorf("profiled-2 patch status = %d, want 200", c)
	}
}

// TestProfiledPolicyLivePatchRace exercises the profiling state under a
// live patrol session: concurrent PATCHes toggle the device between a
// profiled and a plain policy (arming and dropping the at-risk machinery
// mid-patrol) while readers pull views and telemetry. Run under -race
// this pins that profiling state changes are fully serialised with the
// session's chunk loop.
func TestProfiledPolicyLivePatchRace(t *testing.T) {
	m := NewManager(nil)
	defer m.Shutdown()

	v, err := m.Register(ondieDeviceSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	id := v.ID

	const flips = 40
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		policies := []string{"profiled-1", "combined-4"}
		for i := 0; i < flips; i++ {
			p := policies[i%len(policies)]
			if _, err := m.Patch(id, PatrolPatch{Policy: &p}); err != nil {
				t.Errorf("patch %q: %v", p, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			if _, err := m.Get(id); err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if _, err := m.Telemetry(id, 8); err != nil {
				t.Errorf("telemetry: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	// The session survived the churn and kept patrolling.
	after, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(after.Policy, "profiled") && !strings.HasPrefix(after.Policy, "combined") {
		t.Errorf("unexpected final policy %q", after.Policy)
	}
	if after.ScrubVisits == 0 {
		t.Error("session performed no scrub visits during the churn")
	}
}
