// Package fleet is scrubd's RAS control plane: a registry of long-lived
// simulated devices, each scrubbed continuously by a background patrol
// session, reconfigurable live, interruptible by on-demand region scrubs,
// and monitored by an error-statistics store that turns scrub telemetry
// into Post-Package-Repair decisions. It is the EDAC scrub-control
// surface (background patrol rate, on-demand address-range scrub, repair
// statistics) modeled over the paper's cell physics: the shape the
// paper's mechanisms actually ship into.
//
// Every device trajectory is deterministic in its spec's seed and the
// sequence of control operations applied to it, so a fleet scenario can
// be replayed exactly — the foundation of the golden tests and of
// journal-based recovery (the journal persists specs, never state).
package fleet

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/scrub"
	"repro/internal/service"
)

// DefaultPassSeconds is the simulated time one full background patrol
// pass covers when the spec does not set a rate: the classic "scrub the
// whole device every 24 hours" patrol.
const DefaultPassSeconds = 86400

// Patrol session defaults.
const (
	// DefaultChunkLines is the patrol increment: control operations
	// (rate patches, on-demand scrubs) take effect at this granularity.
	DefaultChunkLines = 64
	// DefaultTickMillis is the wall-clock pacing between increments.
	DefaultTickMillis = 50
)

// Repair-engine defaults: a line observed with correctable errors on
// DefaultCEThreshold scrub visits inside a sliding DefaultCEWindowSec of
// simulated time is spared via simulated Post-Package-Repair.
const (
	DefaultCEWindowSec = 86400.0
	DefaultCEThreshold = 4
	DefaultSpareBudget = 64
)

// PatrolConfig is a device's background-scrub configuration. All fields
// are optional at registration; zero values select the defaults above.
type PatrolConfig struct {
	// RateLinesPerSec is the patrol scrub rate in device lines per
	// simulated second. Each chunk of ChunkLines advances the device
	// clock by ChunkLines/Rate seconds, so a slower rate leaves more
	// drift time between visits — exactly the paper's trade-off.
	// 0 derives the rate from one full pass per DefaultPassSeconds.
	RateLinesPerSec float64 `json:"rate_lines_per_sec,omitempty"`
	// ChunkLines is the increment size: the preemption and
	// reconfiguration granularity.
	ChunkLines int `json:"chunk_lines,omitempty"`
	// TickMillis paces the live session between increments in wall
	// milliseconds. It shapes daemon CPU use only — simulated
	// trajectories never depend on it.
	TickMillis int `json:"tick_millis,omitempty"`
	// Paused suspends background patrol (on-demand scrubs still run).
	Paused bool `json:"paused,omitempty"`
}

// withDefaults materialises the patrol defaults for a device with the
// given line count.
func (p PatrolConfig) withDefaults(lines int) PatrolConfig {
	if p.RateLinesPerSec == 0 {
		p.RateLinesPerSec = float64(lines) / DefaultPassSeconds
	}
	if p.ChunkLines == 0 {
		p.ChunkLines = DefaultChunkLines
	}
	if p.ChunkLines > lines {
		p.ChunkLines = lines
	}
	if p.TickMillis == 0 {
		p.TickMillis = DefaultTickMillis
	}
	return p
}

// Validate checks a materialised patrol configuration.
func (p PatrolConfig) Validate() error {
	if p.RateLinesPerSec <= 0 {
		return fmt.Errorf("fleet: patrol rate must be positive, got %g", p.RateLinesPerSec)
	}
	if p.ChunkLines <= 0 {
		return fmt.Errorf("fleet: patrol chunk must be positive, got %d", p.ChunkLines)
	}
	if p.TickMillis < 0 {
		return fmt.Errorf("fleet: patrol tick must be non-negative, got %d", p.TickMillis)
	}
	return nil
}

// PatrolPatch is the body of PATCH /v1/fleet/devices/{id}/patrol: every
// field is optional, absent fields keep their current value, and the
// merged configuration governs the session from its next chunk boundary.
type PatrolPatch struct {
	RateLinesPerSec *float64 `json:"rate_lines_per_sec,omitempty"`
	ChunkLines      *int     `json:"chunk_lines,omitempty"`
	TickMillis      *int     `json:"tick_millis,omitempty"`
	Paused          *bool    `json:"paused,omitempty"`
	// Policy optionally swaps the device's scrub policy live
	// (basic|always|light|threshold-<k>|combined-<k>|profiled|profiled-<k>).
	Policy *string `json:"policy,omitempty"`
}

// RepairConfig tunes the device's telemetry-driven repair engine.
type RepairConfig struct {
	// CEWindowSec is the sliding window (simulated seconds) over which
	// per-line correctable-error observations are counted.
	CEWindowSec float64 `json:"ce_window_sec,omitempty"`
	// CEThreshold is the windowed CE count at which the line is spared.
	CEThreshold int `json:"ce_threshold,omitempty"`
	// SpareBudget bounds repairs per device, modeling finite PPR spares
	// (0 = DefaultSpareBudget; negative = unlimited).
	SpareBudget int `json:"spare_budget,omitempty"`
	// Disabled turns automatic repair off; telemetry still accumulates.
	Disabled bool `json:"disabled,omitempty"`
}

func (r RepairConfig) withDefaults() RepairConfig {
	if r.CEWindowSec == 0 {
		r.CEWindowSec = DefaultCEWindowSec
	}
	if r.CEThreshold == 0 {
		r.CEThreshold = DefaultCEThreshold
	}
	if r.SpareBudget == 0 {
		r.SpareBudget = DefaultSpareBudget
	}
	return r
}

// Validate checks a materialised repair configuration.
func (r RepairConfig) Validate() error {
	if r.CEWindowSec <= 0 {
		return fmt.Errorf("fleet: CE window must be positive, got %g", r.CEWindowSec)
	}
	if r.CEThreshold <= 0 {
		return fmt.Errorf("fleet: CE threshold must be positive, got %d", r.CEThreshold)
	}
	return nil
}

// DeviceSpec registers one simulated device. The simulation fields reuse
// the serving layer's wire vocabulary (mechanism/scheme/policy names,
// geometry, fault plans) so fleet specs and job specs read alike.
type DeviceSpec struct {
	// Name is an optional operator label (the fleet mints the ID).
	Name string `json:"name,omitempty"`
	// Mechanism names a suite mechanism ("" = combined); Scheme and
	// Policy optionally override its parts.
	Mechanism string `json:"mechanism,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	Policy    string `json:"policy,omitempty"`
	// Workload drives the device's demand traffic (required).
	Workload string `json:"workload"`
	// Seed pins the device trajectory (0 = the study default seed).
	Seed uint64 `json:"seed,omitempty"`
	// AgedWrites pre-ages every line by this many writes.
	AgedWrites uint32 `json:"aged_writes,omitempty"`
	// Geometry optionally shrinks or grows the device.
	Geometry *service.GeometrySpec `json:"geometry,omitempty"`
	// Fault optionally injects scrub-path controller faults.
	Fault *service.FaultSpec `json:"fault,omitempty"`
	// OnDie optionally puts an on-die ECC layer under the controller
	// codec (hidden-error regime; see internal/ondie).
	OnDie *service.OnDieSpec `json:"ondie,omitempty"`
	// Patrol is the initial patrol configuration.
	Patrol *PatrolConfig `json:"patrol,omitempty"`
	// Repair tunes the telemetry-driven repair engine.
	Repair *RepairConfig `json:"repair,omitempty"`
}

// build assembles the engine spec and materialised patrol/repair configs.
func (ds DeviceSpec) build() (engine.Spec, PatrolConfig, RepairConfig, error) {
	if ds.Workload == "" {
		return engine.Spec{}, PatrolConfig{}, RepairConfig{}, fmt.Errorf("fleet: device spec needs a workload")
	}
	ss := service.Spec{
		Mechanism:  ds.Mechanism,
		Scheme:     ds.Scheme,
		Policy:     ds.Policy,
		Workload:   ds.Workload,
		Seed:       ds.Seed,
		AgedWrites: ds.AgedWrites,
		Geometry:   ds.Geometry,
		Fault:      ds.Fault,
		OnDie:      ds.OnDie,
	}
	sys, mech, w, err := ss.Build()
	if err != nil {
		return engine.Spec{}, PatrolConfig{}, RepairConfig{}, err
	}
	spec := engine.ResolveSpec(sys, mech, w, engine.Options{})
	lines := spec.Geometry.TotalLines()
	var patrol PatrolConfig
	if ds.Patrol != nil {
		patrol = *ds.Patrol
	}
	patrol = patrol.withDefaults(lines)
	if err := patrol.Validate(); err != nil {
		return engine.Spec{}, PatrolConfig{}, RepairConfig{}, err
	}
	var repair RepairConfig
	if ds.Repair != nil {
		repair = *ds.Repair
	}
	repair = repair.withDefaults()
	if err := repair.Validate(); err != nil {
		return engine.Spec{}, PatrolConfig{}, RepairConfig{}, err
	}
	return spec, patrol, repair, nil
}

// policyByName resolves a live policy swap. An unknown name reports the
// full valid vocabulary so a PATCH caller can self-correct from the 400
// body alone.
func policyByName(name string) (scrub.Policy, error) {
	p, err := scrub.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("fleet: unknown policy %q (valid: %s)",
			name, strings.Join(scrub.Names(), ", "))
	}
	return p, nil
}

// ScrubRequest is the body of POST /v1/fleet/devices/{id}/scrubs: an
// on-demand scrub of the logical line range [first, first+count).
type ScrubRequest struct {
	First int `json:"first"`
	Count int `json:"count"`
}
