package fleet

import "sort"

// statsStore is a device's error-statistics store: cumulative per-line
// CE/UE counters plus a sliding window of recent correctable-error
// observation times, in simulated seconds. It is the telemetry the
// repair engine acts on — HARP's point that error statistics gathered
// during scrubbing should drive targeted mitigation, not be discarded.
//
// Only lines that have ever erred occupy memory; a healthy device costs
// one empty map. The store is not self-locking: the owning device
// serialises access.
type statsStore struct {
	windowSec float64
	lines     map[int]*lineStats

	totalCE, totalUE int64
}

// lineStats is one line's error history.
type lineStats struct {
	ce, ue int64
	// recent holds the simulated times of CE observations still inside
	// the sliding window, ascending.
	recent []float64
	// repaired counts PPR events on this line.
	repaired int64
}

func newStatsStore(windowSec float64) *statsStore {
	return &statsStore{windowSec: windowSec, lines: map[int]*lineStats{}}
}

func (st *statsStore) line(line int) *lineStats {
	ls := st.lines[line]
	if ls == nil {
		ls = &lineStats{}
		st.lines[line] = ls
	}
	return ls
}

// observeCE records one correctable-error observation at simulated time t
// and returns the line's CE count inside the trailing window — the value
// the repair threshold is judged against.
func (st *statsStore) observeCE(line int, t float64) int {
	ls := st.line(line)
	ls.ce++
	st.totalCE++
	ls.recent = append(ls.recent, t)
	cut := t - st.windowSec
	i := 0
	for i < len(ls.recent) && ls.recent[i] < cut {
		i++
	}
	if i > 0 {
		ls.recent = append(ls.recent[:0], ls.recent[i:]...)
	}
	return len(ls.recent)
}

// observeUE records one uncorrectable-error observation.
func (st *statsStore) observeUE(line int, t float64) {
	st.line(line).ue++
	st.totalUE++
}

// noteRepaired clears the line's window after a repair — the spare row
// starts with a clean history — and counts the repair.
func (st *statsStore) noteRepaired(line int) {
	ls := st.line(line)
	ls.recent = ls.recent[:0]
	ls.repaired++
}

// LineTelemetry is one line's externally visible error statistics.
type LineTelemetry struct {
	Line int `json:"line"`
	// CEs and UEs are cumulative observation counts.
	CEs int64 `json:"ces"`
	UEs int64 `json:"ues,omitempty"`
	// WindowCEs is the CE count inside the trailing window as of the
	// last observation.
	WindowCEs int `json:"window_ces"`
	// Repaired counts PPR/sparing events on the line.
	Repaired int64 `json:"repaired,omitempty"`
}

// snapshot renders the store sorted by line for deterministic encoding;
// limit > 0 truncates to the worst offenders by cumulative CE+UE.
func (st *statsStore) snapshot(limit int) []LineTelemetry {
	out := make([]LineTelemetry, 0, len(st.lines))
	for line, ls := range st.lines {
		out = append(out, LineTelemetry{
			Line: line, CEs: ls.ce, UEs: ls.ue,
			WindowCEs: len(ls.recent), Repaired: ls.repaired,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Line < out[b].Line })
	if limit > 0 && len(out) > limit {
		sort.SliceStable(out, func(a, b int) bool {
			return out[a].CEs+out[a].UEs > out[b].CEs+out[b].UEs
		})
		out = out[:limit]
		sort.Slice(out, func(a, b int) bool { return out[a].Line < out[b].Line })
	}
	return out
}
