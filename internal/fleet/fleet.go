package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
)

// Sentinel errors mapped onto HTTP statuses by the fleet handler.
var (
	ErrNotFound = errors.New("fleet: device not found")
	ErrClosed   = errors.New("fleet: manager closed")
)

// Manager is the fleet control plane: the device registry, one patrol
// session goroutine per device, journal-backed durability for device and
// session specifications, and the aggregate metrics surface.
type Manager struct {
	// MaxBodyBytes caps fleet JSON request bodies (0 = 1 MiB). Set it
	// before RegisterRoutes.
	MaxBodyBytes int64

	mu      sync.Mutex
	devices map[string]*Device
	order   []string
	closed  bool

	// jnl, when non-nil, makes registrations, patrol reconfigurations,
	// and removals durable. Only specifications are journaled — device
	// state is recomputed on recovery from the deterministic seed.
	jnl *journal.Journal

	nextDev   atomic.Int64
	nextScrub atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup

	registered atomic.Int64
	removed    atomic.Int64
	scrubJobs  atomic.Int64
}

// NewManager builds an empty fleet. jnl may be nil (no durability).
func NewManager(jnl *journal.Journal) *Manager {
	return &Manager{
		devices: map[string]*Device{},
		jnl:     jnl,
		stop:    make(chan struct{}),
	}
}

// mintDeviceID returns the next fleet device identifier.
func (m *Manager) mintDeviceID() string {
	return fmt.Sprintf("dev-%06d", m.nextDev.Add(1))
}

// Register validates and journals a device specification, builds the
// device, and starts its patrol session. The returned view carries the
// minted device ID.
func (m *Manager) Register(spec DeviceSpec) (DeviceView, error) {
	id := m.mintDeviceID()
	d, err := newManagedDevice(id, spec)
	if err != nil {
		return DeviceView{}, err
	}
	if m.jnl != nil {
		raw, err := json.Marshal(spec)
		if err != nil {
			return DeviceView{}, fmt.Errorf("fleet: encode device spec: %w", err)
		}
		if err := m.jnl.Append(journal.Record{
			Type: journal.TypeFleetDevice, Job: id, Spec: raw,
		}); err != nil {
			return DeviceView{}, err
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return DeviceView{}, ErrClosed
	}
	m.devices[id] = d
	m.order = append(m.order, id)
	m.mu.Unlock()
	m.registered.Add(1)
	m.startSession(d)
	return d.View(), nil
}

// Recover re-registers every device the previous incarnation journaled:
// same spec, same seed, plus the last journaled patrol configuration.
// Device state is deliberately not restored — trajectories are
// deterministic in the spec, so the fleet recomputes them, the same way
// corrupt shard checkpoints silently recompute.
func (m *Manager) Recover(rec *journal.Recovery) error {
	if rec == nil {
		return nil
	}
	// Advance the ID mint past every identifier an earlier incarnation
	// used — including removed devices — so audit trails never collide.
	for _, id := range rec.FleetSeen {
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "dev-"), 10, 64); err == nil {
			for {
				cur := m.nextDev.Load()
				if cur >= n || m.nextDev.CompareAndSwap(cur, n) {
					break
				}
			}
		}
	}
	for _, fd := range rec.FleetDevices {
		var spec DeviceSpec
		if err := json.Unmarshal(fd.Spec, &spec); err != nil {
			// A journaled spec that no longer decodes cannot be rebuilt;
			// drop the device rather than refuse to boot.
			continue
		}
		if len(fd.Patrol) > 0 {
			var pc PatrolConfig
			if err := json.Unmarshal(fd.Patrol, &pc); err == nil {
				spec.Patrol = &pc
			}
		}
		d, err := newManagedDevice(fd.ID, spec)
		if err != nil {
			continue
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return ErrClosed
		}
		m.devices[fd.ID] = d
		m.order = append(m.order, fd.ID)
		m.mu.Unlock()
		m.registered.Add(1)
		m.startSession(d)
	}
	return nil
}

// device looks a live device up by ID.
func (m *Manager) device(id string) (*Device, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.devices[id]
	if d == nil {
		return nil, ErrNotFound
	}
	return d, nil
}

// Get returns one device's view.
func (m *Manager) Get(id string) (DeviceView, error) {
	d, err := m.device(id)
	if err != nil {
		return DeviceView{}, err
	}
	return d.View(), nil
}

// List returns every device's view in registration order.
func (m *Manager) List() []DeviceView {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	devs := make([]*Device, 0, len(ids))
	for _, id := range ids {
		if d := m.devices[id]; d != nil {
			devs = append(devs, d)
		}
	}
	m.mu.Unlock()
	out := make([]DeviceView, 0, len(devs))
	for _, d := range devs {
		out = append(out, d.View())
	}
	return out
}

// Remove journals the removal, stops the device's session, and drops it
// from the registry.
func (m *Manager) Remove(id string) error {
	d, err := m.device(id)
	if err != nil {
		return err
	}
	if m.jnl != nil {
		if err := m.jnl.Append(journal.Record{
			Type: journal.TypeFleetRemove, Job: id,
		}); err != nil {
			return err
		}
	}
	d.markRemoved()
	m.mu.Lock()
	delete(m.devices, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	m.removed.Add(1)
	return nil
}

// Patch applies a patrol patch to a device and journals the merged
// configuration, so a restart resumes the session at the patched rate.
func (m *Manager) Patch(id string, p PatrolPatch) (PatrolConfig, error) {
	d, err := m.device(id)
	if err != nil {
		return PatrolConfig{}, err
	}
	cfg, err := d.ApplyPatch(p)
	if err != nil {
		return PatrolConfig{}, err
	}
	if m.jnl != nil {
		raw, merr := json.Marshal(cfg)
		if merr == nil {
			_ = m.jnl.Append(journal.Record{
				Type: journal.TypeFleetPatrol, Job: id, Payload: raw,
			})
		}
	}
	return cfg, nil
}

// EnqueueScrub submits an on-demand region scrub against a device. Jobs
// are transient (not journaled): a crashed daemon's clients resubmit,
// exactly as EDAC on-demand scrubs do not survive a reboot.
func (m *Manager) EnqueueScrub(id string, req ScrubRequest) (ScrubView, error) {
	d, err := m.device(id)
	if err != nil {
		return ScrubView{}, err
	}
	sid := fmt.Sprintf("scrub-%06d", m.nextScrub.Add(1))
	v, err := d.EnqueueScrub(sid, req)
	if err != nil {
		return ScrubView{}, err
	}
	m.scrubJobs.Add(1)
	return v, nil
}

// Scrub returns one on-demand job's view.
func (m *Manager) Scrub(id, scrubID string) (ScrubView, error) {
	d, err := m.device(id)
	if err != nil {
		return ScrubView{}, err
	}
	v, ok := d.Scrub(scrubID)
	if !ok {
		return ScrubView{}, ErrNotFound
	}
	return v, nil
}

// Scrubs lists a device's on-demand jobs.
func (m *Manager) Scrubs(id string) ([]ScrubView, error) {
	d, err := m.device(id)
	if err != nil {
		return nil, err
	}
	return d.Scrubs(), nil
}

// Telemetry returns a device's error-statistics snapshot.
func (m *Manager) Telemetry(id string, limit int) ([]LineTelemetry, error) {
	d, err := m.device(id)
	if err != nil {
		return nil, err
	}
	return d.Telemetry(limit), nil
}

// Repairs returns a device's repair-event log.
func (m *Manager) Repairs(id string) ([]RepairEvent, error) {
	d, err := m.device(id)
	if err != nil {
		return nil, err
	}
	return d.Repairs(), nil
}

// startSession launches the device's patrol session goroutine: one chunk
// per tick, paced by the device's TickMillis, woken early by control
// operations, stopped by Shutdown or removal. All simulated results flow
// through Device.Tick, so the live session and a scripted test driver
// produce identical trajectories.
func (m *Manager) startSession(d *Device) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-m.stop:
				return
			default:
			}
			if d.isRemoved() {
				return
			}
			if !d.hasWork() {
				// Paused and idle: sleep until a control operation wakes
				// the session (or shutdown/removal).
				select {
				case <-m.stop:
					return
				case <-d.kick:
				}
				continue
			}
			out := d.Tick()
			if !out.Worked {
				continue
			}
			iv := d.tickInterval()
			if iv <= 0 {
				iv = time.Millisecond
			}
			t := time.NewTimer(iv)
			select {
			case <-m.stop:
				t.Stop()
				return
			case <-d.kick:
				t.Stop()
			case <-t.C:
			}
		}
	}()
}

// Shutdown drains the fleet: every session finishes its current chunk
// and exits. Devices stay registered (and journaled) for the next
// incarnation to recover.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
}

// Totals aggregates the fleet's counters for /metrics.
type Totals struct {
	Devices       int
	Registered    int64
	Removed       int64
	ScrubJobs     int64
	PatrolRounds  int64
	Chunks        int64
	PatrolChunks  int64
	ScrubChunks   int64
	Preemptions   int64
	CEObserved    int64
	UEObserved    int64
	CorrectedBits int64
	Repairs       int64
	PendingScrubs int64
	DeviceSeconds float64
}

// Snapshot aggregates current device counters plus lifetime
// registration/removal counts.
func (m *Manager) Snapshot() Totals {
	views := m.List()
	t := Totals{
		Devices:    len(views),
		Registered: m.registered.Load(),
		Removed:    m.removed.Load(),
		ScrubJobs:  m.scrubJobs.Load(),
	}
	for _, v := range views {
		t.PatrolRounds += v.PatrolRounds
		t.Chunks += v.Chunks
		t.PatrolChunks += v.PatrolChunks
		t.ScrubChunks += v.ScrubChunks
		t.Preemptions += v.Preemptions
		t.CEObserved += v.CEObserved
		t.UEObserved += v.UEObserved
		t.CorrectedBits += v.CorrectedBits
		t.Repairs += int64(v.Repairs)
		t.PendingScrubs += int64(v.PendingScrubs)
		t.DeviceSeconds += v.DeviceSeconds
	}
	return t
}

// sortedIDs returns the live device IDs sorted, for deterministic tests.
func (m *Manager) sortedIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := append([]string(nil), m.order...)
	sort.Strings(ids)
	return ids
}
