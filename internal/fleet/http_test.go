package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// doJSON issues a request against the test server and decodes the body.
func doJSON(t *testing.T, srv *httptest.Server, method, path string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode body: %v", err)
		}
	}
	req, err := http.NewRequest(method, srv.URL+path, &buf)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func TestFleetHTTPSurface(t *testing.T) {
	m := NewManager(nil)
	defer m.Shutdown()
	mux := http.NewServeMux()
	m.RegisterRoutes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Register a device.
	var dev DeviceView
	if code := doJSON(t, srv, "POST", "/v1/fleet/devices", testDeviceSpec(42), &dev); code != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", code)
	}
	if dev.ID == "" || dev.Lines != 128 {
		t.Fatalf("registered device = %+v", dev)
	}

	// Bad specs are rejected.
	if code := doJSON(t, srv, "POST", "/v1/fleet/devices",
		DeviceSpec{Workload: "no-such"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad spec status = %d, want 400", code)
	}
	if code := doJSON(t, srv, "GET", "/v1/fleet/devices/dev-999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing device status = %d, want 404", code)
	}

	// List shows the device.
	var list struct {
		Devices []DeviceView `json:"devices"`
	}
	if code := doJSON(t, srv, "GET", "/v1/fleet/devices", nil, &list); code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	if len(list.Devices) != 1 || list.Devices[0].ID != dev.ID {
		t.Fatalf("list = %+v", list)
	}

	// Live PATCH: the merged config comes back and sticks.
	var cfg PatrolConfig
	patch := map[string]any{"rate_lines_per_sec": 999.0, "paused": true}
	if code := doJSON(t, srv, "PATCH", "/v1/fleet/devices/"+dev.ID+"/patrol", patch, &cfg); code != http.StatusOK {
		t.Fatalf("patch status = %d", code)
	}
	if cfg.RateLinesPerSec != 999 || !cfg.Paused {
		t.Fatalf("patched config = %+v", cfg)
	}
	var got PatrolConfig
	if code := doJSON(t, srv, "GET", "/v1/fleet/devices/"+dev.ID+"/patrol", nil, &got); code != http.StatusOK || got != cfg {
		t.Fatalf("patrol readback = %+v (%d), want %+v", got, code, cfg)
	}
	if code := doJSON(t, srv, "PATCH", "/v1/fleet/devices/"+dev.ID+"/patrol",
		map[string]any{"rate_lines_per_sec": -1}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid patch status = %d, want 400", code)
	}

	// On-demand scrub: accepted, runs even while patrol is paused.
	var sv ScrubView
	if code := doJSON(t, srv, "POST", "/v1/fleet/devices/"+dev.ID+"/scrubs",
		ScrubRequest{First: 0, Count: 32}, &sv); code != http.StatusAccepted {
		t.Fatalf("scrub submit status = %d, want 202", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var s ScrubView
		if code := doJSON(t, srv, "GET", "/v1/fleet/devices/"+dev.ID+"/scrubs/"+sv.ID, nil, &s); code != http.StatusOK {
			t.Fatalf("scrub get status = %d", code)
		}
		if s.State == ScrubDone {
			if s.Report.LinesScrubbed != 32 {
				t.Errorf("scrub report = %+v", s.Report)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrub never finished: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := doJSON(t, srv, "POST", "/v1/fleet/devices/"+dev.ID+"/scrubs",
		ScrubRequest{First: 1000, Count: 5}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-range scrub status = %d, want 400", code)
	}

	// Telemetry and repairs respond (possibly empty) with valid shapes.
	var tel struct {
		Lines []LineTelemetry `json:"lines"`
	}
	if code := doJSON(t, srv, "GET", "/v1/fleet/devices/"+dev.ID+"/telemetry?limit=5", nil, &tel); code != http.StatusOK {
		t.Errorf("telemetry status = %d", code)
	}
	if code := doJSON(t, srv, "GET", "/v1/fleet/devices/"+dev.ID+"/telemetry?limit=x", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad limit status = %d, want 400", code)
	}
	var reps struct {
		Repairs []RepairEvent `json:"repairs"`
	}
	if code := doJSON(t, srv, "GET", "/v1/fleet/devices/"+dev.ID+"/repairs", nil, &reps); code != http.StatusOK {
		t.Errorf("repairs status = %d", code)
	}

	// Remove, then everything 404s.
	if code := doJSON(t, srv, "DELETE", "/v1/fleet/devices/"+dev.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete status = %d, want 204", code)
	}
	if code := doJSON(t, srv, "GET", "/v1/fleet/devices/"+dev.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("deleted device status = %d, want 404", code)
	}
}
