package fleet

import (
	"fmt"
	"io"
)

// WritePrometheus renders the fleet's aggregate counters in the
// Prometheus text exposition format; scrubd chains it onto /metrics when
// the fleet is enabled.
func (m *Manager) WritePrometheus(out io.Writer) error {
	t := m.Snapshot()
	type metric struct {
		name, help, typ string
		value           float64
	}
	metrics := []metric{
		{"scrubd_fleet_devices", "Devices currently registered with the fleet control plane.", "gauge", float64(t.Devices)},
		{"scrubd_fleet_devices_registered_total", "Devices registered over the process lifetime (including recovered).", "counter", float64(t.Registered)},
		{"scrubd_fleet_devices_removed_total", "Devices removed over the process lifetime.", "counter", float64(t.Removed)},
		{"scrubd_fleet_patrol_rounds_total", "Completed background patrol passes across live devices.", "counter", float64(t.PatrolRounds)},
		{"scrubd_fleet_chunks_total", "Scrub increments executed across live devices.", "counter", float64(t.Chunks)},
		{"scrubd_fleet_patrol_chunks_total", "Background patrol increments across live devices.", "counter", float64(t.PatrolChunks)},
		{"scrubd_fleet_scrub_chunks_total", "On-demand region-scrub increments across live devices.", "counter", float64(t.ScrubChunks)},
		{"scrubd_fleet_preemptions_total", "Patrol chunks preempted by on-demand scrub work.", "counter", float64(t.Preemptions)},
		{"scrubd_fleet_scrub_jobs_total", "On-demand region scrubs accepted.", "counter", float64(t.ScrubJobs)},
		{"scrubd_fleet_pending_scrubs", "On-demand scrubs queued or running across live devices.", "gauge", float64(t.PendingScrubs)},
		{"scrubd_fleet_ce_observed_total", "Correctable-error observations folded into fleet telemetry.", "counter", float64(t.CEObserved)},
		{"scrubd_fleet_ue_observed_total", "Uncorrectable-error observations folded into fleet telemetry.", "counter", float64(t.UEObserved)},
		{"scrubd_fleet_corrected_bits_total", "Error bits scrubbed away across live devices.", "counter", float64(t.CorrectedBits)},
		{"scrubd_fleet_repairs_total", "Post-Package-Repair events fired by the telemetry threshold.", "counter", float64(t.Repairs)},
		{"scrubd_fleet_device_seconds", "Summed simulated device time across live devices.", "gauge", t.DeviceSeconds},
	}
	for _, mt := range metrics {
		if _, err := fmt.Fprintf(out, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			mt.name, mt.help, mt.name, mt.typ, mt.name, mt.value); err != nil {
			return err
		}
	}
	return nil
}
