package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/service"
)

// tinyGeometry keeps fleet devices small enough that drift errors appear
// within a few simulated hours (matching the engine device tests).
func tinyGeometry() *service.GeometrySpec {
	return &service.GeometrySpec{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
		RowsPerBank: 8, LinesPerRow: 8, LineBytes: 64,
	}
}

// testDeviceSpec is a 128-line cold device scrubbed at one pass per hour:
// slow enough for drift errors to accumulate between visits.
func testDeviceSpec(seed uint64) DeviceSpec {
	return DeviceSpec{
		Name:     "test",
		Workload: "idle-archive",
		Seed:     seed,
		Geometry: tinyGeometry(),
		Patrol: &PatrolConfig{
			RateLinesPerSec: 128.0 / 3600,
			ChunkLines:      32,
			TickMillis:      1,
		},
		Repair: &RepairConfig{
			CEWindowSec: 10 * 86400,
			CEThreshold: 2,
			SpareBudget: 8,
		},
	}
}

func TestStatsWindowAndRepairClear(t *testing.T) {
	st := newStatsStore(100)
	if got := st.observeCE(5, 10); got != 1 {
		t.Errorf("windowed CEs = %d, want 1", got)
	}
	if got := st.observeCE(5, 50); got != 2 {
		t.Errorf("windowed CEs = %d, want 2", got)
	}
	// t=150 prunes the t=10 observation (cut 50; t=50 survives).
	if got := st.observeCE(5, 150); got != 2 {
		t.Errorf("windowed CEs after prune = %d, want 2", got)
	}
	st.observeUE(7, 160)
	st.noteRepaired(5)
	if got := st.observeCE(5, 161); got != 1 {
		t.Errorf("windowed CEs after repair = %d, want 1 (clean history)", got)
	}
	snap := st.snapshot(0)
	if len(snap) != 2 || snap[0].Line != 5 || snap[1].Line != 7 {
		t.Fatalf("snapshot = %+v, want lines [5 7]", snap)
	}
	if snap[0].CEs != 4 || snap[0].Repaired != 1 || snap[1].UEs != 1 {
		t.Errorf("snapshot counters wrong: %+v", snap)
	}
	if lim := st.snapshot(1); len(lim) != 1 || lim[0].Line != 5 {
		t.Errorf("limited snapshot = %+v, want worst offender line 5", lim)
	}
}

// ceObs fabricates a chunk report observing one correctable error on each
// given line.
func ceObs(lines ...int) engine.ChunkReport {
	rep := engine.ChunkReport{}
	for _, l := range lines {
		rep.Observations = append(rep.Observations, engine.LineObservation{Line: l, ErrBits: 1})
	}
	return rep
}

// TestRepairFiresExactlyAtThreshold pins the repair engine's trigger: a
// line is spared on precisely the observation that brings its windowed CE
// count to the threshold, not before, and the spare budget bounds total
// repairs.
func TestRepairFiresExactlyAtThreshold(t *testing.T) {
	spec := testDeviceSpec(11)
	spec.Repair = &RepairConfig{CEWindowSec: 1e9, CEThreshold: 3, SpareBudget: 1}
	d, err := newManagedDevice("dev-000001", spec)
	if err != nil {
		t.Fatalf("newManagedDevice: %v", err)
	}
	// Two observations: below threshold, no repair.
	for i := 0; i < 2; i++ {
		if fired := d.foldLocked(ceObs(5), "patrol"); fired != 0 {
			t.Fatalf("repair fired below threshold (observation %d)", i+1)
		}
	}
	// Third observation crosses the threshold: exactly one repair.
	if fired := d.foldLocked(ceObs(5), "patrol"); fired != 1 {
		t.Fatal("repair did not fire at the threshold crossing")
	}
	evs := d.Repairs()
	if len(evs) != 1 {
		t.Fatalf("repair events = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Line != 5 || ev.WindowCEs != 3 || ev.Threshold != 3 || ev.Trigger != "patrol" || ev.Seq != 1 {
		t.Errorf("repair event = %+v", ev)
	}
	// The repair cleared the line's window: three more observations are
	// needed for another crossing — but the spare budget (1) is spent.
	for i := 0; i < 3; i++ {
		if fired := d.foldLocked(ceObs(5), "patrol"); fired != 0 {
			t.Fatal("repair fired past the spare budget")
		}
	}
	if v := d.View(); v.SparesUsed != 1 || v.Repairs != 1 {
		t.Errorf("view after budget exhaustion: spares=%d repairs=%d", v.SparesUsed, v.Repairs)
	}
	// UEs never count toward the CE threshold.
	ue := engine.ChunkReport{Observations: []engine.LineObservation{{Line: 9, ErrBits: 4, UE: true}}}
	spec.Repair = &RepairConfig{CEWindowSec: 1e9, CEThreshold: 1, SpareBudget: 4}
	d2, err := newManagedDevice("dev-000002", spec)
	if err != nil {
		t.Fatalf("newManagedDevice: %v", err)
	}
	if fired := d2.foldLocked(ue, "patrol"); fired != 0 {
		t.Error("UE observation triggered a CE-threshold repair")
	}
	// Disabled repair engine accumulates telemetry but never fires.
	spec.Repair = &RepairConfig{CEWindowSec: 1e9, CEThreshold: 1, SpareBudget: 4, Disabled: true}
	d3, err := newManagedDevice("dev-000003", spec)
	if err != nil {
		t.Fatalf("newManagedDevice: %v", err)
	}
	if fired := d3.foldLocked(ceObs(1, 2, 3), "patrol"); fired != 0 {
		t.Error("disabled repair engine fired")
	}
	if tel := d3.Telemetry(0); len(tel) != 3 {
		t.Errorf("disabled engine telemetry lines = %d, want 3", len(tel))
	}
}

// trajectoryDigest runs a scripted fleet scenario — patrol ticks, a live
// rate PATCH, a preempting on-demand scrub, more ticks — and returns the
// canonical JSON of everything observable plus its SHA-256.
func trajectoryDigest(t *testing.T) ([]byte, string) {
	t.Helper()
	spec := testDeviceSpec(42)
	d, err := newManagedDevice("dev-000001", spec)
	if err != nil {
		t.Fatalf("newManagedDevice: %v", err)
	}
	var outcomes []TickOutcome
	tick := func(n int) {
		for i := 0; i < n; i++ {
			outcomes = append(outcomes, d.Tick())
		}
	}
	tick(12) // three full patrol rounds
	// Live reconfiguration: halve the scrub rate mid-session.
	rate := 64.0 / 3600
	if _, err := d.ApplyPatch(PatrolPatch{RateLinesPerSec: &rate}); err != nil {
		t.Fatalf("ApplyPatch: %v", err)
	}
	tick(8)
	// On-demand scrub preempts patrol at the next chunk boundary.
	if _, err := d.EnqueueScrub("scrub-000001", ScrubRequest{First: 16, Count: 80}); err != nil {
		t.Fatalf("EnqueueScrub: %v", err)
	}
	tick(10)
	// Swap the policy live and keep patrolling.
	pol := "always"
	if _, err := d.ApplyPatch(PatrolPatch{Policy: &pol}); err != nil {
		t.Fatalf("ApplyPatch policy: %v", err)
	}
	tick(12)
	state := struct {
		Outcomes  []TickOutcome   `json:"outcomes"`
		View      DeviceView      `json:"view"`
		Scrubs    []ScrubView     `json:"scrubs"`
		Telemetry []LineTelemetry `json:"telemetry"`
		Repairs   []RepairEvent   `json:"repairs"`
	}{outcomes, d.View(), d.Scrubs(), d.Telemetry(0), d.Repairs()}
	raw, err := json.Marshal(state)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	sum := sha256.Sum256(raw)
	return raw, hex.EncodeToString(sum[:])
}

// goldenTrajectorySHA pins the scripted trajectory's full observable
// state. If an intentional engine or control-plane change shifts it,
// re-run with -update-golden semantics: the test logs the new digest.
const goldenTrajectorySHA = "44cbf19dd78fdc022c2095881ca061ca7a35a75951a0a6cad16e94889d88584b"

func TestGoldenDeterministicTrajectory(t *testing.T) {
	rawA, shaA := trajectoryDigest(t)
	rawB, shaB := trajectoryDigest(t)
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("trajectory diverged across identical runs:\nA: %s\nB: %s", rawA, rawB)
	}
	if shaA != shaB {
		t.Fatalf("digest diverged: %s vs %s", shaA, shaB)
	}
	if shaA != goldenTrajectorySHA {
		t.Errorf("trajectory digest = %s, golden = %s\nstate: %s", shaA, goldenTrajectorySHA, rawA)
	}
	// Sanity: the scenario exercised preemption and produced telemetry.
	var state struct {
		Outcomes []TickOutcome `json:"outcomes"`
		View     DeviceView    `json:"view"`
		Scrubs   []ScrubView   `json:"scrubs"`
	}
	if err := json.Unmarshal(rawA, &state); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if state.View.Preemptions == 0 {
		t.Error("scenario never preempted patrol")
	}
	if len(state.Scrubs) != 1 || state.Scrubs[0].State != ScrubDone {
		t.Errorf("on-demand scrub did not finish: %+v", state.Scrubs)
	}
	if state.View.CEObserved == 0 {
		t.Error("scenario observed no correctable errors — golden pins nothing")
	}
}

// TestPatchTakesEffectAtChunkBoundary pins the reconfiguration contract:
// a PATCH between ticks governs the very next chunk, and the session
// identity (clock, cursor, rounds) is preserved across it.
func TestPatchTakesEffectAtChunkBoundary(t *testing.T) {
	d, err := newManagedDevice("dev-000001", testDeviceSpec(7))
	if err != nil {
		t.Fatalf("newManagedDevice: %v", err)
	}
	d.Tick() // one chunk at 128 lines/hour: 32 lines in 900s
	v := d.View()
	if v.DeviceSeconds != 900 || v.Cursor != 32 {
		t.Fatalf("after first chunk: t=%g cursor=%d, want 900/32", v.DeviceSeconds, v.Cursor)
	}
	rate := 32.0 / 3600 // slow to one chunk per simulated hour
	if _, err := d.ApplyPatch(PatrolPatch{RateLinesPerSec: &rate}); err != nil {
		t.Fatalf("ApplyPatch: %v", err)
	}
	d.Tick()
	v2 := d.View()
	if v2.DeviceSeconds != 900+3600 {
		t.Errorf("patched rate not applied at next chunk: t=%g, want 4500", v2.DeviceSeconds)
	}
	if v2.Cursor != 64 {
		t.Errorf("cursor = %d, want 64 (session identity preserved)", v2.Cursor)
	}
	// Invalid patches leave the configuration untouched.
	bad := -1.0
	if _, err := d.ApplyPatch(PatrolPatch{RateLinesPerSec: &bad}); err == nil {
		t.Error("negative rate accepted")
	}
	if got := d.Patrol().RateLinesPerSec; got != rate {
		t.Errorf("failed patch mutated config: rate=%g", got)
	}
	badPol := "no-such-policy"
	if _, err := d.ApplyPatch(PatrolPatch{Policy: &badPol}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestManagerJournalRecovery drives the full durability loop: register,
// patch, remove against a journaled manager; restart; verify the
// surviving device comes back under its original ID with the patched
// configuration and a recomputed (deterministic) trajectory.
func TestManagerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	jnl, rec, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	if len(rec.FleetDevices) != 0 {
		t.Fatalf("fresh journal recovered %d devices", len(rec.FleetDevices))
	}
	m := NewManager(jnl)
	spec := testDeviceSpec(42)
	paused := true
	spec.Patrol.Paused = paused
	v1, err := m.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if v1.ID != "dev-000001" {
		t.Fatalf("minted ID = %q", v1.ID)
	}
	v2, err := m.Register(testDeviceSpec(43))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	rate := 256.0 / 3600
	if _, err := m.Patch(v1.ID, PatrolPatch{RateLinesPerSec: &rate, Paused: &paused}); err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if err := m.Remove(v2.ID); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := m.Get(v2.ID); err != ErrNotFound {
		t.Fatalf("removed device still visible: %v", err)
	}
	m.Shutdown()
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal.Close: %v", err)
	}

	jnl2, rec2, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer jnl2.Close()
	if len(rec2.FleetDevices) != 1 {
		t.Fatalf("recovered %d devices, want 1", len(rec2.FleetDevices))
	}
	m2 := NewManager(jnl2)
	defer m2.Shutdown()
	if err := m2.Recover(rec2); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	got, err := m2.Get(v1.ID)
	if err != nil {
		t.Fatalf("recovered device missing: %v", err)
	}
	if got.Patrol.RateLinesPerSec != rate || !got.Patrol.Paused {
		t.Errorf("recovered patrol config = %+v, want patched rate %g paused", got.Patrol, rate)
	}
	// State was recomputed, not restored: the clock restarts at zero.
	if got.DeviceSeconds != 0 {
		t.Errorf("recovered device clock = %g, want 0 (recompute, not restore)", got.DeviceSeconds)
	}
	// New registrations mint past the recovered IDs.
	v3, err := m2.Register(testDeviceSpec(44))
	if err != nil {
		t.Fatalf("Register after recovery: %v", err)
	}
	if v3.ID != "dev-000003" {
		t.Errorf("post-recovery ID = %q, want dev-000003", v3.ID)
	}
}

// TestLiveSessionProgresses boots a real manager (no journal) and waits
// for the patrol session goroutine to make progress, then drains it.
func TestLiveSessionProgresses(t *testing.T) {
	m := NewManager(nil)
	v, err := m.Register(testDeviceSpec(42))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := m.Get(v.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.PatrolRounds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session made no full round: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// An on-demand scrub completes even while patrol continues.
	sv, err := m.EnqueueScrub(v.ID, ScrubRequest{First: 0, Count: 64})
	if err != nil {
		t.Fatalf("EnqueueScrub: %v", err)
	}
	for {
		got, err := m.Scrub(v.ID, sv.ID)
		if err != nil {
			t.Fatalf("Scrub: %v", err)
		}
		if got.State == ScrubDone {
			if got.Report.LinesScrubbed != 64 {
				t.Errorf("scrub visited %d lines, want 64", got.Report.LinesScrubbed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("on-demand scrub never finished: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{"scrubd_fleet_devices 1", "scrubd_fleet_scrub_jobs_total 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf.String())
		}
	}
	m.Shutdown()
	// Shutdown drains: the registry is still intact afterwards.
	if _, err := m.Get(v.ID); err != nil {
		t.Errorf("device lost at shutdown: %v", err)
	}
	if _, err := m.Register(testDeviceSpec(1)); err != ErrClosed {
		t.Errorf("Register after Shutdown = %v, want ErrClosed", err)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := newManagedDevice("d", DeviceSpec{}); err == nil {
		t.Error("spec without workload accepted")
	}
	bad := testDeviceSpec(1)
	bad.Workload = "no-such-workload"
	if _, err := newManagedDevice("d", bad); err == nil {
		t.Error("unknown workload accepted")
	}
	neg := testDeviceSpec(1)
	neg.Patrol = &PatrolConfig{RateLinesPerSec: -4}
	if _, err := newManagedDevice("d", neg); err == nil {
		t.Error("negative patrol rate accepted")
	}
	d, err := newManagedDevice("d", testDeviceSpec(1))
	if err != nil {
		t.Fatalf("newManagedDevice: %v", err)
	}
	if _, err := d.EnqueueScrub("s", ScrubRequest{First: 100, Count: 64}); err == nil {
		t.Error("out-of-range scrub accepted")
	}
	if _, err := d.EnqueueScrub("s", ScrubRequest{First: 0, Count: 0}); err == nil {
		t.Error("empty scrub accepted")
	}
}
