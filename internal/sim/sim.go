// Package sim is the epoch-based Monte Carlo reliability simulator that
// ties the substrates together: lines written by a synthetic workload
// accumulate drift crossings (pcm) and stuck cells (wear); a scrub engine
// sweeps memory under a policy (scrub) protected by an ECC scheme (ecc);
// every operation is charged to an energy ledger (energy). Its outputs —
// uncorrectable errors, scrub-related writes, scrub energy — are the
// paper's three headline metrics.
//
// # Modelling decisions
//
// Lines never materialise their cells. Per line, the simulator keeps the
// K earliest drift-crossing times (sampled at write time via order
// statistics, see internal/pcm), the K weakest cell endurances, the line
// write count, and the active stuck-bit count. An error check at time t is
// a scan of at most K floats.
//
// An uncorrectable error (UE) is counted when a scrub visit finds a line
// whose error count defeats the ECC scheme; the line is then repaired
// (rewritten) so each excursion beyond the ECC budget counts once. Demand
// reads are not individually simulated — they do not change array state —
// but demand *writes* are, because a write resets the line's drift clock
// and consumes endurance.
//
// Each sweep is divided into substeps; demand writes sampled within a
// substep are applied before the substep's scrub visits. The resulting
// ordering error is bounded by interval/substeps and is identical across
// the policies being compared.
package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ecc"
	"repro/internal/ecp"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/level"
	"repro/internal/mem"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wear"
)

// crcBits is the storage cost of the lightweight detection checksum.
const crcBits = 16

// crcMissProb is the aliasing probability of the 16-bit checksum: the
// chance a genuinely erroneous line reads as clean on a light probe.
const crcMissProb = 1.0 / 65536.0

// Config assembles one simulation run.
type Config struct {
	// Geometry shapes the simulated region.
	Geometry mem.Geometry
	// PCM is the drift physics.
	PCM pcm.Params
	// Mix is the data-dependent level distribution of written lines.
	Mix pcm.LevelMix
	// Wear is the endurance model.
	Wear wear.Params
	// InitialLineWrites pre-ages every line (0 = fresh device).
	InitialLineWrites uint32
	// Energy is the per-operation cost table.
	Energy energy.Params
	// Scheme is the ECC protection per line.
	Scheme ecc.Scheme
	// Policy is the scrub decision logic.
	Policy scrub.Policy
	// ScrubInterval is the initial sweep interval in seconds.
	ScrubInterval float64
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// Substeps per sweep (time resolution of write/scrub interleaving);
	// 0 selects the default of 16.
	Substeps int
	// Workload drives demand traffic.
	Workload trace.Workload
	// Seed makes the run reproducible.
	Seed uint64
	// TrackK overrides how many earliest crossings are tracked per line;
	// 0 selects max(T+4, 8) capped at 16.
	TrackK int
	// RecordRounds retains per-sweep statistics in the result.
	RecordRounds bool
	// GapMovePeriod enables Start-Gap wear leveling: the gap moves after
	// every GapMovePeriod array writes (0 disables leveling). The classic
	// setting of 100 adds 1 % write overhead.
	GapMovePeriod uint64
	// SLCFraction models form-switch storage: on each write, this fraction
	// of lines (the compressible ones) is stored in SLC form, whose huge
	// band separation makes drift crossings negligible. 0 disables.
	SLCFraction float64
	// Source optionally overrides the Workload's synthetic generator with
	// an explicit event stream (e.g. a trace.Replayer over a recorded
	// trace). Workload is still required: its rates parameterise the
	// read-race attribution and validation.
	Source TrafficSource
	// ECPEntries enables Error-Correcting Pointers: up to this many known
	// stuck cells per line are patched before ECC sees the data (0 = off).
	ECPEntries int
	// Fault injects scrub-path faults (imperfect reads, interrupted
	// sweeps, detector aliasing, stuck check bits, controller stalls).
	// nil or an all-zero plan leaves the run bit-identical to a build
	// without fault injection.
	Fault *fault.Plan
}

// TrafficSource supplies demand-write targets per epoch. Both
// trace.Generator and trace.Replayer satisfy it.
type TrafficSource interface {
	// WritesInEpoch returns the lines written in [t, t+dt), reusing buf.
	WritesInEpoch(r *stats.RNG, t, dt float64, buf []int) []int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.PCM.Validate(); err != nil {
		return err
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if err := c.Wear.Validate(); err != nil {
		return err
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if c.Scheme == nil {
		return fmt.Errorf("sim: Scheme is required")
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: Policy is required")
	}
	if c.ScrubInterval <= 0 {
		return fmt.Errorf("sim: ScrubInterval must be positive")
	}
	if c.Horizon < c.ScrubInterval {
		return fmt.Errorf("sim: Horizon (%g) must cover at least one sweep (%g)", c.Horizon, c.ScrubInterval)
	}
	if c.Substeps < 0 {
		return fmt.Errorf("sim: Substeps must be non-negative")
	}
	if c.TrackK < 0 || c.TrackK > 16 {
		return fmt.Errorf("sim: TrackK must be in [0,16]")
	}
	if c.SLCFraction < 0 || c.SLCFraction > 1 {
		return fmt.Errorf("sim: SLCFraction must be in [0,1]")
	}
	if c.ECPEntries < 0 {
		return fmt.Errorf("sim: ECPEntries must be non-negative")
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	return nil
}

// RoundRecord captures one sweep when Config.RecordRounds is set.
type RoundRecord struct {
	Start    float64
	Interval float64
	Stats    scrub.RoundStats
}

// Result is the outcome of one simulation run.
type Result struct {
	PolicyName   string
	SchemeName   string
	WorkloadName string

	Lines      int
	SimSeconds float64
	Sweeps     int

	// Reliability.
	UEs           int64
	CorrectedBits int64
	MaxErrBits    int

	// Scrub activity.
	ScrubVisits     int64
	ScrubDecodes    int64
	ScrubProbes     int64 // lightweight CRC checks
	ScrubWriteBacks int64 // policy write-backs (excludes repairs)
	RepairWrites    int64 // rewrites forced by UEs

	// Demand activity.
	DemandWrites int64

	// Energy.
	ScrubEnergy  energy.Ledger
	DemandEnergy energy.Ledger

	// Wear at end of run.
	TotalLineWrites int64
	DeadCells       int64
	LinesWithDead   int

	// Interval control.
	FinalInterval float64

	// ECPCoveredCells counts stuck cells neutralised by error-correcting
	// pointers at end of run (0 when ECP is off).
	ECPCoveredCells int64

	// Wear leveling (when enabled).
	LevelerMoves int64
	// MaxLineWrites is the largest per-slot write count at end of run —
	// the wear hot-spot metric Start-Gap exists to flatten.
	MaxLineWrites uint32

	// UE detection attribution. Scrub counts every UE, but if demand
	// reads had raced the scrub sweep, some would have surfaced to
	// software first; UEsReadFirst estimates how many (using the
	// workload's average per-footprint-line read rate), and
	// UEDetectDelay is the time each UE spent latent between becoming
	// uncorrectable and the detecting sweep.
	UEsReadFirst  int64
	UEDetectDelay stats.Summary

	// Faults attributes injected scrub-path fault activity (all zero
	// when Config.Fault is nil or all-zero).
	Faults fault.Counts

	Rounds []RoundRecord
}

// ScrubWrites returns all scrub-attributed array writes (write-backs plus
// UE repairs) — the paper's "scrub-related writes" metric.
func (r *Result) ScrubWrites() int64 { return r.ScrubWriteBacks + r.RepairWrites }

// UERatePerGBDay normalises UEs to a fleet-comparable rate.
func (r *Result) UERatePerGBDay(lineBytes int) float64 {
	gb := float64(r.Lines) * float64(lineBytes) / 1e9
	days := r.SimSeconds / 86400
	if gb == 0 || days == 0 {
		return 0
	}
	return float64(r.UEs) / gb / days
}

// ScrubReadRate returns average scrub reads per second over the run.
func (r *Result) ScrubReadRate() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.ScrubVisits) / r.SimSeconds
}

// ScrubWriteRate returns average scrub writes per second over the run.
func (r *Result) ScrubWriteRate() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.ScrubWrites()) / r.SimSeconds
}

// secdedLike lets the simulator charge per-word decode cost for
// word-organised codes without depending on the concrete type.
type secdedLike interface{ Words() int }

// state is the mutable simulation state.
type state struct {
	cfg     Config
	rng     *stats.RNG
	sampler *pcm.LineSampler
	wearM   *wear.Model
	acct    *energy.Accountant
	source  TrafficSource
	scheme  ecc.Scheme
	policy  scrub.Policy

	lines int // logical lines
	slots int // physical slots (lines, or lines+1 with leveling)
	k     int // tracked crossings per line
	kw    int // tracked weakest cells per line

	lev     *level.StartGap // nil when leveling is off
	moveBuf []level.Move

	// inj is the scrub-path fault injector; nil means the fault path is
	// entirely absent (the bit-identical baseline). stuckCheck holds the
	// per-slot correction margin lost to stuck ECC check bits (allocated
	// only when inj is non-nil).
	inj        *fault.Injector
	stuckCheck []uint8

	writeTime  []float64
	crossings  []float64 // lines × k, absolute seconds; +Inf padding
	crossCount []uint8   // valid entries; == k means "at least k"
	writes     []uint32
	weakest    []float64 // lines × kw, ascending
	stuckBits  []uint8
	deadCells  []uint8

	visitOrder []int32

	dataBits, checkBits int
	hasCRC              bool

	res Result

	// scratch buffers
	crossBuf []float64
	eventBuf []int
}

// Run executes the simulation described by cfg.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: cancellation and deadlines are
// checked every substep, so a cancelled run returns well within one
// sweep with an error wrapping ctx.Err(). No partial result is returned.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.run(ctx); err != nil {
		return nil, err
	}
	res := s.res
	return &res, nil
}

func newState(cfg Config) (*state, error) {
	if cfg.Substeps == 0 {
		cfg.Substeps = 16
	}
	k := cfg.TrackK
	if k == 0 {
		k = cfg.Scheme.T() + 4
		if k < 8 {
			k = 8
		}
		if k > 16 {
			k = 16
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	model, err := pcm.NewModel(cfg.PCM)
	if err != nil {
		return nil, err
	}
	sampler, err := pcm.NewLineSampler(model, cfg.Mix, pcm.CellsPerLine, k)
	if err != nil {
		return nil, err
	}
	wearM, err := wear.NewModel(cfg.Wear)
	if err != nil {
		return nil, err
	}
	acct, err := energy.NewAccountant(cfg.Energy)
	if err != nil {
		return nil, err
	}
	lines := cfg.Geometry.TotalLines()
	var source TrafficSource
	if cfg.Source != nil {
		source = cfg.Source
	} else {
		gen, err := trace.NewGenerator(cfg.Workload, lines, rng.Split())
		if err != nil {
			return nil, err
		}
		source = gen
	}
	slots := lines
	var lev *level.StartGap
	if cfg.GapMovePeriod > 0 {
		lev, err = level.NewStartGap(lines, cfg.GapMovePeriod)
		if err != nil {
			return nil, err
		}
		slots = lev.Slots()
	}
	s := &state{
		cfg:     cfg,
		rng:     rng,
		sampler: sampler,
		wearM:   wearM,
		acct:    acct,
		source:  source,
		scheme:  cfg.Scheme,
		policy:  cfg.Policy,
		lines:   lines,
		slots:   slots,
		k:       k,
		kw:      cfg.Wear.K,
		lev:     lev,

		writeTime:  make([]float64, slots),
		crossings:  make([]float64, slots*k),
		crossCount: make([]uint8, slots),
		writes:     make([]uint32, slots),
		weakest:    make([]float64, slots*cfg.Wear.K),
		stuckBits:  make([]uint8, slots),
		deadCells:  make([]uint8, slots),

		dataBits:  cfg.Scheme.DataBits(),
		checkBits: cfg.Scheme.CheckBits(),
		hasCRC:    cfg.Policy.Detection() == scrub.LightDetect,
	}
	// Patrol order over physical slots, fixed for the run. With leveling
	// the spare slot is appended to the walk (and the live gap is skipped
	// at visit time).
	s.visitOrder = make([]int32, 0, slots)
	walker := mem.NewScrubWalker(cfg.Geometry)
	for i := 0; i < lines; i++ {
		line, _ := walker.Next()
		s.visitOrder = append(s.visitOrder, int32(line))
	}
	for extra := lines; extra < slots; extra++ {
		s.visitOrder = append(s.visitOrder, int32(extra))
	}
	// Scrub-path fault injection (nil injector = bit-identical baseline).
	inj, err := fault.NewInjector(cfg.Fault, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.inj = inj
	if inj != nil {
		// Stuck check bits are a property of the physical slot, rolled
		// once for the whole run from the injector's own stream.
		s.stuckCheck = make([]uint8, slots)
		for i := 0; i < slots; i++ {
			s.stuckCheck[i] = uint8(inj.LineStuckCheck())
		}
	}
	// Initialise slots: endurance draws, pre-aging, initial write at t=0.
	var wbuf []float64
	for i := 0; i < slots; i++ {
		wbuf = s.wearM.SampleWeakest(s.rng, wbuf)
		copy(s.weakest[i*s.kw:(i+1)*s.kw], wbuf)
		s.writes[i] = cfg.InitialLineWrites
		s.writeLine(i, 0)
	}
	s.res.PolicyName = cfg.Policy.Name()
	s.res.SchemeName = cfg.Scheme.Name()
	s.res.WorkloadName = cfg.Workload.Name
	s.res.Lines = lines
	return s, nil
}

// codewordBits returns the bits occupied by one encoded line, including
// the CRC when light detection is configured.
func (s *state) codewordBits() int {
	bits := s.dataBits + s.checkBits
	if s.hasCRC {
		bits += crcBits
	}
	if s.cfg.ECPEntries > 0 {
		// The pointer table travels with the line: its bits are read and
		// rewritten alongside the data.
		p := ecp.Params{
			Entries:      s.cfg.ECPEntries,
			CellsPerLine: pcm.CellsPerLine,
			BitsPerCell:  pcm.BitsPerCell,
		}
		bits += p.OverheadBits()
	}
	return bits
}

// writeLine reprograms a line at absolute time t: resets its drift clock,
// samples fresh crossing times, advances wear, and re-rolls stuck bits.
// Energy is charged by the caller (demand vs scrub attribution).
func (s *state) writeLine(i int, t float64) {
	s.writes[i]++
	s.writeTime[i] = t
	base := i * s.k
	if s.cfg.SLCFraction > 0 && s.rng.Bernoulli(s.cfg.SLCFraction) {
		// Form switch: this write compressed the line into SLC form,
		// whose band separation puts drift crossings beyond the horizon.
		for j := 0; j < s.k; j++ {
			s.crossings[base+j] = math.Inf(1)
		}
		s.crossCount[i] = 0
	} else {
		s.crossBuf = s.sampler.SampleCrossings(s.rng, s.crossBuf)
		for j := 0; j < s.k; j++ {
			if j < len(s.crossBuf) {
				s.crossings[base+j] = t + s.crossBuf[j]
			} else {
				s.crossings[base+j] = math.Inf(1)
			}
		}
		s.crossCount[i] = uint8(len(s.crossBuf))
	}
	dead := wear.DeadCells(s.weakest[i*s.kw:(i+1)*s.kw], uint64(s.writes[i]))
	// ECP patches the first ECPEntries stuck cells before ECC sees the
	// line; only the residual erodes the correction margin, and the
	// wear-aware policy reasons about that residual.
	_, residual := ecp.Absorb(s.cfg.ECPEntries, dead)
	s.deadCells[i] = uint8(residual)
	_, bits := wear.StuckErrors(s.rng, residual)
	if bits > 255 {
		bits = 255
	}
	s.stuckBits[i] = uint8(bits)
}

// errorBits returns the bit-error count a check at time t observes on line
// i, and whether the count is saturated (the true count may be higher).
func (s *state) errorBits(i int, t float64) (int, bool) {
	base := i * s.k
	n := int(s.crossCount[i])
	drift := 0
	for j := 0; j < n; j++ {
		if s.crossings[base+j] <= t {
			drift++
		} else {
			break // crossings are sorted ascending
		}
	}
	saturated := drift == s.k
	return drift + int(s.stuckBits[i]), saturated
}

// attributeDetection estimates, for a UE found by this scrub visit, how
// long the line had been uncorrectable and whether a demand read would
// have hit it first. Onset is approximated by the drift crossing that
// completed the failing pattern (the (capability+1-stuck)-th, clamped to
// the observed crossings); the read race uses the workload's average
// per-footprint-line read rate, thinned by the footprint fraction.
func (s *state) attributeDetection(i int, t float64, capability int) {
	base := i * s.k
	drift := 0
	for j := 0; j < int(s.crossCount[i]); j++ {
		if s.crossings[base+j] <= t {
			drift++
		} else {
			break
		}
	}
	onset := s.writeTime[i]
	if drift > 0 {
		d := capability + 1 - int(s.stuckBits[i])
		if d < 1 {
			d = 1
		}
		if d > drift {
			d = drift
		}
		onset = s.crossings[base+d-1]
	}
	delay := t - onset
	if delay < 0 {
		delay = 0
	}
	s.res.UEDetectDelay.Add(delay)
	lambda := s.cfg.Workload.ReadsPerLinePerSec
	if lambda > 0 && s.rng.Bernoulli(s.cfg.Workload.FootprintFrac) &&
		s.rng.Bernoulli(-math.Expm1(-lambda*delay)) {
		s.res.UEsReadFirst++
	}
}

// mapSlot resolves a logical line to its current physical slot.
func (s *state) mapSlot(logical int) int {
	if s.lev == nil {
		return logical
	}
	return s.lev.Physical(logical)
}

// recordArrayWrite advances the wear leveler's write counter and performs
// any gap moves it triggers: each move rewrites the destination slot now
// (fresh drift clock, wear, energy). Gap-move writes themselves do not
// advance the counter, matching the Start-Gap design.
func (s *state) recordArrayWrite(t float64) {
	if s.lev == nil {
		return
	}
	s.moveBuf = s.lev.RecordWrites(1, s.moveBuf)
	for _, mv := range s.moveBuf {
		s.writeLine(mv.To, t)
		s.acct.LineWrite(&s.res.DemandEnergy, s.codewordBits())
		s.res.LevelerMoves++
	}
}

// chargeDecode charges the scheme's full decode cost to the ledger.
func (s *state) chargeDecode(l *energy.Ledger) {
	if ws, ok := s.scheme.(secdedLike); ok {
		s.acct.SECDEDDecode(l, ws.Words())
	} else {
		s.acct.BCHDecode(l, s.scheme.T())
	}
}

// visit performs one scrub visit of line i at time t.
//
// With fault injection enabled, the visit distinguishes the line's true
// error count (errBits) from what the imperfect scrub machinery observes
// (observed): phantom read flips inflate the observation transiently, and
// stuck check bits erode the decode margin. Detection, write-back, and UE
// decisions all act on the observation — exactly as real hardware would —
// while CorrectedBits keeps counting real bits so reliability metrics
// stay truthful. When the injector is nil, observed == errBits on every
// path and the visit is bit-identical to the baseline.
func (s *state) visit(i int, t float64, rs *scrub.RoundStats) {
	s.res.ScrubVisits++
	rs.Lines++
	errBits, _ := s.errorBits(i, t)
	observed := errBits
	if s.inj != nil {
		observed += s.inj.ReadFlip()
	}

	switch s.policy.Detection() {
	case scrub.LightDetect:
		// Read data + CRC, run the cheap probe.
		s.acct.LineRead(&s.res.ScrubEnergy, s.dataBits+crcBits)
		s.acct.CRCCheck(&s.res.ScrubEnergy)
		s.res.ScrubProbes++
		if observed == 0 {
			return
		}
		if s.rng.Bernoulli(crcMissProb) {
			return // checksum aliased; errors stay until next look
		}
		if s.inj != nil && s.inj.ProbeFalseClean() {
			return // injected detector fault: erroneous line reads clean
		}
		// Probe fired: fetch the check bits and decode for the count.
		s.acct.LineRead(&s.res.ScrubEnergy, s.checkBits)
		s.chargeDecode(&s.res.ScrubEnergy)
		s.res.ScrubDecodes++
	default: // FullDecode
		s.acct.LineRead(&s.res.ScrubEnergy, s.dataBits+s.checkBits)
		s.chargeDecode(&s.res.ScrubEnergy)
		s.res.ScrubDecodes++
	}

	// Stuck ECC check bits corrupt the syndromes the decoder works
	// against, eroding the line's effective correction margin.
	if s.inj != nil && s.stuckCheck[i] > 0 {
		if errBits > 0 {
			s.inj.NoteStuckDecode()
		}
		observed += int(s.stuckCheck[i])
	}

	if observed > s.res.MaxErrBits {
		s.res.MaxErrBits = observed
	}
	if observed > rs.MaxErrBits {
		rs.MaxErrBits = observed
	}
	capability := s.scheme.T()
	if observed > 0 && observed >= capability-1 {
		rs.LinesNearMargin++
	}
	if observed > 0 && !s.scheme.Correctable(s.rng, observed) {
		// Uncorrectable: count the UE and repair the line so the excursion
		// is counted exactly once.
		s.res.UEs++
		rs.UEs++
		if s.inj != nil && observed != errBits && errBits <= capability {
			// Only the injected fault pushed the pattern past the margin.
			s.inj.NoteInducedUE()
		}
		s.attributeDetection(i, t, capability)
		s.writeLine(i, t)
		s.acct.LineWrite(&s.res.ScrubEnergy, s.codewordBits())
		s.res.RepairWrites++
		s.recordArrayWrite(t)
		return
	}
	// Clean lines reach here only under FullDecode (the light probe
	// returns early); policies with a write threshold >= 1 leave them
	// alone, while the naive always-write patrol rewrites them too.
	info := scrub.VisitInfo{ErrBits: observed, Capability: capability, DeadCells: int(s.deadCells[i])}
	if s.policy.ShouldWriteBack(info) {
		s.res.CorrectedBits += int64(errBits)
		s.writeLine(i, t)
		s.acct.LineWrite(&s.res.ScrubEnergy, s.codewordBits())
		s.res.ScrubWriteBacks++
		rs.WriteBacks++
		s.recordArrayWrite(t)
	}
}

// run executes sweeps until the horizon. Cancellation is checked every
// substep, so the method returns well within one sweep of ctx ending.
func (s *state) run(ctx context.Context) error {
	t := 0.0
	interval := s.cfg.ScrubInterval
	for t+interval <= s.cfg.Horizon+1e-9 {
		// Injected controller faults: a stall stretches this sweep's
		// duration (drift accumulates longer between visits), and an
		// interruption silently drops the patrol suffix past the cutoff.
		sweepDur := interval
		cutoff := s.slots
		if s.inj != nil {
			if f := s.inj.StallFactor(); f > 1 {
				sweepDur = interval * f
				s.inj.NoteStallSeconds(sweepDur - interval)
			}
			cutoff = s.inj.SweepCutoff(s.slots)
		}
		rs := scrub.RoundStats{Capability: s.scheme.T()}
		dt := sweepDur / float64(s.cfg.Substeps)
		perStep := (s.slots + s.cfg.Substeps - 1) / s.cfg.Substeps
		for step := 0; step < s.cfg.Substeps; step++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: run canceled at t=%.0fs: %w", t, err)
			}
			t0 := t + float64(step)*dt
			// Demand writes land before this substep's visits.
			s.eventBuf = s.source.WritesInEpoch(s.rng, t0, dt, s.eventBuf)
			for _, line := range s.eventBuf {
				tw := t0 + s.rng.Float64()*dt
				s.writeLine(s.mapSlot(line), tw)
				s.acct.LineWrite(&s.res.DemandEnergy, s.codewordBits())
				s.res.DemandWrites++
				s.recordArrayWrite(tw)
			}
			// Scrub visits for this slice of the patrol order. With
			// leveling enabled the slot currently serving as the gap
			// holds stale data and is skipped.
			lo := step * perStep
			hi := lo + perStep
			if hi > s.slots {
				hi = s.slots
			}
			if hi > cutoff {
				hi = cutoff // sweep interrupted: suffix never visited
			}
			for pos := lo; pos < hi; pos++ {
				slot := int(s.visitOrder[pos])
				if s.lev != nil && slot == s.lev.Gap() {
					continue
				}
				tv := t + sweepDur*float64(pos)/float64(s.slots)
				s.visit(slot, tv, &rs)
			}
		}
		t += sweepDur
		s.res.Sweeps++
		if s.cfg.RecordRounds {
			s.res.Rounds = append(s.res.Rounds, RoundRecord{Start: t - sweepDur, Interval: sweepDur, Stats: rs})
		}
		interval = s.policy.NextInterval(interval, rs)
	}
	s.res.SimSeconds = t
	s.res.FinalInterval = interval
	// Wear census over physical slots. deadCells holds the ECC-visible
	// residual, so recompute the raw stuck count for reporting.
	for i := 0; i < s.slots; i++ {
		s.res.TotalLineWrites += int64(s.writes[i])
		if s.writes[i] > s.res.MaxLineWrites {
			s.res.MaxLineWrites = s.writes[i]
		}
		dead := wear.DeadCells(s.weakest[i*s.kw:(i+1)*s.kw], uint64(s.writes[i]))
		if dead > 0 {
			s.res.LinesWithDead++
			s.res.DeadCells += int64(dead)
		}
		covered, _ := ecp.Absorb(s.cfg.ECPEntries, dead)
		s.res.ECPCoveredCells += int64(covered)
	}
	if s.inj != nil {
		s.res.Faults = s.inj.Counts()
	}
	return nil
}
