// Package sim is the epoch-based Monte Carlo reliability simulator that
// ties the substrates together: lines written by a synthetic workload
// accumulate drift crossings (pcm) and stuck cells (wear); a scrub engine
// sweeps memory under a policy (scrub) protected by an ECC scheme (ecc);
// every operation is charged to an energy ledger (energy). Its outputs —
// uncorrectable errors, scrub-related writes, scrub energy — are the
// paper's three headline metrics.
//
// The run pipeline itself lives in internal/engine; sim is a thin adapter
// that keeps the historical Config/Result API. Config is an alias of
// engine.Spec, so values flow between the two packages without
// conversion, and Run/RunContext delegate to the shared pooled engine
// runner. See the engine package documentation for the modelling
// decisions (per-line crossing tracking, UE accounting, substep
// write/scrub interleaving) and for instrumentation hooks.
package sim

import (
	"context"

	"repro/internal/engine"
)

// Config assembles one simulation run. It is the engine's resolved Spec
// under its historical name.
type Config = engine.Spec

// TrafficSource supplies demand-write targets per epoch. Both
// trace.Generator and trace.Replayer satisfy it.
type TrafficSource = engine.TrafficSource

// RoundRecord captures one sweep when Config.RecordRounds is set.
type RoundRecord = engine.RoundRecord

// Result is the outcome of one simulation run.
type Result = engine.Result

// Run executes the simulation described by cfg.
func Run(cfg Config) (*Result, error) {
	return engine.Run(cfg)
}

// RunContext is Run under a context: cancellation and deadlines are
// checked every substep and every few hundred visits within a substep, so
// a cancelled run returns promptly with an error wrapping ctx.Err(). No
// partial result is returned.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return engine.RunContext(ctx, cfg)
}
