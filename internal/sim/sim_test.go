package sim

import (
	"math"
	"testing"

	"repro/internal/ecc"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/trace"
	"repro/internal/wear"
)

// testConfig returns a small, fast configuration with knobs overridable by
// the caller.
func testConfig() Config {
	return Config{
		Geometry: mem.Geometry{
			Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
			RowsPerBank: 16, LinesPerRow: 8, LineBytes: 64,
		}, // 256 lines
		PCM:           pcm.DefaultParams(),
		Mix:           pcm.UniformMix(),
		Wear:          wear.DefaultParams(),
		Energy:        energy.DefaultParams(),
		Scheme:        ecc.MustBCHLine(4),
		Policy:        scrub.Basic(),
		ScrubInterval: 5000,
		Horizon:       25000,
		Substeps:      8,
		Workload: trace.Workload{
			Name:                "test-mix",
			WritesPerLinePerSec: 1e-5,
			ReadsPerLinePerSec:  1e-4,
			FootprintFrac:       1.0,
			ZipfSkew:            0.5,
		},
		Seed: 42,
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil scheme", func(c *Config) { c.Scheme = nil }},
		{"nil policy", func(c *Config) { c.Policy = nil }},
		{"zero interval", func(c *Config) { c.ScrubInterval = 0 }},
		{"horizon < interval", func(c *Config) { c.Horizon = c.ScrubInterval / 2 }},
		{"negative substeps", func(c *Config) { c.Substeps = -1 }},
		{"huge trackK", func(c *Config) { c.TrackK = 99 }},
		{"bad geometry", func(c *Config) { c.Geometry.RowsPerBank = 0 }},
		{"bad pcm", func(c *Config) { c.PCM.SigmaProg = -1 }},
		{"bad mix", func(c *Config) { c.Mix = pcm.LevelMix{1, 1, 0, 0} }},
		{"bad wear", func(c *Config) { c.Wear.K = 0 }},
		{"bad energy", func(c *Config) { c.Energy.ArrayWritePJPerBit = 0 }},
		{"bad workload", func(c *Config) { c.Workload.FootprintFrac = 0 }},
	}
	for _, c := range cases {
		cfg := testConfig()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := cfg.Geometry.TotalLines()
	if res.Lines != lines {
		t.Errorf("lines = %d, want %d", res.Lines, lines)
	}
	if res.Sweeps != 5 {
		t.Errorf("sweeps = %d, want 5", res.Sweeps)
	}
	if res.ScrubVisits != int64(lines*res.Sweeps) {
		t.Errorf("visits = %d, want %d", res.ScrubVisits, lines*res.Sweeps)
	}
	// Full-decode policy decodes every visit and never probes.
	if res.ScrubDecodes != res.ScrubVisits {
		t.Errorf("decodes = %d, want %d", res.ScrubDecodes, res.ScrubVisits)
	}
	if res.ScrubProbes != 0 {
		t.Errorf("probes = %d, want 0 for full decode", res.ScrubProbes)
	}
	if res.ScrubWrites() > res.ScrubVisits {
		t.Error("cannot write back more lines than visited")
	}
	if res.ScrubEnergy.Total() <= 0 {
		t.Error("scrub energy must be positive")
	}
	if res.SimSeconds != cfg.Horizon {
		t.Errorf("sim seconds = %g, want %g", res.SimSeconds, cfg.Horizon)
	}
	if res.FinalInterval != cfg.ScrubInterval {
		t.Errorf("fixed policy interval changed: %g", res.FinalInterval)
	}
	// Every line was written at least once (initialisation).
	if res.TotalLineWrites < int64(lines) {
		t.Errorf("total line writes = %d < lines", res.TotalLineWrites)
	}
}

func TestRunReproducible(t *testing.T) {
	cfg := testConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.UEs != b.UEs || a.ScrubWrites() != b.ScrubWrites() ||
		a.DemandWrites != b.DemandWrites ||
		math.Abs(a.ScrubEnergy.Total()-b.ScrubEnergy.Total()) > 1e-6 {
		t.Error("same seed produced different results")
	}
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DemandWrites == c.DemandWrites && a.ScrubWrites() == c.ScrubWrites() && a.UEs == c.UEs {
		t.Log("warning: different seed produced identical results (possible but unlikely)")
	}
}

func TestAlwaysWriteWritesEveryVisit(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = scrub.AlwaysWrite()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScrubWrites() != res.ScrubVisits {
		t.Errorf("always-write wrote %d of %d visits", res.ScrubWrites(), res.ScrubVisits)
	}
}

func TestLightDetectSkipsCleanDecodes(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = scrub.LightBasic()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScrubProbes != res.ScrubVisits {
		t.Errorf("probes = %d, want %d", res.ScrubProbes, res.ScrubVisits)
	}
	if res.ScrubDecodes >= res.ScrubVisits {
		t.Errorf("light detect should decode a strict subset: %d of %d", res.ScrubDecodes, res.ScrubVisits)
	}
	// Energy comparison on the *check path* (read + decode + detect):
	// light detect must beat full decode there. Total scrub energy is
	// dominated by write-backs, which differ run to run and carry the
	// CRC storage overhead, so it is not the right comparison here.
	full, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	lightCheck := res.ScrubEnergy.ReadPJ + res.ScrubEnergy.DecodePJ + res.ScrubEnergy.DetectPJ
	fullCheck := full.ScrubEnergy.ReadPJ + full.ScrubEnergy.DecodePJ + full.ScrubEnergy.DetectPJ
	if lightCheck >= fullCheck {
		t.Errorf("light-detect check energy %.3g >= full-decode %.3g", lightCheck, fullCheck)
	}
}

func TestThresholdReducesScrubWrites(t *testing.T) {
	base := testConfig()
	// Long interval so errors accumulate and the threshold matters.
	base.ScrubInterval = 50000
	base.Horizon = 250000
	runWith := func(p scrub.Policy) *Result {
		cfg := base
		cfg.Policy = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	onError := runWith(scrub.Basic())
	thr3 := runWith(scrub.Threshold(3))
	if thr3.ScrubWrites() >= onError.ScrubWrites() {
		t.Errorf("threshold-3 writes (%d) should be below write-on-error (%d)",
			thr3.ScrubWrites(), onError.ScrubWrites())
	}
}

func TestSECDEDSuffersMoreUEsThanBCH8(t *testing.T) {
	base := testConfig()
	base.ScrubInterval = 40000 // ~3 expected drift errors per line per sweep
	base.Horizon = 200000
	base.Workload.WritesPerLinePerSec = 0 // pure drift, no demand rewrites
	runWith := func(s ecc.Scheme) *Result {
		cfg := base
		cfg.Scheme = s
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sec := runWith(ecc.NewSECDEDLine())
	bch := runWith(ecc.MustBCHLine(8))
	if sec.UEs == 0 {
		t.Fatal("expected SECDED UEs at a 40000 s interval under pure drift")
	}
	if bch.UEs >= sec.UEs {
		t.Errorf("BCH-8 UEs (%d) should be far below SECDED UEs (%d)", bch.UEs, sec.UEs)
	}
}

func TestDemandWritesSuppressDriftErrors(t *testing.T) {
	base := testConfig()
	base.ScrubInterval = 40000
	base.Horizon = 200000
	base.Scheme = ecc.NewSECDEDLine()
	runWith := func(rate float64) *Result {
		cfg := base
		cfg.Workload.WritesPerLinePerSec = rate
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	idle := runWith(0)
	busy := runWith(0.001) // mean rewrite every 1000 s ≪ interval
	if busy.UEs >= idle.UEs {
		t.Errorf("frequent rewrites should suppress UEs: busy %d vs idle %d", busy.UEs, idle.UEs)
	}
}

func TestUEsRepaired(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = ecc.NewSECDEDLine()
	cfg.ScrubInterval = 40000
	cfg.Horizon = 200000
	cfg.Workload.WritesPerLinePerSec = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UEs == 0 {
		t.Fatal("expected UEs")
	}
	if res.RepairWrites != res.UEs {
		t.Errorf("repairs (%d) must equal UEs (%d)", res.RepairWrites, res.UEs)
	}
}

func TestAdaptiveIntervalMoves(t *testing.T) {
	cfg := testConfig()
	a := scrub.AdaptiveConfig{
		MinInterval: 1000, MaxInterval: 100000,
		Shrink: 0.5, Grow: 1.5,
		HighWater: 1e-3, LowWater: 1e-4,
	}
	cfg.Policy = scrub.MustNew(scrub.Config{
		Label: "adaptive-test", Detect: scrub.FullDecode,
		WriteThreshold: 1, Adaptive: &a,
	})
	cfg.Scheme = ecc.MustBCHLine(8) // wide margin → controller should relax
	cfg.ScrubInterval = 2000
	cfg.Horizon = 100000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At a 2000 s interval with BCH-4, drift pressure is negligible, so
	// the controller must have grown the interval.
	if res.FinalInterval <= cfg.ScrubInterval {
		t.Errorf("adaptive interval did not grow: %g", res.FinalInterval)
	}
}

func TestRecordRounds(t *testing.T) {
	cfg := testConfig()
	cfg.RecordRounds = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != res.Sweeps {
		t.Fatalf("recorded %d rounds, want %d", len(res.Rounds), res.Sweeps)
	}
	var visits int64
	for i, rr := range res.Rounds {
		if rr.Interval != cfg.ScrubInterval {
			t.Errorf("round %d interval %g", i, rr.Interval)
		}
		visits += rr.Stats.Lines
	}
	if visits != res.ScrubVisits {
		t.Errorf("round line counts (%d) disagree with visit total (%d)", visits, res.ScrubVisits)
	}
}

func TestPreAgingCreatesDeadCells(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLineWrites = 3_000_000_000 // far beyond 10^8 median endurance
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinesWithDead != res.Lines {
		t.Errorf("every line should have dead cells at 3e9 writes; got %d of %d",
			res.LinesWithDead, res.Lines)
	}
	fresh, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.LinesWithDead != 0 {
		t.Errorf("fresh device should have no dead cells, got %d", fresh.LinesWithDead)
	}
}

func TestResultRateHelpers(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ScrubReadRate(); math.Abs(got-float64(res.ScrubVisits)/res.SimSeconds) > 1e-9 {
		t.Errorf("scrub read rate = %g", got)
	}
	wantW := float64(res.ScrubWrites()) / res.SimSeconds
	if got := res.ScrubWriteRate(); math.Abs(got-wantW) > 1e-9 {
		t.Errorf("scrub write rate = %g", got)
	}
	empty := &Result{}
	if empty.ScrubReadRate() != 0 || empty.ScrubWriteRate() != 0 || empty.UERatePerGBDay(64) != 0 {
		t.Error("zero-duration result should report zero rates")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = nil
	if _, err := Run(cfg); err == nil {
		t.Error("invalid config accepted by Run")
	}
}

func TestWearAccumulatesWithScrubWrites(t *testing.T) {
	// always-write at a short interval racks up line writes fast.
	cfg := testConfig()
	cfg.Policy = scrub.AlwaysWrite()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each line: 1 init + 5 sweeps of forced write-backs + demand.
	minWrites := int64(cfg.Geometry.TotalLines() * 6)
	if res.TotalLineWrites < minWrites {
		t.Errorf("total writes %d below floor %d", res.TotalLineWrites, minWrites)
	}
}
