package sim

import (
	"testing"

	"repro/internal/scrub"
)

func TestECPValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ECPEntries = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ECP entries accepted")
	}
}

func TestECPAbsorbsStuckCells(t *testing.T) {
	// Heavily aged device: ~4-5 dead cells per line. Without ECP the
	// stuck bits eat most of the BCH-8 budget and drift finishes the job;
	// with ECP-8 the stuck cells vanish from the ECC's view.
	base := testConfig()
	base.InitialLineWrites = 30_000_000
	base.ScrubInterval = 20000
	base.Horizon = 100000
	base.Workload.WritesPerLinePerSec = 0
	base.Policy = scrub.Threshold(4)

	run := func(entries int) *Result {
		cfg := base
		cfg.ECPEntries = entries
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	none := run(0)
	full := run(12) // more entries than any line has dead cells

	if none.DeadCells == 0 {
		t.Fatal("pre-aging produced no dead cells; test needs a harder device")
	}
	// The raw wear census is driven by pre-aging, not ECP; the two runs'
	// RNG streams diverge (different stuck-residuals change draw counts),
	// so require agreement within 10 % rather than exact equality.
	ratio := float64(none.DeadCells) / float64(full.DeadCells)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("wear census diverged with ECP: %d vs %d dead cells",
			none.DeadCells, full.DeadCells)
	}
	if none.ECPCoveredCells != 0 {
		t.Errorf("ECP-0 covered %d cells", none.ECPCoveredCells)
	}
	if full.ECPCoveredCells != full.DeadCells {
		t.Errorf("ECP-12 covered %d of %d dead cells", full.ECPCoveredCells, full.DeadCells)
	}
	// Reliability: stuck-cell pressure gone, UEs drop (or stay at zero).
	if full.UEs > none.UEs {
		t.Errorf("ECP increased UEs: %d vs %d", full.UEs, none.UEs)
	}
	if none.UEs > 0 && full.UEs >= none.UEs {
		t.Errorf("ECP did not reduce UEs: %d vs %d", full.UEs, none.UEs)
	}
	// Scrub writes drop too: wear-ware... no, Threshold(4) counts stuck
	// bits toward the write threshold, so patched lines trigger fewer
	// write-backs.
	if full.ScrubWrites() > none.ScrubWrites() {
		t.Errorf("ECP increased scrub writes: %d vs %d", full.ScrubWrites(), none.ScrubWrites())
	}
}

func TestECPPartialCoverage(t *testing.T) {
	base := testConfig()
	base.InitialLineWrites = 30_000_000
	base.ECPEntries = 2
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.ECPCoveredCells == 0 {
		t.Error("ECP-2 covered nothing on an aged device")
	}
	if res.ECPCoveredCells > res.DeadCells {
		t.Errorf("covered %d exceeds dead %d", res.ECPCoveredCells, res.DeadCells)
	}
}
