package sim

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/scrub"
)

func TestSLCFractionValidation(t *testing.T) {
	cfg := testConfig()
	cfg.SLCFraction = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative SLC fraction accepted")
	}
	cfg.SLCFraction = 1.1
	if err := cfg.Validate(); err == nil {
		t.Error("SLC fraction > 1 accepted")
	}
}

func TestSLCFractionSuppressesDriftErrors(t *testing.T) {
	base := testConfig()
	base.Scheme = ecc.NewSECDEDLine()
	base.ScrubInterval = 40000
	base.Horizon = 200000
	base.Workload.WritesPerLinePerSec = 0
	run := func(f float64) *Result {
		cfg := base
		cfg.SLCFraction = f
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	none := run(0)
	half := run(0.5)
	all := run(1.0)
	if none.UEs == 0 {
		t.Fatal("expected UEs in the MLC-only run")
	}
	if half.UEs >= none.UEs {
		t.Errorf("half-SLC UEs (%d) should be below MLC-only (%d)", half.UEs, none.UEs)
	}
	if all.UEs != 0 {
		t.Errorf("all-SLC run should have zero drift UEs, got %d", all.UEs)
	}
	if all.CorrectedBits != 0 {
		t.Errorf("all-SLC run corrected %d bits, want 0", all.CorrectedBits)
	}
	// Write-back traffic shrinks proportionally.
	if half.ScrubWrites() >= none.ScrubWrites() {
		t.Errorf("half-SLC scrub writes (%d) should be below MLC-only (%d)",
			half.ScrubWrites(), none.ScrubWrites())
	}
}

func TestUEDetectionAttribution(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = ecc.NewSECDEDLine()
	cfg.Policy = scrub.Basic()
	cfg.ScrubInterval = 40000
	cfg.Horizon = 200000
	cfg.Workload.WritesPerLinePerSec = 0
	cfg.Workload.ReadsPerLinePerSec = 0.01 // reads every ~100 s per line
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UEs == 0 {
		t.Fatal("expected UEs")
	}
	if res.UEDetectDelay.N() != res.UEs {
		t.Errorf("detection delays recorded for %d of %d UEs", res.UEDetectDelay.N(), res.UEs)
	}
	// Latency is bounded by one sweep (drift onset within the interval).
	if res.UEDetectDelay.Max() > cfg.ScrubInterval*2+1 {
		t.Errorf("detection delay %.0f s exceeds two sweep intervals", res.UEDetectDelay.Max())
	}
	if res.UEDetectDelay.Mean() <= 0 {
		t.Error("mean detection delay should be positive")
	}
	// With reads every ~100 s and delays of hours, essentially every UE
	// would have been read first.
	if float64(res.UEsReadFirst) < 0.8*float64(res.UEs) {
		t.Errorf("read-first UEs = %d of %d; expected nearly all at this read rate",
			res.UEsReadFirst, res.UEs)
	}
	// With no reads at all, none can be read-first.
	cfg.Workload.ReadsPerLinePerSec = 0
	quiet, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.UEsReadFirst != 0 {
		t.Errorf("no reads but %d read-first UEs", quiet.UEsReadFirst)
	}
}
