package sim

import (
	"math"
	"testing"
)

// TestGoldenDeterminism pins the exact counters of a fixed-seed run. It
// exists as a regression tripwire: any change to RNG consumption order,
// sampling algorithms, or event scheduling shifts these numbers and must
// be a conscious decision. When such a change is intentional, regenerate
// the constants (run with -run TestGoldenDeterminism -v and copy the
// failure output).
func TestGoldenDeterminism(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	type golden struct {
		UEs, ScrubWrites, Corrected, Demand, Visits int64
		Energy                                      float64
	}
	want := golden{
		UEs:         0,
		ScrubWrites: 498,
		Corrected:   640,
		Demand:      63,
		Visits:      1280,
		Energy:      5.15131e+07,
	}
	got := golden{
		UEs:         res.UEs,
		ScrubWrites: res.ScrubWrites(),
		Corrected:   res.CorrectedBits,
		Demand:      res.DemandWrites,
		Visits:      res.ScrubVisits,
		Energy:      res.ScrubEnergy.Total(),
	}
	if got.UEs != want.UEs || got.ScrubWrites != want.ScrubWrites ||
		got.Corrected != want.Corrected || got.Demand != want.Demand ||
		got.Visits != want.Visits ||
		math.Abs(got.Energy-want.Energy)/want.Energy > 1e-4 {
		t.Errorf("golden counters drifted:\n got  %+v\n want %+v", got, want)
	}
}
