package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, testConfig())
	if res != nil {
		t.Error("canceled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestRunContextCancelMidRun cancels a long run from another goroutine
// and requires a prompt, wrapped return: the run must stop at the next
// substep, not grind to the horizon.
func TestRunContextCancelMidRun(t *testing.T) {
	cfg := testConfig()
	cfg.Horizon = cfg.ScrubInterval * 1e6 // far more sweeps than we'll allow
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, cfg)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return promptly after cancellation")
	}
}

func TestRunContextDeadline(t *testing.T) {
	cfg := testConfig()
	cfg.Horizon = cfg.ScrubInterval * 1e6
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestRunContextCompletesNormally: an un-cancelled context changes
// nothing about the run's outcome.
func TestRunContextCompletesNormally(t *testing.T) {
	plain, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunContext(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(plain) != fingerprint(viaCtx) {
		t.Error("RunContext(Background) differs from Run")
	}
}
