package sim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/scrub"
)

// resultFingerprint captures every deterministic counter of a run that the
// zero-fault identity guarantee covers.
type resultFingerprint struct {
	UEs, Corrected, Demand, Visits, Decodes, Probes, WriteBacks, Repairs int64
	Sweeps                                                               int
	MaxErrBits                                                           int
	SimSeconds, FinalInterval, ScrubEnergy, DemandEnergy                 float64
	Faults                                                               fault.Counts
}

func fingerprint(r *Result) resultFingerprint {
	return resultFingerprint{
		UEs: r.UEs, Corrected: r.CorrectedBits, Demand: r.DemandWrites,
		Visits: r.ScrubVisits, Decodes: r.ScrubDecodes, Probes: r.ScrubProbes,
		WriteBacks: r.ScrubWriteBacks, Repairs: r.RepairWrites,
		Sweeps: r.Sweeps, MaxErrBits: r.MaxErrBits,
		SimSeconds: r.SimSeconds, FinalInterval: r.FinalInterval,
		ScrubEnergy: r.ScrubEnergy.Total(), DemandEnergy: r.DemandEnergy.Total(),
		Faults: r.Faults,
	}
}

// TestZeroFaultPlanIsIdentity pins the tentpole's core guarantee: a nil
// plan and an all-zero plan produce byte-identical results.
func TestZeroFaultPlanIsIdentity(t *testing.T) {
	base, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Fault = &fault.Plan{} // all-zero: must be indistinguishable from nil
	zero, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(base) != fingerprint(zero) {
		t.Errorf("zero-rate plan perturbed the run:\n nil  %+v\n zero %+v",
			fingerprint(base), fingerprint(zero))
	}
	if zero.Faults != (fault.Counts{}) {
		t.Errorf("zero plan recorded fault activity: %+v", zero.Faults)
	}
}

// TestZeroFaultPlanIdentityLightDetect repeats the identity check on the
// light-detect path, whose probe short-circuit is the riskiest site.
func TestZeroFaultPlanIdentityLightDetect(t *testing.T) {
	mk := func(p *fault.Plan) *Result {
		cfg := testConfig()
		cfg.Policy = scrub.LightBasic()
		cfg.Fault = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := fingerprint(mk(nil)), fingerprint(mk(&fault.Plan{})); a != b {
		t.Errorf("light-detect zero-plan identity broken:\n nil  %+v\n zero %+v", a, b)
	}
}

func TestFaultRunDeterminism(t *testing.T) {
	mk := func() resultFingerprint {
		cfg := testConfig()
		cfg.Fault = &fault.Plan{
			ReadFlipRate: 0.05, SweepSkipRate: 0.2, ProbeMissRate: 0.1,
			StuckCheckRate: 0.05, StallRate: 0.2,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("fault-enabled run not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestInvalidFaultPlanRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Plan{ReadFlipRate: 2}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted rate > 1")
	}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted rate > 1")
	}
}

// TestReadFlipFaultsMonotoneUEs checks the headline property of the
// injection layer: more scrub-read faults mean more (spurious) UEs. The
// max phantom burst is set beyond the ECC capability so faulty reads can
// actually defeat BCH-4.
func TestReadFlipFaultsMonotoneUEs(t *testing.T) {
	ues := func(rate float64) (int64, fault.Counts) {
		cfg := testConfig()
		cfg.Fault = &fault.Plan{ReadFlipRate: rate, ReadFlipMaxBits: 12}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.UEs, res.Faults
	}
	u0, _ := ues(0)
	uLow, cLow := ues(0.01)
	uHigh, cHigh := ues(0.2)
	if !(u0 <= uLow && uLow <= uHigh) {
		t.Errorf("UEs not monotone in read-fault rate: %d, %d, %d", u0, uLow, uHigh)
	}
	if uHigh == u0 {
		t.Errorf("high fault rate produced no extra UEs (%d)", uHigh)
	}
	if cHigh.ReadFaultVisits <= cLow.ReadFaultVisits || cHigh.InducedUEs == 0 {
		t.Errorf("fault counters not tracking: low %+v high %+v", cLow, cHigh)
	}
	if cHigh.InducedUEs > uHigh {
		t.Errorf("induced UEs (%d) exceed total UEs (%d)", cHigh.InducedUEs, uHigh)
	}
}

// TestSweepSkipFaultsReduceVisits: interrupted sweeps must visit fewer
// lines, and the skip counters must account for the difference.
func TestSweepSkipFaultsReduceVisits(t *testing.T) {
	base, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Fault = &fault.Plan{SweepSkipRate: 0.5}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScrubVisits >= base.ScrubVisits {
		t.Errorf("visits %d not reduced from %d by interruptions", res.ScrubVisits, base.ScrubVisits)
	}
	if res.Faults.SweepsInterrupted == 0 {
		t.Error("no sweeps recorded interrupted at rate 0.5")
	}
	if res.ScrubVisits+res.Faults.LinesSkipped != base.ScrubVisits {
		t.Errorf("visits(%d) + skipped(%d) != baseline visits(%d)",
			res.ScrubVisits, res.Faults.LinesSkipped, base.ScrubVisits)
	}
}

// TestProbeMissFaultsSuppressDecodes: injected detector aliasing on the
// light-detect path must reduce decodes below the fault-free run.
func TestProbeMissFaultsSuppressDecodes(t *testing.T) {
	mk := func(rate float64) *Result {
		cfg := testConfig()
		cfg.Policy = scrub.LightBasic()
		cfg.Fault = &fault.Plan{ProbeMissRate: rate}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean, faulty := mk(0), mk(0.5)
	if faulty.Faults.ProbeFalseCleans == 0 {
		t.Fatal("no probe false-cleans at rate 0.5")
	}
	if faulty.ScrubDecodes >= clean.ScrubDecodes {
		t.Errorf("decodes %d not suppressed from %d", faulty.ScrubDecodes, clean.ScrubDecodes)
	}
}

// TestStuckCheckFaultsErodeMargin: stuck ECC check bits must designate
// lines and raise UEs relative to the fault-free run.
func TestStuckCheckFaultsErodeMargin(t *testing.T) {
	mk := func(rate float64) *Result {
		cfg := testConfig()
		// 6 stuck bits exceed BCH-4's budget on their own, so every
		// decode of a stuck line fails — the aggressive end of the model.
		cfg.Fault = &fault.Plan{StuckCheckRate: rate, StuckCheckBits: 6}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean, faulty := mk(0), mk(0.5)
	if faulty.Faults.StuckCheckLines == 0 {
		t.Fatal("no stuck-check lines at rate 0.5")
	}
	if faulty.UEs < clean.UEs {
		t.Errorf("stuck check bits lowered UEs: %d < %d", faulty.UEs, clean.UEs)
	}
	if faulty.UEs > clean.UEs && faulty.Faults.InducedUEs == 0 {
		t.Error("extra UEs present but none attributed to injection")
	}
}

// TestStallFaultsStretchRuntime: controller stalls stretch sweep spans,
// so the simulated clock must run past the fault-free end time.
func TestStallFaultsStretchRuntime(t *testing.T) {
	base, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Fault = &fault.Plan{StallRate: 0.5, StallFactor: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Stalls == 0 {
		t.Fatal("no stalls at rate 0.5")
	}
	// Any stall either stretches the clock past the baseline or burns the
	// horizon in fewer sweeps (both, usually).
	if res.SimSeconds <= base.SimSeconds && res.Sweeps >= base.Sweeps {
		t.Errorf("stalls had no effect: clock %g (base %g), sweeps %d (base %d)",
			res.SimSeconds, base.SimSeconds, res.Sweeps, base.Sweeps)
	}
	if res.Faults.StallSeconds <= 0 {
		t.Error("StallSeconds not accumulated")
	}
}
