package sim

import (
	"testing"

	"repro/internal/scrub"
)

// hotConfig returns a config with an extremely skewed write stream so a
// few physical slots take most of the wear when leveling is off.
func hotConfig() Config {
	cfg := testConfig()
	cfg.Workload.WritesPerLinePerSec = 0.02
	cfg.Workload.FootprintFrac = 0.05 // 12 hot lines out of 256
	cfg.Workload.ZipfSkew = 1.2
	cfg.ScrubInterval = 5000
	cfg.Horizon = 50000
	return cfg
}

func TestLevelingSpreadsWear(t *testing.T) {
	noLev, err := Run(hotConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := hotConfig()
	cfg.GapMovePeriod = 20
	lev, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lev.LevelerMoves == 0 {
		t.Fatal("leveler never moved the gap")
	}
	if noLev.LevelerMoves != 0 {
		t.Fatal("leveler moves reported with leveling off")
	}
	if lev.MaxLineWrites >= noLev.MaxLineWrites {
		t.Errorf("leveling should flatten the wear hot-spot: max writes %d (lev) vs %d (none)",
			lev.MaxLineWrites, noLev.MaxLineWrites)
	}
}

func TestLevelingMoveAccounting(t *testing.T) {
	cfg := hotConfig()
	cfg.GapMovePeriod = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Counted writes that advance the gap counter: demand + scrub +
	// repairs (gap-move copies do not re-advance it).
	counted := res.DemandWrites + res.ScrubWrites()
	wantMoves := counted / int64(cfg.GapMovePeriod)
	if res.LevelerMoves < wantMoves-1 || res.LevelerMoves > wantMoves+1 {
		t.Errorf("leveler moves %d, want ~%d for %d counted writes",
			res.LevelerMoves, wantMoves, counted)
	}
	// Total line writes include init, demand, scrub and leveler copies.
	floor := int64(res.Lines) + counted + res.LevelerMoves
	if res.TotalLineWrites < floor {
		t.Errorf("total writes %d below accounting floor %d", res.TotalLineWrites, floor)
	}
}

func TestLevelingVisitsSkipGap(t *testing.T) {
	cfg := testConfig()
	cfg.GapMovePeriod = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With the gap skipped, each sweep visits exactly `slots` patrol
	// positions minus one (the live gap), i.e. `lines` visits per sweep.
	perSweep := res.ScrubVisits / int64(res.Sweeps)
	if perSweep != int64(cfg.Geometry.TotalLines()) {
		t.Errorf("visits per sweep = %d, want %d", perSweep, cfg.Geometry.TotalLines())
	}
}

func TestLevelingPreservesReliabilityBehaviour(t *testing.T) {
	// Leveling redistributes wear; it must not change the drift story:
	// the combined-style policy still sees roughly the same UE counts.
	cfg := testConfig()
	cfg.ScrubInterval = 40000
	cfg.Horizon = 200000
	cfg.Workload.WritesPerLinePerSec = 0
	cfg.Policy = scrub.Threshold(4)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GapMovePeriod = 100
	lev, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same order of magnitude of scrub write-backs (gap copies reset some
	// drift, so leveling may slightly reduce them).
	if lev.ScrubWriteBacks > base.ScrubWriteBacks*2 ||
		base.ScrubWriteBacks > lev.ScrubWriteBacks*2+10 {
		t.Errorf("leveling distorted scrub behaviour: %d vs %d write-backs",
			lev.ScrubWriteBacks, base.ScrubWriteBacks)
	}
}
