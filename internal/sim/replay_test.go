package sim

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// TestReplayedTraceDrivesSimulator runs the simulator from a recorded
// event stream and checks that exactly the recorded writes are applied.
func TestReplayedTraceDrivesSimulator(t *testing.T) {
	cfg := testConfig()
	lines := cfg.Geometry.TotalLines()

	// Record a synthetic trace over the simulation horizon.
	gen, err := trace.NewGenerator(cfg.Workload, lines, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.Record(gen, stats.NewRNG(8), cfg.Horizon, 500)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, e := range events {
		if e.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("trace has no writes; increase rates")
	}

	replayer, err := trace.NewReplayer(events, lines)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = replayer
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandWrites != int64(writes) {
		t.Errorf("simulator applied %d demand writes, trace holds %d", res.DemandWrites, writes)
	}

	// Replays are deterministic even across runs (the source is fixed).
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DemandWrites != res.DemandWrites || res2.ScrubWrites() != res.ScrubWrites() {
		t.Error("replayed runs disagree")
	}
}

// TestReplayMatchesGeneratorStatistically compares a replayed trace run
// against a live-generator run of the same workload: scrub-side metrics
// must land in the same statistical regime.
func TestReplayMatchesGeneratorStatistically(t *testing.T) {
	cfg := testConfig()
	cfg.Workload.WritesPerLinePerSec = 1e-4
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := trace.NewGenerator(cfg.Workload, cfg.Geometry.TotalLines(), stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.Record(gen, stats.NewRNG(10), cfg.Horizon, 500)
	if err != nil {
		t.Fatal(err)
	}
	replayer, err := trace.NewReplayer(events, cfg.Geometry.TotalLines())
	if err != nil {
		t.Fatal(err)
	}
	replCfg := cfg
	replCfg.Source = replayer
	repl, err := Run(replCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Demand writes: Poisson(λ) in both cases, so within ~5σ of each other.
	mean := float64(live.DemandWrites+repl.DemandWrites) / 2
	diff := float64(live.DemandWrites - repl.DemandWrites)
	if diff < 0 {
		diff = -diff
	}
	if mean > 0 && diff > 5*3*mean/100+5*2*mean/10 { // generous band
		t.Errorf("demand writes diverge: live %d vs replay %d", live.DemandWrites, repl.DemandWrites)
	}
	// Scrub writes within 2x (drift dominates; demand details are noise).
	if live.ScrubWrites() > 2*repl.ScrubWrites()+20 || repl.ScrubWrites() > 2*live.ScrubWrites()+20 {
		t.Errorf("scrub writes diverge: live %d vs replay %d", live.ScrubWrites(), repl.ScrubWrites())
	}
}
