package sim

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/stats"
)

// TestCorrectedBitsMatchAnalyticExpectation pins the whole simulator
// against the closed-form drift model: with no demand traffic and an
// always-write patrol at a fixed interval T, every line is exactly T
// seconds old at each visit (after the first sweep), so the mean number
// of corrected bits per visit must equal the analytic expected line error
// count at age T.
func TestCorrectedBitsMatchAnalyticExpectation(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = scrub.AlwaysWrite()
	cfg.Scheme = ecc.MustBCHLine(8)
	cfg.TrackK = 16
	cfg.ScrubInterval = 10000
	cfg.Horizon = 110000 // 11 sweeps
	cfg.Workload.WritesPerLinePerSec = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := pcm.MustModel(cfg.PCM)
	want := model.ExpectedLineErrors(cfg.Mix, pcm.CellsPerLine, cfg.ScrubInterval)

	// Ignore the first sweep (line ages ramp 0..T there): steady state is
	// sweeps 2..N. CorrectedBits counts all sweeps, so subtract an
	// estimate is noisy — instead require the all-sweep mean to sit
	// between the first-sweep-diluted lower bound and a 15% band.
	lines := float64(cfg.Geometry.TotalLines())
	sweeps := float64(res.Sweeps)
	meanPerVisit := float64(res.CorrectedBits) / (lines * sweeps)
	lower := want * (sweeps - 1) / sweeps * 0.85
	upper := want * 1.15
	if meanPerVisit < lower || meanPerVisit > upper {
		t.Errorf("corrected bits per visit %.4f outside [%.4f, %.4f] (analytic %.4f)",
			meanPerVisit, lower, upper, want)
	}
	// An always-write patrol with BCH-8 at this interval must see
	// essentially no UEs.
	if res.UEs > 2 {
		t.Errorf("unexpected UEs under always-write BCH-8: %d", res.UEs)
	}
}

// TestUERateMatchesAnalyticTail cross-checks the simulator's UE rate for
// the basic SECDED policy against the analytic per-sweep prediction:
// a line is rewritten whenever it shows any error, so at each visit it is
// one interval old, and P(UE) ≈ Σ_k P(k errors)·P(uncorrectable | k).
func TestUERateMatchesAnalyticTail(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = ecc.NewSECDEDLine()
	cfg.Policy = scrub.Basic()
	cfg.ScrubInterval = 30000
	cfg.Horizon = 330000 // 11 sweeps
	cfg.Workload.WritesPerLinePerSec = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := pcm.MustModel(cfg.PCM)
	// Analytic P(UE per line-visit): sum over error counts of
	// P(exactly k) × P(placement defeats per-word SECDED | k), the latter
	// estimated by the scheme's own placement Monte Carlo.
	placeRNG := stats.NewRNG(999)
	pUE := 0.0
	prevTail := 1.0
	for k := 1; k <= 20; k++ {
		tail := model.LineErrorTailGE(cfg.Mix, pcm.CellsPerLine, k, cfg.ScrubInterval)
		pk := prevTail - tail
		prevTail = tail
		if k >= 2 && pk > 0 {
			pUncorr := ecc.UncorrectableProb(cfg.Scheme, placeRNG, k, 2000)
			pUE += pk * pUncorr
		}
	}
	pUE += prevTail // >20 errors: certainly uncorrectable

	lines := float64(cfg.Geometry.TotalLines())
	sweeps := float64(res.Sweeps)
	measured := float64(res.UEs) / (lines * sweeps)
	// Generous band: placement MC and the ramp-up sweep add noise, and
	// the binomial count is small. Require same order of magnitude and
	// a two-sided factor-2.5 agreement.
	if measured < pUE/2.5 || measured > pUE*2.5 {
		t.Errorf("UE rate per line-visit: measured %.2e vs analytic %.2e", measured, pUE)
	}
}
