package sim

import (
	"testing"

	"repro/internal/ecc"
)

// Metamorphic relations: transformations of the configuration with known
// consequences, checked end to end.

func TestVisitsScaleExactlyWithGeometry(t *testing.T) {
	small := testConfig()
	big := testConfig()
	big.Geometry.RowsPerBank *= 2 // double the lines
	rSmall, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if rBig.Lines != 2*rSmall.Lines {
		t.Fatalf("lines: %d vs %d", rBig.Lines, rSmall.Lines)
	}
	if rBig.ScrubVisits != 2*rSmall.ScrubVisits {
		t.Errorf("visits should double exactly: %d vs %d", rBig.ScrubVisits, rSmall.ScrubVisits)
	}
	if rBig.Sweeps != rSmall.Sweeps {
		t.Errorf("sweep count should be geometry-independent: %d vs %d", rBig.Sweeps, rSmall.Sweeps)
	}
}

func TestShorterIntervalReducesUEs(t *testing.T) {
	base := testConfig()
	base.Scheme = ecc.NewSECDEDLine()
	base.Horizon = 240000
	base.Workload.WritesPerLinePerSec = 0
	run := func(interval float64) int64 {
		cfg := base
		cfg.ScrubInterval = interval
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.UEs
	}
	long := run(40000)
	short := run(10000)
	if long == 0 {
		t.Fatal("long-interval run produced no UEs; relation untestable")
	}
	if short >= long {
		t.Errorf("quartering the interval should slash UEs: %d (10000s) vs %d (40000s)", short, long)
	}
}

func TestLongerHorizonScalesActivity(t *testing.T) {
	base := testConfig()
	short := base
	long := base
	long.Horizon = base.Horizon * 3
	rShort, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	rLong, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	if rLong.Sweeps != 3*rShort.Sweeps {
		t.Errorf("sweeps should triple: %d vs %d", rLong.Sweeps, rShort.Sweeps)
	}
	// Demand writes are Poisson with triple the exposure: within 5 sigma.
	want := 3 * float64(rShort.DemandWrites)
	got := float64(rLong.DemandWrites)
	if want > 20 {
		dev := got - want
		if dev < 0 {
			dev = -dev
		}
		if dev > 5*3*want/100+5*2*want/10 {
			t.Errorf("demand writes should ~triple: %v vs %v", got, want)
		}
	}
}

func TestStrongerECCNeverHurts(t *testing.T) {
	base := testConfig()
	base.ScrubInterval = 30000
	base.Horizon = 150000
	base.Workload.WritesPerLinePerSec = 0
	run := func(s ecc.Scheme) int64 {
		cfg := base
		cfg.Scheme = s
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.UEs
	}
	prev := int64(1 << 60)
	for _, s := range []ecc.Scheme{ecc.MustBCHLine(2), ecc.MustBCHLine(4), ecc.MustBCHLine(8)} {
		ues := run(s)
		if ues > prev {
			t.Errorf("%s has more UEs (%d) than the weaker code (%d)", s.Name(), ues, prev)
		}
		prev = ues
	}
}
