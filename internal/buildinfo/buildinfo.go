// Package buildinfo identifies the running binary: a version string
// (overridable at link time), the Go toolchain, and the VCS revision
// embedded by the Go build system. Both binaries expose it via
// -version and scrubd stamps it into /healthz, so an operator can tell
// exactly which build answered.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version names the release. Override at build time with
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3"
var Version = "dev"

// Info is the build identity in wire form.
type Info struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// Revision and Modified come from the VCS stamp when the binary was
	// built inside a checkout ("" / false otherwise).
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// Get assembles the binary's build identity.
func Get() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	}
	return info
}

// String renders a one-line stamp for -version output.
func (i Info) String() string {
	s := fmt.Sprintf("%s (%s", i.Version, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += ", rev " + rev
		if i.Modified {
			s += "+dirty"
		}
	}
	return s + ")"
}
