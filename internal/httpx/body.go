// Package httpx holds the small HTTP hygiene helpers every daemon
// surface in this repo shares: request-body capping and JSON decoding.
// A scrub daemon's ingest path faces untrusted writers; an unbounded
// body read is an invitation to exhaust the node's memory long before
// admission control gets a say.
package httpx

import (
	"encoding/json"
	"errors"
	"net/http"
)

// DefaultMaxBodyBytes caps a JSON request body at 1 MiB unless the
// surface overrides it — generous for any job spec, far too small to
// hurt the node.
const DefaultMaxBodyBytes int64 = 1 << 20

// DecodeJSON reads at most limit bytes (DefaultMaxBodyBytes when
// limit <= 0) of r's body and decodes them into v. strict rejects
// unknown fields. A body over the cap surfaces as *http.MaxBytesError;
// map it to 413 with TooLarge.
func DecodeJSON(w http.ResponseWriter, r *http.Request, limit int64, strict bool, v any) error {
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	if strict {
		dec.DisallowUnknownFields()
	}
	return dec.Decode(v)
}

// TooLarge reports whether err came from the MaxBytesReader cap.
func TooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
