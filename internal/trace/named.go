package trace

import "fmt"

// The named workload suite. Eight mixes spanning the write-intensity and
// locality space that SPEC/NPB-class programs occupy on PCM main-memory
// studies: from a streaming writer that keeps rewriting its working set
// (drift never matters, wear does) down to a cold archive whose lines sit
// undisturbed for the whole run (drift dominates, wear never matters).
// Scrub policy differences are largest on the cold end — exactly where the
// paper's adaptive mechanisms earn their keep.
var namedWorkloads = []Workload{
	{
		Name:                "stream-write",
		WritesPerLinePerSec: 0.01,
		ReadsPerLinePerSec:  0.05,
		FootprintFrac:       0.50,
		ZipfSkew:            0.2,
	},
	{
		Name:                "db-oltp",
		WritesPerLinePerSec: 0.003,
		ReadsPerLinePerSec:  0.03,
		FootprintFrac:       0.80,
		ZipfSkew:            0.9,
	},
	{
		Name:                "kv-store",
		WritesPerLinePerSec: 0.002,
		ReadsPerLinePerSec:  0.02,
		FootprintFrac:       1.00,
		ZipfSkew:            1.1,
	},
	{
		Name:                "web-serve",
		WritesPerLinePerSec: 0.0005,
		ReadsPerLinePerSec:  0.01,
		FootprintFrac:       0.60,
		ZipfSkew:            0.8,
	},
	{
		Name:                "analytics-scan",
		WritesPerLinePerSec: 0.0002,
		ReadsPerLinePerSec:  0.02,
		FootprintFrac:       1.00,
		ZipfSkew:            0.1,
	},
	{
		Name:                "hpc-stencil",
		WritesPerLinePerSec: 0.005,
		ReadsPerLinePerSec:  0.02,
		FootprintFrac:       0.70,
		ZipfSkew:            0.0,
		Phases: []Phase{
			{DurationSec: 3600, WriteMult: 1.5, ReadMult: 1.2},
			{DurationSec: 3600, WriteMult: 0.5, ReadMult: 0.8},
		},
	},
	{
		Name:                "graph-walk",
		WritesPerLinePerSec: 0.0001,
		ReadsPerLinePerSec:  0.01,
		FootprintFrac:       0.90,
		ZipfSkew:            0.6,
	},
	{
		Name:                "idle-archive",
		WritesPerLinePerSec: 0.00001,
		ReadsPerLinePerSec:  0.002,
		FootprintFrac:       1.00,
		ZipfSkew:            0.0,
	},
}

// Names returns the names of the built-in workload suite in display order.
func Names() []string {
	out := make([]string, len(namedWorkloads))
	for i, w := range namedWorkloads {
		out[i] = w.Name
	}
	return out
}

// ByName returns the named built-in workload.
func ByName(name string) (Workload, error) {
	for _, w := range namedWorkloads {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q (have %v)", name, Names())
}

// All returns a copy of the full built-in suite.
func All() []Workload {
	return append([]Workload(nil), namedWorkloads...)
}
