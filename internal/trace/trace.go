// Package trace generates the synthetic memory-access workloads that drive
// the scrub simulator. What matters to scrub behaviour is captured here:
// how often lines are rewritten (a write resets a line's drift clock), how
// concentrated the writes are (hot lines never drift; cold lines drift for
// the whole experiment), and how much read traffic competes with scrub for
// bandwidth. Intensities are calibrated to the write-rate ranges published
// for SPEC/NPB-class workloads on PCM main-memory studies.
package trace

import (
	"fmt"

	"repro/internal/stats"
)

// Phase scales a workload's intensity for a stretch of time, letting
// experiments model program phase changes (e.g. init → compute → output).
type Phase struct {
	// DurationSec is how long the phase lasts.
	DurationSec float64
	// WriteMult and ReadMult scale the base rates during the phase.
	WriteMult float64
	ReadMult  float64
}

// Workload describes one synthetic application mix.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// WritesPerLinePerSec is the average demand-write rate per *footprint*
	// line. A write rewrites the line and resets its drift clock.
	WritesPerLinePerSec float64
	// ReadsPerLinePerSec is the average demand-read rate per footprint line.
	ReadsPerLinePerSec float64
	// FootprintFrac is the fraction of memory the workload touches.
	FootprintFrac float64
	// ZipfSkew concentrates accesses on hot lines (0 = uniform).
	ZipfSkew float64
	// Phases optionally modulate intensity over time; the sequence repeats.
	// Empty means constant intensity.
	Phases []Phase
}

// Validate checks the workload description.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("trace: workload needs a name")
	}
	if w.WritesPerLinePerSec < 0 || w.ReadsPerLinePerSec < 0 {
		return fmt.Errorf("trace: %s: rates must be non-negative", w.Name)
	}
	if w.FootprintFrac <= 0 || w.FootprintFrac > 1 {
		return fmt.Errorf("trace: %s: footprint fraction must be in (0,1]", w.Name)
	}
	if w.ZipfSkew < 0 {
		return fmt.Errorf("trace: %s: Zipf skew must be non-negative", w.Name)
	}
	for i, ph := range w.Phases {
		if ph.DurationSec <= 0 {
			return fmt.Errorf("trace: %s: phase %d duration must be positive", w.Name, i)
		}
		if ph.WriteMult < 0 || ph.ReadMult < 0 {
			return fmt.Errorf("trace: %s: phase %d multipliers must be non-negative", w.Name, i)
		}
	}
	return nil
}

// Generator produces the per-epoch event stream for one workload over a
// memory region. Not safe for concurrent use.
type Generator struct {
	w          Workload
	totalLines int
	footprint  int
	perm       []int32 // footprint rank -> line index
	zipf       *stats.Zipf
	cycleLen   float64 // total duration of the phase sequence
}

// NewGenerator builds a generator over totalLines lines, using r to lay
// out the footprint (hot-line placement is part of the experiment seed).
func NewGenerator(w Workload, totalLines int, r *stats.RNG) (*Generator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if totalLines < 1 {
		return nil, fmt.Errorf("trace: totalLines must be >= 1")
	}
	footprint := int(w.FootprintFrac * float64(totalLines))
	if footprint < 1 {
		footprint = 1
	}
	g := &Generator{
		w:          w,
		totalLines: totalLines,
		footprint:  footprint,
		zipf:       stats.NewZipf(footprint, w.ZipfSkew),
	}
	// Scatter the footprint across physical lines: hot Zipf ranks land on
	// arbitrary rows/banks, as virtual-to-physical mapping would do.
	g.perm = make([]int32, totalLines)
	for i := range g.perm {
		g.perm[i] = int32(i)
	}
	r.Shuffle(totalLines, func(i, j int) { g.perm[i], g.perm[j] = g.perm[j], g.perm[i] })
	g.perm = g.perm[:footprint]
	for _, ph := range w.Phases {
		g.cycleLen += ph.DurationSec
	}
	return g, nil
}

// Workload returns the generator's workload description.
func (g *Generator) Workload() Workload { return g.w }

// FootprintLines returns the number of distinct lines the workload touches.
func (g *Generator) FootprintLines() int { return g.footprint }

// multipliers returns the active phase multipliers at absolute time t.
func (g *Generator) multipliers(t float64) (wm, rm float64) {
	if len(g.w.Phases) == 0 {
		return 1, 1
	}
	pos := t
	if g.cycleLen > 0 {
		for pos >= g.cycleLen {
			pos -= g.cycleLen
		}
	}
	for _, ph := range g.w.Phases {
		if pos < ph.DurationSec {
			return ph.WriteMult, ph.ReadMult
		}
		pos -= ph.DurationSec
	}
	last := g.w.Phases[len(g.w.Phases)-1]
	return last.WriteMult, last.ReadMult
}

// WriteRateAt returns the region-wide demand-write rate (lines/sec) at
// absolute time t.
func (g *Generator) WriteRateAt(t float64) float64 {
	wm, _ := g.multipliers(t)
	return g.w.WritesPerLinePerSec * float64(g.footprint) * wm
}

// ReadRateAt returns the region-wide demand-read rate (lines/sec) at
// absolute time t.
func (g *Generator) ReadRateAt(t float64) float64 {
	_, rm := g.multipliers(t)
	return g.w.ReadsPerLinePerSec * float64(g.footprint) * rm
}

// WritesInEpoch samples the demand writes in [t, t+dt): a Poisson event
// count with Zipf-selected targets. The returned slice (reused from buf if
// it has capacity) holds line indices, possibly with repeats — repeated
// writes to a hot line within an epoch are real and each resets drift.
func (g *Generator) WritesInEpoch(r *stats.RNG, t, dt float64, buf []int) []int {
	return g.sampleEvents(r, g.WriteRateAt(t)*dt, buf)
}

// ReadsInEpoch samples the demand reads in [t, t+dt).
func (g *Generator) ReadsInEpoch(r *stats.RNG, t, dt float64, buf []int) []int {
	return g.sampleEvents(r, g.ReadRateAt(t)*dt, buf)
}

func (g *Generator) sampleEvents(r *stats.RNG, mean float64, buf []int) []int {
	buf = buf[:0]
	if mean <= 0 {
		return buf
	}
	n := r.Poisson(mean)
	for i := int64(0); i < n; i++ {
		rank := g.zipf.Sample(r)
		buf = append(buf, int(g.perm[rank]))
	}
	return buf
}
