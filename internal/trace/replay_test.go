package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestEventsRoundTripThroughText(t *testing.T) {
	events := []Event{
		{AtSec: 0.5, Line: 3, Write: true},
		{AtSec: 1.25, Line: 0, Write: false},
		{AtSec: 100000, Line: 4095, Write: true},
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("got %d events, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	cases := []string{
		"not a trace",
		"1.0 5 X",
		"-1 5 W",
		"1.0 -5 R",
	}
	for _, c := range cases {
		if _, err := ReadEvents(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
	// Blank lines are tolerated.
	ev, err := ReadEvents(strings.NewReader("\n1 2 W\n\n"))
	if err != nil || len(ev) != 1 {
		t.Errorf("blank-line handling wrong: %v, %d events", err, len(ev))
	}
}

func TestRecordProducesSortedInRangeEvents(t *testing.T) {
	r := stats.NewRNG(1)
	w := Workload{Name: "x", WritesPerLinePerSec: 0.01, ReadsPerLinePerSec: 0.02, FootprintFrac: 0.5}
	g, err := NewGenerator(w, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Record(g, r, 1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	prev := -1.0
	writes := 0
	for _, e := range events {
		if e.AtSec < prev {
			t.Fatal("events not sorted")
		}
		prev = e.AtSec
		if e.AtSec < 0 || e.AtSec >= 1000 {
			t.Fatalf("event time %g outside horizon", e.AtSec)
		}
		if e.Line < 0 || e.Line >= 500 {
			t.Fatalf("event line %d out of range", e.Line)
		}
		if e.Write {
			writes++
		}
	}
	// Rates 1:2 writes:reads over footprint 250 lines and 1000 s → about
	// 2500 writes and 5000 reads.
	if writes < 2000 || writes > 3000 {
		t.Errorf("write count %d far from expectation 2500", writes)
	}
	if _, err := Record(g, r, 0, 50); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestReplayerWindows(t *testing.T) {
	events := []Event{
		{AtSec: 1, Line: 10, Write: true},
		{AtSec: 2, Line: 11, Write: false},
		{AtSec: 2.5, Line: 12, Write: true},
		{AtSec: 7, Line: 13, Write: true},
	}
	rp, err := NewReplayer(events, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Events() != 4 {
		t.Errorf("Events() = %d", rp.Events())
	}
	w := rp.WritesInEpoch(nil, 0, 5, nil)
	if len(w) != 2 || w[0] != 10 || w[1] != 12 {
		t.Errorf("writes in [0,5) = %v", w)
	}
	r := rp.ReadsInEpoch(nil, 0, 5, nil)
	if len(r) != 1 || r[0] != 11 {
		t.Errorf("reads in [0,5) = %v", r)
	}
	if w := rp.WritesInEpoch(nil, 5, 5, nil); len(w) != 1 || w[0] != 13 {
		t.Errorf("writes in [5,10) = %v", w)
	}
	if w := rp.WritesInEpoch(nil, 100, 5, nil); len(w) != 0 {
		t.Errorf("writes beyond trace = %v", w)
	}
	// Window boundaries are half-open: event at t=1 belongs to [1,2).
	if w := rp.WritesInEpoch(nil, 1, 1, nil); len(w) != 1 {
		t.Errorf("boundary event missed: %v", w)
	}
}

func TestNewReplayerValidation(t *testing.T) {
	if _, err := NewReplayer(nil, 0); err == nil {
		t.Error("zero lines accepted")
	}
	unsorted := []Event{{AtSec: 5, Line: 1}, {AtSec: 1, Line: 2}}
	if _, err := NewReplayer(unsorted, 10); err == nil {
		t.Error("unsorted events accepted")
	}
	outOfRange := []Event{{AtSec: 1, Line: 50}}
	if _, err := NewReplayer(outOfRange, 10); err == nil {
		t.Error("out-of-range line accepted")
	}
}

func TestRecordReplayPreservesEventStream(t *testing.T) {
	// Round trip: record a generator, replay it, and verify the replayed
	// epoch windows reproduce exactly the recorded events.
	r := stats.NewRNG(2)
	w := Workload{Name: "x", WritesPerLinePerSec: 0.02, FootprintFrac: 1.0, ZipfSkew: 0.7}
	g, err := NewGenerator(w, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	events, err := Record(g, r, 500, 25)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(events, 200)
	if err != nil {
		t.Fatal(err)
	}
	var replayed int
	var buf []int
	for tt := 0.0; tt < 500; tt += 10 {
		buf = rp.WritesInEpoch(nil, tt, 10, buf)
		replayed += len(buf)
	}
	wantWrites := 0
	for _, e := range events {
		if e.Write {
			wantWrites++
		}
	}
	if replayed != wantWrites {
		t.Errorf("replayed %d writes, recorded %d", replayed, wantWrites)
	}
}
