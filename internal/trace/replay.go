package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Event is one timestamped memory access in a recorded trace.
type Event struct {
	// AtSec is the absolute event time in seconds.
	AtSec float64
	// Line is the target line index.
	Line int
	// Write distinguishes writes (drift-resetting) from reads.
	Write bool
}

// WriteEvents serialises events to a simple line-oriented text format:
//
//	<time-sec> <line> R|W
//
// one event per line, suitable for versioning and hand-editing.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		kind := 'R'
		if e.Write {
			kind = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%g %d %c\n", e.AtSec, e.Line, kind); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses the format written by WriteEvents. Events are
// validated (non-negative time and line, kind R or W) but not reordered.
func ReadEvents(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Text()
		if text == "" {
			continue
		}
		var at float64
		var line int
		var kind string
		if _, err := fmt.Sscanf(text, "%g %d %s", &at, &line, &kind); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		if at < 0 || line < 0 {
			return nil, fmt.Errorf("trace: line %d: negative time or line", lineNo)
		}
		var write bool
		switch kind {
		case "W":
			write = true
		case "R":
			write = false
		default:
			return nil, fmt.Errorf("trace: line %d: kind %q (want R or W)", lineNo, kind)
		}
		events = append(events, Event{AtSec: at, Line: line, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Record samples a generator's event stream over [0, horizon) at the
// given epoch resolution, producing a replayable trace. This is how the
// repository's synthetic workloads can be exported, inspected, and
// re-imported — or swapped for traces captured elsewhere.
func Record(g *Generator, r *stats.RNG, horizon, epoch float64) ([]Event, error) {
	if horizon <= 0 || epoch <= 0 {
		return nil, fmt.Errorf("trace: horizon and epoch must be positive")
	}
	var events []Event
	var wbuf, rbuf []int
	for t := 0.0; t < horizon; t += epoch {
		dt := epoch
		if t+dt > horizon {
			dt = horizon - t
		}
		wbuf = g.WritesInEpoch(r, t, dt, wbuf)
		for _, line := range wbuf {
			events = append(events, Event{AtSec: t + r.Float64()*dt, Line: line, Write: true})
		}
		rbuf = g.ReadsInEpoch(r, t, dt, rbuf)
		for _, line := range rbuf {
			events = append(events, Event{AtSec: t + r.Float64()*dt, Line: line, Write: false})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].AtSec < events[j].AtSec })
	return events, nil
}

// Replayer feeds a recorded event stream through the Generator-shaped
// epoch interface, so the simulator can run captured traces unchanged.
// Events must be sorted by time; NewReplayer verifies this. The replayer
// is stateless across calls — each WritesInEpoch query binary-searches
// the window — so epochs may be revisited.
type Replayer struct {
	events     []Event
	writeTimes []float64 // times of write events, ascending
	writeLines []int
	readTimes  []float64
	readLines  []int
	totalLines int
}

// NewReplayer wraps sorted events targeting lines in [0, totalLines).
func NewReplayer(events []Event, totalLines int) (*Replayer, error) {
	if totalLines < 1 {
		return nil, fmt.Errorf("trace: totalLines must be >= 1")
	}
	rp := &Replayer{events: events, totalLines: totalLines}
	prev := -1.0
	for i, e := range events {
		if e.AtSec < prev {
			return nil, fmt.Errorf("trace: events not sorted at index %d", i)
		}
		prev = e.AtSec
		if e.Line < 0 || e.Line >= totalLines {
			return nil, fmt.Errorf("trace: event %d targets line %d outside [0,%d)", i, e.Line, totalLines)
		}
		if e.Write {
			rp.writeTimes = append(rp.writeTimes, e.AtSec)
			rp.writeLines = append(rp.writeLines, e.Line)
		} else {
			rp.readTimes = append(rp.readTimes, e.AtSec)
			rp.readLines = append(rp.readLines, e.Line)
		}
	}
	return rp, nil
}

// Events returns the number of replayable events.
func (rp *Replayer) Events() int { return len(rp.events) }

// WritesInEpoch returns the write targets in [t, t+dt), reusing buf.
func (rp *Replayer) WritesInEpoch(_ *stats.RNG, t, dt float64, buf []int) []int {
	return window(rp.writeTimes, rp.writeLines, t, dt, buf)
}

// ReadsInEpoch returns the read targets in [t, t+dt), reusing buf.
func (rp *Replayer) ReadsInEpoch(_ *stats.RNG, t, dt float64, buf []int) []int {
	return window(rp.readTimes, rp.readLines, t, dt, buf)
}

// window extracts the lines whose times fall in [t, t+dt).
func window(times []float64, lines []int, t, dt float64, buf []int) []int {
	buf = buf[:0]
	lo := sort.SearchFloat64s(times, t)
	for i := lo; i < len(times) && times[i] < t+dt; i++ {
		buf = append(buf, lines[i])
	}
	return buf
}
