package trace

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestAllNamedWorkloadsValid(t *testing.T) {
	ws := All()
	if len(ws) != 8 {
		t.Fatalf("expected 8 built-in workloads, got %d", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s invalid: %v", w.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != name {
			t.Errorf("ByName(%q) returned %q", name, w.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestValidateRejectsBadWorkloads(t *testing.T) {
	base := Workload{Name: "x", WritesPerLinePerSec: 0.1, ReadsPerLinePerSec: 0.1, FootprintFrac: 0.5}
	cases := []func(*Workload){
		func(w *Workload) { w.Name = "" },
		func(w *Workload) { w.WritesPerLinePerSec = -1 },
		func(w *Workload) { w.FootprintFrac = 0 },
		func(w *Workload) { w.FootprintFrac = 1.5 },
		func(w *Workload) { w.ZipfSkew = -0.5 },
		func(w *Workload) { w.Phases = []Phase{{DurationSec: 0, WriteMult: 1, ReadMult: 1}} },
		func(w *Workload) { w.Phases = []Phase{{DurationSec: 10, WriteMult: -1, ReadMult: 1}} },
	}
	for i, mut := range cases {
		w := base
		mut(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid workload accepted", i)
		}
	}
}

func TestGeneratorFootprint(t *testing.T) {
	r := stats.NewRNG(1)
	w := Workload{Name: "x", WritesPerLinePerSec: 1, FootprintFrac: 0.25}
	g, err := NewGenerator(w, 1000, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.FootprintLines() != 250 {
		t.Errorf("footprint = %d, want 250", g.FootprintLines())
	}
	// All generated targets stay inside the footprint set.
	inFootprint := map[int]bool{}
	for _, l := range g.perm {
		inFootprint[int(l)] = true
	}
	events := g.WritesInEpoch(r, 0, 1.0, nil)
	if len(events) == 0 {
		t.Fatal("expected events at rate 250/s over 1 s")
	}
	for _, l := range events {
		if l < 0 || l >= 1000 {
			t.Fatalf("line %d out of range", l)
		}
		if !inFootprint[l] {
			t.Fatalf("line %d outside footprint", l)
		}
	}
}

func TestGeneratorTinyFootprintClamped(t *testing.T) {
	r := stats.NewRNG(2)
	w := Workload{Name: "x", WritesPerLinePerSec: 1, FootprintFrac: 0.0001}
	g, err := NewGenerator(w, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.FootprintLines() != 1 {
		t.Errorf("footprint = %d, want clamp to 1", g.FootprintLines())
	}
}

func TestEventRateMatchesPoissonMean(t *testing.T) {
	r := stats.NewRNG(3)
	w := Workload{Name: "x", WritesPerLinePerSec: 0.01, ReadsPerLinePerSec: 0.02, FootprintFrac: 1.0}
	const totalLines = 1000
	g, err := NewGenerator(w, totalLines, r)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 10.0
	const epochs = 2000
	var writes, reads int
	var wbuf, rbuf []int
	for e := 0; e < epochs; e++ {
		wbuf = g.WritesInEpoch(r, float64(e)*dt, dt, wbuf)
		rbuf = g.ReadsInEpoch(r, float64(e)*dt, dt, rbuf)
		writes += len(wbuf)
		reads += len(rbuf)
	}
	wantW := 0.01 * totalLines * dt * epochs
	wantR := 0.02 * totalLines * dt * epochs
	if math.Abs(float64(writes)-wantW) > 5*math.Sqrt(wantW) {
		t.Errorf("writes %d, want ~%.0f", writes, wantW)
	}
	if math.Abs(float64(reads)-wantR) > 5*math.Sqrt(wantR) {
		t.Errorf("reads %d, want ~%.0f", reads, wantR)
	}
}

func TestZipfSkewConcentratesWrites(t *testing.T) {
	r := stats.NewRNG(4)
	hot := Workload{Name: "hot", WritesPerLinePerSec: 0.1, FootprintFrac: 1.0, ZipfSkew: 1.2}
	cold := Workload{Name: "cold", WritesPerLinePerSec: 0.1, FootprintFrac: 1.0, ZipfSkew: 0.0}
	const totalLines = 500
	count := func(w Workload) float64 {
		g, err := NewGenerator(w, totalLines, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		var buf []int
		for e := 0; e < 200; e++ {
			buf = g.WritesInEpoch(r, 0, 10, buf)
			for _, l := range buf {
				counts[l]++
			}
		}
		// Fraction of writes landing on the top-10 busiest lines.
		total, top := 0, make([]int, 0, len(counts))
		for _, c := range counts {
			total += c
			top = append(top, c)
		}
		best := 0
		for i := 0; i < 10; i++ {
			bi, bv := -1, -1
			for j, v := range top {
				if v > bv {
					bi, bv = j, v
				}
			}
			best += bv
			top[bi] = -1
		}
		return float64(best) / float64(total)
	}
	if hotFrac, coldFrac := count(hot), count(cold); hotFrac < 2*coldFrac {
		t.Errorf("Zipf skew should concentrate writes: hot top-10 frac %.3f vs cold %.3f", hotFrac, coldFrac)
	}
}

func TestPhasesModulateRates(t *testing.T) {
	r := stats.NewRNG(6)
	w := Workload{
		Name: "phased", WritesPerLinePerSec: 0.01, ReadsPerLinePerSec: 0.01,
		FootprintFrac: 1.0,
		Phases: []Phase{
			{DurationSec: 100, WriteMult: 2, ReadMult: 0.5},
			{DurationSec: 100, WriteMult: 0, ReadMult: 1},
		},
	}
	g, err := NewGenerator(w, 1000, r)
	if err != nil {
		t.Fatal(err)
	}
	base := 0.01 * 1000
	if got := g.WriteRateAt(50); math.Abs(got-2*base) > 1e-9 {
		t.Errorf("phase 1 write rate %g, want %g", got, 2*base)
	}
	if got := g.WriteRateAt(150); got != 0 {
		t.Errorf("phase 2 write rate %g, want 0", got)
	}
	if got := g.ReadRateAt(150); math.Abs(got-base) > 1e-9 {
		t.Errorf("phase 2 read rate %g, want %g", got, base)
	}
	// The cycle repeats.
	if got := g.WriteRateAt(250); math.Abs(got-2*base) > 1e-9 {
		t.Errorf("wrapped phase write rate %g, want %g", got, 2*base)
	}
}

func TestConstantWorkloadMultipliersAreUnity(t *testing.T) {
	r := stats.NewRNG(7)
	w := Workload{Name: "x", WritesPerLinePerSec: 0.5, FootprintFrac: 1.0}
	g, err := NewGenerator(w, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.WriteRateAt(0) != g.WriteRateAt(1e6) {
		t.Error("constant workload should have time-invariant rates")
	}
}

func TestNewGeneratorRejectsBadInput(t *testing.T) {
	r := stats.NewRNG(8)
	w := Workload{Name: "x", WritesPerLinePerSec: 1, FootprintFrac: 1}
	if _, err := NewGenerator(w, 0, r); err == nil {
		t.Error("zero lines accepted")
	}
	bad := Workload{}
	if _, err := NewGenerator(bad, 100, r); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestWorkloadSuiteSpansIntensitySpace(t *testing.T) {
	// The suite must contain at least one write-heavy (≥0.01/line/s,
	// i.e. mean rewrite well inside the basic scrub interval) and one
	// near-idle (≤1e-4/line/s) workload so the policy comparisons see
	// both wear-bound and drift-bound regimes.
	var hasHot, hasCold bool
	for _, w := range All() {
		if w.WritesPerLinePerSec >= 0.01 {
			hasHot = true
		}
		if w.WritesPerLinePerSec <= 1e-4 {
			hasCold = true
		}
	}
	if !hasHot || !hasCold {
		t.Error("workload suite should span write-heavy to near-idle")
	}
}
