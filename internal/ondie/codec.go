package ondie

import (
	"fmt"

	"repro/internal/bch"
	"repro/internal/ecc"
)

// WordBits is the on-die codeword payload: on-die ECC protects one
// 64-bit word per codec invocation, eight of which tile a memory line.
const WordBits = 64

// WordBytes is WordBits in bytes.
const WordBytes = WordBits / 8

// Codec is the per-word on-die code: SECDED for t=1, a shortened binary
// BCH code for t>=2. It exists both to size the check-bit budget the
// Layer reports and as the concrete encoder/decoder the fuzz harness
// exercises, so the simulated strengths correspond to codes that really
// close over a 64-bit payload. Immutable after construction and safe
// for concurrent use.
type Codec struct {
	t   int
	sec *ecc.SECDED
	bc  *bch.Code
}

// NewCodec builds the on-die word codec for correction strength t >= 1.
func NewCodec(t int) (*Codec, error) {
	switch {
	case t < 1:
		return nil, fmt.Errorf("ondie: codec strength must be >= 1, got %d", t)
	case t == 1:
		return &Codec{t: 1, sec: ecc.MustSECDED(WordBits)}, nil
	default:
		c, err := bch.ForPayload(WordBits, t)
		if err != nil {
			return nil, fmt.Errorf("ondie: no word code at t=%d: %w", t, err)
		}
		return &Codec{t: t, bc: c}, nil
	}
}

// MustCodec is NewCodec that panics on error; for tests and examples.
func MustCodec(t int) *Codec {
	c, err := NewCodec(t)
	if err != nil {
		panic(err)
	}
	return c
}

// T returns the codec's designed correction strength in bits.
func (c *Codec) T() int { return c.t }

// CheckBits returns the per-word check-bit overhead.
func (c *Codec) CheckBits() int {
	if c.sec != nil {
		return c.sec.CheckBits()
	}
	return c.bc.ParityBits()
}

// CodewordBytes returns the encoded word size in bytes.
func (c *Codec) CodewordBytes() int {
	if c.sec != nil {
		return c.sec.CodewordBytes()
	}
	return c.bc.CodewordBytes(WordBits)
}

// Encode encodes the first WordBytes bytes of word into a fresh codeword.
func (c *Codec) Encode(word []byte) ([]byte, error) {
	if c.sec != nil {
		return c.sec.Encode(word)
	}
	return c.bc.Encode(word, WordBits)
}

// Decode corrects up to T bit errors in cw in place and returns the
// number of corrected bits, or an uncorrectable-pattern error.
func (c *Codec) Decode(cw []byte) (int, error) {
	if c.sec != nil {
		return c.sec.Decode(cw)
	}
	return c.bc.Decode(cw, WordBits)
}

// Detect reports whether cw carries a detectable error (syndrome check
// only, no correction).
func (c *Codec) Detect(cw []byte) bool {
	if c.sec != nil {
		return c.sec.Detect(cw)
	}
	return c.bc.Detect(cw, WordBits)
}

// Extract copies the payload word out of a codeword into a fresh buffer.
func (c *Codec) Extract(cw []byte) []byte {
	if c.sec != nil {
		return c.sec.Extract(cw)
	}
	return c.bc.ExtractMessage(cw, WordBits)
}

// CodecRef is the scalar reference view of a Codec, delegating to the
// underlying code's *Ref implementation (SECDEDRef or bch.CodeRef). It
// is the baseline for the on-die kernel benchmarks and must stay
// byte-identical to the fast path.
type CodecRef struct {
	sec *ecc.SECDEDRef
	bc  *bch.CodeRef
}

// Ref returns the scalar reference view of the codec.
func (c *Codec) Ref() *CodecRef {
	if c.sec != nil {
		return &CodecRef{sec: c.sec.Ref()}
	}
	return &CodecRef{bc: c.bc.Ref()}
}

// Encode encodes the first WordBytes bytes of word on the scalar path.
func (r *CodecRef) Encode(word []byte) ([]byte, error) {
	if r.sec != nil {
		return r.sec.Encode(word)
	}
	return r.bc.Encode(word, WordBits)
}

// Decode corrects cw in place on the scalar path.
func (r *CodecRef) Decode(cw []byte) (int, error) {
	if r.sec != nil {
		return r.sec.Decode(cw)
	}
	return r.bc.Decode(cw, WordBits)
}

// Detect reports a detectable error via the scalar syndrome path.
func (r *CodecRef) Detect(cw []byte) bool {
	if r.sec != nil {
		return r.sec.Detect(cw)
	}
	return r.bc.Detect(cw, WordBits)
}
