package ondie

import (
	"fmt"
	"testing"
)

// BenchmarkOnDieDecode measures the per-word on-die decode at full
// correction load, kernel vs scalar reference, for the SECDED strength
// (t=1) and a representative BCH strength (t=4). `make bench` records
// the pair in BENCH_engine.json alongside the line-codec benchmarks.
func BenchmarkOnDieDecode(b *testing.B) {
	for _, t := range []int{1, 4} {
		codec := MustCodec(t)
		ref := codec.Ref()
		word := make([]byte, WordBytes)
		for i := range word {
			word[i] = byte(3*i + 7)
		}
		enc, err := codec.Encode(word)
		if err != nil {
			b.Fatal(err)
		}
		// Spread t flips across the codeword support (payload + check
		// bits) — the heaviest pattern the codec must still correct.
		bits := WordBits + codec.CheckBits()
		stride := bits / t
		dirty := append([]byte(nil), enc...)
		for j := 0; j < t; j++ {
			p := j*stride + stride/2
			dirty[p>>3] ^= 1 << (p & 7)
		}
		buf := make([]byte, len(dirty))

		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			b.SetBytes(WordBytes)
			for i := 0; i < b.N; i++ {
				copy(buf, dirty)
				if _, err := codec.Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("t=%d/ref", t), func(b *testing.B) {
			b.SetBytes(WordBytes)
			for i := 0; i < b.N; i++ {
				copy(buf, dirty)
				if _, err := ref.Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
