package ondie

import (
	"bytes"
	"testing"
)

// fuzzRNG is a tiny splitmix64 so flip positions derive deterministically
// from the fuzz input, mirroring the BCH/ECC fuzz harnesses.
type fuzzRNG uint64

func (r *fuzzRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func fuzzFlip(buf []byte, bit int) { buf[bit>>3] ^= 1 << uint(bit&7) }

func fuzzDistinct(r *fuzzRNG, n, total int) []int {
	seen := make(map[int]bool, n)
	pos := make([]int, 0, n)
	for len(pos) < n {
		p := int(r.next() % uint64(total))
		if !seen[p] {
			seen[p] = true
			pos = append(pos, p)
		}
	}
	return pos
}

// fillWord expands arbitrary fuzz bytes into a full 8-byte on-die word.
func fillWord(data []byte) []byte {
	word := make([]byte, WordBytes)
	copy(word, data)
	if len(data) > 0 {
		for i := len(data); i < WordBytes; i++ {
			word[i] = data[i%len(data)] ^ byte(i)
		}
	}
	return word
}

// FuzzOnDieWordRoundTrip exercises every on-die word strength the layer
// can assign (t = 1..MaxT): encode a 64-bit word, inject up to t+1 bit
// errors, and decode. Patterns of ≤ t bits must restore the exact
// original word with an accurate corrected count; t+1-bit patterns must
// never be passed off as a clean correction of the original — that
// silent-miscorrection case is exactly what the Layer's visibility
// penalty models.
func FuzzOnDieWordRoundTrip(f *testing.F) {
	codecs := make([]*Codec, MaxT+1)
	for tt := 1; tt <= MaxT; tt++ {
		codecs[tt] = MustCodec(tt)
	}

	f.Add([]byte{}, byte(1), byte(0), uint64(3))
	f.Add([]byte{0x01}, byte(1), byte(2), uint64(9))          // SECDED double error
	f.Add([]byte("ondie"), byte(4), byte(4), uint64(1234))    // BCH at capability
	f.Add([]byte{0xee, 0x11}, byte(4), byte(5), uint64(99))   // BCH t+1
	f.Add([]byte{0x42}, byte(9), byte(10), uint64(0xbeef))    // strongest code, t+1
	f.Add([]byte{0xff}, byte(2), byte(0), uint64(0xcafef00d)) // clean word
	f.Fuzz(func(t *testing.T, data []byte, rawT, nraw byte, posSeed uint64) {
		strength := 1 + int(rawT)%MaxT // 1 .. MaxT
		codec := codecs[strength]
		word := fillWord(data)
		cw, err := codec.Encode(word)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		orig := append([]byte(nil), cw...)
		if codec.Detect(cw) {
			t.Fatal("fresh word codeword reported dirty")
		}

		// Keep flips inside the exact codeword span: pad bits in the
		// final byte are not code-visible errors.
		usedBits := WordBits + codec.CheckBits()
		nflips := int(nraw) % (codec.T() + 2) // 0 .. t+1
		rng := fuzzRNG(posSeed)
		for _, p := range fuzzDistinct(&rng, nflips, usedBits) {
			fuzzFlip(cw, p)
		}

		if nflips >= 1 && nflips <= codec.T()+1 && !codec.Detect(cw) {
			t.Fatalf("t=%d: %d flips escaped Detect", codec.T(), nflips)
		}

		corrected, err := codec.Decode(cw)
		if nflips <= codec.T() {
			if err != nil {
				t.Fatalf("t=%d: %d ≤ t flips uncorrectable: %v", codec.T(), nflips, err)
			}
			if corrected != nflips {
				t.Fatalf("t=%d: corrected %d bits, injected %d", codec.T(), corrected, nflips)
			}
			if !bytes.Equal(cw, orig) {
				t.Fatal("decode did not restore the original codeword")
			}
			if !bytes.Equal(codec.Extract(cw), word) {
				t.Fatal("decoded payload differs from original word")
			}
			return
		}
		// t+1 flips: either refused, or a bounded miscorrection — but
		// never reported as a clean restoration of the original word.
		if err == nil {
			if corrected > codec.T() {
				t.Fatalf("claimed to correct %d > t bits", corrected)
			}
			if bytes.Equal(cw, orig) {
				t.Fatalf("t=%d: t+1 flips reported as clean correction of the original", codec.T())
			}
		}
	})
}
