package ondie

import "testing"

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Config{}, true},
		{"secded", &Config{T: 1}, true},
		{"bch", &Config{T: 4, WeakT: 1, WeakFraction: 0.5}, true},
		{"maxT", &Config{T: MaxT}, true},
		{"negative", &Config{T: -1}, false},
		{"tooStrong", &Config{T: MaxT + 1}, false},
		{"weakWithoutT", &Config{WeakT: 1}, false},
		{"fracWithoutT", &Config{WeakFraction: 0.5}, false},
		{"weakAboveT", &Config{T: 2, WeakT: 3}, false},
		{"fracRange", &Config{T: 2, WeakFraction: 1.5}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if (&Config{T: 1}).Enabled() != true || (&Config{}).Enabled() != false || (*Config)(nil).Enabled() != false {
		t.Fatal("Enabled() wrong for basic configs")
	}
}

func TestLayerDisabledIsNil(t *testing.T) {
	for _, cfg := range []*Config{nil, {}} {
		l, err := NewLayer(cfg, 128)
		if err != nil || l != nil {
			t.Fatalf("NewLayer(%+v) = %v, %v; want nil, nil", cfg, l, err)
		}
	}
}

func TestVisibilityTransform(t *testing.T) {
	l, err := NewLayer(&Config{T: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// raw <= t hides everything; raw > t surfaces raw plus the
	// worst-case miscorrection penalty of t.
	cases := []struct{ raw, want int }{{0, 0}, {1, 0}, {2, 0}, {3, 5}, {4, 6}}
	for _, tc := range cases {
		if got := l.Visible(0, tc.raw); got != tc.want {
			t.Errorf("Visible(raw=%d) = %d, want %d", tc.raw, got, tc.want)
		}
		if got := l.Observe(1, tc.raw); got != tc.want {
			t.Errorf("Observe(raw=%d) = %d, want %d", tc.raw, got, tc.want)
		}
	}
	if l.CorrectedBits() != 3 { // 0+1+2 hidden
		t.Errorf("CorrectedBits = %d, want 3", l.CorrectedBits())
	}
	if l.Overflows() != 2 { // raw=3, raw=4
		t.Errorf("Overflows = %d, want 2", l.Overflows())
	}
}

func TestAssignColdestFirst(t *testing.T) {
	l, err := NewLayer(&Config{T: 4, WeakT: 1, WeakFraction: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Lines 1 and 3 are coldest: they get WeakT.
	l.Assign([]uint32{9, 2, 8, 1})
	want := []int{4, 1, 4, 1}
	for i, w := range want {
		if got := l.Strength(i); got != w {
			t.Errorf("Strength(%d) = %d, want %d", i, got, w)
		}
	}
	if l.WeakLines() != 2 {
		t.Errorf("WeakLines = %d, want 2", l.WeakLines())
	}
	// BCH-4 over 64 bits costs 28 parity bits/word; SECDED costs 8.
	// 2 lines × 8 words × (28-8) = 320 bits reclaimed.
	if got := l.CheckBitsSaved(); got != 320 {
		t.Errorf("CheckBitsSaved = %d, want 320", got)
	}

	// Ties resolve to the lower index: all-equal counts weaken the
	// lowest-numbered lines deterministically.
	l2, _ := NewLayer(&Config{T: 4, WeakT: 1, WeakFraction: 0.5}, 4)
	l2.Assign([]uint32{5, 5, 5, 5})
	for i, w := range []int{1, 1, 4, 4} {
		if got := l2.Strength(i); got != w {
			t.Errorf("tie Strength(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestCodecShapes(t *testing.T) {
	if _, err := NewCodec(0); err == nil {
		t.Fatal("NewCodec(0) should fail")
	}
	for tt := 1; tt <= MaxT; tt++ {
		c, err := NewCodec(tt)
		if err != nil {
			t.Fatalf("NewCodec(%d): %v", tt, err)
		}
		if c.T() != tt {
			t.Fatalf("T() = %d, want %d", c.T(), tt)
		}
		if c.CheckBits() <= 0 || c.CodewordBytes() <= WordBytes {
			t.Fatalf("t=%d: degenerate shape CheckBits=%d CodewordBytes=%d",
				tt, c.CheckBits(), c.CodewordBytes())
		}
	}
	// The t=1 word code is the classical (72,64) SECDED.
	if c := MustCodec(1); c.CheckBits() != 8 {
		t.Fatalf("SECDED word CheckBits = %d, want 8", c.CheckBits())
	}
}
