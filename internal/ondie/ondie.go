// Package ondie models on-die ECC: a correction layer inside the memory
// chip that sits between the cell array and the controller-side codec.
// The chip silently corrects up to t errors per line and only surfaces
// the post-correction word, so the controller never sees raw error
// positions — the hidden-error regime HARP (Patel et al., 2021) studies.
// Hiding is a double-edged sword: correctable noise disappears for free,
// but when the raw count finally exceeds the on-die strength the decoder
// fails (and may miscorrect), surfacing a burst the controller code was
// never sized for.
//
// The package also carries Luo et al.'s (2017) capacity/reliability
// trade: cold lines can run a weaker on-die code, reclaiming check-bit
// storage, because their data is rewritten rarely enough that a scrub
// policy can compensate for the thinner margin.
//
// The layer's visibility transform is deliberately deterministic (no RNG
// draws), so enabling instrumentation or profiling around it never
// perturbs a run's random stream, and a disabled layer is byte-identical
// to a build without the package.
package ondie

import (
	"fmt"
	"sort"
)

// WordsPerLine is how many on-die codewords cover one 64-byte memory
// line: on-die ECC protects narrow words (here 64-bit), unlike the
// controller code that spans the whole line.
const WordsPerLine = 8

// MaxT bounds the per-word correction strength: BCH over GF(2^7) on a
// 64-bit payload runs out of parity room past 9 corrected bits.
const MaxT = 9

// Config selects the on-die ECC layout. The zero value (and nil) disable
// the layer entirely, leaving every run byte-identical to a build
// without it.
type Config struct {
	// T is the per-line on-die correction strength in bits: raw error
	// patterns of at most T bits are silently corrected before the
	// controller sees the line. 0 disables the layer.
	T int
	// WeakT is the weaker strength assigned to cold lines under the
	// Luo-style capacity trade (0 = no on-die protection on those lines).
	// Only meaningful when WeakFraction > 0.
	WeakT int
	// WeakFraction is the fraction of lines assigned WeakT, chosen
	// coldest-first by accumulated write count (ties resolve to the lower
	// line index, so assignment is deterministic).
	WeakFraction float64
}

// Enabled reports whether the layer does anything. nil-safe.
func (c *Config) Enabled() bool { return c != nil && c.T > 0 }

// Validate checks the configuration. nil-safe: a nil config is the
// disabled baseline.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.T < 0 || c.T > MaxT {
		return fmt.Errorf("ondie: T must be in [0,%d], got %d", MaxT, c.T)
	}
	if c.T == 0 {
		if c.WeakT != 0 || c.WeakFraction != 0 {
			return fmt.Errorf("ondie: WeakT/WeakFraction need T > 0")
		}
		return nil
	}
	if c.WeakT < 0 || c.WeakT > c.T {
		return fmt.Errorf("ondie: WeakT must be in [0,T=%d], got %d", c.T, c.WeakT)
	}
	if c.WeakFraction < 0 || c.WeakFraction > 1 {
		return fmt.Errorf("ondie: WeakFraction must be in [0,1], got %g", c.WeakFraction)
	}
	return nil
}

// Layer is the runtime on-die ECC state of one device: a per-line
// strength map plus the hidden-correction counters. It is not safe for
// concurrent use; the engine serialises access exactly as it does for
// the rest of the device state.
type Layer struct {
	cfg      Config
	strength []uint8

	// Per-line check-bit footprints of the two strengths, derived from
	// the real word codec so reported capacity savings match what an
	// implementation would actually reclaim.
	baseCheckBits int
	weakCheckBits int

	weakLines int

	corrected int64 // raw error bits silently hidden from the controller
	overflows int64 // observations whose raw count exceeded the strength
}

// NewLayer builds the layer for a device of the given line (slot) count.
// A nil or disabled config returns (nil, nil): callers treat a nil layer
// as "no on-die ECC" with zero overhead on the hot path.
func NewLayer(cfg *Config, lines int) (*Layer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if lines <= 0 {
		return nil, fmt.Errorf("ondie: line count must be positive, got %d", lines)
	}
	base, err := lineCheckBits(cfg.T)
	if err != nil {
		return nil, err
	}
	weak, err := lineCheckBits(cfg.WeakT)
	if err != nil {
		return nil, err
	}
	l := &Layer{
		cfg:           *cfg,
		strength:      make([]uint8, lines),
		baseCheckBits: base,
		weakCheckBits: weak,
	}
	for i := range l.strength {
		l.strength[i] = uint8(cfg.T)
	}
	return l, nil
}

// lineCheckBits returns the per-line storage cost of strength t, using
// the real word codec (t=1 is SECDED, t>=2 short BCH).
func lineCheckBits(t int) (int, error) {
	if t == 0 {
		return 0, nil
	}
	c, err := NewCodec(t)
	if err != nil {
		return 0, err
	}
	return WordsPerLine * c.CheckBits(), nil
}

// Strength returns line i's current on-die correction strength in bits.
func (l *Layer) Strength(i int) int { return int(l.strength[i]) }

// Visible is the deterministic visibility transform: the error count the
// controller observes when line i holds raw erroneous bits.
//
//   - raw <= strength: the on-die decoder corrects silently; the
//     controller sees a clean line.
//   - raw > strength: the decoder fails, and a bounded-distance decoder
//     that fails typically miscorrects — it "fixes" up to t positions
//     that were never wrong. The controller therefore sees the raw burst
//     plus a worst-case miscorrection penalty of t additional bits.
//
// Visible never touches an RNG: the penalty is the deterministic worst
// case, which keeps disabled-vs-enabled comparisons reproducible and the
// random stream identical across instrumentation choices.
func (l *Layer) Visible(i, raw int) int {
	t := int(l.strength[i])
	if raw <= t {
		return 0
	}
	return raw + t
}

// Observe applies the visibility transform and folds the outcome into
// the layer's counters. The engine calls it once per scrub/patrol visit.
func (l *Layer) Observe(i, raw int) int {
	t := int(l.strength[i])
	if raw <= t {
		l.corrected += int64(raw)
		return 0
	}
	if t > 0 {
		l.overflows++
	}
	return raw + t
}

// Assign re-derives the Luo-style strength map from accumulated per-line
// write counts: the coldest WeakFraction of lines run WeakT, the rest T.
// Ties resolve to the lower index, so the assignment is a pure function
// of the write census. A WeakFraction of 0 leaves every line at T.
func (l *Layer) Assign(writes []uint32) {
	if l.cfg.WeakFraction <= 0 {
		return
	}
	n := len(l.strength)
	if len(writes) < n {
		n = len(writes)
	}
	weak := int(l.cfg.WeakFraction*float64(n) + 0.5)
	if weak > n {
		weak = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return writes[idx[a]] < writes[idx[b]] })
	for i := 0; i < n; i++ {
		if i < weak {
			l.strength[idx[i]] = uint8(l.cfg.WeakT)
		} else {
			l.strength[idx[i]] = uint8(l.cfg.T)
		}
	}
	l.weakLines = weak
}

// CorrectedBits returns the raw error bits the layer silently hid.
func (l *Layer) CorrectedBits() int64 { return l.corrected }

// Overflows returns how many observations exceeded the on-die strength
// (each one surfaced a miscorrection-inflated burst to the controller).
func (l *Layer) Overflows() int64 { return l.overflows }

// WeakLines returns how many lines currently run the weaker code.
func (l *Layer) WeakLines() int { return l.weakLines }

// CheckBitsSaved returns the storage reclaimed by the weak assignment,
// in bits across the whole device.
func (l *Layer) CheckBitsSaved() int64 {
	return int64(l.weakLines) * int64(l.baseCheckBits-l.weakCheckBits)
}
