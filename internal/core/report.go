package core

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned report table used by the experiment
// binaries and examples.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cell counts beyond the header are trimmed and
// short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// cellWidth is the rendered width of a cell: runes, not bytes, so cells
// containing ±, ×, etc. still align.
func cellWidth(s string) int { return len([]rune(s)) }

// widths computes the rendered width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = cellWidth(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && cellWidth(c) > w[i] {
				w[i] = cellWidth(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, width int) string {
	if cellWidth(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-cellWidth(s))
}

// FmtCount renders an integer with thousands separators.
func FmtCount(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	out := b.String()
	if neg {
		return "-" + out
	}
	return out
}

// FmtEnergy renders picojoules with an adaptive unit.
func FmtEnergy(pj float64) string {
	switch {
	case pj >= 1e12:
		return fmt.Sprintf("%.2f J", pj/1e12)
	case pj >= 1e9:
		return fmt.Sprintf("%.2f mJ", pj/1e9)
	case pj >= 1e6:
		return fmt.Sprintf("%.2f uJ", pj/1e6)
	case pj >= 1e3:
		return fmt.Sprintf("%.2f nJ", pj/1e3)
	default:
		return fmt.Sprintf("%.2f pJ", pj)
	}
}

// FmtSeconds renders a duration in seconds with an adaptive unit.
func FmtSeconds(s float64) string {
	switch {
	case s >= 86400:
		return fmt.Sprintf("%.1f d", s/86400)
	case s >= 3600:
		return fmt.Sprintf("%.1f h", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1f min", s/60)
	default:
		return fmt.Sprintf("%.0f s", s)
	}
}
