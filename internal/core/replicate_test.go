package core

import (
	"testing"

	"repro/internal/trace"
)

func TestRunReplicatedBasics(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 20000
	m, err := SuiteMechanism(sys, "threshold")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReplicated(sys, m, smallWorkload(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UEs.N() != 4 || len(rep.Results) != 4 {
		t.Fatalf("expected 4 replicas, got %d", rep.UEs.N())
	}
	// Replicas use different seeds: at least one pair of runs should
	// differ in some counter.
	allSame := true
	for _, r := range rep.Results[1:] {
		if r.DemandWrites != rep.Results[0].DemandWrites ||
			r.ScrubWrites() != rep.Results[0].ScrubWrites() {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("all replicas produced identical counters; seeds not varied?")
	}
	if rep.Mechanism != "threshold" || rep.Workload != "unit-mix" {
		t.Errorf("labels wrong: %s/%s", rep.Mechanism, rep.Workload)
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	sys := smallSystem()
	m, _ := SuiteMechanism(sys, "basic")
	if _, err := RunReplicated(sys, m, smallWorkload(), 0); err == nil {
		t.Error("zero replicas accepted")
	}
	bad := sys
	bad.Horizon = 0
	if _, err := RunReplicated(bad, m, smallWorkload(), 2); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestRunReplicatedDeterministic(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 20000
	m, _ := SuiteMechanism(sys, "threshold")
	a, err := RunReplicated(sys, m, smallWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplicated(sys, m, smallWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i].ScrubWrites() != b.Results[i].ScrubWrites() ||
			a.Results[i].UEs != b.Results[i].UEs {
			t.Fatalf("replica %d not reproducible", i)
		}
	}
}

func TestCompareReplicated(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 40000
	basicM, _ := SuiteMechanism(sys, "basic")
	combM, _ := SuiteMechanism(sys, "combined")
	w := trace.Workload{
		Name: "cold", WritesPerLinePerSec: 1e-6, ReadsPerLinePerSec: 1e-4, FootprintFrac: 1.0,
	}
	base, err := RunReplicated(sys, basicM, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := RunReplicated(sys, combM, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := CompareReplicated(base, prop)
	if err != nil {
		t.Fatal(err)
	}
	if ci.WriteFactor <= 1 {
		t.Errorf("write factor %.2f should exceed 1", ci.WriteFactor)
	}
	if ci.EnergyReductionPct <= 0 {
		t.Errorf("energy reduction %.1f%% should be positive", ci.EnergyReductionPct)
	}
	if ci.WriteFactorStderr < 0 || ci.EnergyReductionSterr < 0 {
		t.Error("negative standard errors")
	}
	// Mismatched replica counts are rejected.
	short := &Replicated{Results: prop.Results[:2]}
	if _, err := CompareReplicated(base, short); err == nil {
		t.Error("mismatched replica counts accepted")
	}
}
