package core

import (
	"testing"

	"repro/internal/trace"
)

func TestCombinedMechanismStandsAlone(t *testing.T) {
	// CombinedMechanism must work even where the full Suite cannot —
	// device parameters too coarse for the SECDED baseline's target.
	sys := smallSystem()
	sys.PCM.SigmaProg = 0.16 // SECDED target unreachable
	if _, err := Suite(sys); err == nil {
		t.Fatal("expected Suite to fail at sigma 0.16")
	}
	m, err := CombinedMechanism(sys)
	if err != nil {
		t.Fatalf("CombinedMechanism failed: %v", err)
	}
	if m.Scheme.Name() != "BCH-8" || m.Policy.Name() != "combined" {
		t.Errorf("mechanism wrong: %s/%s", m.Scheme.Name(), m.Policy.Name())
	}
	res, err := RunOne(sys, m, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps == 0 {
		t.Error("no sweeps simulated")
	}
}

func TestCombinedMechanismRejectsInvalidSystem(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = -1
	if _, err := CombinedMechanism(sys); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestRunOneWithOptions(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 20000
	m, err := SuiteMechanism(sys, "threshold")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOneWithOptions(sys, m, smallWorkload(), Options{
		GapMovePeriod: 50,
		SLCFraction:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelerMoves == 0 {
		t.Error("leveling option not applied")
	}
	bad := sys
	bad.RiskTarget = 0
	if _, err := RunOneWithOptions(bad, m, smallWorkload(), Options{}); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestRunOneWithLevelingDelegates(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 20000
	m, _ := SuiteMechanism(sys, "threshold")
	// Short period so the small run's ~100 demand writes trigger moves.
	res, err := RunOneWithLeveling(sys, m, smallWorkload(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelerMoves == 0 {
		t.Error("leveler not engaged")
	}
}

func TestRunMatrixPropagatesCellErrors(t *testing.T) {
	sys := smallSystem()
	ms, _ := Suite(sys)
	broken := ms[0]
	broken.Interval = 0 // sim.Config validation will reject
	if _, err := RunMatrix(sys, []Mechanism{broken}, []trace.Workload{smallWorkload()}); err == nil {
		t.Error("broken mechanism accepted by RunMatrix")
	}
}

func TestRunOneRejectsInvalidSystem(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 0
	m := Mechanism{}
	if _, err := RunOne(sys, m, smallWorkload()); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestFixedIntervalForUnreachable(t *testing.T) {
	sys := smallSystem()
	sys.PCM.SigmaProg = 0.25 // even instant errors exceed any target
	sys.RiskTarget = 1e-9
	if _, err := FixedIntervalFor(sys, 1); err == nil {
		t.Error("unreachable target accepted")
	}
	bad := sys
	bad.PCM.SigmaProg = -1
	if _, err := FixedIntervalFor(bad, 1); err == nil {
		t.Error("invalid PCM params accepted")
	}
}

func TestPerfOverheadRejectsBadTiming(t *testing.T) {
	sys := smallSystem()
	m, _ := SuiteMechanism(sys, "basic")
	res, err := RunOne(sys, m, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	sys.Timing.Banks = 0
	if _, err := PerfOverhead(sys, smallWorkload(), res); err == nil {
		t.Error("invalid timing accepted")
	}
}
