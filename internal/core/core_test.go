package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// smallSystem shrinks the default system so full-suite tests run fast.
func smallSystem() System {
	sys := DefaultSystem()
	sys.Geometry = mem.Geometry{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 4,
		RowsPerBank: 16, LinesPerRow: 8, LineBytes: 64,
	} // 512 lines
	sys.Horizon = 40000
	sys.Substeps = 8
	return sys
}

func smallWorkload() trace.Workload {
	return trace.Workload{
		Name:                "unit-mix",
		WritesPerLinePerSec: 1e-5,
		ReadsPerLinePerSec:  1e-4,
		FootprintFrac:       1.0,
		ZipfSkew:            0.5,
	}
}

func TestDefaultSystemValid(t *testing.T) {
	sys := DefaultSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemValidateRejects(t *testing.T) {
	cases := []func(*System){
		func(s *System) { s.Horizon = 0 },
		func(s *System) { s.RiskTarget = 0 },
		func(s *System) { s.RiskTarget = 1 },
		func(s *System) { s.Geometry.Channels = 0 },
		func(s *System) { s.PCM.T0 = 0 },
	}
	for i, mut := range cases {
		sys := DefaultSystem()
		mut(&sys)
		if err := sys.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFixedIntervalMonotoneInTolerance(t *testing.T) {
	sys := DefaultSystem()
	i1, err := FixedIntervalFor(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	i6, err := FixedIntervalFor(sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	if i6 <= i1 {
		t.Errorf("interval for tolerance 6 (%g) should exceed tolerance 1 (%g)", i6, i1)
	}
	if i1 < 60 {
		t.Errorf("interval should clamp at 60 s, got %g", i1)
	}
	if i6 > sys.Horizon/4 {
		t.Errorf("interval should clamp at horizon/4, got %g", i6)
	}
}

func TestSuiteShape(t *testing.T) {
	sys := smallSystem()
	ms, err := Suite(sys)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"basic", "strong-ecc", "light-detect", "threshold", "combined"}
	if len(ms) != len(wantNames) {
		t.Fatalf("suite has %d mechanisms", len(ms))
	}
	for i, m := range ms {
		if m.Name != wantNames[i] {
			t.Errorf("mechanism %d = %q, want %q", i, m.Name, wantNames[i])
		}
		if m.Scheme == nil || m.Policy == nil || m.Interval <= 0 {
			t.Errorf("mechanism %q incomplete", m.Name)
		}
	}
	if ms[0].Scheme.Name() != "SECDED" {
		t.Errorf("basic should use SECDED, got %s", ms[0].Scheme.Name())
	}
	for _, m := range ms[1:] {
		if m.Scheme.Name() != "BCH-8" {
			t.Errorf("%s should use BCH-8, got %s", m.Name, m.Scheme.Name())
		}
	}
	// The strong-ECC ladder runs at a longer interval than basic.
	if ms[1].Interval <= ms[0].Interval {
		t.Errorf("strong-ecc interval (%g) should exceed basic (%g)", ms[1].Interval, ms[0].Interval)
	}
}

func TestSuiteMechanismLookup(t *testing.T) {
	sys := smallSystem()
	m, err := SuiteMechanism(sys, "combined")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "combined" {
		t.Errorf("got %q", m.Name)
	}
	if _, err := SuiteMechanism(sys, "bogus"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestRunOneProducesResult(t *testing.T) {
	sys := smallSystem()
	m, err := SuiteMechanism(sys, "basic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOne(sys, m, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.ScrubVisits == 0 || res.Sweeps == 0 {
		t.Error("run produced no scrub activity")
	}
	if res.SchemeName != "SECDED" || res.WorkloadName != "unit-mix" {
		t.Errorf("labels wrong: %s/%s", res.SchemeName, res.WorkloadName)
	}
}

func TestRunMatrixAndHeadline(t *testing.T) {
	sys := smallSystem()
	ms, err := Suite(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Basic vs combined only, two workloads, to keep the test fast.
	pair := []Mechanism{ms[0], ms[4]}
	workloads := []trace.Workload{
		smallWorkload(),
		{Name: "idle", WritesPerLinePerSec: 1e-7, ReadsPerLinePerSec: 1e-5, FootprintFrac: 1.0},
	}
	mx, err := RunMatrix(sys, pair, workloads)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range mx.Mechanisms {
		for _, w := range mx.Workloads {
			if mx.Get(mech, w) == nil {
				t.Fatalf("missing cell %s/%s", mech, w)
			}
		}
	}
	if mx.Get("nope", "unit-mix") != nil {
		t.Error("bogus cell lookup should be nil")
	}
	h, err := mx.ComputeHeadline("basic", "combined")
	if err != nil {
		t.Fatal(err)
	}
	// Direction checks — the combined mechanism must win on writes and
	// energy (UEs may both be ~0 at this small scale).
	if h.WriteReductionFactor <= 1 {
		t.Errorf("combined should reduce scrub writes, factor %.2f", h.WriteReductionFactor)
	}
	if h.EnergyReductionPct <= 0 {
		t.Errorf("combined should reduce scrub energy, got %.1f%%", h.EnergyReductionPct)
	}
	bt := mx.TotalsFor("basic")
	ct := mx.TotalsFor("combined")
	if ct.UEs > bt.UEs {
		t.Errorf("combined UEs (%d) should not exceed basic (%d)", ct.UEs, bt.UEs)
	}
	if _, err := mx.ComputeHeadline("basic", "missing"); err == nil {
		t.Error("headline with missing mechanism accepted")
	}
}

func TestRunMatrixReproducibleAcrossScheduling(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 20000
	ms, err := Suite(sys)
	if err != nil {
		t.Fatal(err)
	}
	pair := []Mechanism{ms[0], ms[3]}
	ws := []trace.Workload{smallWorkload()}
	a, err := RunMatrix(sys, pair, ws)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMatrix(sys, pair, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range a.Mechanisms {
		ra, rb := a.Get(mech, "unit-mix"), b.Get(mech, "unit-mix")
		if ra.UEs != rb.UEs || ra.ScrubWrites() != rb.ScrubWrites() ||
			math.Abs(ra.ScrubEnergy.Total()-rb.ScrubEnergy.Total()) > 1e-6 {
			t.Errorf("%s: matrix not reproducible", mech)
		}
	}
}

func TestRunMatrixRejectsEmpty(t *testing.T) {
	sys := smallSystem()
	if _, err := RunMatrix(sys, nil, []trace.Workload{smallWorkload()}); err == nil {
		t.Error("empty mechanisms accepted")
	}
	ms, _ := Suite(sys)
	if _, err := RunMatrix(sys, ms[:1], nil); err == nil {
		t.Error("empty workloads accepted")
	}
}

func TestPerfOverhead(t *testing.T) {
	sys := smallSystem()
	m, err := SuiteMechanism(sys, "basic")
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload()
	res, err := RunOne(sys, m, w)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := PerfOverhead(sys, w, res)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 1 {
		t.Errorf("slowdown %g < 1", slow)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22", "extra-ignored")
	tb.AddRow("gamma")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "name", "alpha", "beta-long", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var md strings.Builder
	if err := tb.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| name | value |") {
		t.Errorf("markdown header wrong:\n%s", md.String())
	}
	if !strings.Contains(md.String(), "| --- | --- |") {
		t.Error("markdown separator missing")
	}
}

func TestFormatters(t *testing.T) {
	if got := FmtCount(1234567); got != "1,234,567" {
		t.Errorf("FmtCount = %q", got)
	}
	if got := FmtCount(-42); got != "-42" {
		t.Errorf("FmtCount(-42) = %q", got)
	}
	if got := FmtCount(999); got != "999" {
		t.Errorf("FmtCount(999) = %q", got)
	}
	cases := []struct {
		pj   float64
		want string
	}{
		{5, "5.00 pJ"},
		{5e3, "5.00 nJ"},
		{5e6, "5.00 uJ"},
		{5e9, "5.00 mJ"},
		{5e12, "5.00 J"},
	}
	for _, c := range cases {
		if got := FmtEnergy(c.pj); got != c.want {
			t.Errorf("FmtEnergy(%g) = %q, want %q", c.pj, got, c.want)
		}
	}
	if got := FmtSeconds(30); got != "30 s" {
		t.Errorf("FmtSeconds(30) = %q", got)
	}
	if got := FmtSeconds(120); got != "2.0 min" {
		t.Errorf("FmtSeconds(120) = %q", got)
	}
	if got := FmtSeconds(7200); got != "2.0 h" {
		t.Errorf("FmtSeconds(7200) = %q", got)
	}
	if got := FmtSeconds(172800); got != "2.0 d" {
		t.Errorf("FmtSeconds(172800) = %q", got)
	}
}
