package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestRunMatrixContextPreCancelled(t *testing.T) {
	sys := smallSystem()
	ms, err := Suite(sys)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMatrixContext(ctx, sys, ms[:1], []trace.Workload{smallWorkload()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled matrix returned %v, want context.Canceled", err)
	}
}

func TestRunMatrixContextCancelMidRun(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 1e9 // far too long to finish; cancellation must cut it
	ms, err := Suite(sys)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	mx, err := RunMatrixContext(ctx, sys, ms[:2], []trace.Workload{smallWorkload()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled matrix returned (%v, %v), want context.Canceled", mx, err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestRunMatrixContextDeadline(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 1e9
	ms, err := Suite(sys)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := RunMatrixContext(ctx, sys, ms[:1], []trace.Workload{smallWorkload()}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined matrix returned %v, want context.DeadlineExceeded", err)
	}
}
