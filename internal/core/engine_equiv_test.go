package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// equivSystem is the fixed small machine the engine equivalence tests pin
// fingerprints on: large enough that every mechanism takes several sweeps
// and sees demand traffic, small enough to run all five in well under a
// second.
func equivSystem() System {
	sys := DefaultSystem()
	sys.Geometry = mem.Geometry{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
		RowsPerBank: 16, LinesPerRow: 16, LineBytes: 64,
	} // 512 lines
	sys.Horizon = 86400
	sys.Substeps = 8
	sys.Seed = 7
	return sys
}

// resultFingerprint hashes the full JSON encoding of a run result, so any
// behavioural drift — a counter, an energy figure, a summary moment —
// changes the digest.
func resultFingerprint(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestEngineMatchesPreRefactorGoldens pins, for every mechanism in the
// suite, the SHA-256 of the full result JSON as produced by the
// pre-refactor sim loop (captured at the commit that introduced
// internal/engine). The engine-backed pipeline must reproduce each run
// byte-identically.
func TestEngineMatchesPreRefactorGoldens(t *testing.T) {
	want := map[string]string{
		"basic":        "3d93eeb5e871e877ab2f52bb49f940949dd8ae1752230cf213226058c34fe619",
		"strong-ecc":   "ab62147dce8bd1c7969dadbf049265a94803760218a56734f5beecbccb26221d",
		"light-detect": "660f86e4de2e74de58578d7c0ed7b7db4fcd768a4f644775a7b3ac825e12d84a",
		"threshold":    "c65ed545f264c0bd973e6f6378282c81f5fa3354376940259d30c277695bb7bc",
		"combined":     "d3bc199cebcbea44fc40a37c34fc089f4887e6673e643d1b9662b85eb597ef40",
	}
	sys := equivSystem()
	w, err := trace.ByName("db-oltp")
	if err != nil {
		t.Fatal(err)
	}
	mechs, err := Suite(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mechs {
		res, err := RunOne(sys, m, w)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got := resultFingerprint(t, res)
		if want[m.Name] == "" {
			t.Fatalf("%s: no pinned fingerprint (got %s)", m.Name, got)
		}
		if got != want[m.Name] {
			t.Errorf("%s: result fingerprint drifted:\n got  %s\n want %s", m.Name, got, want[m.Name])
		}
	}
}
