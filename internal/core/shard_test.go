package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestShardedMergeMatchesSingleNode pins the cluster determinism
// contract at the core layer: running a campaign as disjoint shards and
// merging them yields a Replicated deeply equal — summaries, results,
// bookkeeping — to the whole-campaign run.
func TestShardedMergeMatchesSingleNode(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 20000
	m, err := SuiteMechanism(sys, "basic")
	if err != nil {
		t.Fatal(err)
	}
	w := smallWorkload()
	const replicas = 8

	whole, err := RunReplicatedContext(context.Background(), sys, m, w, replicas)
	if err != nil {
		t.Fatal(err)
	}

	// An uneven partition, dispatched out of order to prove the merge is
	// insensitive to shard arrival order.
	ranges := [][2]int{{3, 3}, {0, 3}, {6, 2}}
	shards := make([]*Shard, 0, len(ranges))
	for _, r := range ranges {
		sh, err := RunShardContext(context.Background(), sys, m, w, r[0], r[1])
		if err != nil {
			t.Fatalf("shard [%d,+%d): %v", r[0], r[1], err)
		}
		shards = append(shards, sh)
	}
	merged, err := MergeReplicated(m.Name, w.Name, replicas, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole, merged) {
		t.Errorf("sharded merge differs from single-node run:\nwhole : %+v\nmerged: %+v", whole, merged)
	}
}

// TestRunShardContextUsesAbsoluteSeeds proves a shard's replicas are
// seeded by absolute campaign index, not shard-local offset.
func TestRunShardContextUsesAbsoluteSeeds(t *testing.T) {
	sys := smallSystem()
	var mu sync.Mutex
	var seeds []uint64
	withReplicaRunner(t, func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		mu.Lock()
		seeds = append(seeds, cfg.Seed)
		mu.Unlock()
		return fakeResult(cfg.Seed), nil
	})
	m, _ := SuiteMechanism(sys, "basic")
	sh, err := RunShardContext(context.Background(), sys, m, smallWorkload(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sh.First != 5 || sh.Count != 2 || len(sh.Results) != 2 {
		t.Fatalf("shard shape wrong: %+v", sh)
	}
	want := map[uint64]bool{replicaSeed(sys.Seed, 5): true, replicaSeed(sys.Seed, 6): true}
	mu.Lock()
	defer mu.Unlock()
	if len(seeds) != 2 || !want[seeds[0]] || !want[seeds[1]] || seeds[0] == seeds[1] {
		t.Errorf("shard ran seeds %v, want replica indices 5 and 6 of base %d", seeds, sys.Seed)
	}
}

func TestRunShardContextRejectsBadRange(t *testing.T) {
	sys := smallSystem()
	m, _ := SuiteMechanism(sys, "basic")
	if _, err := RunShardContext(context.Background(), sys, m, smallWorkload(), -1, 2); err == nil {
		t.Error("negative first accepted")
	}
	if _, err := RunShardContext(context.Background(), sys, m, smallWorkload(), 0, 0); err == nil {
		t.Error("zero count accepted")
	}
}

func mergeShard(first int, results ...*sim.Result) *Shard {
	return &Shard{First: first, Count: len(results), Results: results}
}

func TestMergeReplicatedValidation(t *testing.T) {
	r := func() *sim.Result { return &sim.Result{UEs: 1, ScrubWriteBacks: 2} }
	cases := map[string][]*Shard{
		"nil shard":      {nil},
		"gap":            {mergeShard(0, r()), mergeShard(2, r())},
		"overlap":        {mergeShard(0, r(), r()), mergeShard(1, r(), r())},
		"overrun":        {mergeShard(0, r(), r()), mergeShard(2, r(), r())},
		"negative first": {mergeShard(-1, r(), r(), r(), r())},
	}
	for name, shards := range cases {
		if _, err := MergeReplicated("m", "w", 3, shards); err == nil {
			t.Errorf("%s: merge accepted", name)
		}
	}
	if _, err := MergeReplicated("m", "w", 0, nil); err == nil {
		t.Error("zero-replica merge accepted")
	}
	bad := mergeShard(0, r(), r(), r())
	bad.Failures = []ReplicaFailure{{Index: 7, Err: errors.New("x")}}
	if _, err := MergeReplicated("m", "w", 3, []*Shard{bad}); err == nil {
		t.Error("out-of-range failure index accepted")
	}
}

// TestMergeReplicatedGlobalBudget: shards that individually respected
// their local budgets can still jointly blow the campaign budget when
// merged with extra failures recorded directly.
func TestMergeReplicatedGlobalBudget(t *testing.T) {
	r := func() *sim.Result { return &sim.Result{UEs: 1, ScrubWriteBacks: 2} }
	// 4 replicas → budget 0; one failed replica must abort the merge.
	sh := mergeShard(0, r(), nil, r(), r())
	sh.Failures = []ReplicaFailure{{Index: 1, Err: errors.New("synthetic loss")}}
	_, err := MergeReplicated("m", "w", 4, []*Shard{sh})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget merge: err = %v, want budget error", err)
	}

	// 10 replicas → budget 2; two failures degrade gracefully.
	sh2 := mergeShard(0, r(), nil, nil, r(), r(), r(), r(), r(), r(), r())
	sh2.Failures = []ReplicaFailure{
		{Index: 2, Err: errors.New("b")},
		{Index: 1, Err: errors.New("a")},
	}
	rep, err := MergeReplicated("m", "w", 10, []*Shard{sh2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial() || rep.Completed != 8 || rep.Failed() != 2 {
		t.Errorf("partial=%t completed=%d failed=%d, want true/8/2", rep.Partial(), rep.Completed, rep.Failed())
	}
	if rep.Failures[0].Index != 1 || rep.Failures[1].Index != 2 {
		t.Errorf("failures not index-sorted: %+v", rep.Failures)
	}
}
