package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Demonstrates the library's primary loop: build a system, pick
// mechanisms from the paper's ladder, run them on a workload, compare.
// (Outputs are printed as relations, which hold for any seed.)
func ExampleRunOne() {
	sys := core.DefaultSystem()
	// Shrink the region and horizon so the example runs in milliseconds.
	sys.Geometry = mem.Geometry{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
		RowsPerBank: 16, LinesPerRow: 8, LineBytes: 64,
	}
	sys.Horizon = 40000

	workload := trace.Workload{
		Name:                "example",
		WritesPerLinePerSec: 1e-5,
		ReadsPerLinePerSec:  1e-4,
		FootprintFrac:       1.0,
	}

	basic, err := core.SuiteMechanism(sys, "basic")
	if err != nil {
		log.Fatal(err)
	}
	combined, err := core.SuiteMechanism(sys, "combined")
	if err != nil {
		log.Fatal(err)
	}
	rBasic, err := core.RunOne(sys, basic, workload)
	if err != nil {
		log.Fatal(err)
	}
	rCombined, err := core.RunOne(sys, combined, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("basic scrubs more often:",
		rBasic.Sweeps > rCombined.Sweeps)
	fmt.Println("combined writes less:",
		rCombined.ScrubWrites() < rBasic.ScrubWrites())
	fmt.Println("combined spends less energy:",
		rCombined.ScrubEnergy.Total() < rBasic.ScrubEnergy.Total())
	fmt.Println("combined is at least as reliable:",
		rCombined.UEs <= rBasic.UEs)
	// Output:
	// basic scrubs more often: true
	// combined writes less: true
	// combined spends less energy: true
	// combined is at least as reliable: true
}
