// Package core is the public façade of the scrub study: it assembles the
// substrates (PCM drift physics, ECC schemes, wear, energy, workloads,
// the Monte Carlo simulator) into ready-to-run *mechanisms* — the paper's
// ladder from the DRAM-style baseline scrub to the combined proposal —
// and provides the comparison runner and headline-metric computation that
// every experiment, example and benchmark in this repository builds on.
//
// The System/Mechanism/Options types are re-exports of their
// internal/engine definitions, and every runner here resolves its inputs
// through engine.ResolveSpec before handing them to the shared engine
// pipeline — core adds the study's defaults (DefaultSystem, Suite) and
// the comparison machinery (Matrix, Headline) on top.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/ecc"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wear"
)

// System bundles everything about the simulated machine that is *not* a
// scrub-mechanism choice: device physics, geometry, energy costs, horizon.
type System = engine.System

// DefaultSystem returns the study's baseline machine: a 16 Ki-line
// (1 MiB-data) sampled region of a 2-bit MLC PCM main memory, simulated
// for three days. Reliability metrics scale linearly with capacity, so
// fleet-level numbers are extrapolations of this region.
func DefaultSystem() System {
	return System{
		Geometry: mem.Geometry{
			Channels: 1, RanksPerChan: 1, BanksPerRank: 8,
			RowsPerBank: 64, LinesPerRow: 32, LineBytes: 64,
		},
		PCM:        pcm.DefaultParams(),
		Mix:        pcm.UniformMix(),
		Wear:       wear.DefaultParams(),
		Energy:     energy.DefaultParams(),
		Timing:     memctrl.DefaultParams(),
		Horizon:    259200, // 3 days
		RiskTarget: 1e-4,
		Seed:       1,
	}
}

// Mechanism is one point in the scrub design space: an ECC scheme, a
// policy, and an initial sweep interval.
type Mechanism = engine.Mechanism

// FixedIntervalFor derives the sweep interval that keeps the probability
// of a line exceeding `tolerable` errors per sweep at or below the
// system's risk target, clamped to [60 s, Horizon/4] so every run sees at
// least a few sweeps.
func FixedIntervalFor(sys System, tolerable int) (float64, error) {
	model, err := pcm.NewModel(sys.PCM)
	if err != nil {
		return 0, err
	}
	interval := model.ScrubIntervalFor(sys.Mix, pcm.CellsPerLine, tolerable, sys.RiskTarget)
	if interval <= 0 {
		return 0, fmt.Errorf("core: risk target %g unreachable for tolerance %d", sys.RiskTarget, tolerable)
	}
	if interval < 60 {
		interval = 60
	}
	if maxI := sys.Horizon / 4; interval > maxI {
		interval = maxI
	}
	return interval, nil
}

// Suite returns the paper's mechanism ladder:
//
//	basic            SECDED, full decode, write on error, fixed interval
//	strong-ecc       BCH-8, otherwise like basic (longer safe interval)
//	light-detect     strong-ecc plus the cheap probe on clean lines
//	threshold        light-detect plus write-back only at ≥ thr errors
//	combined         threshold plus wear-awareness plus adaptive interval
//
// Intervals are derived from the drift model against sys.RiskTarget.
func Suite(sys System) ([]Mechanism, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	secded := ecc.NewSECDEDLine()
	bch8, err := ecc.NewBCHLine(8)
	if err != nil {
		return nil, err
	}
	// SECDED tolerates one error per line safely (two may share a word).
	basicInterval, err := FixedIntervalFor(sys, 1)
	if err != nil {
		return nil, err
	}
	// BCH-8 runs two errors of margin below its capability.
	strongInterval, err := FixedIntervalFor(sys, bch8.T()-2)
	if err != nil {
		return nil, err
	}
	const thr = 6
	adaptive := scrub.DefaultAdaptive()
	// Never grow past the drift-derived safe interval: beyond it, a single
	// sweep over lines that stopped being rewritten (a workload phase
	// change) can overshoot the ECC margin before the controller reacts.
	// Adaptivity earns its keep *below* the safe bound, shrinking when
	// threshold write-backs let errors ride across sweeps.
	adaptive.MaxInterval = math.Min(sys.Horizon/4, strongInterval)
	combined := scrub.MustNew(scrub.Config{
		Label:          "combined",
		Detect:         scrub.LightDetect,
		WriteThreshold: thr,
		WearAware:      true,
		Adaptive:       &adaptive,
	})
	return []Mechanism{
		{Name: "basic", Scheme: secded, Policy: scrub.Basic(), Interval: basicInterval},
		{Name: "strong-ecc", Scheme: bch8, Policy: scrub.Basic(), Interval: strongInterval},
		{Name: "light-detect", Scheme: bch8, Policy: scrub.LightBasic(), Interval: strongInterval},
		{Name: "threshold", Scheme: bch8, Policy: scrub.MustNew(scrub.Config{
			Label: "threshold", Detect: scrub.LightDetect, WriteThreshold: thr,
		}), Interval: strongInterval},
		{Name: "combined", Scheme: bch8, Policy: combined, Interval: strongInterval},
	}, nil
}

// CombinedMechanism builds the paper's combined mechanism directly,
// without deriving the rest of the ladder — usable even for device
// parameters under which the SECDED baseline's risk target is unreachable
// (e.g. very coarse programming in the F16 precision sweep).
func CombinedMechanism(sys System) (Mechanism, error) {
	if err := sys.Validate(); err != nil {
		return Mechanism{}, err
	}
	bch8, err := ecc.NewBCHLine(8)
	if err != nil {
		return Mechanism{}, err
	}
	strongInterval, err := FixedIntervalFor(sys, bch8.T()-2)
	if err != nil {
		return Mechanism{}, err
	}
	adaptive := scrub.DefaultAdaptive()
	adaptive.MaxInterval = math.Min(sys.Horizon/4, strongInterval)
	if adaptive.MinInterval > adaptive.MaxInterval {
		adaptive.MinInterval = adaptive.MaxInterval / 4
	}
	policy := scrub.MustNew(scrub.Config{
		Label:          "combined",
		Detect:         scrub.LightDetect,
		WriteThreshold: 6,
		WearAware:      true,
		Adaptive:       &adaptive,
	})
	return Mechanism{Name: "combined", Scheme: bch8, Policy: policy, Interval: strongInterval}, nil
}

// SuiteMechanism returns the named mechanism from Suite.
func SuiteMechanism(sys System, name string) (Mechanism, error) {
	ms, err := Suite(sys)
	if err != nil {
		return Mechanism{}, err
	}
	for _, m := range ms {
		if m.Name == name {
			return m, nil
		}
	}
	return Mechanism{}, fmt.Errorf("core: unknown mechanism %q", name)
}

// RunOne simulates one mechanism under one workload. Suite-produced
// policies are stateless, so a Mechanism can be reused across runs.
func RunOne(sys System, m Mechanism, w trace.Workload) (*sim.Result, error) {
	return RunOneContext(context.Background(), sys, m, w)
}

// RunOneContext is RunOne under a context: cancellation is honoured
// within a few hundred scrub visits.
func RunOneContext(ctx context.Context, sys System, m Mechanism, w trace.Workload) (*sim.Result, error) {
	return RunOneWithOptionsContext(ctx, sys, m, w, Options{})
}

// Options exposes simulator-only knobs that are not part of a Mechanism:
// the optional substrates layered under the scrub study, plus run
// instrumentation.
type Options = engine.Options

// RunOneWithOptions is RunOne with the optional substrates configured.
func RunOneWithOptions(sys System, m Mechanism, w trace.Workload, o Options) (*sim.Result, error) {
	return RunOneWithOptionsContext(context.Background(), sys, m, w, o)
}

// RunOneWithOptionsContext is RunOneWithOptions under a context.
func RunOneWithOptionsContext(ctx context.Context, sys System, m Mechanism, w trace.Workload, o Options) (*sim.Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return engine.RunContext(ctx, engine.ResolveSpec(sys, m, w, o))
}

// RunOneWithLeveling is RunOne with Start-Gap wear leveling enabled at
// the given gap-move period (0 = leveling off).
func RunOneWithLeveling(sys System, m Mechanism, w trace.Workload, gapPeriod uint64) (*sim.Result, error) {
	return RunOneWithOptions(sys, m, w, Options{GapMovePeriod: gapPeriod})
}

// Matrix is a full mechanisms × workloads comparison.
type Matrix struct {
	Mechanisms []string
	Workloads  []string
	cells      map[string]*sim.Result // key mech + "\x00" + workload
}

func cellKey(mech, workload string) string { return mech + "\x00" + workload }

// Get returns the result for a cell, or nil if absent.
func (mx *Matrix) Get(mech, workload string) *sim.Result {
	return mx.cells[cellKey(mech, workload)]
}

// TotalsFor aggregates a mechanism's results across all workloads.
type Totals struct {
	UEs         int64
	ScrubWrites int64
	ScrubEnergy float64 // pJ
	DemandWrite int64
	Visits      int64
}

// TotalsFor sums a mechanism's row.
func (mx *Matrix) TotalsFor(mech string) Totals {
	var t Totals
	for _, w := range mx.Workloads {
		r := mx.Get(mech, w)
		if r == nil {
			continue
		}
		t.UEs += r.UEs
		t.ScrubWrites += r.ScrubWrites()
		t.ScrubEnergy += r.ScrubEnergy.Total()
		t.DemandWrite += r.DemandWrites
		t.Visits += r.ScrubVisits
	}
	return t
}

// RunMatrix simulates every mechanism under every workload, fanning cells
// out over the available CPUs. Each cell gets a distinct deterministic
// seed derived from the system seed and its coordinates, so the matrix is
// reproducible regardless of scheduling.
func RunMatrix(sys System, mechanisms []Mechanism, workloads []trace.Workload) (*Matrix, error) {
	return RunMatrixContext(context.Background(), sys, mechanisms, workloads)
}

// RunMatrixContext is RunMatrix under a context: cancellation stops
// in-flight cells within a substep and skips unstarted ones.
func RunMatrixContext(ctx context.Context, sys System, mechanisms []Mechanism, workloads []trace.Workload) (*Matrix, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if len(mechanisms) == 0 || len(workloads) == 0 {
		return nil, fmt.Errorf("core: need at least one mechanism and one workload")
	}
	mx := &Matrix{cells: make(map[string]*sim.Result)}
	for _, m := range mechanisms {
		mx.Mechanisms = append(mx.Mechanisms, m.Name)
	}
	for _, w := range workloads {
		mx.Workloads = append(mx.Workloads, w.Name)
	}
	type job struct {
		mi, wi int
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(mechanisms)*len(workloads) {
		workers = len(mechanisms) * len(workloads)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain remaining jobs without running them
				}
				m, w := mechanisms[j.mi], workloads[j.wi]
				cellSys := sys
				cellSys.Seed = sys.Seed*1000003 + uint64(j.mi)*8191 + uint64(j.wi)
				res, err := engine.RunContext(ctx, engine.ResolveSpec(cellSys, m, w, engine.Options{}))
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: %s/%s: %w", m.Name, w.Name, err)
					}
				} else {
					mx.cells[cellKey(m.Name, w.Name)] = res
				}
				mu.Unlock()
			}
		}()
	}
	for mi := range mechanisms {
		for wi := range workloads {
			jobs <- job{mi, wi}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// A cancellation that lands after the in-flight cells finish but
	// before the drain would otherwise return a silently partial matrix.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: matrix canceled: %w", err)
	}
	return mx, nil
}

// Headline is the paper-abstract comparison of a proposed mechanism
// against a baseline, aggregated across workloads.
type Headline struct {
	Baseline, Proposed string
	// UEReductionPct is the percentage reduction in uncorrectable errors.
	UEReductionPct float64
	// WriteReductionFactor is baseline scrub writes / proposed scrub writes.
	WriteReductionFactor float64
	// EnergyReductionPct is the percentage reduction in scrub energy.
	EnergyReductionPct float64
}

// ComputeHeadline derives the abstract's three numbers from a matrix.
func (mx *Matrix) ComputeHeadline(baseline, proposed string) (Headline, error) {
	b := mx.TotalsFor(baseline)
	p := mx.TotalsFor(proposed)
	if b.Visits == 0 || p.Visits == 0 {
		return Headline{}, fmt.Errorf("core: headline needs results for %q and %q", baseline, proposed)
	}
	h := Headline{Baseline: baseline, Proposed: proposed}
	if b.UEs > 0 {
		h.UEReductionPct = 100 * (1 - float64(p.UEs)/float64(b.UEs))
	}
	if p.ScrubWrites > 0 {
		h.WriteReductionFactor = float64(b.ScrubWrites) / float64(p.ScrubWrites)
	}
	if b.ScrubEnergy > 0 {
		h.EnergyReductionPct = 100 * (1 - p.ScrubEnergy/b.ScrubEnergy)
	}
	return h, nil
}

// PerfOverhead estimates, via the queueing model, the demand slowdown a
// result's scrub traffic causes under its workload's read/write rates.
func PerfOverhead(sys System, w trace.Workload, r *sim.Result) (float64, error) {
	m, err := memctrl.NewModel(sys.Timing)
	if err != nil {
		return 0, err
	}
	footprint := w.FootprintFrac * float64(sys.Geometry.TotalLines())
	rates := memctrl.Rates{
		DemandReads:  w.ReadsPerLinePerSec * footprint,
		DemandWrites: w.WritesPerLinePerSec * footprint,
		ScrubReads:   r.ScrubReadRate(),
		ScrubWrites:  r.ScrubWriteRate(),
	}
	return m.Slowdown(rates), nil
}
