package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/scrub"
	"repro/internal/sim"
)

// withReplicaRunner substitutes the replica runner for the duration of a
// test, restoring the real one afterwards.
func withReplicaRunner(t *testing.T, fn func(ctx context.Context, cfg sim.Config) (*sim.Result, error)) {
	t.Helper()
	orig := runReplica
	runReplica = fn
	t.Cleanup(func() { runReplica = orig })
}

// fakeResult builds a minimal successful result for supervision tests.
func fakeResult(seed uint64) *sim.Result {
	return &sim.Result{UEs: int64(seed % 7), ScrubWriteBacks: 100 + int64(seed%13)}
}

// seedIndex recovers the replica index (and whether this is the retry
// attempt) from the seed the supervisor derived.
func seedIndex(base, seed uint64) (idx int, retry bool) {
	for i := 0; i < 1024; i++ {
		if seed == replicaSeed(base, i) {
			return i, false
		}
		if seed == replicaSeed(base, i)^retrySeedSalt {
			return i, true
		}
	}
	panic(fmt.Sprintf("seed %d not derived from base %d", seed, base))
}

func TestRunReplicatedPanicIsRetriedOnce(t *testing.T) {
	sys := smallSystem()
	var mu sync.Mutex
	attempts := map[int]int{}
	withReplicaRunner(t, func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		idx, retry := seedIndex(sys.Seed, cfg.Seed)
		mu.Lock()
		attempts[idx]++
		mu.Unlock()
		if idx == 2 && !retry {
			panic("synthetic replica defect")
		}
		return fakeResult(cfg.Seed), nil
	})
	m, _ := SuiteMechanism(sys, "basic")
	rep, err := RunReplicated(sys, m, smallWorkload(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried != 1 || rep.Failed() != 0 || rep.Completed != 6 {
		t.Errorf("retried=%d failed=%d completed=%d, want 1/0/6", rep.Retried, rep.Failed(), rep.Completed)
	}
	if attempts[2] != 2 {
		t.Errorf("replica 2 attempted %d times, want 2", attempts[2])
	}
	if rep.StdErrInflation != 1 {
		t.Errorf("full campaign should not inflate stderr, got %g", rep.StdErrInflation)
	}
	if rep.UEs.N() != 6 {
		t.Errorf("summary covers %d replicas, want 6", rep.UEs.N())
	}
}

func TestRunReplicatedPartialResults(t *testing.T) {
	sys := smallSystem()
	withReplicaRunner(t, func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		if idx, _ := seedIndex(sys.Seed, cfg.Seed); idx == 4 {
			return nil, errors.New("persistent synthetic failure")
		}
		return fakeResult(cfg.Seed), nil
	})
	m, _ := SuiteMechanism(sys, "basic")
	rep, err := RunReplicated(sys, m, smallWorkload(), 10) // budget: 2 failures
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial() || rep.Failed() != 1 || rep.Completed != 9 {
		t.Fatalf("partial=%t failed=%d completed=%d, want true/1/9", rep.Partial(), rep.Failed(), rep.Completed)
	}
	if rep.Results[4] != nil {
		t.Error("failed replica should leave a nil slot")
	}
	if rep.Failures[0].Index != 4 || rep.Failures[0].Err == nil {
		t.Errorf("failure record wrong: %+v", rep.Failures)
	}
	want := math.Sqrt(10.0 / 9.0)
	if math.Abs(rep.StdErrInflation-want) > 1e-12 {
		t.Errorf("StdErrInflation = %g, want %g", rep.StdErrInflation, want)
	}
	if adj := rep.AdjustedStdErr(&rep.UEs); adj < rep.UEs.StdErr() {
		t.Error("adjusted stderr narrower than raw stderr")
	}
	if rep.UEs.N() != 9 {
		t.Errorf("summary covers %d replicas, want 9", rep.UEs.N())
	}
}

func TestRunReplicatedFailureBudgetExceeded(t *testing.T) {
	sys := smallSystem()
	withReplicaRunner(t, func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		if idx, _ := seedIndex(sys.Seed, cfg.Seed); idx < 3 {
			return nil, errors.New("persistent synthetic failure")
		}
		return fakeResult(cfg.Seed), nil
	})
	m, _ := SuiteMechanism(sys, "basic")
	_, err := RunReplicated(sys, m, smallWorkload(), 10) // 3 failures > budget 2
	if err == nil {
		t.Fatal("campaign with 30% failures should error")
	}
}

// TestRunReplicatedStopsLaunchingAfterAbort: once the failure budget is
// blown, unstarted replicas must never run (the pre-fix behaviour burned
// the whole campaign's CPU after the first failure).
func TestRunReplicatedStopsLaunchingAfterAbort(t *testing.T) {
	sys := smallSystem()
	replicas := 8*runtime.GOMAXPROCS(0) + 16
	var mu sync.Mutex
	calls := 0
	withReplicaRunner(t, func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, errors.New("every replica fails")
	})
	m, _ := SuiteMechanism(sys, "basic")
	if _, err := RunReplicated(sys, m, smallWorkload(), replicas); err == nil {
		t.Fatal("all-failing campaign should error")
	}
	mu.Lock()
	defer mu.Unlock()
	// Attempts are bounded by (budget+1 failures before abort, each with
	// a retry) plus in-flight goroutines; far below the full campaign.
	if calls >= 2*replicas {
		t.Errorf("%d replica attempts despite early abort (replicas=%d)", calls, replicas)
	}
	budget := int(math.Floor(maxFailedFraction * float64(replicas)))
	bound := 2 * (budget + 1 + runtime.GOMAXPROCS(0))
	if calls > bound {
		t.Errorf("%d attempts exceed abort bound %d", calls, bound)
	}
}

func TestRunReplicatedContextCancel(t *testing.T) {
	sys := smallSystem()
	sys.Horizon = 1e9 // far too long to finish; cancellation must cut it
	m, err := SuiteMechanism(sys, "basic")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunReplicatedContext(ctx, sys, m, smallWorkload(), 4)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunReplicatedContext did not return promptly after cancel")
	}
}

// TestRunReplicaRecoversRealPanic exercises the production runner (not a
// test substitute) against a policy that panics mid-run.
func TestRunReplicaRecoversRealPanic(t *testing.T) {
	sys := smallSystem()
	m, _ := SuiteMechanism(sys, "basic")
	m.Policy = panicPolicy{Policy: m.Policy}
	cfg := engine.ResolveSpec(sys, m, smallWorkload(), engine.Options{})
	res, err := safeRunReplica(context.Background(), cfg)
	if err == nil || res != nil {
		t.Fatalf("panicking policy: res=%v err=%v, want nil result and error", res, err)
	}
}

// panicPolicy panics on the first interval adaptation of a run.
type panicPolicy struct{ scrub.Policy }

func (p panicPolicy) NextInterval(cur float64, rs scrub.RoundStats) float64 {
	panic("synthetic policy defect")
}

func TestCompareReplicatedReportsSkippedPairs(t *testing.T) {
	mk := func(ues, writes int64, energy float64) *sim.Result {
		r := &sim.Result{UEs: ues, ScrubWriteBacks: writes}
		r.ScrubEnergy.WritePJ = energy
		return r
	}
	baseline := &Replicated{Results: []*sim.Result{
		mk(10, 100, 50), // clean pair
		nil,             // failed baseline replica
		mk(0, 100, 50),  // zero-UE baseline: UE pair unusable
		mk(10, 100, 0),  // zero-energy baseline: energy pair unusable
	}}
	proposed := &Replicated{Results: []*sim.Result{
		mk(5, 50, 25),
		mk(5, 50, 25),
		mk(5, 50, 25),
		mk(5, 0, 25), // zero proposed writes: write pair unusable
	}}
	ci, err := CompareReplicated(baseline, proposed)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Pairs != 3 || ci.FailedPairs != 1 {
		t.Errorf("pairs=%d failed=%d, want 3/1", ci.Pairs, ci.FailedPairs)
	}
	if ci.UEPairsSkipped != 1 || ci.WritePairsSkipped != 1 || ci.EnergyPairsSkipped != 1 {
		t.Errorf("skips ue=%d write=%d energy=%d, want 1/1/1",
			ci.UEPairsSkipped, ci.WritePairsSkipped, ci.EnergyPairsSkipped)
	}
	if ci.UEReductionPct != 50 {
		t.Errorf("UE reduction = %g, want 50", ci.UEReductionPct)
	}
}

func TestCompareReplicatedAllPairsDead(t *testing.T) {
	dead := &Replicated{Results: []*sim.Result{nil, nil}}
	if _, err := CompareReplicated(dead, dead); err == nil {
		t.Error("comparison with no surviving pairs should error")
	}
}
