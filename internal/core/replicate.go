package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// retrySeedSalt reseeds a replica's one retry after a panic or error, so
// a seed that tickles a defect deterministically is not simply re-run
// into the same defect.
const retrySeedSalt = 0x51ed270b9b1e6d2f

// maxFailedFraction bounds graceful degradation: when at most this
// fraction of replicas fail (after their retry), RunReplicated returns
// the surviving results instead of aborting the campaign.
const maxFailedFraction = 0.20

// ReplicaFailure records one replica that produced no result.
type ReplicaFailure struct {
	// Index is the replica's position in [0, Requested).
	Index int
	// Err describes the final failure (after the retry).
	Err error
}

// Replicated aggregates one (mechanism, workload) cell across independent
// seeds, giving the Monte Carlo spread of the headline metrics. A single
// simulation is one sample of a random process; comparisons in a paper
// need the error bars this type provides.
//
// A Replicated may be *partial*: when some replicas fail after their
// retry (at most 20 % of the request), the summaries cover only the
// survivors, Failures lists what was lost, and StdErrInflation carries
// the widening factor honest error bars must apply (see AdjustedStdErr).
type Replicated struct {
	Mechanism string
	Workload  string
	// Distributions of the three headline metrics across surviving
	// replicas.
	UEs         stats.Summary
	ScrubWrites stats.Summary
	ScrubEnergy stats.Summary // pJ
	// Results holds the individual runs in replica order. A nil entry
	// marks a failed replica, so index-paired comparisons stay aligned.
	Results []*sim.Result
	// Requested is the replica count asked for; Completed the number
	// that produced results.
	Requested, Completed int
	// Retried counts replicas that failed once and succeeded on their
	// reseeded retry.
	Retried int
	// Failures lists replicas with no result, in index order.
	Failures []ReplicaFailure
	// StdErrInflation is sqrt(Requested/Completed) (1 when nothing
	// failed): failures are not guaranteed to be missing at random, so
	// partial campaigns must report standard errors at least this much
	// wider.
	StdErrInflation float64
}

// Failed returns the number of replicas that produced no result.
func (r *Replicated) Failed() int { return len(r.Failures) }

// Partial reports whether any replica failed.
func (r *Replicated) Partial() bool { return len(r.Failures) > 0 }

// AdjustedStdErr widens a summary's standard error by the partial-result
// inflation factor. Use it instead of Summary.StdErr when the Replicated
// may be partial.
func (r *Replicated) AdjustedStdErr(s *stats.Summary) float64 {
	if r.StdErrInflation > 1 {
		return s.StdErr() * r.StdErrInflation
	}
	return s.StdErr()
}

// replicaSeed derives the deterministic seed of one replica.
func replicaSeed(base uint64, idx int) uint64 {
	return base + uint64(idx)*0x9e3779b9
}

// runReplica executes one simulation. It is a variable so supervision
// tests can substitute failure modes.
var runReplica = sim.RunContext

// safeRunReplica calls runReplica with panic containment: a defect in
// one replica becomes an error instead of killing the whole campaign.
func safeRunReplica(ctx context.Context, cfg sim.Config) (res *sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("replica panicked: %v", p)
		}
	}()
	return runReplica(ctx, cfg)
}

// RunReplicated simulates the cell `replicas` times with seeds derived
// from sys.Seed, fanning out over the available CPUs.
func RunReplicated(sys System, m Mechanism, w trace.Workload, replicas int) (*Replicated, error) {
	return RunReplicatedContext(context.Background(), sys, m, w, replicas)
}

// RunReplicatedContext is RunReplicated under resilient supervision:
//
//   - Cancellation: ctx is checked inside every replica per substep;
//     cancelling returns promptly with an error wrapping ctx.Err().
//   - Panic containment: a panicking replica is caught and retried once
//     under a reseeded derived seed.
//   - Graceful degradation: when at most 20 % of replicas still fail
//     after their retry, the surviving results are returned as a partial
//     Replicated (Failures populated, StdErrInflation > 1) instead of
//     aborting the campaign.
//   - Early abort: once failures exceed the 20 % budget — or ctx ends —
//     unstarted replicas are never launched and in-flight ones are
//     cancelled, rather than burning the rest of the campaign's CPU.
//
// It is the single-node special case of the shard pipeline: one shard
// covering every replica, merged by the same MergeReplicated a cluster
// coordinator uses, so a sharded run is statistically identical to a
// local one.
func RunReplicatedContext(ctx context.Context, sys System, m Mechanism, w trace.Workload, replicas int) (*Replicated, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("core: replicas must be >= 1")
	}
	shard, err := RunShardContext(ctx, sys, m, w, 0, replicas)
	if err != nil {
		return nil, err
	}
	return MergeReplicated(m.Name, w.Name, replicas, []*Shard{shard})
}

// Shard holds the results of one contiguous replica range [First,
// First+Count) of a larger campaign. Replica seeds are derived from the
// *absolute* replica index, so the same replica produces the same result
// whether it runs in a whole-campaign shard on one machine or in a
// narrow shard on a remote worker.
type Shard struct {
	// First is the absolute index of the shard's first replica; Count is
	// the number of replicas it covers.
	First, Count int
	// Results holds the shard's runs in replica order (index i is
	// absolute replica First+i). A nil entry marks a failed replica.
	Results []*sim.Result
	// Retried counts replicas that failed once and succeeded on their
	// reseeded retry.
	Retried int
	// Failures lists replicas with no result, with absolute indices.
	Failures []ReplicaFailure
}

// RunShardContext executes replicas [first, first+count) of a campaign
// under the same supervision contract as RunReplicatedContext (panic
// containment, one reseeded retry, early abort once the shard's 20 %
// failure budget is blown). Seeds derive from absolute replica indices,
// which makes shard execution location-transparent: a coordinator can
// scatter disjoint ranges across workers and MergeReplicated the pieces
// into exactly the Replicated a single node would have produced.
func RunShardContext(ctx context.Context, sys System, m Mechanism, w trace.Workload, first, count int) (*Shard, error) {
	if first < 0 {
		return nil, fmt.Errorf("core: shard first replica must be >= 0, got %d", first)
	}
	if count < 1 {
		return nil, fmt.Errorf("core: shard replica count must be >= 1, got %d", count)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	shard := &Shard{
		First:   first,
		Count:   count,
		Results: make([]*sim.Result, count),
	}
	allowedFailures := int(math.Floor(maxFailedFraction * float64(count)))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []ReplicaFailure
		retried  int
		aborted  bool
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			doomed := aborted
			mu.Unlock()
			if doomed || runCtx.Err() != nil {
				return // campaign already failed; don't burn more CPU
			}
			idx := first + off
			cellSys := sys
			cellSys.Seed = replicaSeed(sys.Seed, idx)
			res, err := safeRunReplica(runCtx, engine.ResolveSpec(cellSys, m, w, engine.Options{}))
			didRetry := false
			if err != nil && runCtx.Err() == nil {
				// One retry under a reseeded derived seed: a different
				// sample of the same cell, not a rerun into the same
				// deterministic defect.
				didRetry = true
				cellSys.Seed = replicaSeed(sys.Seed, idx) ^ retrySeedSalt
				res, err = safeRunReplica(runCtx, engine.ResolveSpec(cellSys, m, w, engine.Options{}))
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures = append(failures, ReplicaFailure{
					Index: idx, Err: fmt.Errorf("core: replica %d: %w", idx, err),
				})
				if len(failures) > allowedFailures {
					aborted = true
					cancel() // stop in-flight and unstarted replicas
				}
				return
			}
			shard.Results[off] = res
			if didRetry {
				retried++
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: replication canceled: %w", err)
	}
	if len(failures) > allowedFailures {
		// Too broken to degrade gracefully; surface the first failure.
		first := failures[0]
		for _, f := range failures {
			if f.Index < first.Index {
				first = f
			}
		}
		return nil, fmt.Errorf("core: %d/%d replicas failed (budget %d): %w",
			len(failures), count, allowedFailures, first.Err)
	}
	sortFailures(failures)
	shard.Failures = failures
	shard.Retried = retried
	return shard, nil
}

// sortFailures orders failures by replica index for stable reporting.
func sortFailures(failures []ReplicaFailure) {
	for i := 1; i < len(failures); i++ {
		for j := i; j > 0 && failures[j].Index < failures[j-1].Index; j-- {
			failures[j], failures[j-1] = failures[j-1], failures[j]
		}
	}
}

// MergeReplicated assembles shards covering replicas [0, requested)
// exactly once into one Replicated, applying the campaign-wide 20 %
// failure budget and computing the headline summaries in replica-index
// order. Because seeds are derived from absolute indices and summaries
// accumulate in index order, the merge of any shard partition is
// identical — including floating-point accumulation order — to a
// single-shard run. Gaps and overlaps are errors, not silent holes.
func MergeReplicated(mechanism, workload string, requested int, shards []*Shard) (*Replicated, error) {
	if requested < 1 {
		return nil, fmt.Errorf("core: replicas must be >= 1")
	}
	rep := &Replicated{
		Mechanism: mechanism,
		Workload:  workload,
		Results:   make([]*sim.Result, requested),
		Requested: requested,
	}
	covered := make([]bool, requested)
	var failures []ReplicaFailure
	for _, sh := range shards {
		if sh == nil {
			return nil, errors.New("core: merge of nil shard")
		}
		if sh.First < 0 || sh.Count != len(sh.Results) || sh.First+sh.Count > requested {
			return nil, fmt.Errorf("core: shard [%d,+%d) with %d results does not fit a %d-replica campaign",
				sh.First, sh.Count, len(sh.Results), requested)
		}
		for off, res := range sh.Results {
			idx := sh.First + off
			if covered[idx] {
				return nil, fmt.Errorf("core: replica %d covered by more than one shard", idx)
			}
			covered[idx] = true
			rep.Results[idx] = res
		}
		for _, f := range sh.Failures {
			if f.Index < sh.First || f.Index >= sh.First+sh.Count {
				return nil, fmt.Errorf("core: shard [%d,+%d) reports failure for out-of-range replica %d",
					sh.First, sh.Count, f.Index)
			}
			failures = append(failures, f)
		}
		rep.Retried += sh.Retried
	}
	for idx, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("core: replica %d not covered by any shard", idx)
		}
	}
	sortFailures(failures)
	allowedFailures := int(math.Floor(maxFailedFraction * float64(requested)))
	if len(failures) > allowedFailures {
		return nil, fmt.Errorf("core: %d/%d replicas failed (budget %d): %w",
			len(failures), requested, allowedFailures, failures[0].Err)
	}
	rep.Failures = failures
	for _, res := range rep.Results {
		if res == nil {
			continue
		}
		rep.Completed++
		rep.UEs.Add(float64(res.UEs))
		rep.ScrubWrites.Add(float64(res.ScrubWrites()))
		rep.ScrubEnergy.Add(res.ScrubEnergy.Total())
	}
	rep.StdErrInflation = 1
	if rep.Completed > 0 && rep.Completed < rep.Requested {
		rep.StdErrInflation = math.Sqrt(float64(rep.Requested) / float64(rep.Completed))
	}
	if rep.Completed == 0 {
		// Unreachable with allowedFailures < replicas, but guard anyway.
		return nil, errors.New("core: no replicas completed")
	}
	return rep, nil
}

// HeadlineCI compares two replicated cells and reports each headline
// metric as mean ± standard error of the reduction, plus an audit of how
// many replica pairs actually fed each mean.
type HeadlineCI struct {
	UEReductionPct       float64
	UEReductionStderr    float64
	WriteFactor          float64
	WriteFactorStderr    float64
	EnergyReductionPct   float64
	EnergyReductionSterr float64

	// Pairs is the number of index-aligned replica pairs with results on
	// both sides; FailedPairs counts pairs dropped because either side's
	// replica failed.
	Pairs       int
	FailedPairs int
	// UEPairsSkipped, WritePairsSkipped and EnergyPairsSkipped count
	// live pairs excluded from the respective mean because its baseline
	// (or, for writes, proposed) denominator was zero. Earlier versions
	// dropped these silently, shrinking the sample behind the reported
	// means.
	UEPairsSkipped     int
	WritePairsSkipped  int
	EnergyPairsSkipped int
}

// CompareReplicated computes reduction statistics between a baseline and
// a proposed replicated cell. Replicas are paired by index (matching
// seeds), so the standard errors reflect paired differences. Pairs where
// either replica failed, or where a metric's denominator is zero, are
// excluded from that metric's mean — and counted in the returned
// HeadlineCI so the effective sample size is visible.
func CompareReplicated(baseline, proposed *Replicated) (HeadlineCI, error) {
	n := len(baseline.Results)
	if n == 0 || n != len(proposed.Results) {
		return HeadlineCI{}, fmt.Errorf("core: replica counts differ (%d vs %d)", n, len(proposed.Results))
	}
	var ci HeadlineCI
	var ue, wf, en stats.Summary
	for i := 0; i < n; i++ {
		b, p := baseline.Results[i], proposed.Results[i]
		if b == nil || p == nil {
			ci.FailedPairs++
			continue
		}
		ci.Pairs++
		if b.UEs > 0 {
			ue.Add(100 * (1 - float64(p.UEs)/float64(b.UEs)))
		} else {
			ci.UEPairsSkipped++
		}
		if p.ScrubWrites() > 0 {
			wf.Add(float64(b.ScrubWrites()) / float64(p.ScrubWrites()))
		} else {
			ci.WritePairsSkipped++
		}
		if b.ScrubEnergy.Total() > 0 {
			en.Add(100 * (1 - p.ScrubEnergy.Total()/b.ScrubEnergy.Total()))
		} else {
			ci.EnergyPairsSkipped++
		}
	}
	if ci.Pairs == 0 {
		return HeadlineCI{}, fmt.Errorf("core: no surviving replica pairs to compare")
	}
	ci.UEReductionPct = ue.Mean()
	ci.UEReductionStderr = ue.StdErr()
	ci.WriteFactor = wf.Mean()
	ci.WriteFactorStderr = wf.StdErr()
	ci.EnergyReductionPct = en.Mean()
	ci.EnergyReductionSterr = en.StdErr()
	return ci, nil
}
