package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Replicated aggregates one (mechanism, workload) cell across independent
// seeds, giving the Monte Carlo spread of the headline metrics. A single
// simulation is one sample of a random process; comparisons in a paper
// need the error bars this type provides.
type Replicated struct {
	Mechanism string
	Workload  string
	// Distributions of the three headline metrics across replicas.
	UEs         stats.Summary
	ScrubWrites stats.Summary
	ScrubEnergy stats.Summary // pJ
	// Results holds the individual runs, in replica order.
	Results []*sim.Result
}

// RunReplicated simulates the cell `replicas` times with seeds derived
// from sys.Seed, fanning out over the available CPUs.
func RunReplicated(sys System, m Mechanism, w trace.Workload, replicas int) (*Replicated, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("core: replicas must be >= 1")
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	rep := &Replicated{
		Mechanism: m.Name,
		Workload:  w.Name,
		Results:   make([]*sim.Result, replicas),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cellSys := sys
			cellSys.Seed = sys.Seed + uint64(idx)*0x9e3779b9
			res, err := sim.Run(simConfig(cellSys, m, w))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("core: replica %d: %w", idx, err)
				}
				return
			}
			rep.Results[idx] = res
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for _, res := range rep.Results {
		rep.UEs.Add(float64(res.UEs))
		rep.ScrubWrites.Add(float64(res.ScrubWrites()))
		rep.ScrubEnergy.Add(res.ScrubEnergy.Total())
	}
	return rep, nil
}

// HeadlineCI compares two replicated cells and reports each headline
// metric as mean ± standard error of the reduction.
type HeadlineCI struct {
	UEReductionPct       float64
	UEReductionStderr    float64
	WriteFactor          float64
	WriteFactorStderr    float64
	EnergyReductionPct   float64
	EnergyReductionSterr float64
}

// CompareReplicated computes reduction statistics between a baseline and
// a proposed replicated cell. Replicas are paired by index (matching
// seeds), so the standard errors reflect paired differences.
func CompareReplicated(baseline, proposed *Replicated) (HeadlineCI, error) {
	n := len(baseline.Results)
	if n == 0 || n != len(proposed.Results) {
		return HeadlineCI{}, fmt.Errorf("core: replica counts differ (%d vs %d)", n, len(proposed.Results))
	}
	var ue, wf, en stats.Summary
	for i := 0; i < n; i++ {
		b, p := baseline.Results[i], proposed.Results[i]
		if b.UEs > 0 {
			ue.Add(100 * (1 - float64(p.UEs)/float64(b.UEs)))
		}
		if p.ScrubWrites() > 0 {
			wf.Add(float64(b.ScrubWrites()) / float64(p.ScrubWrites()))
		}
		if b.ScrubEnergy.Total() > 0 {
			en.Add(100 * (1 - p.ScrubEnergy.Total()/b.ScrubEnergy.Total()))
		}
	}
	return HeadlineCI{
		UEReductionPct:       ue.Mean(),
		UEReductionStderr:    ue.StdErr(),
		WriteFactor:          wf.Mean(),
		WriteFactorStderr:    wf.StdErr(),
		EnergyReductionPct:   en.Mean(),
		EnergyReductionSterr: en.StdErr(),
	}, nil
}
