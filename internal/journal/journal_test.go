package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openT opens a journal in dir, failing the test on error.
func openT(t *testing.T, dir string) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rec
}

func appendT(t *testing.T, j *Journal, r Record) {
	t.Helper()
	if err := j.Append(r); err != nil {
		t.Fatalf("Append(%+v): %v", r, err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, dir)
	if len(rec.Jobs) != 0 || rec.Records != 0 {
		t.Fatalf("fresh journal replayed %+v", rec)
	}
	spec := json.RawMessage(`{"workload":"db-oltp","replicas":4}`)
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000001", Fingerprint: "fp1", Spec: spec})
	appendT(t, j, Record{Type: TypeStarted, Job: "job-000001"})
	appendT(t, j, Record{Type: TypePlan, Job: "job-000001", Plan: []ShardRange{{0, 2}, {2, 2}}})
	appendT(t, j, Record{Type: TypeShardDone, Job: "job-000001",
		Shard: &ShardRange{0, 2}, Payload: json.RawMessage(`{"first":0,"count":2}`)})
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000002", Fingerprint: "fp2", Spec: spec})
	appendT(t, j, Record{Type: TypeDone, Job: "job-000002", Payload: json.RawMessage(`{"ok":true}`)})
	if j.Appended() != 6 {
		t.Errorf("Appended() = %d, want 6", j.Appended())
	}
	j.Close()

	_, rec2 := openT(t, dir)
	if rec2.Records != 6 || rec2.Skipped != 0 {
		t.Fatalf("replay counters = %d/%d, want 6/0", rec2.Records, rec2.Skipped)
	}
	if len(rec2.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(rec2.Jobs))
	}
	j1 := rec2.Job("job-000001")
	if j1 == nil || j1.State != TypeStarted || !j1.Incomplete() {
		t.Fatalf("job-000001 state = %+v, want started/incomplete", j1)
	}
	if j1.Fingerprint != "fp1" || string(j1.Spec) != string(spec) {
		t.Errorf("job-000001 lost its spec: %+v", j1)
	}
	if len(j1.Plan) != 2 || j1.Plan[0] != (ShardRange{0, 2}) {
		t.Errorf("job-000001 plan = %+v", j1.Plan)
	}
	if string(j1.Shards[ShardRange{0, 2}]) != `{"first":0,"count":2}` {
		t.Errorf("job-000001 checkpoints = %+v", j1.Shards)
	}
	j2 := rec2.Job("job-000002")
	if j2 == nil || j2.State != TypeDone || j2.Incomplete() {
		t.Fatalf("job-000002 state = %+v, want done", j2)
	}
	if string(j2.Result) != `{"ok":true}` {
		t.Errorf("job-000002 result = %s", j2.Result)
	}
	if got := rec2.Incomplete(); len(got) != 1 || got[0].ID != "job-000001" {
		t.Errorf("Incomplete() = %+v", got)
	}
}

// TestJournalTerminalWins pins the replay rule behind cancel-while-down
// recovery: once a terminal record lands, later records are echoes.
func TestJournalTerminalWins(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000001", Fingerprint: "fp"})
	appendT(t, j, Record{Type: TypeCancelled, Job: "job-000001", Error: "cancelled by request"})
	appendT(t, j, Record{Type: TypeStarted, Job: "job-000001"}) // a racing echo
	j.Close()

	_, rec := openT(t, dir)
	js := rec.Job("job-000001")
	if js == nil || js.State != TypeCancelled {
		t.Fatalf("state = %+v, want cancelled", js)
	}
	if js.Incomplete() {
		t.Error("cancelled job reported incomplete; it would re-execute")
	}
}

// TestJournalTruncatedTail crashes mid-append: the last line is torn.
// Replay must keep every whole record, count the damage, and repair the
// file so the next append starts clean.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000001", Fingerprint: "fp"})
	appendT(t, j, Record{Type: TypeStarted, Job: "job-000001"})
	j.Close()

	path := filepath.Join(dir, FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: drop its trailing newline and last 7 bytes.
	torn := raw[:len(raw)-8]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir)
	if rec.Records != 1 || rec.Skipped != 1 {
		t.Fatalf("replay counters = %d/%d, want 1 valid + 1 skipped", rec.Records, rec.Skipped)
	}
	js := rec.Job("job-000001")
	if js == nil || js.State != TypeSubmitted {
		t.Fatalf("surviving record lost: %+v", js)
	}
	// The tail was repaired: a fresh append then a replay must see both
	// records with no leftovers of the torn line.
	appendT(t, j2, Record{Type: TypeDone, Job: "job-000001", Payload: json.RawMessage(`{}`)})
	j2.Close()
	_, rec3 := openT(t, dir)
	if rec3.Records != 2 || rec3.Skipped != 0 {
		t.Fatalf("post-repair replay = %d/%d, want 2/0", rec3.Records, rec3.Skipped)
	}
	if got := rec3.Job("job-000001"); got == nil || got.State != TypeDone {
		t.Fatalf("post-repair state = %+v, want done", got)
	}
}

// TestJournalCorruptMiddleRecordDropsTail pins the repair rule: a CRC
// mismatch is treated as the start of the torn tail — everything from
// the bad record on is dropped, never reinterpreted.
func TestJournalCorruptMiddleRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000001", Fingerprint: "fp"})
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000002", Fingerprint: "fp2"})
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000003", Fingerprint: "fp3"})
	j.Close()

	path := filepath.Join(dir, FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip a byte inside the second record's payload.
	lines[1] = strings.Replace(lines[1], "job-000002", "job-0000XX", 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir)
	if rec.Records != 1 {
		t.Errorf("replayed %d records past corruption, want 1", rec.Records)
	}
	if rec.Skipped != 2 {
		t.Errorf("skipped = %d, want 2 (bad record + dropped tail)", rec.Skipped)
	}
	if rec.Job("job-000001") == nil {
		t.Error("record before the corruption lost")
	}
	if rec.Job("job-0000XX") != nil {
		t.Error("corrupt record was believed")
	}
}

// TestJournalGarbageFile survives a journal that is pure noise.
func TestJournalGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	if err := os.WriteFile(path, []byte("not json at all\n\x00\x01\x02\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, rec := openT(t, dir)
	if rec.Records != 0 || len(rec.Jobs) != 0 {
		t.Fatalf("garbage replayed as %+v", rec)
	}
	if rec.Skipped == 0 {
		t.Error("garbage not counted as skipped")
	}
	// The file was repaired to empty; appends work.
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000001"})
	j.Close()
	_, rec2 := openT(t, dir)
	if rec2.Records != 1 || rec2.Skipped != 0 {
		t.Fatalf("post-repair replay = %d/%d, want 1/0", rec2.Records, rec2.Skipped)
	}
}

// TestJournalSequenceResumes checks sequence numbers continue past the
// replayed maximum so record ordering stays total across restarts.
func TestJournalSequenceResumes(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000001"})
	appendT(t, j, Record{Type: TypeStarted, Job: "job-000001"})
	j.Close()

	j2, _ := openT(t, dir)
	appendT(t, j2, Record{Type: TypeDone, Job: "job-000001", Payload: json.RawMessage(`{}`)})
	j2.Close()

	f, err := os.Open(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, _, err := replayFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if rec.maxSeq != 3 {
		t.Errorf("maxSeq = %d, want 3 (sequence must resume, not restart)", rec.maxSeq)
	}
}

// TestJournalOrphanRecordsIgnored: lifecycle records whose submission
// was lost cannot be restored or re-run; replay drops them rather than
// fabricating a spec-less job.
func TestJournalOrphanRecordsIgnored(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	appendT(t, j, Record{Type: TypeStarted, Job: "job-000009"})
	appendT(t, j, Record{Type: TypeDone, Job: "job-000009", Payload: json.RawMessage(`{}`)})
	j.Close()
	_, rec := openT(t, dir)
	if len(rec.Jobs) != 0 {
		t.Errorf("orphan records materialised jobs: %+v", rec.Jobs)
	}
}

func TestJournalClosedAppendFails(t *testing.T) {
	j, _ := openT(t, t.TempDir())
	j.Close()
	if err := j.Append(Record{Type: TypeSubmitted, Job: "x"}); err == nil {
		t.Error("append after Close succeeded")
	}
}
