package journal

import "encoding/json"

// JobState is the reconstructed state of one journaled job after replay.
// A terminal State (done/failed/cancelled) restores directly; a
// non-terminal one (submitted/started) is work the crashed incarnation
// had accepted but not finished — the daemon re-enqueues it, resuming a
// sharded campaign from Plan and the Shards checkpoints.
type JobState struct {
	// ID is the job's original identifier; recovery preserves it so
	// clients polling across the crash keep their handle.
	ID string
	// Fingerprint is the spec's content address.
	Fingerprint string
	// Spec is the normalised spec as journaled at submission.
	Spec json.RawMessage
	// State is the furthest lifecycle record seen (terminal wins).
	State Type
	// Error carries the failure or cancellation reason, if any.
	Error string
	// Result is the encoded job result (TypeDone only).
	Result json.RawMessage
	// Plan is the journaled shard plan, nil when the job never sharded.
	Plan []ShardRange
	// Shards maps completed shard ranges to their journaled wire
	// payloads — the resume checkpoints.
	Shards map[ShardRange]json.RawMessage

	firstSeq uint64
}

// Incomplete reports whether the job needs re-execution after recovery.
func (s *JobState) Incomplete() bool { return !s.State.Terminal() }

// FleetDevice is the reconstructed specification of one fleet device:
// what a restarted daemon needs to re-register the device and restart its
// patrol session. Device *state* is never journaled — trajectories are
// deterministic in the spec's seed, so recovery recomputes them.
type FleetDevice struct {
	// ID is the device's fleet identifier.
	ID string
	// Spec is the device registration spec as journaled.
	Spec json.RawMessage
	// Patrol is the most recent patrol configuration (live PATCHes are
	// journaled), nil when the device never deviated from its
	// registration-time configuration.
	Patrol json.RawMessage
}

// Recovery is the outcome of replaying a journal: every job the previous
// incarnation knew about, in first-journaled order, plus replay health
// counters.
type Recovery struct {
	// Jobs holds the reconstructed jobs ordered by first appearance.
	Jobs []*JobState
	// FleetDevices holds the fleet devices still registered at the time
	// of the crash, in first-registered order.
	FleetDevices []*FleetDevice
	// FleetSeen lists every fleet device ID ever registered, including
	// since-removed ones, so a recovering fleet never re-mints an ID an
	// earlier incarnation used.
	FleetSeen []string
	// Records counts valid records replayed; Skipped counts corrupt or
	// truncated records dropped (tail damage, not fatal).
	Records int64
	Skipped int64

	byID      map[string]*JobState
	fleetByID map[string]*FleetDevice
	maxSeq    uint64
}

func newRecovery() *Recovery {
	return &Recovery{byID: map[string]*JobState{}, fleetByID: map[string]*FleetDevice{}}
}

// applyFleet folds one fleet control-plane record. Patrol updates for
// devices whose registration was lost (tail damage in an earlier segment)
// are dropped: without the spec the device cannot be re-registered, and a
// fresh registration will re-establish its configuration.
func (rec *Recovery) applyFleet(r Record) {
	switch r.Type {
	case TypeFleetDevice:
		if _, exists := rec.fleetByID[r.Job]; exists {
			return // duplicate registration refreshes nothing
		}
		d := &FleetDevice{ID: r.Job, Spec: r.Spec}
		rec.fleetByID[r.Job] = d
		rec.FleetDevices = append(rec.FleetDevices, d)
		rec.FleetSeen = append(rec.FleetSeen, r.Job)
	case TypeFleetPatrol:
		if d := rec.fleetByID[r.Job]; d != nil {
			d.Patrol = r.Payload
		}
	case TypeFleetRemove:
		if _, exists := rec.fleetByID[r.Job]; !exists {
			return
		}
		delete(rec.fleetByID, r.Job)
		for i, d := range rec.FleetDevices {
			if d.ID == r.Job {
				rec.FleetDevices = append(rec.FleetDevices[:i], rec.FleetDevices[i+1:]...)
				break
			}
		}
	}
}

// Job returns the reconstructed state for id, or nil.
func (rec *Recovery) Job(id string) *JobState { return rec.byID[id] }

// Incomplete returns the jobs needing re-execution, in journal order.
func (rec *Recovery) Incomplete() []*JobState {
	var out []*JobState
	for _, js := range rec.Jobs {
		if js.Incomplete() {
			out = append(out, js)
		}
	}
	return out
}

// apply folds one valid record into the recovery state. Replay is
// idempotent and tolerant: duplicate submissions refresh nothing,
// records for unknown jobs (their submission lost to tail damage in an
// earlier segment) create a placeholder only when they can still be
// acted on, and nothing resurrects a terminal job.
func (rec *Recovery) apply(r Record) {
	rec.Records++
	if r.Seq > rec.maxSeq {
		rec.maxSeq = r.Seq
	}
	if r.Type.Fleet() {
		rec.applyFleet(r)
		return
	}
	js := rec.byID[r.Job]
	if js == nil {
		if r.Type != TypeSubmitted {
			// A non-submission record for a job we never saw submitted:
			// without the spec the job cannot be re-run, and without a
			// terminal record it cannot be restored. Drop it.
			return
		}
		js = &JobState{
			ID:       r.Job,
			State:    TypeSubmitted,
			Shards:   map[ShardRange]json.RawMessage{},
			firstSeq: r.Seq,
		}
		rec.Jobs = append(rec.Jobs, js)
		rec.byID[r.Job] = js
	}
	if js.State.Terminal() {
		return // terminal state is final; late records are echoes
	}
	switch r.Type {
	case TypeSubmitted:
		if js.Spec == nil {
			js.Fingerprint = r.Fingerprint
			js.Spec = r.Spec
		}
	case TypeStarted:
		js.State = TypeStarted
	case TypePlan:
		js.Plan = r.Plan
	case TypeShardDone:
		if r.Shard != nil && r.Payload != nil {
			js.Shards[*r.Shard] = r.Payload
		}
	case TypeDone:
		js.State = TypeDone
		js.Result = r.Payload
	case TypeFailed:
		js.State = TypeFailed
		js.Error = r.Error
	case TypeCancelled:
		js.State = TypeCancelled
		js.Error = r.Error
	}
}
