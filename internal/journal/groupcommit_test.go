package journal

import (
	"testing"
)

// TestAppendBatchSingleFsync pins the group-commit contract at the
// journal layer: N records, one durable flush, monotonic sequencing.
func TestAppendBatchSingleFsync(t *testing.T) {
	j, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	recs := []Record{
		{Type: TypeSubmitted, Job: "job-000001", Fingerprint: "fp1"},
		{Type: TypeSubmitted, Job: "job-000002", Fingerprint: "fp2"},
		{Type: TypeSubmitted, Job: "job-000003", Fingerprint: "fp3"},
	}
	if err := j.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if got := j.Appended(); got != 3 {
		t.Fatalf("Appended = %d, want 3", got)
	}
	if got := j.Fsyncs(); got != 1 {
		t.Fatalf("Fsyncs = %d, want 1 (group commit)", got)
	}
	if got := j.GroupCommits(); got != 1 {
		t.Fatalf("GroupCommits = %d, want 1", got)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d seq %d, want %d", i, r.Seq, i+1)
		}
	}

	// A single-record Append still counts one fsync and no group commit.
	if err := j.Append(Record{Type: TypeStarted, Job: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	if got := j.Fsyncs(); got != 2 {
		t.Fatalf("Fsyncs after single Append = %d, want 2", got)
	}
	if got := j.GroupCommits(); got != 1 {
		t.Fatalf("GroupCommits after single Append = %d, want 1 still", got)
	}

	// An empty batch is a durable no-op.
	if err := j.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if got := j.Fsyncs(); got != 2 {
		t.Fatalf("Fsyncs after empty batch = %d, want 2", got)
	}
}

// TestAppendBatchReplay pins that batch-written records replay exactly
// like singly-written ones: same envelope, same CRC guard.
func TestAppendBatchReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch([]Record{
		{Type: TypeSubmitted, Job: "job-000001", Fingerprint: "fpA"},
		{Type: TypeSubmitted, Job: "job-000002", Fingerprint: "fpB"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeStarted, Job: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.Records != 3 || rec.Skipped != 0 {
		t.Fatalf("replay saw %d records (%d skipped), want 3/0", rec.Records, rec.Skipped)
	}
	// New appends continue the sequence past the replayed batch.
	if err := j2.Append(Record{Type: TypeDone, Job: "job-000001"}); err != nil {
		t.Fatal(err)
	}
}
