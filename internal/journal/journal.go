// Package journal is scrubd's write-ahead job journal: an append-only
// JSONL file of CRC-guarded lifecycle records, fsync'd per append, that
// lets a restarted daemon reconstruct every job the crashed incarnation
// had accepted. The paper's scrub mechanisms exist to keep memory from
// losing data under errors; the serving stack holds itself to the same
// bar — a crash must not silently drop accepted work.
//
// Wire format: one record per line,
//
//	{"crc":"<crc32c hex of rec bytes>","rec":{...Record...}}
//
// The CRC covers the exact bytes of the rec object as written, so a torn
// or bit-flipped line is detected without re-canonicalising JSON. A
// truncated or corrupt tail (the expected shape of a crash mid-append)
// is repaired on open: the file is truncated back to the end of the last
// valid record and replay reports how many records were dropped.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Type enumerates the journal's record kinds.
type Type string

// Lifecycle record types. submitted/started/done/failed/cancelled track
// the job state machine; plan and shard-done checkpoint a replicated
// campaign so a restart resumes from completed shards instead of
// re-running them.
const (
	TypeSubmitted Type = "submitted"
	TypeStarted   Type = "started"
	TypePlan      Type = "plan"
	TypeShardDone Type = "shard-done"
	TypeDone      Type = "done"
	TypeFailed    Type = "failed"
	TypeCancelled Type = "cancelled"
)

// Fleet control-plane record types. They track device *specifications*,
// not device state: a restarted daemon re-registers each journaled device
// (same spec, same seed) and recomputes its trajectory, mirroring how
// corrupt shard checkpoints silently recompute. Job carries the device
// ID; fleet-device carries the registration spec in Spec, fleet-patrol
// carries the latest patrol configuration in Payload, and fleet-remove
// drops the device from recovery.
const (
	TypeFleetDevice Type = "fleet-device"
	TypeFleetPatrol Type = "fleet-patrol"
	TypeFleetRemove Type = "fleet-remove"
)

// Fleet reports whether the record type belongs to the fleet control
// plane rather than the job lifecycle.
func (t Type) Fleet() bool {
	return t == TypeFleetDevice || t == TypeFleetPatrol || t == TypeFleetRemove
}

// Terminal reports whether the record type ends a job's lifecycle.
func (t Type) Terminal() bool {
	return t == TypeDone || t == TypeFailed || t == TypeCancelled
}

// ShardRange identifies one contiguous replica range of a sharded
// campaign: replicas [First, First+Count).
type ShardRange struct {
	First int `json:"first"`
	Count int `json:"count"`
}

// Record is one journal entry. Which fields are meaningful depends on
// Type: submitted carries Fingerprint+Spec, plan carries Plan,
// shard-done carries Shard+Payload (the wire-form shard result), done
// carries Payload (the encoded job result), failed carries Error.
type Record struct {
	Seq  uint64 `json:"seq"`
	Type Type   `json:"type"`
	Job  string `json:"job"`

	Fingerprint string          `json:"fp,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	Plan        []ShardRange    `json:"plan,omitempty"`
	Shard       *ShardRange     `json:"shard,omitempty"`
	Payload     json.RawMessage `json:"payload,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// envelope is the on-disk line: the record bytes plus their checksum.
type envelope struct {
	CRC string          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// castagnoli is the CRC polynomial used for record guards (same choice
// as iSCSI/ext4: better error detection than IEEE for short payloads).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileName is the journal file created inside the journal directory.
const FileName = "scrubd.journal"

// Journal is an open, appendable write-ahead journal. Append is safe for
// concurrent use; every record is flushed and fsync'd before Append
// returns, so an acknowledged record survives kill -9.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	seq  uint64
	path string

	appended atomic.Int64
	synced   atomic.Int64
	batches  atomic.Int64
}

// Open opens (creating if needed) the journal in dir, replays every
// valid record already present, repairs a corrupt or truncated tail by
// truncating back to the last valid record, and returns the journal
// positioned for appending plus the replayed recovery state.
func Open(dir string) (*Journal, *Recovery, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("journal: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: create dir: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	rec, goodEnd, err := replayFile(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Repair the tail: drop any bytes after the last valid record so the
	// next append starts on a clean line boundary.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncate corrupt tail: %w", err)
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek: %w", err)
	}
	j := &Journal{f: f, seq: rec.maxSeq, path: path}
	return j, rec, nil
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Append assigns the record a sequence number, writes it with its CRC
// guard, and fsyncs before returning. An error means the record may not
// be durable; callers should refuse the action the record covers.
func (j *Journal) Append(rec Record) error {
	return j.AppendBatch([]Record{rec})
}

// AppendBatch group-commits records: every record is sequenced and
// written, then the whole group is made durable with ONE fsync. This is
// the batch-submission fast path — N accepted jobs cost one disk flush
// instead of N — and it preserves Append's guarantee: when AppendBatch
// returns nil, every record in the group survives kill -9. On error none
// of the records should be trusted; callers must refuse the actions they
// cover. An empty batch is a no-op.
func (j *Journal) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	var buf bytes.Buffer
	for i := range recs {
		j.seq++
		recs[i].Seq = j.seq
		raw, err := json.Marshal(recs[i])
		if err != nil {
			return fmt.Errorf("journal: encode record: %w", err)
		}
		env := envelope{
			CRC: fmt.Sprintf("%08x", crc32.Checksum(raw, castagnoli)),
			Rec: raw,
		}
		line, err := json.Marshal(env)
		if err != nil {
			return fmt.Errorf("journal: encode envelope: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.appended.Add(int64(len(recs)))
	j.synced.Add(1)
	if len(recs) > 1 {
		j.batches.Add(1)
	}
	return nil
}

// Appended returns the number of records durably appended by this
// process (not counting records replayed from a previous incarnation).
func (j *Journal) Appended() int64 { return j.appended.Load() }

// Fsyncs returns the number of fsyncs issued; with group commit it can
// be far below Appended.
func (j *Journal) Fsyncs() int64 { return j.synced.Load() }

// GroupCommits returns how many multi-record batches were committed with
// a single fsync.
func (j *Journal) GroupCommits() int64 { return j.batches.Load() }

// Close flushes and closes the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// WritePrometheus renders the journal's counters in the Prometheus text
// format; scrubd appends it to /metrics on journaled nodes.
func (j *Journal) WritePrometheus(out io.Writer, rec *Recovery) error {
	type metric struct {
		name, help, typ string
		value           float64
	}
	metrics := []metric{
		{"scrubd_journal_records_total", "Journal records durably appended by this process.", "counter", float64(j.Appended())},
		{"scrubd_journal_fsyncs_total", "Journal fsyncs issued.", "counter", float64(j.synced.Load())},
		{"scrubd_journal_group_commits_total", "Multi-record batches committed with a single fsync.", "counter", float64(j.batches.Load())},
	}
	if rec != nil {
		metrics = append(metrics,
			metric{"scrubd_journal_replayed_records_total", "Valid records replayed from the previous incarnation at boot.", "counter", float64(rec.Records)},
			metric{"scrubd_journal_skipped_records_total", "Corrupt or truncated records dropped during replay.", "counter", float64(rec.Skipped)},
		)
	}
	for _, m := range metrics {
		if _, err := fmt.Fprintf(out, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

// replayFile scans the file from the start, returning the recovery state
// and the byte offset just past the last valid record.
func replayFile(f *os.File) (*Recovery, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: seek: %w", err)
	}
	rec := newRecovery()
	var goodEnd int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxRecordBytes)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // +1 for the newline Scan strips
		r, ok := decodeLine(line)
		if !ok {
			// A bad line is treated as the crash-torn tail: everything
			// from here on is dropped and the file is truncated back to
			// goodEnd. Counting the remainder keeps the damage visible.
			rec.Skipped++
			for sc.Scan() {
				rec.Skipped++
			}
			return rec, goodEnd, nil
		}
		rec.apply(r)
		goodEnd += lineLen
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			// An over-long line is tail corruption, not a fatal journal.
			rec.Skipped++
			return rec, goodEnd, nil
		}
		return nil, 0, fmt.Errorf("journal: scan: %w", err)
	}
	return rec, goodEnd, nil
}

// maxRecordBytes bounds one journal line. Result payloads for the
// largest campaigns are a few MB; 64 MB is comfortably past any real
// record while still catching runaway corruption.
const maxRecordBytes = 64 << 20

// decodeLine parses and CRC-checks one journal line.
func decodeLine(line []byte) (Record, bool) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return Record{}, false
	}
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, false
	}
	if fmt.Sprintf("%08x", crc32.Checksum(env.Rec, castagnoli)) != env.CRC {
		return Record{}, false
	}
	var r Record
	if err := json.Unmarshal(env.Rec, &r); err != nil {
		return Record{}, false
	}
	if r.Type == "" || r.Job == "" {
		return Record{}, false
	}
	return r, true
}
