package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFleetReplayRoundTrip pins the fleet control-plane records: device
// registrations survive with their specs, the latest patrol patch wins,
// and removals drop the device while its ID stays reserved.
func TestFleetReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	spec1 := json.RawMessage(`{"workload":"idle-archive","seed":42}`)
	spec2 := json.RawMessage(`{"workload":"db-oltp","seed":7}`)
	appendT(t, j, Record{Type: TypeFleetDevice, Job: "dev-000001", Spec: spec1})
	appendT(t, j, Record{Type: TypeFleetDevice, Job: "dev-000002", Spec: spec2})
	appendT(t, j, Record{Type: TypeFleetPatrol, Job: "dev-000001",
		Payload: json.RawMessage(`{"rate_lines_per_sec":0.5}`)})
	appendT(t, j, Record{Type: TypeFleetPatrol, Job: "dev-000001",
		Payload: json.RawMessage(`{"rate_lines_per_sec":2}`)})
	appendT(t, j, Record{Type: TypeFleetRemove, Job: "dev-000002"})
	// Interleaved job traffic must not confuse fleet replay.
	appendT(t, j, Record{Type: TypeSubmitted, Job: "job-000001", Fingerprint: "fp"})
	j.Close()

	_, rec := openT(t, dir)
	if len(rec.FleetDevices) != 1 {
		t.Fatalf("recovered %d fleet devices, want 1", len(rec.FleetDevices))
	}
	d := rec.FleetDevices[0]
	if d.ID != "dev-000001" || string(d.Spec) != string(spec1) {
		t.Errorf("recovered device = %+v", d)
	}
	// The last journaled patrol configuration wins.
	if string(d.Patrol) != `{"rate_lines_per_sec":2}` {
		t.Errorf("recovered patrol = %s, want the latest patch", d.Patrol)
	}
	// Removed devices stay visible in FleetSeen so IDs are never re-minted.
	if len(rec.FleetSeen) != 2 || rec.FleetSeen[1] != "dev-000002" {
		t.Errorf("FleetSeen = %v, want both registrations", rec.FleetSeen)
	}
	if rec.Job("job-000001") == nil {
		t.Error("interleaved job record lost")
	}
}

// TestFleetReplayTolerance pins the lenient paths: duplicate
// registrations refresh nothing, patrol patches and removals for unknown
// devices are dropped, and fleet records never create job state.
func TestFleetReplayTolerance(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	spec := json.RawMessage(`{"workload":"idle-archive"}`)
	appendT(t, j, Record{Type: TypeFleetDevice, Job: "dev-000001", Spec: spec})
	appendT(t, j, Record{Type: TypeFleetDevice, Job: "dev-000001",
		Spec: json.RawMessage(`{"workload":"db-oltp"}`)}) // duplicate: ignored
	appendT(t, j, Record{Type: TypeFleetPatrol, Job: "dev-000099",
		Payload: json.RawMessage(`{"paused":true}`)}) // unknown device
	appendT(t, j, Record{Type: TypeFleetRemove, Job: "dev-000099"})
	j.Close()

	_, rec := openT(t, dir)
	if len(rec.FleetDevices) != 1 {
		t.Fatalf("recovered %d devices, want 1", len(rec.FleetDevices))
	}
	if string(rec.FleetDevices[0].Spec) != string(spec) {
		t.Error("duplicate registration overwrote the original spec")
	}
	if len(rec.Jobs) != 0 {
		t.Errorf("fleet records created %d job states", len(rec.Jobs))
	}
}

// TestFleetReplayCorruptRecord crashes with a corrupt patrol record: the
// damage drops the record (and the tail after it), and the device comes
// back under its registration-time configuration — the fleet silently
// recomputes, mirroring how corrupt shard checkpoints are handled.
func TestFleetReplayCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	spec := json.RawMessage(`{"workload":"idle-archive","seed":42}`)
	appendT(t, j, Record{Type: TypeFleetDevice, Job: "dev-000001", Spec: spec})
	appendT(t, j, Record{Type: TypeFleetPatrol, Job: "dev-000001",
		Payload: json.RawMessage(`{"rate_lines_per_sec":9}`)})
	j.Close()

	path := filepath.Join(dir, FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip a byte inside the patrol record's payload.
	lines[1] = strings.Replace(lines[1], "rate_lines_per_sec", "rate_lines_per_sXc", 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir)
	if rec.Records != 1 || rec.Skipped != 1 {
		t.Fatalf("replay counters = %d/%d, want 1 valid + 1 skipped", rec.Records, rec.Skipped)
	}
	if len(rec.FleetDevices) != 1 {
		t.Fatalf("recovered %d devices, want 1", len(rec.FleetDevices))
	}
	d := rec.FleetDevices[0]
	if d.ID != "dev-000001" || string(d.Spec) != string(spec) {
		t.Errorf("recovered device = %+v", d)
	}
	if d.Patrol != nil {
		t.Errorf("corrupt patrol record believed: %s", d.Patrol)
	}
}
