package fault

import (
	"math"
	"testing"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"all rates set", Plan{ReadFlipRate: 0.5, SweepSkipRate: 1, ProbeMissRate: 0.1, StuckCheckRate: 0.2, StallRate: 0.3}, true},
		{"rate > 1", Plan{ReadFlipRate: 1.5}, false},
		{"negative rate", Plan{SweepSkipRate: -0.1}, false},
		{"negative max bits", Plan{ReadFlipMaxBits: -1}, false},
		{"negative stuck bits", Plan{StuckCheckBits: -2}, false},
		{"stall factor below 1", Plan{StallFactor: 0.5}, false},
		{"stall factor default", Plan{StallRate: 0.5, StallFactor: 0}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", c.name, err, c.ok)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
}

func TestEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan reports enabled")
	}
	if (&Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	// Non-rate fields alone must not enable the plan.
	if (&Plan{ReadFlipMaxBits: 8, StuckCheckBits: 3, StallFactor: 4, Seed: 9}).Enabled() {
		t.Error("rate-free plan reports enabled")
	}
	for _, p := range []Plan{
		{ReadFlipRate: 0.1}, {SweepSkipRate: 0.1}, {ProbeMissRate: 0.1},
		{StuckCheckRate: 0.1}, {StallRate: 0.1},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v should be enabled", p)
		}
	}
}

func TestNewInjectorNilForDisabled(t *testing.T) {
	in, err := NewInjector(nil, 1)
	if err != nil || in != nil {
		t.Fatalf("nil plan: injector=%v err=%v, want nil,nil", in, err)
	}
	in, err = NewInjector(&Plan{}, 1)
	if err != nil || in != nil {
		t.Fatalf("zero plan: injector=%v err=%v, want nil,nil", in, err)
	}
	if _, err = NewInjector(&Plan{ReadFlipRate: 2}, 1); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestInjectorDefaults(t *testing.T) {
	in, err := NewInjector(&Plan{ReadFlipRate: 0.5, StuckCheckRate: 0.5, StallRate: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := in.Plan()
	if p.ReadFlipMaxBits != DefaultReadFlipMaxBits {
		t.Errorf("ReadFlipMaxBits default = %d", p.ReadFlipMaxBits)
	}
	if p.StuckCheckBits != DefaultStuckCheckBits {
		t.Errorf("StuckCheckBits default = %d", p.StuckCheckBits)
	}
	if p.StallFactor != DefaultStallFactor {
		t.Errorf("StallFactor default = %g", p.StallFactor)
	}
}

func TestSitesFireAtExpectedRates(t *testing.T) {
	plan := &Plan{
		ReadFlipRate:   0.3,
		SweepSkipRate:  0.4,
		ProbeMissRate:  0.2,
		StuckCheckRate: 0.25,
		StallRate:      0.35,
	}
	in, err := NewInjector(plan, 99)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	var reads, probes, stuck, stalls int
	for i := 0; i < trials; i++ {
		if in.ReadFlip() > 0 {
			reads++
		}
		if in.ProbeFalseClean() {
			probes++
		}
		if in.LineStuckCheck() > 0 {
			stuck++
		}
		if in.StallFactor() > 1 {
			stalls++
		}
		in.SweepCutoff(100)
	}
	check := func(name string, hits int, want float64) {
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s fired at %.3f, want ~%.3f", name, got, want)
		}
	}
	check("ReadFlip", reads, plan.ReadFlipRate)
	check("ProbeFalseClean", probes, plan.ProbeMissRate)
	check("LineStuckCheck", stuck, plan.StuckCheckRate)
	check("Stall", stalls, plan.StallRate)
	c := in.Counts()
	wantSkip := plan.SweepSkipRate
	if got := float64(c.SweepsInterrupted) / trials; math.Abs(got-wantSkip) > 0.02 {
		t.Errorf("SweepCutoff interrupted at %.3f, want ~%.3f", got, wantSkip)
	}
	if c.ReadFaultVisits != int64(reads) || c.PhantomBits < c.ReadFaultVisits {
		t.Errorf("read counters inconsistent: %+v", c)
	}
	if c.LinesSkipped <= 0 || c.LinesSkipped > c.SweepsInterrupted*100 {
		t.Errorf("LinesSkipped out of range: %+v", c)
	}
	if !c.Any() {
		t.Error("Counts.Any() false after activity")
	}
}

// TestSiteIndependence checks that enabling one site does not perturb the
// draw sequence of another: the sweep-cutoff sequence must be identical
// whether or not read flips are also enabled.
func TestSiteIndependence(t *testing.T) {
	seq := func(p *Plan) []int {
		in, err := NewInjector(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for i := 0; i < 200; i++ {
			if p.ReadFlipRate > 0 {
				in.ReadFlip() // extra draws on the read stream only
			}
			out = append(out, in.SweepCutoff(64))
		}
		return out
	}
	a := seq(&Plan{SweepSkipRate: 0.5})
	b := seq(&Plan{SweepSkipRate: 0.5, ReadFlipRate: 0.9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() Counts {
		in, err := NewInjector(&Plan{ReadFlipRate: 0.5, SweepSkipRate: 0.5, StallRate: 0.5}, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			in.ReadFlip()
			in.SweepCutoff(32)
			if f := in.StallFactor(); f > 1 {
				in.NoteStallSeconds(100 * (f - 1))
			}
		}
		return in.Counts()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestPlanSeedVariesStreams(t *testing.T) {
	counts := func(planSeed uint64) Counts {
		in, err := NewInjector(&Plan{ReadFlipRate: 0.5, Seed: planSeed}, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			in.ReadFlip()
		}
		return in.Counts()
	}
	if counts(1) == counts(2) {
		t.Error("different plan seeds produced identical fault streams")
	}
}

func TestNoteHelpers(t *testing.T) {
	in, err := NewInjector(&Plan{StuckCheckRate: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if in.LineStuckCheck() != DefaultStuckCheckBits {
		t.Error("stuck line at rate 1 should always fire")
	}
	in.NoteStuckDecode()
	in.NoteInducedUE()
	in.NoteStallSeconds(12.5)
	c := in.Counts()
	if c.StuckDecodes != 1 || c.InducedUEs != 1 || c.StallSeconds != 12.5 {
		t.Errorf("note helpers not recorded: %+v", c)
	}
}
