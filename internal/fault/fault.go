// Package fault models imperfections in the scrub machinery itself.
//
// The simulator's baseline assumption — and the implicit assumption of the
// source paper — is that the scrub path is perfect: reads observe the true
// array state, every sweep visits every line, the lightweight checksum
// aliases only at its design probability, the ECC decoder is fed pristine
// check bits, and the controller launches sweeps exactly on schedule.
// Real controllers violate all five. HARP-style analyses show that
// imperfect error *detection* (miscorrections, aliasing, missed checks)
// can dominate fleet UE rates, so this package makes each imperfection a
// tunable, independently seeded fault site:
//
//   - ReadFlipRate: a scrub read is itself a read of an error-prone
//     medium; with this probability per visit the read observes phantom
//     extra error bits (transient — the array is untouched).
//   - SweepSkipRate: with this probability per sweep the sweep is
//     interrupted and silently skips a random suffix of its patrol order
//     (e.g. preempted by demand traffic and never resumed).
//   - ProbeMissRate: additional false-clean probability of the light
//     detection probe beyond the checksum's intrinsic aliasing, modelling
//     detector aliasing under correlated error patterns.
//   - StuckCheckRate: fraction of lines whose ECC check-bit storage is
//     itself stuck; a full decode of such a line works against corrupted
//     syndromes, eroding its effective correction margin by
//     StuckCheckBits.
//   - StallRate: with this probability per sweep the controller stalls
//     and the sweep takes StallFactor times its nominal interval,
//     stretching the window in which drift accumulates unchecked.
//
// All rates default to zero; a zero Plan (or a nil one) is defined to be
// bit-identical to a simulation without the package. The injector draws
// from its own per-site RNG streams, never from the simulator's RNG, so
// enabling one site does not perturb the event sequence of another.
package fault

import (
	"fmt"

	"repro/internal/stats"
)

// Default knob values applied by NewInjector when the Plan leaves the
// corresponding field zero.
const (
	// DefaultReadFlipMaxBits bounds phantom bits per faulty read.
	DefaultReadFlipMaxBits = 4
	// DefaultStuckCheckBits is the correction margin lost on a line with
	// stuck check bits.
	DefaultStuckCheckBits = 2
	// DefaultStallFactor stretches a stalled sweep's interval.
	DefaultStallFactor = 2.0
)

// Plan configures scrub-path fault injection. The zero value disables
// every site and is guaranteed not to perturb a run.
type Plan struct {
	// ReadFlipRate is the per-visit probability that the scrub read
	// observes phantom error bits. [0,1]
	ReadFlipRate float64
	// ReadFlipMaxBits bounds the phantom bits of one faulty read; a
	// faulty read observes Uniform{1..ReadFlipMaxBits} extra bits.
	// 0 selects DefaultReadFlipMaxBits.
	ReadFlipMaxBits int
	// SweepSkipRate is the per-sweep probability that the sweep is
	// interrupted, skipping a uniformly random suffix of the patrol. [0,1]
	SweepSkipRate float64
	// ProbeMissRate is the additional per-probe false-clean probability of
	// the lightweight detector, on top of its intrinsic aliasing. [0,1]
	ProbeMissRate float64
	// StuckCheckRate is the per-line probability that the line's ECC
	// check-bit storage is stuck for the whole run. [0,1]
	StuckCheckRate float64
	// StuckCheckBits is the correction capability lost on a stuck-check
	// line. 0 selects DefaultStuckCheckBits.
	StuckCheckBits int
	// StallRate is the per-sweep probability of a controller stall. [0,1]
	StallRate float64
	// StallFactor multiplies a stalled sweep's interval; must be >= 1
	// when set. 0 selects DefaultStallFactor.
	StallFactor float64
	// Seed offsets the injector's RNG streams so fault sequences can be
	// varied independently of the simulation seed (0 is a valid offset).
	Seed uint64
}

// Enabled reports whether any fault site has a non-zero rate.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.ReadFlipRate > 0 || p.SweepSkipRate > 0 || p.ProbeMissRate > 0 ||
		p.StuckCheckRate > 0 || p.StallRate > 0
}

// Validate checks the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	rates := []struct {
		name string
		v    float64
	}{
		{"ReadFlipRate", p.ReadFlipRate},
		{"SweepSkipRate", p.SweepSkipRate},
		{"ProbeMissRate", p.ProbeMissRate},
		{"StuckCheckRate", p.StuckCheckRate},
		{"StallRate", p.StallRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s must be in [0,1], got %g", r.name, r.v)
		}
	}
	if p.ReadFlipMaxBits < 0 {
		return fmt.Errorf("fault: ReadFlipMaxBits must be >= 0, got %d", p.ReadFlipMaxBits)
	}
	if p.StuckCheckBits < 0 {
		return fmt.Errorf("fault: StuckCheckBits must be >= 0, got %d", p.StuckCheckBits)
	}
	if p.StallFactor != 0 && p.StallFactor < 1 {
		return fmt.Errorf("fault: StallFactor must be >= 1 (or 0 for default), got %g", p.StallFactor)
	}
	return nil
}

// Counts attributes injected-fault activity so experiments can separate
// UEs caused by the medium (drift, wear) from UEs caused by the scrub
// machinery. All counters are zero when no plan is configured.
type Counts struct {
	// ReadFaultVisits is the number of scrub visits whose read saw
	// phantom bits; PhantomBits is their total.
	ReadFaultVisits int64
	PhantomBits     int64
	// SweepsInterrupted counts interrupted sweeps; LinesSkipped is the
	// total patrol positions those interruptions dropped.
	SweepsInterrupted int64
	LinesSkipped      int64
	// ProbeFalseCleans counts injected light-probe false-clean results
	// (beyond the checksum's intrinsic aliasing).
	ProbeFalseCleans int64
	// StuckCheckLines is the number of lines designated stuck-check at
	// initialisation; StuckDecodes counts full decodes performed on them
	// while they held errors (each a potential miscorrection).
	StuckCheckLines int64
	StuckDecodes    int64
	// Stalls counts controller stalls; StallSeconds is the extra sweep
	// time they added.
	Stalls       int64
	StallSeconds float64
	// InducedUEs counts UEs that would have been correctable but for an
	// injected fault (phantom read bits or stuck check bits).
	InducedUEs int64
}

// Any reports whether any fault fired during the run.
func (c *Counts) Any() bool {
	return c.ReadFaultVisits > 0 || c.SweepsInterrupted > 0 || c.ProbeFalseCleans > 0 ||
		c.StuckCheckLines > 0 || c.Stalls > 0
}

// Injector is the runtime face of a Plan: the simulator consults it at
// each fault site. Each site draws from its own independently seeded
// stream so sites do not perturb one another. Not safe for concurrent
// use — one Injector per simulation run.
type Injector struct {
	plan Plan

	readRNG  *stats.RNG
	sweepRNG *stats.RNG
	probeRNG *stats.RNG
	stuckRNG *stats.RNG
	stallRNG *stats.RNG

	counts Counts
}

// site salts for deriving independent per-site streams from one seed.
const (
	saltRead  = 0x5ca1ab1e0001
	saltSweep = 0x5ca1ab1e0002
	saltProbe = 0x5ca1ab1e0003
	saltStuck = 0x5ca1ab1e0004
	saltStall = 0x5ca1ab1e0005
)

// NewInjector builds an injector for the plan, or returns nil when the
// plan is nil or all-zero (the simulator treats a nil injector as "no
// fault path at all", guaranteeing bit-identical baseline behaviour).
// seed is the simulation seed; the plan's own Seed is mixed in so fault
// sequences can be re-rolled independently of the simulation.
func NewInjector(p *Plan, seed uint64) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	plan := *p
	if plan.ReadFlipMaxBits == 0 {
		plan.ReadFlipMaxBits = DefaultReadFlipMaxBits
	}
	if plan.StuckCheckBits == 0 {
		plan.StuckCheckBits = DefaultStuckCheckBits
	}
	if plan.StallFactor == 0 {
		plan.StallFactor = DefaultStallFactor
	}
	base := seed ^ (plan.Seed * 0x9e3779b97f4a7c15)
	return &Injector{
		plan:     plan,
		readRNG:  stats.NewRNG(base ^ saltRead),
		sweepRNG: stats.NewRNG(base ^ saltSweep),
		probeRNG: stats.NewRNG(base ^ saltProbe),
		stuckRNG: stats.NewRNG(base ^ saltStuck),
		stallRNG: stats.NewRNG(base ^ saltStall),
	}, nil
}

// Plan returns the effective plan (with defaults resolved).
func (in *Injector) Plan() Plan { return in.plan }

// Counts returns the fault activity accumulated so far.
func (in *Injector) Counts() Counts { return in.counts }

// ReadFlip returns the phantom error bits this scrub read observes
// (0 almost always; the array state is untouched either way).
func (in *Injector) ReadFlip() int {
	if in.plan.ReadFlipRate <= 0 || in.readRNG.Float64() >= in.plan.ReadFlipRate {
		return 0
	}
	bits := 1 + in.readRNG.Intn(in.plan.ReadFlipMaxBits)
	in.counts.ReadFaultVisits++
	in.counts.PhantomBits += int64(bits)
	return bits
}

// SweepCutoff returns the number of patrol positions this sweep actually
// covers: slots when the sweep completes, or a uniformly random cutoff in
// [0, slots) when it is interrupted.
func (in *Injector) SweepCutoff(slots int) int {
	if in.plan.SweepSkipRate <= 0 || in.sweepRNG.Float64() >= in.plan.SweepSkipRate {
		return slots
	}
	cut := in.sweepRNG.Intn(slots)
	in.counts.SweepsInterrupted++
	in.counts.LinesSkipped += int64(slots - cut)
	return cut
}

// ProbeFalseClean reports whether the light probe on an erroneous line
// falsely reads clean due to an injected detector fault.
func (in *Injector) ProbeFalseClean() bool {
	if in.plan.ProbeMissRate <= 0 || in.probeRNG.Float64() >= in.plan.ProbeMissRate {
		return false
	}
	in.counts.ProbeFalseCleans++
	return true
}

// LineStuckCheck decides, once per line at initialisation, whether the
// line's check-bit storage is stuck; it returns the correction margin the
// line loses (0 for healthy lines).
func (in *Injector) LineStuckCheck() int {
	if in.plan.StuckCheckRate <= 0 || in.stuckRNG.Float64() >= in.plan.StuckCheckRate {
		return 0
	}
	in.counts.StuckCheckLines++
	return in.plan.StuckCheckBits
}

// NoteStuckDecode records a full decode performed against stuck check
// bits while the line held errors.
func (in *Injector) NoteStuckDecode() { in.counts.StuckDecodes++ }

// NoteInducedUE records a UE that only the injected fault made
// uncorrectable.
func (in *Injector) NoteInducedUE() { in.counts.InducedUEs++ }

// StallFactor returns the interval multiplier for the upcoming sweep:
// 1 normally, the plan's StallFactor when the controller stalls.
// The caller reports the stretched seconds via NoteStallSeconds.
func (in *Injector) StallFactor() float64 {
	if in.plan.StallRate <= 0 || in.stallRNG.Float64() >= in.plan.StallRate {
		return 1
	}
	in.counts.Stalls++
	return in.plan.StallFactor
}

// NoteStallSeconds accumulates the extra sweep time a stall added.
func (in *Injector) NoteStallSeconds(extra float64) { in.counts.StallSeconds += extra }
