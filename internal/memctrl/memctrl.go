// Package memctrl is the analytic memory-controller timing model used to
// estimate the performance cost of scrub traffic: how much bank bandwidth
// patrol reads and write-backs consume, and how much demand requests slow
// down as a result. The reliability simulator (internal/sim) produces
// scrub operation *rates*; this package converts them into utilisation and
// slowdown figures (experiment F9).
package memctrl

import (
	"fmt"
	"math"
)

// Params holds device timing.
type Params struct {
	// ReadLatencyNs is the bank-occupancy time of one line read.
	ReadLatencyNs float64
	// WriteLatencyNs is the bank-occupancy time of one line write
	// (MLC PCM iterative program-and-verify: microseconds).
	WriteLatencyNs float64
	// Banks is the number of banks serving requests in parallel.
	Banks int
	// LineBytes is the transfer size per request.
	LineBytes int
}

// DefaultParams returns MLC-PCM-class timing: 150 ns reads, 1 µs writes,
// 8 banks, 64-byte lines.
func DefaultParams() Params {
	return Params{
		ReadLatencyNs:  150,
		WriteLatencyNs: 1000,
		Banks:          8,
		LineBytes:      64,
	}
}

// Validate checks the timing parameters.
func (p *Params) Validate() error {
	if p.ReadLatencyNs <= 0 || p.WriteLatencyNs <= 0 {
		return fmt.Errorf("memctrl: latencies must be positive")
	}
	if p.Banks < 1 {
		return fmt.Errorf("memctrl: need at least one bank")
	}
	if p.LineBytes < 1 {
		return fmt.Errorf("memctrl: LineBytes must be positive")
	}
	return nil
}

// Model evaluates utilisation and slowdown.
type Model struct {
	p Params
}

// NewModel validates params and builds a model.
func NewModel(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// MustModel is NewModel that panics on error.
func MustModel(p Params) *Model {
	m, err := NewModel(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns a copy of the model's parameters.
func (m *Model) Params() Params { return m.p }

// Rates describes steady-state request rates in operations per second.
type Rates struct {
	DemandReads  float64
	DemandWrites float64
	ScrubReads   float64
	ScrubWrites  float64
}

// ScrubReadRate returns the patrol read rate (lines/sec) needed to sweep
// totalLines once per intervalSec.
func ScrubReadRate(totalLines int, intervalSec float64) float64 {
	if intervalSec <= 0 {
		return math.Inf(1)
	}
	return float64(totalLines) / intervalSec
}

// Utilization returns the aggregate bank utilisation in [0, ∞): the
// fraction of total bank-time the given request rates consume. Values
// above 1 mean the configuration is infeasible.
func (m *Model) Utilization(r Rates) float64 {
	readS := m.p.ReadLatencyNs * 1e-9
	writeS := m.p.WriteLatencyNs * 1e-9
	busy := (r.DemandReads+r.ScrubReads)*readS + (r.DemandWrites+r.ScrubWrites)*writeS
	return busy / float64(m.p.Banks)
}

// ScrubShare returns the fraction of total utilisation attributable to
// scrub traffic (0 if there is no traffic at all).
func (m *Model) ScrubShare(r Rates) float64 {
	total := m.Utilization(r)
	if total == 0 {
		return 0
	}
	scrubOnly := m.Utilization(Rates{ScrubReads: r.ScrubReads, ScrubWrites: r.ScrubWrites})
	return scrubOnly / total
}

// SojournNs returns the mean demand-request sojourn time (wait + service)
// under the given rates, using the M/G/1 Pollaczek–Khinchine formula per
// bank: W = λ·E[S²] / (2·(1-ρ)). Service times are deterministic per
// class (read vs write), which makes E[S²] the class-weighted second
// moment — the term that lets rare slow PCM writes dominate waiting time.
// Returns +Inf at or beyond saturation and 0 when there is no demand.
func (m *Model) SojournNs(r Rates) float64 {
	readS := m.p.ReadLatencyNs * 1e-9
	writeS := m.p.WriteLatencyNs * 1e-9
	demandRate := r.DemandReads + r.DemandWrites
	totalRate := demandRate + r.ScrubReads + r.ScrubWrites
	if totalRate == 0 || demandRate == 0 {
		return 0
	}
	// Per-bank arrival process (requests spread uniformly over banks).
	lambda := totalRate / float64(m.p.Banks)
	es := ((r.DemandReads+r.ScrubReads)*readS + (r.DemandWrites+r.ScrubWrites)*writeS) / totalRate
	es2 := ((r.DemandReads+r.ScrubReads)*readS*readS + (r.DemandWrites+r.ScrubWrites)*writeS*writeS) / totalRate
	rho := lambda * es
	if rho >= 1 {
		return math.Inf(1)
	}
	wait := lambda * es2 / (2 * (1 - rho))
	demandService := (r.DemandReads*readS + r.DemandWrites*writeS) / demandRate
	return (demandService + wait) * 1e9
}

// Slowdown estimates the demand-latency inflation caused by scrub traffic:
// the ratio of the P-K sojourn time with scrub to the sojourn time under
// demand alone. Returns +Inf when scrub (or demand alone) saturates the
// banks, and exactly 1 when there is no scrub traffic or no demand.
func (m *Model) Slowdown(r Rates) float64 {
	demandOnly := Rates{DemandReads: r.DemandReads, DemandWrites: r.DemandWrites}
	base := m.SojournNs(demandOnly)
	if base == 0 {
		return 1 // no demand to slow down
	}
	full := m.SojournNs(r)
	if math.IsInf(base, 1) || math.IsInf(full, 1) {
		return math.Inf(1)
	}
	return full / base
}

// BandwidthMBps converts a line rate (lines/sec) into MB/s of array traffic.
func (m *Model) BandwidthMBps(lineRate float64) float64 {
	return lineRate * float64(m.p.LineBytes) / 1e6
}

// MaxScrubRate returns the highest patrol read rate (lines/sec) that keeps
// total utilisation at or below maxUtil given the demand load, assuming
// scrub writes occur on a fraction writeFrac of patrol reads. Returns 0 if
// demand alone exceeds the budget.
func (m *Model) MaxScrubRate(demandReads, demandWrites, writeFrac, maxUtil float64) float64 {
	readS := m.p.ReadLatencyNs * 1e-9
	writeS := m.p.WriteLatencyNs * 1e-9
	demandBusy := demandReads*readS + demandWrites*writeS
	budget := maxUtil*float64(m.p.Banks) - demandBusy
	if budget <= 0 {
		return 0
	}
	perScrub := readS + writeFrac*writeS
	return budget / perScrub
}

// MinScrubInterval returns the shortest sweep interval (seconds) for
// totalLines that keeps utilisation within maxUtil — the feasibility bound
// every scrub policy must respect.
func (m *Model) MinScrubInterval(totalLines int, demandReads, demandWrites, writeFrac, maxUtil float64) float64 {
	rate := m.MaxScrubRate(demandReads, demandWrites, writeFrac, maxUtil)
	if rate <= 0 {
		return math.Inf(1)
	}
	return float64(totalLines) / rate
}
