package memctrl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// QueueSim is a discrete-event simulation of the banked memory system:
// Poisson demand and scrub arrivals, random bank assignment, FCFS service
// per bank with deterministic read/write service times. It exists to
// validate the closed-form Slowdown approximation — the reproduction's
// F9 numbers come from the analytic model, and TestQueueSimValidates*
// pins the two against each other.
type QueueSim struct {
	p Params
}

// NewQueueSim builds a simulator over the given timing parameters.
func NewQueueSim(p Params) (*QueueSim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &QueueSim{p: p}, nil
}

// QueueStats is the outcome of a queue simulation.
type QueueStats struct {
	// DemandLatencyNs is the mean sojourn time (wait + service) of demand
	// requests.
	DemandLatencyNs float64
	// DemandServiceNs is the mean bare service time of demand requests —
	// the zero-load latency.
	DemandServiceNs float64
	// Utilization is the measured fraction of bank-time spent busy.
	Utilization float64
	// Requests is the number of demand requests measured.
	Requests int64
}

// Slowdown returns the measured latency inflation relative to zero load.
func (s QueueStats) Slowdown() float64 {
	if s.DemandServiceNs == 0 {
		return 1
	}
	return s.DemandLatencyNs / s.DemandServiceNs
}

// event is one request arrival.
type event struct {
	at      float64 // arrival time, seconds
	service float64 // service time, seconds
	demand  bool
}

// Run simulates horizon seconds of the given request rates and returns
// demand latency statistics. Deterministic for a given seed.
func (q *QueueSim) Run(r Rates, horizonSec float64, seed uint64) (QueueStats, error) {
	if horizonSec <= 0 {
		return QueueStats{}, fmt.Errorf("memctrl: horizon must be positive")
	}
	rng := stats.NewRNG(seed)
	readS := q.p.ReadLatencyNs * 1e-9
	writeS := q.p.WriteLatencyNs * 1e-9

	// Generate all arrivals up front (four independent Poisson streams),
	// then process in time order.
	var events []event
	gen := func(rate, service float64, demand bool) {
		if rate <= 0 {
			return
		}
		t := 0.0
		for {
			t += rng.Exponential(rate)
			if t >= horizonSec {
				return
			}
			events = append(events, event{at: t, service: service, demand: demand})
		}
	}
	gen(r.DemandReads, readS, true)
	gen(r.DemandWrites, writeS, true)
	gen(r.ScrubReads, readS, false)
	gen(r.ScrubWrites, writeS, false)
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })

	bankFree := make([]float64, q.p.Banks)
	var st QueueStats
	var demandSojourn, demandService, busy float64
	for _, ev := range events {
		bank := rng.Intn(q.p.Banks)
		start := math.Max(ev.at, bankFree[bank])
		finish := start + ev.service
		bankFree[bank] = finish
		busy += ev.service
		if ev.demand {
			demandSojourn += finish - ev.at
			demandService += ev.service
			st.Requests++
		}
	}
	if st.Requests > 0 {
		st.DemandLatencyNs = demandSojourn / float64(st.Requests) * 1e9
		st.DemandServiceNs = demandService / float64(st.Requests) * 1e9
	}
	st.Utilization = busy / (horizonSec * float64(q.p.Banks))
	return st, nil
}
