package memctrl

import (
	"math"
	"testing"
)

func TestQueueSimValidation(t *testing.T) {
	p := DefaultParams()
	p.Banks = 0
	if _, err := NewQueueSim(p); err == nil {
		t.Error("invalid params accepted")
	}
	q, err := NewQueueSim(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(Rates{}, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestQueueSimZeroLoad(t *testing.T) {
	q, _ := NewQueueSim(DefaultParams())
	st, err := q.Run(Rates{}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 0 || st.Utilization != 0 {
		t.Errorf("empty run produced activity: %+v", st)
	}
	if st.Slowdown() != 1 {
		t.Errorf("empty run slowdown = %v", st.Slowdown())
	}
}

func TestQueueSimLightLoadNoQueueing(t *testing.T) {
	// At trivially low arrival rates, latency equals service time.
	q, _ := NewQueueSim(DefaultParams())
	st, err := q.Run(Rates{DemandReads: 100}, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Fatal("no requests at 100/s over 50s")
	}
	if s := st.Slowdown(); s > 1.001 {
		t.Errorf("light load slowdown = %v, want ~1", s)
	}
	if math.Abs(st.DemandServiceNs-DefaultParams().ReadLatencyNs) > 1e-6 {
		t.Errorf("read-only service time = %v ns", st.DemandServiceNs)
	}
}

func TestQueueSimUtilizationMatchesAnalytic(t *testing.T) {
	p := DefaultParams()
	q, _ := NewQueueSim(p)
	m := MustModel(p)
	r := Rates{DemandReads: 2e6, DemandWrites: 2e5, ScrubReads: 5e5, ScrubWrites: 2e4}
	st, err := q.Run(r, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Utilization(r)
	if math.Abs(st.Utilization-want)/want > 0.05 {
		t.Errorf("measured utilization %.4f vs analytic %.4f", st.Utilization, want)
	}
}

func TestQueueSimValidatesPollaczekKhinchine(t *testing.T) {
	// The discrete-event simulation must agree with the analytic M/G/1
	// sojourn model on absolute demand latency within a few percent, and
	// with the Slowdown ratio.
	p := DefaultParams()
	q, _ := NewQueueSim(p)
	m := MustModel(p)
	demand := Rates{DemandReads: 3e6, DemandWrites: 3e5}
	baseSim, err := q.Run(demand, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	prevSim := 0.0
	for _, scrub := range []float64{0, 1e6, 3e6} {
		r := demand
		r.ScrubReads = scrub
		r.ScrubWrites = scrub * 0.03
		st, err := q.Run(r, 0.3, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Absolute sojourn agreement.
		ana := m.SojournNs(r)
		if math.Abs(st.DemandLatencyNs-ana)/ana > 0.10 {
			t.Errorf("scrub=%g: sim sojourn %.1f ns vs P-K %.1f ns", scrub, st.DemandLatencyNs, ana)
		}
		// Slowdown-ratio agreement.
		simSlow := st.DemandLatencyNs / baseSim.DemandLatencyNs
		if simSlow < prevSim-0.005 {
			t.Errorf("simulated slowdown not monotone at scrub=%g", scrub)
		}
		prevSim = simSlow
		anaSlow := m.Slowdown(r)
		if math.Abs(simSlow-anaSlow) > 0.05*anaSlow {
			t.Errorf("scrub=%g: sim slowdown %.4f vs analytic %.4f", scrub, simSlow, anaSlow)
		}
	}
}

func TestQueueSimDeterministicPerSeed(t *testing.T) {
	q, _ := NewQueueSim(DefaultParams())
	r := Rates{DemandReads: 1e6, ScrubReads: 1e5}
	a, err := q.Run(r, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Run(r, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different stats")
	}
	c, _ := q.Run(r, 0.2, 43)
	if a == c {
		t.Log("different seeds produced identical stats (unlikely but possible)")
	}
}
