package memctrl

import (
	"math"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.ReadLatencyNs = 0 },
		func(p *Params) { p.WriteLatencyNs = -1 },
		func(p *Params) { p.Banks = 0 },
		func(p *Params) { p.LineBytes = 0 },
	}
	for i, mut := range cases {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestScrubReadRate(t *testing.T) {
	if got := ScrubReadRate(3600, 3600); got != 1 {
		t.Errorf("rate = %g, want 1 line/s", got)
	}
	if !math.IsInf(ScrubReadRate(100, 0), 1) {
		t.Error("zero interval should be infinite rate")
	}
}

func TestUtilizationArithmetic(t *testing.T) {
	m := MustModel(Params{ReadLatencyNs: 100, WriteLatencyNs: 1000, Banks: 2, LineBytes: 64})
	// 1e6 reads/s × 100ns = 0.1 bank-seconds/s; 1e5 writes/s × 1µs = 0.1;
	// over 2 banks → 0.1.
	r := Rates{DemandReads: 1e6, DemandWrites: 1e5}
	if got := m.Utilization(r); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("utilization = %g, want 0.1", got)
	}
	if got := m.Utilization(Rates{}); got != 0 {
		t.Errorf("empty utilization = %g", got)
	}
}

func TestScrubShare(t *testing.T) {
	m := MustModel(DefaultParams())
	r := Rates{DemandReads: 1e6, ScrubReads: 1e6}
	if got := m.ScrubShare(r); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("share = %g, want 0.5", got)
	}
	if got := m.ScrubShare(Rates{}); got != 0 {
		t.Errorf("share of nothing = %g", got)
	}
}

func TestSlowdownMonotoneInScrubRate(t *testing.T) {
	m := MustModel(DefaultParams())
	demand := Rates{DemandReads: 5e6, DemandWrites: 5e5}
	prev := 0.0
	for _, scrub := range []float64{0, 1e5, 1e6, 5e6} {
		r := demand
		r.ScrubReads = scrub
		s := m.Slowdown(r)
		if s < 1 {
			t.Fatalf("slowdown %g < 1", s)
		}
		if s < prev {
			t.Fatalf("slowdown not monotone in scrub rate")
		}
		prev = s
	}
}

func TestSlowdownNoScrubIsUnity(t *testing.T) {
	m := MustModel(DefaultParams())
	s := m.Slowdown(Rates{DemandReads: 1e6})
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("no-scrub slowdown = %g, want 1", s)
	}
}

func TestSlowdownSaturation(t *testing.T) {
	m := MustModel(Params{ReadLatencyNs: 100, WriteLatencyNs: 1000, Banks: 1, LineBytes: 64})
	// Demand alone: 0.5; scrub pushes past 1.
	r := Rates{DemandReads: 5e6, ScrubReads: 6e6}
	if !math.IsInf(m.Slowdown(r), 1) {
		t.Error("saturated system should report infinite slowdown")
	}
	// Demand alone saturates.
	if !math.IsInf(m.Slowdown(Rates{DemandReads: 2e7}), 1) {
		t.Error("demand-saturated system should report infinite slowdown")
	}
}

func TestBandwidthMBps(t *testing.T) {
	m := MustModel(DefaultParams())
	if got := m.BandwidthMBps(1e6); math.Abs(got-64) > 1e-9 {
		t.Errorf("bandwidth = %g MB/s, want 64", got)
	}
}

func TestMaxScrubRateAndMinInterval(t *testing.T) {
	m := MustModel(Params{ReadLatencyNs: 100, WriteLatencyNs: 1000, Banks: 4, LineBytes: 64})
	// No demand, no writes: budget = 0.5×4 = 2 bank-s/s; per scrub read
	// 100ns → 2e7 reads/s.
	rate := m.MaxScrubRate(0, 0, 0, 0.5)
	if math.Abs(rate-2e7) > 1 {
		t.Errorf("max scrub rate = %g, want 2e7", rate)
	}
	// With write-backs on every read the per-op cost is 1.1µs.
	rateW := m.MaxScrubRate(0, 0, 1.0, 0.5)
	if math.Abs(rateW-2.0/1.1e-6)/rateW > 1e-9 {
		t.Errorf("max scrub rate with writes = %g", rateW)
	}
	// Interval for 2e7 lines at 2e7 lines/s is 1 second.
	if got := m.MinScrubInterval(2e7, 0, 0, 0, 0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("min interval = %g, want 1", got)
	}
	// Demand exceeding the budget makes scrub infeasible.
	if got := m.MaxScrubRate(1e9, 0, 0, 0.5); got != 0 {
		t.Errorf("overloaded budget should return 0, got %g", got)
	}
	if !math.IsInf(m.MinScrubInterval(100, 1e9, 0, 0, 0.5), 1) {
		t.Error("infeasible interval should be +Inf")
	}
}

func TestMoreBanksReduceUtilization(t *testing.T) {
	p := DefaultParams()
	p.Banks = 8
	m8 := MustModel(p)
	p.Banks = 16
	m16 := MustModel(p)
	r := Rates{DemandReads: 1e6, ScrubReads: 1e5, ScrubWrites: 1e4}
	if !(m16.Utilization(r) < m8.Utilization(r)) {
		t.Error("doubling banks should halve utilisation")
	}
}
