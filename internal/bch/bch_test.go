package bch

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestKnownCodeParameters(t *testing.T) {
	cases := []struct {
		m, t int
		n, k int
	}{
		{4, 1, 15, 11},
		{4, 2, 15, 7},
		{4, 3, 15, 5},
		{5, 2, 31, 21},
		{6, 2, 63, 51},
		{7, 2, 127, 113},
		{8, 2, 255, 239},
		{10, 4, 1023, 983},
		{10, 8, 1023, 943},
	}
	for _, c := range cases {
		code, err := New(c.m, c.t)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", c.m, c.t, err)
		}
		if code.N() != c.n || code.K() != c.k {
			t.Errorf("BCH(m=%d,t=%d): (n,k) = (%d,%d), want (%d,%d)",
				c.m, c.t, code.N(), code.K(), c.n, c.k)
		}
		if code.ParityBits() != c.n-c.k {
			t.Errorf("parity bits wrong for m=%d t=%d", c.m, c.t)
		}
	}
}

func TestGeneratorGF16T1(t *testing.T) {
	// BCH(15,11,t=1) generator is x^4 + x + 1.
	code := MustNew(4, 1)
	want := []byte{1, 1, 0, 0, 1}
	got := code.Generator()
	if len(got) != len(want) {
		t.Fatalf("generator length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("generator = %v, want %v", got, want)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(4, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(99, 2); err == nil {
		t.Error("unsupported m accepted")
	}
	if _, err := New(4, 8); err == nil {
		t.Error("t too large for m=4 accepted (parity would exceed n)")
	}
}

func TestForPayload(t *testing.T) {
	code, err := ForPayload(512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if code.K() < 512 {
		t.Fatalf("ForPayload returned k=%d < 512", code.K())
	}
	if code.field.M() != 10 {
		t.Errorf("expected GF(2^10) for 512-bit payload, got m=%d", code.field.M())
	}
	if _, err := ForPayload(0, 2); err == nil {
		t.Error("zero payload accepted")
	}
}

func TestEncodeProducesValidCodeword(t *testing.T) {
	code := MustNew(6, 3)
	r := stats.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		msgBits := 1 + r.Intn(code.K())
		msg := randomBits(r, msgBits)
		cw, err := code.Encode(msg, msgBits)
		if err != nil {
			t.Fatal(err)
		}
		if code.Detect(cw, msgBits) {
			t.Fatalf("fresh codeword flagged as erroneous (msgBits=%d)", msgBits)
		}
		n, err := code.Decode(cw, msgBits)
		if err != nil || n != 0 {
			t.Fatalf("clean decode: corrected=%d err=%v", n, err)
		}
	}
}

func TestEncodeArgValidation(t *testing.T) {
	code := MustNew(5, 2)
	if _, err := code.Encode([]byte{1}, 0); err == nil {
		t.Error("msgBits=0 accepted")
	}
	if _, err := code.Encode([]byte{1}, code.K()+1); err == nil {
		t.Error("msgBits>K accepted")
	}
	if _, err := code.Encode([]byte{1}, 20); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := code.Decode([]byte{0}, 0); err == nil {
		t.Error("Decode msgBits=0 accepted")
	}
}

func TestRoundTripMessageExtraction(t *testing.T) {
	code := MustNew(8, 2)
	r := stats.NewRNG(2)
	msgBits := 64
	msg := randomBits(r, msgBits)
	cw, err := code.Encode(msg, msgBits)
	if err != nil {
		t.Fatal(err)
	}
	back := code.ExtractMessage(cw, msgBits)
	for i := range msg {
		if msg[i] != back[i] {
			t.Fatalf("byte %d: %02x != %02x", i, msg[i], back[i])
		}
	}
}

func TestCorrectsUpToT(t *testing.T) {
	configs := []struct{ m, t, msgBits int }{
		{5, 1, 20},
		{6, 2, 40},
		{7, 3, 100},
		{8, 4, 200},
		{10, 4, 512},
		{10, 8, 512},
	}
	r := stats.NewRNG(3)
	for _, cfg := range configs {
		code := MustNew(cfg.m, cfg.t)
		for nerr := 1; nerr <= cfg.t; nerr++ {
			for trial := 0; trial < 10; trial++ {
				msg := randomBits(r, cfg.msgBits)
				cw, err := code.Encode(msg, cfg.msgBits)
				if err != nil {
					t.Fatal(err)
				}
				total := code.ParityBits() + cfg.msgBits
				flipRandomBits(r, cw, total, nerr)
				if !code.Detect(cw, cfg.msgBits) {
					t.Fatalf("m=%d t=%d: %d-bit error not detected", cfg.m, cfg.t, nerr)
				}
				got, err := code.Decode(cw, cfg.msgBits)
				if err != nil {
					t.Fatalf("m=%d t=%d nerr=%d: decode failed: %v", cfg.m, cfg.t, nerr, err)
				}
				if got != nerr {
					t.Fatalf("m=%d t=%d: corrected %d, want %d", cfg.m, cfg.t, got, nerr)
				}
				back := code.ExtractMessage(cw, cfg.msgBits)
				for i := range msg {
					if msg[i] != back[i] {
						t.Fatalf("m=%d t=%d nerr=%d: message corrupted after decode", cfg.m, cfg.t, nerr)
					}
				}
			}
		}
	}
}

func TestBeyondTDetectedOrFails(t *testing.T) {
	// With t+1 or more errors the decoder must not silently return a wrong
	// message while reporting success with <= t corrections of the
	// *original* codeword. Acceptable outcomes: ErrUncorrectable, or a
	// miscorrection onto a DIFFERENT valid codeword (inherent to bounded-
	// distance decoding). What we verify: if Decode claims success, the
	// result is a valid codeword.
	code := MustNew(6, 2)
	r := stats.NewRNG(4)
	const msgBits = 40
	uncorrectable := 0
	for trial := 0; trial < 200; trial++ {
		msg := randomBits(r, msgBits)
		cw, err := code.Encode(msg, msgBits)
		if err != nil {
			t.Fatal(err)
		}
		total := code.ParityBits() + msgBits
		flipRandomBits(r, cw, total, code.T()+1+r.Intn(3))
		n, err := code.Decode(cw, msgBits)
		if err != nil {
			uncorrectable++
			continue
		}
		if n > code.T() {
			t.Fatalf("claimed to correct %d > t", n)
		}
		if code.Detect(cw, msgBits) {
			t.Fatal("Decode returned success but left an invalid codeword")
		}
	}
	if uncorrectable == 0 {
		t.Error("no beyond-t pattern was flagged uncorrectable in 200 trials")
	}
}

func TestShortenedDecodeRejectsPhantomPositions(t *testing.T) {
	// Errors decoded into the shortened (always-zero) region must fail.
	// Construct by brute force: flip t+1 bits until we observe failures;
	// mainly this exercises the support check in chien().
	code := MustNew(5, 1) // BCH(31,26): heavy shortening below
	r := stats.NewRNG(5)
	const msgBits = 4 // shortened from 26 to 4 data bits
	sawFailure := false
	for trial := 0; trial < 500; trial++ {
		msg := randomBits(r, msgBits)
		cw, _ := code.Encode(msg, msgBits)
		total := code.ParityBits() + msgBits
		flipRandomBits(r, cw, total, 2) // beyond t=1
		if _, err := code.Decode(cw, msgBits); err != nil {
			sawFailure = true
			break
		}
	}
	if !sawFailure {
		t.Error("expected at least one uncorrectable verdict for 2-bit errors on t=1 code")
	}
}

func TestDetectMatchesDecodeCleanliness(t *testing.T) {
	code := MustNew(6, 2)
	r := stats.NewRNG(6)
	prop := func(seed uint64, nerrRaw uint8) bool {
		rr := stats.NewRNG(seed)
		const msgBits = 45
		msg := randomBits(rr, msgBits)
		cw, err := code.Encode(msg, msgBits)
		if err != nil {
			return false
		}
		nerr := int(nerrRaw % 3) // 0..2, all within t
		total := code.ParityBits() + msgBits
		flipRandomBits(r, cw, total, nerr)
		detected := code.Detect(cw, msgBits)
		return detected == (nerr > 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCodewordBytes(t *testing.T) {
	code := MustNew(10, 4)
	got := code.CodewordBytes(512)
	want := (512 + code.ParityBits() + 7) / 8
	if got != want {
		t.Errorf("CodewordBytes = %d, want %d", got, want)
	}
}

// randomBits returns a buffer with nbits random bits (LSB-first packing).
func randomBits(r *stats.RNG, nbits int) []byte {
	buf := make([]byte, (nbits+7)/8)
	for i := range buf {
		buf[i] = byte(r.Uint64())
	}
	// Zero bits beyond nbits so comparisons are exact.
	if rem := nbits % 8; rem != 0 {
		buf[len(buf)-1] &= byte(1<<uint(rem)) - 1
	}
	return buf
}

// flipRandomBits flips exactly n distinct bits within [0, total).
func flipRandomBits(r *stats.RNG, buf []byte, total, n int) {
	flipped := map[int]bool{}
	for len(flipped) < n {
		pos := r.Intn(total)
		if flipped[pos] {
			continue
		}
		flipped[pos] = true
		flipBit(buf, pos)
	}
}

func BenchmarkEncode512T4(b *testing.B) {
	code := MustNew(10, 4)
	r := stats.NewRNG(7)
	msg := randomBits(r, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(msg, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode512T4With2Errors(b *testing.B) {
	code := MustNew(10, 4)
	r := stats.NewRNG(8)
	msg := randomBits(r, 512)
	clean, _ := code.Encode(msg, 512)
	total := code.ParityBits() + 512
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := append([]byte(nil), clean...)
		flipRandomBits(r, cw, total, 2)
		if _, err := code.Decode(cw, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetect512Clean(b *testing.B) {
	code := MustNew(10, 4)
	r := stats.NewRNG(9)
	msg := randomBits(r, 512)
	cw, _ := code.Encode(msg, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code.Detect(cw, 512) {
			b.Fatal("clean word detected as dirty")
		}
	}
}
