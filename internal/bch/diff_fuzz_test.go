package bch

import (
	"bytes"
	"errors"
	"testing"
)

// diffCodes are the shapes the differential targets exercise: the on-die
// word code's field (GF(2^7), as bch.ForPayload(64, 2) selects) and the
// fuzz-sized GF(2^8) code at two strengths.
var diffCodes = []struct {
	m, t, msgBits int
}{
	{7, 2, 64},   // on-die word shape
	{8, 2, 100},  // shortened, odd bit count (partial final byte)
	{8, 4, 128},  // line-style strength
}

// FuzzBCHDecodeDifferential pins the kernel path to the scalar reference
// bit for bit: for every fuzzer-chosen message, error weight (0..t+2,
// crossing the capability boundary into the miscorrection regime the
// on-die layer depends on) and placement — including forced flips at the
// shortened-code support edges — Encode, Syndrome, Detect and Decode
// must agree between Code and CodeRef: same corrected-bit count, same
// verdict, byte-identical buffers.
func FuzzBCHDecodeDifferential(f *testing.F) {
	codes := make([]*Code, len(diffCodes))
	for i, d := range diffCodes {
		codes[i] = MustNew(d.m, d.t)
	}

	f.Add([]byte{0x00}, byte(0), uint64(1), byte(0))
	f.Add([]byte{0xff, 0x3c}, byte(1), uint64(2), byte(0))
	f.Add([]byte("edge-low"), byte(2), uint64(3), byte(2))        // forced flip at position 0
	f.Add([]byte("edge-high"), byte(2), uint64(4), byte(1))       // forced flip at support-1
	f.Add([]byte("edge-both"), byte(3), uint64(5), byte(3))       // both support edges
	f.Add([]byte("at-capability"), byte(4), uint64(42), byte(4))  // weight t on the t=4 shape
	f.Add([]byte("overflow-t1"), byte(5), uint64(7), byte(8))     // weight t+1
	f.Add([]byte("overflow-t2"), byte(6), uint64(0xbeef), byte(8))
	f.Fuzz(func(t *testing.T, msg []byte, nraw byte, posSeed uint64, edge byte) {
		for ci, d := range diffCodes {
			code := codes[ci]
			ref := code.Ref()
			msgBits := d.msgBits
			support := code.ParityBits() + msgBits

			buf := make([]byte, (msgBits+7)/8)
			copy(buf, msg)
			encFast, errF := code.Encode(buf, msgBits)
			encRef, errR := ref.Encode(buf, msgBits)
			if (errF == nil) != (errR == nil) {
				t.Fatalf("m=%d t=%d: encode verdicts differ: %v vs %v", d.m, d.t, errF, errR)
			}
			if errF != nil {
				continue
			}
			if !bytes.Equal(encFast, encRef) {
				t.Fatalf("m=%d t=%d: encode buffers differ\n fast %x\n ref  %x", d.m, d.t, encFast, encRef)
			}

			// Corrupt with weight 0..t+2, optionally pinning flips to the
			// shortened support's edge positions.
			nflips := int(nraw) % (code.T() + 3)
			rng := fuzzRNG(posSeed)
			cw := append([]byte(nil), encFast...)
			forced := 0
			if edge&1 != 0 {
				flipBit(cw, support-1)
				forced++
			}
			if edge&2 != 0 && support > 1 {
				flipBit(cw, 0)
				forced++
			}
			if extra := nflips - forced; extra > 0 {
				for _, p := range distinctPositions(&rng, extra, support) {
					flipBit(cw, p)
				}
			}

			sFast := code.Syndrome(cw, msgBits)
			sRef := ref.Syndrome(cw, msgBits)
			for j := range sFast {
				if sFast[j] != sRef[j] {
					t.Fatalf("m=%d t=%d: syndrome %d differs: %#x vs %#x", d.m, d.t, j, sFast[j], sRef[j])
				}
			}
			if df, dr := code.Detect(cw, msgBits), ref.Detect(cw, msgBits); df != dr {
				t.Fatalf("m=%d t=%d: detect verdicts differ: %v vs %v", d.m, d.t, df, dr)
			}

			cwFast := append([]byte(nil), cw...)
			cwRef := append([]byte(nil), cw...)
			nF, decF := code.Decode(cwFast, msgBits)
			nR, decR := ref.Decode(cwRef, msgBits)
			if (decF == nil) != (decR == nil) {
				t.Fatalf("m=%d t=%d: decode verdicts differ: %v vs %v", d.m, d.t, decF, decR)
			}
			if decF != nil {
				if !errors.Is(decF, ErrUncorrectable) || !errors.Is(decR, ErrUncorrectable) {
					t.Fatalf("m=%d t=%d: unexpected decode errors: %v vs %v", d.m, d.t, decF, decR)
				}
				continue // corrected buffers are unspecified on refusal
			}
			if nF != nR {
				t.Fatalf("m=%d t=%d: corrected-bit counts differ: %d vs %d", d.m, d.t, nF, nR)
			}
			if !bytes.Equal(cwFast, cwRef) {
				t.Fatalf("m=%d t=%d: corrected buffers differ\n fast %x\n ref  %x", d.m, d.t, cwFast, cwRef)
			}
		}
	})
}
