package bch

import "repro/internal/gf2"

// CodeRef is the scalar reference implementation of a Code: the original
// bit-serial LFSR encoder, per-bit syndrome accumulation, and
// Horner-evaluated Chien search, preserved as the behavioural contract
// for the word-parallel kernel path. The fast and reference codecs must
// produce byte-identical outputs on every input — enforced by
// FuzzBCHDecodeDifferential — and the `/ref` benchmark variants measure
// this path. It shares the Code's immutable tables and is safe for
// concurrent use.
type CodeRef struct{ c *Code }

// Ref returns the scalar reference view of the code.
func (c *Code) Ref() *CodeRef { return &CodeRef{c: c} }

// N returns the full (unshortened) code length in bits.
func (r *CodeRef) N() int { return r.c.n }

// K returns the maximum number of data bits.
func (r *CodeRef) K() int { return r.c.k }

// T returns the designed correction capability in bits.
func (r *CodeRef) T() int { return r.c.t }

// ParityBits returns the number of check bits, N - K.
func (r *CodeRef) ParityBits() int { return r.c.ParityBits() }

// CodewordBytes returns the codeword buffer size for a msgBits payload.
func (r *CodeRef) CodewordBytes(msgBits int) int { return r.c.CodewordBytes(msgBits) }

// ExtractMessage copies the message bits out of a codeword.
func (r *CodeRef) ExtractMessage(cw []byte, msgBits int) []byte {
	return r.c.ExtractMessage(cw, msgBits)
}

// Encode systematically encodes msgBits bits of msg with the bit-serial
// LFSR over GF(2), one message bit per step.
func (r *CodeRef) Encode(msg []byte, msgBits int) ([]byte, error) {
	c := r.c
	if err := c.checkEncodeArgs(msg, msgBits); err != nil {
		return nil, err
	}
	p := c.ParityBits()
	cw := make([]byte, c.CodewordBytes(msgBits))
	// Copy message bits into positions p..p+msgBits-1.
	for i := 0; i < msgBits; i++ {
		if getBit(msg, i) == 1 {
			setBit(cw, p+i)
		}
	}
	c.encodeParityScalar(cw, msg, msgBits)
	return cw, nil
}

// encodeParityScalar computes parity = (m(x)·x^p) mod g(x) with a
// bit-serial LFSR over GF(2) and ORs it into cw bits 0..p-1. Shared by
// the reference encoder and the fast encoder's narrow-parity fallback.
func (c *Code) encodeParityScalar(cw []byte, msg []byte, msgBits int) {
	p := c.ParityBits()
	rem := make([]byte, p)
	for i := msgBits - 1; i >= 0; i-- {
		feedback := getBit(msg, i) ^ rem[p-1]
		// Shift rem up by one degree.
		copy(rem[1:], rem[:p-1])
		rem[0] = 0
		if feedback == 1 {
			for j := 0; j < p; j++ {
				rem[j] ^= c.gen[j]
			}
		}
	}
	for j := 0; j < p; j++ {
		if rem[j] == 1 {
			setBit(cw, j)
		}
	}
}

// syndromesRef computes S_1..S_2t one set bit at a time through the
// field's antilog table. The boolean result is true if every syndrome is
// zero (no detected error).
func (c *Code) syndromesRef(cw []byte, msgBits int) ([]uint32, bool) {
	total := c.ParityBits() + msgBits
	synd := make([]uint32, 2*c.t)
	clean := true
	for i := 0; i < total; i++ {
		if getBit(cw, i) == 0 {
			continue
		}
		for j := range synd {
			synd[j] ^= c.field.Exp(int64(i) * int64(j+1))
		}
	}
	for _, s := range synd {
		if s != 0 {
			clean = false
			break
		}
	}
	return synd, clean
}

// Syndrome returns the power-sum syndromes S_1..S_2t of the received
// word, computed bit-serially.
func (r *CodeRef) Syndrome(cw []byte, msgBits int) []uint32 {
	synd, _ := r.c.syndromesRef(cw, msgBits)
	return synd
}

// Detect reports whether the codeword contains any detectable error,
// using the bit-serial syndrome path.
func (r *CodeRef) Detect(cw []byte, msgBits int) bool {
	_, clean := r.c.syndromesRef(cw, msgBits)
	return !clean
}

// Decode corrects up to T bit errors in cw in place using the scalar
// pipeline end to end: bit-serial syndromes, Berlekamp–Massey, and a
// per-position Horner Chien search.
func (r *CodeRef) Decode(cw []byte, msgBits int) (int, error) {
	c := r.c
	if err := c.checkDecodeArgs(msgBits); err != nil {
		return 0, err
	}
	synd, clean := c.syndromesRef(cw, msgBits)
	if clean {
		return 0, nil
	}
	sigma := c.berlekampMassey(synd)
	L := len(sigma) - 1
	if L > c.t {
		return 0, ErrUncorrectable
	}
	positions, ok := c.chienRef(sigma, c.ParityBits()+msgBits)
	if !ok || len(positions) != L {
		return 0, ErrUncorrectable
	}
	for _, pos := range positions {
		flipBit(cw, pos)
	}
	// Paranoia: verify the corrected word is a codeword. This catches
	// miscorrections of >t-error patterns that happen to yield a
	// consistent locator with roots inside the shortened support.
	if _, cleanNow := c.syndromesRef(cw, msgBits); !cleanNow {
		return 0, ErrUncorrectable
	}
	return len(positions), nil
}

// chienRef finds error positions by evaluating σ(α^{-i}) with Horner's
// rule at every candidate position. The second result is false if a root
// lies outside the shortened support (i.e. in the always-zero region),
// which means the pattern is invalid.
func (c *Code) chienRef(sigma []uint32, support int) ([]int, bool) {
	f := c.field
	var positions []int
	degree := len(sigma) - 1
	for i := 0; i < c.n && len(positions) <= degree; i++ {
		x := f.Exp(-int64(i))
		if gf2.PolyEval(f, gf2.Poly(sigma), x) == 0 {
			if i >= support {
				return nil, false
			}
			positions = append(positions, i)
		}
	}
	return positions, true
}
