package bch

import (
	"sync"

	"repro/internal/codekit"
)

// kernels bundles the word-parallel lookup tables for one code shape:
// per-byte power-sum syndrome tables and the byte-wise encoder remainder
// table (nil when the parity width is under 8 bits — those codes stay on
// the bit-serial encoder). Tables are immutable after construction and
// shared by every Code of the same shape.
type kernels struct {
	synd *codekit.SyndromeTable
	rem  *codekit.RemainderTable
}

// kernelKey identifies a code shape. New always uses the package-default
// primitive polynomial for m, so field and generator are functions of
// (m, t) alone.
type kernelKey struct{ m, t int }

var kernelCache sync.Map // kernelKey -> *kernels

// kernels returns the code's lookup tables, building them on first use.
// Construction is lazy so that ForPayload's probe codes (built for every
// m until one fits, then discarded) never pay for tables, and cached
// across Code values so repeated scheme construction in the simulator
// reuses one table set per shape.
func (c *Code) kernels() *kernels {
	c.kernOnce.Do(func() {
		key := kernelKey{c.field.M(), c.t}
		if v, ok := kernelCache.Load(key); ok {
			c.kern = v.(*kernels)
			return
		}
		k := &kernels{
			// Only the t odd power sums are accumulated through the
			// table; syndromes() squares them into the even half
			// (S_2j = S_j² in characteristic 2).
			synd: codekit.NewOddSyndromeTable(c.field, c.t, c.n),
			rem:  codekit.NewRemainderTable(c.gen),
		}
		v, _ := kernelCache.LoadOrStore(key, k)
		c.kern = v.(*kernels)
	})
	return c.kern
}
