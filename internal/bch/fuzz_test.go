package bch

import (
	"bytes"
	"testing"
)

// fuzzRNG is a tiny splitmix64 so flip positions derive deterministically
// from the fuzz input without importing other repro packages.
type fuzzRNG uint64

func (r *fuzzRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// distinctPositions picks n distinct bit positions in [0, total).
func distinctPositions(r *fuzzRNG, n, total int) []int {
	seen := make(map[int]bool, n)
	pos := make([]int, 0, n)
	for len(pos) < n {
		p := int(r.next() % uint64(total))
		if !seen[p] {
			seen[p] = true
			pos = append(pos, p)
		}
	}
	return pos
}

// FuzzBCHRoundTrip drives encode → corrupt → decode with a fuzzer-chosen
// message, flip count and flip placement, checking the code's contract on
// both sides of the capability boundary:
//
//   - ≤ T flips: Decode must restore the exact original codeword and
//     report exactly the injected count; Detect must fire for ≥ 1 flip.
//   - T < flips ≤ 2T: the pattern is within the minimum distance, so
//     Detect must still fire, and Decode must either refuse
//     (ErrUncorrectable) or miscorrect to a *different* valid codeword —
//     it can never silently reproduce the original, which would require
//     correcting more than T bits.
func FuzzBCHRoundTrip(f *testing.F) {
	code := MustNew(8, 4) // BCH(255, 223) t=4 — small enough to fuzz fast
	msgBits := 128        // shortened payload, exercising the zero support
	total := code.ParityBits() + msgBits

	f.Add([]byte{0x00, 0x00}, byte(0), uint64(1))
	f.Add([]byte{0xff, 0x3c}, byte(1), uint64(2))
	f.Add([]byte("fuzz-seed-corpus"), byte(4), uint64(42))   // at capability
	f.Add([]byte("beyond-capability"), byte(5), uint64(7))   // t+1
	f.Add([]byte{0xa5, 0x5a, 0x33}, byte(8), uint64(0xdead)) // 2t
	f.Fuzz(func(t *testing.T, msg []byte, nraw byte, posSeed uint64) {
		buf := make([]byte, (msgBits+7)/8)
		copy(buf, msg)
		orig, err := code.Encode(buf, msgBits)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if code.Detect(orig, msgBits) {
			t.Fatal("fresh codeword reported dirty")
		}

		nflips := int(nraw) % (2*code.T() + 1) // 0 .. 2t
		rng := fuzzRNG(posSeed)
		cw := append([]byte(nil), orig...)
		for _, p := range distinctPositions(&rng, nflips, total) {
			flipBit(cw, p)
		}

		if nflips >= 1 && !code.Detect(cw, msgBits) {
			// Weight ≤ 2t sits inside the minimum distance: always detectable.
			t.Fatalf("%d flips (≤ 2t) escaped Detect", nflips)
		}

		corrected, err := code.Decode(cw, msgBits)
		if nflips <= code.T() {
			if err != nil {
				t.Fatalf("%d ≤ t flips uncorrectable: %v", nflips, err)
			}
			if corrected != nflips {
				t.Fatalf("corrected %d bits, injected %d", corrected, nflips)
			}
			if !bytes.Equal(cw, orig) {
				t.Fatal("decode did not restore the original codeword")
			}
			if !bytes.Equal(code.ExtractMessage(cw, msgBits), buf) {
				t.Fatal("decoded message differs from original")
			}
			return
		}
		// Beyond capability: refusing is the good outcome; a miscorrection
		// must land on a different codeword (distance to orig is > t, but
		// Decode flips at most t bits).
		if err == nil {
			if corrected > code.T() {
				t.Fatalf("claimed to correct %d > t bits", corrected)
			}
			if bytes.Equal(cw, orig) {
				t.Fatalf("%d > t flips reported as clean correction of the original", nflips)
			}
			if code.Detect(cw, msgBits) {
				t.Fatal("successful decode left a detectable word")
			}
		}
	})
}
