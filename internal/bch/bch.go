// Package bch implements binary primitive BCH codes over GF(2^m):
// systematic encoding, syndrome computation, Berlekamp–Massey error
// location, and Chien search. These are the "strong ECC" codes the scrub
// study relies on to tolerate multiple drift errors per line between
// scrub visits (SECDED corrects 1 bit; BCH-t corrects t bits).
//
// Codes may be shortened: a payload of any length up to K data bits is
// supported, with the unused high-order message positions fixed at zero.
//
// Bit layout of a codeword buffer (LSB-first within each byte):
//
//	bit 0 .. P-1          parity (coefficients x^0 .. x^(P-1))
//	bit P .. P+msgBits-1  message (coefficients x^P ..)
//
// where P = N - K is the parity width.
package bch

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/codekit"
	"repro/internal/gf2"
)

// ErrUncorrectable reports that a received word contains more errors than
// the code can correct (or an error pattern that decodes outside the
// shortened code's support).
var ErrUncorrectable = errors.New("bch: uncorrectable error pattern")

// Code is a binary BCH code with designed correction capability T over
// GF(2^m). The public methods run on the word-parallel lookup kernels in
// internal/codekit; the original scalar pipeline is preserved behind Ref
// as the byte-identical reference codec. Immutable after construction
// (kernel tables are built lazily, guarded by a sync.Once) and safe for
// concurrent use.
type Code struct {
	field *gf2.Field
	n     int // full code length 2^m - 1
	k     int // maximum data bits
	t     int // designed correction capability

	gen []byte // generator polynomial coefficients (0/1), degree n-k

	kernOnce sync.Once
	kern     *kernels
}

// New constructs a t-error-correcting binary BCH code over GF(2^m).
func New(m, t int) (*Code, error) {
	if t < 1 {
		return nil, fmt.Errorf("bch: correction capability t=%d must be >= 1", t)
	}
	field, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	n := int(field.N())
	// g(x) = lcm of minimal polynomials of α, α³, ..., α^(2t-1).
	gen := gf2.Poly{1}
	for i := 1; i <= 2*t-1; i += 2 {
		gen = gf2.LCM(field, gen, gf2.MinimalPoly(field, int64(i)))
	}
	deg := gen.Degree()
	if deg >= n {
		return nil, fmt.Errorf("bch: t=%d too large for m=%d (parity %d >= n %d)", t, m, deg, n)
	}
	coeffs := make([]byte, deg+1)
	for i := 0; i <= deg; i++ {
		c := gen.Coeff(i)
		if c > 1 {
			return nil, fmt.Errorf("bch: internal error, generator has non-binary coefficient")
		}
		coeffs[i] = byte(c)
	}
	return &Code{field: field, n: n, k: n - deg, t: t, gen: coeffs}, nil
}

// MustNew is New that panics on error; for tests and fixed configurations.
func MustNew(m, t int) *Code {
	c, err := New(m, t)
	if err != nil {
		panic(err)
	}
	return c
}

// ForPayload returns the smallest (by field degree) BCH code that can
// correct t errors in a payload of msgBits data bits, searching m = 5..16.
func ForPayload(msgBits, t int) (*Code, error) {
	if msgBits < 1 {
		return nil, fmt.Errorf("bch: payload must be at least 1 bit")
	}
	for m := 5; m <= 16; m++ {
		c, err := New(m, t)
		if err != nil {
			continue
		}
		if c.k >= msgBits {
			return c, nil
		}
	}
	return nil, fmt.Errorf("bch: no supported field fits %d data bits at t=%d", msgBits, t)
}

// N returns the full (unshortened) code length in bits.
func (c *Code) N() int { return c.n }

// K returns the maximum number of data bits.
func (c *Code) K() int { return c.k }

// T returns the designed correction capability in bits.
func (c *Code) T() int { return c.t }

// ParityBits returns the number of check bits, N - K.
func (c *Code) ParityBits() int { return c.n - c.k }

// Generator returns a copy of the generator polynomial's coefficients
// (index = degree, values 0/1).
func (c *Code) Generator() []byte { return append([]byte(nil), c.gen...) }

// CodewordBytes returns the buffer size in bytes needed to hold a codeword
// for a msgBits-bit payload.
func (c *Code) CodewordBytes(msgBits int) int {
	return (msgBits + c.ParityBits() + 7) / 8
}

func getBit(buf []byte, i int) byte { return (buf[i>>3] >> uint(i&7)) & 1 }
func setBit(buf []byte, i int)      { buf[i>>3] |= 1 << uint(i&7) }
func flipBit(buf []byte, i int)     { buf[i>>3] ^= 1 << uint(i&7) }

func (c *Code) checkEncodeArgs(msg []byte, msgBits int) error {
	if msgBits < 1 || msgBits > c.k {
		return fmt.Errorf("bch: msgBits=%d out of range [1,%d]", msgBits, c.k)
	}
	if len(msg)*8 < msgBits {
		return fmt.Errorf("bch: message buffer too short: %d bytes for %d bits", len(msg), msgBits)
	}
	return nil
}

func (c *Code) checkDecodeArgs(msgBits int) error {
	if msgBits < 1 || msgBits > c.k {
		return fmt.Errorf("bch: msgBits=%d out of range [1,%d]", msgBits, c.k)
	}
	return nil
}

// Encode systematically encodes msgBits bits of msg (LSB-first packing)
// and returns a fresh codeword buffer of CodewordBytes(msgBits) bytes.
// It returns an error if msgBits exceeds K or msg is too short.
//
// The parity remainder is computed eight message bits per step through
// the code's byte-wise remainder table; codes with a parity width under
// 8 bits fall back to the bit-serial LFSR (see CodeRef.Encode).
func (c *Code) Encode(msg []byte, msgBits int) ([]byte, error) {
	if err := c.checkEncodeArgs(msg, msgBits); err != nil {
		return nil, err
	}
	p := c.ParityBits()
	cw := make([]byte, c.CodewordBytes(msgBits))
	// Message bits into positions p..p+msgBits-1 (word-wide OR-shift).
	codekit.OrShiftBits(cw, p, msg, msgBits)
	kr := c.kernels().rem
	if kr == nil {
		c.encodeParityScalar(cw, msg, msgBits)
		return cw, nil
	}
	var remArr [8]uint64
	var rem []uint64
	if w := kr.Words(); w <= len(remArr) {
		rem = remArr[:w]
	} else {
		rem = make([]uint64, w)
	}
	// The LFSR consumes high-degree coefficients first: a leading
	// partial byte bit-serially, then whole message bytes top-down,
	// eight coefficients per table step.
	i := msgBits
	for i%8 != 0 {
		i--
		kr.UpdateBit(rem, getBit(msg, i))
	}
	for i >= 8 {
		i -= 8
		kr.Update(rem, msg[i/8])
	}
	codekit.OrWordsBits(cw, rem, p)
	return cw, nil
}

// ExtractMessage copies the message bits out of a codeword into a fresh
// buffer of ceil(msgBits/8) bytes.
func (c *Code) ExtractMessage(cw []byte, msgBits int) []byte {
	p := c.ParityBits()
	out := make([]byte, (msgBits+7)/8)
	for i := 0; i < msgBits; i++ {
		if getBit(cw, p+i) == 1 {
			setBit(out, i)
		}
	}
	return out
}

// syndromes computes S_1..S_2t of the received word. Only the odd power
// sums go through the per-byte lookup tables; the even ones follow by
// squaring (S_2j = S_j² in characteristic 2, so every even index chains
// down to an already-known one). The boolean result is true if every
// syndrome is zero (no detected error) — equivalent to every *odd*
// syndrome being zero, since the evens are squares of them.
func (c *Code) syndromes(cw []byte, msgBits int) ([]uint32, bool) {
	synd := make([]uint32, 2*c.t)
	odd := synd[:c.t]
	c.kernels().synd.Accumulate(odd, cw, c.ParityBits()+msgBits)
	clean := true
	for _, s := range odd {
		if s != 0 {
			clean = false
			break
		}
	}
	// Spread the odd sums to their final slots (synd[j-1] = S_j), highest
	// first so a write to slot 2i never lands on a not-yet-moved odd
	// accumulator, then square the evens in increasing order (slot j/2-1
	// is final before slot j-1 is written).
	for i := c.t - 1; i >= 0; i-- {
		synd[2*i] = odd[i]
	}
	for j := 2; j <= 2*c.t; j += 2 {
		synd[j-1] = c.field.Sqr(synd[j/2-1])
	}
	return synd, clean
}

// Syndrome returns the power-sum syndromes S_1..S_2t of the received
// word in a fresh slice, computed on the kernel path. CodeRef.Syndrome
// is the bit-serial reference for the same values.
func (c *Code) Syndrome(cw []byte, msgBits int) []uint32 {
	synd, _ := c.syndromes(cw, msgBits)
	return synd
}

// Detect reports whether the codeword contains any detectable error. This
// is the cheap "check" operation: syndrome computation only, no error
// location. A return of false means the word is a valid codeword (which,
// for error patterns beyond the code's minimum distance, can rarely be a
// miscorrection-style false negative, exactly as in hardware).
func (c *Code) Detect(cw []byte, msgBits int) bool {
	_, clean := c.syndromes(cw, msgBits)
	return !clean
}

// Decode corrects up to T bit errors in cw in place and returns the number
// of bits corrected. It returns ErrUncorrectable (leaving cw unspecified)
// when the error pattern exceeds the code's capability.
//
// The pipeline runs on the kernel path — table-driven syndromes, shared
// Berlekamp–Massey, branch-free incremental Chien search — and is
// byte-identical to CodeRef.Decode on every input (the differential fuzz
// contract).
func (c *Code) Decode(cw []byte, msgBits int) (int, error) {
	if err := c.checkDecodeArgs(msgBits); err != nil {
		return 0, err
	}
	synd, clean := c.syndromes(cw, msgBits)
	if clean {
		return 0, nil
	}
	sigma := c.berlekampMassey(synd)
	L := len(sigma) - 1
	if L > c.t {
		return 0, ErrUncorrectable
	}
	positions, ok := codekit.ChienSearch(c.field, sigma, c.ParityBits()+msgBits, c.n, make([]int, 0, c.t))
	if !ok || len(positions) != L {
		return 0, ErrUncorrectable
	}
	for _, pos := range positions {
		flipBit(cw, pos)
	}
	// Paranoia: verify the corrected word is a codeword. This catches
	// miscorrections of >t-error patterns that happen to yield a
	// consistent locator with roots inside the shortened support.
	if _, cleanNow := c.syndromes(cw, msgBits); !cleanNow {
		return 0, ErrUncorrectable
	}
	return len(positions), nil
}

// berlekampMassey returns the error-locator polynomial σ(x) (lowest-degree
// LFSR) for the syndrome sequence, as coefficients σ[0..L] with σ[0] = 1.
func (c *Code) berlekampMassey(s []uint32) []uint32 {
	f := c.field
	n := len(s)
	cPoly := make([]uint32, n+1)
	bPoly := make([]uint32, n+1)
	cPoly[0], bPoly[0] = 1, 1
	L := 0
	m := 1
	b := uint32(1)
	for i := 0; i < n; i++ {
		// Discrepancy d = S_i + Σ_{j=1..L} c_j·S_{i-j}.
		d := s[i]
		for j := 1; j <= L; j++ {
			d ^= f.Mul(cPoly[j], s[i-j])
		}
		if d == 0 {
			m++
			continue
		}
		coef := f.Div(d, b)
		if 2*L <= i {
			tPoly := append([]uint32(nil), cPoly...)
			for j := 0; j+m <= n; j++ {
				cPoly[j+m] ^= f.Mul(coef, bPoly[j])
			}
			L = i + 1 - L
			bPoly = tPoly
			b = d
			m = 1
		} else {
			for j := 0; j+m <= n; j++ {
				cPoly[j+m] ^= f.Mul(coef, bPoly[j])
			}
			m++
		}
	}
	return cPoly[:L+1]
}

