package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/ondie"
	"repro/internal/scrub"
)

// agedSpec is testSpec pre-aged to the point where a minority of lines
// carry stuck bits (median endurance is 1e8 with 0.25 decades of
// spread, so 2e7 writes kill the weakest cells of roughly half the
// lines) — the regime where on-die correction and at-risk profiling
// have real, unevenly distributed errors to chew on.
func agedSpec() Spec {
	spec := testSpec()
	spec.InitialLineWrites = 20_000_000
	spec.Horizon = 50000
	return spec
}

func jsonFingerprint(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestOnDieDisabledByteIdentical pins the subsystem's zero-config
// contract: a nil OnDie config and an all-zero OnDie config both produce
// results byte-identical (full JSON encoding, every field) to a spec
// that has never heard of on-die ECC — on the pooled and unpooled paths,
// and across pool reuse.
func TestOnDieDisabledByteIdentical(t *testing.T) {
	for name, base := range specVariants() {
		baseline, err := (&Runner{DisablePooling: true}).Run(base)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}
		want := jsonFingerprint(t, baseline)
		for _, mode := range []struct {
			label string
			cfg   *ondie.Config
		}{{"nil", nil}, {"zero", &ondie.Config{}}} {
			spec := base
			spec.OnDie = mode.cfg
			for _, r := range []*Runner{{}, {DisablePooling: true}} {
				for round := 0; round < 2; round++ {
					res, err := r.Run(spec)
					if err != nil {
						t.Fatalf("%s/%s: %v", name, mode.label, err)
					}
					if got := jsonFingerprint(t, res); got != want {
						t.Errorf("%s/%s (pooling=%v, round %d): disabled on-die ECC drifted the result:\n got  %s\n want %s",
							name, mode.label, !r.DisablePooling, round, got, want)
					}
				}
			}
		}
	}
}

// TestOnDieHiddenErrorRegime checks the visibility transform end to end:
// with on-die correction enabled on an aged device, raw errors vanish
// from the controller's view (hidden corrections accumulate, visible
// corrected bits drop) and the whole trajectory stays deterministic.
func TestOnDieHiddenErrorRegime(t *testing.T) {
	base := agedSpec()
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	spec := base
	spec.OnDie = &ondie.Config{T: 2}
	hidden, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.OnDieCorrectedBits == 0 {
		t.Fatal("aged device produced no on-die corrections")
	}
	if hidden.CorrectedBits >= plain.CorrectedBits {
		t.Errorf("on-die hiding did not reduce controller-visible corrected bits: %d >= %d",
			hidden.CorrectedBits, plain.CorrectedBits)
	}
	if hidden.ScrubVisits != plain.ScrubVisits {
		t.Errorf("on-die layer changed visit count: %d != %d", hidden.ScrubVisits, plain.ScrubVisits)
	}

	again, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, hidden) {
		t.Error("on-die run is not deterministic across repetitions")
	}
}

// TestOnDieWeakAssignment checks the Luo-style capacity trade surfaces
// in the result: a weak fraction reclaims check bits on the coldest
// lines.
func TestOnDieWeakAssignment(t *testing.T) {
	spec := agedSpec()
	spec.OnDie = &ondie.Config{T: 4, WeakT: 1, WeakFraction: 0.25}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantWeak := spec.Geometry.TotalLines() / 4
	if res.OnDieWeakLines != wantWeak {
		t.Errorf("OnDieWeakLines = %d, want %d", res.OnDieWeakLines, wantWeak)
	}
	if res.OnDieCheckBitsSaved <= 0 {
		t.Errorf("OnDieCheckBitsSaved = %d, want > 0", res.OnDieCheckBitsSaved)
	}
}

// TestProfiledPolicyBiasesPatrol checks the HARP-style scheduling
// overlay: a profiled policy runs profiling rounds, builds an at-risk
// set on an aged device, and redirects patrol visits toward it at
// equal scrub bandwidth. (The trajectory itself legitimately diverges:
// redirected visits trigger different write-backs, whose fresh drift
// draws shift the shared stream — but the profiling machinery adds no
// draws of its own, so the visit count stays exactly equal.)
func TestProfiledPolicyBiasesPatrol(t *testing.T) {
	base := agedSpec()
	base.OnDie = &ondie.Config{T: 1}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	spec := base
	spec.Policy = scrub.ProfiledThreshold(1)
	prof, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if prof.ProfileRounds == 0 {
		t.Fatal("no profiling rounds ran")
	}
	if prof.ProfileReads == 0 {
		t.Fatal("profiling rounds charged no reads")
	}
	if prof.AtRiskLines == 0 {
		t.Fatal("aged device produced an empty at-risk set")
	}
	if prof.AtRiskVisits == 0 {
		t.Fatal("no patrol visits were redirected")
	}
	if prof.ScrubVisits != plain.ScrubVisits {
		t.Errorf("profiling changed scrub bandwidth: %d visits != %d", prof.ScrubVisits, plain.ScrubVisits)
	}
	if prof.ProfileDirectBits+prof.ProfileIndirectBits == 0 {
		t.Error("profiling separated no direct/indirect errors")
	}
}

// TestOnDieSpanInstrumentation checks the new pipeline stage is wired
// into the span recorder: one ondie observation per visit plus one per
// profiling round, with results unchanged by instrumentation.
func TestOnDieSpanInstrumentation(t *testing.T) {
	spec := agedSpec()
	spec.OnDie = &ondie.Config{T: 1}
	spec.Policy = scrub.ProfiledThreshold(1)
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	rec := &SpanRecorder{}
	spec.Hooks = &Hooks{Spans: rec}
	instrumented, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(instrumented, plain) {
		t.Error("span instrumentation changed the result")
	}
	spans := map[string]Span{}
	for _, sp := range rec.Spans() {
		spans[sp.Stage] = sp
	}
	want := plain.ScrubVisits + plain.ProfileRounds
	if got := spans["ondie"].Count; got != want {
		t.Errorf("ondie span count = %d, want %d (visits %d + rounds %d)",
			got, want, plain.ScrubVisits, plain.ProfileRounds)
	}
}
