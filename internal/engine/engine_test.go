package engine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ecc"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/trace"
	"repro/internal/wear"
)

func testWorkload() trace.Workload {
	return trace.Workload{
		Name:                "test-mix",
		WritesPerLinePerSec: 1e-5,
		ReadsPerLinePerSec:  1e-4,
		FootprintFrac:       1.0,
		ZipfSkew:            0.5,
	}
}

// testSpec mirrors the sim package's historical test configuration:
// 256 lines under BCH-4 with the basic full-decode patrol.
func testSpec() Spec {
	return Spec{
		Geometry: mem.Geometry{
			Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
			RowsPerBank: 16, LinesPerRow: 8, LineBytes: 64,
		},
		PCM:           pcm.DefaultParams(),
		Mix:           pcm.UniformMix(),
		Wear:          wear.DefaultParams(),
		Energy:        energy.DefaultParams(),
		Scheme:        ecc.MustBCHLine(4),
		Policy:        scrub.Basic(),
		ScrubInterval: 5000,
		Horizon:       25000,
		Substeps:      8,
		Workload:      testWorkload(),
		Seed:          42,
	}
}

// specVariants exercises every execution path the engine owns: both
// detection modes, write thresholds, adaptive control, leveling, SLC form
// switch, ECP, pre-aging, and fault injection.
func specVariants() map[string]Spec {
	variants := map[string]Spec{}

	basic := testSpec()
	variants["basic"] = basic

	light := testSpec()
	light.Scheme = ecc.MustBCHLine(8)
	light.Policy = scrub.LightBasic()
	variants["light-detect"] = light

	adaptive := scrub.DefaultAdaptive()
	adaptive.MaxInterval = 6250
	combined := testSpec()
	combined.Scheme = ecc.MustBCHLine(8)
	combined.Policy = scrub.MustNew(scrub.Config{
		Label:          "combined",
		Detect:         scrub.LightDetect,
		WriteThreshold: 6,
		WearAware:      true,
		Adaptive:       &adaptive,
	})
	variants["combined"] = combined

	substrates := testSpec()
	substrates.GapMovePeriod = 64
	substrates.SLCFraction = 0.3
	substrates.ECPEntries = 2
	substrates.InitialLineWrites = 90_000_000
	substrates.RecordRounds = true
	variants["substrates"] = substrates

	faulty := testSpec()
	faulty.Fault = &fault.Plan{ReadFlipRate: 0.01, SweepSkipRate: 0.2, StuckCheckRate: 0.05}
	variants["faulty"] = faulty

	return variants
}

// TestPooledMatchesUnpooled pins the tentpole invariant: pooled scratch,
// the shared sampler cache, and batched RNG draws change allocation
// behaviour only — every result field is identical to a fresh-allocation
// run. Each variant runs twice per mode so pool reuse (second iteration
// hits recycled state) is exercised, not just pool cold start.
func TestPooledMatchesUnpooled(t *testing.T) {
	pooled := &Runner{}
	unpooled := &Runner{DisablePooling: true}
	for name, spec := range specVariants() {
		for round := 0; round < 2; round++ {
			want, err := unpooled.Run(spec)
			if err != nil {
				t.Fatalf("%s: unpooled: %v", name, err)
			}
			got, err := pooled.Run(spec)
			if err != nil {
				t.Fatalf("%s: pooled: %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s round %d: pooled result differs from unpooled:\n got  %+v\n want %+v", name, round, got, want)
			}
		}
	}
}

// TestHooksDoNotChangeResults runs the same spec with and without full
// instrumentation (spans + progress + round callbacks) and requires
// identical results, plus sane span and callback contents.
func TestHooksDoNotChangeResults(t *testing.T) {
	spec := testSpec()
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	rec := &SpanRecorder{}
	var progressCalls, roundCalls int
	var lastSim float64
	spec.Hooks = &Hooks{
		Progress: func(sweep int, simSeconds, horizon float64) {
			progressCalls++
			if simSeconds <= lastSim {
				t.Errorf("progress went backwards: %g after %g", simSeconds, lastSim)
			}
			lastSim = simSeconds
			if horizon != spec.Horizon {
				t.Errorf("progress horizon = %g, want %g", horizon, spec.Horizon)
			}
		},
		Round: func(rr RoundRecord) {
			roundCalls++
			if rr.Interval <= 0 {
				t.Errorf("round record with non-positive interval: %+v", rr)
			}
		},
		Spans: rec,
	}
	instrumented, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(instrumented, plain) {
		t.Errorf("instrumented run differs from plain run:\n got  %+v\n want %+v", instrumented, plain)
	}
	if progressCalls != plain.Sweeps || roundCalls != plain.Sweeps {
		t.Errorf("progress/round calls = %d/%d, want %d each", progressCalls, roundCalls, plain.Sweeps)
	}

	spans := map[string]Span{}
	for _, sp := range rec.Spans() {
		spans[sp.Stage] = sp
	}
	if got := spans["decode"].Count; got != plain.ScrubDecodes {
		t.Errorf("decode span count = %d, want %d", got, plain.ScrubDecodes)
	}
	// BCH-4 is a real line codec, so trace mode runs one kernel decode
	// per modelled decode.
	if got := spans["kernel"].Count; got != plain.ScrubDecodes {
		t.Errorf("kernel span count = %d, want %d (one kernel pass per decode)", got, plain.ScrubDecodes)
	}
	if got := spans["writeback"].Count; got != plain.ScrubWriteBacks {
		t.Errorf("writeback span count = %d, want %d", got, plain.ScrubWriteBacks)
	}
	if got := spans["demand"].Count; got != plain.DemandWrites {
		t.Errorf("demand span count = %d, want %d", got, plain.DemandWrites)
	}
	if got := spans["control"].Count; got != int64(plain.Sweeps) {
		t.Errorf("control span count = %d, want %d", got, plain.Sweeps)
	}
}

// TestKernelStageLightDetect pins the trace-mode kernel exercise under
// light detection: every modelled CRC probe runs a real slicing-kernel
// checksum and every escalated decode runs a real kernel line decode,
// all accounted under the "kernel" stage — without changing the Result.
func TestKernelStageLightDetect(t *testing.T) {
	spec := testSpec()
	spec.Scheme = ecc.MustBCHLine(8)
	spec.Policy = scrub.LightBasic()
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := &SpanRecorder{}
	spec.Hooks = &Hooks{Spans: rec}
	instrumented, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(instrumented, plain) {
		t.Errorf("kernel exercise changed the result:\n got  %+v\n want %+v", instrumented, plain)
	}
	var kernel Span
	for _, sp := range rec.Spans() {
		if sp.Stage == "kernel" {
			kernel = sp
		}
	}
	want := plain.ScrubProbes + plain.ScrubDecodes
	if kernel.Count != want {
		t.Errorf("kernel span count = %d, want %d (probes %d + decodes %d)",
			kernel.Count, want, plain.ScrubProbes, plain.ScrubDecodes)
	}
	if kernel.Count > 0 && kernel.Nanos <= 0 {
		t.Errorf("kernel span recorded no time over %d passes", kernel.Count)
	}
}

// TestStatsAccumulate checks that completed runs fold into the
// process-wide totals scrubd surfaces on /metrics.
func TestStatsAccumulate(t *testing.T) {
	before := Stats()
	res, err := Run(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	after := Stats()
	if got := after.Runs - before.Runs; got < 1 {
		t.Errorf("Runs advanced by %d, want >= 1", got)
	}
	if got := after.Visits - before.Visits; got < res.ScrubVisits {
		t.Errorf("Visits advanced by %d, want >= %d", got, res.ScrubVisits)
	}
	if after.SimSeconds <= before.SimSeconds {
		t.Error("SimSeconds did not advance")
	}
}

// cancelPolicy cancels its context from inside the visit loop after a set
// number of write-back consultations, which under FullDecode is one per
// visit — letting the test measure how many further visits the engine
// performs before it notices.
type cancelPolicy struct {
	scrub.Policy
	cancel context.CancelFunc
	after  int
	calls  int
}

func (p *cancelPolicy) ShouldWriteBack(scrub.VisitInfo) bool {
	p.calls++
	if p.calls == p.after {
		p.cancel()
	}
	return false
}

// TestCancellationVisitStride verifies the bounded-latency cancellation
// fix: with a single substep spanning 8192 lines, a context cancelled
// mid-substep must stop the patrol within visitStride visits, not at the
// substep boundary thousands of visits later.
func TestCancellationVisitStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pol := &cancelPolicy{Policy: scrub.Basic(), cancel: cancel, after: 100}

	spec := testSpec()
	spec.Geometry = mem.Geometry{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 8,
		RowsPerBank: 32, LinesPerRow: 32, LineBytes: 64,
	} // 8192 lines
	spec.Substeps = 1
	spec.Policy = pol

	_, err := RunContext(ctx, spec)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !strings.Contains(err.Error(), "engine: run canceled") {
		t.Errorf("error = %v, want engine cancellation error", err)
	}
	maxVisits := pol.after + visitStride
	if pol.calls > maxVisits {
		t.Errorf("engine performed %d visits before honouring cancel, want <= %d", pol.calls, maxVisits)
	}
	if pol.calls < pol.after {
		t.Errorf("only %d visits before cancel point %d — test harness broken", pol.calls, pol.after)
	}
}

// TestCanceledRunCountsInStats pins that cancelled runs land in the
// CanceledRuns total rather than the success counters.
func TestCanceledRunCountsInStats(t *testing.T) {
	before := Stats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, testSpec()); err == nil {
		t.Fatal("run under cancelled context succeeded")
	}
	after := Stats()
	if got := after.CanceledRuns - before.CanceledRuns; got < 1 {
		t.Errorf("CanceledRuns advanced by %d, want >= 1", got)
	}
}

// BenchmarkEngineRun measures the pooled engine hot path; compare against
// BenchmarkLegacySimRun for the allocation reduction the refactor claims
// (make bench records the pair in BENCH_engine.json).
func BenchmarkEngineRun(b *testing.B) {
	spec := testSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLegacySimRun reproduces the pre-refactor allocation behaviour
// (fresh scratch and a private drift sampler per run) on the identical
// workload, as the baseline for the pooled path.
func BenchmarkLegacySimRun(b *testing.B) {
	spec := testSpec()
	r := &Runner{DisablePooling: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}
