// Package engine owns the canonical simulation run pipeline: every
// execution path in the repository — the sim package's Run, the core
// runners, the scrubd worker pool, and cluster shard execution — funnels
// into the engine's single per-line scrub/detect/correct/write-back loop.
//
// The engine takes a resolved Spec (one struct subsuming the system
// description, the mechanism under test, and the optional substrates) and
// executes it with:
//
//   - pluggable instrumentation (per-stage span timings, progress and
//     round callbacks — see Hooks) that is free when unused;
//   - process-wide run totals (see Stats) surfaced on scrubd's /metrics;
//   - bounded-latency cancellation: ctx is polled every visitStride scrub
//     visits, so a cancelled run returns in O(stride) visits rather than
//     at the next substep boundary;
//   - an allocation-lean hot path: per-run scratch (line state, crossing
//     buffers, patrol order) is recycled through a sync.Pool, drift
//     samplers are shared across runs of the same device parameters, and
//     endurance initialisation uses batched RNG draws.
//
// All of this is behaviour-preserving: a run's Result is byte-identical
// to the pre-engine sim loop for the same Spec, which the golden
// fingerprint tests in internal/sim and internal/core pin.
package engine

import "context"

// Runner executes resolved specs. The zero value is ready to use and is
// what the package-level Run/RunContext use; DisablePooling exists so
// equivalence tests and benchmarks can reproduce the pre-engine
// allocation behaviour.
type Runner struct {
	// DisablePooling makes every run allocate fresh scratch and build a
	// private drift sampler instead of drawing on the shared pools — the
	// pre-refactor behaviour. Results are identical either way; only
	// allocation counts differ.
	DisablePooling bool
}

// Run executes the spec to completion.
func (r *Runner) Run(spec Spec) (*Result, error) {
	return r.RunContext(context.Background(), spec)
}

// RunContext executes the spec under a context. Cancellation is polled
// every visitStride scrub visits and at every substep boundary, so a
// cancelled run returns promptly with an error wrapping ctx.Err(). No
// partial result is returned.
func (r *Runner) RunContext(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s, err := r.newState(spec)
	if err != nil {
		return nil, err
	}
	runErr := s.run(ctx)
	res := s.res
	s.release(r)
	recordRun(&res, runErr)
	if runErr != nil {
		return nil, runErr
	}
	return &res, nil
}

// defaultRunner backs the package-level entry points.
var defaultRunner Runner

// Run executes the spec on the shared pooled runner.
func Run(spec Spec) (*Result, error) { return defaultRunner.Run(spec) }

// RunContext is Run under a context.
func RunContext(ctx context.Context, spec Spec) (*Result, error) {
	return defaultRunner.RunContext(ctx, spec)
}
