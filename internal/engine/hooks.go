package engine

import (
	"context"
	"sync/atomic"
	"time"
)

// Stage identifies one section of the run pipeline for span accounting.
type Stage uint8

const (
	// StageDemand is the application of demand writes ahead of a substep's
	// scrub visits (one span per substep; Count accumulates events).
	StageDemand Stage = iota
	// StageOnDie is the chip-internal ECC visibility transform applied
	// before any controller-side check, plus the periodic active
	// profiling rounds that probe through it (Count accumulates
	// transformed observations and rounds).
	StageOnDie
	// StageProbe is the lightweight CRC probe of a visit under light
	// detection.
	StageProbe
	// StageDecode is a full ECC decode (always under FullDecode; on probe
	// escalation under LightDetect).
	StageDecode
	// StageKernel is the word-parallel codec kernel exercised alongside
	// the model's count-based check: in trace mode the engine runs a real
	// line decode (and, under light detection, a real CRC probe) through
	// internal/codekit-backed codecs on a scratch line carrying the
	// observed error count, so `scrubsim -trace-stages` reports what the
	// decode hardware path actually costs. Never active outside trace
	// mode and never touches the RNG.
	StageKernel
	// StageWriteBack is a policy write-back of a correctable line.
	StageWriteBack
	// StageRepair is the forced rewrite of an uncorrectable line.
	StageRepair
	// StageControl is the per-sweep interval-control and round
	// bookkeeping work.
	StageControl
	numStages
)

var stageNames = [numStages]string{
	"demand", "ondie", "probe", "decode", "kernel", "writeback", "repair", "control",
}

// String returns the stage's short lowercase name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every pipeline stage in execution order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Hooks are the engine's pluggable instrumentation points. All fields are
// optional; none of them touches the RNG stream, so instrumenting a run
// never changes its Result.
type Hooks struct {
	// Progress is called after every completed sweep with the 1-based
	// sweep count, the simulated time reached, and the horizon.
	Progress func(sweep int, simSeconds, horizon float64)
	// Round is called after every completed sweep with its record,
	// independent of Spec.RecordRounds.
	Round func(RoundRecord)
	// Spans, when non-nil, records wall-clock time per pipeline stage.
	// Span timing costs two clock reads per instrumented section, so it
	// is reserved for profiling runs (scrubsim -trace-stages); leave nil
	// on hot campaign paths.
	Spans *SpanRecorder
}

// SpanRecorder accumulates per-stage wall-clock spans. It is safe for
// concurrent use, so one recorder may aggregate across replicas.
type SpanRecorder struct {
	counts [numStages]atomic.Int64
	nanos  [numStages]atomic.Int64
}

// observe folds one span into the recorder; n is the number of logical
// operations the span covered (events for StageDemand, 1 elsewhere).
func (r *SpanRecorder) observe(st Stage, start time.Time, n int64) {
	r.nanos[st].Add(int64(time.Since(start)))
	r.counts[st].Add(n)
}

// Span is one stage's accumulated timing.
type Span struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	Nanos int64  `json:"nanos"`
	// MeanNanos is Nanos/Count (0 when the stage never ran).
	MeanNanos float64 `json:"mean_nanos"`
}

// Spans snapshots the recorder in pipeline order.
func (r *SpanRecorder) Spans() []Span {
	out := make([]Span, 0, numStages)
	for st := Stage(0); st < numStages; st++ {
		s := Span{Stage: st.String(), Count: r.counts[st].Load(), Nanos: r.nanos[st].Load()}
		if s.Count > 0 {
			s.MeanNanos = float64(s.Nanos) / float64(s.Count)
		}
		out = append(out, s)
	}
	return out
}

// Totals is a snapshot of the engine's process-wide run counters. scrubd
// exposes it on /metrics as the scrubd_engine_* family.
type Totals struct {
	// Runs counts completed runs; CanceledRuns counts runs that ended on
	// a cancelled or expired context.
	Runs         int64 `json:"runs"`
	CanceledRuns int64 `json:"canceled_runs"`

	// Work performed by completed runs.
	Visits       int64 `json:"visits"`
	Sweeps       int64 `json:"sweeps"`
	Probes       int64 `json:"probes"`
	Decodes      int64 `json:"decodes"`
	WriteBacks   int64 `json:"write_backs"`
	Repairs      int64 `json:"repairs"`
	DemandWrites int64 `json:"demand_writes"`
	UEs          int64 `json:"ues"`
	// SimSeconds accumulates simulated time across completed runs.
	SimSeconds float64 `json:"sim_seconds"`

	// On-die ECC and active profiling (zero while the subsystem is off).
	OnDieCorrectedBits int64 `json:"ondie_corrected_bits"`
	ProfileRounds      int64 `json:"profile_rounds"`
	ProfileReads       int64 `json:"profile_reads"`
	AtRiskLines        int64 `json:"at_risk_lines"`
	AtRiskVisits       int64 `json:"at_risk_visits"`
}

// totals is the live process-wide aggregate. Updated once per run (a
// handful of atomic adds), never from the hot loop.
var totals struct {
	runs, canceled                         atomic.Int64
	visits, sweeps, probes, decodes        atomic.Int64
	writeBacks, repairs, demandWrites, ues atomic.Int64
	simNanos                               atomic.Int64 // simulated time in ns to keep it atomic

	ondieCorrected, profileRounds, profileReads atomic.Int64
	atRiskLines, atRiskVisits                   atomic.Int64
}

// recordRun folds one finished run into the process-wide totals.
func recordRun(res *Result, err error) {
	if err != nil {
		if errIsCanceled(err) {
			totals.canceled.Add(1)
		}
		return
	}
	totals.runs.Add(1)
	totals.visits.Add(res.ScrubVisits)
	totals.sweeps.Add(int64(res.Sweeps))
	totals.probes.Add(res.ScrubProbes)
	totals.decodes.Add(res.ScrubDecodes)
	totals.writeBacks.Add(res.ScrubWriteBacks)
	totals.repairs.Add(res.RepairWrites)
	totals.demandWrites.Add(res.DemandWrites)
	totals.ues.Add(res.UEs)
	totals.simNanos.Add(int64(res.SimSeconds * 1e9))
	totals.ondieCorrected.Add(res.OnDieCorrectedBits)
	totals.profileRounds.Add(res.ProfileRounds)
	totals.profileReads.Add(res.ProfileReads)
	totals.atRiskLines.Add(int64(res.AtRiskLines))
	totals.atRiskVisits.Add(res.AtRiskVisits)
}

// errIsCanceled reports whether err stems from context cancellation.
func errIsCanceled(err error) bool {
	return err != nil && (contextCause(err, context.Canceled) || contextCause(err, context.DeadlineExceeded))
}

func contextCause(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// Stats snapshots the process-wide engine totals.
func Stats() Totals {
	return Totals{
		Runs:         totals.runs.Load(),
		CanceledRuns: totals.canceled.Load(),
		Visits:       totals.visits.Load(),
		Sweeps:       totals.sweeps.Load(),
		Probes:       totals.probes.Load(),
		Decodes:      totals.decodes.Load(),
		WriteBacks:   totals.writeBacks.Load(),
		Repairs:      totals.repairs.Load(),
		DemandWrites: totals.demandWrites.Load(),
		UEs:          totals.ues.Load(),
		SimSeconds:   float64(totals.simNanos.Load()) / 1e9,

		OnDieCorrectedBits: totals.ondieCorrected.Load(),
		ProfileRounds:      totals.profileRounds.Load(),
		ProfileReads:       totals.profileReads.Load(),
		AtRiskLines:        totals.atRiskLines.Load(),
		AtRiskVisits:       totals.atRiskVisits.Load(),
	}
}
