package engine

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/ecc"
	"repro/internal/ecp"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/level"
	"repro/internal/mem"
	"repro/internal/ondie"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wear"
)

// visitStride bounds cancellation latency inside a substep: ctx.Err() is
// polled every visitStride scrub visits, so a cancelled run stops within
// O(visitStride) visits even when a single substep covers millions of
// lines.
const visitStride = 256

// secdedLike lets the engine charge per-word decode cost for
// word-organised codes without depending on the concrete type.
type secdedLike interface{ Words() int }

// state is the mutable simulation state. Instances are recycled through
// statePool (see pool.go) unless the Runner disables pooling.
type state struct {
	spec    Spec
	rng     *stats.RNG
	genRNG  *stats.RNG // scratch stream for generator construction
	sampler *pcm.LineSampler
	wearM   *wear.Model
	acct    *energy.Accountant
	source  TrafficSource
	scheme  ecc.Scheme
	policy  scrub.Policy

	lines int // logical lines
	slots int // physical slots (lines, or lines+1 with leveling)
	k     int // tracked crossings per line
	kw    int // tracked weakest cells per line

	lev     *level.StartGap // nil when leveling is off
	moveBuf []level.Move

	// inj is the scrub-path fault injector; nil means the fault path is
	// entirely absent (the bit-identical baseline). stuckCheck holds the
	// per-slot correction margin lost to stuck ECC check bits (populated
	// only when inj is non-nil).
	inj        *fault.Injector
	stuckCheck []uint8

	// ondie is the chip-internal ECC layer; nil means no on-die code (the
	// bit-identical baseline). prof is the active-profiling state, present
	// only when the policy is a scrub.Profiler. Neither ever touches the
	// RNG stream.
	ondie *ondie.Layer
	prof  *profiler

	writeTime  []float64
	crossings  []float64 // lines × k, absolute seconds; +Inf padding
	crossCount []uint8   // valid entries; == k means "at least k"
	writes     []uint32
	weakest    []float64 // lines × kw, ascending
	stuckBits  []uint8
	deadCells  []uint8

	visitOrder []int32

	dataBits, checkBits int
	hasCRC              bool

	// hooks/spans mirror spec.Hooks for branch-cheap nil checks.
	hooks *Hooks
	spans *SpanRecorder

	// Trace-mode codec-kernel exercise (all nil/zero outside trace runs).
	// The reliability model itself is count-based; when spans are enabled
	// and the scheme is backed by a real line codec, each modelled decode
	// additionally runs the word-parallel kernel pipeline on a scratch
	// codeword carrying the observed error count, timed under
	// StageKernel. Deterministic (no RNG) and result-free, so an
	// instrumented run's Result is identical to a plain run's.
	kernCodec ecc.LineCodec
	kernCRC   *ecc.CRC16
	kernData  []byte // pristine 64-byte payload
	kernOrig  []byte // pristine encoded line
	kernBuf   []byte // per-decode scratch copy
	kernSeq   uint64 // deterministic flip-position stream

	res Result

	// scratch buffers
	crossBuf []float64
	eventBuf []int
	weakBuf  []float64
}

// newState prepares a run's state, drawing scratch and the drift sampler
// from the shared pools unless the runner disables pooling. RNG
// consumption is identical on both paths.
func (r *Runner) newState(spec Spec) (*state, error) {
	if spec.Substeps == 0 {
		spec.Substeps = 16
	}
	k := spec.TrackK
	if k == 0 {
		k = spec.Scheme.T() + 4
		if k < 8 {
			k = 8
		}
		if k > 16 {
			k = 16
		}
	}
	var s *state
	if r.DisablePooling {
		s = &state{rng: stats.NewRNG(spec.Seed)}
	} else {
		s = statePool.Get().(*state)
		s.rng.Seed(spec.Seed)
	}
	var sampler *pcm.LineSampler
	var err error
	if r.DisablePooling {
		var model *pcm.Model
		model, err = pcm.NewModel(spec.PCM)
		if err == nil {
			sampler, err = pcm.NewLineSampler(model, spec.Mix, pcm.CellsPerLine, k)
		}
	} else {
		sampler, err = cachedSampler(spec.PCM, spec.Mix, k)
	}
	if err != nil {
		return nil, err
	}
	wearM, err := wear.NewModel(spec.Wear)
	if err != nil {
		return nil, err
	}
	acct, err := energy.NewAccountant(spec.Energy)
	if err != nil {
		return nil, err
	}
	lines := spec.Geometry.TotalLines()
	var source TrafficSource
	if spec.Source != nil {
		source = spec.Source
	} else {
		// Generator layout draws from a stream split off the main RNG;
		// the pooled path reuses a scratch RNG for the split, consuming
		// the same single Uint64 from the main stream as Split would.
		gr := s.genRNG
		if gr == nil {
			gr = new(stats.RNG)
			s.genRNG = gr
		}
		s.rng.SplitInto(gr)
		gen, err := trace.NewGenerator(spec.Workload, lines, gr)
		if err != nil {
			return nil, err
		}
		source = gen
	}
	slots := lines
	var lev *level.StartGap
	if spec.GapMovePeriod > 0 {
		lev, err = level.NewStartGap(lines, spec.GapMovePeriod)
		if err != nil {
			return nil, err
		}
		slots = lev.Slots()
	}
	s.spec = spec
	s.sampler = sampler
	s.wearM = wearM
	s.acct = acct
	s.source = source
	s.scheme = spec.Scheme
	s.policy = spec.Policy
	s.lines = lines
	s.slots = slots
	s.k = k
	s.kw = spec.Wear.K
	s.lev = lev
	s.hooks = spec.Hooks
	if s.hooks != nil {
		s.spans = s.hooks.Spans
	}

	s.writeTime = growF64(s.writeTime, slots)
	s.crossings = growF64(s.crossings, slots*k)
	s.crossCount = growU8(s.crossCount, slots)
	s.writes = growU32(s.writes, slots)
	s.weakest = growF64(s.weakest, slots*spec.Wear.K)
	s.stuckBits = growU8(s.stuckBits, slots)
	s.deadCells = growU8(s.deadCells, slots)

	s.dataBits = spec.Scheme.DataBits()
	s.checkBits = spec.Scheme.CheckBits()
	s.hasCRC = spec.Policy.Detection() == scrub.LightDetect

	// Trace-mode kernel exercise: pre-encode one scratch line so visits
	// can time real kernel decodes without perturbing the model.
	s.kernCodec = nil
	s.kernCRC = nil
	s.kernSeq = spec.Seed
	if s.spans != nil {
		if lc, ok := spec.Scheme.(ecc.LineCodec); ok {
			if cap(s.kernData) >= ecc.LineBytes {
				s.kernData = s.kernData[:ecc.LineBytes]
			} else {
				s.kernData = make([]byte, ecc.LineBytes)
			}
			for i := range s.kernData {
				s.kernData[i] = byte(2*i + 1)
			}
			if orig, err := lc.EncodeLine(s.kernData); err == nil {
				s.kernCodec = lc
				s.kernOrig = orig
				if cap(s.kernBuf) >= len(orig) {
					s.kernBuf = s.kernBuf[:len(orig)]
				} else {
					s.kernBuf = make([]byte, len(orig))
				}
			}
		}
		if s.hasCRC {
			s.kernCRC = traceCRC
		}
	}

	// Patrol order over physical slots, fixed for the run. With leveling
	// the spare slot is appended to the walk (and the live gap is skipped
	// at visit time).
	if cap(s.visitOrder) >= slots {
		s.visitOrder = s.visitOrder[:0]
	} else {
		s.visitOrder = make([]int32, 0, slots)
	}
	walker := mem.NewScrubWalker(spec.Geometry)
	for i := 0; i < lines; i++ {
		line, _ := walker.Next()
		s.visitOrder = append(s.visitOrder, int32(line))
	}
	for extra := lines; extra < slots; extra++ {
		s.visitOrder = append(s.visitOrder, int32(extra))
	}
	// Scrub-path fault injection (nil injector = bit-identical baseline).
	inj, err := fault.NewInjector(spec.Fault, spec.Seed)
	if err != nil {
		return nil, err
	}
	s.inj = inj
	if inj != nil {
		// Stuck check bits are a property of the physical slot, rolled
		// once for the whole run from the injector's own stream.
		s.stuckCheck = growU8(s.stuckCheck, slots)
		for i := 0; i < slots; i++ {
			s.stuckCheck[i] = uint8(inj.LineStuckCheck())
		}
	}
	// Initialise slots: endurance draws, pre-aging, initial write at t=0.
	for i := 0; i < slots; i++ {
		s.weakBuf = s.wearM.SampleWeakest(s.rng, s.weakBuf)
		copy(s.weakest[i*s.kw:(i+1)*s.kw], s.weakBuf)
		s.writes[i] = spec.InitialLineWrites
		s.writeLine(i, 0)
	}
	// On-die ECC layer and active-profiling state. Both are RNG-free, so
	// their presence cannot perturb the run's random stream; nil layer +
	// nil profiler is the byte-identical baseline. The initial Luo
	// assignment works off the uniform post-init write census, weakening
	// the lowest-numbered lines until real traffic differentiates them.
	layer, err := ondie.NewLayer(spec.OnDie, slots)
	if err != nil {
		return nil, err
	}
	s.ondie = layer
	if layer != nil {
		layer.Assign(s.writes[:slots])
	}
	if pp, ok := spec.Policy.(scrub.Profiler); ok {
		cfg := pp.Profile()
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		s.prof = newProfiler(cfg)
	} else {
		s.prof = nil
	}
	s.res.PolicyName = spec.Policy.Name()
	s.res.SchemeName = spec.Scheme.Name()
	s.res.WorkloadName = spec.Workload.Name
	s.res.Lines = lines
	return s, nil
}

// codewordBits returns the bits occupied by one encoded line, including
// the CRC when light detection is configured.
func (s *state) codewordBits() int {
	bits := s.dataBits + s.checkBits
	if s.hasCRC {
		bits += crcBits
	}
	if s.spec.ECPEntries > 0 {
		// The pointer table travels with the line: its bits are read and
		// rewritten alongside the data.
		p := ecp.Params{
			Entries:      s.spec.ECPEntries,
			CellsPerLine: pcm.CellsPerLine,
			BitsPerCell:  pcm.BitsPerCell,
		}
		bits += p.OverheadBits()
	}
	return bits
}

// writeLine reprograms a line at absolute time t: resets its drift clock,
// samples fresh crossing times, advances wear, and re-rolls stuck bits.
// Energy is charged by the caller (demand vs scrub attribution).
func (s *state) writeLine(i int, t float64) {
	s.writes[i]++
	s.writeTime[i] = t
	base := i * s.k
	if s.spec.SLCFraction > 0 && s.rng.Bernoulli(s.spec.SLCFraction) {
		// Form switch: this write compressed the line into SLC form,
		// whose band separation puts drift crossings beyond the horizon.
		for j := 0; j < s.k; j++ {
			s.crossings[base+j] = math.Inf(1)
		}
		s.crossCount[i] = 0
	} else {
		s.crossBuf = s.sampler.SampleCrossings(s.rng, s.crossBuf)
		for j := 0; j < s.k; j++ {
			if j < len(s.crossBuf) {
				s.crossings[base+j] = t + s.crossBuf[j]
			} else {
				s.crossings[base+j] = math.Inf(1)
			}
		}
		s.crossCount[i] = uint8(len(s.crossBuf))
	}
	dead := wear.DeadCells(s.weakest[i*s.kw:(i+1)*s.kw], uint64(s.writes[i]))
	// ECP patches the first ECPEntries stuck cells before ECC sees the
	// line; only the residual erodes the correction margin, and the
	// wear-aware policy reasons about that residual.
	_, residual := ecp.Absorb(s.spec.ECPEntries, dead)
	s.deadCells[i] = uint8(residual)
	_, bits := wear.StuckErrors(s.rng, residual)
	if bits > 255 {
		bits = 255
	}
	s.stuckBits[i] = uint8(bits)
}

// errorBits returns the bit-error count a check at time t observes on line
// i, and whether the count is saturated (the true count may be higher).
func (s *state) errorBits(i int, t float64) (int, bool) {
	base := i * s.k
	n := int(s.crossCount[i])
	drift := 0
	for j := 0; j < n; j++ {
		if s.crossings[base+j] <= t {
			drift++
		} else {
			break // crossings are sorted ascending
		}
	}
	saturated := drift == s.k
	return drift + int(s.stuckBits[i]), saturated
}

// attributeDetection estimates, for a UE found by this scrub visit, how
// long the line had been uncorrectable and whether a demand read would
// have hit it first. Onset is approximated by the drift crossing that
// completed the failing pattern (the (capability+1-stuck)-th, clamped to
// the observed crossings); the read race uses the workload's average
// per-footprint-line read rate, thinned by the footprint fraction.
func (s *state) attributeDetection(i int, t float64, capability int) {
	base := i * s.k
	drift := 0
	for j := 0; j < int(s.crossCount[i]); j++ {
		if s.crossings[base+j] <= t {
			drift++
		} else {
			break
		}
	}
	onset := s.writeTime[i]
	if drift > 0 {
		d := capability + 1 - int(s.stuckBits[i])
		if d < 1 {
			d = 1
		}
		if d > drift {
			d = drift
		}
		onset = s.crossings[base+d-1]
	}
	delay := t - onset
	if delay < 0 {
		delay = 0
	}
	s.res.UEDetectDelay.Add(delay)
	lambda := s.spec.Workload.ReadsPerLinePerSec
	if lambda > 0 && s.rng.Bernoulli(s.spec.Workload.FootprintFrac) &&
		s.rng.Bernoulli(-math.Expm1(-lambda*delay)) {
		s.res.UEsReadFirst++
	}
}

// mapSlot resolves a logical line to its current physical slot.
func (s *state) mapSlot(logical int) int {
	if s.lev == nil {
		return logical
	}
	return s.lev.Physical(logical)
}

// recordArrayWrite advances the wear leveler's write counter and performs
// any gap moves it triggers: each move rewrites the destination slot now
// (fresh drift clock, wear, energy). Gap-move writes themselves do not
// advance the counter, matching the Start-Gap design.
func (s *state) recordArrayWrite(t float64) {
	if s.lev == nil {
		return
	}
	s.moveBuf = s.lev.RecordWrites(1, s.moveBuf)
	for _, mv := range s.moveBuf {
		s.writeLine(mv.To, t)
		s.acct.LineWrite(&s.res.DemandEnergy, s.codewordBits())
		s.res.LevelerMoves++
	}
}

// chargeDecode charges the scheme's full decode cost to the ledger.
func (s *state) chargeDecode(l *energy.Ledger) {
	if ws, ok := s.scheme.(secdedLike); ok {
		s.acct.SECDEDDecode(l, ws.Words())
	} else {
		s.acct.BCHDecode(l, s.scheme.T())
	}
}

// traceCRC is the CRC kernel shared by trace-mode probe exercises; built
// once, immutable, safe for concurrent runs.
var traceCRC = ecc.NewCRC16()

// kernelProbe times one real CRC-16 probe over the scratch payload under
// StageKernel. No-op outside trace mode.
func (s *state) kernelProbe() {
	if s.kernCRC == nil {
		return
	}
	start := time.Now()
	_ = s.kernCRC.Sum(s.kernData)
	s.spans.observe(StageKernel, start, 1)
}

// kernelDecode times one real kernel line decode under StageKernel: the
// scratch codeword gets min(observed, T) deterministic bit flips spread
// across the line (so per-word codes see at most one per word) and runs
// through the scheme's word-parallel DecodeLine. No-op outside trace
// mode; draws no randomness and writes no Result fields.
func (s *state) kernelDecode(observed int) {
	lc := s.kernCodec
	if lc == nil {
		return
	}
	start := time.Now()
	buf := s.kernBuf[:len(s.kernOrig)]
	copy(buf, s.kernOrig)
	nf := observed
	if t := lc.T(); nf > t {
		nf = t
	}
	if nf > 0 {
		bits := lc.DataBits() + lc.CheckBits()
		stride := bits / nf
		s.kernSeq = s.kernSeq*6364136223846793005 + 1442695040888963407
		off := int(s.kernSeq>>33) % stride
		for j := 0; j < nf; j++ {
			pos := j*stride + off
			buf[pos>>3] ^= 1 << uint(pos&7)
		}
	}
	_, _ = lc.DecodeLine(buf)
	s.spans.observe(StageKernel, start, 1)
}

// visit performs one scrub visit of line i at time t.
//
// With fault injection enabled, the visit distinguishes the line's true
// error count (errBits) from what the imperfect scrub machinery observes
// (observed): phantom read flips inflate the observation transiently, and
// stuck check bits erode the decode margin. Detection, write-back, and UE
// decisions all act on the observation — exactly as real hardware would —
// while CorrectedBits keeps counting real bits so reliability metrics
// stay truthful. When the injector is nil, observed == errBits on every
// path and the visit is bit-identical to the baseline.
//
// Span instrumentation (s.spans) never touches the RNG; with spans nil
// the extra cost is one predictable branch per section.
func (s *state) visit(i int, t float64, rs *scrub.RoundStats) {
	s.res.ScrubVisits++
	rs.Lines++
	errBits, _ := s.errorBits(i, t)
	if s.ondie != nil {
		// The chip corrects before the controller looks: everything below
		// — detection, write-back, UE decisions, corrected-bit accounting
		// — sees only the post-on-die error count. The transform draws no
		// randomness, so a disabled layer is byte-identical.
		var odStart time.Time
		if s.spans != nil {
			odStart = time.Now()
		}
		errBits = s.ondie.Observe(i, errBits)
		if s.spans != nil {
			s.spans.observe(StageOnDie, odStart, 1)
		}
	}
	observed := errBits
	if s.inj != nil {
		observed += s.inj.ReadFlip()
	}

	var spanStart time.Time
	switch s.policy.Detection() {
	case scrub.LightDetect:
		// Read data + CRC, run the cheap probe (trace mode also times a
		// real CRC kernel pass under StageKernel).
		s.kernelProbe()
		if s.spans != nil {
			spanStart = time.Now()
		}
		s.acct.LineRead(&s.res.ScrubEnergy, s.dataBits+crcBits)
		s.acct.CRCCheck(&s.res.ScrubEnergy)
		s.res.ScrubProbes++
		if observed == 0 {
			if s.spans != nil {
				s.spans.observe(StageProbe, spanStart, 1)
			}
			return
		}
		if s.rng.Bernoulli(crcMissProb) {
			if s.spans != nil {
				s.spans.observe(StageProbe, spanStart, 1)
			}
			return // checksum aliased; errors stay until next look
		}
		if s.inj != nil && s.inj.ProbeFalseClean() {
			if s.spans != nil {
				s.spans.observe(StageProbe, spanStart, 1)
			}
			return // injected detector fault: erroneous line reads clean
		}
		if s.spans != nil {
			s.spans.observe(StageProbe, spanStart, 1)
			spanStart = time.Now()
		}
		// Probe fired: fetch the check bits and decode for the count.
		s.acct.LineRead(&s.res.ScrubEnergy, s.checkBits)
		s.chargeDecode(&s.res.ScrubEnergy)
		s.res.ScrubDecodes++
		if s.spans != nil {
			s.spans.observe(StageDecode, spanStart, 1)
		}
		s.kernelDecode(observed)
	default: // FullDecode
		if s.spans != nil {
			spanStart = time.Now()
		}
		s.acct.LineRead(&s.res.ScrubEnergy, s.dataBits+s.checkBits)
		s.chargeDecode(&s.res.ScrubEnergy)
		s.res.ScrubDecodes++
		if s.spans != nil {
			s.spans.observe(StageDecode, spanStart, 1)
		}
		s.kernelDecode(observed)
	}

	// Stuck ECC check bits corrupt the syndromes the decoder works
	// against, eroding the line's effective correction margin.
	if s.inj != nil && s.stuckCheck[i] > 0 {
		if errBits > 0 {
			s.inj.NoteStuckDecode()
		}
		observed += int(s.stuckCheck[i])
	}

	if observed > s.res.MaxErrBits {
		s.res.MaxErrBits = observed
	}
	if observed > rs.MaxErrBits {
		rs.MaxErrBits = observed
	}
	capability := s.scheme.T()
	if observed > 0 && observed >= capability-1 {
		rs.LinesNearMargin++
	}
	if observed > 0 && !s.scheme.Correctable(s.rng, observed) {
		// Uncorrectable: count the UE and repair the line so the excursion
		// is counted exactly once.
		if s.spans != nil {
			spanStart = time.Now()
		}
		s.res.UEs++
		rs.UEs++
		if s.inj != nil && observed != errBits && errBits <= capability {
			// Only the injected fault pushed the pattern past the margin.
			s.inj.NoteInducedUE()
		}
		s.attributeDetection(i, t, capability)
		s.writeLine(i, t)
		s.acct.LineWrite(&s.res.ScrubEnergy, s.codewordBits())
		s.res.RepairWrites++
		s.recordArrayWrite(t)
		if s.spans != nil {
			s.spans.observe(StageRepair, spanStart, 1)
		}
		return
	}
	// Clean lines reach here only under FullDecode (the light probe
	// returns early); policies with a write threshold >= 1 leave them
	// alone, while the naive always-write patrol rewrites them too.
	info := scrub.VisitInfo{ErrBits: observed, Capability: capability, DeadCells: int(s.deadCells[i])}
	if s.policy.ShouldWriteBack(info) {
		if s.spans != nil {
			spanStart = time.Now()
		}
		s.res.CorrectedBits += int64(errBits)
		s.writeLine(i, t)
		s.acct.LineWrite(&s.res.ScrubEnergy, s.codewordBits())
		s.res.ScrubWriteBacks++
		rs.WriteBacks++
		s.recordArrayWrite(t)
		if s.spans != nil {
			s.spans.observe(StageWriteBack, spanStart, 1)
		}
	}
}

// run executes sweeps until the horizon. Cancellation is checked every
// substep and every visitStride visits within a substep, so the method
// returns within O(visitStride) visits of ctx ending.
func (s *state) run(ctx context.Context) error {
	t := 0.0
	interval := s.spec.ScrubInterval
	sinceCheck := 0
	for t+interval <= s.spec.Horizon+1e-9 {
		// Injected controller faults: a stall stretches this sweep's
		// duration (drift accumulates longer between visits), and an
		// interruption silently drops the patrol suffix past the cutoff.
		sweepDur := interval
		cutoff := s.slots
		if s.inj != nil {
			if f := s.inj.StallFactor(); f > 1 {
				sweepDur = interval * f
				s.inj.NoteStallSeconds(sweepDur - interval)
			}
			cutoff = s.inj.SweepCutoff(s.slots)
		}
		rs := scrub.RoundStats{Capability: s.scheme.T()}
		dt := sweepDur / float64(s.spec.Substeps)
		perStep := (s.slots + s.spec.Substeps - 1) / s.spec.Substeps
		for step := 0; step < s.spec.Substeps; step++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: run canceled at t=%.0fs: %w", t, err)
			}
			t0 := t + float64(step)*dt
			var spanStart time.Time
			if s.spans != nil {
				spanStart = time.Now()
			}
			// Demand writes land before this substep's visits.
			s.eventBuf = s.source.WritesInEpoch(s.rng, t0, dt, s.eventBuf)
			for _, line := range s.eventBuf {
				tw := t0 + s.rng.Float64()*dt
				s.writeLine(s.mapSlot(line), tw)
				s.acct.LineWrite(&s.res.DemandEnergy, s.codewordBits())
				s.res.DemandWrites++
				s.recordArrayWrite(tw)
			}
			if s.spans != nil {
				s.spans.observe(StageDemand, spanStart, int64(len(s.eventBuf)))
			}
			// Scrub visits for this slice of the patrol order. With
			// leveling enabled the slot currently serving as the gap
			// holds stale data and is skipped.
			lo := step * perStep
			hi := lo + perStep
			if hi > s.slots {
				hi = s.slots
			}
			if hi > cutoff {
				hi = cutoff // sweep interrupted: suffix never visited
			}
			for pos := lo; pos < hi; pos++ {
				if sinceCheck++; sinceCheck >= visitStride {
					sinceCheck = 0
					if err := ctx.Err(); err != nil {
						return fmt.Errorf("engine: run canceled at t=%.0fs: %w", t, err)
					}
				}
				slot := int(s.visitOrder[pos])
				if s.lev != nil && slot == s.lev.Gap() {
					continue
				}
				// Profiling bias: every period-th visit is re-aimed at an
				// at-risk line instead of the uniform patrol target. The
				// visit count per sweep is unchanged — biased scheduling
				// spends the same scrub bandwidth.
				if s.prof != nil {
					if r := s.prof.redirect(); r >= 0 && !(s.lev != nil && r == s.lev.Gap()) {
						slot = r
						s.prof.redirected++
					}
				}
				tv := t + sweepDur*float64(pos)/float64(s.slots)
				s.visit(slot, tv, &rs)
			}
		}
		t += sweepDur
		s.res.Sweeps++
		var spanStart time.Time
		if s.spans != nil {
			spanStart = time.Now()
		}
		if s.spec.RecordRounds {
			s.res.Rounds = append(s.res.Rounds, RoundRecord{Start: t - sweepDur, Interval: sweepDur, Stats: rs})
		}
		interval = s.policy.NextInterval(interval, rs)
		if s.spans != nil {
			s.spans.observe(StageControl, spanStart, 1)
		}
		s.maybeProfile(t)
		if s.hooks != nil {
			if s.hooks.Round != nil {
				s.hooks.Round(RoundRecord{Start: t - sweepDur, Interval: sweepDur, Stats: rs})
			}
			if s.hooks.Progress != nil {
				s.hooks.Progress(s.res.Sweeps, t, s.spec.Horizon)
			}
		}
	}
	s.res.SimSeconds = t
	s.res.FinalInterval = interval
	// Wear census over physical slots. deadCells holds the ECC-visible
	// residual, so recompute the raw stuck count for reporting.
	for i := 0; i < s.slots; i++ {
		s.res.TotalLineWrites += int64(s.writes[i])
		if s.writes[i] > s.res.MaxLineWrites {
			s.res.MaxLineWrites = s.writes[i]
		}
		dead := wear.DeadCells(s.weakest[i*s.kw:(i+1)*s.kw], uint64(s.writes[i]))
		if dead > 0 {
			s.res.LinesWithDead++
			s.res.DeadCells += int64(dead)
		}
		covered, _ := ecp.Absorb(s.spec.ECPEntries, dead)
		s.res.ECPCoveredCells += int64(covered)
	}
	if s.inj != nil {
		s.res.Faults = s.inj.Counts()
	}
	s.foldInstr(&s.res)
	return nil
}
