package engine

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/ondie"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/trace"
	"repro/internal/wear"
)

// System bundles everything about the simulated machine that is *not* a
// scrub-mechanism choice: device physics, geometry, energy costs, horizon.
// (core re-exports this type; the study's defaults live in
// core.DefaultSystem.)
type System struct {
	Geometry          mem.Geometry
	PCM               pcm.Params
	Mix               pcm.LevelMix
	Wear              wear.Params
	InitialLineWrites uint32
	Energy            energy.Params
	Timing            memctrl.Params
	// Horizon is the simulated duration per run, in seconds.
	Horizon float64
	// Substeps per scrub sweep (0 = simulator default).
	Substeps int
	// RiskTarget is the per-line, per-sweep probability of exceeding the
	// ECC margin that fixed intervals are derived from.
	RiskTarget float64
	Seed       uint64
	// Fault injects scrub-path faults into every run of this system (nil
	// or all-zero = the perfect-scrub baseline). It lives on System, not
	// Mechanism, because an imperfect controller afflicts every mechanism
	// evaluated on the machine.
	Fault *fault.Plan
	// OnDie configures chip-internal ECC (nil or all-zero = none). Like
	// Fault it lives on System, not Mechanism: the on-die code is baked
	// into the memory parts, so every mechanism evaluated on the machine
	// sees the same hidden-error regime.
	OnDie *ondie.Config
}

// Validate checks the system description.
func (s *System) Validate() error {
	if err := s.Geometry.Validate(); err != nil {
		return err
	}
	if err := s.PCM.Validate(); err != nil {
		return err
	}
	if err := s.Mix.Validate(); err != nil {
		return err
	}
	if err := s.Wear.Validate(); err != nil {
		return err
	}
	if err := s.Energy.Validate(); err != nil {
		return err
	}
	if err := s.Timing.Validate(); err != nil {
		return err
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("core: Horizon must be positive")
	}
	if s.RiskTarget <= 0 || s.RiskTarget >= 1 {
		return fmt.Errorf("core: RiskTarget must be in (0,1)")
	}
	if err := s.Fault.Validate(); err != nil {
		return err
	}
	if err := s.OnDie.Validate(); err != nil {
		return err
	}
	return nil
}

// Mechanism is one point in the scrub design space: an ECC scheme, a
// policy, and an initial sweep interval.
type Mechanism struct {
	Name     string
	Scheme   ecc.Scheme
	Policy   scrub.Policy
	Interval float64
}

// Options exposes simulator-only knobs that are not part of a Mechanism:
// the optional substrates layered under the scrub study, plus run
// instrumentation.
type Options struct {
	// GapMovePeriod enables Start-Gap wear leveling (0 = off).
	GapMovePeriod uint64
	// SLCFraction stores this fraction of writes drift-free in SLC form.
	SLCFraction float64
	// Source replays an explicit event stream instead of the workload's
	// synthetic generator (nil = synthetic).
	Source TrafficSource
	// ECPEntries patches this many known stuck cells per line before ECC
	// (error-correcting pointers; 0 = off).
	ECPEntries int
	// RecordRounds retains per-sweep statistics in the result.
	RecordRounds bool
	// Hooks instruments the run (spans, progress, rounds); nil runs
	// uninstrumented. Hooks never change results.
	Hooks *Hooks
}

// ResolveSpec is the repository's single conversion site from the layered
// (system, mechanism, workload, options) description to the engine's
// resolved Spec. Every runner — core's RunOne*/RunReplicated/shards, the
// scrubd service, the cluster workers — goes through here, so config
// plumbing semantics cannot drift between execution paths.
func ResolveSpec(sys System, m Mechanism, w trace.Workload, o Options) Spec {
	return Spec{
		Geometry:          sys.Geometry,
		PCM:               sys.PCM,
		Mix:               sys.Mix,
		Wear:              sys.Wear,
		InitialLineWrites: sys.InitialLineWrites,
		Energy:            sys.Energy,
		Scheme:            m.Scheme,
		Policy:            m.Policy,
		ScrubInterval:     m.Interval,
		Horizon:           sys.Horizon,
		Substeps:          sys.Substeps,
		Workload:          w,
		Seed:              sys.Seed,
		Fault:             sys.Fault,
		OnDie:             sys.OnDie,
		GapMovePeriod:     o.GapMovePeriod,
		SLCFraction:       o.SLCFraction,
		Source:            o.Source,
		ECPEntries:        o.ECPEntries,
		RecordRounds:      o.RecordRounds,
		Hooks:             o.Hooks,
	}
}
