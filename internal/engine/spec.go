package engine

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/ondie"
	"repro/internal/pcm"
	"repro/internal/scrub"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wear"
)

// crcBits is the storage cost of the lightweight detection checksum.
const crcBits = 16

// crcMissProb is the aliasing probability of the 16-bit checksum: the
// chance a genuinely erroneous line reads as clean on a light probe.
const crcMissProb = 1.0 / 65536.0

// Spec is the fully resolved description of one simulation run — the
// single input of the engine. It subsumes the system description
// (geometry, physics, energy), the mechanism under test (scheme, policy,
// interval), the workload, and every optional substrate (leveling, SLC
// form switch, ECP, trace replay, fault injection).
type Spec struct {
	// Geometry shapes the simulated region.
	Geometry mem.Geometry
	// PCM is the drift physics.
	PCM pcm.Params
	// Mix is the data-dependent level distribution of written lines.
	Mix pcm.LevelMix
	// Wear is the endurance model.
	Wear wear.Params
	// InitialLineWrites pre-ages every line (0 = fresh device).
	InitialLineWrites uint32
	// Energy is the per-operation cost table.
	Energy energy.Params
	// Scheme is the ECC protection per line.
	Scheme ecc.Scheme
	// Policy is the scrub decision logic.
	Policy scrub.Policy
	// ScrubInterval is the initial sweep interval in seconds.
	ScrubInterval float64
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// Substeps per sweep (time resolution of write/scrub interleaving);
	// 0 selects the default of 16.
	Substeps int
	// Workload drives demand traffic.
	Workload trace.Workload
	// Seed makes the run reproducible.
	Seed uint64
	// TrackK overrides how many earliest crossings are tracked per line;
	// 0 selects max(T+4, 8) capped at 16.
	TrackK int
	// RecordRounds retains per-sweep statistics in the result.
	RecordRounds bool
	// GapMovePeriod enables Start-Gap wear leveling: the gap moves after
	// every GapMovePeriod array writes (0 disables leveling). The classic
	// setting of 100 adds 1 % write overhead.
	GapMovePeriod uint64
	// SLCFraction models form-switch storage: on each write, this fraction
	// of lines (the compressible ones) is stored in SLC form, whose huge
	// band separation makes drift crossings negligible. 0 disables.
	SLCFraction float64
	// Source optionally overrides the Workload's synthetic generator with
	// an explicit event stream (e.g. a trace.Replayer over a recorded
	// trace). Workload is still required: its rates parameterise the
	// read-race attribution and validation.
	Source TrafficSource
	// ECPEntries enables Error-Correcting Pointers: up to this many known
	// stuck cells per line are patched before ECC sees the data (0 = off).
	ECPEntries int
	// Fault injects scrub-path faults (imperfect reads, interrupted
	// sweeps, detector aliasing, stuck check bits, controller stalls).
	// nil or an all-zero plan leaves the run bit-identical to a build
	// without fault injection.
	Fault *fault.Plan
	// OnDie layers chip-internal ECC between the cell model and the
	// controller codec: raw errors up to the per-line strength are
	// silently hidden from every controller-side observation. nil or an
	// all-zero config leaves the run bit-identical to a build without
	// the layer.
	OnDie *ondie.Config
	// Hooks optionally instruments the run (per-stage spans, progress and
	// round callbacks). Hooks never touch the RNG stream, so an
	// instrumented run's Result is identical to an uninstrumented one.
	Hooks *Hooks
}

// TrafficSource supplies demand-write targets per epoch. Both
// trace.Generator and trace.Replayer satisfy it.
type TrafficSource interface {
	// WritesInEpoch returns the lines written in [t, t+dt), reusing buf.
	WritesInEpoch(r *stats.RNG, t, dt float64, buf []int) []int
}

// Validate checks the specification.
func (c *Spec) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.PCM.Validate(); err != nil {
		return err
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if err := c.Wear.Validate(); err != nil {
		return err
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if c.Scheme == nil {
		return fmt.Errorf("engine: Scheme is required")
	}
	if c.Policy == nil {
		return fmt.Errorf("engine: Policy is required")
	}
	if c.ScrubInterval <= 0 {
		return fmt.Errorf("engine: ScrubInterval must be positive")
	}
	if c.Horizon < c.ScrubInterval {
		return fmt.Errorf("engine: Horizon (%g) must cover at least one sweep (%g)", c.Horizon, c.ScrubInterval)
	}
	if c.Substeps < 0 {
		return fmt.Errorf("engine: Substeps must be non-negative")
	}
	if c.TrackK < 0 || c.TrackK > 16 {
		return fmt.Errorf("engine: TrackK must be in [0,16]")
	}
	if c.SLCFraction < 0 || c.SLCFraction > 1 {
		return fmt.Errorf("engine: SLCFraction must be in [0,1]")
	}
	if c.ECPEntries < 0 {
		return fmt.Errorf("engine: ECPEntries must be non-negative")
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if err := c.OnDie.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	return nil
}
