package engine

import (
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/scrub"
	"repro/internal/stats"
)

// RoundRecord captures one sweep when Spec.RecordRounds is set.
type RoundRecord struct {
	Start    float64
	Interval float64
	Stats    scrub.RoundStats
}

// Result is the outcome of one simulation run.
type Result struct {
	PolicyName   string
	SchemeName   string
	WorkloadName string

	Lines      int
	SimSeconds float64
	Sweeps     int

	// Reliability.
	UEs           int64
	CorrectedBits int64
	MaxErrBits    int

	// Scrub activity.
	ScrubVisits     int64
	ScrubDecodes    int64
	ScrubProbes     int64 // lightweight CRC checks
	ScrubWriteBacks int64 // policy write-backs (excludes repairs)
	RepairWrites    int64 // rewrites forced by UEs

	// Demand activity.
	DemandWrites int64

	// Energy.
	ScrubEnergy  energy.Ledger
	DemandEnergy energy.Ledger

	// Wear at end of run.
	TotalLineWrites int64
	DeadCells       int64
	LinesWithDead   int

	// Interval control.
	FinalInterval float64

	// ECPCoveredCells counts stuck cells neutralised by error-correcting
	// pointers at end of run (0 when ECP is off).
	ECPCoveredCells int64

	// Wear leveling (when enabled).
	LevelerMoves int64
	// MaxLineWrites is the largest per-slot write count at end of run —
	// the wear hot-spot metric Start-Gap exists to flatten.
	MaxLineWrites uint32

	// UE detection attribution. Scrub counts every UE, but if demand
	// reads had raced the scrub sweep, some would have surfaced to
	// software first; UEsReadFirst estimates how many (using the
	// workload's average per-footprint-line read rate), and
	// UEDetectDelay is the time each UE spent latent between becoming
	// uncorrectable and the detecting sweep.
	UEsReadFirst  int64
	UEDetectDelay stats.Summary

	// Faults attributes injected scrub-path fault activity (all zero
	// when Spec.Fault is nil or all-zero).
	Faults fault.Counts

	// On-die ECC (all zero when Spec.OnDie is nil or all-zero).
	// OnDieCorrectedBits counts raw error bits the chip hid from the
	// controller; OnDieOverflows counts observations whose raw pattern
	// exceeded the on-die strength and surfaced miscorrection-inflated.
	// The omitempty tags keep the result's JSON encoding — and with it
	// every pre-existing golden result fingerprint — byte-identical
	// while the subsystem is disabled.
	OnDieCorrectedBits int64 `json:",omitempty"`
	OnDieOverflows     int64 `json:",omitempty"`
	// OnDieWeakLines and OnDieCheckBitsSaved report the Luo-style
	// capacity trade: lines running the weaker code and the check-bit
	// storage that reclaimed.
	OnDieWeakLines      int   `json:",omitempty"`
	OnDieCheckBitsSaved int64 `json:",omitempty"`

	// Active profiling (all zero unless the policy is a scrub.Profiler).
	// Direct positions surface when the on-die decode fails outright;
	// indirect ones are pried out of still-correcting lines by repeated
	// profiling passes.
	ProfileRounds       int64 `json:",omitempty"`
	ProfileReads        int64 `json:",omitempty"`
	ProfileDirectBits   int64 `json:",omitempty"`
	ProfileIndirectBits int64 `json:",omitempty"`
	// AtRiskLines is the at-risk set size at end of run; AtRiskVisits
	// counts patrol visits redirected toward at-risk lines.
	AtRiskLines  int   `json:",omitempty"`
	AtRiskVisits int64 `json:",omitempty"`

	Rounds []RoundRecord
}

// ScrubWrites returns all scrub-attributed array writes (write-backs plus
// UE repairs) — the paper's "scrub-related writes" metric.
func (r *Result) ScrubWrites() int64 { return r.ScrubWriteBacks + r.RepairWrites }

// UERatePerGBDay normalises UEs to a fleet-comparable rate.
func (r *Result) UERatePerGBDay(lineBytes int) float64 {
	gb := float64(r.Lines) * float64(lineBytes) / 1e9
	days := r.SimSeconds / 86400
	if gb == 0 || days == 0 {
		return 0
	}
	return float64(r.UEs) / gb / days
}

// ScrubReadRate returns average scrub reads per second over the run.
func (r *Result) ScrubReadRate() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.ScrubVisits) / r.SimSeconds
}

// ScrubWriteRate returns average scrub writes per second over the run.
func (r *Result) ScrubWriteRate() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.ScrubWrites()) / r.SimSeconds
}
