package engine

import (
	"sort"
	"time"

	"repro/internal/scrub"
)

// profiler holds the per-device active-profiling state (HARP-style): the
// at-risk line set built by profiling rounds and the visit-redirection
// bookkeeping that biases patrol toward it. It lives on the engine state,
// not the policy — policies stay stateless per the scrub.Policy contract,
// and a pooled state drops it on release.
type profiler struct {
	cfg scrub.ProfileConfig

	// atRisk is the current at-risk set, sorted ascending by slot so the
	// round-robin redirection order is a pure function of the set.
	atRisk []int32
	// next is the round-robin cursor into atRisk.
	next int
	// visitTick counts patrol visits since the last redirection; every
	// period-th visit is redirected to an at-risk slot.
	visitTick int
	period    int
	// sinceRound counts sweeps (or patrol wraps on a device) since the
	// last profiling round.
	sinceRound int

	rounds, reads    int64
	direct, indirect int64
	redirected       int64

	// riskBuf is scratch for round candidate selection.
	riskBuf []riskEntry
}

type riskEntry struct {
	slot  int32
	known int32
}

// newProfiler derives the redirection period from the bias fraction:
// BiasFraction 0.25 redirects every 4th visit.
func newProfiler(cfg scrub.ProfileConfig) *profiler {
	period := int(1.0/cfg.BiasFraction + 0.5)
	if period < 1 {
		period = 1
	}
	return &profiler{cfg: cfg, period: period}
}

// redirect returns the at-risk slot the next patrol visit should be
// diverted to, or -1 to keep the uniform patrol target. Diverted visits
// replace uniform ones one-for-one, so total scrub bandwidth is
// unchanged — profiling re-aims the same visits.
func (p *profiler) redirect() int {
	if len(p.atRisk) == 0 {
		return -1
	}
	p.visitTick++
	if p.visitTick%p.period != 0 {
		return -1
	}
	slot := int(p.atRisk[p.next])
	p.next++
	if p.next >= len(p.atRisk) {
		p.next = 0
	}
	return slot
}

// maybeProfile runs a profiling round if the cadence says one is due;
// the caller invokes it once per completed sweep (or patrol wrap).
func (s *state) maybeProfile(t float64) {
	p := s.prof
	if p == nil {
		return
	}
	p.sinceRound++
	if p.sinceRound < p.cfg.Every {
		return
	}
	p.sinceRound = 0
	s.profileRound(t)
}

// profileRound rebuilds the at-risk set by reading every line Passes
// times through the on-die layer. Profiling is read-only — it never
// rewrites lines, so it cannot masquerade as a hidden extra scrub; its
// only influence on the trajectory is where later patrol visits land
// (plus the read energy it burns).
//
// Error discovery follows HARP's direct/indirect split. Profiling reads
// target persistent (stuck-cell) errors: drift errors are transient
// analog excursions a deliberate test pattern does not reproduce.
//   - If a line's stuck count exceeds its on-die strength, the on-die
//     decode fails and every erroneous position is visible at once
//     (direct).
//   - While the on-die code still corrects, the positions are hidden;
//     each profiling pass beyond the first can expose at most one more
//     hidden position (indirect), so a round with P passes knows at
//     most P-1 hidden positions per line.
//
// The transform is RNG-free: a profiled run consumes exactly the same
// random stream as an unprofiled one, which the golden byte-identity
// tests rely on.
func (s *state) profileRound(t float64) {
	p := s.prof
	var spanStart time.Time
	if s.spans != nil {
		spanStart = time.Now()
	}
	p.rounds++
	p.reads += int64(p.cfg.Passes) * int64(s.slots)
	// Charge the profiling reads: Passes data-word reads per line.
	s.acct.LineRead(&s.res.ScrubEnergy, s.dataBits*p.cfg.Passes*s.slots)

	p.riskBuf = p.riskBuf[:0]
	for i := 0; i < s.slots; i++ {
		raw := int(s.stuckBits[i])
		if raw == 0 {
			continue
		}
		strength := 0
		if s.ondie != nil {
			strength = s.ondie.Strength(i)
		}
		var known int
		if raw > strength {
			known = raw
			p.direct += int64(raw)
		} else {
			known = p.cfg.Passes - 1
			if known > raw {
				known = raw
			}
			p.indirect += int64(known)
		}
		if known >= p.cfg.RiskThreshold {
			p.riskBuf = append(p.riskBuf, riskEntry{slot: int32(i), known: int32(known)})
		}
	}

	// Cap the set at MaxAtRiskFraction of the device, keeping the lines
	// with the most known positions (ties to the lower slot), then store
	// in slot order so redirection is deterministic.
	maxN := int(p.cfg.MaxAtRiskFraction*float64(s.slots) + 0.5)
	if maxN < 1 {
		maxN = 1
	}
	if len(p.riskBuf) > maxN {
		sort.Slice(p.riskBuf, func(a, b int) bool {
			if p.riskBuf[a].known != p.riskBuf[b].known {
				return p.riskBuf[a].known > p.riskBuf[b].known
			}
			return p.riskBuf[a].slot < p.riskBuf[b].slot
		})
		p.riskBuf = p.riskBuf[:maxN]
		sort.Slice(p.riskBuf, func(a, b int) bool { return p.riskBuf[a].slot < p.riskBuf[b].slot })
	}
	p.atRisk = p.atRisk[:0]
	for _, e := range p.riskBuf {
		p.atRisk = append(p.atRisk, e.slot)
	}
	if p.next >= len(p.atRisk) {
		p.next = 0
	}

	// A fresh write census is in hand: refresh the Luo-style strength
	// assignment so cooled-down lines shed on-die parity.
	if s.ondie != nil {
		s.ondie.Assign(s.writes[:s.slots])
	}
	if s.spans != nil {
		s.spans.observe(StageOnDie, spanStart, 1)
	}
}

// foldInstr copies the on-die and profiling counters into res. run()
// calls it once at the end of a run; Device.Totals calls it on its
// snapshot so live fleet telemetry sees the same fields.
func (s *state) foldInstr(res *Result) {
	if s.ondie != nil {
		res.OnDieCorrectedBits = s.ondie.CorrectedBits()
		res.OnDieOverflows = s.ondie.Overflows()
		res.OnDieWeakLines = s.ondie.WeakLines()
		res.OnDieCheckBitsSaved = s.ondie.CheckBitsSaved()
	}
	if s.prof != nil {
		res.ProfileRounds = s.prof.rounds
		res.ProfileReads = s.prof.reads
		res.ProfileDirectBits = s.prof.direct
		res.ProfileIndirectBits = s.prof.indirect
		res.AtRiskLines = len(s.prof.atRisk)
		res.AtRiskVisits = s.prof.redirected
	}
}
