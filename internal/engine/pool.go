package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/pcm"
	"repro/internal/stats"
)

// statePool recycles run state between runs. Everything a run touches —
// the line-state slices, patrol order, scratch buffers, and both RNGs —
// is retained; newState re-sizes and re-initialises every entry before
// use, so no value ever leaks from one run into the next.
var statePool = sync.Pool{
	New: func() any {
		return &state{rng: new(stats.RNG), genRNG: new(stats.RNG)}
	},
}

// release returns the state to the pool, dropping every reference the run
// borrowed from its Spec (scheme, policy, traffic source, hooks) so the
// pool never pins caller objects, and dropping the result (its Rounds
// slice now belongs to the caller). Sized scratch slices are kept — they
// are the point of pooling.
func (s *state) release(r *Runner) {
	if r.DisablePooling {
		return
	}
	s.spec = Spec{}
	s.sampler = nil
	s.wearM = nil
	s.acct = nil
	s.source = nil
	s.scheme = nil
	s.policy = nil
	s.lev = nil
	s.inj = nil
	s.ondie = nil
	s.prof = nil
	s.hooks = nil
	s.spans = nil
	s.kernCodec = nil // borrowed from the Spec's scheme
	s.kernCRC = nil
	s.res = Result{}
	statePool.Put(s)
}

// growF64 returns buf resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified: callers fully initialise every
// entry (newState writes all slots before the first read).
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	return buf[:n]
}

func growU32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// samplerKey identifies a drift sampler by everything that determines its
// tables: the device physics, the level mix, and the tracked-crossing
// count (cells per line is the pcm.CellsPerLine constant).
type samplerKey struct {
	par pcm.Params
	mix pcm.LevelMix
	k   int
}

// samplerCache shares pcm.LineSampler instances across runs. A sampler is
// deterministic in its parameters (its pattern pool is seeded from a
// fixed constant) and read-only during sampling, so concurrent runs of
// the same device can share one. Construction costs ~400 KB of inverse-CDF
// grids plus the pattern pool, which campaigns would otherwise pay per
// run.
var (
	samplerCache     sync.Map // samplerKey -> *pcm.LineSampler
	samplerCacheSize atomic.Int64
)

// samplerCacheCap bounds the cache. A matrix campaign uses a handful of
// (physics, mix, k) combinations; past the cap new combinations are built
// per run instead of cached, so pathological parameter sweeps cannot grow
// the cache without bound.
const samplerCacheCap = 64

func cachedSampler(par pcm.Params, mix pcm.LevelMix, k int) (*pcm.LineSampler, error) {
	key := samplerKey{par: par, mix: mix, k: k}
	if v, ok := samplerCache.Load(key); ok {
		return v.(*pcm.LineSampler), nil
	}
	model, err := pcm.NewModel(par)
	if err != nil {
		return nil, err
	}
	s, err := pcm.NewLineSampler(model, mix, pcm.CellsPerLine, k)
	if err != nil {
		return nil, err
	}
	if samplerCacheSize.Load() < samplerCacheCap {
		if _, loaded := samplerCache.LoadOrStore(key, s); !loaded {
			samplerCacheSize.Add(1)
		}
	}
	return s, nil
}
