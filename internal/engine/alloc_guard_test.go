//go:build !race

// The race runtime instruments allocations, so the guard only runs in
// normal test builds.

package engine

import "testing"

// maxAllocsPerRun is the allocation budget for one pooled engine run of
// the benchmark spec. The pre-refactor sim loop spent 83 allocs/op; the
// issue's acceptance bar is >= 20% fewer (<= 66), and the pooled engine
// measures ~41. The bound sits between the two: loose enough to absorb
// run-to-run jitter (a GC can clear the state pool mid-measurement),
// tight enough that losing any pooling layer — scratch recycling, the
// sampler cache, batched endurance draws — trips it.
const maxAllocsPerRun = 60

// TestEngineRunAllocGuard is the regression fence for the hot loop's
// allocation behaviour.
func TestEngineRunAllocGuard(t *testing.T) {
	spec := testSpec()
	// Warm the pool and the sampler cache so the measurement sees the
	// steady state a campaign runs in.
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := Run(spec); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxAllocsPerRun {
		t.Errorf("engine run allocates %.1f objects/run, budget %d — a pooling layer regressed", avg, maxAllocsPerRun)
	}
}
