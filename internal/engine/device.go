package engine

import (
	"fmt"
	"math"

	"repro/internal/scrub"
)

// Device is a long-lived simulated memory device for continuous serving:
// the same cell-model state the one-shot pipeline runs to a horizon, held
// open indefinitely and advanced in bounded increments. Where RunContext
// owns the whole trajectory (sweep loop, interval control, wear census),
// a Device hands that control to the caller — the fleet control plane —
// which decides when to scrub what, at what simulated rate, and when to
// repair.
//
// A Device accumulates wear, drift state, and demand traffic across
// calls; with a fixed Spec.Seed the full trajectory is a pure function of
// the call sequence, so a fleet session replayed with the same control
// decisions reproduces byte-identical telemetry.
//
// Devices are not safe for concurrent use; the owner serialises access
// (the fleet package runs one session goroutine per device).
type Device struct {
	s *state
	// t is the device's simulated clock in seconds; every increment
	// advances it.
	t float64
	// cursor is the next patrol position in the fixed visit order.
	cursor int
	// rounds counts completed patrol passes over the whole device.
	rounds int64
}

// LineObservation is one scrub visit's per-line outcome — the telemetry
// record the fleet's error-statistics store folds in. Only visits that
// observed errors (or repaired a UE) are reported; clean visits carry no
// per-line information worth a record.
type LineObservation struct {
	// Line is the physical slot index visited.
	Line int `json:"line"`
	// ErrBits is the error count the visit observed before acting.
	ErrBits int `json:"err_bits"`
	// UE marks a visit that found the line uncorrectable (the engine
	// force-repaired it, counting the excursion exactly once).
	UE bool `json:"ue,omitempty"`
	// WroteBack marks a correctable line the policy rewrote.
	WroteBack bool `json:"wrote_back,omitempty"`
}

// ChunkReport summarises one bounded scrub increment.
type ChunkReport struct {
	// Lines is the number of lines visited.
	Lines int `json:"lines"`
	// CELines counts visited lines observed with at least one error that
	// remained correctable; UEs counts uncorrectable findings.
	CELines int64 `json:"ce_lines"`
	UEs     int64 `json:"ues"`
	// CorrectedBits is the real error bits scrubbed away by write-backs.
	CorrectedBits int64 `json:"corrected_bits"`
	WriteBacks    int64 `json:"write_backs"`
	// DemandWrites is the demand traffic applied during the increment.
	DemandWrites int64 `json:"demand_writes"`
	// SimSeconds is the simulated time the increment covered.
	SimSeconds float64 `json:"sim_seconds"`
	// WrappedRound marks a patrol chunk that completed a full pass over
	// the device (the cursor wrapped to zero).
	WrappedRound bool `json:"wrapped_round,omitempty"`
	// Observations lists the per-line findings (errored lines only). The
	// backing array is reused across calls; callers fold it before the
	// next increment.
	Observations []LineObservation `json:"-"`
}

// NewDevice validates the spec and initialises a persistent device at
// simulated time zero. The spec's Horizon and ScrubInterval are not used
// for stepping (the caller owns time); they only need to satisfy spec
// validation. Pooling is disabled: the state lives as long as the device.
func NewDevice(spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{DisablePooling: true}
	s, err := r.newState(spec)
	if err != nil {
		return nil, err
	}
	return &Device{s: s}, nil
}

// Lines returns the device's logical line count.
func (d *Device) Lines() int { return d.s.lines }

// Slots returns the physical slot count (lines, +1 under leveling).
func (d *Device) Slots() int { return d.s.slots }

// Now returns the device's simulated clock in seconds.
func (d *Device) Now() float64 { return d.t }

// PatrolCursor returns the next patrol position in the visit order.
func (d *Device) PatrolCursor() int { return d.cursor }

// Rounds returns the number of completed patrol passes.
func (d *Device) Rounds() int64 { return d.rounds }

// Totals exposes the device's accumulated run counters (visits, UEs,
// corrected bits, demand writes, energy) in the engine's Result shape.
func (d *Device) Totals() Result {
	res := d.s.res
	res.SimSeconds = d.t
	// Fold the live on-die/profiling counters so fleet telemetry matches
	// what a one-shot run would report at this point.
	d.s.foldInstr(&res)
	return res
}

// applyDemand advances demand traffic over [d.t, d.t+dt): workload writes
// land at uniform times inside the window, exactly as the one-shot run
// loop applies them ahead of a substep's visits.
func (d *Device) applyDemand(dt float64, rep *ChunkReport) {
	s := d.s
	before := s.res.DemandWrites
	s.eventBuf = s.source.WritesInEpoch(s.rng, d.t, dt, s.eventBuf)
	for _, line := range s.eventBuf {
		tw := d.t + s.rng.Float64()*dt
		s.writeLine(s.mapSlot(line), tw)
		s.acct.LineWrite(&s.res.DemandEnergy, s.codewordBits())
		s.res.DemandWrites++
		s.recordArrayWrite(tw)
	}
	rep.DemandWrites += s.res.DemandWrites - before
}

// visitObserved performs one scrub visit at time tv and derives the
// per-line observation from the engine counters' deltas, so the hot visit
// path itself stays untouched.
func (d *Device) visitObserved(slot int, tv float64, rs *scrub.RoundStats, rep *ChunkReport) {
	s := d.s
	errBits, _ := s.errorBits(slot, tv)
	if s.ondie != nil {
		// Telemetry reports what the controller can see: the on-die layer
		// hides sub-strength errors from the observation record too.
		// Visible is the pure transform — the visit itself does the
		// counted Observe.
		errBits = s.ondie.Visible(slot, errBits)
	}
	preUE := s.res.UEs
	preWB := s.res.ScrubWriteBacks
	preCorr := s.res.CorrectedBits
	s.visit(slot, tv, rs)
	rep.Lines++
	ue := s.res.UEs > preUE
	wb := s.res.ScrubWriteBacks > preWB
	rep.CorrectedBits += s.res.CorrectedBits - preCorr
	if ue {
		rep.UEs++
	} else if errBits > 0 {
		rep.CELines++
	}
	if wb {
		rep.WriteBacks++
	}
	if ue || errBits > 0 {
		rep.Observations = append(rep.Observations, LineObservation{
			Line: slot, ErrBits: errBits, UE: ue, WroteBack: wb,
		})
	}
}

// PatrolChunk performs one background-scrub increment: demand traffic is
// applied over the next dt simulated seconds, then the next n lines in
// patrol order are visited at times spread across the window. The cursor
// wraps at the end of the device, completing a patrol round. obs, when
// non-nil, seeds the report's observation buffer (reuse across chunks).
func (d *Device) PatrolChunk(n int, dt float64, obs []LineObservation) (ChunkReport, error) {
	if n <= 0 {
		return ChunkReport{}, fmt.Errorf("engine: patrol chunk size must be positive, got %d", n)
	}
	if n > d.s.slots {
		n = d.s.slots
	}
	if dt <= 0 || math.IsInf(dt, 0) || math.IsNaN(dt) {
		return ChunkReport{}, fmt.Errorf("engine: patrol chunk dt must be positive and finite, got %g", dt)
	}
	rep := ChunkReport{SimSeconds: dt, Observations: obs[:0]}
	d.applyDemand(dt, &rep)
	s := d.s
	rs := scrub.RoundStats{Capability: s.scheme.T()}
	for j := 0; j < n; j++ {
		slot := int(s.visitOrder[d.cursor])
		d.cursor++
		if d.cursor == s.slots {
			d.cursor = 0
			d.rounds++
			rep.WrappedRound = true
		}
		tv := d.t + dt*float64(j+1)/float64(n)
		if s.lev != nil && slot == s.lev.Gap() {
			continue
		}
		// Patrol bias toward the at-risk set, same one-for-one visit
		// replacement as the one-shot run loop.
		if s.prof != nil {
			if r := s.prof.redirect(); r >= 0 && !(s.lev != nil && r == s.lev.Gap()) {
				slot = r
				s.prof.redirected++
			}
		}
		d.visitObserved(slot, tv, &rs, &rep)
	}
	d.t += dt
	// A completed patrol pass is the device analogue of a sweep: it is
	// when the profiling cadence ticks.
	if rep.WrappedRound {
		s.maybeProfile(d.t)
	}
	return rep, nil
}

// ScrubRange performs one on-demand scrub increment over the logical
// lines [first, first+count): demand traffic is applied over dt simulated
// seconds, then every line in the range is visited. The patrol cursor is
// untouched — on-demand work preempts patrol, it does not advance it.
func (d *Device) ScrubRange(first, count int, dt float64, obs []LineObservation) (ChunkReport, error) {
	if first < 0 || count <= 0 || first+count > d.s.lines {
		return ChunkReport{}, fmt.Errorf("engine: scrub range [%d,%d) outside device [0,%d)",
			first, first+count, d.s.lines)
	}
	if dt <= 0 || math.IsInf(dt, 0) || math.IsNaN(dt) {
		return ChunkReport{}, fmt.Errorf("engine: scrub range dt must be positive and finite, got %g", dt)
	}
	rep := ChunkReport{SimSeconds: dt, Observations: obs[:0]}
	d.applyDemand(dt, &rep)
	s := d.s
	rs := scrub.RoundStats{Capability: s.scheme.T()}
	for j := 0; j < count; j++ {
		slot := s.mapSlot(first + j)
		if s.lev != nil && slot == s.lev.Gap() {
			continue
		}
		tv := d.t + dt*float64(j+1)/float64(count)
		d.visitObserved(slot, tv, &rs, &rep)
	}
	d.t += dt
	return rep, nil
}

// SetPolicy swaps the scrub policy live. The change governs every visit
// from the next increment on; device state (drift, wear, clock, cursor)
// is untouched, so a session reconfigured mid-flight keeps its identity.
func (d *Device) SetPolicy(p scrub.Policy) error {
	if p == nil {
		return fmt.Errorf("engine: nil policy")
	}
	d.s.policy = p
	// hasCRC tracks the detection mode: light detection stores a CRC with
	// the line, which codewordBits charges on every rewrite.
	d.s.hasCRC = p.Detection() == scrub.LightDetect
	// Profiling state follows the policy: switching to a Profiler arms
	// (or re-arms, if the schedule changed) the at-risk machinery;
	// switching away drops it along with its accumulated set.
	if pp, ok := p.(scrub.Profiler); ok {
		cfg := pp.Profile()
		if err := cfg.Validate(); err != nil {
			return err
		}
		if d.s.prof == nil || d.s.prof.cfg != cfg {
			d.s.prof = newProfiler(cfg)
		}
	} else {
		d.s.prof = nil
	}
	return nil
}

// RepairLine models Post-Package-Repair/sparing of one logical line: the
// slot is remapped to a spare row — fresh endurance draws, zeroed write
// wear, and an immediate rewrite at the current clock. The repair write
// is charged to the scrub ledger, mirroring a maintenance operation.
func (d *Device) RepairLine(line int) error {
	if line < 0 || line >= d.s.lines {
		return fmt.Errorf("engine: repair line %d outside device [0,%d)", line, d.s.lines)
	}
	s := d.s
	slot := s.mapSlot(line)
	s.weakBuf = s.wearM.SampleWeakest(s.rng, s.weakBuf)
	copy(s.weakest[slot*s.kw:(slot+1)*s.kw], s.weakBuf)
	s.writes[slot] = 0
	s.writeLine(slot, d.t)
	s.acct.LineWrite(&s.res.ScrubEnergy, s.codewordBits())
	s.res.RepairWrites++
	return nil
}
