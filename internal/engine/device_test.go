package engine

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

// deviceSpec builds a tiny 128-line device from the engine test spec so
// drift errors appear within a few simulated hours.
func deviceSpec(t *testing.T, seed uint64) Spec {
	t.Helper()
	spec := testSpec()
	spec.Geometry = mem.Geometry{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
		RowsPerBank: 8, LinesPerRow: 8, LineBytes: 64,
	}
	spec.Seed = seed
	return spec
}

func TestDevicePatrolAdvancesClockAndCursor(t *testing.T) {
	d, err := NewDevice(deviceSpec(t, 7))
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	lines := d.Lines()
	if lines != 128 {
		t.Fatalf("lines = %d, want 128", lines)
	}
	rep, err := d.PatrolChunk(32, 500, nil)
	if err != nil {
		t.Fatalf("PatrolChunk: %v", err)
	}
	if rep.Lines != 32 {
		t.Errorf("chunk lines = %d, want 32", rep.Lines)
	}
	if d.PatrolCursor() != 32 {
		t.Errorf("cursor = %d, want 32", d.PatrolCursor())
	}
	if d.Now() != 500 {
		t.Errorf("clock = %g, want 500", d.Now())
	}
	// Three more chunks complete the round and wrap the cursor.
	var wrapped bool
	for i := 0; i < 3; i++ {
		rep, err = d.PatrolChunk(32, 500, rep.Observations)
		if err != nil {
			t.Fatalf("PatrolChunk: %v", err)
		}
		wrapped = wrapped || rep.WrappedRound
	}
	if !wrapped {
		t.Error("patrol never wrapped after covering every line")
	}
	if d.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1", d.Rounds())
	}
	if d.PatrolCursor() != 0 {
		t.Errorf("cursor after wrap = %d, want 0", d.PatrolCursor())
	}
}

func TestDeviceScrubRangeLeavesPatrolCursor(t *testing.T) {
	d, err := NewDevice(deviceSpec(t, 7))
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	if _, err := d.PatrolChunk(16, 250, nil); err != nil {
		t.Fatalf("PatrolChunk: %v", err)
	}
	cur := d.PatrolCursor()
	rep, err := d.ScrubRange(40, 24, 100, nil)
	if err != nil {
		t.Fatalf("ScrubRange: %v", err)
	}
	if rep.Lines != 24 {
		t.Errorf("range lines = %d, want 24", rep.Lines)
	}
	if d.PatrolCursor() != cur {
		t.Errorf("on-demand scrub moved the patrol cursor: %d -> %d", cur, d.PatrolCursor())
	}
	if _, err := d.ScrubRange(120, 16, 100, nil); err == nil {
		t.Error("out-of-range scrub accepted")
	}
	if _, err := d.ScrubRange(0, 8, 0, nil); err == nil {
		t.Error("zero-dt scrub accepted")
	}
}

// TestDeviceDeterministicTrajectory pins the Device contract the fleet
// control plane builds on: the same seed and the same call sequence
// (patrol chunks, a preempting range scrub, a repair) reproduce the same
// counters and observations exactly.
func TestDeviceDeterministicTrajectory(t *testing.T) {
	runTrajectory := func() ([]ChunkReport, Result) {
		d, err := NewDevice(deviceSpec(t, 99))
		if err != nil {
			t.Fatalf("NewDevice: %v", err)
		}
		var reps []ChunkReport
		step := func(rep ChunkReport, err error) {
			if err != nil {
				t.Fatalf("step: %v", err)
			}
			// Copy observations out of the reused buffer.
			rep.Observations = append([]LineObservation(nil), rep.Observations...)
			reps = append(reps, rep)
		}
		for i := 0; i < 4; i++ {
			step(d.PatrolChunk(32, 3600, nil))
		}
		step(d.ScrubRange(0, 64, 1800, nil))
		if err := d.RepairLine(3); err != nil {
			t.Fatalf("RepairLine: %v", err)
		}
		for i := 0; i < 4; i++ {
			step(d.PatrolChunk(32, 7200, nil))
		}
		return reps, d.Totals()
	}
	repsA, totA := runTrajectory()
	repsB, totB := runTrajectory()
	if !reflect.DeepEqual(repsA, repsB) {
		t.Fatalf("chunk reports diverged across identical runs:\nA: %+v\nB: %+v", repsA, repsB)
	}
	if !reflect.DeepEqual(totA, totB) {
		t.Fatalf("device totals diverged:\nA: %+v\nB: %+v", totA, totB)
	}
	// The trajectory must have produced some scrub work to be meaningful.
	if totA.ScrubVisits == 0 {
		t.Error("trajectory performed no scrub visits")
	}
}

func TestDeviceRepairResetsWear(t *testing.T) {
	spec := deviceSpec(t, 5)
	spec.InitialLineWrites = 1 << 20 // heavily pre-aged
	d, err := NewDevice(spec)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	if err := d.RepairLine(0); err != nil {
		t.Fatalf("RepairLine: %v", err)
	}
	if err := d.RepairLine(-1); err == nil {
		t.Error("negative line repair accepted")
	}
	if err := d.RepairLine(d.Lines()); err == nil {
		t.Error("out-of-range repair accepted")
	}
	if d.Totals().RepairWrites != 1 {
		t.Errorf("repair writes = %d, want 1", d.Totals().RepairWrites)
	}
	// The repaired slot's write counter restarted from the rewrite.
	if got := d.s.writes[0]; got != 1 {
		t.Errorf("repaired line writes = %d, want 1", got)
	}
}
