package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
)

// cacheGossip is the coordinator's view of which node holds which cached
// result. Every scrubd node exposes its content-addressed result cache
// (GET /v1/cache/index lists fingerprints, GET /v1/cache/results/{fp}
// serves the bytes); the coordinator sweeps those indexes periodically
// and can then answer a whole job from any node's cache before
// re-running it. Entries are advisory — a stale holder simply 404s and
// the job falls through to normal execution — so sweeps never need to
// be synchronous with cache churn.
type cacheGossip struct {
	mu sync.Mutex
	// entries maps fingerprint → holder base URLs, sorted for
	// deterministic fetch order.
	entries   map[string][]string
	lastSweep time.Time
	sweeps    int64
}

func newCacheGossip() *cacheGossip {
	return &cacheGossip{entries: make(map[string][]string)}
}

// sweep polls every target node's cache index once and replaces the
// gossip table with what answered. A node that fails to answer simply
// drops out of the table until the next sweep. Each probe is bounded by
// timeout (0 = 2s).
func (g *cacheGossip) sweep(ctx context.Context, client *http.Client, targets []string, timeout time.Duration) {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	type indexed struct {
		url string
		fps []string
	}
	results := make([]indexed, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			fps, err := fetchCacheIndex(probeCtx, client, target)
			if err != nil {
				return
			}
			results[i] = indexed{url: target, fps: fps}
		}(i, target)
	}
	wg.Wait()

	next := make(map[string][]string)
	for _, r := range results {
		for _, fp := range r.fps {
			next[fp] = append(next[fp], r.url)
		}
	}
	for _, holders := range next {
		sort.Strings(holders)
	}
	g.mu.Lock()
	g.entries = next
	g.lastSweep = time.Now()
	g.sweeps++
	g.mu.Unlock()
}

// holders returns the nodes believed to cache a fingerprint.
func (g *cacheGossip) holders(fp string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.entries[fp]...)
}

// stats reports the table size and the age of the last successful sweep
// (negative when no sweep has completed yet).
func (g *cacheGossip) stats() (entries int, sweeps int64, age time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.lastSweep.IsZero() {
		return len(g.entries), g.sweeps, -1
	}
	return len(g.entries), g.sweeps, time.Since(g.lastSweep)
}

// fetchCacheIndex lists one node's cached fingerprints.
func fetchCacheIndex(ctx context.Context, client *http.Client, baseURL string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+service.CacheIndexPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Msg: readErrorBody(resp.Body)}
	}
	var wire struct {
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("cluster: decode cache index: %w", err)
	}
	return wire.Fingerprints, nil
}

// fetchCachedResult pulls one cached result from a holder and verifies
// it decodes to the requested fingerprint — a mislabeled or truncated
// body must never be served as the job's answer.
func fetchCachedResult(ctx context.Context, client *http.Client, baseURL, fp string) (*service.Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+service.CacheResultsPrefix+fp, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Msg: readErrorBody(resp.Body)}
	}
	var res service.Result
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("cluster: decode cached result: %w", err)
	}
	if res.Fingerprint != fp {
		return nil, fmt.Errorf("cluster: holder %s served result %q for requested %q", baseURL, res.Fingerprint, fp)
	}
	return &res, nil
}
