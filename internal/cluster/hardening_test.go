package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	for attempt := 0; attempt < 10; attempt++ {
		ceil := 10 * time.Millisecond << uint(attempt)
		if ceil > 80*time.Millisecond {
			ceil = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [0,%v]", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	a := NewBackoff(0, 0, 7)
	b := NewBackoff(0, 0, 7)
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	b := NewBackoff(time.Hour, time.Hour, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx, 5) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute)

	// Closed counts consecutive failures; below threshold stays closed.
	for i := 0; i < 2; i++ {
		if !b.canAttempt(now) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.failure(now)
	}
	if b.state != BreakerClosed {
		t.Fatalf("state %v after 2/3 failures, want closed", b.state)
	}
	// A success resets the streak.
	b.success()
	b.failure(now)
	b.failure(now)
	if b.state != BreakerClosed {
		t.Fatalf("state %v, success should have reset the failure streak", b.state)
	}
	// Third consecutive failure trips it.
	b.failure(now)
	if b.state != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.state)
	}
	if b.canAttempt(now.Add(30 * time.Second)) {
		t.Fatal("open breaker admitted traffic before cooldown")
	}
	// Cooldown elapses: one half-open probe.
	probeTime := now.Add(time.Minute)
	if !b.canAttempt(probeTime) {
		t.Fatal("open breaker refused probe after cooldown")
	}
	b.claim(probeTime)
	if b.state != BreakerHalfOpen {
		t.Fatalf("state %v after claim, want half-open", b.state)
	}
	if b.canAttempt(probeTime) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: re-open, cooldown restarts from the failure.
	b.failure(probeTime)
	if b.state != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.state)
	}
	if b.canAttempt(probeTime.Add(30 * time.Second)) {
		t.Fatal("re-opened breaker ignored the restarted cooldown")
	}
	// Next probe succeeds: fully closed again.
	again := probeTime.Add(time.Minute)
	if !b.canAttempt(again) {
		t.Fatal("re-opened breaker refused probe after second cooldown")
	}
	b.claim(again)
	b.success()
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("state %v fails %d after probe success, want closed/0", b.state, b.fails)
	}
}

// TestMembershipBreakerRoutesAway pins the acceptance property: once a
// worker's breaker opens, acquire stops offering it — immediately, not
// after another failed dispatch.
func TestMembershipBreakerRoutesAway(t *testing.T) {
	now := time.Unix(2000, 0)
	ms := NewMembershipWith(MembershipConfig{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	ms.now = func() time.Time { return now }
	bad := mustJoinMember(t, ms, "http://bad.example")
	good := mustJoinMember(t, ms, "http://good.example")

	ms.ReportFailure(bad.ID)
	ms.ReportFailure(bad.ID)
	if st := ms.BreakerStates()[bad.ID]; st != BreakerOpen {
		t.Fatalf("breaker %v after threshold failures, want open", st)
	}
	// With the healthy worker excluded, the only remaining candidate has
	// an open breaker: acquire must signal local fallback rather than
	// hand out a doomed dispatch or block for the cooldown.
	if _, _, err := ms.acquire(context.Background(), map[string]bool{good.ID: true}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("acquire with only an open-breaker candidate: err=%v, want ErrNoWorkers", err)
	}
	// Unexcluded, acquire picks the healthy worker.
	id, _, err := ms.acquire(context.Background(), nil)
	if err != nil || id != good.ID {
		t.Fatalf("acquire = %q, %v; want %q", id, err, good.ID)
	}
	ms.release(id)

	// After the cooldown the open worker admits a single probe again.
	now = now.Add(time.Minute)
	id, _, err = ms.acquire(context.Background(), map[string]bool{good.ID: true})
	if err != nil || id != bad.ID {
		t.Fatalf("post-cooldown acquire = %q, %v; want probe on %q", id, err, bad.ID)
	}
	if st := ms.BreakerStates()[bad.ID]; st != BreakerHalfOpen {
		t.Fatalf("breaker %v during probe, want half-open", st)
	}
	// While the probe is out, no second dispatch lands on it.
	if _, _, err := ms.acquire(context.Background(), map[string]bool{good.ID: true}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("second dispatch during probe: err=%v, want ErrNoWorkers", err)
	}
	ms.ReportSuccess(bad.ID)
	ms.release(bad.ID)
	if st := ms.BreakerStates()[bad.ID]; st != BreakerClosed {
		t.Fatalf("breaker %v after probe success, want closed", st)
	}
}

func TestMembershipTTLEviction(t *testing.T) {
	now := time.Unix(3000, 0)
	ms := NewMembershipWith(MembershipConfig{WorkerTTL: time.Minute})
	ms.now = func() time.Time { return now }
	m := mustJoinMember(t, ms, "http://gone.example")
	keep := mustJoinMember(t, ms, "http://kept.example")

	// Alive workers never expire, however stale.
	now = now.Add(time.Hour)
	ms.evictExpired()
	if ms.Size() != 2 {
		t.Fatalf("evicted an alive worker: size %d", ms.Size())
	}

	ms.markDead(m.ID)
	ms.evictExpired() // lastSeen is an hour old and it is now dead
	if ms.Size() != 1 {
		t.Fatalf("size %d after TTL eviction, want 1", ms.Size())
	}
	if ms.WorkersEvicted() != 1 {
		t.Fatalf("WorkersEvicted = %d, want 1", ms.WorkersEvicted())
	}
	if _, ok := ms.BreakerStates()[keep.ID]; !ok {
		t.Fatal("surviving worker vanished from the registry")
	}
	// The evicted URL can re-join fresh.
	if _, err := ms.Join("http://gone.example"); err != nil {
		t.Fatalf("re-join after eviction: %v", err)
	}
	if ms.Size() != 2 {
		t.Fatalf("size %d after re-join, want 2", ms.Size())
	}
}

func TestMembershipTTLSparesInFlight(t *testing.T) {
	now := time.Unix(4000, 0)
	ms := NewMembershipWith(MembershipConfig{WorkerTTL: time.Minute})
	ms.now = func() time.Time { return now }
	m := mustJoinMember(t, ms, "http://busy.example")
	id, _, err := ms.acquire(context.Background(), nil)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ms.markDead(m.ID)
	now = now.Add(time.Hour)
	ms.evictExpired()
	if ms.Size() != 1 {
		t.Fatal("evicted a worker with a shard in flight")
	}
	ms.release(id)
	ms.evictExpired()
	if ms.Size() != 0 {
		t.Fatal("idle dead worker survived the TTL after release")
	}
}

func mustJoinMember(t *testing.T, ms *Membership, url string) Member {
	t.Helper()
	m, err := ms.Join(url)
	if err != nil {
		t.Fatalf("join %s: %v", url, err)
	}
	return m
}
