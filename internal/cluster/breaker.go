package cluster

import "time"

// BreakerState is a circuit breaker's position. The zero value is
// closed (traffic flows).
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
)

// String renders the state for logs and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker defaults: trip after 3 consecutive transport failures, probe
// again after 5 seconds.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// breaker is a per-worker circuit breaker over shard transport. It is
// deliberately lock-free: every method is called with Membership.mu
// held, which also serialises it against acquire's candidate scan.
//
// Closed counts consecutive transport failures; at threshold it opens.
// Open rejects dispatches until cooldown has elapsed, then admits one
// half-open probe; the probe's success closes it, failure re-opens it
// (and restarts the cooldown). HTTP-level refusals never trip it — a
// node that answers, even with an error, has a working transport.
type breaker struct {
	threshold int
	cooldown  time.Duration

	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// canAttempt reports whether a dispatch may proceed now, without
// claiming anything: closed always may; open may once the cooldown has
// elapsed; half-open only while no probe is in flight.
func (b *breaker) canAttempt(now time.Time) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return now.Sub(b.openedAt) >= b.cooldown
	case BreakerHalfOpen:
		return !b.probing
	}
	return false
}

// claim marks the dispatch the caller is about to make. On a non-closed
// breaker this transitions to half-open and claims the single probe
// slot; callers must only claim after canAttempt said yes.
func (b *breaker) claim(now time.Time) {
	if b.state == BreakerClosed {
		return
	}
	b.state = BreakerHalfOpen
	b.probing = true
}

// success records a working transport: the breaker closes fully.
func (b *breaker) success() {
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a transport failure at now. A failed half-open probe
// re-opens immediately; closed opens once the consecutive-failure
// threshold is reached.
func (b *breaker) failure(now time.Time) {
	b.fails++
	b.probing = false
	if b.state == BreakerHalfOpen || b.fails >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = now
	}
}
