package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNoWorkers reports that no live, non-excluded worker exists — the
// signal for the coordinator to fall back to local execution.
var ErrNoWorkers = errors.New("cluster: no live workers")

// DefaultPerWorkerInFlight bounds concurrent shard dispatches per worker
// when the membership is configured with 0.
const DefaultPerWorkerInFlight = 2

// Member is the externally visible state of one registered worker.
type Member struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Alive    bool      `json:"alive"`
	InFlight int       `json:"in_flight"`
	JoinedAt time.Time `json:"joined_at"`
	LastSeen time.Time `json:"last_seen"`
	// Breaker is the worker's circuit-breaker state
	// (closed/half-open/open); Retries counts shard dispatches to this
	// worker that failed at the transport level.
	Breaker string `json:"breaker"`
	Retries int64  `json:"retries"`
}

// member is the internal record; guarded by Membership.mu.
type member struct {
	id       string
	url      string
	alive    bool
	inFlight int
	joinedAt time.Time
	lastSeen time.Time
	brk      *breaker
	retries  int64
}

// Membership tracks registered workers, their health, and their
// in-flight shard load. Dispatch admission (acquire/release) and the
// heartbeat prober both live here so that "who can take a shard right
// now" has a single source of truth.
type Membership struct {
	mu      sync.Mutex
	cond    *sync.Cond
	members map[string]*member
	byURL   map[string]string // URL → member id
	cfg     MembershipConfig
	nextID  int

	heartbeatFailures atomic.Int64
	workersEvicted    atomic.Int64

	// epoch counts placement-relevant membership changes (a member
	// joining or being evicted — not health flips, which are filtered at
	// acquire time so a bouncing worker does not reshuffle the ring).
	// ring caches the consistent-hash ring built at epoch; both are
	// guarded by mu.
	epoch uint64
	ring  *Ring

	// now is the clock, a hook for deterministic tests.
	now func() time.Time
}

// MembershipConfig sizes a Membership's admission and health policies.
type MembershipConfig struct {
	// PerWorkerInFlight bounds concurrent shard dispatches per worker
	// (0 = DefaultPerWorkerInFlight).
	PerWorkerInFlight int
	// WorkerTTL evicts a dead worker once it has not been seen (joined
	// or passed a heartbeat) for this long. 0 keeps dead workers
	// registered forever, the pre-TTL behaviour.
	WorkerTTL time.Duration
	// BreakerThreshold trips a worker's circuit breaker after this many
	// consecutive transport failures (0 = DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open probe delay
	// (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
}

// NewMembership creates an empty membership with the given per-worker
// in-flight bound (0 = DefaultPerWorkerInFlight) and default breaker
// and TTL policies.
func NewMembership(perWorkerInFlight int) *Membership {
	return NewMembershipWith(MembershipConfig{PerWorkerInFlight: perWorkerInFlight})
}

// NewMembershipWith creates an empty membership under cfg.
func NewMembershipWith(cfg MembershipConfig) *Membership {
	if cfg.PerWorkerInFlight <= 0 {
		cfg.PerWorkerInFlight = DefaultPerWorkerInFlight
	}
	ms := &Membership{
		members: make(map[string]*member),
		byURL:   make(map[string]string),
		cfg:     cfg,
		now:     time.Now,
	}
	ms.cond = sync.NewCond(&ms.mu)
	return ms
}

// Join registers (or re-registers) a worker by base URL. Joining is
// idempotent: a known URL refreshes the existing member and revives it
// if it was marked dead. Returns the member's view.
func (ms *Membership) Join(rawURL string) (Member, error) {
	u, err := url.Parse(strings.TrimSuffix(rawURL, "/"))
	if err != nil || u.Scheme == "" || u.Host == "" {
		return Member{}, fmt.Errorf("cluster: join needs an absolute worker URL, got %q", rawURL)
	}
	base := u.Scheme + "://" + u.Host + u.Path

	ms.mu.Lock()
	defer ms.mu.Unlock()
	if id, ok := ms.byURL[base]; ok {
		m := ms.members[id]
		m.alive = true
		m.lastSeen = ms.now()
		ms.cond.Broadcast()
		return m.view(), nil
	}
	ms.nextID++
	m := &member{
		id:       fmt.Sprintf("worker-%03d", ms.nextID),
		url:      base,
		alive:    true,
		joinedAt: ms.now(),
		lastSeen: ms.now(),
		brk:      newBreaker(ms.cfg.BreakerThreshold, ms.cfg.BreakerCooldown),
	}
	ms.members[m.id] = m
	ms.byURL[base] = m.id
	ms.epoch++
	ms.ring = nil
	ms.cond.Broadcast()
	return m.view(), nil
}

// ringLocked returns the consistent-hash ring for the current epoch,
// rebuilding it lazily after membership churn. Caller holds ms.mu.
func (ms *Membership) ringLocked() *Ring {
	if ms.ring == nil || ms.ring.version != ms.epoch {
		ids := make([]string, 0, len(ms.members))
		for id := range ms.members {
			ids = append(ids, id)
		}
		ms.ring = newRing(ms.epoch, ids)
	}
	return ms.ring
}

// Ring returns the current consistent-hash ring over every registered
// member (dead members stay on the ring — health is filtered at
// placement time, so a bouncing worker does not remap placements).
func (ms *Membership) Ring() *Ring {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.ringLocked()
}

// RingVersion returns the current placement epoch.
func (ms *Membership) RingVersion() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.epoch
}

// URLFor resolves a member ID to its base URL ("" when unknown).
func (ms *Membership) URLFor(id string) string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[id]; ok {
		return m.url
	}
	return ""
}

func (m *member) view() Member {
	return Member{
		ID: m.id, URL: m.url, Alive: m.alive, InFlight: m.inFlight,
		JoinedAt: m.joinedAt, LastSeen: m.lastSeen,
		Breaker: m.brk.state.String(), Retries: m.retries,
	}
}

// List returns all members ordered by ID.
func (ms *Membership) List() []Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, m.view())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// AliveCount returns the number of live workers.
func (ms *Membership) AliveCount() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	n := 0
	for _, m := range ms.members {
		if m.alive {
			n++
		}
	}
	return n
}

// Size returns the number of registered workers, dead or alive.
func (ms *Membership) Size() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.members)
}

// acquire reserves an in-flight slot on the least-loaded live worker not
// in exclude. When every eligible worker is at its in-flight bound it
// blocks until a slot frees, a new worker joins, or ctx ends; when no
// eligible worker exists at all it returns ErrNoWorkers immediately (the
// local-fallback signal).
func (ms *Membership) acquire(ctx context.Context, exclude map[string]bool) (id, baseURL string, err error) {
	return ms.acquireRanked(ctx, "", exclude)
}

// acquireRanked reserves an in-flight slot on the most-preferred
// eligible worker for a placement key. With a non-empty key the
// preference order is the consistent-hash ring sequence for that key
// (the key's owner first, then its deterministic failover order), so
// identical shards land on the same node — and on its cache — run after
// run; ties never arise because the sequence is total. With an empty
// key it degrades to least-loaded placement (ties by ID), the order
// used for placement-agnostic dispatches.
//
// Eligibility is unchanged from acquire: alive, not excluded, breaker
// admits an attempt. When every eligible worker is at its in-flight
// bound the call blocks until a slot frees, a member joins, or ctx
// ends; with no eligible worker at all it returns ErrNoWorkers
// immediately (the local-fallback signal).
func (ms *Membership) acquireRanked(ctx context.Context, key string, exclude map[string]bool) (id, baseURL string, err error) {
	// Wake the wait loop when the context ends.
	stop := context.AfterFunc(ctx, func() {
		ms.mu.Lock()
		defer ms.mu.Unlock()
		ms.cond.Broadcast()
	})
	defer stop()

	ms.mu.Lock()
	defer ms.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return "", "", err
		}
		now := ms.now()
		eligible := func(m *member) bool {
			// A breaker-open worker is not a candidate at all: with
			// every worker open we fall back locally rather than
			// blocking for a cooldown.
			return m.alive && !exclude[m.id] && m.brk.canAttempt(now)
		}
		var best *member
		candidates := false
		if key != "" {
			for _, mid := range ms.ringLocked().Sequence(key) {
				m := ms.members[mid]
				if m == nil || !eligible(m) {
					continue
				}
				candidates = true
				if m.inFlight < ms.cfg.PerWorkerInFlight {
					best = m
					break // ring order is the preference order
				}
			}
		} else {
			for _, m := range ms.members {
				if !eligible(m) {
					continue
				}
				candidates = true
				if m.inFlight >= ms.cfg.PerWorkerInFlight {
					continue
				}
				if best == nil || m.inFlight < best.inFlight ||
					(m.inFlight == best.inFlight && m.id < best.id) {
					best = m
				}
			}
		}
		if best != nil {
			best.inFlight++
			best.brk.claim(now)
			return best.id, best.url, nil
		}
		if !candidates {
			return "", "", ErrNoWorkers
		}
		ms.cond.Wait() // all candidates at capacity; wait for release/join/death
	}
}

// release returns an in-flight slot reserved by acquire.
func (ms *Membership) release(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[id]; ok && m.inFlight > 0 {
		m.inFlight--
	}
	ms.cond.Broadcast()
}

// markDead declares a worker unhealthy. It stays registered and keeps
// being heartbeated, so a recovered worker revives without re-joining.
func (ms *Membership) markDead(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[id]; ok && m.alive {
		m.alive = false
	}
	// Waiters may now face an empty candidate set; let them re-evaluate
	// and fall back locally instead of blocking forever.
	ms.cond.Broadcast()
}

// markAlive revives a worker after a successful heartbeat.
func (ms *Membership) markAlive(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[id]; ok {
		m.alive = true
		m.lastSeen = ms.now()
	}
	ms.cond.Broadcast()
}

// ReportSuccess records a shard dispatch whose transport worked (any
// HTTP status): the worker's breaker closes.
func (ms *Membership) ReportSuccess(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[id]; ok {
		m.brk.success()
	}
	// A closing breaker re-admits the worker; wake acquire waiters.
	ms.cond.Broadcast()
}

// ReportFailure records a transport-level dispatch failure against the
// worker's breaker and retry counter.
func (ms *Membership) ReportFailure(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if m, ok := ms.members[id]; ok {
		m.retries++
		m.brk.failure(ms.now())
	}
	ms.cond.Broadcast()
}

// BreakerStates returns each worker's current breaker state keyed by id.
func (ms *Membership) BreakerStates() map[string]BreakerState {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make(map[string]BreakerState, len(ms.members))
	for id, m := range ms.members {
		out[id] = m.brk.state
	}
	return out
}

// HeartbeatFailures returns the cumulative count of failed probes.
func (ms *Membership) HeartbeatFailures() int64 { return ms.heartbeatFailures.Load() }

// WorkersEvicted returns the cumulative count of TTL evictions.
func (ms *Membership) WorkersEvicted() int64 { return ms.workersEvicted.Load() }

// evictExpired unregisters dead workers not seen within the TTL. A
// worker with shards still in flight is spared — release would otherwise
// dangle — and caught on a later sweep. No-op when no TTL is configured.
func (ms *Membership) evictExpired() {
	if ms.cfg.WorkerTTL <= 0 {
		return
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	now := ms.now()
	for id, m := range ms.members {
		if m.alive || m.inFlight > 0 {
			continue
		}
		if now.Sub(m.lastSeen) >= ms.cfg.WorkerTTL {
			delete(ms.members, id)
			delete(ms.byURL, m.url)
			ms.epoch++
			ms.ring = nil
			ms.workersEvicted.Add(1)
		}
	}
}

// CheckOnce probes every registered worker's /healthz concurrently. A
// responding worker (HTTP 200) is alive — including one previously
// declared dead; anything else marks it dead. Each probe is bounded by
// timeout.
func (ms *Membership) CheckOnce(ctx context.Context, client *http.Client, timeout time.Duration) {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	type target struct{ id, url string }
	ms.mu.Lock()
	targets := make([]target, 0, len(ms.members))
	for _, m := range ms.members {
		targets = append(targets, target{m.id, m.url})
	}
	ms.mu.Unlock()

	var wg sync.WaitGroup
	for _, tg := range targets {
		wg.Add(1)
		go func(tg target) {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, tg.url+HealthPath, nil)
			if err != nil {
				ms.heartbeatFailures.Add(1)
				ms.markDead(tg.id)
				return
			}
			resp, err := client.Do(req)
			if err != nil || resp.StatusCode != http.StatusOK {
				if err == nil {
					resp.Body.Close()
				}
				ms.heartbeatFailures.Add(1)
				ms.markDead(tg.id)
				return
			}
			resp.Body.Close()
			ms.markAlive(tg.id)
		}(tg)
	}
	wg.Wait()
	ms.evictExpired()
}

// HeartbeatLoop probes all workers every interval until ctx ends.
func (ms *Membership) HeartbeatLoop(ctx context.Context, client *http.Client, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			ms.CheckOnce(ctx, client, interval)
		}
	}
}
