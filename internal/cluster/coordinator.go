package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/service"
	"repro/internal/trace"
)

// Defaults for shard planning.
const (
	// DefaultShardsPerWorker is how many shards a job targets per live
	// worker — more than one so a straggler doesn't serialise the tail.
	DefaultShardsPerWorker = 2
	// DefaultMaxShards caps a single job's shard count regardless of
	// fleet size.
	DefaultMaxShards = 32
)

// Config assembles a Coordinator.
type Config struct {
	// Members is the worker registry (required).
	Members *Membership
	// Client performs shard dispatches (nil = http.DefaultClient). Shard
	// requests are bounded by the job context, not a client timeout.
	Client *http.Client
	// ShardsPerWorker targets this many shards per live worker
	// (0 = DefaultShardsPerWorker).
	ShardsPerWorker int
	// MaxShards caps shards per job (0 = DefaultMaxShards).
	MaxShards int
	// RetryBase / RetryMax shape the full-jitter backoff between failed
	// shard dispatch attempts (0 = DefaultRetryBase / DefaultRetryMax).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed fixes the jitter stream for deterministic tests
	// (0 = a fixed default stream).
	RetrySeed int64
}

// Coordinator turns one replicated job into seed-ranged shards spread
// over the live workers, with per-shard failover and local fallback. Its
// Runner plugs into service.Service, so the coordinator node's queue,
// dedup, and content-addressed cache operate unchanged — the fingerprint
// still addresses the whole job.
type Coordinator struct {
	ms              *Membership
	client          *http.Client
	shardsPerWorker int
	maxShards       int
	backoff         *Backoff

	jobsSharded      atomic.Int64
	jobsLocal        atomic.Int64
	jobsResumed      atomic.Int64
	shardsDispatched atomic.Int64
	shardsCompleted  atomic.Int64
	shardFailovers   atomic.Int64
	shardsLocal      atomic.Int64
	shardsResumed    atomic.Int64
}

// NewCoordinator builds a coordinator over a membership.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Members == nil {
		panic("cluster: Coordinator needs a Membership")
	}
	c := &Coordinator{
		ms:              cfg.Members,
		client:          cfg.Client,
		shardsPerWorker: cfg.ShardsPerWorker,
		maxShards:       cfg.MaxShards,
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	if c.shardsPerWorker <= 0 {
		c.shardsPerWorker = DefaultShardsPerWorker
	}
	if c.maxShards <= 0 {
		c.maxShards = DefaultMaxShards
	}
	c.backoff = NewBackoff(cfg.RetryBase, cfg.RetryMax, cfg.RetrySeed)
	return c
}

// Members exposes the coordinator's worker registry.
func (c *Coordinator) Members() *Membership { return c.ms }

// Runner adapts the coordinator to the service's job executor interface.
func (c *Coordinator) Runner() service.Runner {
	return func(ctx context.Context, spec service.Spec) (*service.Result, error) {
		return c.Run(ctx, spec)
	}
}

// shardRange is one planned replica range.
type shardRange struct{ first, count int }

// planShards splits n replicas into at most `shards` contiguous ranges,
// as evenly as possible. Purely arithmetic: the merge result does not
// depend on the split, only shard sizing does.
func planShards(n, shards int) []shardRange {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	base, rem := n/shards, n%shards
	plan := make([]shardRange, 0, shards)
	first := 0
	for i := 0; i < shards; i++ {
		count := base
		if i < rem {
			count++
		}
		plan = append(plan, shardRange{first: first, count: count})
		first += count
	}
	return plan
}

// Run executes one normalised spec across the cluster and merges the
// shards into the same Result a single node would produce. With no live
// workers the whole job runs locally (the coordinator is itself a
// capable scrubd node).
//
// When the job context carries a service.ShardLog (journal-backed
// daemons), Run journals the shard plan and each completed shard's wire
// payload, and on a resumed job reuses the journaled plan — checkpoints
// are keyed by replica range, so re-planning under a different fleet
// size would orphan them — skipping every range with a valid checkpoint.
func (c *Coordinator) Run(ctx context.Context, spec service.Spec) (*service.Result, error) {
	sys, mech, wl, err := spec.Build()
	if err != nil {
		return nil, err
	}
	n := spec.Replicas
	sl := service.ShardLogFrom(ctx)

	var plan []shardRange
	if sl != nil && len(sl.Plan) > 0 {
		// Resumed job: reuse the journaled split even if the fleet has
		// changed shape (or vanished — runShard falls back locally).
		plan = make([]shardRange, len(sl.Plan))
		for i, rg := range sl.Plan {
			plan[i] = shardRange{first: rg.First, count: rg.Count}
		}
		c.jobsResumed.Add(1)
	} else {
		alive := c.ms.AliveCount()
		if alive == 0 {
			c.jobsLocal.Add(1)
			rep, err := core.RunReplicatedContext(ctx, sys, mech, wl, n)
			if err != nil {
				return nil, err
			}
			return service.NewResult(spec, rep), nil
		}
		plan = planShards(n, min(alive*c.shardsPerWorker, c.maxShards))
		if sl != nil {
			jp := make([]journal.ShardRange, len(plan))
			for i, rg := range plan {
				jp[i] = journal.ShardRange{First: rg.first, Count: rg.count}
			}
			sl.RecordPlan(jp)
		}
	}
	c.jobsSharded.Add(1)
	service.ReportShardProgress(ctx, 0, len(plan))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg     sync.WaitGroup
		done   atomic.Int32
		shards = make([]*core.Shard, len(plan))
		errs   = make([]error, len(plan))
	)
	for i, rg := range plan {
		wg.Add(1)
		go func(i int, rg shardRange) {
			defer wg.Done()
			jrg := journal.ShardRange{First: rg.first, Count: rg.count}
			if sl != nil {
				if sh, ok := checkpointShard(sl.Checkpoints[jrg], rg); ok {
					shards[i] = sh
					c.shardsResumed.Add(1)
					service.ReportShardProgress(ctx, int(done.Add(1)), len(plan))
					return
				}
			}
			sh, err := c.runShard(runCtx, spec, sys, mech, wl, rg)
			if err != nil {
				errs[i] = err
				cancel() // a doomed job should stop burning the fleet
				return
			}
			if sl != nil {
				if payload, err := json.Marshal(NewShardResponse(sh)); err == nil {
					sl.RecordShard(jrg, payload)
				}
			}
			shards[i] = sh
			service.ReportShardProgress(ctx, int(done.Add(1)), len(plan))
		}(i, rg)
	}
	wg.Wait()
	if err := firstShardError(ctx, errs); err != nil {
		return nil, err
	}
	rep, err := core.MergeReplicated(mech.Name, wl.Name, n, shards)
	if err != nil {
		return nil, err
	}
	return service.NewResult(spec, rep), nil
}

// checkpointShard revives a journaled shard checkpoint (a ShardResponse
// wire payload). A missing or corrupt checkpoint reports !ok and the
// shard recomputes — checkpoints are an optimisation, never load-bearing
// for correctness.
func checkpointShard(raw json.RawMessage, rg shardRange) (*core.Shard, bool) {
	if len(raw) == 0 {
		return nil, false
	}
	var resp ShardResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, false
	}
	sh, err := resp.Shard(rg.first, rg.count)
	if err != nil {
		return nil, false
	}
	return sh, true
}

// firstShardError picks the most informative failure: the job context's
// own error when the job was cancelled, otherwise the first shard error
// that is not a mere echo of sibling cancellation.
func firstShardError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		for _, e := range errs {
			if e != nil {
				return fmt.Errorf("cluster: job canceled: %w", e)
			}
		}
		return err
	}
	var fallback error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if !errors.Is(e, context.Canceled) {
			return e
		}
		if fallback == nil {
			fallback = e
		}
	}
	return fallback
}

// runShard dispatches one replica range, failing over across workers: a
// worker that errors is excluded for this shard (and declared dead on
// transport errors, where the whole node is suspect — an HTTP-level
// error proves the node is at least serving). Failed attempts feed the
// worker's circuit breaker and are separated by full-jitter exponential
// backoff. When no eligible worker remains the shard runs locally on
// the coordinator.
func (c *Coordinator) runShard(ctx context.Context, spec service.Spec, sys core.System, mech core.Mechanism, wl trace.Workload, rg shardRange) (*core.Shard, error) {
	exclude := make(map[string]bool)
	for attempt := 0; ; attempt++ {
		id, baseURL, err := c.ms.acquire(ctx, exclude)
		if errors.Is(err, ErrNoWorkers) {
			c.shardsLocal.Add(1)
			return core.RunShardContext(ctx, sys, mech, wl, rg.first, rg.count)
		}
		if err != nil {
			return nil, err
		}
		c.shardsDispatched.Add(1)
		resp, err := postShard(ctx, c.client, baseURL, &ShardRequest{Spec: spec, First: rg.first, Count: rg.count})
		if err == nil {
			var sh *core.Shard
			if sh, err = resp.Shard(rg.first, rg.count); err == nil {
				c.ms.ReportSuccess(id)
				c.ms.release(id)
				c.shardsCompleted.Add(1)
				return sh, nil
			}
		}
		// An HTTP-level refusal proves the transport works: it feeds the
		// breaker as a success even though this shard moves on. Anything
		// else (dial/read failure, garbled body) counts against the
		// breaker and marks the node suspect.
		var se *StatusError
		transport := !errors.As(err, &se)
		if transport {
			c.ms.ReportFailure(id)
		} else {
			c.ms.ReportSuccess(id)
		}
		c.ms.release(id)
		if ctx.Err() != nil {
			return nil, fmt.Errorf("cluster: shard [%d,+%d): %w", rg.first, rg.count, ctx.Err())
		}
		exclude[id] = true
		c.shardFailovers.Add(1)
		if transport {
			c.ms.markDead(id)
		}
		if err := c.backoff.Sleep(ctx, attempt); err != nil {
			return nil, fmt.Errorf("cluster: shard [%d,+%d): %w", rg.first, rg.count, err)
		}
	}
}

// Handler serves the coordinator's cluster endpoints: worker join and
// the membership listing. Mount it alongside the service handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+JoinPath, func(rw http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSONError(rw, http.StatusBadRequest, fmt.Errorf("cluster: decode join request: %w", err))
			return
		}
		m, err := c.ms.Join(req.URL)
		if err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(m)
	})
	mux.HandleFunc("GET "+WorkersPath, func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(struct {
			Workers []Member `json:"workers"`
		}{c.ms.List()})
	})
	return mux
}

// CoordinatorSnapshot is a point-in-time view of the coordinator's
// dispatch counters and fleet.
type CoordinatorSnapshot struct {
	Workers           int   `json:"workers"`
	WorkersAlive      int   `json:"workers_alive"`
	WorkersEvicted    int64 `json:"workers_evicted"`
	JobsSharded       int64 `json:"jobs_sharded"`
	JobsLocal         int64 `json:"jobs_local"`
	JobsResumed       int64 `json:"jobs_resumed"`
	ShardsDispatched  int64 `json:"shards_dispatched"`
	ShardsCompleted   int64 `json:"shards_completed"`
	ShardFailovers    int64 `json:"shard_failovers"`
	ShardsLocal       int64 `json:"shards_local"`
	ShardsResumed     int64 `json:"shards_resumed"`
	HeartbeatFailures int64 `json:"heartbeat_failures"`
}

// Snapshot returns the coordinator's counters.
func (c *Coordinator) Snapshot() CoordinatorSnapshot {
	return CoordinatorSnapshot{
		Workers:           c.ms.Size(),
		WorkersAlive:      c.ms.AliveCount(),
		WorkersEvicted:    c.ms.WorkersEvicted(),
		JobsSharded:       c.jobsSharded.Load(),
		JobsLocal:         c.jobsLocal.Load(),
		JobsResumed:       c.jobsResumed.Load(),
		ShardsDispatched:  c.shardsDispatched.Load(),
		ShardsCompleted:   c.shardsCompleted.Load(),
		ShardFailovers:    c.shardFailovers.Load(),
		ShardsLocal:       c.shardsLocal.Load(),
		ShardsResumed:     c.shardsResumed.Load(),
		HeartbeatFailures: c.ms.HeartbeatFailures(),
	}
}

// WritePrometheus renders the coordinator counters in the Prometheus
// text format; scrubd appends it to /metrics on coordinator nodes.
func (c *Coordinator) WritePrometheus(out io.Writer) error {
	s := c.Snapshot()
	metrics := []promMetric{
		{"scrubd_cluster_workers", "Registered workers, dead or alive.", "gauge", float64(s.Workers)},
		{"scrubd_cluster_workers_alive", "Workers currently passing heartbeats.", "gauge", float64(s.WorkersAlive)},
		{"scrubd_cluster_jobs_sharded_total", "Jobs executed as sharded cluster runs.", "counter", float64(s.JobsSharded)},
		{"scrubd_cluster_jobs_local_total", "Jobs executed wholly on the coordinator.", "counter", float64(s.JobsLocal)},
		{"scrubd_cluster_shards_dispatched_total", "Shard dispatches attempted.", "counter", float64(s.ShardsDispatched)},
		{"scrubd_cluster_shards_completed_total", "Shards completed by workers.", "counter", float64(s.ShardsCompleted)},
		{"scrubd_cluster_shard_failovers_total", "Shard attempts moved to another worker.", "counter", float64(s.ShardFailovers)},
		{"scrubd_cluster_shards_local_total", "Shards executed locally as fallback.", "counter", float64(s.ShardsLocal)},
		{"scrubd_cluster_shards_resumed_total", "Shards revived from journal checkpoints.", "counter", float64(s.ShardsResumed)},
		{"scrubd_cluster_jobs_resumed_total", "Jobs resumed from a journaled shard plan.", "counter", float64(s.JobsResumed)},
		{"scrubd_cluster_heartbeat_failures_total", "Failed worker health probes.", "counter", float64(s.HeartbeatFailures)},
		{"scrubd_cluster_workers_evicted_total", "Dead workers evicted after the TTL.", "counter", float64(s.WorkersEvicted)},
	}
	if err := writeProm(out, metrics); err != nil {
		return err
	}
	// Per-worker labeled series: breaker position and transport retries.
	members := c.ms.List()
	if len(members) == 0 {
		return nil
	}
	states := c.ms.BreakerStates()
	if _, err := fmt.Fprintf(out, "# HELP scrubd_cluster_breaker_state Worker circuit-breaker position (0=closed, 1=half-open, 2=open).\n# TYPE scrubd_cluster_breaker_state gauge\n"); err != nil {
		return err
	}
	for _, m := range members {
		if _, err := fmt.Fprintf(out, "scrubd_cluster_breaker_state{worker=%q} %d\n", m.ID, states[m.ID]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(out, "# HELP scrubd_cluster_worker_retries_total Transport-failed shard dispatches per worker.\n# TYPE scrubd_cluster_worker_retries_total counter\n"); err != nil {
		return err
	}
	for _, m := range members {
		if _, err := fmt.Fprintf(out, "scrubd_cluster_worker_retries_total{worker=%q} %d\n", m.ID, m.Retries); err != nil {
			return err
		}
	}
	return nil
}
